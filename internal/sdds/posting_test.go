package sdds

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/disperse"
	"repro/internal/transport"
)

// memClusterNodes is memCluster, also returning the node handles (for
// white-box posting-index inspection) with optional linear-scan mode.
func memClusterNodes(t *testing.T, n int, linear bool) (*Cluster, []*Node) {
	t.Helper()
	mem := transport.NewMemory()
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := NewPlacement(ids)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, n)
	for i, id := range ids {
		node := NewNode(id, mem, place)
		if linear {
			node.DisablePostingIndex()
		}
		nodes[i] = node
		mem.Register(id, node.Handler())
	}
	return NewCluster(mem, place), nodes
}

// postingDump is a normalized, implementation-agnostic view of a
// posting index's LIVE postings: piece → key → sorted offsets.
// Tombstones are skipped, so a flat index mid-churn and a from-scratch
// rebuild dump identically.
type postingDump map[disperse.Piece]map[uint64][]uint32

func dumpPostings(idx postingIndex) postingDump {
	d := make(postingDump)
	idx.forEach(func(p disperse.Piece, items []posting) {
		for _, pt := range items {
			if pt.off == tombstoneOff {
				continue
			}
			m := d[p]
			if m == nil {
				m = make(map[uint64][]uint32)
				d[p] = m
			}
			m[pt.key] = append(m[pt.key], pt.off)
		}
	})
	for _, m := range d {
		for k, offs := range m {
			sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
			m[k] = offs
		}
	}
	return d
}

// checkPostingInvariants verifies that every node's incremental posting
// index is exactly what a from-scratch rebuild of its bucket contents
// would produce — the invariant that makes posting search equivalent to
// the linear scan by construction — and, for the flat index, that
// tombstone accounting and the compaction dead-ratio bound hold.
func checkPostingInvariants(t *testing.T, nodes []*Node) {
	t.Helper()
	for _, n := range nodes {
		n.mu.Lock()
		for id, f := range n.files {
			if f.idx == nil {
				if id == FileIndex && !n.linearSearch {
					t.Errorf("node %d: index file has no posting index", n.id)
				}
				continue
			}
			ref := newFlatIndex(nil)
			var keys []uint64
			for _, b := range f.buckets {
				b.Scan(func(key uint64, value []byte) bool {
					ref.put(key, value)
					keys = append(keys, key)
					return true
				})
			}
			st := f.idx.stats()
			if want := ref.stats(); st.entries != want.entries {
				t.Errorf("node %d file %d: %d indexed entries, rebuild has %d",
					n.id, id, st.entries, want.entries)
			}
			for _, key := range keys {
				e, ok := f.idx.entry(key)
				we, wok := ref.entry(key)
				if ok != wok || !reflect.DeepEqual(e, we) {
					t.Errorf("node %d file %d: entry %d diverges from rebuild", n.id, id, key)
				}
			}
			if got, want := dumpPostings(f.idx), dumpPostings(ref); !reflect.DeepEqual(got, want) {
				t.Errorf("node %d file %d: live postings diverge from rebuild:\n got %v\nwant %v",
					n.id, id, got, want)
			}
			checkFlatInvariants(t, n.id, id, f.idx)
		}
		n.mu.Unlock()
	}
}

// checkFlatInvariants asserts the flat index's internal accounting: the
// per-list dead counter matches the tombstones actually present, and no
// list of compactable length carries a dead fraction at or above the
// trigger (compaction fires the moment the threshold is crossed, so a
// quiescent index can never sit beyond it).
func checkFlatInvariants(t *testing.T, node transport.NodeID, file FileID, idx postingIndex) {
	t.Helper()
	fi, ok := idx.(*flatIndex)
	if !ok {
		return
	}
	for p, l := range fi.post {
		var dead uint32
		for _, pt := range l.items {
			if pt.off == tombstoneOff {
				dead++
			}
		}
		if dead != l.dead {
			t.Errorf("node %d file %d: piece %d dead counter %d, %d tombstones present",
				node, file, p, l.dead, dead)
		}
		if len(l.items) == 0 || int(l.dead) == len(l.items) {
			t.Errorf("node %d file %d: piece %d kept a fully dead list (len %d)",
				node, file, p, len(l.items))
		}
		if len(l.items) >= compactMinLen && int(l.dead)*2 >= len(l.items) {
			t.Errorf("node %d file %d: piece %d dead ratio %d/%d at or above compaction trigger",
				node, file, p, l.dead, len(l.items))
		}
	}
	// Positional back-references: every entry's i-th occurrence must be
	// exactly where pos[i] says, and it must be live — deletes and
	// compactions both maintain this (deletes rely on it for their
	// O(occurrences) bound).
	for key, e := range fi.entries {
		if len(e.pos) != len(e.pieces) {
			t.Errorf("node %d file %d: key %d pos len %d != pieces len %d",
				node, file, key, len(e.pos), len(e.pieces))
			continue
		}
		for i, p := range e.pieces {
			l := fi.post[p]
			if l == nil || int(e.pos[i]) >= len(l.items) {
				t.Errorf("node %d file %d: key %d occurrence %d: back-reference %d out of range (piece %d)",
					node, file, key, i, e.pos[i], p)
				continue
			}
			if got := l.items[e.pos[i]]; got.key != key || got.off != uint32(i) {
				t.Errorf("node %d file %d: key %d occurrence %d: back-reference points at %+v",
					node, file, key, i, got)
			}
		}
	}
}

// randomRecord builds an uppercase record of 8..39 symbols.
func randomRecord(rng *rand.Rand) []byte {
	n := 8 + rng.Intn(32)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('A' + rng.Intn(26))
	}
	return b
}

// TestPostingSearchMatchesLinearScan drives two identical clusters —
// posting-indexed and linear-scan — through randomized inserts, deletes
// (forcing splits and merges), and compares Search results for every
// query and verify mode. The posting index must be observationally
// indistinguishable from the reference scan.
func TestPostingSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	post, postNodes := memClusterNodes(t, 3, false)
	lin, _ := memClusterNodes(t, 3, true)
	for _, c := range []*Cluster{post, lin} {
		c.SetMaxLoad(FileIndex, 8) // force plenty of splits
	}

	contents := make(map[uint64][]byte)
	for rid := uint64(1); rid <= 120; rid++ {
		rc := randomRecord(rng)
		contents[rid] = rc
		recs, err := pl.BuildIndex(rid, rc)
		if err != nil {
			t.Fatal(err)
		}
		if err := post.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
		if err := lin.InsertIndexedSequential(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	if post.State(FileIndex).Buckets() < 4 {
		t.Fatalf("index file did not split: %d buckets", post.State(FileIndex).Buckets())
	}

	compare := func(stage string) {
		t.Helper()
		queries := [][]byte{[]byte("ZZZZZZZZ")}
		for rid, rc := range contents {
			if len(queries) > 12 {
				break
			}
			if len(rc) >= 10 {
				off := rng.Intn(len(rc) - 9)
				queries = append(queries, rc[off:off+9])
			}
			_ = rid
		}
		for qi, q := range queries {
			for _, mode := range []core.VerifyMode{core.VerifyAny, core.VerifyAll, core.VerifyAligned} {
				all := mode != core.VerifyAny
				query, err := pl.BuildQuery(q, all)
				if err != nil {
					t.Fatal(err)
				}
				got, err := post.Search(ctx, FileIndex, pl, query, mode)
				if err != nil {
					t.Fatal(err)
				}
				want, err := lin.Search(ctx, FileIndex, pl, query, mode)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: query %d (%q) mode %d: posting %v, linear %v",
						stage, qi, q, mode, got, want)
				}
			}
		}
		checkPostingInvariants(t, postNodes)
	}

	compare("after inserts")

	// Delete enough records to trigger merges, then re-compare.
	var rids []uint64
	for rid := range contents {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	for _, rid := range rids[:110] {
		if err := post.DeleteIndexed(ctx, FileIndex, rid, pl.Chunkings(), pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
		if err := lin.DeleteIndexed(ctx, FileIndex, rid, pl.Chunkings(), pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
		delete(contents, rid)
	}
	if post.Merges(FileIndex) == 0 {
		t.Error("deletes triggered no merges")
	}
	compare("after deletes and merges")
}

// TestPostingIndexSurvivesSnapshotRestore round-trips every node
// through snapshot + restore and requires the rebuilt posting index to
// match the incremental one.
func TestPostingIndexSurvivesSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()
	c, nodes := memClusterNodes(t, 3, false)
	c.SetMaxLoad(FileIndex, 8)
	for rid := uint64(1); rid <= 60; rid++ {
		recs, err := pl.BuildIndex(rid, randomRecord(rng))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		img, err := n.Handler()(context.Background(), opNodeSnapshot, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Handler()(context.Background(), opNodeRestore, img); err != nil {
			t.Fatal(err)
		}
	}
	checkPostingInvariants(t, nodes)
	query, err := pl.BuildQuery([]byte("AAAAAAA"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny); err != nil {
		t.Fatal(err)
	}
}

// TestInsertIndexedBatchedMatchesSequential checks the batched insert
// path produces the same searchable state as the sequential one.
func TestInsertIndexedBatchedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pl := testPipeline(t, 4, 2, 4)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()
	batched, _ := memClusterNodes(t, 4, false)
	seq, _ := memClusterNodes(t, 4, false)
	for _, c := range []*Cluster{batched, seq} {
		c.SetMaxLoad(FileIndex, 8)
	}
	contents := make(map[uint64][]byte)
	for rid := uint64(1); rid <= 80; rid++ {
		rc := randomRecord(rng)
		contents[rid] = rc
		recs, err := pl.BuildIndex(rid, rc)
		if err != nil {
			t.Fatal(err)
		}
		if err := batched.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
		if err := seq.InsertIndexedSequential(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := batched.Size(FileIndex), seq.Size(FileIndex); got != want {
		t.Fatalf("batched size %d, sequential %d", got, want)
	}
	for rid, rc := range contents {
		if len(rc) < 9 {
			continue
		}
		q := rc[:9]
		query, err := pl.BuildQuery(q, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := batched.Search(ctx, FileIndex, pl, query, core.VerifyAny)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seq.Search(ctx, FileIndex, pl, query, core.VerifyAny)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rid %d query %q: batched %v, sequential %v", rid, q, got, want)
		}
	}
}

// failingTransport refuses sends to one node, for partial-failure runs.
type failingTransport struct {
	transport.Transport
	dead transport.NodeID
}

func (f *failingTransport) Send(ctx context.Context, node transport.NodeID, op uint8, payload []byte) ([]byte, error) {
	if node == f.dead {
		return nil, fmt.Errorf("node %d: injected outage", node)
	}
	return f.Transport.Send(ctx, node, op, payload)
}

// TestInsertIndexedPartialFailure kills one node and requires the
// batched insert to report exactly that node in a *BatchError while the
// surviving nodes' entries are applied.
func TestInsertIndexedPartialFailure(t *testing.T) {
	pl := testPipeline(t, 4, 2, 4)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	mem := transport.NewMemory()
	ids := []transport.NodeID{0, 1, 2}
	place, err := NewPlacement(ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		node := NewNode(id, mem, place)
		mem.Register(id, node.Handler())
	}
	c := NewCluster(&failingTransport{Transport: mem, dead: 1}, place)

	// Pre-split the file so entries scatter across several nodes. Do it
	// over the healthy transport to get a multi-bucket image.
	healthy := NewCluster(mem, place)
	healthy.SetMaxLoad(FileIndex, 4)
	for rid := uint64(100); rid < 140; rid++ {
		recs, err := pl.BuildIndex(rid, []byte("PRIMERECORDCONTENT"))
		if err != nil {
			t.Fatal(err)
		}
		if err := healthy.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	// Share the grown file state with the failing-transport cluster.
	c.mu.Lock()
	c.files[FileIndex] = healthy.files[FileIndex]
	c.mu.Unlock()

	recs, err := pl.BuildIndex(7, []byte("SCHWARZ THOMAS AND COMPANY"))
	if err != nil {
		t.Fatal(err)
	}
	err = c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits)
	if err == nil {
		t.Fatal("expected partial failure")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %T (%v), want *BatchError", err, err)
	}
	for _, f := range be.Failures {
		if f.Node != 1 {
			t.Errorf("failure reported for healthy node %d", f.Node)
		}
	}
	// Surviving nodes' pieces must be present: SearchPartial over the
	// healthy transport skipping nothing should find entries for rid 7
	// unless every piece happened to land on node 1.
	query, err := pl.BuildQuery([]byte("SCHWARZ T"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := healthy.SearchPartial(ctx, FileIndex, pl, query, core.VerifyAny); err != nil {
		t.Fatal(err)
	}
}
