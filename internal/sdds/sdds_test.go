package sdds

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/cipherx"
	"repro/internal/core"
	"repro/internal/disperse"
	"repro/internal/transport"
)

// memCluster wires n in-memory nodes into a cluster.
func memCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	mem := transport.NewMemory()
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := NewPlacement(ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		node := NewNode(id, mem, place)
		mem.Register(id, node.Handler())
	}
	return NewCluster(mem, place)
}

func testPipeline(t *testing.T, s, m, k int) *core.Pipeline {
	t.Helper()
	pl, err := core.NewPipeline(core.Params{
		Chunk:      chunk.Params{S: s, M: m},
		DisperseK:  k,
		MatrixKind: disperse.MatrixRandom,
		Key:        cipherx.KeyFromPassphrase("sdds-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestComposeDecomposeIndexKey(t *testing.T) {
	for _, c := range []struct{ m, k int }{{2, 4}, {1, 1}, {4, 2}, {8, 8}} {
		bits := SlotBits(c.m, c.k)
		for j := 0; j < c.m; j++ {
			for k := 0; k < c.k; k++ {
				for _, rid := range []uint64{0, 1, 4154090271, 1 << 40} {
					key := ComposeIndexKey(rid, j, k, c.k, bits)
					gr, gj, gk := DecomposeIndexKey(key, c.k, bits)
					if gr != rid || gj != j || gk != k {
						t.Fatalf("m=%d k=%d: (%d,%d,%d) -> %d -> (%d,%d,%d)",
							c.m, c.k, rid, j, k, key, gr, gj, gk)
					}
				}
			}
		}
	}
}

func TestSlotBits(t *testing.T) {
	cases := []struct {
		m, k int
		want uint
	}{
		{2, 4, 3}, // Figure 3: 2 chunkings × 4 sites → 3 bits
		{1, 1, 0},
		{2, 2, 2},
		{3, 3, 4}, // 9 slots → 4 bits
	}
	for _, c := range cases {
		if got := SlotBits(c.m, c.k); got != c.want {
			t.Errorf("SlotBits(%d, %d) = %d, want %d", c.m, c.k, got, c.want)
		}
	}
}

func TestClusterPutGetDelete(t *testing.T) {
	c := memCluster(t, 4)
	c.SetMaxLoad(FileRecords, 8)
	ctx := context.Background()
	for k := uint64(0); k < 500; k++ {
		if err := c.Put(ctx, FileRecords, k, []byte{byte(k), byte(k >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Size(FileRecords) != 500 {
		t.Errorf("Size = %d", c.Size(FileRecords))
	}
	if c.State(FileRecords).Buckets() < 16 {
		t.Errorf("file did not grow: %d buckets", c.State(FileRecords).Buckets())
	}
	for k := uint64(0); k < 500; k++ {
		v, ok, err := c.Get(ctx, FileRecords, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v[0] != byte(k) {
			t.Fatalf("Get(%d) = %v %v", k, v, ok)
		}
	}
	if _, ok, _ := c.Get(ctx, FileRecords, 99999); ok {
		t.Error("phantom key")
	}
	for k := uint64(0); k < 100; k++ {
		ok, err := c.Delete(ctx, FileRecords, k)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v %v", k, ok, err)
		}
	}
	if ok, _ := c.Delete(ctx, FileRecords, 0); ok {
		t.Error("double delete")
	}
	if c.Size(FileRecords) != 400 {
		t.Errorf("Size = %d after deletes", c.Size(FileRecords))
	}
}

func TestClusterReplacePut(t *testing.T) {
	c := memCluster(t, 2)
	ctx := context.Background()
	c.Put(ctx, FileRecords, 7, []byte("old"))
	c.Put(ctx, FileRecords, 7, []byte("new"))
	if c.Size(FileRecords) != 1 {
		t.Errorf("Size = %d after replace", c.Size(FileRecords))
	}
	v, ok, _ := c.Get(ctx, FileRecords, 7)
	if !ok || !bytes.Equal(v, []byte("new")) {
		t.Errorf("Get = %q %v", v, ok)
	}
}

func TestStaleImageForwardingAndIAM(t *testing.T) {
	c := memCluster(t, 4)
	c.SetMaxLoad(FileRecords, 4)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, 600)
	for i := range keys {
		keys[i] = rng.Uint64() >> 4
		if err := c.Put(ctx, FileRecords, keys[i], []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	// Wipe the client image: every access now starts from the initial
	// single-bucket view and must still find its record via forwarding.
	c.ResetImage(FileRecords)
	for _, k := range keys {
		if _, ok, err := c.Get(ctx, FileRecords, k); err != nil || !ok {
			t.Fatalf("stale-image Get(%d) = %v %v", k, ok, err)
		}
	}
	_, iams := c.Stats(FileRecords)
	if iams == 0 {
		t.Error("no IAMs despite stale image")
	}
	img := c.Image(FileRecords)
	if img.Buckets() <= 1 {
		t.Error("image never improved")
	}
	if img.Buckets() > c.State(FileRecords).Buckets() {
		t.Errorf("image overshoots state: %d > %d", img.Buckets(), c.State(FileRecords).Buckets())
	}
}

func TestBucketInventory(t *testing.T) {
	c := memCluster(t, 3)
	c.SetMaxLoad(FileRecords, 4)
	ctx := context.Background()
	for k := uint64(0); k < 64; k++ {
		c.Put(ctx, FileRecords, k, []byte{1})
	}
	inv, err := c.BucketInventory(ctx, FileRecords)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(inv)) != c.State(FileRecords).Buckets() {
		t.Errorf("inventory has %d buckets, state says %d", len(inv), c.State(FileRecords).Buckets())
	}
	total := 0
	nodesUsed := make(map[transport.NodeID]bool)
	for _, b := range inv {
		total += b.Size
		nodesUsed[b.Node] = true
	}
	if total != 64 {
		t.Errorf("inventory counts %d records", total)
	}
	if len(nodesUsed) != 3 {
		t.Errorf("buckets on %d nodes, want 3", len(nodesUsed))
	}
}

// insertEverywhere stores a record in both the reference MemIndex and
// the distributed cluster.
func insertEverywhere(t *testing.T, ctx context.Context, c *Cluster, ix *core.MemIndex, pl *core.Pipeline, rid uint64, rc []byte) {
	t.Helper()
	if err := ix.Insert(rid, rc); err != nil {
		t.Fatal(err)
	}
	recs, err := pl.BuildIndex(rid, rc)
	if err != nil {
		t.Fatal(err)
	}
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedSearchAgreesWithReference is the central integration
// test: the distributed scatter-gather search over LH* buckets must
// return exactly what the single-process reference implementation
// returns, for every verification mode, across random workloads.
func TestDistributedSearchAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alphabet := []byte("ABCDEFGH ")
	ctx := context.Background()
	for _, cfg := range []struct{ s, m, k, nodes int }{
		{4, 2, 2, 3},
		{4, 4, 4, 5},
		{2, 2, 1, 2},
		{8, 4, 4, 4},
	} {
		c := memCluster(t, cfg.nodes)
		c.SetMaxLoad(FileIndex, 8) // force plenty of splits
		pl := testPipeline(t, cfg.s, cfg.m, cfg.k)
		ix := core.NewMemIndex(pl)
		var rcs [][]byte
		for rid := uint64(0); rid < 40; rid++ {
			n := cfg.s*3 + rng.Intn(30)
			rc := make([]byte, n)
			for i := range rc {
				rc[i] = alphabet[rng.Intn(len(alphabet))]
			}
			rcs = append(rcs, rc)
			insertEverywhere(t, ctx, c, ix, pl, rid, rc)
		}
		for trial := 0; trial < 60; trial++ {
			need := cfg.s*2 - 1
			if pl.MinQueryLen() > need {
				need = pl.MinQueryLen()
			}
			qlen := need + rng.Intn(6)
			var q []byte
			if trial%3 == 0 && len(rcs[trial%len(rcs)]) >= qlen {
				// A query cut from a real record: guaranteed hit.
				rc := rcs[trial%len(rcs)]
				pos := rng.Intn(len(rc) - qlen + 1)
				q = rc[pos : pos+qlen]
			} else {
				q = make([]byte, qlen)
				for i := range q {
					q[i] = alphabet[rng.Intn(len(alphabet))]
				}
			}
			for _, mode := range []core.VerifyMode{core.VerifyAny, core.VerifyAll, core.VerifyAligned} {
				want, err := ix.Search(q, mode)
				if err != nil {
					t.Fatal(err)
				}
				query, err := pl.BuildQuery(q, mode != core.VerifyAny)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.Search(ctx, FileIndex, pl, query, mode)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("cfg %+v mode %v query %q: distributed %v != reference %v",
						cfg, mode, q, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("cfg %+v mode %v query %q: distributed %v != reference %v",
							cfg, mode, q, got, want)
					}
				}
			}
		}
	}
}

func TestDeleteIndexedRemovesFromSearch(t *testing.T) {
	ctx := context.Background()
	c := memCluster(t, 3)
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())

	recs, err := pl.BuildIndex(7, []byte("SCHWARZ THOMAS RECORD"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
		t.Fatal(err)
	}
	query, err := pl.BuildQuery([]byte("SCHWARZ"), false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("before delete: %v", got)
	}
	if err := c.DeleteIndexed(ctx, FileIndex, 7, pl.Chunkings(), pl.K(), slotBits); err != nil {
		t.Fatal(err)
	}
	got, err = c.Search(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("after delete: %v", got)
	}
}

func TestIndexPiecesScatterAcrossNodes(t *testing.T) {
	// §5: composite keys put pieces of one record into different buckets
	// once the file is large enough.
	ctx := context.Background()
	c := memCluster(t, 4)
	c.SetMaxLoad(FileIndex, 2)
	pl := testPipeline(t, 4, 2, 4)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	for rid := uint64(0); rid < 30; rid++ {
		recs, err := pl.BuildIndex(rid, []byte(fmt.Sprintf("RECORD NUMBER %d CONTENT", rid)))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	// The 8 pieces of record 5 must live in >= 2 distinct buckets.
	inv, err := c.BucketInventory(ctx, FileIndex)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(inv)) < 8 {
		t.Fatalf("file too small for the scatter property: %d buckets", len(inv))
	}
	state := c.State(FileIndex)
	bucketsOf := make(map[uint64]bool)
	for j := 0; j < pl.Chunkings(); j++ {
		for k := 0; k < pl.K(); k++ {
			key := ComposeIndexKey(5, j, k, pl.K(), slotBits)
			bucketsOf[state.Address(key)] = true
		}
	}
	if len(bucketsOf) < 2 {
		t.Errorf("pieces of one record in %d bucket(s)", len(bucketsOf))
	}
}

// TestClusterOverTCP runs the full store/search path over real loopback
// sockets: TCP nodes, TCP forwarding between nodes, scatter-gather
// search.
func TestClusterOverTCP(t *testing.T) {
	const nNodes = 3
	ids := make([]transport.NodeID, nNodes)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := NewPlacement(ids)
	if err != nil {
		t.Fatal(err)
	}

	// Start listeners first so every node knows every address.
	addrs := make(map[transport.NodeID]string)
	listeners := make([]net.Listener, nNodes)
	for i := range ids {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		addrs[ids[i]] = lis.Addr().String()
	}
	peerTransport := transport.NewTCP(addrs)
	defer peerTransport.Close()
	var servers []*transport.Server
	for i, id := range ids {
		node := NewNode(id, peerTransport, place)
		srv := transport.NewServer(node.Handler())
		servers = append(servers, srv)
		go srv.Serve(listeners[i])
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	clientTransport := transport.NewTCP(addrs)
	defer clientTransport.Close()
	c := NewCluster(clientTransport, place)
	c.SetMaxLoad(FileIndex, 4)
	c.SetMaxLoad(FileRecords, 4)
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	names := []string{
		"SCHWARZ THOMAS", "TSUI PETER", "LITWIN WITOLD",
		"WONG MEI LING", "MARTINEZ MARIA", "ANDERSON JOHN",
		"CHAN WAI", "NGUYEN TUAN", "JOHNSON KAREN", "LEE MING",
	}
	for i, name := range names {
		rid := uint64(1000 + i)
		if err := c.Put(ctx, FileRecords, rid, []byte(name)); err != nil {
			t.Fatal(err)
		}
		recs, err := pl.BuildIndex(rid, []byte(name))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	query, err := pl.BuildQuery([]byte("MARTINEZ"), false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1004 {
		t.Fatalf("TCP search = %v, want [1004]", got)
	}
	// Fetch the record back over TCP.
	v, ok, err := c.Get(ctx, FileRecords, got[0])
	if err != nil || !ok || string(v) != "MARTINEZ MARIA" {
		t.Fatalf("record fetch: %q %v %v", v, ok, err)
	}
}

func TestNodeRejectsMalformedPayloads(t *testing.T) {
	c := memCluster(t, 1)
	ctx := context.Background()
	for _, op := range []uint8{opPut, opGet, opDelete, opSearch, opBucketCreate, opSplitExtract, opSplitAbsorb} {
		if _, err := c.tr.Send(ctx, 0, op, []byte{0xFF}); err == nil {
			t.Errorf("op %d accepted garbage", op)
		}
	}
	if _, err := c.tr.Send(ctx, 0, 200, nil); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestBucketCreateDuplicateRejected(t *testing.T) {
	c := memCluster(t, 1)
	ctx := context.Background()
	req := bucketCreateReq{file: FileRecords, addr: 1, level: 1}.encode()
	if _, err := c.tr.Send(ctx, 0, opBucketCreate, req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.tr.Send(ctx, 0, opBucketCreate, req); err == nil {
		t.Error("duplicate bucket accepted")
	}
}

func TestDistributedShrink(t *testing.T) {
	c := memCluster(t, 4)
	c.SetMaxLoad(FileRecords, 8)
	ctx := context.Background()
	for k := uint64(0); k < 800; k++ {
		if err := c.Put(ctx, FileRecords, k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	grown := c.State(FileRecords).Buckets()
	if grown < 16 {
		t.Fatalf("file only grew to %d buckets", grown)
	}
	for k := uint64(0); k < 800; k++ {
		if _, err := c.Delete(ctx, FileRecords, k); err != nil {
			t.Fatal(err)
		}
	}
	shrunk := c.State(FileRecords).Buckets()
	if shrunk >= grown {
		t.Errorf("file did not shrink: %d -> %d buckets", grown, shrunk)
	}
	if c.Merges(FileRecords) == 0 {
		t.Error("no merges recorded")
	}
	// The inventory must agree with the state after shrinking.
	inv, err := c.BucketInventory(ctx, FileRecords)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(inv)) != shrunk {
		t.Errorf("inventory %d buckets, state %d", len(inv), shrunk)
	}
}

func TestShrinkPreservesSurvivingRecords(t *testing.T) {
	c := memCluster(t, 3)
	c.SetMaxLoad(FileRecords, 4)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(31))
	keys := make([]uint64, 400)
	for i := range keys {
		keys[i] = rng.Uint64() >> 8
		if err := c.Put(ctx, FileRecords, keys[i], []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete 95%; the rest must survive the shrinks intact.
	for _, k := range keys[:380] {
		if _, err := c.Delete(ctx, FileRecords, k); err != nil {
			t.Fatal(err)
		}
	}
	if c.Merges(FileRecords) == 0 {
		t.Fatal("expected merges")
	}
	for i, k := range keys[380:] {
		v, ok, err := c.Get(ctx, FileRecords, k)
		if err != nil || !ok {
			t.Fatalf("survivor %d lost: %v %v", k, ok, err)
		}
		want := i + 380
		if v[0] != byte(want) || v[1] != byte(want>>8) {
			t.Fatalf("survivor %d corrupted", k)
		}
	}
	// Grow again after shrinking: the full cycle must keep working.
	for k := uint64(1 << 40); k < 1<<40+300; k++ {
		if err := c.Put(ctx, FileRecords, k, []byte{7}); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1 << 40); k < 1<<40+300; k++ {
		if _, ok, err := c.Get(ctx, FileRecords, k); err != nil || !ok {
			t.Fatalf("regrowth key %d: %v %v", k, ok, err)
		}
	}
}

// memClusterWithTransport is memCluster but also returns the transport
// for failure injection.
func memClusterWithTransport(t *testing.T, n int) (*Cluster, *transport.Memory) {
	t.Helper()
	mem := transport.NewMemory()
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := NewPlacement(ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		node := NewNode(id, mem, place)
		mem.Register(id, node.Handler())
	}
	return NewCluster(mem, place), mem
}

func TestSearchPartialUnderNodeFailure(t *testing.T) {
	ctx := context.Background()
	c, mem := memClusterWithTransport(t, 4)
	c.SetMaxLoad(FileIndex, 4)
	pl := testPipeline(t, 4, 2, 1)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	names := []string{
		"SCHWARZ THOMAS", "MARTINEZ MARIA", "LITWIN WITOLD",
		"ANDERSON JOHN", "NGUYEN TUAN", "WONG MEI",
		"JOHNSON KAREN", "GARCIA CARMEN", "CHEN WEI", "TAYLOR MARK",
	}
	for i, n := range names {
		recs, err := pl.BuildIndex(uint64(i), []byte(n))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	query, err := pl.BuildQuery([]byte("MARTINEZ"), false)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy cluster: strict search works.
	got, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("healthy search: %v", got)
	}

	// Kill node 2: strict search fails loudly, partial search degrades
	// gracefully and never returns spurious hits.
	mem.Unregister(2)
	if _, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny); err == nil {
		t.Error("strict search succeeded despite dead node")
	}
	rids, failed, err := c.SearchPartial(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != 2 {
		t.Errorf("failed = %v, want [2]", failed)
	}
	for _, r := range rids {
		if r != 1 {
			t.Errorf("spurious hit %d from partial search", r)
		}
	}
}

func TestConcurrentClusterOps(t *testing.T) {
	ctx := context.Background()
	c := memCluster(t, 4)
	c.SetMaxLoad(FileRecords, 16)
	const goroutines = 8
	const perG = 200
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := uint64(g*perG + i)
				if err := c.Put(ctx, FileRecords, key, []byte{byte(g), byte(i)}); err != nil {
					errs <- err
					return
				}
				if _, ok, err := c.Get(ctx, FileRecords, key); err != nil || !ok {
					errs <- fmt.Errorf("key %d: %v %v", key, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Size(FileRecords) != goroutines*perG {
		t.Errorf("Size = %d, want %d", c.Size(FileRecords), goroutines*perG)
	}
	// Every record readable afterwards.
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			key := uint64(g*perG + i)
			v, ok, err := c.Get(ctx, FileRecords, key)
			if err != nil || !ok || v[0] != byte(g) || v[1] != byte(i) {
				t.Fatalf("key %d wrong after concurrent load: %v %v %v", key, v, ok, err)
			}
		}
	}
}
