package sdds

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

// metClock is a hand-advanced clock for supervisor timing without
// sleeps.
type metClock struct {
	mu sync.Mutex
	t  time.Time
}

func newMetClock() *metClock {
	return &metClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *metClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *metClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// sumOpHistograms adds up the per-opcode latency histogram counts.
func sumOpHistograms(reg *obs.Registry) uint64 {
	var total uint64
	for _, name := range opNames {
		if name != "" {
			total += reg.HistogramSnapshot("node_op_" + name + "_ns").Count
		}
	}
	return total
}

// TestNodeSearchMetricInvariants drives an instrumented posting-index
// cluster through inserts, splits, and searches, then checks the
// node-side accounting invariants:
//
//	posting_searches + linear_searches == searches
//	posting_verified <= posting_candidates
//	sum(per-op histograms) == node_ops_total
func TestNodeSearchMetricInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	c, nodes := memClusterNodes(t, 3, false)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	for _, n := range nodes {
		n.Instrument(reg)
	}
	c.SetMaxLoad(FileIndex, 8)
	c.SetMaxLoad(FileRecords, 8)

	contents := make(map[uint64][]byte)
	const nRecs = 40
	for rid := uint64(1); rid <= nRecs; rid++ {
		rc := randomRecord(rng)
		contents[rid] = rc
		if err := c.Put(ctx, FileRecords, rid, rc); err != nil {
			t.Fatal(err)
		}
		recs, err := pl.BuildIndex(rid, rc)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}

	const nQueries = 10
	for q := 0; q < nQueries; q++ {
		rid := uint64(1 + rng.Intn(nRecs))
		rc := contents[rid]
		off := rng.Intn(len(rc) - 7)
		query, err := pl.BuildQuery(rc[off:off+8], false)
		if err != nil {
			t.Fatal(err)
		}
		rids, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range rids {
			found = found || r == rid
		}
		if !found {
			t.Fatalf("query %d: search missed rid %d", q, rid)
		}
	}

	// Client-side counters match the workload and the cluster's own
	// bookkeeping.
	if got := reg.CounterValue("cluster_puts_total"); got != nRecs {
		t.Errorf("cluster_puts_total = %d, want %d", got, nRecs)
	}
	if got := reg.CounterValue("cluster_searches_total"); got != nQueries {
		t.Errorf("cluster_searches_total = %d, want %d", got, nQueries)
	}
	splitsR, iamsR := c.Stats(FileRecords)
	splitsI, iamsI := c.Stats(FileIndex)
	if got := reg.CounterValue("cluster_splits_total"); got != uint64(splitsR+splitsI) {
		t.Errorf("cluster_splits_total = %d, want %d", got, splitsR+splitsI)
	}
	if got := reg.CounterValue("cluster_iams_total"); got != uint64(iamsR+iamsI) {
		t.Errorf("cluster_iams_total = %d, want %d", got, iamsR+iamsI)
	}
	if splitsR+splitsI == 0 {
		t.Error("workload produced no splits; invariants not exercised")
	}
	if snap := reg.HistogramSnapshot("cluster_search_ns"); snap.Count != nQueries {
		t.Errorf("cluster_search_ns count = %d, want %d", snap.Count, nQueries)
	}

	// Node-side search path accounting.
	searches := reg.CounterValue("node_searches_total")
	posting := reg.CounterValue("node_posting_searches_total")
	linear := reg.CounterValue("node_linear_searches_total")
	if posting+linear != searches {
		t.Errorf("posting(%d) + linear(%d) != searches(%d)", posting, linear, searches)
	}
	if linear != 0 {
		t.Errorf("posting-indexed cluster took %d linear scans", linear)
	}
	if posting == 0 {
		t.Error("no posting searches recorded")
	}
	cand := reg.CounterValue("node_posting_candidates_total")
	verified := reg.CounterValue("node_posting_verified_total")
	if verified > cand {
		t.Errorf("posting_verified(%d) > posting_candidates(%d)", verified, cand)
	}
	if cand == 0 {
		t.Error("no posting candidates probed")
	}
	if reg.CounterValue("node_search_hits_total") == 0 {
		t.Error("no search hits recorded despite successful queries")
	}

	// Every handled request lands in exactly one per-op histogram.
	ops := reg.CounterValue("node_ops_total")
	if got := sumOpHistograms(reg); got != ops {
		t.Errorf("sum(per-op histograms) = %d, want node_ops_total = %d", got, ops)
	}
	if snap := reg.HistogramSnapshot("node_op_search_ns"); snap.Count != searches {
		t.Errorf("node_op_search_ns count = %d, want %d", snap.Count, searches)
	}
	if ops == 0 {
		t.Error("node_ops_total is zero")
	}
}

// TestLinearScanMetricInvariants checks the fallback path: with the
// posting index disabled every search is a linear scan.
func TestLinearScanMetricInvariants(t *testing.T) {
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	c, nodes := memClusterNodes(t, 2, true)
	reg := obs.NewRegistry()
	for _, n := range nodes {
		n.Instrument(reg)
	}
	recs, err := pl.BuildIndex(42, []byte("LINEAR SCAN FALLBACK"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
		t.Fatal(err)
	}
	query, err := pl.BuildQuery([]byte("FALLBACK"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny); err != nil {
		t.Fatal(err)
	}
	searches := reg.CounterValue("node_searches_total")
	linear := reg.CounterValue("node_linear_searches_total")
	if searches == 0 || linear != searches {
		t.Errorf("linear(%d) != searches(%d) on index-disabled cluster", linear, searches)
	}
	if got := reg.CounterValue("node_posting_searches_total"); got != 0 {
		t.Errorf("posting searches = %d on index-disabled cluster", got)
	}
}

// TestSearchTraceLifecycle checks that an instrumented cluster records
// a per-search trace with the broadcast and combine stages, and that
// client-threaded traces accumulate one hop per IAM.
func TestSearchTraceLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	c, _ := memClusterNodes(t, 3, false)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	c.SetMaxLoad(FileRecords, 4)
	c.SetMaxLoad(FileIndex, 8)

	const nRecs = 30
	for rid := uint64(1); rid <= nRecs; rid++ {
		rc := randomRecord(rng)
		if err := c.Put(ctx, FileRecords, rid, rc); err != nil {
			t.Fatal(err)
		}
		recs, err := pl.BuildIndex(rid, rc)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	query, err := pl.BuildQuery([]byte("ANCHOR"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SearchPartialInfo(ctx, FileIndex, pl, query, core.VerifyAny); err != nil {
		t.Fatal(err)
	}
	traces := reg.Traces()
	if len(traces) == 0 {
		t.Fatal("no trace recorded for instrumented search")
	}
	last := traces[len(traces)-1]
	if last.Op != "search" {
		t.Fatalf("trace op = %q, want search", last.Op)
	}
	stages := make(map[string]bool)
	for _, lap := range last.Laps {
		stages[lap.Stage] = true
	}
	if !stages["broadcast"] || !stages["combine"] {
		t.Fatalf("trace stages = %v, want broadcast and combine", last.Laps)
	}

	// Forget the client image: the next sweep of Gets must correct it
	// via IAMs, and a caller-threaded trace counts one hop per IAM.
	splits, _ := c.Stats(FileRecords)
	if splits == 0 {
		t.Fatal("records file did not split; IAM scenario not exercised")
	}
	iamsBefore := reg.CounterValue("cluster_iams_total")
	c.ResetImage(FileRecords)
	tr := reg.StartTrace("get-sweep")
	tctx := obs.WithTrace(ctx, tr)
	for rid := uint64(1); rid <= nRecs; rid++ {
		if _, ok, err := c.Get(tctx, FileRecords, rid); err != nil || !ok {
			t.Fatalf("get %d: %v %v", rid, ok, err)
		}
	}
	tr.Finish()
	iams := reg.CounterValue("cluster_iams_total") - iamsBefore
	if iams == 0 {
		t.Fatal("image reset produced no IAMs")
	}
	if got := uint64(tr.Hops()); got != iams {
		t.Errorf("trace hops = %d, want one per IAM = %d", got, iams)
	}
}

// TestSupervisorPhaseMetricsMatchJournal runs a full detect → repair →
// restore cycle and checks the central repair-accounting invariant:
// every journaled record increments exactly one phase counter, so the
// phase counters sum to the journal length plus anything the ring
// bound shed.
func TestSupervisorPhaseMetricsMatchJournal(t *testing.T) {
	sc := newSupervisedCluster(t, 4, 2, SupervisorConfig{
		Debounce:      time.Millisecond,
		RepairBackoff: time.Millisecond,
	})
	reg := obs.NewRegistry()
	sc.sup.Instrument(reg)
	clk := sc.clk

	ctx := context.Background()
	loadRecords(t, sc.cluster, 60)
	if err := sc.guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	sc.kill(1, 3)
	sc.step(ctx) // detect both down
	clk.Advance(10 * time.Millisecond)
	sc.step(ctx) // debounce ripe: repair and restore
	clk.Advance(10 * time.Millisecond)
	sc.step(ctx) // observe recovery

	if down := sc.sup.Down(); len(down) != 0 {
		t.Fatalf("nodes still down after repair: %v", down)
	}
	length, dropped, _ := sc.sup.JournalStats()
	var phaseSum uint64
	for p := 0; p < repairPhaseCount; p++ {
		name := "supervisor_phase_" + sanitizePhase(RepairPhase(p).String()) + "_total"
		phaseSum += reg.CounterValue(name)
	}
	if phaseSum != uint64(length)+dropped {
		t.Errorf("sum(phase counters) = %d, want journal length %d + dropped %d",
			phaseSum, length, dropped)
	}
	if phaseSum == 0 {
		t.Error("no repair phases recorded")
	}
	// The cycle must include at least a detection and a completion.
	if got := reg.CounterValue("supervisor_phase_detected_total"); got != 2 {
		t.Errorf("supervisor_phase_detected_total = %d, want 2", got)
	}
	if got := reg.CounterValue("supervisor_phase_completed_total"); got == 0 {
		t.Error("no completed repairs counted")
	}
}

// TestGuardianMetrics checks the parity layer's sync/recover counters
// on both the success and error paths.
func TestGuardianMetrics(t *testing.T) {
	gc := newGuardedCluster(t, 3)
	guard, err := NewGuardian(gc.tr, gc.place, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	guard.Instrument(reg)
	ctx := context.Background()
	loadRecords(t, gc.cluster, 20)

	if err := guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("guardian_syncs_total"); got != 1 {
		t.Errorf("guardian_syncs_total = %d, want 1", got)
	}
	if snap := reg.HistogramSnapshot("guardian_sync_ns"); snap.Count != 1 {
		t.Errorf("guardian_sync_ns count = %d, want 1", snap.Count)
	}

	gc.kill(2)
	if err := guard.Sync(ctx); err == nil {
		t.Fatal("sync with a dead node succeeded")
	}
	if got := reg.CounterValue("guardian_syncs_total"); got != 2 {
		t.Errorf("guardian_syncs_total = %d, want 2", got)
	}
	if got := reg.CounterValue("guardian_sync_errors_total"); got != 1 {
		t.Errorf("guardian_sync_errors_total = %d, want 1", got)
	}

	// Real recovery of the killed node onto a fresh replacement.
	gc.reviveEmpty(2)
	if err := guard.Recover(ctx, []transport.NodeID{2}); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("guardian_recovers_total"); got != 1 {
		t.Errorf("guardian_recovers_total = %d, want 1", got)
	}
	if got := reg.CounterValue("guardian_recover_errors_total"); got != 0 {
		t.Errorf("guardian_recover_errors_total = %d, want 0", got)
	}

	// An unprotected node is a counted error; an empty dead set is not
	// counted at all.
	if err := guard.Recover(ctx, []transport.NodeID{99}); err == nil {
		t.Fatal("recover of unprotected node succeeded")
	}
	if err := guard.Recover(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("guardian_recovers_total"); got != 2 {
		t.Errorf("guardian_recovers_total = %d, want 2 (nil dead set must not count)", got)
	}
	if got := reg.CounterValue("guardian_recover_errors_total"); got != 1 {
		t.Errorf("guardian_recover_errors_total = %d, want 1", got)
	}
}
