package sdds

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// ErrRepairBudgetExceeded reports more confirmed-down nodes than the
// guardian's parity budget k can restore — the supervisor alarms and
// stands down rather than risking a reconstruction from insufficient
// survivors.
var ErrRepairBudgetExceeded = errors.New("sdds: confirmed failures exceed the parity budget")

// SupervisorConfig tunes the repair supervisor.
type SupervisorConfig struct {
	// Debounce is how long a node must stay confirmed-down before repair
	// begins. Flaps shorter than this (a lifted partition, a restarted
	// process) exit cleanly without a restore. Default 100ms.
	Debounce time.Duration
	// PollInterval is the reconciliation tick — the backstop that
	// catches dropped detector events and fires due repairs. Default
	// Debounce/2 (min 1ms).
	PollInterval time.Duration
	// RepairBackoff is the pause between repair attempts against a node
	// whose restore keeps failing (e.g. its replacement is not up yet).
	// Default 250ms.
	RepairBackoff time.Duration
	// RepairTimeout bounds one repair pass. Default 30s.
	RepairTimeout time.Duration
	// SyncInterval, when nonzero, re-establishes the recovery point
	// automatically: while every node is healthy the supervisor runs
	// Guardian.Sync on this period (tightening degraded-read staleness).
	SyncInterval time.Duration
	// JournalCap bounds the repair journal: once full, the oldest
	// records are dropped (and counted) rather than growing without
	// bound under a flapping node. Default 512.
	JournalCap int
}

func (c *SupervisorConfig) fillDefaults() {
	if c.Debounce <= 0 {
		c.Debounce = 100 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = c.Debounce / 2
		if c.PollInterval < time.Millisecond {
			c.PollInterval = time.Millisecond
		}
	}
	if c.RepairBackoff <= 0 {
		c.RepairBackoff = 250 * time.Millisecond
	}
	if c.RepairTimeout <= 0 {
		c.RepairTimeout = 30 * time.Second
	}
	if c.JournalCap <= 0 {
		c.JournalCap = 512
	}
}

// Reviver brings a replacement (or revived) node online under a dead
// node's ID before the guardian pushes the restored image — in a memory
// cluster it registers a fresh handler; in a real deployment it might
// start a spare daemon. A nil Reviver means replacements come up out of
// band (the supervisor just keeps retrying the restore until one
// answers).
type Reviver func(ctx context.Context, node transport.NodeID) error

// RepairPhase labels one step of a node's repair lifecycle.
type RepairPhase uint8

const (
	// RepairDetected: the detector confirmed the node down.
	RepairDetected RepairPhase = iota
	// RepairFlap: the node came back before the debounce elapsed; no
	// repair was needed (or attempted).
	RepairFlap
	// RepairStarted: revive + restore began.
	RepairStarted
	// RepairNothingToRestore: the guardian had never synced, so the node
	// restarts empty (Guardian.ErrNeverSynced semantics).
	RepairNothingToRestore
	// RepairCompleted: the node's image was restored successfully.
	RepairCompleted
	// RepairFailed: this attempt failed; it will be retried after
	// RepairBackoff.
	RepairFailed
	// RepairAlarm: confirmed failures exceed the parity budget; the
	// supervisor stands down until the operator intervenes.
	RepairAlarm
	// RepairLocalRecovery: the revived node replayed its own durable
	// journal — no parity reconstruction was needed, so the repair
	// consumed none of the k-failure budget's capacity.
	RepairLocalRecovery
	// RepairParityFallback: the node came back durable but its local
	// state was unusable (corrupt or empty journal) — detected, reported,
	// and repaired via Guardian.Recover instead.
	RepairParityFallback
)

// String implements fmt.Stringer.
func (p RepairPhase) String() string {
	switch p {
	case RepairDetected:
		return "detected"
	case RepairFlap:
		return "flap"
	case RepairStarted:
		return "started"
	case RepairNothingToRestore:
		return "nothing-to-restore"
	case RepairCompleted:
		return "completed"
	case RepairFailed:
		return "failed"
	case RepairAlarm:
		return "alarm"
	case RepairLocalRecovery:
		return "local-recovery"
	case RepairParityFallback:
		return "parity-fallback"
	default:
		return "unknown"
	}
}

// RepairRecord is one journal entry of the repair state machine. The
// journal is what makes automatic repair auditable: every detection,
// flap, attempt, completion, and alarm is recorded in order.
type RepairRecord struct {
	Seq    uint64
	Node   transport.NodeID
	Phase  RepairPhase
	At     time.Time
	Detail string
}

// downNode tracks one confirmed-down node through repair.
type downNode struct {
	since       time.Time
	attempted   bool // revive/restore was attempted: no silent flap exit anymore
	lastAttempt time.Time
}

// Supervisor closes the availability loop: it watches a Detector for
// confirmed node failures, debounces flaps, automatically drives
// Guardian recovery onto replacement nodes (within the k-failure
// budget, alarming beyond it), journals every step, and serves as the
// cluster's DegradedProvider so searches keep answering completely
// while repair is in flight.
//
// Concurrency: all repair work runs on the supervisor's single loop
// goroutine; state reads (Health, Journal, DegradedImage) take the
// mutex. Restores are idempotent whole-image pushes (opNodeRestore
// replaces the node's entire inventory under the node's lock), so a
// repair that dies mid-flight — or a supervisor restarted over the same
// guardian — simply re-runs the restore with no torn state.
type Supervisor struct {
	det    *transport.Detector
	guard  *Guardian
	retry  *transport.Retry // optional: breakers to reset after repair
	revive Reviver
	cfg    SupervisorConfig

	mu             sync.Mutex
	down           map[transport.NodeID]*downNode
	alarm          string
	journal        []RepairRecord
	journalDropped uint64 // oldest records shed by the ring bound
	seq            uint64
	repairs        uint64 // completed repairs (monotonic)

	started bool
	stop    chan struct{}
	done    chan struct{}
	now     func() time.Time
	resume  MigrationResumer // optional: re-drive in-flight migrations post-repair

	met supervisorMetrics // set by Instrument before Start; nil-safe
}

// MigrationResumer rolls the coordinator's in-flight bucket migrations
// forward (or aborts them) — Cluster.ResumeMigrations. The supervisor
// invokes it after every completed repair once all nodes are up again:
// a migration interrupted by the very node failure that triggered the
// repair leaves frozen buckets behind, and resolving it promptly is
// part of returning the cluster to nominal.
type MigrationResumer func(ctx context.Context) (int, error)

// SetMigrationResumer installs (or, with nil, removes) the post-repair
// migration resumer. Call before Start.
func (s *Supervisor) SetMigrationResumer(r MigrationResumer) {
	s.mu.Lock()
	s.resume = r
	s.mu.Unlock()
}

// NewSupervisor wires a supervisor over a detector and guardian. retry
// may be nil (no breakers to reset); revive may be nil (replacements
// come up out of band).
func NewSupervisor(det *transport.Detector, guard *Guardian, retry *transport.Retry, revive Reviver, cfg SupervisorConfig) *Supervisor {
	cfg.fillDefaults()
	return &Supervisor{
		det:    det,
		guard:  guard,
		retry:  retry,
		revive: revive,
		cfg:    cfg,
		down:   make(map[transport.NodeID]*downNode),
		now:    time.Now,
	}
}

// Start launches the supervision loop.
func (s *Supervisor) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	events := s.det.Subscribe(64)
	go s.loop(stop, done, events)
}

// Stop halts the supervision loop (any in-flight repair pass finishes
// first).
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}

func (s *Supervisor) loop(stop, done chan struct{}, events <-chan transport.HealthEvent) {
	defer close(done)
	tick := time.NewTicker(s.cfg.PollInterval)
	defer tick.Stop()
	var syncC <-chan time.Time
	if s.cfg.SyncInterval > 0 {
		st := time.NewTicker(s.cfg.SyncInterval)
		defer st.Stop()
		syncC = st.C
	}
	for {
		select {
		case <-stop:
			return
		case <-events:
			s.Reconcile(context.Background())
		case <-tick.C:
			s.Reconcile(context.Background())
		case <-syncC:
			s.autoSync()
		}
	}
}

// autoSync re-establishes the recovery point while the cluster is
// healthy. Syncing around a down node would silently move its recovery
// point backwards, so any tracked failure skips the round.
func (s *Supervisor) autoSync() {
	s.mu.Lock()
	busy := len(s.down) > 0 || s.alarm != ""
	s.mu.Unlock()
	if busy {
		return
	}
	for _, nh := range s.det.Snapshot() {
		if nh.State != transport.NodeUp {
			return
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RepairTimeout)
	defer cancel()
	s.guard.Sync(ctx) //nolint:errcheck // transient; retried next interval
}

// Reconcile runs one supervision pass: fold the detector's current
// verdicts into the down-set, absorb flaps, check the failure budget,
// and fire any due repairs. The loop calls it on every event and tick;
// tests may call it directly for deterministic stepping.
func (s *Supervisor) Reconcile(ctx context.Context) {
	now := s.now()
	states := s.det.Snapshot()

	s.mu.Lock()
	for _, nh := range states {
		switch nh.State {
		case transport.NodeDown:
			if _, tracked := s.down[nh.Node]; !tracked {
				s.down[nh.Node] = &downNode{since: now}
				s.journalLocked(nh.Node, RepairDetected, nh.LastError)
			}
		case transport.NodeUp:
			if dn, tracked := s.down[nh.Node]; tracked && !dn.attempted {
				// Came back within its own state — a flap, nothing to
				// restore. (Once a repair was attempted the node may be
				// an empty replacement, so it must finish the restore.)
				delete(s.down, nh.Node)
				s.journalLocked(nh.Node, RepairFlap, fmt.Sprintf("down %v", now.Sub(dn.since).Round(time.Millisecond)))
			}
		}
	}

	// Failure budget: beyond k confirmed failures the MDS bound is gone;
	// alarm and stand down instead of attempting a doomed (or worse,
	// state-corrupting) reconstruction.
	if len(s.down) > s.guard.K() {
		if s.alarm == "" {
			s.alarm = fmt.Sprintf("%d nodes down exceeds parity budget k=%d: %v",
				len(s.down), s.guard.K(), sortedNodesLocked(s.down))
			for n := range s.down {
				s.journalLocked(n, RepairAlarm, s.alarm)
			}
		}
		s.mu.Unlock()
		return
	}
	if s.alarm != "" {
		s.alarm = "" // budget restored (operator intervened); resume
	}

	var ripe []transport.NodeID
	for n, dn := range s.down {
		if now.Sub(dn.since) < s.cfg.Debounce {
			continue
		}
		if dn.attempted && now.Sub(dn.lastAttempt) < s.cfg.RepairBackoff {
			continue
		}
		ripe = append(ripe, n)
	}
	sort.Slice(ripe, func(i, j int) bool { return ripe[i] < ripe[j] })
	for _, n := range ripe {
		s.down[n].attempted = true
		s.down[n].lastAttempt = now
		s.journalLocked(n, RepairStarted, "")
	}
	s.mu.Unlock()

	if len(ripe) > 0 {
		s.repair(ctx, ripe)
	}
}

// repair revives and restores the given nodes in one pass.
func (s *Supervisor) repair(ctx context.Context, nodes []transport.NodeID) {
	rctx, cancel := context.WithTimeout(ctx, s.cfg.RepairTimeout)
	defer cancel()

	// Bring replacements online first — the restore needs someone
	// listening under the dead IDs.
	alive := nodes[:0:0]
	for _, n := range nodes {
		if s.revive != nil {
			if err := s.revive(rctx, n); err != nil {
				s.journalOne(n, RepairFailed, fmt.Sprintf("revive: %v", err))
				continue
			}
		}
		alive = append(alive, n)
	}
	if len(alive) == 0 {
		return
	}

	// Prefer local restart-recovery: a durable node that replayed its
	// own checkpoint+journal is already whole, so restoring it from
	// parity would be pure waste — and, worse, would roll it back to the
	// recovery point, losing every write since the last Sync. Only nodes
	// that cannot vouch for their state (ephemeral, fresh, or corrupt
	// journals — the latter two journaled as an explicit parity
	// fallback) proceed to Guardian.Recover.
	var needRestore []transport.NodeID
	for _, n := range alive {
		switch st, err := s.recoveryState(rctx, n); {
		case err != nil:
			// Unreachable or pre-durability node: status quo, restore.
			needRestore = append(needRestore, n)
		case st.mode == recoveryRecovered:
			s.finishRepair([]transport.NodeID{n}, RepairLocalRecovery,
				fmt.Sprintf("replayed local journal to seq %d", st.seq))
		case st.mode == recoveryCorrupt:
			s.journalOne(n, RepairParityFallback, "local journal corrupt: "+st.detail)
			needRestore = append(needRestore, n)
		case st.mode == recoveryFresh:
			s.journalOne(n, RepairParityFallback, "local journal empty")
			needRestore = append(needRestore, n)
		default: // ephemeral
			needRestore = append(needRestore, n)
		}
	}
	if len(needRestore) == 0 {
		// Everyone self-recovered; refresh the recovery point so the
		// parity group reflects the replayed state.
		if s.allUp() {
			s.guard.Sync(rctx) //nolint:errcheck // transient; retried by autoSync
		}
		return
	}

	err := s.guard.Recover(rctx, needRestore)
	switch {
	case errors.Is(err, ErrNeverSynced):
		// Nothing to restore: there is no recovery point, so the
		// replacements legitimately start empty. Not a parity error.
		s.finishRepair(needRestore, RepairNothingToRestore, err.Error())
	case err != nil:
		for _, n := range needRestore {
			s.journalOne(n, RepairFailed, err.Error())
		}
	default:
		s.finishRepair(needRestore, RepairCompleted, "")
		// Fold the repaired reality back into the parity group so the
		// recovery point catches up (best effort; autoSync retries).
		if s.allUp() {
			s.guard.Sync(rctx) //nolint:errcheck // transient; retried by autoSync
		}
	}
}

// recoveryState asks a revived node how its local state came to be.
func (s *Supervisor) recoveryState(ctx context.Context, node transport.NodeID) (recoveryStateResp, error) {
	raw, err := s.det.Transport().Send(ctx, node, opRecoveryState, nil)
	if err != nil {
		return recoveryStateResp{}, err
	}
	return decodeRecoveryStateResp(raw)
}

// finishRepair closes out repaired nodes: journal, drop them from the
// down-set, reopen their traffic (breakers), and let the detector see
// them alive immediately.
func (s *Supervisor) finishRepair(nodes []transport.NodeID, phase RepairPhase, detail string) {
	s.mu.Lock()
	for _, n := range nodes {
		delete(s.down, n)
		s.repairs++
		s.journalLocked(n, phase, detail)
	}
	s.mu.Unlock()
	for _, n := range nodes {
		if s.retry != nil {
			s.retry.ResetBreaker(n)
		}
	}
	// Refresh the verdicts so degraded serving hands back to the live
	// nodes without waiting out a probe interval.
	pctx, cancel := context.WithTimeout(context.Background(), s.det.Policy().ProbeTimeout)
	defer cancel()
	for i := 0; i < s.det.Policy().UpAfter; i++ {
		s.det.ProbeOnce(pctx)
	}
	s.resumeMigrations()
}

// resumeMigrations re-drives in-flight bucket migrations once every
// node is reachable again. Best-effort: a migration that still cannot
// complete stays journalled and will be retried on the next repair (or
// by the next coordinator restart).
func (s *Supervisor) resumeMigrations() {
	s.mu.Lock()
	resume := s.resume
	s.mu.Unlock()
	if resume == nil || !s.allUp() {
		return
	}
	rctx, cancel := context.WithTimeout(context.Background(), s.cfg.RepairTimeout)
	defer cancel()
	resume(rctx)
}

func (s *Supervisor) allUp() bool {
	for _, nh := range s.det.Snapshot() {
		if nh.State != transport.NodeUp {
			return false
		}
	}
	return true
}

// DegradedImage implements DegradedProvider: while a node is believed
// down and the failure budget holds, searches serve its buckets from
// the guardian's last-synced image. A healthy, untracked node is never
// served degraded — a transient send failure must surface as a failure,
// not silently read stale data.
func (s *Supervisor) DegradedImage(node transport.NodeID) ([]byte, time.Time, bool) {
	img, syncedAt, ok := s.guard.SyncedImage(node)
	if !ok {
		return nil, time.Time{}, false
	}
	s.mu.Lock()
	_, tracked := s.down[node]
	alarmed := s.alarm != ""
	trackedSet := make(map[transport.NodeID]bool, len(s.down))
	for n := range s.down {
		trackedSet[n] = true
	}
	s.mu.Unlock()
	if alarmed {
		return nil, time.Time{}, false
	}
	if !tracked && s.det.State(node) == transport.NodeUp {
		return nil, time.Time{}, false
	}
	// Budget check over everything currently unhealthy (tracked or not):
	// serving more than k nodes from images would claim a completeness
	// the parity design cannot honor.
	unhealthy := trackedSet
	for _, nh := range s.det.Snapshot() {
		if nh.State != transport.NodeUp {
			unhealthy[nh.Node] = true
		}
	}
	if len(unhealthy) > s.guard.K() {
		return nil, time.Time{}, false
	}
	return img, syncedAt, true
}

// Alarm returns the active alarm message ("" when nominal).
func (s *Supervisor) Alarm() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alarm
}

// Down lists the nodes currently tracked as confirmed-down, ascending.
func (s *Supervisor) Down() []transport.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedNodesLocked(s.down)
}

// Repairs returns the number of completed node repairs.
func (s *Supervisor) Repairs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repairs
}

// Journal returns a copy of the repair journal in order (the most
// recent JournalCap records; see JournalStats for what was shed).
func (s *Supervisor) Journal() []RepairRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RepairRecord(nil), s.journal...)
}

// JournalStats reports the journal's current length, how many old
// records the ring bound has dropped, and the configured capacity.
func (s *Supervisor) JournalStats() (length int, dropped uint64, capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.journal), s.journalDropped, s.cfg.JournalCap
}

// AwaitHealthy blocks until every node is up with no tracked failures
// and no alarm, or the context ends. An active alarm fails fast — the
// cluster cannot heal itself past the parity budget. Detection is
// asynchronous: called in the instant between a failure and its first
// failed probe/send, AwaitHealthy can truthfully report the cluster
// healthy.
func (s *Supervisor) AwaitHealthy(ctx context.Context) error {
	t := time.NewTicker(s.cfg.PollInterval)
	defer t.Stop()
	for {
		s.mu.Lock()
		alarm := s.alarm
		downN := len(s.down)
		s.mu.Unlock()
		if alarm != "" {
			return fmt.Errorf("%w: %s", ErrRepairBudgetExceeded, alarm)
		}
		if downN == 0 && s.allUp() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

func (s *Supervisor) journalLocked(node transport.NodeID, phase RepairPhase, detail string) {
	if int(phase) < len(s.met.phases) {
		s.met.phases[phase].Inc()
	}
	s.seq++
	if len(s.journal) >= s.cfg.JournalCap {
		// Ring bound: shed the oldest records. Seq stays monotonic, so
		// an auditor can see exactly where the gap is.
		drop := len(s.journal) - s.cfg.JournalCap + 1
		s.journalDropped += uint64(drop)
		s.journal = append(s.journal[:0], s.journal[drop:]...)
	}
	s.journal = append(s.journal, RepairRecord{
		Seq:    s.seq,
		Node:   node,
		Phase:  phase,
		At:     s.now(),
		Detail: detail,
	})
}

func (s *Supervisor) journalOne(node transport.NodeID, phase RepairPhase, detail string) {
	s.mu.Lock()
	s.journalLocked(node, phase, detail)
	s.mu.Unlock()
}

func sortedNodesLocked(m map[transport.NodeID]*downNode) []transport.NodeID {
	out := make([]transport.NodeID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
