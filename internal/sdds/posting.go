// Flat posting index: the packed per-piece posting representation that
// replaced the original map[Piece]map[uint64][]uint32 structure
// (DESIGN.md §15).
//
// The two-level map paid a per-occurrence inner-map assign and kept a
// separate small slice per (piece, key) pair — fine at 700x over the
// linear scan, but `indexPut` was ~35% of daemon CPU once the wire
// stopped being the bottleneck, with GC assist over the millions of
// tiny slices eating much of the rest. The flat layout stores, per
// piece value, ONE packed array of (key, offset) postings:
//
//   - appends are a single slice grow (batched: one grow per distinct
//     piece for a whole request batch);
//   - the anchor probe of a search walks a contiguous array instead of
//     chasing a map of maps — memory locality is the whole point, the
//     same argument Minaud & Reichle make for dynamic local SSE;
//   - deletes tombstone in place (the key stays, the offset becomes
//     tombstoneOff) and are reclaimed by threshold-triggered
//     compaction, amortized O(1) per mutation.
//
// Compaction policy: a list is compacted in place the moment its dead
// fraction reaches half (lists shorter than compactMinLen are exempt —
// scanning them is cheaper than bookkeeping), and a fully dead list is
// dropped from the piece map entirely. Because accumulating L/2
// tombstones in a list of length L takes L/2 delete mutations and a
// compaction costs O(L), the amortized compaction cost per mutation is
// constant, and no posting list ever exceeds 2x its live size — so
// zipfian piece popularity under delete churn and split/merge
// migrations cannot degenerate a probe into a scan over unbounded
// garbage. Deletes never scan at all: each entry carries positional
// back-references to its postings (see flatEntry), so tombstoning is
// O(occurrences) even when deterministic ECB concentrates a shared
// substring's postings into one huge list. A compaction rewrites the
// moved survivors' back-references as part of its O(L) pass and is
// otherwise local to its list and invisible to concurrent readers
// (all mutations run under the node write lock).
package sdds

import (
	"repro/internal/disperse"
)

// tombstoneOff marks a dead posting. Legitimate stream offsets are
// bounded by the encoded value size (two bytes per piece), so the
// sentinel is unreachable.
const tombstoneOff = ^uint32(0)

// compactMinLen exempts short posting lists from compaction: scanning a
// handful of postings costs less than reclaiming them. A fully dead
// list is dropped regardless of length.
const compactMinLen = 16

// posting is one occurrence of a piece value: the composite entry key
// and the offset within that entry's piece stream.
type posting struct {
	key uint64
	off uint32
}

// postList is the packed posting array of one piece value plus its
// tombstone count. dead <= len(items) always; after every mutation the
// compaction invariant 2*dead < len(items) || len(items) < compactMinLen
// holds (asserted by the churn test battery).
type postList struct {
	items []posting
	dead  uint32
}

// indexStats is a point-in-time summary of a posting index, used by the
// invariant tests and surfaced through node metrics.
type indexStats struct {
	entries     int    // indexed composite keys
	pieces      int    // distinct piece values with a posting list
	live        int    // live postings
	dead        int    // tombstoned postings awaiting compaction
	compactions uint64 // compaction epochs so far (flat index only)
	tombstones  uint64 // tombstones ever written (flat index only)
}

// postingIndex is the node-side inverted index over encrypted piece
// values. Two implementations exist: the production flatIndex below and
// the legacy two-level map index, kept in the test battery as a
// differential reference. All methods require the node write lock
// (postings/entry/forEach/stats tolerate the read lock).
type postingIndex interface {
	// put (re)indexes one stored value; values that do not decode as
	// index pieces (foreign entries) are removed/kept out, mirroring the
	// linear scan's skip.
	put(key uint64, value []byte)
	// putBatch indexes a batch of stored values in one pass, grouping
	// posting appends per piece. Duplicate keys within the batch resolve
	// to the last occurrence.
	putBatch(ents []kv)
	// remove deletes one key's postings and its entry.
	remove(key uint64)
	// entry returns the decoded piece stream of an indexed key.
	entry(key uint64) (postEntry, bool)
	// postings returns the packed posting array of a piece value —
	// including tombstones, which callers skip by off == tombstoneOff.
	// The returned slice is the index's own storage: read-only, valid
	// only while the node lock is held.
	postings(p disperse.Piece) []posting
	// forEach visits every (piece, posting array) pair.
	forEach(fn func(p disperse.Piece, items []posting))
	// stats summarizes the index.
	stats() indexStats
	// reset empties the index, keeping reusable scratch.
	reset()
}

// flatIndex is the production postingIndex: packed per-piece posting
// arrays with tombstoned deletes and threshold-triggered compaction.
// met, when non-nil, receives compaction/tombstone counts (nil-safe
// obs counters, so an uninstrumented node pays nothing).
type flatIndex struct {
	post    map[disperse.Piece]*postList
	entries map[uint64]flatEntry

	compactions uint64
	tombstones  uint64
	met         *nodeMetrics

	// batch scratch, reused across putBatch calls (mutations run under
	// the node write lock, so there is exactly one user at a time).
	apps    []pieceApp
	grouped []pieceApp
	seen    map[uint64]struct{}
	counts  []uint32 // per-piece counting-sort cursors, len 1<<16
	touched []disperse.Piece
}

// flatEntry is postEntry plus the positional back-references that make
// deletes O(occurrences): pos[i] is the index, in piece pieces[i]'s
// posting list, of this entry's i-th posting. Without them a delete
// would scan whole posting lists for the key — O(list length), which
// degenerates catastrophically on hot pieces (phonebook records share
// the area-code substring, so a few piece values list nearly every
// record). Compaction moves postings, so it rewrites the survivors'
// back-references as part of its O(L) pass.
type flatEntry struct {
	postEntry
	pos []uint32
}

// pieceApp is one queued posting append of a batch: grouped by piece so
// the whole batch touches each posting list exactly once. slot points
// at the owning entry's back-reference for this occurrence, written
// when the posting lands in its list.
type pieceApp struct {
	p    disperse.Piece
	key  uint64
	off  uint32
	slot *uint32
}

func newFlatIndex(met *nodeMetrics) *flatIndex {
	return &flatIndex{
		post:    make(map[disperse.Piece]*postList),
		entries: make(map[uint64]flatEntry),
		met:     met,
	}
}

func (x *flatIndex) put(key uint64, value []byte) {
	// Overwrite detection is this single entries lookup: fresh keys pay
	// one map miss, no piece walk. (The old index ran a full
	// indexDelete — two map lookups plus a piece walk — on every put.)
	if old, existed := x.entries[key]; existed {
		x.tombstoneEntry(key, old)
		delete(x.entries, key)
	}
	iv, err := decodeIndexValue(value)
	if err != nil {
		return // foreign value: stays out of the index
	}
	pos := make([]uint32, len(iv.pieces))
	// The entry must be in the map before the appends: a compaction
	// fired mid-loop rewrites back-references through it.
	x.entries[key] = flatEntry{
		postEntry: postEntry{firstIndex: iv.firstIndex, pieces: iv.pieces},
		pos:       pos,
	}
	for off, p := range iv.pieces {
		l := x.post[p]
		if l == nil {
			l = &postList{}
			x.post[p] = l
		}
		l.items = append(l.items, posting{key: key, off: uint32(off)})
		pos[off] = uint32(len(l.items) - 1)
		// Appends can only lower the dead fraction — except when they push
		// a short list (exempt from compaction) past compactMinLen with
		// tombstones already aboard, so the trigger is re-checked here too.
		if l.dead > 0 {
			x.maybeCompact(p, l)
		}
	}
}

func (x *flatIndex) putBatch(ents []kv) {
	if len(ents) == 0 {
		return
	}
	if len(ents) == 1 {
		x.put(ents[0].key, ents[0].value)
		return
	}
	// One piece arena for the whole batch: the peeked counts bound the
	// total exactly, so the carved entry streams never move.
	total := 0
	for _, e := range ents {
		if n, ok := indexValuePieceCount(e.value); ok {
			total += n
		}
	}
	arena := make([]disperse.Piece, 0, total)
	// posArena is carved in lockstep with arena: each entry's pos slice
	// covers the same index range as its pieces slice. Full-length up
	// front so the slot pointers below never move.
	posArena := make([]uint32, total)
	apps := x.apps[:0]
	if x.seen == nil {
		x.seen = make(map[uint64]struct{}, len(ents))
	} else {
		clear(x.seen)
	}
	// Walk the batch backwards so a duplicated key resolves to its last
	// occurrence — the same state a sequential put-by-put apply ends in.
	for i := len(ents) - 1; i >= 0; i-- {
		e := ents[i]
		if _, dup := x.seen[e.key]; dup {
			continue
		}
		x.seen[e.key] = struct{}{}
		if old, existed := x.entries[e.key]; existed {
			x.tombstoneEntry(e.key, old)
			delete(x.entries, e.key)
		}
		start := len(arena)
		iv, rest, err := decodeIndexValueInto(e.value, arena)
		if err != nil {
			continue
		}
		arena = rest
		pos := posArena[start:len(arena):len(arena)]
		x.entries[e.key] = flatEntry{
			postEntry: postEntry{firstIndex: iv.firstIndex, pieces: iv.pieces},
			pos:       pos,
		}
		for off, p := range iv.pieces {
			apps = append(apps, pieceApp{p: p, key: e.key, off: uint32(off), slot: &pos[off]})
		}
	}
	// Group by piece: one map lookup and one (amortized) slice grow per
	// distinct piece for the entire batch. A stable two-pass counting
	// sort on the uint16 piece value does the grouping in O(n) — a
	// comparison sort's log factor was measured to dominate the whole
	// batch path. Stability preserves emission order within a piece,
	// which already has each key's postings adjacent with offsets
	// ascending — the layout searchPosting's key memoization wants.
	if x.counts == nil {
		x.counts = make([]uint32, 1<<16)
	}
	touched := x.touched[:0]
	for _, a := range apps {
		c := x.counts[a.p]
		if c == 0 {
			touched = append(touched, a.p)
		}
		x.counts[a.p] = c + 1
	}
	pos := uint32(0)
	for _, p := range touched {
		n := x.counts[p]
		x.counts[p] = pos
		pos += n
	}
	grouped := x.grouped
	if cap(grouped) < len(apps) {
		grouped = make([]pieceApp, len(apps))
	} else {
		grouped = grouped[:len(apps)]
	}
	for _, a := range apps {
		grouped[x.counts[a.p]] = a
		x.counts[a.p]++
	}
	for i := 0; i < len(grouped); {
		j := i + 1
		for j < len(grouped) && grouped[j].p == grouped[i].p {
			j++
		}
		l := x.post[grouped[i].p]
		if l == nil {
			l = &postList{}
			x.post[grouped[i].p] = l
		}
		// Every slot of this list's group is written before the trigger
		// re-check: a compaction rewrites back-references, so none of the
		// postings it moves may have an unset slot.
		for _, a := range grouped[i:j] {
			l.items = append(l.items, posting{key: a.key, off: a.off})
			*a.slot = uint32(len(l.items) - 1)
		}
		if l.dead > 0 {
			x.maybeCompact(grouped[i].p, l)
		}
		i = j
	}
	for _, p := range touched {
		x.counts[p] = 0
	}
	x.touched = touched[:0]
	x.grouped = grouped[:0]
	x.apps = apps[:0]
}

func (x *flatIndex) remove(key uint64) {
	e, ok := x.entries[key]
	if !ok {
		return
	}
	delete(x.entries, key)
	x.tombstoneEntry(key, e)
}

// tombstoneEntry marks every posting of key dead by direct index — the
// back-references make this O(occurrences), independent of list
// lengths. All occurrences are marked before any list is compacted:
// a compaction moves postings and only rewrites LIVE back-references,
// so marking must not race it within one entry. Each distinct piece
// list is then compacted at most once (duplicate pieces within the
// stream are skipped by the first-occurrence check — streams are
// short, so the quadratic check beats allocating a set).
func (x *flatIndex) tombstoneEntry(key uint64, e flatEntry) {
	var marked uint32
	for i, p := range e.pieces {
		l := x.post[p]
		idx := int(e.pos[i])
		if l == nil || idx >= len(l.items) || l.items[idx].key != key {
			continue // never under the back-reference invariant
		}
		if l.items[idx].off != tombstoneOff {
			l.items[idx].off = tombstoneOff
			l.dead++
			marked++
		}
	}
	if marked == 0 {
		return
	}
	x.tombstones += uint64(marked)
	if x.met != nil {
		x.met.indexTombstones.Add(uint64(marked))
	}
outer:
	for i, p := range e.pieces {
		for _, q := range e.pieces[:i] {
			if q == p {
				continue outer
			}
		}
		if l := x.post[p]; l != nil && l.dead > 0 {
			x.maybeCompact(p, l)
		}
	}
}

// maybeCompact reclaims a list once at least half of it is dead: live
// postings are packed to the front in place, order preserved. A fully
// dead list leaves the piece map entirely; a mostly dead one also
// releases its oversized backing. Amortized O(1) per mutation — see the
// package comment.
func (x *flatIndex) maybeCompact(p disperse.Piece, l *postList) {
	n := len(l.items)
	if int(l.dead) == n {
		delete(x.post, p)
		x.noteCompaction()
		return
	}
	if n < compactMinLen || int(l.dead)*2 < n {
		return
	}
	live := l.items[:0]
	for _, pt := range l.items {
		if pt.off != tombstoneOff {
			live = append(live, pt)
		}
	}
	if cap(l.items) > compactMinLen && len(live)*4 <= cap(l.items) {
		// The live set is a small fraction of the backing: reallocate so
		// a once-hot piece does not pin its high-water-mark array.
		live = append(make([]posting, 0, len(live)*2), live...)
	}
	l.items = live
	l.dead = 0
	// Survivors moved: rewrite their owners' back-references. Postings
	// of one key are adjacent, so the entry lookup is memoized per run.
	var (
		lastKey uint64
		pos     []uint32
		have    bool
	)
	for i, pt := range l.items {
		if !have || pt.key != lastKey {
			e, ok := x.entries[pt.key]
			if !ok {
				continue // never: live postings always have an owner entry
			}
			pos, lastKey, have = e.pos, pt.key, true
		}
		pos[pt.off] = uint32(i)
	}
	x.noteCompaction()
}

func (x *flatIndex) noteCompaction() {
	x.compactions++
	if x.met != nil {
		x.met.indexCompactions.Inc()
	}
}

func (x *flatIndex) entry(key uint64) (postEntry, bool) {
	e, ok := x.entries[key]
	return e.postEntry, ok
}

func (x *flatIndex) postings(p disperse.Piece) []posting {
	l := x.post[p]
	if l == nil {
		return nil
	}
	return l.items
}

func (x *flatIndex) forEach(fn func(p disperse.Piece, items []posting)) {
	for p, l := range x.post {
		fn(p, l.items)
	}
}

func (x *flatIndex) stats() indexStats {
	s := indexStats{
		entries:     len(x.entries),
		pieces:      len(x.post),
		compactions: x.compactions,
		tombstones:  x.tombstones,
	}
	for _, l := range x.post {
		s.dead += int(l.dead)
		s.live += len(l.items) - int(l.dead)
	}
	return s
}

func (x *flatIndex) reset() {
	x.post = make(map[disperse.Piece]*postList)
	x.entries = make(map[uint64]flatEntry)
}
