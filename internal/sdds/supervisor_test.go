package sdds

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// supervisedCluster wires the full availability loop over a guarded
// memory cluster: detector (manual probing for deterministic stepping),
// guardian, and supervisor with an in-memory reviver.
type supervisedCluster struct {
	*guardedCluster
	guard *Guardian
	det   *transport.Detector
	sup   *Supervisor
	clk   *metClock // drives the supervisor's debounce/backoff timing
}

func newSupervisedCluster(t *testing.T, n, k int, cfg SupervisorConfig) *supervisedCluster {
	t.Helper()
	gc := newGuardedCluster(t, n)
	guard, err := NewGuardian(gc.tr, gc.place, k)
	if err != nil {
		t.Fatal(err)
	}
	det := transport.NewDetector(gc.tr, gc.place.Nodes(), transport.DetectorPolicy{
		ProbeOp:      PingOp,
		ProbeTimeout: 200 * time.Millisecond,
		DownAfter:    1,
		UpAfter:      1,
	})
	revive := func(_ context.Context, node transport.NodeID) error {
		gc.reviveEmpty(node)
		return nil
	}
	sup := NewSupervisor(det, guard, nil, revive, cfg)
	clk := newMetClock()
	sup.now = clk.Now // deterministic debounce: tests advance, never sleep
	gc.cluster.SetDegradedProvider(sup)
	return &supervisedCluster{guardedCluster: gc, guard: guard, det: det, sup: sup, clk: clk}
}

// step runs one probe round plus one supervision pass.
func (sc *supervisedCluster) step(ctx context.Context) {
	sc.det.ProbeOnce(ctx)
	sc.sup.Reconcile(ctx)
}

func phases(j []RepairRecord, node transport.NodeID) []RepairPhase {
	var out []RepairPhase
	for _, r := range j {
		if r.Node == node {
			out = append(out, r.Phase)
		}
	}
	return out
}

func TestSupervisorAutoRepairsKilledNodes(t *testing.T) {
	sc := newSupervisedCluster(t, 4, 2, SupervisorConfig{
		Debounce:      time.Millisecond,
		RepairBackoff: time.Millisecond,
	})
	ctx := context.Background()
	want := loadRecords(t, sc.cluster, 60)
	if err := sc.guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	sc.kill(1, 3)
	sc.step(ctx) // detect both down
	if got := sc.sup.Down(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Down = %v, want [1 3]", got)
	}
	sc.clk.Advance(5 * time.Millisecond) // let the debounce elapse
	sc.step(ctx)                         // revive + restore

	if got := sc.sup.Down(); len(got) != 0 {
		t.Fatalf("Down after repair = %v", got)
	}
	if n := sc.sup.Repairs(); n != 2 {
		t.Fatalf("Repairs = %d, want 2", n)
	}
	verifyRecords(t, sc.cluster, want) // zero record loss
	for _, node := range []transport.NodeID{1, 3} {
		got := phases(sc.sup.Journal(), node)
		if len(got) < 2 || got[0] != RepairDetected || got[len(got)-1] != RepairCompleted {
			t.Fatalf("node %d journal phases = %v", node, got)
		}
		if st := sc.det.State(node); st != transport.NodeUp {
			t.Fatalf("node %d post-repair state = %v", node, st)
		}
	}
	if err := sc.sup.AwaitHealthy(ctx); err != nil {
		t.Fatalf("AwaitHealthy after repair: %v", err)
	}
}

func TestSupervisorNeverSyncedRevivesEmpty(t *testing.T) {
	sc := newSupervisedCluster(t, 3, 1, SupervisorConfig{
		Debounce:      time.Millisecond,
		RepairBackoff: time.Millisecond,
	})
	ctx := context.Background()
	// No Sync has ever happened: a failed node has no recovery point and
	// must come back empty without the supervisor treating it as a
	// parity failure.
	sc.kill(2)
	sc.step(ctx)
	sc.clk.Advance(5 * time.Millisecond)
	sc.step(ctx)

	if got := sc.sup.Down(); len(got) != 0 {
		t.Fatalf("Down = %v, want empty (revived empty)", got)
	}
	got := phases(sc.sup.Journal(), 2)
	if len(got) < 2 || got[len(got)-1] != RepairNothingToRestore {
		t.Fatalf("journal phases = %v, want ... nothing-to-restore", got)
	}
	if st := sc.det.State(2); st != transport.NodeUp {
		t.Fatalf("revived node state = %v", st)
	}
	if sc.sup.Alarm() != "" {
		t.Fatalf("alarm raised for never-synced revive: %q", sc.sup.Alarm())
	}
}

func TestSupervisorAbsorbsFlaps(t *testing.T) {
	sc := newSupervisedCluster(t, 3, 1, SupervisorConfig{
		Debounce: time.Hour, // nothing becomes ripe in this test
	})
	ctx := context.Background()
	loadRecords(t, sc.cluster, 20)
	if err := sc.guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	sc.kill(1)
	sc.step(ctx)
	if got := sc.sup.Down(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Down = %v", got)
	}
	// The node returns before the debounce elapses: the supervisor must
	// drop it without a restore.
	sc.reviveEmpty(1)
	sc.step(ctx)
	if got := sc.sup.Down(); len(got) != 0 {
		t.Fatalf("Down after flap = %v", got)
	}
	got := phases(sc.sup.Journal(), 1)
	if len(got) != 2 || got[0] != RepairDetected || got[1] != RepairFlap {
		t.Fatalf("journal phases = %v, want [detected flap]", got)
	}
	if n := sc.sup.Repairs(); n != 0 {
		t.Fatalf("Repairs = %d for a flap", n)
	}
}

func TestSupervisorAlarmsBeyondBudget(t *testing.T) {
	sc := newSupervisedCluster(t, 4, 1, SupervisorConfig{
		Debounce:      time.Millisecond,
		RepairBackoff: time.Millisecond,
	})
	ctx := context.Background()
	want := loadRecords(t, sc.cluster, 40)
	if err := sc.guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// k=1 but two nodes die: repair must refuse and alarm, not corrupt.
	sc.kill(1, 2)
	sc.step(ctx)
	sc.clk.Advance(5 * time.Millisecond)
	sc.step(ctx)

	if sc.sup.Alarm() == "" {
		t.Fatal("no alarm with failures beyond the parity budget")
	}
	if n := sc.sup.Repairs(); n != 0 {
		t.Fatalf("Repairs = %d despite exceeded budget", n)
	}
	for _, r := range sc.sup.Journal() {
		if r.Phase == RepairStarted || r.Phase == RepairCompleted {
			t.Fatalf("repair attempted beyond budget: %+v", r)
		}
	}
	actx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if err := sc.sup.AwaitHealthy(actx); !errors.Is(err, ErrRepairBudgetExceeded) {
		t.Fatalf("AwaitHealthy = %v, want ErrRepairBudgetExceeded", err)
	}
	// Degraded serving must refuse too: completeness cannot be promised.
	if _, _, ok := sc.sup.DegradedImage(1); ok {
		t.Fatal("degraded image served while alarmed")
	}

	// The partition around node 1 heals (it returns with its data): the
	// budget is met again, the alarm clears, the flap exits cleanly, and
	// the remaining real failure is repaired with all records intact.
	sc.healPartition(1)
	sc.step(ctx)
	sc.step(ctx)
	sc.clk.Advance(5 * time.Millisecond)
	sc.step(ctx)
	if a := sc.sup.Alarm(); a != "" {
		t.Fatalf("alarm still active after recovery: %q", a)
	}
	awctx, cancel2 := context.WithTimeout(ctx, 5*time.Second)
	defer cancel2()
	for sc.sup.AwaitHealthy(awctx) != nil {
		time.Sleep(2 * time.Millisecond)
		sc.step(ctx)
		if awctx.Err() != nil {
			t.Fatal("cluster never converged after operator intervention")
		}
	}
	verifyRecords(t, sc.cluster, want)
}

func TestDegradedSearchStaysCompleteWithDownNodes(t *testing.T) {
	sc := newSupervisedCluster(t, 5, 2, SupervisorConfig{
		Debounce: time.Hour, // keep nodes down: this test exercises serving, not repair
	})
	pl := testPipeline(t, 4, 2, 2)
	ctx := context.Background()

	rng := newChaosCorpus()
	for rid := uint64(1); rid <= 40; rid++ {
		recs, err := pl.BuildIndex(rid, rng.record(rid))
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.cluster.InsertIndexed(ctx, FileIndex, recs, pl.K(), SlotBits(pl.Chunkings(), pl.K())); err != nil {
			t.Fatal(err)
		}
	}
	query, err := pl.BuildQuery([]byte("GRIDLOCK"), false)
	if err != nil {
		t.Fatal(err)
	}
	baseline, info, err := sc.cluster.SearchPartialInfo(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil || !info.Complete() || len(info.Degraded) != 0 {
		t.Fatalf("healthy search: info=%+v err=%v", info, err)
	}
	if len(baseline) == 0 {
		t.Fatal("baseline found no hits")
	}
	if err := sc.guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Two nodes die (the full parity budget). Search must still answer
	// the complete baseline, naming the nodes served degraded.
	sc.kill(1, 3)
	sc.step(ctx)
	rids, info, err := sc.cluster.SearchPartialInfo(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Complete() || len(info.Failed) != 0 {
		t.Fatalf("degraded search incomplete: %+v", info)
	}
	sort.Slice(info.Degraded, func(i, j int) bool { return info.Degraded[i] < info.Degraded[j] })
	if len(info.Degraded) != 2 || info.Degraded[0] != 1 || info.Degraded[1] != 3 {
		t.Fatalf("Degraded = %v, want [1 3]", info.Degraded)
	}
	if info.StaleSince.IsZero() {
		t.Fatal("StaleSince not reported for degraded nodes")
	}
	if len(rids) != len(baseline) {
		t.Fatalf("degraded search lost results: %v vs baseline %v", rids, baseline)
	}
	for i := range rids {
		if rids[i] != baseline[i] {
			t.Fatalf("degraded search diverged: %v vs baseline %v", rids, baseline)
		}
	}
	// Search (the strict API) must also succeed transparently.
	strict, err := sc.cluster.Search(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil {
		t.Fatalf("Search with degraded coverage failed: %v", err)
	}
	if len(strict) != len(baseline) {
		t.Fatalf("strict search lost results: %v", strict)
	}

	// A third failure exceeds the budget: completeness can no longer be
	// promised, so the dead nodes must surface as Failed again.
	sc.kill(4)
	sc.step(ctx)
	_, info, err = sc.cluster.SearchPartialInfo(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if info.Complete() {
		t.Fatal("search claimed completeness beyond the parity budget")
	}
}

// TestRepairJournalRingBound: the repair journal is a ring — it never
// grows past JournalCap, sheds oldest-first, counts what it shed, and
// keeps sequence numbers monotonic so an auditor can see the gap.
func TestRepairJournalRingBound(t *testing.T) {
	sc := newSupervisedCluster(t, 3, 1, SupervisorConfig{JournalCap: 8})
	for i := 0; i < 20; i++ {
		sc.sup.journalOne(transport.NodeID(i%3), RepairDetected, "synthetic")
	}
	length, dropped, capacity := sc.sup.JournalStats()
	if capacity != 8 {
		t.Fatalf("JournalCap = %d, want 8", capacity)
	}
	if length != 8 {
		t.Fatalf("journal length = %d, want bounded at 8", length)
	}
	if dropped != 12 {
		t.Fatalf("dropped = %d, want 12", dropped)
	}
	j := sc.sup.Journal()
	if len(j) != 8 {
		t.Fatalf("Journal() length = %d, want 8", len(j))
	}
	for i, r := range j {
		if want := uint64(13 + i); r.Seq != want {
			t.Fatalf("journal[%d].Seq = %d, want %d (newest records must survive in order)", i, r.Seq, want)
		}
	}
}
