package sdds

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// insertTCPBenchCluster builds the same four-node cluster as
// insertBenchCluster but over real loopback sockets: every node runs a
// v2 Server on 127.0.0.1, the client is a pooled multiplexed TCP
// transport, and node-to-node forwards ride their own TCP transport so
// nothing short-circuits through process memory. This is the fabric the
// wire-protocol work targets, and the one the regression test times.
func insertTCPBenchCluster(tb testing.TB, nodes int) (*Cluster, *countingTransport, func()) {
	tb.Helper()
	ids := make([]transport.NodeID, nodes)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := NewPlacement(ids)
	if err != nil {
		tb.Fatal(err)
	}
	peers := transport.NewTCP(nil)
	addrs := make(map[transport.NodeID]string, nodes)
	servers := make([]*transport.Server, 0, nodes)
	listeners := make([]net.Listener, 0, nodes)
	for _, id := range ids {
		node := NewNode(id, peers, place)
		srv := transport.NewServer(node.Handler())
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		go srv.Serve(lis)
		peers.AddNode(id, lis.Addr().String())
		addrs[id] = lis.Addr().String()
		servers = append(servers, srv)
		listeners = append(listeners, lis)
	}
	cli := transport.NewTCP(addrs)
	ct := &countingTransport{Transport: cli}
	cleanup := func() {
		cli.Close()
		peers.Close()
		for i := range servers {
			listeners[i].Close()
			servers[i].Close()
		}
	}
	return NewCluster(ct, place), ct, cleanup
}

// TestBatchedInsertWallClockRegression locks in the batched-insert
// contract on BOTH axes: batched InsertIndexed must send fewer RPCs
// than the sequential path (roughly one per destination node instead of
// one per index record) AND win on wall clock. The wall-clock half used
// to be a documented regression — the request-per-connection-turn
// transport ate the per-RPC savings, and this test t.Skipped with the
// measured gap — until ROADMAP item 2 landed: the pooled, multiplexed
// v2 wire protocol, batch requests encoded straight into pooled
// writers, streaming batch decode, and fan-out over warm-stack pooled
// workers. The comparison runs over real loopback TCP, the fabric the
// regression lived on: sequential pays one round-trip per index record
// while batched scatters one frame per destination node, so the per-RPC
// saving now shows up as wall-clock time. Both halves are hard
// assertions so the gain cannot silently regress.
func TestBatchedInsertWallClockRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	pl := benchPipeline(t, 4, 2, 4)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	const records = 300
	recSets := make([][]core.IndexRecord, records)
	for i := range recSets {
		rc := make([]byte, 24)
		for j := range rc {
			rc[j] = byte('A' + rng.Intn(26))
		}
		recs, err := pl.BuildIndex(uint64(i+1), rc)
		if err != nil {
			t.Fatal(err)
		}
		recSets[i] = recs
	}

	// One timed pass per strategy over a fresh cluster, warmed once to
	// keep one-time setup (lazy bucket creation, first splits, pool
	// dials) out of the comparison. Best-of-3 to damp scheduler noise.
	measure := func(batched bool) (time.Duration, int64) {
		var best time.Duration
		var rpcs int64
		for trial := 0; trial < 3; trial++ {
			c, ct, cleanup := insertTCPBenchCluster(t, 4)
			insert := func() {
				for _, recs := range recSets {
					var err error
					if batched {
						err = c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits)
					} else {
						err = c.InsertIndexedSequential(ctx, FileIndex, recs, pl.K(), slotBits)
					}
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			insert() // warm-up pass
			ct.sends.Store(0)
			start := time.Now()
			insert()
			elapsed := time.Since(start)
			if trial == 0 || elapsed < best {
				best = elapsed
				rpcs = ct.sends.Load()
			}
			cleanup()
		}
		return best, rpcs
	}

	seqTime, seqRPCs := measure(false)
	batTime, batRPCs := measure(true)

	if batRPCs >= seqRPCs {
		t.Fatalf("batching no longer saves RPCs: batched %d >= sequential %d",
			batRPCs, seqRPCs)
	}
	t.Logf("sequential: %v for %d RPCs (%.2f rpcs/record)", seqTime, seqRPCs,
		float64(seqRPCs)/records)
	t.Logf("batched:    %v for %d RPCs (%.2f rpcs/record)", batTime, batRPCs,
		float64(batRPCs)/records)

	if batTime >= seqTime {
		t.Fatalf("batched InsertIndexed sent %.1fx fewer RPCs (%d vs %d) but was "+
			"%.2fx SLOWER on wall clock (%v vs %v); batching must beat "+
			"sequential on both",
			float64(seqRPCs)/float64(batRPCs), batRPCs, seqRPCs,
			float64(batTime)/float64(seqTime), batTime, seqTime)
	}
}
