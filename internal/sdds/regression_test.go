package sdds

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

// TestBatchedInsertWallClockRegression documents a known performance
// regression: batched InsertIndexed sends fewer RPCs than the
// sequential path (roughly one per destination node instead of one per
// index record), yet currently LOSES to sequential on wall clock. The
// per-RPC savings are eaten by the request-per-connection-turn
// transport: each batched frame is larger, serialises more work into a
// single connection turn, and forfeits the pipelining the small
// sequential requests get for free.
//
// The RPC-count half of the contract is asserted unconditionally —
// batching must keep sending fewer RPCs. The wall-clock half is the
// regression: while batched remains slower, the test t.Skips with the
// measured numbers so the suite stays green but the gap stays visible
// in every -v run. Once ROADMAP item 2 ("Transport/wire overhaul:
// pooled, multiplexed, zero-copy RPC") lands and batching wins on both
// metrics, this test passes on its own — at that point promote the
// skip into a hard assertion and close the ROADMAP item.
func TestBatchedInsertWallClockRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	pl := benchPipeline(t, 4, 2, 4)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	const records = 300
	recSets := make([][]core.IndexRecord, records)
	for i := range recSets {
		rc := make([]byte, 24)
		for j := range rc {
			rc[j] = byte('A' + rng.Intn(26))
		}
		recs, err := pl.BuildIndex(uint64(i+1), rc)
		if err != nil {
			t.Fatal(err)
		}
		recSets[i] = recs
	}

	// One timed pass per strategy over a fresh cluster, warmed once to
	// keep one-time setup (lazy bucket creation, first splits) out of
	// the comparison. Best-of-3 to damp scheduler noise.
	measure := func(batched bool) (time.Duration, int64) {
		var best time.Duration
		var rpcs int64
		for trial := 0; trial < 3; trial++ {
			c, ct := insertBenchCluster(t, 4)
			insert := func() {
				for _, recs := range recSets {
					var err error
					if batched {
						err = c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits)
					} else {
						err = c.InsertIndexedSequential(ctx, FileIndex, recs, pl.K(), slotBits)
					}
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			insert() // warm-up pass
			ct.sends.Store(0)
			start := time.Now()
			insert()
			elapsed := time.Since(start)
			if trial == 0 || elapsed < best {
				best = elapsed
				rpcs = ct.sends.Load()
			}
		}
		return best, rpcs
	}

	seqTime, seqRPCs := measure(false)
	batTime, batRPCs := measure(true)

	if batRPCs >= seqRPCs {
		t.Fatalf("batching no longer saves RPCs: batched %d >= sequential %d",
			batRPCs, seqRPCs)
	}
	t.Logf("sequential: %v for %d RPCs (%.2f rpcs/record)", seqTime, seqRPCs,
		float64(seqRPCs)/records)
	t.Logf("batched:    %v for %d RPCs (%.2f rpcs/record)", batTime, batRPCs,
		float64(batRPCs)/records)

	if batTime >= seqTime {
		t.Skipf("KNOWN REGRESSION (ROADMAP item 2, transport/wire overhaul): "+
			"batched InsertIndexed sent %.1fx fewer RPCs (%d vs %d) but was "+
			"%.2fx SLOWER on wall clock (%v vs %v); batching must beat "+
			"sequential on both once the transport supports pooled, "+
			"multiplexed RPC",
			float64(seqRPCs)/float64(batRPCs), batRPCs, seqRPCs,
			float64(batTime)/float64(seqTime), batTime, seqTime)
	}
	// Reached only once the regression is fixed: batched wins on both
	// RPC count and wall clock. Keep it that way.
	t.Logf("regression fixed: batched beats sequential on wall clock; " +
		"promote this skip to an assertion and close ROADMAP item 2")
}
