package sdds

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lhstar"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Cluster is the client-plus-coordinator side of the SDDS: it tracks
// each file's true state (as the split coordinator), keeps a client
// image per file (deliberately allowed to lag, exercising forwarding
// and IAMs), and executes the distributed operations over a Transport.
//
// The LH* coordinator is a distinguished site in the paper; here it
// lives in the client process, which is equivalent for a single-writer
// deployment and keeps the daemon nodes entirely key- and
// state-agnostic.
type Cluster struct {
	tr    transport.Transport
	place *Placement

	// opsMu excludes structural changes (splits/merges) from normal
	// operations: Put/Get/Delete hold it shared, split/merge exclusive.
	// Without it a record could land in a bucket mid-extraction and be
	// silently lost or reverted.
	opsMu sync.RWMutex

	mu         sync.Mutex
	files      map[FileID]*fileState
	migResumes uint64 // resume drives performed by this process

	// miglog journals every split/merge intent before its first RPC and
	// its outcome after the last, making growth resumable (DESIGN.md
	// §14). Defaults to an in-memory log; AttachMigrationLog installs a
	// durable one. Only mutated under opsMu exclusive.
	miglog MigrationLog

	degradedMu sync.RWMutex
	degraded   DegradedProvider

	met clusterMetrics // set by Instrument before traffic; nil-safe
}

// DegradedProvider supplies last-synced node images for degraded-mode
// search: when a broadcast cannot reach a node, the cluster asks the
// provider for that node's image and serves the node's index buckets
// from it instead of dropping their matches. A Supervisor implements
// this over its Guardian.
type DegradedProvider interface {
	// DegradedImage returns the node's last-synced serialized image and
	// the sync time, or ok=false when the node must not be served
	// degraded (healthy, never synced, or failure budget exceeded).
	DegradedImage(node transport.NodeID) (img []byte, syncedAt time.Time, ok bool)
}

// SetDegradedProvider installs (or, with nil, removes) the degraded
// search provider.
func (c *Cluster) SetDegradedProvider(p DegradedProvider) {
	c.degradedMu.Lock()
	c.degraded = p
	c.degradedMu.Unlock()
}

func (c *Cluster) degradedProvider() DegradedProvider {
	c.degradedMu.RLock()
	defer c.degradedMu.RUnlock()
	return c.degraded
}

type fileState struct {
	state   lhstar.State
	image   lhstar.Image // client image; lags behind state on purpose
	size    int          // total records (coordinator's load tracker)
	maxLoad int
	minLoad int // merge threshold; 0 disables shrinking
	splits  int
	merges  int
	iams    int
}

// DefaultMaxLoad is the per-bucket split threshold.
const DefaultMaxLoad = 128

// NewCluster builds a cluster client over the transport and placement.
func NewCluster(tr transport.Transport, place *Placement) *Cluster {
	return &Cluster{
		tr:     tr,
		place:  place,
		files:  make(map[FileID]*fileState),
		miglog: NewMemMigrationLog(),
	}
}

// AttachMigrationLog installs a durable migration log, replacing the
// default in-memory one. Must be called before any split or merge.
// Committed intents already in the log are folded into the coordinator
// file state (the log doubles as the coordinator's state journal — a
// restarted coordinator otherwise believes every file is back to one
// bucket); it returns the number of in-flight migrations found, which
// the caller should resolve with ResumeMigrations once nodes are up.
func (c *Cluster) AttachMigrationLog(lg MigrationLog) (inFlight int, err error) {
	c.opsMu.Lock()
	defer c.opsMu.Unlock()
	if len(c.miglog.Records()) > 0 {
		return 0, fmt.Errorf("sdds: migration log must be attached before any split or merge")
	}
	recs := lg.Records()
	sortRecordsByMID(recs)
	c.mu.Lock()
	for _, r := range recs {
		switch {
		case !r.Done:
			inFlight++
		case r.Outcome == MigrationCommitted:
			f := c.file(r.Intent.File)
			f.state = resultingState(r.Intent)
			f.image = f.state.Image()
		}
	}
	c.miglog = lg
	c.mu.Unlock()
	c.syncMigGauge()
	return inFlight, nil
}

// MigrationStats summarizes the migration ledger: durable counts from
// the journal plus this process's resume drives.
func (c *Cluster) MigrationStats() MigrationStats {
	c.mu.Lock()
	lg := c.miglog
	resumes := c.migResumes
	c.mu.Unlock()
	s := migStatsOf(lg.Records())
	s.Resumed = resumes
	return s
}

// Transport returns the underlying transport.
func (c *Cluster) Transport() transport.Transport { return c.tr }

// Placement returns the bucket placement.
func (c *Cluster) Placement() *Placement { return c.place }

func (c *Cluster) file(id FileID) *fileState {
	f, ok := c.files[id]
	if !ok {
		f = &fileState{maxLoad: DefaultMaxLoad, minLoad: DefaultMaxLoad / 4}
		c.files[id] = f
	}
	return f
}

// SetMaxLoad adjusts a file's split threshold (records per bucket).
func (c *Cluster) SetMaxLoad(id FileID, maxLoad int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if maxLoad > 0 {
		f := c.file(id)
		f.maxLoad = maxLoad
		f.minLoad = maxLoad / 4
	}
}

// State returns the coordinator state of a file.
func (c *Cluster) State(id FileID) lhstar.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.file(id).state
}

// Image returns the current client image of a file.
func (c *Cluster) Image(id FileID) lhstar.Image {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.file(id).image
}

// Stats returns cumulative split and IAM counters for a file.
func (c *Cluster) Stats(id FileID) (splits, iams int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.file(id)
	return f.splits, f.iams
}

// Merges returns the cumulative merge (shrink) counter for a file.
func (c *Cluster) Merges(id FileID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.file(id).merges
}

// Put stores a key/value pair in a file, splitting the file if it
// overflows.
func (c *Cluster) Put(ctx context.Context, id FileID, key uint64, value []byte) error {
	c.met.puts.Inc()
	c.opsMu.RLock()
	c.mu.Lock()
	f := c.file(id)
	addr := f.image.Address(key)
	c.mu.Unlock()

	req := putReq{file: id, addr: addr, key: key, value: value}
	node := c.place.NodeOf(addr)
	w := getWriter()
	req.encodeTo(w)
	raw, err := c.tr.Send(ctx, node, opPut, w.b)
	putWriter(w)
	if err != nil {
		c.opsMu.RUnlock()
		return err
	}
	resp, err := decodePutResp(raw)
	if err != nil {
		c.opsMu.RUnlock()
		return err
	}

	c.mu.Lock()
	if resp.iamAddr != addr {
		f.image.Adjust(resp.iamAddr, uint(resp.iamLevel))
		f.iams++
		c.met.iams.Inc()
		obs.TraceFrom(ctx).AddHops(1)
	}
	if resp.isNew {
		f.size++
	}
	needSplit := f.size > int(f.state.Buckets())*f.maxLoad
	c.mu.Unlock()
	c.opsMu.RUnlock()

	if needSplit {
		return c.split(ctx, id)
	}
	return nil
}

// Get retrieves a value by key.
func (c *Cluster) Get(ctx context.Context, id FileID, key uint64) ([]byte, bool, error) {
	c.met.gets.Inc()
	c.opsMu.RLock()
	defer c.opsMu.RUnlock()
	c.mu.Lock()
	f := c.file(id)
	addr := f.image.Address(key)
	c.mu.Unlock()

	req := keyReq{file: id, addr: addr, key: key}
	w := getWriter()
	req.encodeTo(w)
	raw, err := c.tr.Send(ctx, c.place.NodeOf(addr), opGet, w.b)
	putWriter(w)
	if err != nil {
		return nil, false, err
	}
	resp, err := decodeValueResp(raw)
	if err != nil {
		return nil, false, err
	}
	if resp.iamAddr != addr {
		c.mu.Lock()
		f.image.Adjust(resp.iamAddr, uint(resp.iamLevel))
		f.iams++
		c.mu.Unlock()
		c.met.iams.Inc()
		obs.TraceFrom(ctx).AddHops(1)
	}
	if !resp.found {
		return nil, false, nil
	}
	return resp.value, true, nil
}

// Delete removes a key, reporting whether it existed.
func (c *Cluster) Delete(ctx context.Context, id FileID, key uint64) (bool, error) {
	c.met.deletes.Inc()
	c.opsMu.RLock()
	c.mu.Lock()
	f := c.file(id)
	addr := f.image.Address(key)
	c.mu.Unlock()

	req := keyReq{file: id, addr: addr, key: key}
	w := getWriter()
	req.encodeTo(w)
	raw, err := c.tr.Send(ctx, c.place.NodeOf(addr), opDelete, w.b)
	putWriter(w)
	if err != nil {
		c.opsMu.RUnlock()
		return false, err
	}
	resp, err := decodeValueResp(raw)
	if err != nil {
		c.opsMu.RUnlock()
		return false, err
	}
	c.mu.Lock()
	if resp.iamAddr != addr {
		f.image.Adjust(resp.iamAddr, uint(resp.iamLevel))
		f.iams++
		c.met.iams.Inc()
		obs.TraceFrom(ctx).AddHops(1)
	}
	needMerge := false
	if resp.found {
		f.size--
		needMerge = f.minLoad > 0 && f.state.Buckets() > 1 &&
			f.size < int(f.state.Buckets()-1)*f.minLoad
	}
	c.mu.Unlock()
	c.opsMu.RUnlock()
	if needMerge {
		if err := c.merge(ctx, id); err != nil {
			return resp.found, err
		}
	}
	return resp.found, nil
}

// merge performs one coordinator-driven file shrink: close the last
// split's image bucket, absorb its records back, retreat the state.
// After a shrink the client image is refreshed from the coordinator
// state — a shrunken file can otherwise leave images pointing at
// buckets that no longer exist (LH* shrinking requires coordinator
// assistance for exactly this reason).
func (c *Cluster) merge(ctx context.Context, id FileID) error {
	for {
		done, err := c.mergeOne(ctx, id)
		if err != nil || done {
			return err
		}
	}
}

// mergeOne performs at most one shrink as a two-phase migration: the
// closing bucket's records are journaled as outgoing, durably absorbed
// by the surviving partner, then committed (DESIGN.md §14); done
// reports that no (further) shrink is needed.
func (c *Cluster) mergeOne(ctx context.Context, id FileID) (done bool, err error) {
	c.opsMu.Lock()
	defer c.opsMu.Unlock()
	if err := c.resumeFileLocked(ctx, id); err != nil {
		return false, err
	}
	c.mu.Lock()
	f := c.file(id)
	if f.state.Buckets() <= 1 || f.size >= int(f.state.Buckets()-1)*f.minLoad {
		c.mu.Unlock()
		return true, nil
	}
	st := f.state
	if !st.RetreatSplit() {
		c.mu.Unlock()
		return true, nil
	}
	// The closing bucket (records leave) and the surviving partner they
	// return to; both sit at level st.I+1, the level the split that
	// created the image bucket raised them to.
	intent := MigrationIntent{
		Kind:      MigrateMerge,
		File:      id,
		From:      st.N + 1<<st.I,
		To:        st.N,
		Level:     uint8(st.I + 1),
		PrevState: f.state,
	}
	c.mu.Unlock()

	mid, err := c.miglog.Begin(intent)
	if err != nil {
		return false, fmt.Errorf("sdds: journaling merge intent: %w", err)
	}
	intent.MID = mid
	c.met.migStarted.Inc()
	c.syncMigGauge()
	return false, c.driveMigrationLocked(ctx, intent)
}

// split performs one coordinator-driven LH* split of the file as a
// two-phase migration: journal the intent, prepare the outgoing half on
// the source (which keeps serving it), durably absorb it at the target,
// then commit both sides (DESIGN.md §14). Serialized per cluster.
func (c *Cluster) split(ctx context.Context, id FileID) error {
	c.opsMu.Lock()
	defer c.opsMu.Unlock()
	if err := c.resumeFileLocked(ctx, id); err != nil {
		return err
	}
	c.mu.Lock()
	f := c.file(id)
	if f.size <= int(f.state.Buckets())*f.maxLoad {
		c.mu.Unlock()
		return nil // lost the race; someone else split already
	}
	from, to := f.state.NextSplit()
	level := f.state.BucketLevel(from)
	intent := MigrationIntent{
		Kind:      MigrateSplit,
		File:      id,
		From:      from,
		To:        to,
		Level:     uint8(level),
		PrevState: f.state,
	}
	c.mu.Unlock()

	mid, err := c.miglog.Begin(intent)
	if err != nil {
		return fmt.Errorf("sdds: journaling split intent: %w", err)
	}
	intent.MID = mid
	c.met.migStarted.Inc()
	c.syncMigGauge()
	return c.driveMigrationLocked(ctx, intent)
}

// isDefinitive reports whether a Send error is a definitive rejection
// by the remote handler (safe to treat as "the operation did not and
// will not apply") as opposed to a transport failure where the outcome
// is unknown. Transports wrap handler errors as *transport.RemoteError.
func isDefinitive(err error) bool {
	var re *transport.RemoteError
	return errors.As(err, &re)
}

// driveMigrationLocked executes (or re-executes — every step is keyed
// by the migration ID and idempotent) one journaled migration to a
// durable outcome. On a transport failure the migration stays in-flight
// in the log and the error is returned; the next split/merge on the
// file, or ResumeMigrations, re-drives it. Callers must hold opsMu
// exclusively.
func (c *Cluster) driveMigrationLocked(ctx context.Context, intent MigrationIntent) error {
	hdr := migrateHeader{
		mid:   intent.MID,
		kind:  intent.Kind,
		file:  intent.File,
		from:  intent.From,
		to:    intent.To,
		level: intent.Level,
	}
	srcNode := c.place.NodeOf(intent.From)
	dstNode := c.place.NodeOf(intent.To)

	// Phase 1: the source journals the moved set as outgoing, freezes
	// the bucket for writes, and returns a copy — destroying nothing.
	raw, err := c.tr.Send(ctx, srcNode, opMigratePrepare, migratePrepareReq{hdr}.encode())
	if err != nil {
		if !isDefinitive(err) {
			return fmt.Errorf("sdds: migration %d: preparing bucket %d on node %d: %w", intent.MID, intent.From, srcNode, err)
		}
		return c.abortMigrationLocked(ctx, intent,
			fmt.Errorf("sdds: migration %d: source node %d rejected prepare: %w", intent.MID, srcNode, err))
	}
	resp, err := decodeMigratePrepareResp(raw)
	if err != nil {
		return err
	}
	switch resp.status {
	case migrateStatusCommitted:
		// The source already committed durably (a prior drive got at
		// least that far); roll the rest forward.
		return c.finishCommitLocked(ctx, intent, true)
	case migrateStatusAborted:
		// The source already aborted durably; finish the ledger to match.
		return c.abortMigrationLocked(ctx, intent, nil)
	}

	// Phase 2: the target durably lands the records under the migration
	// ID. Idempotent: a retried absorb acks without re-applying.
	absorb := migrateAbsorbReq{migrateHeader: hdr, batch: resp.batch}
	if _, err := c.tr.Send(ctx, dstNode, opMigrateAbsorb, absorb.encode()); err != nil {
		if !isDefinitive(err) {
			return fmt.Errorf("sdds: migration %d: absorbing into bucket %d on node %d: %w", intent.MID, intent.To, dstNode, err)
		}
		return c.abortMigrationLocked(ctx, intent,
			fmt.Errorf("sdds: migration %d: target node %d rejected absorb: %w", intent.MID, dstNode, err))
	}

	// Phase 3: commit — the source applies its deferred destructive half.
	return c.finishCommitLocked(ctx, intent, false)
}

// finishCommitLocked sends the commits (source first — it holds the
// deferred destructive half — then target) and records the committed
// outcome and resulting file state. After the target's durable absorb,
// commit is the only direction: a commit-send failure leaves the
// migration in-flight for a later re-drive rather than aborting.
// Callers must hold opsMu exclusively.
func (c *Cluster) finishCommitLocked(ctx context.Context, intent MigrationIntent, sourceDone bool) error {
	fin := migrateFinishReq{mid: intent.MID}.encode()
	srcNode := c.place.NodeOf(intent.From)
	dstNode := c.place.NodeOf(intent.To)
	if !sourceDone {
		if _, err := c.tr.Send(ctx, srcNode, opMigrateCommit, fin); err != nil {
			return fmt.Errorf("sdds: migration %d: committing source bucket %d on node %d: %w", intent.MID, intent.From, srcNode, err)
		}
	}
	// When placement puts both buckets on one node, the source commit
	// settled the target role too (the node applies every role it holds
	// for the ID in one commit).
	if dstNode != srcNode {
		if _, err := c.tr.Send(ctx, dstNode, opMigrateCommit, fin); err != nil {
			return fmt.Errorf("sdds: migration %d: committing target bucket %d on node %d: %w", intent.MID, intent.To, dstNode, err)
		}
	}
	if err := c.miglog.Finish(intent.MID, MigrationCommitted); err != nil {
		return err
	}
	c.met.migCommitted.Inc()
	c.mu.Lock()
	f := c.file(intent.File)
	f.state = resultingState(intent)
	if intent.Kind == MigrateSplit {
		f.splits++
		c.met.splits.Inc()
		// Deliberately do NOT refresh the client image: letting it lag
		// exercises the real LH* path — server forwarding plus IAMs — on
		// every run, exactly as a remote client would behave.
	} else {
		f.merges++
		c.met.merges.Inc()
		// After a shrink the client image is refreshed from the
		// coordinator state — a shrunken file can otherwise leave images
		// pointing at buckets that no longer exist (LH* shrinking
		// requires coordinator assistance for exactly this reason).
		f.image = f.state.Image()
	}
	c.mu.Unlock()
	c.syncMigGauge()
	return nil
}

// abortMigrationLocked resolves a migration to the aborted outcome on
// both participants (the source forgets the intent — nothing ever left
// its bucket; the target surgically discards what it absorbed; a node
// that never saw the ID poisons it against delayed frames) and in the
// log, then returns cause. If an abort send fails the migration stays
// in-flight for a later re-drive. Callers must hold opsMu exclusively.
func (c *Cluster) abortMigrationLocked(ctx context.Context, intent MigrationIntent, cause error) error {
	fin := migrateFinishReq{mid: intent.MID}.encode()
	srcNode := c.place.NodeOf(intent.From)
	dstNode := c.place.NodeOf(intent.To)
	if _, err := c.tr.Send(ctx, srcNode, opMigrateAbort, fin); err != nil {
		return errors.Join(cause, fmt.Errorf("sdds: migration %d: aborting on source node %d: %w", intent.MID, srcNode, err))
	}
	if dstNode != srcNode {
		if _, err := c.tr.Send(ctx, dstNode, opMigrateAbort, fin); err != nil {
			return errors.Join(cause, fmt.Errorf("sdds: migration %d: aborting on target node %d: %w", intent.MID, dstNode, err))
		}
	}
	if err := c.miglog.Finish(intent.MID, MigrationAborted); err != nil {
		return errors.Join(cause, err)
	}
	c.met.migAborted.Inc()
	c.syncMigGauge()
	return cause
}

// resumeFileLocked re-drives any in-flight migration of the file before
// a new one begins — the in-process resume path (a prior drive may have
// returned a transport error and left the migration, and its frozen
// buckets, pending). Callers must hold opsMu exclusively.
func (c *Cluster) resumeFileLocked(ctx context.Context, id FileID) error {
	for _, r := range c.miglog.Records() {
		if r.Done || r.Intent.File != id {
			continue
		}
		c.noteResume()
		if err := c.driveMigrationLocked(ctx, r.Intent); err != nil {
			return fmt.Errorf("sdds: resuming migration %d: %w", r.Intent.MID, err)
		}
	}
	return nil
}

// ResumeMigrations rolls every in-flight migration in the log forward
// (or aborts it when a participant definitively rejects) and returns
// how many were resumed. A restarted coordinator calls this after
// AttachMigrationLog once nodes are reachable; the Supervisor calls it
// when the cluster turns healthy.
func (c *Cluster) ResumeMigrations(ctx context.Context) (resumed int, err error) {
	c.opsMu.Lock()
	defer c.opsMu.Unlock()
	for _, r := range c.miglog.Records() {
		if r.Done {
			continue
		}
		resumed++
		c.noteResume()
		if derr := c.driveMigrationLocked(ctx, r.Intent); derr != nil && err == nil {
			err = derr
		}
	}
	return resumed, err
}

func (c *Cluster) noteResume() {
	c.met.migResumed.Inc()
	c.mu.Lock()
	c.migResumes++
	c.mu.Unlock()
}

// syncMigGauge publishes the in-flight migration count from the log —
// the durable ground truth — so the gauge survives coordinator
// restarts along with it.
func (c *Cluster) syncMigGauge() {
	if c.met.migInFlight == nil {
		return
	}
	c.met.migInFlight.Set(int64(migStatsOf(c.miglog.Records()).InFlight))
}

// ResetImage discards the client image (back to the one-bucket initial
// image), used by tests to exercise forwarding and IAMs.
func (c *Cluster) ResetImage(id FileID) {
	c.mu.Lock()
	c.file(id).image = lhstar.Image{}
	c.mu.Unlock()
}

// Size returns the coordinator's record count for a file.
func (c *Cluster) Size(id FileID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.file(id).size
}

// NodeFailure is one node's error in a batched operation.
type NodeFailure struct {
	Node transport.NodeID
	Err  error
}

// BatchError reports the nodes whose part of a batched operation
// failed; the remaining nodes' parts were applied. It composes with
// the transport Retry middleware: a node is listed only after the
// retry layer has exhausted its attempts against it, so callers can
// re-drive just the failed portion (the puts are idempotent).
type BatchError struct {
	Failures []NodeFailure
}

func (e *BatchError) Error() string {
	nodes := make([]transport.NodeID, len(e.Failures))
	for i, f := range e.Failures {
		nodes[i] = f.Node
	}
	return fmt.Sprintf("sdds: batch failed on nodes %v: %v", nodes, e.Failures[0].Err)
}

// Unwrap exposes the per-node errors to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f.Err
	}
	return out
}

// InsertIndexed stores the index records of one record: every (chunking,
// site) piece stream becomes one SDDS record under the §5 composite key.
// The m·k piece records are coalesced by destination node into one
// opPutBatch message each and sent concurrently, so one record costs at
// most one RPC per destination node instead of m·k sequential puts. On
// partial failure the successful nodes' entries remain applied and a
// *BatchError names the failed nodes.
func (c *Cluster) InsertIndexed(ctx context.Context, id FileID, recs []core.IndexRecord, kSites int, slotBits uint) error {
	// Each destination's putBatchReq is encoded directly into a pooled
	// writer as entries are routed — no intermediate batchEntry slices or
	// per-entry indexValue buffers. The entry count isn't known until
	// routing finishes, so it is reserved up front and patched at the end.
	type nodeBatch struct {
		node     transport.NodeID
		w        *writer
		countOff int
		count    int
	}
	c.opsMu.RLock()
	c.mu.Lock()
	f := c.file(id)
	// Destinations are tracked in one value slice with linear lookup: a
	// record's pieces land on at most a handful of nodes, and on this hot
	// path a few integer compares beat a map's hash and allocation.
	var batches []nodeBatch
	for _, rec := range recs {
		for k, stream := range rec.Streams {
			key := ComposeIndexKey(rec.RID, rec.J, k, kSites, slotBits)
			addr := f.image.Address(key)
			node := c.place.NodeOf(addr)
			bi := -1
			for i := range batches {
				if batches[i].node == node {
					bi = i
					break
				}
			}
			if bi < 0 {
				w := getWriter()
				w.u8(uint8(id))
				batches = append(batches, nodeBatch{node: node, w: w, countOff: w.reserveU32()})
				bi = len(batches) - 1
			}
			b := &batches[bi]
			// One putBatchReq entry: addr, key, then the indexValue
			// (firstIndex + piece stream) encoded in place as the
			// length-prefixed value.
			b.w.u64(addr)
			b.w.u64(key)
			b.w.u32(uint32(8 + 2*len(stream)))
			b.w.u32(uint32(rec.FirstIndex))
			b.w.pieces(stream)
			b.count++
		}
	}
	c.mu.Unlock()

	nodeIDs := make([]transport.NodeID, len(batches))
	payloads := make([][]byte, len(batches))
	for i := range batches {
		b := &batches[i]
		b.w.patchU32(b.countOff, uint32(b.count))
		nodeIDs[i] = b.node
		payloads[i] = b.w.b
	}
	c.met.batches.Add(uint64(len(batches)))
	results := transport.ScatterList(ctx, c.tr, opPutBatch, nodeIDs, payloads)
	for i := range batches {
		putWriter(batches[i].w)
		batches[i].w = nil // the buffer may be reused; the response loop needs only counts
	}

	var batchErr *BatchError
	c.mu.Lock()
	for bi, r := range results {
		if r.Err != nil {
			if batchErr == nil {
				batchErr = &BatchError{}
			}
			batchErr.Failures = append(batchErr.Failures, NodeFailure{Node: r.Node, Err: r.Err})
			continue
		}
		it, derr := newBatchRespIter(r.Payload)
		if derr == nil && it.n != batches[bi].count {
			derr = fmt.Errorf("sdds: batch response has %d entries, want %d", it.n, batches[bi].count)
		}
		if derr != nil {
			c.mu.Unlock()
			c.opsMu.RUnlock()
			return derr
		}
		for i := 0; i < it.n; i++ {
			pr, perr := it.next()
			if perr != nil {
				c.mu.Unlock()
				c.opsMu.RUnlock()
				return perr
			}
			if pr.moved {
				f.image.Adjust(pr.iamAddr, uint(pr.iamLevel))
				f.iams++
				c.met.iams.Inc()
			}
			if pr.isNew {
				f.size++
			}
		}
	}
	needSplit := f.size > int(f.state.Buckets())*f.maxLoad
	c.mu.Unlock()
	c.opsMu.RUnlock()

	// With unreachable nodes a split would likely fail too and mask the
	// partial-failure report; leave the overflow for the next insert.
	if batchErr != nil {
		return batchErr
	}
	// A batch can overflow the file by more than one bucket's worth;
	// split until the load invariant holds again (split itself no-ops
	// when it finds the condition already restored).
	for needSplit {
		if err := c.split(ctx, id); err != nil {
			return err
		}
		c.mu.Lock()
		needSplit = f.size > int(f.state.Buckets())*f.maxLoad
		c.mu.Unlock()
	}
	return nil
}

// InsertIndexedSequential is the pre-batching insert path: one Put RPC
// per (chunking, site) piece. Kept as the reference implementation the
// batched path is benchmarked and tested against.
func (c *Cluster) InsertIndexedSequential(ctx context.Context, id FileID, recs []core.IndexRecord, kSites int, slotBits uint) error {
	for _, rec := range recs {
		for k, stream := range rec.Streams {
			key := ComposeIndexKey(rec.RID, rec.J, k, kSites, slotBits)
			val := indexValue{firstIndex: uint32(rec.FirstIndex), pieces: stream}.encode()
			if err := c.Put(ctx, id, key, val); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeleteIndexed removes all index pieces of a record.
func (c *Cluster) DeleteIndexed(ctx context.Context, id FileID, rid uint64, m, kSites int, slotBits uint) error {
	for j := 0; j < m; j++ {
		for k := 0; k < kSites; k++ {
			key := ComposeIndexKey(rid, j, k, kSites, slotBits)
			if _, err := c.Delete(ctx, id, key); err != nil {
				return err
			}
		}
	}
	return nil
}

// SearchInfo reports how a search's per-node fan-out went.
type SearchInfo struct {
	// Failed lists the nodes that could not be reached AND could not be
	// served degraded — their matches are missing from the result.
	Failed []transport.NodeID
	// Degraded lists the unreachable nodes whose index buckets were
	// served from the guardian's last-synced images instead; their
	// matches are present, as of StaleSince.
	Degraded []transport.NodeID
	// StaleSince is the guardian sync time the degraded buckets reflect
	// (zero when Degraded is empty). Writes after this instant that
	// landed on the degraded nodes are not visible.
	StaleSince time.Time
}

// Complete reports whether the result misses no node's matches (live or
// degraded-served).
func (i SearchInfo) Complete() bool { return len(i.Failed) == 0 }

// Search broadcasts a compiled query to every node in parallel, gathers
// the raw per-site hits, and combines them: a series hit requires all K
// sites of a chunking to agree at the same chunk offset; record-level
// acceptance follows the verification mode. It returns the sorted
// matching RIDs. Unreachable nodes are transparently served from the
// degraded provider's last-synced images when one is installed; Search
// fails only when some node is neither reachable nor degraded-servable
// (use SearchPartial for best-effort results in that case).
func (c *Cluster) Search(ctx context.Context, id FileID, pl *core.Pipeline, query *core.Query, mode core.VerifyMode) ([]uint64, error) {
	rids, info, err := c.SearchPartialInfo(ctx, id, pl, query, mode)
	if err != nil {
		return nil, err
	}
	if !info.Complete() {
		return nil, fmt.Errorf("sdds: search could not reach nodes %v (no degraded coverage)", info.Failed)
	}
	return rids, nil
}

// SearchPartial is Search with per-node failure tolerance: nodes that
// can be neither reached nor degraded-served are skipped and reported
// in failed. The result is then a best-effort under-approximation —
// index pieces on failed nodes cannot contribute, so matches whose
// K-site agreement involved a failed node are lost (never spuriously
// added: agreement still requires all K sites). Callers needing the
// degraded/staleness detail should use SearchPartialInfo.
func (c *Cluster) SearchPartial(ctx context.Context, id FileID, pl *core.Pipeline, query *core.Query, mode core.VerifyMode) (rids []uint64, failed []transport.NodeID, err error) {
	rids, info, err := c.SearchPartialInfo(ctx, id, pl, query, mode)
	return rids, info.Failed, err
}

// SearchPartialInfo is the full-fidelity search: it tolerates per-node
// failures, serves confirmed-down nodes from the degraded provider's
// last-synced images, and reports exactly which nodes failed, which
// were served degraded, and how stale the degraded buckets are.
func (c *Cluster) SearchPartialInfo(ctx context.Context, id FileID, pl *core.Pipeline, query *core.Query, mode core.VerifyMode) (rids []uint64, info SearchInfo, err error) {
	c.met.searches.Inc()
	start := time.Now()
	// Per-op trace: adopt the caller's (threaded via context) or, when
	// the cluster is instrumented, start one of our own.
	tr := obs.TraceFrom(ctx)
	if owned := tr == nil && c.met.reg != nil; owned {
		tr = c.met.reg.StartTrace("search")
		defer tr.Finish()
	}
	defer func() {
		c.met.searchNS.Observe(time.Since(start).Nanoseconds())
		if !info.Complete() {
			c.met.searchesPartial.Inc()
		}
	}()
	kSites := pl.K()
	m := pl.Chunkings()
	req := queryToSearchReq(id, query, m, kSites)
	// Broadcast over the placement's authoritative membership, not the
	// transport's live view — a crashed node must surface as a failure,
	// not be silently skipped.
	results := transport.Broadcast(ctx, c.tr, c.place.Nodes(), opSearch, req.encode())
	tr.Lap("broadcast")
	if err := ctx.Err(); err != nil {
		return nil, SearchInfo{}, err
	}

	ppc := 1
	if kSites == 1 {
		ppc = int((pl.ChunkBits() + 15) / 16)
	}
	type hitKey struct {
		rid      uint64
		j        int
		a        int
		chunkIdx int
	}
	// agree tracks which of the k dispersal sites reported each series
	// position as a bitmask — k is small by construction (a dispersal
	// parameter, not a cluster size), so one uint64 replaces an allocated
	// set per position.
	agree := make(map[hitKey]uint64)
	addHits := func(resp *searchResp) {
		for _, h := range resp.hits {
			if ppc > 1 && int(h.pieceOffset)%ppc != 0 {
				continue
			}
			if h.k >= 64 {
				continue // malformed site index; cannot contribute to agreement
			}
			k := hitKey{
				rid:      h.rid,
				j:        int(h.j),
				a:        int(h.a),
				chunkIdx: int(h.firstIndex) + int(h.pieceOffset)/ppc,
			}
			agree[k] |= 1 << uint(h.k)
		}
	}
	provider := c.degradedProvider()
	for _, r := range results {
		if r.Err != nil {
			if provider != nil {
				if img, syncedAt, ok := provider.DegradedImage(r.Node); ok {
					resp, derr := searchNodeImage(img, &req)
					if derr == nil {
						addHits(&resp)
						info.Degraded = append(info.Degraded, r.Node)
						info.StaleSince = syncedAt
						c.met.degradedServes.Inc()
						continue
					}
				}
			}
			info.Failed = append(info.Failed, r.Node)
			c.met.failedSites.Inc()
			continue
		}
		resp, derr := decodeSearchResp(r.Payload)
		if derr != nil {
			return nil, SearchInfo{}, derr
		}
		addHits(&resp)
	}
	byRID := make(map[uint64][]core.SeriesHit)
	for k, sites := range agree {
		if bits.OnesCount64(sites) == kSites {
			byRID[k.rid] = append(byRID[k.rid], core.SeriesHit{
				RID:        k.rid,
				J:          k.j,
				A:          k.a,
				ChunkIndex: k.chunkIdx,
			})
		}
	}
	geom := pl.Params().Chunk
	for rid, hits := range byRID {
		if core.CombineHits(hits, m, mode, geom) {
			rids = append(rids, rid)
		}
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	tr.Lap("combine")
	return rids, info, nil
}

// WordSearch broadcasts one word token to every node and returns the
// sorted RIDs of records whose word blob contains it — the [SWP00]
// word-search path. Exact: no false positives, no false negatives.
func (c *Cluster) WordSearch(ctx context.Context, id FileID, token []byte) ([]uint64, error) {
	c.met.wordSearches.Inc()
	req := wordSearchReq{file: id, token: token}
	results := transport.Broadcast(ctx, c.tr, c.place.Nodes(), opWordSearch, req.encode())
	var out []uint64
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		resp, err := decodeWordSearchResp(r.Payload)
		if err != nil {
			return nil, err
		}
		out = append(out, resp.rids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// While a migration is in flight both the source (frozen outgoing
	// set) and the target (absorbed copy) serve the moved records, so a
	// RID can be reported twice; collapse duplicates.
	uniq := out[:0]
	for i, rid := range out {
		if i == 0 || rid != out[i-1] {
			uniq = append(uniq, rid)
		}
	}
	return uniq, nil
}

// BucketInventory gathers every node's bucket stats for a file, sorted
// by address — an operator/debugging view.
func (c *Cluster) BucketInventory(ctx context.Context, id FileID) ([]BucketInfo, error) {
	results := transport.Broadcast(ctx, c.tr, c.place.Nodes(), opStats, []byte{byte(id)})
	var out []BucketInfo
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		resp, err := decodeStatsResp(r.Payload)
		if err != nil {
			return nil, err
		}
		for _, b := range resp.buckets {
			out = append(out, BucketInfo{
				Node:  r.Node,
				Addr:  b.addr,
				Level: uint(b.level),
				Size:  int(b.size),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out, nil
}

// BucketInfo describes one bucket's placement and load.
type BucketInfo struct {
	Node  transport.NodeID
	Addr  uint64
	Level uint
	Size  int
}
