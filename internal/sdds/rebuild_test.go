package sdds

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wal"
)

// walIndexHarness is a single durable node serving the index file
// through a real cluster client, for exercising the flat index's
// recovery paths: WAL replay, checkpoint restore, and wholesale node
// restore.
type walIndexHarness struct {
	t     *testing.T
	fs    *wal.MemFS
	place *Placement
	mem   *transport.Memory
	node  *Node
	c     *Cluster
}

func newWALIndexHarness(t *testing.T) *walIndexHarness {
	t.Helper()
	place, err := NewPlacement([]transport.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	h := &walIndexHarness{t: t, fs: wal.NewMemFS(), place: place}
	h.openNode()
	return h
}

// openNode (re)opens the durable state into a fresh node and cluster,
// as a restarted process would, replaying whatever the WAL holds.
func (h *walIndexHarness) openNode() wal.Outcome {
	h.t.Helper()
	st, err := wal.Open(h.fs, "node", wal.Options{CheckpointBytes: 4096})
	if err != nil {
		h.t.Fatalf("opening store: %v", err)
	}
	h.mem = transport.NewMemory()
	h.node = NewNode(0, h.mem, h.place)
	out, err := h.node.AttachStore(st)
	if err != nil {
		h.t.Fatalf("AttachStore: %v (outcome %v)", err, out)
	}
	h.mem.Register(0, h.node.Handler())
	h.c = NewCluster(h.mem, h.place)
	h.c.SetMaxLoad(FileIndex, 8)
	return out
}

// TestFlatIndexWALReplay checks the flat index after a WAL replay:
// recovery rebuilds it from the replayed buckets, search results equal
// the pre-restart ones and the linear scan, and a second recovery round
// (after the post-replay re-checkpoint) does not double-index anything.
func TestFlatIndexWALReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()
	h := newWALIndexHarness(t)

	contents := make(map[uint64][]byte)
	for rid := uint64(1); rid <= 50; rid++ {
		rc := randomRecord(rng)
		contents[rid] = rc
		recs, err := pl.BuildIndex(rid, rc)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	for rid := uint64(1); rid <= 10; rid++ {
		if err := h.c.DeleteIndexed(ctx, FileIndex, rid, pl.Chunkings(), pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
		delete(contents, rid)
	}

	search := func(q []byte) []uint64 {
		t.Helper()
		query, err := pl.BuildQuery(q, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.c.Search(ctx, FileIndex, pl, query, core.VerifyAny)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	queries := [][]byte{[]byte("ZZZZZZZZ")}
	for _, rc := range contents {
		if len(queries) >= 8 {
			break
		}
		if len(rc) >= 9 {
			queries = append(queries, rc[:9])
		}
	}
	before := make([][]uint64, len(queries))
	for i, q := range queries {
		before[i] = search(q)
	}

	// Restart 1: replay (checkpoint + journal tail).
	if out := h.openNode(); out != wal.OutcomeRecovered {
		t.Fatalf("first restart outcome %v, want recovered", out)
	}
	checkPostingInvariants(t, []*Node{h.node})
	for i, q := range queries {
		if got := search(q); !reflect.DeepEqual(got, before[i]) {
			t.Errorf("after replay: query %d: %v, want %v", i, got, before[i])
		}
	}

	// Force the recovered node to re-checkpoint, then recover again: the
	// restore-then-replay path must not double-index (any duplicate
	// postings would diverge from the fresh rebuild in the invariant
	// check, and search hits would duplicate).
	h.node.mu.Lock()
	cperr := h.node.store.Checkpoint(h.node.snapshotLocked())
	h.node.mu.Unlock()
	if cperr != nil {
		t.Fatalf("forced checkpoint: %v", cperr)
	}
	if out := h.openNode(); out != wal.OutcomeRecovered {
		t.Fatalf("second restart outcome %v, want recovered", out)
	}
	checkPostingInvariants(t, []*Node{h.node})
	for i, q := range queries {
		if got := search(q); !reflect.DeepEqual(got, before[i]) {
			t.Errorf("after re-checkpoint + replay: query %d: %v, want %v", i, got, before[i])
		}
	}

	// The recovered index must also equal a linear-scan node fed the
	// same recovered state (guardian-restore equivalence): restore the
	// recovered node's image into a linear-scan node and cross-compare.
	img, err := h.node.Handler()(ctx, opNodeSnapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	linMem := transport.NewMemory()
	linNode := NewNode(0, linMem, h.place)
	linNode.DisablePostingIndex()
	linMem.Register(0, linNode.Handler())
	if _, err := linNode.Handler()(ctx, opNodeRestore, img); err != nil {
		t.Fatal(err)
	}
	linC := NewCluster(linMem, h.place)
	// Share the client-side file image so both clusters address the same
	// bucket layout.
	linC.mu.Lock()
	h.c.mu.Lock()
	linC.files[FileIndex] = h.c.files[FileIndex]
	h.c.mu.Unlock()
	linC.mu.Unlock()
	for i, q := range queries {
		query, err := pl.BuildQuery(q, false)
		if err != nil {
			t.Fatal(err)
		}
		want, err := linC.Search(ctx, FileIndex, pl, query, core.VerifyAny)
		if err != nil {
			t.Fatal(err)
		}
		if got := search(q); !reflect.DeepEqual(got, want) {
			t.Errorf("posting vs linear after restore: query %d: %v, want %v", i, got, want)
		}
	}
}

// TestFlatIndexGuardianRestore round-trips a grown, churned node
// through snapshot + restore (the guardian resurrection path) and
// requires the rebuilt flat index to be exactly what the incremental
// one was: same invariants, same search results.
func TestFlatIndexGuardianRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()
	c, nodes := memClusterNodes(t, 3, false)
	c.SetMaxLoad(FileIndex, 8)

	contents := make(map[uint64][]byte)
	for rid := uint64(1); rid <= 80; rid++ {
		rc := randomRecord(rng)
		contents[rid] = rc
		recs, err := pl.BuildIndex(rid, rc)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	for rid := uint64(1); rid <= 30; rid++ {
		if err := c.DeleteIndexed(ctx, FileIndex, rid, pl.Chunkings(), pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
		delete(contents, rid)
	}

	var queries [][]byte
	for _, rc := range contents {
		if len(queries) >= 6 {
			break
		}
		if len(rc) >= 9 {
			queries = append(queries, rc[:9])
		}
	}
	results := func() [][]uint64 {
		t.Helper()
		out := make([][]uint64, len(queries))
		for i, q := range queries {
			query, err := pl.BuildQuery(q, false)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = got
		}
		return out
	}
	before := results()

	// Restore every node twice in a row: the second restore rebuilds an
	// index that was itself produced by a rebuild — any double-indexing
	// or leftover state would compound and show up in the invariants.
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			img, err := n.Handler()(ctx, opNodeSnapshot, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := n.Handler()(ctx, opNodeRestore, img); err != nil {
				t.Fatal(err)
			}
		}
		checkPostingInvariants(t, nodes)
		after := results()
		if !reflect.DeepEqual(after, before) {
			t.Fatalf("round %d: search results changed across restore: %v, want %v", round, after, before)
		}
	}
}
