package sdds

import (
	"sort"

	"repro/internal/disperse"
)

// legacyMapIndex reimplements the pre-flat posting index — the
// map[Piece]map[uint64][]uint32 two-level structure — behind the
// postingIndex interface. It exists purely as a differential reference:
// the churn/fuzz battery drives it and the flat index through identical
// op streams and requires identical search results, so any divergence
// in the packed representation is caught against the structure it
// replaced. Not used in production.
type legacyMapIndex struct {
	post    map[disperse.Piece]map[uint64][]uint32
	entries map[uint64]postEntry
}

func newLegacyMapIndex() *legacyMapIndex {
	return &legacyMapIndex{
		post:    make(map[disperse.Piece]map[uint64][]uint32),
		entries: make(map[uint64]postEntry),
	}
}

func (x *legacyMapIndex) put(key uint64, value []byte) {
	x.remove(key)
	iv, err := decodeIndexValue(value)
	if err != nil {
		return
	}
	x.entries[key] = postEntry{firstIndex: iv.firstIndex, pieces: iv.pieces}
	for off, p := range iv.pieces {
		m := x.post[p]
		if m == nil {
			m = make(map[uint64][]uint32)
			x.post[p] = m
		}
		m[key] = append(m[key], uint32(off))
	}
}

func (x *legacyMapIndex) putBatch(ents []kv) {
	for _, e := range ents {
		x.put(e.key, e.value)
	}
}

func (x *legacyMapIndex) remove(key uint64) {
	e, ok := x.entries[key]
	if !ok {
		return
	}
	delete(x.entries, key)
	for _, p := range e.pieces {
		if m := x.post[p]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(x.post, p)
			}
		}
	}
}

func (x *legacyMapIndex) entry(key uint64) (postEntry, bool) {
	e, ok := x.entries[key]
	return e, ok
}

// postings materializes the two-level map as a packed array, grouped by
// key (searchPosting memoizes the key decomposition across runs of
// equal keys, so grouping is part of the interface contract). The
// allocation per probe is acceptable: this implementation only runs in
// the test battery.
func (x *legacyMapIndex) postings(p disperse.Piece) []posting {
	m := x.post[p]
	if len(m) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var items []posting
	for _, key := range keys {
		for _, off := range m[key] {
			items = append(items, posting{key: key, off: off})
		}
	}
	return items
}

func (x *legacyMapIndex) forEach(fn func(p disperse.Piece, items []posting)) {
	for p := range x.post {
		fn(p, x.postings(p))
	}
}

func (x *legacyMapIndex) stats() indexStats {
	s := indexStats{entries: len(x.entries), pieces: len(x.post)}
	for _, m := range x.post {
		for _, offs := range m {
			s.live += len(offs)
		}
	}
	return s
}

func (x *legacyMapIndex) reset() {
	x.post = make(map[disperse.Piece]map[uint64][]uint32)
	x.entries = make(map[uint64]postEntry)
}
