package sdds

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/disperse"
)

// ---------------------------------------------------------------------
// Index-level differential harness: the flat index, the legacy map
// index, and a stored-value linear scan are driven through identical op
// streams and must report identical matches at every step. This is the
// miniature of the node search paths: probeMatches mirrors
// searchPosting's anchor-probe-then-verify walk, scanMatches mirrors
// searchBucket's full scan.
// ---------------------------------------------------------------------

// idxMatch is one (key, offset) pattern occurrence.
type idxMatch struct {
	key uint64
	off uint32
}

// probeMatches finds pattern occurrences through a posting index the
// way searchPosting does: walk the anchor piece's packed postings, skip
// tombstones, verify each candidate offset against the full pattern.
func probeMatches(idx postingIndex, pat []disperse.Piece) []idxMatch {
	var out []idxMatch
	for _, pt := range idx.postings(pat[0]) {
		if pt.off == tombstoneOff {
			continue
		}
		e, ok := idx.entry(pt.key)
		if !ok {
			continue
		}
		if core.MatchAt(e.pieces, pat, int(pt.off)) {
			out = append(out, idxMatch{key: pt.key, off: pt.off})
		}
	}
	sortMatches(out)
	return out
}

// scanMatches finds pattern occurrences by decoding every stored value
// — the linear-scan ground truth.
func scanMatches(stored map[uint64][]byte, pat []disperse.Piece) []idxMatch {
	var out []idxMatch
	for key, value := range stored {
		iv, err := decodeIndexValue(value)
		if err != nil {
			continue
		}
		for _, off := range core.MatchOffsets(iv.pieces, pat) {
			out = append(out, idxMatch{key: key, off: uint32(off)})
		}
	}
	sortMatches(out)
	return out
}

func sortMatches(ms []idxMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].key != ms[j].key {
			return ms[i].key < ms[j].key
		}
		return ms[i].off < ms[j].off
	})
}

// diffHarness drives the three representations in lockstep.
type diffHarness struct {
	flat   *flatIndex
	legacy *legacyMapIndex
	stored map[uint64][]byte
}

func newDiffHarness() *diffHarness {
	return &diffHarness{
		flat:   newFlatIndex(nil),
		legacy: newLegacyMapIndex(),
		stored: make(map[uint64][]byte),
	}
}

func (h *diffHarness) put(key uint64, value []byte) {
	h.flat.put(key, value)
	h.legacy.put(key, value)
	h.stored[key] = value
}

func (h *diffHarness) putBatch(ents []kv) {
	h.flat.putBatch(ents)
	// The legacy index and the stored map apply sequentially — the
	// semantics putBatch must be equivalent to.
	for _, e := range ents {
		h.legacy.put(e.key, e.value)
		h.stored[e.key] = e.value
	}
}

func (h *diffHarness) remove(key uint64) {
	h.flat.remove(key)
	h.legacy.remove(key)
	delete(h.stored, key)
}

// check requires all three representations to agree on every pattern in
// pats, the flat and legacy dumps to be identical, and the flat index's
// internal invariants to hold.
func (h *diffHarness) check(t *testing.T, step string, pats [][]disperse.Piece) {
	t.Helper()
	for pi, pat := range pats {
		want := scanMatches(h.stored, pat)
		if got := probeMatches(h.flat, pat); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: pattern %d: flat %v, linear scan %v", step, pi, got, want)
		}
		if got := probeMatches(h.legacy, pat); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: pattern %d: legacy %v, linear scan %v", step, pi, got, want)
		}
	}
	if got, want := dumpPostings(h.flat), dumpPostings(h.legacy); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: flat live postings diverge from legacy:\n got %v\nwant %v", step, got, want)
	}
	checkFlatInvariants(t, 0, 0, h.flat)
}

// zipfPieces draws a piece stream with zipfian piece popularity — the
// skew that concentrates churn on a few hot posting lists.
func zipfPieces(rng *rand.Rand, z *rand.Zipf, n int) []disperse.Piece {
	ps := make([]disperse.Piece, n)
	for i := range ps {
		ps[i] = disperse.Piece(z.Uint64())
	}
	return ps
}

func encodeTestValue(rng *rand.Rand, z *rand.Zipf) []byte {
	n := 1 + rng.Intn(12)
	return indexValue{
		firstIndex: uint32(rng.Intn(4)),
		pieces:     zipfPieces(rng, z, n),
	}.encode()
}

// TestIndexDifferentialRandomOps drives the three representations
// through a long random stream of puts, overwrites, deletes, batches,
// and rebuilds with zipfian piece popularity, checking equivalence at
// every step.
func TestIndexDifferentialRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := rand.NewZipf(rng, 1.2, 1, 63)
	h := newDiffHarness()

	pats := [][]disperse.Piece{
		{0}, {1}, {2, 0}, {0, 1, 2}, {5, 5}, {63},
	}
	keys := func() []uint64 {
		ks := make([]uint64, 0, len(h.stored))
		for k := range h.stored {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		return ks
	}
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // fresh put
			h.put(uint64(rng.Intn(200)), encodeTestValue(rng, z))
		case op < 6: // overwrite an existing key if any
			if ks := keys(); len(ks) > 0 {
				h.put(ks[rng.Intn(len(ks))], encodeTestValue(rng, z))
			}
		case op < 8: // delete (hits existing keys often)
			h.remove(uint64(rng.Intn(200)))
		case op < 9: // batch with duplicate keys and a foreign value
			var ents []kv
			for i := 0; i < 2+rng.Intn(10); i++ {
				key := uint64(rng.Intn(200))
				v := encodeTestValue(rng, z)
				if rng.Intn(8) == 0 {
					v = []byte("not an index value")
				}
				ents = append(ents, kv{key: key, value: v})
			}
			// Duplicate one key inside the batch: last occurrence must win.
			if len(ents) >= 2 && rng.Intn(2) == 0 {
				ents = append(ents, kv{key: ents[0].key, value: encodeTestValue(rng, z)})
			}
			h.putBatch(ents)
		default: // rebuild from stored state (the restore path)
			h.flat.reset()
			h.legacy.reset()
			var ents []kv
			for _, k := range keys() {
				ents = append(ents, kv{key: k, value: h.stored[k]})
			}
			h.flat.putBatch(ents)
			for _, e := range ents {
				h.legacy.put(e.key, e.value)
			}
		}
		if step%50 == 0 || step > 1900 {
			h.check(t, fmt.Sprintf("step %d", step), pats)
		}
	}
	h.check(t, "final", pats)
	if h.flat.stats().compactions == 0 {
		t.Error("random op stream triggered no compactions — churn too weak to prove the trigger")
	}
}

// FuzzIndexOps is the fuzz entry of the differential battery: the input
// bytes are decoded as an op stream (2 bytes per op: selector+key, then
// data bytes for values) applied to all three representations, which
// must agree on every anchor pattern afterwards and after each delete
// burst. Run via `make fuzz`.
func FuzzIndexOps(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x41, 0x42, 0x43, 0x10, 0x01, 0x20, 0x02, 0x91, 0x01})
	f.Add([]byte{0x00, 0x05, 0xFF, 0x00, 0x05, 0x00, 0x90, 0x05, 0x00, 0x05, 0x01})
	f.Add([]byte{0x30, 0x07, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99,
		0x90, 0x07, 0x30, 0x07, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := newDiffHarness()
		rng := rand.New(rand.NewSource(99))
		z := rand.NewZipf(rng, 1.2, 1, 15)
		pats := [][]disperse.Piece{{0}, {1}, {2}, {3, 0}, {15}}
		i := 0
		steps := 0
		for i+1 < len(data) && steps < 512 {
			sel, kb := data[i], data[i+1]
			i += 2
			key := uint64(kb)
			switch {
			case sel < 0x80: // put: next sel%8+1 bytes seed a value
				n := int(sel%8) + 1
				if i+n > len(data) {
					n = len(data) - i
				}
				seed := int64(0)
				for _, b := range data[i : i+n] {
					seed = seed<<8 | int64(b)
				}
				i += n
				vrng := rand.New(rand.NewSource(seed))
				vz := rand.NewZipf(vrng, 1.2, 1, 15)
				h.put(key, encodeTestValue(vrng, vz))
			case sel < 0xA0: // delete
				h.remove(key)
			case sel < 0xC0: // foreign value put
				h.put(key, []byte{sel, kb})
			default: // batch of small puts
				var ents []kv
				for j := 0; j < int(sel%6)+2; j++ {
					ents = append(ents, kv{key: (key + uint64(j)) % 64, value: encodeTestValue(rng, z)})
				}
				h.putBatch(ents)
			}
			steps++
			if steps%16 == 0 {
				h.check(t, fmt.Sprintf("fuzz step %d", steps), pats)
			}
		}
		h.check(t, "fuzz final", pats)
	})
}

// ---------------------------------------------------------------------
// Cluster-level churn: three real clusters — flat index, legacy map
// index (via the node's index factory), and linear scan — through
// inserts, overwrites, deletes (forcing splits and merges), and
// snapshot/restore, comparing Search results across all three.
// ---------------------------------------------------------------------

// memClusterFactory is memClusterNodes with an explicit posting-index
// factory installed on every node.
func memClusterFactory(t *testing.T, n int, factory func() postingIndex) (*Cluster, []*Node) {
	t.Helper()
	c, nodes := memClusterNodes(t, n, false)
	for _, node := range nodes {
		node.indexFactory = factory
	}
	return c, nodes
}

func TestIndexDifferentialChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	flat, flatNodes := memClusterNodes(t, 3, false)
	legacy, legacyNodes := memClusterFactory(t, 3, func() postingIndex { return newLegacyMapIndex() })
	lin, _ := memClusterNodes(t, 3, true)
	clusters := []*Cluster{flat, legacy, lin}
	for _, c := range clusters {
		c.SetMaxLoad(FileIndex, 8) // force plenty of splits
	}

	// Zipfian symbol alphabet skews piece popularity, concentrating
	// tombstone churn on hot posting lists.
	zs := rand.NewZipf(rng, 1.3, 1, 25)
	zipfRecord := func() []byte {
		n := 10 + rng.Intn(24)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('A' + zs.Uint64())
		}
		return b
	}

	contents := make(map[uint64][]byte)
	insert := func(rid uint64) {
		t.Helper()
		rc := zipfRecord()
		contents[rid] = rc
		recs, err := pl.BuildIndex(rid, rc)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range clusters {
			if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
				t.Fatal(err)
			}
		}
	}
	remove := func(rid uint64) {
		t.Helper()
		for _, c := range clusters {
			if err := c.DeleteIndexed(ctx, FileIndex, rid, pl.Chunkings(), pl.K(), slotBits); err != nil {
				t.Fatal(err)
			}
		}
		delete(contents, rid)
	}
	compare := func(stage string) {
		t.Helper()
		queries := [][]byte{[]byte("ZZZZZZZZZZ"), []byte("AAAAAAAAA")}
		for _, rc := range contents {
			if len(queries) >= 10 {
				break
			}
			if len(rc) >= 10 {
				off := rng.Intn(len(rc) - 9)
				queries = append(queries, rc[off:off+9])
			}
		}
		for qi, q := range queries {
			for _, mode := range []core.VerifyMode{core.VerifyAny, core.VerifyAll, core.VerifyAligned} {
				query, err := pl.BuildQuery(q, mode != core.VerifyAny)
				if err != nil {
					t.Fatal(err)
				}
				want, err := lin.Search(ctx, FileIndex, pl, query, mode)
				if err != nil {
					t.Fatal(err)
				}
				for ci, c := range clusters[:2] {
					got, err := c.Search(ctx, FileIndex, pl, query, mode)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: cluster %d query %d (%q) mode %d: got %v, linear %v",
							stage, ci, qi, q, mode, got, want)
					}
				}
			}
		}
		checkPostingInvariants(t, flatNodes)
		checkPostingInvariants(t, legacyNodes)
	}
	restore := func(nodes []*Node) {
		t.Helper()
		for _, n := range nodes {
			img, err := n.Handler()(ctx, opNodeSnapshot, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := n.Handler()(ctx, opNodeRestore, img); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: grow the file through splits.
	for rid := uint64(1); rid <= 100; rid++ {
		insert(rid)
	}
	if flat.State(FileIndex).Buckets() < 4 {
		t.Fatalf("index file did not split: %d buckets", flat.State(FileIndex).Buckets())
	}
	compare("after growth")

	// Phase 2: mixed churn — overwrites, deletes, fresh inserts.
	nextRID := uint64(101)
	for step := 0; step < 120; step++ {
		var rids []uint64
		for rid := range contents {
			rids = append(rids, rid)
		}
		sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
		switch {
		case step%3 == 0 && len(rids) > 0: // overwrite
			insert(rids[rng.Intn(len(rids))])
		case step%3 == 1 && len(rids) > 20: // delete
			remove(rids[rng.Intn(len(rids))])
		default:
			insert(nextRID)
			nextRID++
		}
	}
	compare("after churn")

	// Phase 3: snapshot/restore the indexed clusters (rebuild path),
	// then shrink hard enough to force merges.
	restore(flatNodes)
	restore(legacyNodes)
	compare("after restore")

	var rids []uint64
	for rid := range contents {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	for _, rid := range rids[:len(rids)-8] {
		remove(rid)
	}
	if flat.Merges(FileIndex) == 0 {
		t.Error("deletes triggered no merges")
	}
	compare("after deletes and merges")

	// The flat clusters must have actually exercised compaction for this
	// run to prove anything about it.
	var compactions uint64
	for _, n := range flatNodes {
		n.mu.RLock()
		for _, f := range n.files {
			if f.idx != nil {
				compactions += f.idx.stats().compactions
			}
		}
		n.mu.RUnlock()
	}
	if compactions == 0 {
		t.Error("cluster churn triggered no posting-list compactions")
	}
}

// TestSearchConcurrentWithChurn runs searches concurrently with
// insert/delete churn on a flat-index cluster — under -race this proves
// compaction and tombstoning under the node write lock never race with
// the shared-lock search path.
func TestSearchConcurrentWithChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pl := testPipeline(t, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()
	c, _ := memClusterNodes(t, 3, false)
	c.SetMaxLoad(FileIndex, 8)

	for rid := uint64(1); rid <= 40; rid++ {
		recs, err := pl.BuildIndex(rid, randomRecord(rng))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	query, err := pl.BuildQuery([]byte("ABCABCABC"), false)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny); err != nil {
				t.Errorf("concurrent search: %v", err)
				return
			}
		}
	}()
	churnRng := rand.New(rand.NewSource(32))
	for i := 0; i < 100; i++ {
		rid := uint64(1 + churnRng.Intn(40))
		if i%2 == 0 {
			if err := c.DeleteIndexed(ctx, FileIndex, rid, pl.Chunkings(), pl.K(), slotBits); err != nil {
				t.Fatal(err)
			}
		}
		recs, err := pl.BuildIndex(rid, randomRecord(churnRng))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
