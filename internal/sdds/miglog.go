package sdds

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/lhstar"
	"repro/internal/wal"
)

// The coordinator-side migration intent journal (DESIGN.md §14): every
// split/merge journals an intent BEFORE the first RPC and a durable
// outcome AFTER the last one, so a restarted coordinator knows exactly
// which migrations may be half-done on the nodes and can roll them
// forward or abort them instead of silently forgetting them. The log
// doubles as the coordinator's LH* state journal: folding the committed
// intents reproduces the file state a restarted coordinator lost with
// its memory.

// Exported migration kinds (numerically identical to the wire kinds).
const (
	// MigrateSplit moves the upper half of a splitting bucket to its new
	// image bucket.
	MigrateSplit = migrateSplit
	// MigrateMerge moves a closing bucket's records back to its
	// surviving partner.
	MigrateMerge = migrateMerge
)

// MigrationOutcome is the durable verdict of a finished migration.
type MigrationOutcome uint8

const (
	// MigrationCommitted: the target keeps the records; the source
	// dropped them.
	MigrationCommitted MigrationOutcome = MigrationOutcome(migOutcomeCommitted)
	// MigrationAborted: the source keeps the records; the target
	// discarded anything it absorbed.
	MigrationAborted MigrationOutcome = MigrationOutcome(migOutcomeAborted)
)

func (o MigrationOutcome) String() string {
	switch o {
	case MigrationCommitted:
		return "committed"
	case MigrationAborted:
		return "aborted"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// MigrationIntent is one journaled bucket move: the addressing the
// coordinator computed plus the file state it computed it from.
type MigrationIntent struct {
	MID       uint64
	Kind      uint8 // MigrateSplit or MigrateMerge
	File      FileID
	From      uint64 // bucket records leave
	To        uint64 // bucket records arrive at
	Level     uint8  // expected level of the From bucket
	PrevState lhstar.State
}

// resultingState is the coordinator file state after the intent
// commits.
func resultingState(intent MigrationIntent) lhstar.State {
	st := intent.PrevState
	switch intent.Kind {
	case MigrateSplit:
		st.AdvanceSplit()
	case MigrateMerge:
		st.RetreatSplit()
	}
	return st
}

// MigrationRecord pairs an intent with its outcome; Done is false while
// the migration is in flight.
type MigrationRecord struct {
	Intent  MigrationIntent
	Done    bool
	Outcome MigrationOutcome
}

// MigrationLog journals the coordinator's migration intents and
// outcomes. Implementations must persist Begin before returning (the
// intent is what a restarted coordinator resumes from) and must assign
// strictly increasing migration IDs.
type MigrationLog interface {
	// Begin journals a new intent and returns its assigned migration ID.
	Begin(intent MigrationIntent) (uint64, error)
	// Finish durably records the outcome of an in-flight migration.
	Finish(mid uint64, outcome MigrationOutcome) error
	// Records returns a snapshot of the ledger in migration-ID order.
	Records() []MigrationRecord
	// Close releases any underlying file handle.
	Close() error
}

// MemMigrationLog is the in-memory MigrationLog — the default for
// ephemeral clusters: resume works within the process (lost responses,
// aborted drives) but not across a coordinator restart.
type MemMigrationLog struct {
	mu      sync.Mutex
	recs    []MigrationRecord
	idx     map[uint64]int
	nextMID uint64
}

// NewMemMigrationLog creates an empty in-memory migration log.
func NewMemMigrationLog() *MemMigrationLog {
	return &MemMigrationLog{idx: make(map[uint64]int), nextMID: 1}
}

// Begin implements MigrationLog.
func (l *MemMigrationLog) Begin(intent MigrationIntent) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	intent.MID = l.nextMID
	l.nextMID++
	l.idx[intent.MID] = len(l.recs)
	l.recs = append(l.recs, MigrationRecord{Intent: intent})
	return intent.MID, nil
}

// Finish implements MigrationLog.
func (l *MemMigrationLog) Finish(mid uint64, outcome MigrationOutcome) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.idx[mid]
	if !ok {
		return fmt.Errorf("sdds: migration log has no intent %d", mid)
	}
	if l.recs[i].Done {
		if l.recs[i].Outcome != outcome {
			return fmt.Errorf("sdds: migration %d already finished as %v, refusing %v", mid, l.recs[i].Outcome, outcome)
		}
		return nil // idempotent re-finish
	}
	l.recs[i].Done = true
	l.recs[i].Outcome = outcome
	return nil
}

// Records implements MigrationLog.
func (l *MemMigrationLog) Records() []MigrationRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]MigrationRecord(nil), l.recs...)
}

// Close implements MigrationLog.
func (l *MemMigrationLog) Close() error { return nil }

// FileMigrationLog is the durable MigrationLog: an append-only record
// file over a wal.FS. Every record is length-prefixed and checksummed;
// a torn tail (the crash case) is truncated away on open — losing at
// most the record whose append never completed, which is exactly the
// intent/outcome the caller never saw acknowledged.
type FileMigrationLog struct {
	mu   sync.Mutex
	fsys wal.FS
	path string
	f    wal.File
	mem  *MemMigrationLog
}

const (
	migLogName = "migrations.log"

	migRecIntent uint8 = 1
	migRecDone   uint8 = 2
)

var migLogMagic = []byte("ESDDSMIG1\n")

// OpenFileMigrationLog opens (creating if absent) the migration log in
// dir, replaying its records into memory and truncating any torn tail.
func OpenFileMigrationLog(fsys wal.FS, dir string) (*FileMigrationLog, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("sdds: migration log dir: %w", err)
	}
	l := &FileMigrationLog{
		fsys: fsys,
		path: filepath.Join(dir, migLogName),
		mem:  NewMemMigrationLog(),
	}
	data, err := fsys.ReadFile(l.path)
	switch {
	case os.IsNotExist(err):
		f, err := fsys.OpenAppend(l.path)
		if err != nil {
			return nil, fmt.Errorf("sdds: migration log: %w", err)
		}
		if _, err := f.Write(migLogMagic); err != nil {
			return nil, fmt.Errorf("sdds: migration log magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("sdds: migration log sync: %w", err)
		}
		l.f = f
		return l, nil
	case err != nil:
		return nil, fmt.Errorf("sdds: migration log: %w", err)
	}
	good, err := l.replay(data)
	if err != nil {
		return nil, err
	}
	if good < len(data) {
		// Torn tail: drop the partial record so appends resume cleanly.
		if err := fsys.Truncate(l.path, int64(good)); err != nil {
			return nil, fmt.Errorf("sdds: migration log truncate: %w", err)
		}
	}
	f, err := fsys.OpenAppend(l.path)
	if err != nil {
		return nil, fmt.Errorf("sdds: migration log: %w", err)
	}
	l.f = f
	return l, nil
}

var migCRC = crc32.MakeTable(crc32.Castagnoli)

// replay loads records from raw bytes and returns the length of the
// valid prefix. A corrupt or torn record ends the replay: everything
// before it is kept, everything from it on is reported for truncation.
func (l *FileMigrationLog) replay(data []byte) (int, error) {
	if len(data) < len(migLogMagic) || string(data[:len(migLogMagic)]) != string(migLogMagic) {
		return 0, fmt.Errorf("sdds: migration log: bad magic")
	}
	off := len(migLogMagic)
	for off < len(data) {
		if len(data)-off < 8 {
			return off, nil // torn length/crc header
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		if n <= 0 || len(data)-off-8 < n {
			return off, nil // torn body
		}
		body := data[off+8 : off+8+n]
		if crc32.Checksum(body, migCRC) != crc {
			return off, nil // torn or corrupt record: stop here, loudly truncate
		}
		if err := l.applyRecord(body); err != nil {
			return 0, err
		}
		off += 8 + n
	}
	return off, nil
}

func (l *FileMigrationLog) applyRecord(body []byte) error {
	if len(body) < 1 {
		return fmt.Errorf("sdds: migration log: empty record")
	}
	switch body[0] {
	case migRecIntent:
		if len(body) != 1+8+1+1+8+8+1+1+8 {
			return fmt.Errorf("sdds: migration log: intent record length %d", len(body))
		}
		intent := MigrationIntent{
			MID:   binary.BigEndian.Uint64(body[1:]),
			Kind:  body[9],
			File:  FileID(body[10]),
			From:  binary.BigEndian.Uint64(body[11:]),
			To:    binary.BigEndian.Uint64(body[19:]),
			Level: body[27],
			PrevState: lhstar.State{
				I: uint(body[28]),
				N: binary.BigEndian.Uint64(body[29:]),
			},
		}
		l.mem.mu.Lock()
		l.mem.idx[intent.MID] = len(l.mem.recs)
		l.mem.recs = append(l.mem.recs, MigrationRecord{Intent: intent})
		if intent.MID >= l.mem.nextMID {
			l.mem.nextMID = intent.MID + 1
		}
		l.mem.mu.Unlock()
		return nil
	case migRecDone:
		if len(body) != 1+8+1 {
			return fmt.Errorf("sdds: migration log: done record length %d", len(body))
		}
		mid := binary.BigEndian.Uint64(body[1:])
		return l.mem.Finish(mid, MigrationOutcome(body[9]))
	default:
		return fmt.Errorf("sdds: migration log: unknown record type %d", body[0])
	}
}

// append frames, writes and syncs one record; the append is durable
// when it returns.
func (l *FileMigrationLog) append(body []byte) error {
	frame := make([]byte, 0, 8+len(body))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(body, migCRC))
	frame = append(frame, body...)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("sdds: migration log append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("sdds: migration log sync: %w", err)
	}
	return nil
}

// Begin implements MigrationLog.
func (l *FileMigrationLog) Begin(intent MigrationIntent) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("sdds: migration log is closed")
	}
	mid, _ := l.mem.Begin(intent)
	body := make([]byte, 0, 37)
	body = append(body, migRecIntent)
	body = binary.BigEndian.AppendUint64(body, mid)
	body = append(body, intent.Kind, uint8(intent.File))
	body = binary.BigEndian.AppendUint64(body, intent.From)
	body = binary.BigEndian.AppendUint64(body, intent.To)
	body = append(body, intent.Level, uint8(intent.PrevState.I))
	body = binary.BigEndian.AppendUint64(body, intent.PrevState.N)
	if err := l.append(body); err != nil {
		return 0, err
	}
	return mid, nil
}

// Finish implements MigrationLog.
func (l *FileMigrationLog) Finish(mid uint64, outcome MigrationOutcome) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("sdds: migration log is closed")
	}
	if err := l.mem.Finish(mid, outcome); err != nil {
		return err
	}
	body := make([]byte, 0, 10)
	body = append(body, migRecDone)
	body = binary.BigEndian.AppendUint64(body, mid)
	body = append(body, uint8(outcome))
	return l.append(body)
}

// Records implements MigrationLog.
func (l *FileMigrationLog) Records() []MigrationRecord {
	return l.mem.Records()
}

// Close implements MigrationLog.
func (l *FileMigrationLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// MigrationStats summarizes the migration ledger for health surfaces.
// Started, Committed and Aborted are durable log counts, so the
// invariant Started == Committed + Aborted + InFlight holds across
// coordinator restarts; Resumed counts resume drives in this process.
type MigrationStats struct {
	Started   uint64
	Committed uint64
	Aborted   uint64
	Resumed   uint64
	InFlight  int
}

func migStatsOf(recs []MigrationRecord) MigrationStats {
	var s MigrationStats
	for _, r := range recs {
		s.Started++
		switch {
		case !r.Done:
			s.InFlight++
		case r.Outcome == MigrationCommitted:
			s.Committed++
		default:
			s.Aborted++
		}
	}
	return s
}

// sortRecordsByMID keeps a ledger snapshot in MID order (defensive; the
// implementations already append in assignment order).
func sortRecordsByMID(recs []MigrationRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Intent.MID < recs[j].Intent.MID })
}
