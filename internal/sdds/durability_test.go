package sdds

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/transport"
	"repro/internal/wal"
)

// durableHarness pairs a store-backed node with an ephemeral reference
// node receiving the same operations — the in-memory truth the crash
// matrix checks replay against.
type durableHarness struct {
	t     *testing.T
	fs    *wal.MemFS
	place *Placement

	live *Node
	ref  *Node

	// inflight is the operation whose acknowledgment the crash
	// swallowed: the one request allowed to be present-or-absent in the
	// replayed state (anything else is silent loss or invention).
	inflight *struct {
		op      uint8
		payload []byte
	}
}

func newDurableHarness(t *testing.T, fs *wal.MemFS) *durableHarness {
	t.Helper()
	place, err := NewPlacement([]transport.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	h := &durableHarness{t: t, fs: fs, place: place}

	liveMem := transport.NewMemory()
	h.live = NewNode(0, liveMem, place)
	st, err := wal.Open(fs, "node", wal.Options{CheckpointBytes: 600})
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	if out, err := h.live.AttachStore(st); err != nil || out != wal.OutcomeFresh {
		t.Fatalf("AttachStore on fresh fs = %v, %v", out, err)
	}
	liveMem.Register(0, h.live.Handler())

	refMem := transport.NewMemory()
	h.ref = NewNode(0, refMem, place)
	refMem.Register(0, h.ref.Handler())
	return h
}

// do applies one operation to the durable node and mirrors it onto the
// reference on success. It reports false once the injected crash fires
// (recording the in-flight op); any other failure is fatal.
func (h *durableHarness) do(op uint8, payload []byte) ([]byte, bool) {
	h.t.Helper()
	resp, err := h.live.Handler()(context.Background(), op, payload)
	if err != nil {
		if !h.fs.Crashed() {
			h.t.Fatalf("op %d failed without a crash: %v", op, err)
		}
		h.inflight = &struct {
			op      uint8
			payload []byte
		}{op, append([]byte(nil), payload...)}
		return nil, false
	}
	if _, err := h.ref.Handler()(context.Background(), op, payload); err != nil {
		h.t.Fatalf("reference node rejected op %d: %v", op, err)
	}
	return resp, true
}

func recVal(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d body padding to exercise checkpoints", i))
}

// workload drives a fixed mutation script — puts, deletes, two splits,
// one merge — through every journaled handler. It reports false when
// the injected crash cut it short.
func (h *durableHarness) workload() bool {
	put := func(key uint64, i int) bool {
		req := putReq{file: FileRecords, addr: 0, key: key, value: recVal(i)}
		_, ok := h.do(opPut, req.encode())
		return ok
	}
	del := func(key uint64) bool {
		req := keyReq{file: FileRecords, addr: 0, key: key}
		_, ok := h.do(opDelete, req.encode())
		return ok
	}
	split := func(newAddr uint64, newLevel uint8) bool {
		if _, ok := h.do(opBucketCreate, bucketCreateReq{file: FileRecords, addr: newAddr, level: newLevel}.encode()); !ok {
			return false
		}
		batch, ok := h.do(opSplitExtract, splitExtractReq{file: FileRecords, addr: 0}.encode())
		if !ok {
			return false
		}
		// Reuse the live node's extracted batch for BOTH absorbs: batch
		// byte order follows map iteration, but the record set — and so
		// the resulting state — is deterministic.
		absorb := append([]byte{uint8(FileRecords)}, encodeU64(newAddr)...)
		absorb = append(absorb, batch...)
		_, ok = h.do(opSplitAbsorb, absorb)
		return ok
	}
	merge := func(fromAddr uint64) bool {
		batch, ok := h.do(opMergeClose, mergeCloseReq{file: FileRecords, addr: fromAddr}.encode())
		if !ok {
			return false
		}
		absorb := append([]byte{uint8(FileRecords)}, encodeU64(0)...)
		absorb = append(absorb, batch...)
		_, ok = h.do(opMergeAbsorb, absorb)
		return ok
	}

	for i := 1; i <= 10; i++ {
		if !put(uint64(i), i) {
			return false
		}
	}
	if !split(1, 1) { // bucket 0 (level 0→1) spills into bucket 1
		return false
	}
	for i := 11; i <= 16; i++ {
		if !put(uint64(i), i) {
			return false
		}
	}
	for _, k := range []uint64{2, 11, 7} {
		if !del(k) {
			return false
		}
	}
	if !split(2, 2) { // bucket 0 (level 1→2) spills into bucket 2
		return false
	}
	for i := 17; i <= 20; i++ {
		if !put(uint64(i), i) {
			return false
		}
	}
	if !merge(2) { // undo the second split
		return false
	}
	for i := 21; i <= 23; i++ {
		if !put(uint64(i), i) {
			return false
		}
	}
	return true
}

func encodeU64(v uint64) []byte {
	w := &writer{}
	w.u64(v)
	return w.b
}

func (h *durableHarness) snapshot(n *Node) []byte {
	h.t.Helper()
	snap, err := n.Handler()(context.Background(), opNodeSnapshot, nil)
	if err != nil {
		h.t.Fatalf("snapshot: %v", err)
	}
	return snap
}

// restart reopens the durable state after a crash (or abort) into a
// fresh node, as a restarted process would.
func (h *durableHarness) restart() (*Node, wal.Outcome, error) {
	h.t.Helper()
	h.fs.Restart()
	st, err := wal.Open(h.fs, "node", wal.Options{CheckpointBytes: 600})
	if err != nil {
		h.t.Fatalf("reopening store: %v", err)
	}
	n := NewNode(0, nil, h.place)
	out, aerr := n.AttachStore(st)
	return n, out, aerr
}

// TestNodeCrashMatrix is the node-level half of the fault matrix: the
// full mutation workload (puts, deletes, splits, merges, checkpoint
// churn) is killed at every filesystem operation in every tear mode,
// and the restarted node's replayed state must be byte-equivalent to
// the in-memory reference — allowing only for the single in-flight
// operation whose acknowledgment the crash swallowed. A corrupt verdict
// for a pure crash, a lost acknowledged mutation, or an invented one
// all fail: zero silent data loss.
func TestNodeCrashMatrix(t *testing.T) {
	// Dry run: count the workload's crash points.
	probe := wal.NewMemFS()
	dry := newDurableHarness(t, probe)
	probe.SetCrash(0, wal.CrashDrop) // reset the op counter, stay disarmed
	if !dry.workload() {
		t.Fatal("dry run crashed")
	}
	totalOps := probe.Ops()
	if totalOps < 40 {
		t.Fatalf("workload too small for a meaningful matrix: %d fs ops", totalOps)
	}

	stride := 1
	if testing.Short() {
		stride = 7
	}
	for _, mode := range []wal.CrashMode{wal.CrashDrop, wal.CrashKeep, wal.CrashTorn} {
		for at := 1; at <= totalOps; at += stride {
			t.Run(fmt.Sprintf("%s/op%03d", mode, at), func(t *testing.T) {
				fs := wal.NewMemFS()
				h := newDurableHarness(t, fs)
				fs.SetCrash(at, mode)
				if h.workload() {
					t.Fatalf("crash point %d never fired", at)
				}

				node, out, err := h.restart()
				if out == wal.OutcomeCorrupt {
					t.Fatalf("a crash (not corruption) produced a corrupt verdict: %v", err)
				}
				if err != nil {
					t.Fatalf("restart recovery: %v", err)
				}
				got := h.snapshot(node)
				want := h.snapshot(h.ref)
				if bytes.Equal(got, want) {
					return
				}
				// Not the acked state: the only other legal outcome is
				// acked + the in-flight op (journaled durably in the
				// same instant the crash killed its acknowledgment).
				if h.inflight == nil {
					t.Fatal("replayed state diverges from reference with no op in flight")
				}
				if _, err := h.ref.Handler()(context.Background(), h.inflight.op, h.inflight.payload); err != nil {
					t.Fatalf("applying in-flight op %d to reference: %v", h.inflight.op, err)
				}
				if want = h.snapshot(h.ref); !bytes.Equal(got, want) {
					t.Fatalf("replayed state matches neither acked nor acked+inflight (op %d at fs op %d)",
						h.inflight.op, at)
				}
			})
		}
	}
}

// TestNodeBitFlipDetectedAndRepaired covers the media-corruption row of
// the matrix: a flipped bit in the durable checkpoint must surface as a
// deterministic corrupt verdict (never a silent partial replay), after
// which a whole-image restore — the Guardian.Recover path — repairs the
// node AND re-establishes local durability for the next restart.
func TestNodeBitFlipDetectedAndRepaired(t *testing.T) {
	fs := wal.NewMemFS()
	h := newDurableHarness(t, fs)
	if !h.workload() {
		t.Fatal("workload crashed without injection")
	}
	refSnap := h.snapshot(h.ref)

	if err := h.live.CloseStore(); err != nil {
		t.Fatalf("CloseStore: %v", err)
	}
	// CloseStore checkpointed, so the checkpoint holds the whole state.
	if sz, err := fs.Size("node/checkpoint"); err != nil || sz < 64 {
		t.Fatalf("checkpoint missing after CloseStore: %d, %v", sz, err)
	}
	if err := fs.FlipBit("node/checkpoint", 40, 2); err != nil {
		t.Fatal(err)
	}

	node, out, err := h.restart()
	if out != wal.OutcomeCorrupt || err == nil {
		t.Fatalf("flipped checkpoint bit: recovery = %v, %v; want detected corruption", out, err)
	}
	// The node is up, empty, and honest about it.
	raw, herr := node.Handler()(context.Background(), opRecoveryState, nil)
	if herr != nil {
		t.Fatal(herr)
	}
	rs, derr := decodeRecoveryStateResp(raw)
	if derr != nil || rs.mode != recoveryCorrupt || rs.detail == "" {
		t.Fatalf("recovery state after corruption = %+v, %v", rs, derr)
	}

	// Repair via whole-image restore (what Guardian.Recover pushes).
	if _, err := node.Handler()(context.Background(), opNodeRestore, refSnap); err != nil {
		t.Fatalf("restore after corruption: %v", err)
	}
	if got := h.snapshot(node); !bytes.Equal(got, refSnap) {
		t.Fatal("restored state diverges from reference")
	}
	raw, _ = node.Handler()(context.Background(), opRecoveryState, nil)
	if rs, _ := decodeRecoveryStateResp(raw); rs.mode != recoveryRecovered {
		t.Fatalf("recovery state after repair = %+v, want recovered", rs)
	}

	// The restore was checkpointed: the NEXT restart recovers locally.
	if err := node.CloseStore(); err != nil {
		t.Fatal(err)
	}
	node2, out, err := h.restart()
	if err != nil || out != wal.OutcomeRecovered {
		t.Fatalf("restart after repair = %v, %v; want local recovery", out, err)
	}
	if got := h.snapshot(node2); !bytes.Equal(got, refSnap) {
		t.Fatal("post-repair restart lost state")
	}
}

// TestNodeRestartAfterGracefulClose: CloseStore → reopen must replay to
// the identical state from the checkpoint alone.
func TestNodeRestartAfterGracefulClose(t *testing.T) {
	fs := wal.NewMemFS()
	h := newDurableHarness(t, fs)
	if !h.workload() {
		t.Fatal("workload crashed without injection")
	}
	want := h.snapshot(h.live)
	if !bytes.Equal(want, h.snapshot(h.ref)) {
		t.Fatal("live and reference diverged before restart")
	}
	if err := h.live.CloseStore(); err != nil {
		t.Fatal(err)
	}
	node, out, err := h.restart()
	if err != nil || out != wal.OutcomeRecovered {
		t.Fatalf("recovery after graceful close = %v, %v", out, err)
	}
	if !bytes.Equal(h.snapshot(node), want) {
		t.Fatal("state diverged across graceful restart")
	}
}
