package sdds

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/lhstar"
	"repro/internal/wal"
)

func testIntent(kind uint8, prev lhstar.State) MigrationIntent {
	intent := MigrationIntent{Kind: kind, File: FileRecords, PrevState: prev}
	if kind == MigrateSplit {
		intent.From, intent.To = prev.NextSplit()
		intent.Level = uint8(prev.BucketLevel(intent.From))
	} else {
		st := prev
		st.RetreatSplit()
		intent.From = st.N + 1<<st.I
		intent.To = st.N
		intent.Level = uint8(st.I + 1)
	}
	return intent
}

func TestFileMigrationLogRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	lg, err := OpenFileMigrationLog(fs, "coord")
	if err != nil {
		t.Fatal(err)
	}

	var st lhstar.State
	first := testIntent(MigrateSplit, st)
	mid1, err := lg.Begin(first)
	if err != nil {
		t.Fatal(err)
	}
	st.AdvanceSplit()
	second := testIntent(MigrateSplit, st)
	mid2, err := lg.Begin(second)
	if err != nil {
		t.Fatal(err)
	}
	if mid1 != 1 || mid2 != 2 {
		t.Fatalf("MIDs = %d, %d, want 1, 2", mid1, mid2)
	}
	if err := lg.Finish(mid1, MigrationCommitted); err != nil {
		t.Fatal(err)
	}
	if err := lg.Finish(mid2, MigrationAborted); err != nil {
		t.Fatal(err)
	}
	third := testIntent(MigrateMerge, st)
	if _, err := lg.Begin(third); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileMigrationLog(fs, "coord")
	if err != nil {
		t.Fatalf("reopening: %v", err)
	}
	recs := re.Records()
	if len(recs) != 3 {
		t.Fatalf("reopened log holds %d records, want 3", len(recs))
	}
	sortRecordsByMID(recs)
	if !recs[0].Done || recs[0].Outcome != MigrationCommitted {
		t.Fatalf("record 1 = %+v, want committed", recs[0])
	}
	if !recs[1].Done || recs[1].Outcome != MigrationAborted {
		t.Fatalf("record 2 = %+v, want aborted", recs[1])
	}
	if recs[2].Done {
		t.Fatalf("record 3 = %+v, want in-flight", recs[2])
	}
	first.MID = mid1 // Begin assigned the ID
	if recs[0].Intent != first || recs[1].Intent.MID != 2 || recs[2].Intent.File != FileRecords {
		t.Fatalf("intents did not survive the round trip: %+v", recs)
	}
	if got := migStatsOf(recs); got.Started != 3 || got.Committed != 1 || got.Aborted != 1 || got.InFlight != 1 {
		t.Fatalf("stats after reopen = %+v", got)
	}
	// MID allocation continues past everything replayed.
	if mid, err := re.Begin(testIntent(MigrateSplit, st)); err != nil || mid != 4 {
		t.Fatalf("Begin after reopen = %d, %v, want 4", mid, err)
	}
}

func TestFileMigrationLogTruncatesTornTail(t *testing.T) {
	fs := wal.NewMemFS()
	lg, err := OpenFileMigrationLog(fs, "coord")
	if err != nil {
		t.Fatal(err)
	}
	var st lhstar.State
	if _, err := lg.Begin(testIntent(MigrateSplit, st)); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Begin(testIntent(MigrateSplit, st)); err != nil {
		t.Fatal(err)
	}
	lg.Close()

	path := filepath.Join("coord", "migrations.log")
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record down the middle — the torn-append crash.
	if err := fs.Truncate(path, int64(len(data)-5)); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileMigrationLog(fs, "coord")
	if err != nil {
		t.Fatalf("reopening torn log: %v", err)
	}
	if recs := re.Records(); len(recs) != 1 || recs[0].Intent.MID != 1 {
		t.Fatalf("torn log replayed %+v, want only record 1", recs)
	}
	// Appends resume cleanly on the truncated file.
	if mid, err := re.Begin(testIntent(MigrateSplit, st)); err != nil || mid != 2 {
		t.Fatalf("Begin after torn-tail truncation = %d, %v", mid, err)
	}
	re.Close()
	if again, err := OpenFileMigrationLog(fs, "coord"); err != nil {
		t.Fatalf("third open: %v", err)
	} else if recs := again.Records(); len(recs) != 2 {
		t.Fatalf("log after repair holds %d records, want 2", len(recs))
	}
}

func TestFileMigrationLogRejectsCorruptBody(t *testing.T) {
	fs := wal.NewMemFS()
	lg, err := OpenFileMigrationLog(fs, "coord")
	if err != nil {
		t.Fatal(err)
	}
	var st lhstar.State
	if _, err := lg.Begin(testIntent(MigrateSplit, st)); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Begin(testIntent(MigrateSplit, st)); err != nil {
		t.Fatal(err)
	}
	lg.Close()

	path := filepath.Join("coord", "migrations.log")
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.FlipBit(path, len(data)-3, 0); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileMigrationLog(fs, "coord")
	if err != nil {
		t.Fatalf("reopening bit-flipped log: %v", err)
	}
	// The checksum catches the flip; the damaged record (and nothing
	// before it) is dropped.
	if recs := re.Records(); len(recs) != 1 {
		t.Fatalf("bit-flipped log replayed %d records, want 1", len(recs))
	}
}

func TestAttachMigrationLogRejectsLateAttach(t *testing.T) {
	ctx := context.Background()
	h := newMigHarness(t, 2)
	h.load(FileRecords, 24)
	h.c.SetMaxLoad(FileRecords, 4)
	if err := h.c.split(ctx, FileRecords); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.AttachMigrationLog(NewMemMigrationLog()); err == nil {
		t.Fatal("attach after a split was accepted; the in-memory ledger would be silently discarded")
	}
}

func TestMemMigrationLogFinishValidation(t *testing.T) {
	lg := NewMemMigrationLog()
	if err := lg.Finish(7, MigrationCommitted); err == nil {
		t.Fatal("finishing an unknown MID was accepted")
	}
	var st lhstar.State
	mid, err := lg.Begin(testIntent(MigrateSplit, st))
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Finish(mid, MigrationCommitted); err != nil {
		t.Fatal(err)
	}
	if err := lg.Finish(mid, MigrationAborted); err == nil {
		t.Fatal("conflicting double finish was accepted")
	}
}

// TestResultingState pins the state fold used both by coordinator
// restart and by AttachMigrationLog: committed split intents advance
// the split pointer, committed merges retreat it.
func TestResultingState(t *testing.T) {
	var st lhstar.State
	split := testIntent(MigrateSplit, st)
	got := resultingState(split)
	want := st
	want.AdvanceSplit()
	if got != want {
		t.Fatalf("resultingState(split) = %+v, want %+v", got, want)
	}
	merge := testIntent(MigrateMerge, want)
	if got := resultingState(merge); got != st {
		t.Fatalf("resultingState(merge) = %+v, want %+v", got, st)
	}
}
