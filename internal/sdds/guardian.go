package sdds

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rs"
	"repro/internal/transport"
)

// ErrNeverSynced reports a recovery (or degraded read) attempted before
// the guardian's first successful Sync: there is no recovery point, so
// there is nothing to restore. Callers automating repair should treat
// it as "restart the node empty", not as a parity failure.
var ErrNeverSynced = errors.New("sdds: guardian has never synced; nothing to recover from")

// Guardian is the LH*RS availability layer applied to whole nodes: it
// keeps every node's serialized bucket inventory (its "image") under
// Reed–Solomon parity, so that up to K simultaneous node losses can be
// recovered with zero record loss. The guardian plays the role of the
// paper's dedicated parity sites: data shards live on the storage
// nodes themselves, parity shards live with the guardian.
//
// Protocol: Sync pulls a deterministic image from every node and
// updates the parity group (delta-based, per LH*RS); after a failure,
// Recover reconstructs the dead nodes' images from the survivors'
// last-synced shards plus parity and pushes them onto replacement
// nodes registered under the same IDs.
//
// The recovery point is the last Sync — exactly LH*RS semantics, where
// parity sites are updated synchronously with data changes; callers
// wanting a tighter recovery point simply sync more often (each Sync
// costs one broadcast plus an rs update per changed node).
type Guardian struct {
	tr    transport.Transport
	place *Placement

	mu       sync.Mutex
	group    *rs.BucketGroup
	pos      map[transport.NodeID]int // node → data shard index
	synced   bool
	syncedAt time.Time
	syncSeq  uint64
	now      func() time.Time // injectable clock for tests

	met guardianMetrics // set by Instrument before traffic; nil-safe
}

// NewGuardian builds a guardian over the placement's nodes with k
// parity shards (tolerating any k simultaneous node failures).
func NewGuardian(tr transport.Transport, place *Placement, k int) (*Guardian, error) {
	nodes := place.Nodes()
	group, err := rs.NewBucketGroup(len(nodes), k)
	if err != nil {
		return nil, err
	}
	pos := make(map[transport.NodeID]int, len(nodes))
	for i, n := range nodes {
		pos[n] = i
	}
	return &Guardian{tr: tr, place: place, group: group, pos: pos, now: time.Now}, nil
}

// K returns the number of parity shards (tolerated failures).
func (g *Guardian) K() int { return g.group.K() }

// M returns the number of protected nodes.
func (g *Guardian) M() int { return g.group.M() }

// Sync pulls the current image from every node and folds it into the
// parity group. It must run while all nodes are healthy; a node that
// cannot be reached fails the sync (syncing around a hole would silently
// move the recovery point backwards for that node).
func (g *Guardian) Sync(ctx context.Context) error {
	start := time.Now()
	err := g.sync(ctx)
	g.met.syncs.Inc()
	g.met.syncNS.Observe(time.Since(start).Nanoseconds())
	if err != nil {
		g.met.syncErrors.Inc()
	}
	return err
}

func (g *Guardian) sync(ctx context.Context) error {
	nodes := g.place.Nodes()
	results := transport.Broadcast(ctx, g.tr, nodes, opNodeSnapshot, nil)
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("sdds: guardian sync: snapshot of node %d: %w", r.Node, r.Err)
		}
	}
	for _, r := range results {
		if err := g.group.Update(g.pos[r.Node], r.Payload); err != nil {
			return fmt.Errorf("sdds: guardian sync: node %d: %w", r.Node, err)
		}
	}
	g.synced = true
	g.syncedAt = g.now()
	g.syncSeq++
	return nil
}

// LastSync reports the recovery point: the time of the last successful
// Sync and a monotonically increasing sync sequence number (0 means
// never synced).
func (g *Guardian) LastSync() (time.Time, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.syncedAt, g.syncSeq
}

// Synced reports whether at least one Sync has completed.
func (g *Guardian) Synced() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.synced
}

// SyncedImage returns a copy of one node's last-synced image (its data
// shard, possibly zero-padded — the image codec tolerates the padding)
// plus the sync time. ok is false before the first Sync or for nodes
// the guardian does not protect. This is what degraded-mode search
// serves while the node itself is down.
func (g *Guardian) SyncedImage(node transport.NodeID) (img []byte, syncedAt time.Time, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.synced {
		return nil, time.Time{}, false
	}
	i, okPos := g.pos[node]
	if !okPos {
		return nil, time.Time{}, false
	}
	img, err := g.group.DataShard(i)
	if err != nil {
		return nil, time.Time{}, false
	}
	return img, g.syncedAt, true
}

// Recover reconstructs the images of the dead nodes from the survivors'
// last-synced shards plus parity, and pushes each image to the
// replacement node now registered under the dead node's ID. More than K
// dead nodes fails loudly (the MDS bound), as does recovering before
// any Sync.
func (g *Guardian) Recover(ctx context.Context, dead []transport.NodeID) error {
	if len(dead) == 0 {
		return nil
	}
	start := time.Now()
	err := g.recover(ctx, dead)
	g.met.recovers.Inc()
	g.met.recoverNS.Observe(time.Since(start).Nanoseconds())
	if err != nil {
		g.met.recoverErrs.Inc()
	}
	return err
}

func (g *Guardian) recover(ctx context.Context, dead []transport.NodeID) error {
	g.mu.Lock()
	if !g.synced {
		g.mu.Unlock()
		return ErrNeverSynced
	}
	shards := g.group.Shards()
	for _, d := range dead {
		i, ok := g.pos[d]
		if !ok {
			g.mu.Unlock()
			return fmt.Errorf("sdds: guardian does not protect node %d", d)
		}
		shards[i] = nil
	}
	err := g.group.RecoverShards(shards)
	g.mu.Unlock()
	if err != nil {
		return fmt.Errorf("sdds: guardian recovery: %w", err)
	}
	for _, d := range dead {
		img := shards[g.pos[d]]
		if _, err := g.tr.Send(ctx, d, opNodeRestore, img); err != nil {
			return fmt.Errorf("sdds: guardian restore of node %d: %w", d, err)
		}
	}
	return nil
}

// Scrub verifies the parity shards against the last-synced images.
func (g *Guardian) Scrub() (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.group.Scrub()
}
