package sdds

// The migration fault matrix: crash points and lost messages across
// every role (coordinator, source node, target node) of the two-phase
// split/merge protocol, asserting the DESIGN.md §14 guarantees — zero
// acknowledged-record loss, zero duplication, searches served
// throughout, and a ledger whose Started always equals
// Committed + Aborted + InFlight.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cipherx"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wordindex"
)

// hookTr wraps a transport with injectable per-message faults: a
// "before" hook failing a send without delivering it (request lost),
// and an "after" hook failing it after the handler ran (the
// acknowledged-but-unconfirmed window every two-phase step must
// survive).
type hookTr struct {
	inner transport.Transport

	mu     sync.Mutex
	before func(node transport.NodeID, op uint8) error
	after  func(node transport.NodeID, op uint8) error
}

func (h *hookTr) setBefore(f func(transport.NodeID, uint8) error) {
	h.mu.Lock()
	h.before = f
	h.mu.Unlock()
}

func (h *hookTr) setAfter(f func(transport.NodeID, uint8) error) {
	h.mu.Lock()
	h.after = f
	h.mu.Unlock()
}

func (h *hookTr) Send(ctx context.Context, node transport.NodeID, op uint8, payload []byte) ([]byte, error) {
	h.mu.Lock()
	before, after := h.before, h.after
	h.mu.Unlock()
	if before != nil {
		if err := before(node, op); err != nil {
			return nil, err
		}
	}
	resp, err := h.inner.Send(ctx, node, op, payload)
	if err != nil {
		return nil, err
	}
	if after != nil {
		if err := after(node, op); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

func (h *hookTr) Nodes() []transport.NodeID { return h.inner.Nodes() }
func (h *hookTr) Close() error              { return h.inner.Close() }

// dropOnce fails the first matching (node, op) send with a plain
// transport error — the non-definitive outcome-unknown failure.
func dropOnce(node transport.NodeID, op uint8) func(transport.NodeID, uint8) error {
	var mu sync.Mutex
	fired := false
	return func(n transport.NodeID, o uint8) error {
		mu.Lock()
		defer mu.Unlock()
		if fired || n != node || o != op {
			return nil
		}
		fired = true
		return fmt.Errorf("injected: message for op %d to node %d lost", o, n)
	}
}

// rejectOnce fails the first matching (node, op) send with a
// *transport.RemoteError — a definitive handler rejection, the signal
// the coordinator is allowed to abort on.
func rejectOnce(node transport.NodeID, op uint8) func(transport.NodeID, uint8) error {
	var mu sync.Mutex
	fired := false
	return func(n transport.NodeID, o uint8) error {
		mu.Lock()
		defer mu.Unlock()
		if fired || n != node || o != op {
			return nil
		}
		fired = true
		return &transport.RemoteError{Node: n, Msg: "injected rejection"}
	}
}

// migHarness is a two-node cluster with durable (MemFS-backed) node
// stores, a durable coordinator migration journal, and a fault hook on
// the coordinator's transport. Round-robin placement puts bucket 0 on
// node 0 and bucket 1 on node 1, so the first split and the merge
// undoing it are both cross-node handoffs.
type migHarness struct {
	t     *testing.T
	mem   *transport.Memory
	hook  *hookTr
	place *Placement
	fss   map[transport.NodeID]*wal.MemFS
	nodes map[transport.NodeID]*Node
	logFS *wal.MemFS
	lg    *FileMigrationLog
	c     *Cluster
}

func newMigHarness(t *testing.T, n int) *migHarness {
	t.Helper()
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := NewPlacement(ids)
	if err != nil {
		t.Fatal(err)
	}
	h := &migHarness{
		t:     t,
		mem:   transport.NewMemory(),
		place: place,
		fss:   make(map[transport.NodeID]*wal.MemFS),
		nodes: make(map[transport.NodeID]*Node),
		logFS: wal.NewMemFS(),
	}
	h.hook = &hookTr{inner: h.mem}
	for _, id := range ids {
		h.startNode(id)
	}
	h.newCoordinator()
	return h
}

// startNode (re)starts a node over its durable store: the first call
// boots it fresh, later calls model a crashed process restarting over
// whatever its journal made durable.
func (h *migHarness) startNode(id transport.NodeID) {
	h.t.Helper()
	fs, ok := h.fss[id]
	if !ok {
		fs = wal.NewMemFS()
		h.fss[id] = fs
	} else {
		fs.Restart()
	}
	node := NewNode(id, h.mem, h.place)
	st, err := wal.Open(fs, "node", wal.Options{})
	if err != nil {
		h.t.Fatalf("opening node %d store: %v", id, err)
	}
	if _, err := node.AttachStore(st); err != nil {
		h.t.Fatalf("attaching node %d store: %v", id, err)
	}
	h.mem.Register(id, node.Handler())
	h.nodes[id] = node
}

// newCoordinator (re)builds the coordinator over the shared durable
// migration journal; called a second time it is the restarted-
// coordinator path, returning how many migrations the journal says are
// still in flight.
func (h *migHarness) newCoordinator() int {
	h.t.Helper()
	if h.lg != nil {
		h.lg.Close()
	}
	lg, err := OpenFileMigrationLog(h.logFS, "coordinator")
	if err != nil {
		h.t.Fatalf("opening migration log: %v", err)
	}
	c := NewCluster(h.hook, h.place)
	inFlight, err := c.AttachMigrationLog(lg)
	if err != nil {
		h.t.Fatalf("attaching migration log: %v", err)
	}
	h.lg, h.c = lg, c
	return inFlight
}

// load inserts n keys without triggering growth and returns the
// acknowledged truth the fault matrix audits against.
func (h *migHarness) load(id FileID, n int) map[uint64][]byte {
	h.t.Helper()
	h.c.SetMaxLoad(id, 1<<20)
	ctx := context.Background()
	keys := make(map[uint64][]byte, n)
	for k := uint64(0); k < uint64(n); k++ {
		v := []byte(fmt.Sprintf("migval-%03d", k))
		if err := h.c.Put(ctx, id, k, v); err != nil {
			h.t.Fatalf("put %d: %v", k, err)
		}
		keys[k] = v
	}
	return keys
}

// checkAll asserts zero loss and zero duplication: every acknowledged
// key reads back its value, and across all node buckets every key is
// stored exactly once with no strays.
func (h *migHarness) checkAll(id FileID, keys map[uint64][]byte) {
	h.t.Helper()
	ctx := context.Background()
	for k, want := range keys {
		v, ok, err := h.c.Get(ctx, id, k)
		if err != nil || !ok || !bytes.Equal(v, want) {
			h.t.Fatalf("get %d = %q, %v, %v (want %q)", k, v, ok, err, want)
		}
	}
	counts := make(map[uint64]int)
	for _, n := range h.nodes {
		n.mu.RLock()
		if f, ok := n.files[id]; ok {
			for _, b := range f.buckets {
				b.Scan(func(key uint64, _ []byte) bool {
					counts[key]++
					return true
				})
			}
		}
		n.mu.RUnlock()
	}
	for k := range keys {
		if counts[k] != 1 {
			h.t.Fatalf("key %d stored %d times across the cluster", k, counts[k])
		}
	}
	for k := range counts {
		if _, ok := keys[k]; !ok {
			h.t.Fatalf("cluster holds unacknowledged key %d", k)
		}
	}
}

func (h *migHarness) wantStats(started, committed, aborted uint64, inFlight int) {
	h.t.Helper()
	s := h.c.MigrationStats()
	if s.Started != started || s.Committed != committed || s.Aborted != aborted || s.InFlight != inFlight {
		h.t.Fatalf("MigrationStats = %+v, want started %d committed %d aborted %d in-flight %d",
			s, started, committed, aborted, inFlight)
	}
	h.wantInvariant()
}

func (h *migHarness) wantInvariant() {
	h.t.Helper()
	s := h.c.MigrationStats()
	if s.Started != s.Committed+s.Aborted+uint64(s.InFlight) {
		h.t.Fatalf("ledger invariant broken: %+v", s)
	}
}

// TestSplitFaultMatrix loses one message per case — request or response,
// against source or target, at every phase of a split — then resumes
// and audits: no acknowledged record may be lost or duplicated, reads
// are served while the migration is in flight, and the ledger balances.
func TestSplitFaultMatrix(t *testing.T) {
	cases := []struct {
		name string
		node transport.NodeID
		op   uint8
		when string // "request": never delivered; "response": applied, ack lost
	}{
		{"prepare-request-lost", 0, opMigratePrepare, "request"},
		{"prepare-response-lost", 0, opMigratePrepare, "response"},
		{"absorb-request-lost", 1, opMigrateAbsorb, "request"},
		{"absorb-response-lost", 1, opMigrateAbsorb, "response"},
		{"source-commit-response-lost", 0, opMigrateCommit, "response"},
		{"target-commit-response-lost", 1, opMigrateCommit, "response"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			h := newMigHarness(t, 2)
			keys := h.load(FileRecords, 48)
			h.c.SetMaxLoad(FileRecords, 8)
			drop := dropOnce(tc.node, tc.op)
			if tc.when == "request" {
				h.hook.setBefore(drop)
			} else {
				h.hook.setAfter(drop)
			}
			if err := h.c.split(ctx, FileRecords); err == nil {
				t.Fatal("interrupted split reported success")
			}
			h.wantStats(1, 0, 0, 1)

			// Every acknowledged record stays readable mid-migration.
			for k, want := range keys {
				v, ok, err := h.c.Get(ctx, FileRecords, k)
				if err != nil || !ok || !bytes.Equal(v, want) {
					t.Fatalf("get %d during in-flight migration = %q, %v, %v", k, v, ok, err)
				}
			}

			resumed, err := h.c.ResumeMigrations(ctx)
			if err != nil || resumed != 1 {
				t.Fatalf("ResumeMigrations = %d, %v", resumed, err)
			}
			h.wantStats(1, 1, 0, 0)
			if s := h.c.MigrationStats(); s.Resumed == 0 {
				t.Fatal("resume not counted")
			}
			if got := h.c.State(FileRecords).Buckets(); got != 2 {
				t.Fatalf("buckets after resumed split = %d, want 2", got)
			}
			h.checkAll(FileRecords, keys)
		})
	}
}

// TestMergeFaultMatrix is the shrink-side mirror: the closing bucket's
// records must survive every lost message of the merge handoff.
func TestMergeFaultMatrix(t *testing.T) {
	cases := []struct {
		name string
		node transport.NodeID
		op   uint8
		when string
		// midReads: whether moved records stay client-readable while the
		// migration hangs at this point. Once the source applies a merge
		// commit the closed bucket is gone, and a stale client image
		// cannot reach the moved records until the resumed commit
		// refreshes it — the LH* shrink window that makes coordinator-
		// assisted image refresh mandatory. The records themselves are
		// durable on the target throughout, as the post-resume audit
		// proves.
		midReads bool
	}{
		{"prepare-request-lost", 1, opMigratePrepare, "request", true},
		{"prepare-response-lost", 1, opMigratePrepare, "response", true},
		{"absorb-request-lost", 0, opMigrateAbsorb, "request", true},
		{"absorb-response-lost", 0, opMigrateAbsorb, "response", true},
		{"source-commit-response-lost", 1, opMigrateCommit, "response", false},
		{"target-commit-response-lost", 0, opMigrateCommit, "response", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			h := newMigHarness(t, 2)
			keys := h.load(FileRecords, 48)
			h.c.SetMaxLoad(FileRecords, 8)
			if err := h.c.split(ctx, FileRecords); err != nil {
				t.Fatalf("setup split: %v", err)
			}
			// Shed records without crossing the (still tiny) merge
			// threshold, then raise minLoad so the merge is wanted.
			for k := uint64(24); k < 48; k++ {
				if found, err := h.c.Delete(ctx, FileRecords, k); err != nil || !found {
					t.Fatalf("delete %d = %v, %v", k, found, err)
				}
				delete(keys, k)
			}
			h.c.SetMaxLoad(FileRecords, 400)

			drop := dropOnce(tc.node, tc.op)
			if tc.when == "request" {
				h.hook.setBefore(drop)
			} else {
				h.hook.setAfter(drop)
			}
			if _, err := h.c.mergeOne(ctx, FileRecords); err == nil {
				t.Fatal("interrupted merge reported success")
			}
			h.wantStats(2, 1, 0, 1)

			if tc.midReads {
				for k, want := range keys {
					v, ok, err := h.c.Get(ctx, FileRecords, k)
					if err != nil || !ok || !bytes.Equal(v, want) {
						t.Fatalf("get %d during in-flight merge = %q, %v, %v", k, v, ok, err)
					}
				}
			}

			resumed, err := h.c.ResumeMigrations(ctx)
			if err != nil || resumed != 1 {
				t.Fatalf("ResumeMigrations = %d, %v", resumed, err)
			}
			h.wantStats(2, 2, 0, 0)
			if got := h.c.State(FileRecords).Buckets(); got != 1 {
				t.Fatalf("buckets after resumed merge = %d, want 1", got)
			}
			h.checkAll(FileRecords, keys)
		})
	}
}

// TestFrozenBucketRejectsWrites pins the in-flight write freeze: while
// a migration is pending, writes to its buckets fail loudly (never
// silently vanish), reads keep working, and the freeze lifts at commit.
func TestFrozenBucketRejectsWrites(t *testing.T) {
	ctx := context.Background()
	h := newMigHarness(t, 2)
	keys := h.load(FileRecords, 48)
	h.c.SetMaxLoad(FileRecords, 8)
	h.hook.setAfter(dropOnce(1, opMigrateAbsorb))
	if err := h.c.split(ctx, FileRecords); err == nil {
		t.Fatal("interrupted split reported success")
	}
	err := h.c.Put(ctx, FileRecords, 1000, []byte("rejected"))
	if err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Fatalf("write to frozen bucket = %v, want loud freeze rejection", err)
	}
	if v, ok, err := h.c.Get(ctx, FileRecords, 0); err != nil || !ok || !bytes.Equal(v, keys[0]) {
		t.Fatalf("read during freeze = %q, %v, %v", v, ok, err)
	}
	if _, err := h.c.ResumeMigrations(ctx); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := h.c.Put(ctx, FileRecords, 1000, []byte("accepted")); err != nil {
		t.Fatalf("write after freeze lifted: %v", err)
	}
}

// TestSplitCrashSweep cuts power to the source or target node at every
// durable-write crash point of one split and restarts it. Whatever the
// outcome the resume settles on — roll forward or abort — no
// acknowledged record may be lost or duplicated.
func TestSplitCrashSweep(t *testing.T) {
	victims := []struct {
		name string
		node transport.NodeID
	}{
		{"source", 0},
		{"target", 1},
	}
	for _, victim := range victims {
		t.Run(victim.name, func(t *testing.T) {
			ctx := context.Background()
			for point := 1; ; point++ {
				h := newMigHarness(t, 2)
				keys := h.load(FileRecords, 24)
				h.c.SetMaxLoad(FileRecords, 4)
				h.fss[victim.node].SetCrash(point, wal.CrashDrop)
				err := h.c.split(ctx, FileRecords)
				crashed := h.fss[victim.node].Crashed()
				if !crashed {
					// The sweep walked past the protocol's last durable
					// write on this node; the matrix is exhausted.
					if err != nil {
						t.Fatalf("point %d: split failed without a crash: %v", point, err)
					}
					h.checkAll(FileRecords, keys)
					return
				}
				h.startNode(victim.node)
				if _, err := h.c.ResumeMigrations(ctx); err != nil {
					t.Fatalf("point %d: resuming after %s crash: %v", point, victim.name, err)
				}
				h.wantInvariant()
				if s := h.c.MigrationStats(); s.InFlight != 0 {
					t.Fatalf("point %d: migration still in flight after resume: %+v", point, s)
				}
				// An aborted migration leaves the file ungrown; re-drive
				// the split before auditing so every sweep point ends at
				// the same shape.
				for h.c.State(FileRecords).Buckets() < 2 {
					if err := h.c.split(ctx, FileRecords); err != nil {
						t.Fatalf("point %d: re-splitting after abort: %v", point, err)
					}
				}
				h.checkAll(FileRecords, keys)
			}
		})
	}
}

// TestCoordinatorCrashResumesFromJournal kills the coordinator with a
// migration in flight (target absorbed, ack lost). The restarted
// coordinator must find the intent in its journal, roll the handoff
// forward, and lose nothing.
func TestCoordinatorCrashResumesFromJournal(t *testing.T) {
	ctx := context.Background()
	h := newMigHarness(t, 2)
	keys := h.load(FileRecords, 48)
	h.c.SetMaxLoad(FileRecords, 8)
	h.hook.setAfter(dropOnce(1, opMigrateAbsorb))
	if err := h.c.split(ctx, FileRecords); err == nil {
		t.Fatal("interrupted split reported success")
	}

	// Coordinator dies; a fresh one reopens the durable journal.
	if inFlight := h.newCoordinator(); inFlight != 1 {
		t.Fatalf("restarted coordinator found %d in-flight migrations, want 1", inFlight)
	}
	resumed, err := h.c.ResumeMigrations(ctx)
	if err != nil || resumed != 1 {
		t.Fatalf("ResumeMigrations = %d, %v", resumed, err)
	}
	h.wantStats(1, 1, 0, 0)
	h.checkAll(FileRecords, keys)
}

// TestCoordinatorRestartFoldsCommittedMigrations: a restarted
// coordinator reconstructs the file state (I, N) by folding the
// journal's committed migrations — no node round trips, no guessing.
func TestCoordinatorRestartFoldsCommittedMigrations(t *testing.T) {
	ctx := context.Background()
	h := newMigHarness(t, 2)
	keys := h.load(FileRecords, 48)
	h.c.SetMaxLoad(FileRecords, 8)
	if err := h.c.split(ctx, FileRecords); err != nil {
		t.Fatalf("split: %v", err)
	}
	if inFlight := h.newCoordinator(); inFlight != 0 {
		t.Fatalf("clean journal reported %d in-flight migrations", inFlight)
	}
	if got := h.c.State(FileRecords).Buckets(); got != 2 {
		t.Fatalf("restarted coordinator folded state to %d buckets, want 2", got)
	}
	h.wantStats(1, 1, 0, 0)
	h.checkAll(FileRecords, keys)
}

// TestMergeAbsorbRejectionAborts pins the abort path: when the merge
// target definitively rejects the absorb, the coordinator aborts both
// sides and the closing bucket — which never lost a record — resumes
// serving unchanged.
func TestMergeAbsorbRejectionAborts(t *testing.T) {
	ctx := context.Background()
	h := newMigHarness(t, 2)
	keys := h.load(FileRecords, 48)
	h.c.SetMaxLoad(FileRecords, 8)
	if err := h.c.split(ctx, FileRecords); err != nil {
		t.Fatalf("setup split: %v", err)
	}
	for k := uint64(24); k < 48; k++ {
		if _, err := h.c.Delete(ctx, FileRecords, k); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
		delete(keys, k)
	}
	h.c.SetMaxLoad(FileRecords, 400)

	h.hook.setBefore(rejectOnce(0, opMigrateAbsorb))
	if _, err := h.c.mergeOne(ctx, FileRecords); err == nil {
		t.Fatal("rejected merge reported success")
	}
	h.wantStats(2, 1, 1, 0)
	if got := h.c.State(FileRecords).Buckets(); got != 2 {
		t.Fatalf("aborted merge changed the file to %d buckets", got)
	}
	if got := h.c.Merges(FileRecords); got != 0 {
		t.Fatalf("aborted merge counted as %d merges", got)
	}
	h.checkAll(FileRecords, keys)

	// With the fault gone the merge goes through cleanly.
	h.hook.setBefore(nil)
	if err := h.c.merge(ctx, FileRecords); err != nil {
		t.Fatalf("merge after abort: %v", err)
	}
	h.wantStats(3, 2, 1, 0)
	if got := h.c.State(FileRecords).Buckets(); got != 1 {
		t.Fatalf("buckets after merge = %d, want 1", got)
	}
	h.checkAll(FileRecords, keys)
}

// TestWordSearchDuringInterruptedSplit: while a split is in flight both
// source and target legitimately hold the moved records; searches must
// stay complete and must not double-report them — during the freeze and
// after the resume.
func TestWordSearchDuringInterruptedSplit(t *testing.T) {
	ctx := context.Background()
	h := newMigHarness(t, 2)
	h.c.SetMaxLoad(FileWords, 1<<20)

	ix := wordindex.New(cipherx.KeyFromPassphrase("migration-test"), nil)
	needle := ix.TokenOf([]byte("NEEDLE")) // LetterTokenizer upper-cases words
	var want []uint64
	for rid := uint64(0); rid < 48; rid++ {
		content := []byte("plain hay content")
		if rid%3 == 0 {
			content = []byte("hay with needle inside")
			want = append(want, rid)
		}
		blob := wordindex.Blob(ix.Tokens(content))
		if err := h.c.Put(ctx, FileWords, rid, blob); err != nil {
			t.Fatalf("put word blob %d: %v", rid, err)
		}
	}
	h.c.SetMaxLoad(FileWords, 8)
	h.hook.setAfter(dropOnce(1, opMigrateAbsorb))
	if err := h.c.split(ctx, FileWords); err == nil {
		t.Fatal("interrupted split reported success")
	}

	check := func(phase string) {
		t.Helper()
		got, err := h.c.WordSearch(ctx, FileWords, needle[:])
		if err != nil {
			t.Fatalf("%s: word search: %v", phase, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: word search = %v, want %v", phase, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: word search = %v, want %v", phase, got, want)
			}
		}
	}
	check("during in-flight migration")
	if _, err := h.c.ResumeMigrations(ctx); err != nil {
		t.Fatalf("resume: %v", err)
	}
	check("after resumed migration")
}

// nodeKeySet snapshots the keys a node currently stores for a file.
func nodeKeySet(n *Node, id FileID) map[uint64]bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[uint64]bool)
	if f, ok := n.files[id]; ok {
		for _, b := range f.buckets {
			b.Scan(func(key uint64, _ []byte) bool {
				out[key] = true
				return true
			})
		}
	}
	return out
}

// TestLegacySplitExtractNotRetrySafe is the regression behind
// NonRetryableOps: re-sending the legacy one-shot extract after a lost
// response silently destroys records, because the first response was
// the only copy of the moved half and the second extract cuts again
// from what remains. The Retry guard must turn that into a loud
// failure instead.
func TestLegacySplitExtractNotRetrySafe(t *testing.T) {
	ctx := context.Background()
	build := func() (*hookTr, *Node) {
		t.Helper()
		mem := transport.NewMemory()
		place, err := NewPlacement([]transport.NodeID{0})
		if err != nil {
			t.Fatal(err)
		}
		node := NewNode(0, mem, place)
		mem.Register(0, node.Handler())
		for k := uint64(0); k < 8; k++ {
			req := putReq{file: FileRecords, addr: 0, key: k, value: []byte{byte(k)}}
			if _, err := node.Handler()(ctx, opPut, req.encode()); err != nil {
				t.Fatalf("put %d: %v", k, err)
			}
		}
		return &hookTr{inner: mem}, node
	}
	pol := transport.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	extract := splitExtractReq{file: FileRecords, addr: 0}.encode()

	// Unguarded: the retry "succeeds" — and keys 1,3,5,7, acknowledged
	// into the first (lost) response, exist nowhere anymore.
	lossy, node := build()
	lossy.setAfter(dropOnce(0, opSplitExtract))
	rt := transport.NewRetry(lossy, pol, 1)
	raw, err := rt.Send(ctx, 0, opSplitExtract, extract)
	if err != nil {
		t.Fatalf("unguarded retried extract: %v", err)
	}
	batch, err := decodeRecordBatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	returned := make(map[uint64]bool)
	for _, r := range batch.records {
		returned[r.key] = true
	}
	kept := nodeKeySet(node, FileRecords)
	for _, k := range []uint64{1, 3, 5, 7} {
		if returned[k] || kept[k] {
			t.Fatalf("key %d survived the double extract — hazard did not reproduce (returned %v, kept %v)", k, returned, kept)
		}
	}

	// Guarded: the same lost response surfaces as an error, and only the
	// first extraction ever ran.
	lossy2, node2 := build()
	lossy2.setAfter(dropOnce(0, opSplitExtract))
	pol.NoRetryOps = NonRetryableOps()
	rt2 := transport.NewRetry(lossy2, pol, 1)
	if _, err := rt2.Send(ctx, 0, opSplitExtract, extract); err == nil || !strings.Contains(err.Error(), "not retry-safe") {
		t.Fatalf("guarded retried extract = %v, want retry-safety refusal", err)
	}
	kept2 := nodeKeySet(node2, FileRecords)
	for _, k := range []uint64{0, 2, 4, 6} {
		if !kept2[k] {
			t.Fatalf("guarded path lost key %d from the node (kept %v)", k, kept2)
		}
	}
}

// TestMigrateHeaderMismatchRejected: nodes validate the coordinator's
// (from, to, level) expectation against local reality and refuse loudly
// on mismatch instead of splitting the wrong bucket.
func TestMigrateHeaderMismatchRejected(t *testing.T) {
	ctx := context.Background()
	h := newMigHarness(t, 2)
	h.load(FileRecords, 8)
	bad := []migrateHeader{
		{mid: 99, kind: migrateSplit, file: FileRecords, from: 0, to: 3, level: 0},  // wrong target
		{mid: 99, kind: migrateSplit, file: FileRecords, from: 0, to: 1, level: 4},  // wrong level
		{mid: 99, kind: migrateSplit, file: FileRecords, from: 7, to: 135, level: 7}, // no such bucket
		{mid: 99, kind: migrateMerge, file: FileRecords, from: 0, to: 1, level: 0},  // level-0 merge
	}
	for i, hdr := range bad {
		if _, err := h.hook.Send(ctx, 0, opMigratePrepare, migratePrepareReq{hdr}.encode()); err == nil {
			t.Fatalf("case %d: node accepted mismatched header %+v", i, hdr)
		}
	}
	if s := h.c.MigrationStats(); s.Started != 0 {
		t.Fatalf("rejected prepares leaked into the ledger: %+v", s)
	}
}
