// Two-phase bucket migration: the node-side protocol that makes LH*
// file growth and shrink crash-safe (DESIGN.md §14).
//
// The legacy split/merge ops moved records destructively in a single
// round trip: the source deleted its half and handed the records back
// only in the RPC response, so a lost response, a coordinator crash
// between steps, or a middleware re-send silently lost acknowledged
// records. The migration protocol replaces that with a migration-ID-
// keyed handoff:
//
//	prepare (source)  journal the moved set as *outgoing*, keep every
//	                  record and keep serving reads, return a copy.
//	absorb  (target)  durably land the records, keyed by migration ID —
//	                  idempotent on retry.
//	commit  (both)    source drops the outgoing set and raises/closes
//	                  the bucket; target keeps what it absorbed.
//	abort   (both)    source forgets the intent (nothing ever left);
//	                  target discards exactly what it absorbed.
//
// Buckets party to an in-flight migration reject writes loudly (reads
// and searches are served throughout); the coordinator already
// serializes its own client traffic against splits, so the rejection
// only fires across coordinators or during resume — and then the
// failure is visible, never silent loss. Every step is journaled
// before it is applied and the full migration ledger rides inside the
// node image, so a restarted participant answers retries and resumed
// drives with its durable outcome.
package sdds

import (
	"fmt"
	"sort"

	"repro/internal/lhstar"
)

// Migration kinds.
const (
	migrateSplit uint8 = 1 // records move from a splitting bucket to its new image
	migrateMerge uint8 = 2 // a closing bucket's records move back to the surviving partner
)

// Prepare response statuses.
const (
	migrateStatusOK        uint8 = 1 // outgoing set prepared (batch attached)
	migrateStatusCommitted uint8 = 2 // migration already committed durably
	migrateStatusAborted   uint8 = 3 // migration already aborted durably
)

// Durable outcomes in a node's migration ledger. Numerically identical
// to the coordinator journal's MigrationOutcome values.
const (
	migOutcomeCommitted uint8 = 1
	migOutcomeAborted   uint8 = 2
)

// migRecord is one side of an in-flight migration as a node tracks it:
// the addressing header plus the exact (sorted) key set the migration
// moves. On the source it is the outgoing set; on the target, the
// absorbed set.
type migRecord struct {
	migrateHeader
	keys []uint64
}

// migDone records the durable outcome of a finished migration — the
// idempotency ledger that lets a node answer delayed or retried
// migration traffic long after the buckets moved on.
type migDone struct {
	mid     uint64
	outcome uint8
}

// NonRetryableOps lists the op codes a transport.Retry middleware must
// never re-send: the legacy one-shot split/merge extraction ops are
// destructive reads whose response is the only copy of the moved
// records, so a re-send after a lost response returns an empty batch
// while the first batch is gone. The two-phase migration ops are
// migration-ID-keyed and idempotent, so they are absent here.
func NonRetryableOps() []uint8 {
	return []uint8{opSplitExtract, opMergeClose}
}

// migLock marks a bucket as party to an in-flight migration; writes to
// it are rejected until migUnlock. Callers must hold the node lock.
func (f *nodeFile) migLock(addr, mid uint64) {
	if f.migLocked == nil {
		f.migLocked = make(map[uint64]uint64)
	}
	f.migLocked[addr] = mid
}

func (f *nodeFile) migUnlock(addr uint64) {
	delete(f.migLocked, addr)
}

// migBlocked returns a loud error when the bucket is frozen by an
// in-flight migration. The nil-map lookup keeps the steady-state cost
// of the check at a single map probe on an (almost always) nil map.
func (f *nodeFile) migBlocked(file FileID, addr uint64) error {
	if mid, ok := f.migLocked[addr]; ok {
		return fmt.Errorf("sdds: bucket %d of file %d is frozen by in-flight migration %d; retry after it commits or aborts", addr, file, mid)
	}
	return nil
}

func migStatusOf(outcome uint8) uint8 {
	if outcome == migOutcomeCommitted {
		return migrateStatusCommitted
	}
	return migrateStatusAborted
}

// prepareMovedKeysLocked validates a prepare header against the local
// bucket state — rejecting loudly any mismatch between the
// coordinator's expectation and reality — and returns the sorted key
// set the migration moves. It does not mutate anything; handler and
// replay both call it before applying. Callers must hold the write
// lock.
func (n *Node) prepareMovedKeysLocked(f *nodeFile, hdr migrateHeader) ([]uint64, error) {
	b, ok := f.buckets[hdr.from]
	if !ok {
		return nil, fmt.Errorf("sdds: migration %d: node %d has no bucket %d of file %d", hdr.mid, n.id, hdr.from, hdr.file)
	}
	if b.Level() != uint(hdr.level) {
		return nil, fmt.Errorf("sdds: migration %d: bucket %d of file %d is at level %d, coordinator expected %d", hdr.mid, hdr.from, hdr.file, b.Level(), hdr.level)
	}
	if locker, ok := f.migLocked[hdr.from]; ok && locker != hdr.mid {
		return nil, fmt.Errorf("sdds: migration %d: bucket %d of file %d already frozen by migration %d", hdr.mid, hdr.from, hdr.file, locker)
	}
	var keys []uint64
	switch hdr.kind {
	case migrateSplit:
		if want := hdr.from + 1<<hdr.level; hdr.to != want {
			return nil, fmt.Errorf("sdds: migration %d: split of bucket %d at level %d must target %d, coordinator sent %d", hdr.mid, hdr.from, hdr.level, want, hdr.to)
		}
		mod := uint64(1) << (hdr.level + 1)
		b.Scan(func(key uint64, _ []byte) bool {
			if key%mod == hdr.to {
				keys = append(keys, key)
			}
			return true
		})
	case migrateMerge:
		if hdr.level == 0 {
			return nil, fmt.Errorf("sdds: migration %d: cannot merge a level-0 bucket", hdr.mid)
		}
		if want := hdr.to + 1<<(hdr.level-1); hdr.from != want {
			return nil, fmt.Errorf("sdds: migration %d: merge into bucket %d at level %d must close %d, coordinator sent %d", hdr.mid, hdr.to, hdr.level, want, hdr.from)
		}
		b.Scan(func(key uint64, _ []byte) bool {
			keys = append(keys, key)
			return true
		})
	default:
		return nil, fmt.Errorf("sdds: migration %d: unknown kind %d", hdr.mid, hdr.kind)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, nil
}

// migBatchLocked rebuilds the record batch of an outgoing set from the
// live bucket. Deterministic across retries: the bucket is frozen for
// writes while the migration is in flight. Callers must hold the node
// lock.
func (n *Node) migBatchLocked(f *nodeFile, rec *migRecord) (recordBatch, error) {
	b, ok := f.buckets[rec.from]
	if !ok {
		return recordBatch{}, fmt.Errorf("sdds: migration %d: outgoing bucket %d of file %d vanished from node %d", rec.mid, rec.from, rec.file, n.id)
	}
	var batch recordBatch
	for _, k := range rec.keys {
		v, ok := b.Get(k)
		if !ok {
			return recordBatch{}, fmt.Errorf("sdds: migration %d: outgoing key %d missing from frozen bucket %d", rec.mid, k, rec.from)
		}
		batch.records = append(batch.records, kv{key: k, value: v})
	}
	return batch, nil
}

func (n *Node) handleMigratePrepare(payload []byte) ([]byte, error) {
	m, err := decodeMigratePrepareReq(payload)
	if err != nil {
		return nil, err
	}
	f := n.getFile(m.file)
	n.mu.Lock()
	defer n.mu.Unlock()
	if outcome, ok := n.migDone[m.mid]; ok {
		return migratePrepareResp{status: migStatusOf(outcome)}.encode(), nil
	}
	if rec, ok := n.outgoing[m.mid]; ok {
		// Idempotent re-prepare: the frozen bucket makes rebuilding the
		// batch from the saved key set deterministic.
		batch, err := n.migBatchLocked(f, rec)
		if err != nil {
			return nil, err
		}
		return migratePrepareResp{status: migrateStatusOK, batch: batch}.encode(), nil
	}
	if _, err := n.prepareMovedKeysLocked(f, m.migrateHeader); err != nil {
		return nil, err
	}
	if err := n.journalLocked(opMigratePrepare, payload); err != nil {
		return nil, err
	}
	if err := n.applyMigratePrepareLocked(m); err != nil {
		return nil, err
	}
	batch, err := n.migBatchLocked(f, n.outgoing[m.mid])
	if err != nil {
		return nil, err
	}
	return migratePrepareResp{status: migrateStatusOK, batch: batch}.encode(), n.maybeCheckpointLocked()
}

// applyMigratePrepareLocked records the outgoing set and freezes the
// source bucket — shared by the live handler (post-journal) and WAL
// replay. Callers must hold the write lock.
func (n *Node) applyMigratePrepareLocked(m migratePrepareReq) error {
	f := n.fileLocked(m.file)
	keys, err := n.prepareMovedKeysLocked(f, m.migrateHeader)
	if err != nil {
		return err
	}
	n.outgoing[m.mid] = &migRecord{migrateHeader: m.migrateHeader, keys: keys}
	f.migLock(m.from, m.mid)
	return nil
}

func (n *Node) handleMigrateAbsorb(payload []byte) ([]byte, error) {
	m, err := decodeMigrateAbsorbReq(payload)
	if err != nil {
		return nil, err
	}
	f := n.getFile(m.file)
	n.mu.Lock()
	defer n.mu.Unlock()
	// Finished or already-absorbed IDs ack without re-applying — the
	// idempotency that makes absorb safe to retry (and harmless when a
	// delayed duplicate lands after the coordinator moved on).
	if _, ok := n.migDone[m.mid]; ok {
		return nil, nil
	}
	if _, ok := n.absorbed[m.mid]; ok {
		return nil, nil
	}
	if err := n.checkAbsorbLocked(f, m); err != nil {
		return nil, err
	}
	if err := n.journalLocked(opMigrateAbsorb, payload); err != nil {
		return nil, err
	}
	if err := n.applyMigrateAbsorbLocked(m); err != nil {
		return nil, err
	}
	return nil, n.maybeCheckpointLocked()
}

// checkAbsorbLocked validates an absorb against local state without
// mutating it, so validation failures surface before the journal write.
func (n *Node) checkAbsorbLocked(f *nodeFile, m migrateAbsorbReq) error {
	switch m.kind {
	case migrateSplit:
		if want := m.from + 1<<m.level; m.to != want {
			return fmt.Errorf("sdds: migration %d: split absorb into bucket %d does not match source %d at level %d", m.mid, m.to, m.from, m.level)
		}
		if _, exists := f.buckets[m.to]; exists {
			return fmt.Errorf("sdds: migration %d: split target bucket %d of file %d already exists on node %d", m.mid, m.to, m.file, n.id)
		}
	case migrateMerge:
		b, ok := f.buckets[m.to]
		if !ok {
			return fmt.Errorf("sdds: migration %d: node %d has no merge target bucket %d of file %d", m.mid, n.id, m.to, m.file)
		}
		if m.level == 0 || b.Level() != uint(m.level) {
			return fmt.Errorf("sdds: migration %d: merge target bucket %d is at level %d, coordinator expected %d", m.mid, m.to, b.Level(), m.level)
		}
		if want := m.to + 1<<(m.level-1); m.from != want {
			return fmt.Errorf("sdds: migration %d: merge absorb from bucket %d does not match target %d at level %d", m.mid, m.from, m.to, m.level)
		}
		if err := f.migBlocked(m.file, m.to); err != nil {
			return err
		}
	default:
		return fmt.Errorf("sdds: migration %d: unknown kind %d", m.mid, m.kind)
	}
	return nil
}

// applyMigrateAbsorbLocked lands the batch, records the absorbed set,
// and freezes the target bucket until commit/abort — shared by the
// live handler and WAL replay. Callers must hold the write lock.
func (n *Node) applyMigrateAbsorbLocked(m migrateAbsorbReq) error {
	f := n.fileLocked(m.file)
	keys := make([]uint64, 0, len(m.batch.records))
	switch m.kind {
	case migrateSplit:
		b := lhstar.NewBucket(m.to, uint(m.level)+1)
		for _, r := range m.batch.records {
			b.Put(r.key, r.value)
			keys = append(keys, r.key)
		}
		f.buckets[m.to] = b
		f.indexPutBatch(m.batch.records)
	case migrateMerge:
		b, ok := f.buckets[m.to]
		if !ok {
			return fmt.Errorf("sdds: migration %d: node %d has no merge target bucket %d of file %d", m.mid, n.id, m.to, m.file)
		}
		src := lhstar.NewBucket(m.from, uint(m.level))
		for _, r := range m.batch.records {
			src.Put(r.key, r.value)
			keys = append(keys, r.key)
		}
		if err := b.MergeFrom(src); err != nil {
			return err
		}
		f.indexPutBatch(m.batch.records)
	default:
		return fmt.Errorf("sdds: migration %d: unknown kind %d", m.mid, m.kind)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	n.absorbed[m.mid] = &migRecord{migrateHeader: m.migrateHeader, keys: keys}
	f.migLock(m.to, m.mid)
	return nil
}

func (n *Node) handleMigrateCommit(payload []byte) ([]byte, error) {
	m, err := decodeMigrateFinishReq(payload)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if outcome, ok := n.migDone[m.mid]; ok {
		if outcome == migOutcomeCommitted {
			return nil, nil
		}
		return nil, fmt.Errorf("sdds: migration %d was aborted on node %d; refusing commit", m.mid, n.id)
	}
	_, src := n.outgoing[m.mid]
	_, dst := n.absorbed[m.mid]
	if !src && !dst {
		return nil, fmt.Errorf("sdds: migration %d unknown on node %d: commit without prepare or absorb", m.mid, n.id)
	}
	if err := n.journalLocked(opMigrateCommit, payload); err != nil {
		return nil, err
	}
	if err := n.applyMigrateCommitLocked(m); err != nil {
		return nil, err
	}
	return nil, n.maybeCheckpointLocked()
}

// applyMigrateCommitLocked finalizes a migration on every side this
// node played — when placement puts source and target buckets on the
// same node, one commit settles both roles. The source applies the
// destructive half it deferred at prepare (drop the moved keys / close
// the bucket); the target simply keeps what it absorbed. Callers must
// hold the write lock.
func (n *Node) applyMigrateCommitLocked(m migrateFinishReq) error {
	applied := false
	// When this node is both source and target (placement collision) the
	// moved records stay local: their postings — one set per key, shared
	// across the node's buckets — must survive the source-side cleanup.
	_, alsoTarget := n.absorbed[m.mid]
	if rec, ok := n.outgoing[m.mid]; ok {
		f := n.fileLocked(rec.file)
		b, ok := f.buckets[rec.from]
		if !ok {
			return fmt.Errorf("sdds: migration %d: outgoing bucket %d of file %d vanished from node %d", rec.mid, rec.from, rec.file, n.id)
		}
		switch rec.kind {
		case migrateSplit:
			dst := lhstar.NewBucket(rec.to, uint(rec.level)+1)
			if _, err := b.SplitInto(dst); err != nil {
				return err
			}
			if err := verifyMovedKeys(rec, dst); err != nil {
				return err
			}
			if !alsoTarget {
				dst.Scan(func(key uint64, _ []byte) bool {
					f.indexDelete(key)
					return true
				})
			}
		case migrateMerge:
			if !alsoTarget {
				b.Scan(func(key uint64, _ []byte) bool {
					f.indexDelete(key)
					return true
				})
			}
			delete(f.buckets, rec.from)
		}
		f.migUnlock(rec.from)
		delete(n.outgoing, m.mid)
		applied = true
	}
	if rec, ok := n.absorbed[m.mid]; ok {
		f := n.fileLocked(rec.file)
		f.migUnlock(rec.to)
		delete(n.absorbed, m.mid)
		applied = true
	}
	if !applied {
		return fmt.Errorf("sdds: migration %d unknown on node %d during commit", m.mid, n.id)
	}
	n.migDone[m.mid] = migOutcomeCommitted
	return nil
}

func (n *Node) handleMigrateAbort(payload []byte) ([]byte, error) {
	m, err := decodeMigrateFinishReq(payload)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if outcome, ok := n.migDone[m.mid]; ok {
		if outcome == migOutcomeAborted {
			return nil, nil
		}
		return nil, fmt.Errorf("sdds: migration %d was committed on node %d; refusing abort", m.mid, n.id)
	}
	if err := n.journalLocked(opMigrateAbort, payload); err != nil {
		return nil, err
	}
	if err := n.applyMigrateAbortLocked(m); err != nil {
		return nil, err
	}
	return nil, n.maybeCheckpointLocked()
}

// applyMigrateAbortLocked undoes a migration: the source just forgets
// the intent (no record ever left its bucket — abort trivially restores
// it); the target surgically removes exactly the absorbed set. An abort
// for an ID this node never saw still poisons the ledger, so a delayed
// prepare or absorb arriving later cannot resurrect the migration.
// Callers must hold the write lock.
func (n *Node) applyMigrateAbortLocked(m migrateFinishReq) error {
	// Same-node dual role: when the source bucket is local too, the
	// records the target discards still live in the (never-mutated)
	// source bucket, so their postings must survive the undo.
	_, alsoSource := n.outgoing[m.mid]
	if rec, ok := n.outgoing[m.mid]; ok {
		// Records never left the frozen bucket; forgetting the intent is
		// the whole undo. A same-node absorbed role (placement collision)
		// is handled below before the outcome is recorded.
		f := n.fileLocked(rec.file)
		f.migUnlock(rec.from)
		delete(n.outgoing, m.mid)
	}
	if rec, ok := n.absorbed[m.mid]; ok {
		f := n.fileLocked(rec.file)
		b, bok := f.buckets[rec.to]
		if !bok {
			return fmt.Errorf("sdds: migration %d: absorbed bucket %d of file %d vanished from node %d", rec.mid, rec.to, rec.file, n.id)
		}
		switch rec.kind {
		case migrateSplit:
			// The whole bucket was created by the absorb and frozen since;
			// its contents must be exactly the absorbed set.
			if err := verifyMovedKeys(rec, b); err != nil {
				return err
			}
			if !alsoSource {
				b.Scan(func(key uint64, _ []byte) bool {
					f.indexDelete(key)
					return true
				})
			}
			delete(f.buckets, rec.to)
		case migrateMerge:
			// Re-extract: raising the level back pulls out exactly the keys
			// that belong to the closed bucket — the absorbed set, since
			// the bucket was frozen for writes.
			dst := lhstar.NewBucket(rec.from, uint(rec.level))
			if _, err := b.SplitInto(dst); err != nil {
				return err
			}
			if err := verifyMovedKeys(rec, dst); err != nil {
				return err
			}
			if !alsoSource {
				dst.Scan(func(key uint64, _ []byte) bool {
					f.indexDelete(key)
					return true
				})
			}
		}
		f.migUnlock(rec.to)
		delete(n.absorbed, m.mid)
		n.migDone[m.mid] = migOutcomeAborted
		return nil
	}
	n.migDone[m.mid] = migOutcomeAborted
	return nil
}

// verifyMovedKeys asserts that a bucket's key set is exactly the
// migration's recorded key set — the invariant the write freeze
// guarantees. A mismatch means records appeared or vanished inside a
// frozen bucket; failing loudly beats silently dropping them.
func verifyMovedKeys(rec *migRecord, b *lhstar.Bucket) error {
	var got []uint64
	b.Scan(func(key uint64, _ []byte) bool {
		got = append(got, key)
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(rec.keys) {
		return fmt.Errorf("sdds: migration %d: frozen bucket holds %d keys, migration recorded %d", rec.mid, len(got), len(rec.keys))
	}
	for i := range got {
		if got[i] != rec.keys[i] {
			return fmt.Errorf("sdds: migration %d: frozen bucket key set diverged at key %d (recorded %d)", rec.mid, got[i], rec.keys[i])
		}
	}
	return nil
}

// migImageLocked serializes the node's migration ledger for the node
// image, sorted by migration ID for deterministic encoding. Callers
// must hold the node lock (shared suffices).
func (n *Node) migImageLocked() migrationImage {
	var img migrationImage
	img.outgoing = sortedMigRecords(n.outgoing)
	img.absorbed = sortedMigRecords(n.absorbed)
	if len(n.migDone) > 0 {
		img.done = make([]migDone, 0, len(n.migDone))
		for mid, outcome := range n.migDone {
			img.done = append(img.done, migDone{mid: mid, outcome: outcome})
		}
		sort.Slice(img.done, func(i, j int) bool { return img.done[i].mid < img.done[j].mid })
	}
	return img
}

func sortedMigRecords(m map[uint64]*migRecord) []migRecord {
	if len(m) == 0 {
		return nil
	}
	out := make([]migRecord, 0, len(m))
	for _, rec := range m {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].mid < out[j].mid })
	return out
}

// adoptMigImageLocked replaces the node's migration ledger with the one
// from a restored image and re-freezes the buckets of every in-flight
// migration. Callers must hold the write lock, with n.files already
// holding the restored buckets.
func (n *Node) adoptMigImageLocked(img migrationImage) {
	n.outgoing = make(map[uint64]*migRecord, len(img.outgoing))
	n.absorbed = make(map[uint64]*migRecord, len(img.absorbed))
	n.migDone = make(map[uint64]uint8, len(img.done))
	for i := range img.outgoing {
		rec := img.outgoing[i]
		n.outgoing[rec.mid] = &rec
		n.fileLocked(rec.file).migLock(rec.from, rec.mid)
	}
	for i := range img.absorbed {
		rec := img.absorbed[i]
		n.absorbed[rec.mid] = &rec
		n.fileLocked(rec.file).migLock(rec.to, rec.mid)
	}
	for _, d := range img.done {
		n.migDone[d.mid] = d.outcome
	}
}
