package sdds

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disperse"
	"repro/internal/lhstar"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wordindex"
)

// Store is the durable backing a node journals into — the narrow
// surface of *wal.Store the node needs. A storeless node is ephemeral:
// every restart is a total state loss that only LH*RS parity can repair.
// With a store attached, every mutating handler journals before
// applying, so a restarted node replays checkpoint+journal back to its
// last acknowledged state and rejoins without touching the parity
// budget.
type Store interface {
	// Recover replays durable state: restore with the checkpoint image,
	// then apply per journal entry. See wal.Store.Recover.
	Recover(restore func(image []byte) error, apply func(op uint8, payload []byte) error) (wal.Outcome, error)
	// Journal durably appends one operation before it is applied.
	Journal(op uint8, payload []byte) error
	// CheckpointDue reports that the journal has outgrown the cadence.
	CheckpointDue() bool
	// Checkpoint persists a full state image and prunes the journal.
	Checkpoint(image []byte) error
	// Reset wipes the store — the exit from the corrupt state.
	Reset() error
	// Seq returns the last journaled sequence number.
	Seq() uint64
	// Close flushes and closes the store.
	Close() error
}

// Node is one storage site: it hosts LH* buckets for any number of
// logical files and serves the SDDS protocol. Nodes hold no key
// material — they only ever see sealed records, encrypted index pieces,
// and opaque query patterns.
type Node struct {
	id    transport.NodeID
	peers transport.Transport // for server-to-server forwarding
	place *Placement

	// linearSearch disables the posting index (set before serving any
	// traffic); handleSearch then falls back to the full linear scan.
	linearSearch bool

	// indexFactory, when non-nil, overrides the posting index
	// implementation new files get — the differential test battery uses
	// it to run a node on the legacy map index. Set before traffic.
	indexFactory func() postingIndex

	mu    sync.RWMutex
	files map[FileID]*nodeFile

	// store, when non-nil, is the durable journal every mutation goes
	// through; storeOutcome/storeDetail record how the last AttachStore
	// recovery went (surfaced via opRecoveryState).
	store        Store
	storeOutcome wal.Outcome
	storeDetail  string

	// Two-phase migration ledger (DESIGN.md §14): outgoing sets this
	// node sourced, absorbed sets it received, and durable outcomes of
	// finished migrations — all keyed by migration ID, all journaled,
	// and all carried inside the node image.
	outgoing map[uint64]*migRecord
	absorbed map[uint64]*migRecord
	migDone  map[uint64]uint8

	met nodeMetrics // set by Instrument before traffic; nil-safe
}

type nodeFile struct {
	buckets map[uint64]*lhstar.Bucket
	// idx is the posting index accelerating handleSearch; non-nil only
	// for the index file on nodes that keep the posting index enabled.
	// The production implementation is flatIndex (posting.go): a
	// per-piece packed posting array. Because Stage-1 ECB maps equal
	// plaintext chunks to equal ciphertext chunks, the first piece of a
	// query pattern is an exact-match anchor into this structure, making
	// node-side search cost scale with candidate count instead of file
	// size. Maintained incrementally under the node lock on every
	// mutation (put/delete/split/merge) and rebuilt wholesale on restore.
	idx postingIndex
	// migLocked freezes buckets party to an in-flight migration
	// (addr → migration ID): writes are rejected loudly, reads served.
	// nil until the first migration touches this file, so the per-write
	// check costs one probe of a nil map.
	migLocked map[uint64]uint64
}

// postEntry caches one indexed entry's decoded piece stream, so a probe
// can verify candidates without re-decoding bucket values.
type postEntry struct {
	firstIndex uint32
	pieces     []disperse.Piece
}

// indexPut (re)indexes one stored value. Values that do not decode as
// index pieces (foreign entries) are kept out of the index, mirroring
// the linear scan's skip. Callers must hold the node lock.
func (f *nodeFile) indexPut(key uint64, value []byte) {
	if f.idx == nil {
		return
	}
	f.idx.put(key, value)
}

// indexPutBatch indexes a batch of stored values in one pass — the
// batch-aware feed used by handlePutBatch, split/merge absorption, and
// migration absorbs, which groups posting appends per piece instead of
// running len(ents) independent puts. Callers must hold the node lock.
func (f *nodeFile) indexPutBatch(ents []kv) {
	if f.idx == nil {
		return
	}
	f.idx.putBatch(ents)
}

// indexDelete removes one key's postings. Callers must hold the node
// lock.
func (f *nodeFile) indexDelete(key uint64) {
	if f.idx == nil {
		return
	}
	f.idx.remove(key)
}

// rebuildIndex reconstructs the posting index from bucket contents —
// used after a wholesale state replacement (restore/recovery). Callers
// must hold the node lock.
func (f *nodeFile) rebuildIndex() {
	if f.idx == nil {
		return
	}
	f.idx.reset()
	// Feed the whole inventory through the batch path: values are
	// borrowed from bucket storage for the duration of the call only
	// (the index copies what it keeps).
	var ents []kv
	for _, b := range f.buckets {
		b.Scan(func(key uint64, value []byte) bool {
			ents = append(ents, kv{key: key, value: value})
			return true
		})
	}
	f.idx.putBatch(ents)
}

// Placement maps LH* bucket addresses onto the fixed node pool. The
// paper's model gives every bucket its own server; with a finite pool we
// round-robin buckets across nodes, which preserves all LH* mechanics
// (forwarding simply becomes a message to the peer owning the target
// bucket).
type Placement struct {
	nodes []transport.NodeID
}

// NewPlacement builds a placement over the given nodes (at least one).
func NewPlacement(nodes []transport.NodeID) (*Placement, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sdds: placement needs at least one node")
	}
	return &Placement{nodes: append([]transport.NodeID(nil), nodes...)}, nil
}

// NodeOf returns the node hosting a bucket address.
func (p *Placement) NodeOf(addr uint64) transport.NodeID {
	return p.nodes[addr%uint64(len(p.nodes))]
}

// Nodes returns the node pool. The returned slice is the placement's
// cached, immutable membership — callers must not modify it. (Every
// broadcast consults it, so handing out copies would put an allocation
// on the search hot path.)
func (p *Placement) Nodes() []transport.NodeID {
	return p.nodes
}

// NewNode creates a node. peers is the transport used for forwarding
// (it may be nil in single-node tests; forwarding then fails loudly).
func NewNode(id transport.NodeID, peers transport.Transport, placement *Placement) *Node {
	n := &Node{
		id:       id,
		peers:    peers,
		place:    placement,
		files:    make(map[FileID]*nodeFile),
		outgoing: make(map[uint64]*migRecord),
		absorbed: make(map[uint64]*migRecord),
		migDone:  make(map[uint64]uint8),
	}
	// Node 0 starts with the initial bucket of every file lazily; see
	// getFile.
	return n
}

// DisablePostingIndex switches the node to the linear search scan —
// the reference implementation the posting index must agree with. Call
// it before the node serves any traffic.
func (n *Node) DisablePostingIndex() {
	n.mu.Lock()
	n.linearSearch = true
	for _, f := range n.files {
		f.idx = nil
	}
	n.mu.Unlock()
}

// AttachStore gives the node a durable backing and replays whatever
// state the store recovered — call it before the node serves traffic.
// The returned outcome distinguishes a fresh store, a successful replay,
// and corruption. On ANY recovery failure (checksum mismatch, sequence
// gap, or a replay that no longer applies) the local state is
// untrusted: the node comes up EMPTY with the store reset and re-armed,
// the corrupt outcome is returned (and kept for opRecoveryState), and
// the caller must restore from elsewhere — detected, never silently
// ignored.
func (n *Node) AttachStore(s Store) (wal.Outcome, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	out, err := s.Recover(n.restoreImageLocked, n.applyLoggedLocked)
	if err != nil {
		n.files = make(map[FileID]*nodeFile)
		n.outgoing = make(map[uint64]*migRecord)
		n.absorbed = make(map[uint64]*migRecord)
		n.migDone = make(map[uint64]uint8)
		if rerr := s.Reset(); rerr != nil {
			return wal.OutcomeCorrupt, fmt.Errorf("sdds: node %d: resetting store after failed recovery (%v): %w", n.id, err, rerr)
		}
		n.store = s
		n.storeOutcome = wal.OutcomeCorrupt
		n.storeDetail = err.Error()
		return wal.OutcomeCorrupt, err
	}
	n.store = s
	n.storeOutcome = out
	n.storeDetail = ""
	return out, nil
}

// CloseStore checkpoints the node's current state and closes the store —
// the graceful-shutdown path. A node whose store was already torn down
// out from under it (a simulated kill) is not an error.
func (n *Node) CloseStore() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store == nil {
		return nil
	}
	s := n.store
	n.store = nil
	err := s.Checkpoint(n.snapshotLocked())
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, wal.ErrClosed) {
		return nil
	}
	return err
}

// journalLocked durably appends one mutation to the store (free on
// ephemeral nodes). Handlers call it under the write lock BEFORE
// applying, so the journal order is the apply order and a crash between
// the two replays the op the client never saw acknowledged — the
// at-least-once side of redo logging, safe because every journaled op
// is deterministic. Callers must hold the node lock.
func (n *Node) journalLocked(op uint8, payload []byte) error {
	if n.store == nil {
		return nil
	}
	if err := n.store.Journal(op, payload); err != nil {
		return fmt.Errorf("sdds: node %d: journaling op %d: %w", n.id, op, err)
	}
	return nil
}

// maybeCheckpointLocked folds the journal into a fresh checkpoint once
// it outgrows the cadence. Callers must hold the write lock.
func (n *Node) maybeCheckpointLocked() error {
	if n.store == nil || !n.store.CheckpointDue() {
		return nil
	}
	if err := n.store.Checkpoint(n.snapshotLocked()); err != nil {
		return fmt.Errorf("sdds: node %d: checkpoint: %w", n.id, err)
	}
	return nil
}

// applyLoggedLocked re-applies one journaled mutation during replay. It
// mirrors exactly what each handler does after its journalLocked call —
// minus forwarding, IAM responses and re-journaling. Callers must hold
// the write lock.
func (n *Node) applyLoggedLocked(op uint8, payload []byte) error {
	replayBucket := func(file FileID, addr uint64) (*nodeFile, *lhstar.Bucket, error) {
		f := n.fileLocked(file)
		b, ok := f.buckets[addr]
		if !ok {
			return nil, nil, fmt.Errorf("sdds: replay: node %d has no bucket %d of file %d", n.id, addr, file)
		}
		return f, b, nil
	}
	switch op {
	case opPut:
		m, err := decodePutReq(payload)
		if err != nil {
			return err
		}
		f, b, err := replayBucket(m.file, m.addr)
		if err != nil {
			return err
		}
		b.Put(m.key, m.value)
		f.indexPut(m.key, m.value)
		return nil
	case opDelete:
		m, err := decodeKeyReq(payload)
		if err != nil {
			return err
		}
		f, b, err := replayBucket(m.file, m.addr)
		if err != nil {
			return err
		}
		if b.Delete(m.key) {
			f.indexDelete(m.key)
		}
		return nil
	case opBucketCreate:
		m, err := decodeBucketCreateReq(payload)
		if err != nil {
			return err
		}
		f := n.fileLocked(m.file)
		if _, exists := f.buckets[m.addr]; exists {
			return fmt.Errorf("sdds: replay: bucket %d of file %d already exists on node %d", m.addr, m.file, n.id)
		}
		f.buckets[m.addr] = lhstar.NewBucket(m.addr, uint(m.level))
		return nil
	case opSplitExtract:
		m, err := decodeSplitExtractReq(payload)
		if err != nil {
			return err
		}
		f, b, err := replayBucket(m.file, m.addr)
		if err != nil {
			return err
		}
		dst := lhstar.NewBucket(b.Addr()+1<<b.Level(), b.Level()+1)
		if _, err := b.SplitInto(dst); err != nil {
			return err
		}
		// The extracted records left for the absorbing node (which
		// journaled its own splitAbsorb); here they only leave the index.
		dst.Scan(func(key uint64, _ []byte) bool {
			f.indexDelete(key)
			return true
		})
		return nil
	case opSplitAbsorb:
		m, err := decodeSplitAbsorbReq(payload)
		if err != nil {
			return err
		}
		f, b, err := replayBucket(m.file, m.addr)
		if err != nil {
			return err
		}
		for _, r := range m.batch.records {
			b.Put(r.key, r.value)
		}
		f.indexPutBatch(m.batch.records)
		return nil
	case opMergeClose:
		m, err := decodeMergeCloseReq(payload)
		if err != nil {
			return err
		}
		f, b, err := replayBucket(m.file, m.addr)
		if err != nil {
			return err
		}
		b.Scan(func(key uint64, _ []byte) bool {
			f.indexDelete(key)
			return true
		})
		delete(f.buckets, m.addr)
		return nil
	case opMergeAbsorb:
		m, err := decodeMergeAbsorbReq(payload)
		if err != nil {
			return err
		}
		f, b, err := replayBucket(m.file, m.addr)
		if err != nil {
			return err
		}
		if b.Level() == 0 {
			return fmt.Errorf("sdds: replay: cannot lower level of bucket %d below 0", m.addr)
		}
		src := lhstar.NewBucket(b.Addr()+1<<(b.Level()-1), b.Level())
		for _, r := range m.batch.records {
			src.Put(r.key, r.value)
		}
		if err := b.MergeFrom(src); err != nil {
			return err
		}
		f.indexPutBatch(m.batch.records)
		return nil
	case opMigratePrepare:
		m, err := decodeMigratePrepareReq(payload)
		if err != nil {
			return err
		}
		return n.applyMigratePrepareLocked(m)
	case opMigrateAbsorb:
		m, err := decodeMigrateAbsorbReq(payload)
		if err != nil {
			return err
		}
		return n.applyMigrateAbsorbLocked(m)
	case opMigrateCommit:
		m, err := decodeMigrateFinishReq(payload)
		if err != nil {
			return err
		}
		return n.applyMigrateCommitLocked(m)
	case opMigrateAbort:
		m, err := decodeMigrateFinishReq(payload)
		if err != nil {
			return err
		}
		return n.applyMigrateAbortLocked(m)
	default:
		return fmt.Errorf("sdds: replay: op %d is not a journaled mutation", op)
	}
}

// Handler returns the transport handler serving this node. When the
// node is instrumented, every request is timed into its per-opcode
// latency histogram.
func (n *Node) Handler() transport.Handler {
	return func(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
		if !n.met.on {
			return n.dispatch(ctx, op, payload)
		}
		start := time.Now()
		resp, err := n.dispatch(ctx, op, payload)
		n.met.observeOp(op, time.Since(start), err)
		return resp, err
	}
}

// dispatch routes one request to its handler. The context carries the
// caller's remaining deadline budget; handlers that forward (put, get,
// delete, batch put) derive their peer sends from it, so an IAM hop
// never outlives the time the original client actually has left.
func (n *Node) dispatch(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	switch op {
	case opPut:
		return n.handlePut(ctx, payload)
	case opGet:
		return n.handleGet(ctx, payload)
	case opDelete:
		return n.handleDelete(ctx, payload)
	case opSearch:
		return n.handleSearch(payload)
	case opBucketCreate:
		return n.handleBucketCreate(payload)
	case opSplitExtract:
		return n.handleSplitExtract(payload)
	case opSplitAbsorb:
		return n.handleSplitAbsorb(payload)
	case opStats:
		return n.handleStats(payload)
	case opMergeClose:
		return n.handleMergeClose(payload)
	case opMergeAbsorb:
		return n.handleMergeAbsorb(payload)
	case opWordSearch:
		return n.handleWordSearch(payload)
	case opNodeSnapshot:
		return n.handleNodeSnapshot(payload)
	case opNodeRestore:
		return n.handleNodeRestore(payload)
	case opPutBatch:
		return n.handlePutBatch(ctx, payload)
	case opPing:
		return nil, nil // health probe: answering is the point
	case opRecoveryState:
		return n.handleRecoveryState(payload)
	case opMigratePrepare:
		return n.handleMigratePrepare(payload)
	case opMigrateAbsorb:
		return n.handleMigrateAbsorb(payload)
	case opMigrateCommit:
		return n.handleMigrateCommit(payload)
	case opMigrateAbort:
		return n.handleMigrateAbort(payload)
	default:
		return nil, fmt.Errorf("sdds: unknown op %d", op)
	}
}

// getFile returns the node's bucket table for a file, creating it (and,
// on the node owning bucket 0, the initial bucket) on first touch.
func (n *Node) getFile(id FileID) *nodeFile {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fileLocked(id)
}

// fileLocked is getFile under an already-held lock. The lazy bucket-0
// creation is deterministic (it depends only on the placement), so it
// needs no journal entry: replay re-creates it the same way.
func (n *Node) fileLocked(id FileID) *nodeFile {
	f, ok := n.files[id]
	if !ok {
		f = n.newFileLocked(id)
		if n.place.NodeOf(0) == n.id {
			f.buckets[0] = lhstar.NewBucket(0, 0)
		}
		n.files[id] = f
	}
	return f
}

// newFileLocked builds an empty per-file state: the index file gets a
// posting index unless the node runs in linear-scan mode. Callers must
// hold the node lock.
func (n *Node) newFileLocked(id FileID) *nodeFile {
	f := &nodeFile{buckets: make(map[uint64]*lhstar.Bucket)}
	if !n.linearSearch && id == FileIndex {
		if n.indexFactory != nil {
			f.idx = n.indexFactory()
		} else {
			f.idx = newFlatIndex(&n.met)
		}
	}
	return f
}

func (n *Node) bucket(id FileID, addr uint64) (*lhstar.Bucket, error) {
	f := n.getFile(id)
	n.mu.RLock()
	defer n.mu.RUnlock()
	b, ok := f.buckets[addr]
	if !ok {
		return nil, fmt.Errorf("sdds: node %d has no bucket %d of file %d", n.id, addr, id)
	}
	return b, nil
}

const maxHops = 3

// forwardDeadline bounds server-to-server forwards.
const forwardDeadline = 10 * time.Second

// withOwnedBucket runs the LH* server-side address computation and, if
// the key belongs to the addressed local bucket, executes fn on it while
// still holding the node lock — so the ownership check and the operation
// are atomic with respect to concurrent splits. If the key belongs
// elsewhere, the (re-encoded) request is forwarded to the owning peer
// and its response relayed.
func (n *Node) withOwnedBucket(ctx context.Context, file FileID, addr uint64, hops uint8, key uint64, op uint8, reencode func(nextAddr uint64) []byte, fn func(f *nodeFile, b *lhstar.Bucket) ([]byte, error)) ([]byte, error) {
	f := n.getFile(file)
	n.mu.Lock()
	b, ok := f.buckets[addr]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("sdds: node %d has no bucket %d of file %d", n.id, addr, file)
	}
	next, fwd := lhstar.ServerAddress(b.Addr(), b.Level(), key)
	if !fwd {
		resp, err := fn(f, b)
		n.mu.Unlock()
		return resp, err
	}
	n.mu.Unlock()
	if hops+1 >= maxHops {
		return nil, fmt.Errorf("sdds: forwarding chain exceeded %d hops for key %d", maxHops, key)
	}
	if n.peers == nil {
		return nil, fmt.Errorf("sdds: forward needed but node %d has no peer transport", n.id)
	}
	n.met.forwards.Inc()
	// WithTimeout on the request context takes the minimum of the local
	// forward bound and the caller's propagated deadline, so the hop
	// inherits the tighter of the two budgets.
	ctx, cancel := context.WithTimeout(ctx, forwardDeadline)
	defer cancel()
	return n.peers.Send(ctx, n.place.NodeOf(next), op, reencode(next))
}

func (n *Node) handlePut(ctx context.Context, payload []byte) ([]byte, error) {
	m, err := decodePutReq(payload)
	if err != nil {
		return nil, err
	}
	return n.withOwnedBucket(ctx, m.file, m.addr, m.hops, m.key, opPut, func(next uint64) []byte {
		fwd := m
		fwd.addr = next
		fwd.hops++
		return fwd.encode()
	}, func(f *nodeFile, b *lhstar.Bucket) ([]byte, error) {
		if err := f.migBlocked(m.file, b.Addr()); err != nil {
			return nil, err
		}
		// Journal with the resolved local address so replay applies
		// directly, without re-running the forwarding computation. The
		// store-nil check lives out here so ephemeral nodes skip the
		// journal encode entirely, not just the append.
		if n.store != nil {
			logged := m
			logged.addr = b.Addr()
			logged.hops = 0
			if err := n.journalLocked(opPut, logged.encode()); err != nil {
				return nil, err
			}
		}
		isNew := b.Put(m.key, m.value)
		f.indexPut(m.key, m.value)
		resp := putResp{
			isNew:     isNew,
			iamAddr:   b.Addr(),
			iamLevel:  uint8(b.Level()),
			bucketLen: uint32(b.Len()),
		}.encode()
		return resp, n.maybeCheckpointLocked()
	})
}

// handlePutBatch applies a coalesced batch of independently addressed
// puts in one message: entries owned by a local bucket are applied
// under a single lock acquisition; entries whose bucket has split away
// are forwarded individually as plain puts (the forward carries the
// server-computed address, so the LH* hop bound still holds). The
// response carries one putResp per entry in request order, so the
// client receives every IAM it would have gotten from sequential puts.
func (n *Node) handlePutBatch(ctx context.Context, payload []byte) ([]byte, error) {
	it, err := newBatchReqIter(payload)
	if err != nil {
		return nil, err
	}
	f := n.getFile(it.file)
	resps := make([]batchPutResp, it.n)
	type fwd struct {
		i    int
		addr uint64
		// e.value stays borrowed from the request buffer: forwards run
		// before this handler returns, while the buffer is still live.
		e batchEntry
	}
	var fwds []fwd
	// Bucket and index storage retain values past this handler, so each
	// locally applied value is copied out of the borrowed request buffer
	// into one packed backing. valsCap bounds the total, so the backing
	// never reallocates and the carved aliases stay valid.
	var vals []byte
	valsCap := it.valsCap()
	// Locally applied entries accumulate here and hit the index as ONE
	// batch: the indexer sorts and appends per piece once for the whole
	// message instead of paying per-entry posting maintenance.
	var applied []kv
	n.mu.Lock()
	for i := 0; i < it.n; i++ {
		e, perr := it.next()
		if perr != nil {
			n.mu.Unlock()
			return nil, perr
		}
		b, ok := f.buckets[e.addr]
		if !ok {
			n.mu.Unlock()
			return nil, fmt.Errorf("sdds: node %d has no bucket %d of file %d", n.id, e.addr, it.file)
		}
		next, needFwd := lhstar.ServerAddress(b.Addr(), b.Level(), e.key)
		if needFwd {
			fwds = append(fwds, fwd{i: i, addr: next, e: e})
			continue
		}
		if err := f.migBlocked(it.file, b.Addr()); err != nil {
			n.mu.Unlock()
			return nil, err
		}
		// Each locally applied entry journals as an individual put at
		// its resolved address; forwarded entries are journaled by the
		// node that ends up applying them. Ephemeral nodes skip the
		// journal encode entirely.
		if n.store != nil {
			logged := putReq{file: it.file, addr: b.Addr(), key: e.key, value: e.value}
			if err := n.journalLocked(opPut, logged.encode()); err != nil {
				n.mu.Unlock()
				return nil, err
			}
		}
		if vals == nil {
			vals = make([]byte, 0, valsCap)
		}
		start := len(vals)
		vals = append(vals, e.value...)
		v := vals[start:len(vals):len(vals)]
		isNew := b.Put(e.key, v)
		applied = append(applied, kv{key: e.key, value: v})
		// moved stays false: the bucket was found at the client's address.
		resps[i] = batchPutResp{
			isNew:     isNew,
			iamAddr:   b.Addr(),
			iamLevel:  uint8(b.Level()),
			bucketLen: uint32(b.Len()),
		}
	}
	f.indexPutBatch(applied)
	if err := n.maybeCheckpointLocked(); err != nil {
		n.mu.Unlock()
		return nil, err
	}
	n.mu.Unlock()
	if err := it.r.done(); err != nil {
		return nil, err
	}
	if len(fwds) > 0 && n.peers == nil {
		return nil, fmt.Errorf("sdds: forward needed but node %d has no peer transport", n.id)
	}
	for _, fw := range fwds {
		n.met.forwards.Inc()
		req := putReq{file: it.file, addr: fw.addr, hops: 1, key: fw.e.key, value: fw.e.value}
		fctx, cancel := context.WithTimeout(ctx, forwardDeadline)
		raw, err := n.peers.Send(fctx, n.place.NodeOf(fw.addr), opPut, req.encode())
		cancel()
		if err != nil {
			return nil, err
		}
		pr, err := decodePutResp(raw)
		if err != nil {
			return nil, err
		}
		resps[fw.i] = batchPutResp{
			isNew:     pr.isNew,
			moved:     pr.iamAddr != fw.e.addr,
			iamAddr:   pr.iamAddr,
			iamLevel:  pr.iamLevel,
			bucketLen: pr.bucketLen,
		}
	}
	return putBatchResp{resps: resps}.encode(), nil
}

func (n *Node) handleGet(ctx context.Context, payload []byte) ([]byte, error) {
	m, err := decodeKeyReq(payload)
	if err != nil {
		return nil, err
	}
	return n.withOwnedBucket(ctx, m.file, m.addr, m.hops, m.key, opGet, func(next uint64) []byte {
		fwd := m
		fwd.addr = next
		fwd.hops++
		return fwd.encode()
	}, func(_ *nodeFile, b *lhstar.Bucket) ([]byte, error) {
		v, ok := b.Get(m.key)
		return valueResp{
			found:    ok,
			iamAddr:  b.Addr(),
			iamLevel: uint8(b.Level()),
			value:    v,
		}.encode(), nil
	})
}

func (n *Node) handleDelete(ctx context.Context, payload []byte) ([]byte, error) {
	m, err := decodeKeyReq(payload)
	if err != nil {
		return nil, err
	}
	return n.withOwnedBucket(ctx, m.file, m.addr, m.hops, m.key, opDelete, func(next uint64) []byte {
		fwd := m
		fwd.addr = next
		fwd.hops++
		return fwd.encode()
	}, func(f *nodeFile, b *lhstar.Bucket) ([]byte, error) {
		if err := f.migBlocked(m.file, b.Addr()); err != nil {
			return nil, err
		}
		if n.store != nil {
			logged := m
			logged.addr = b.Addr()
			logged.hops = 0
			if err := n.journalLocked(opDelete, logged.encode()); err != nil {
				return nil, err
			}
		}
		ok := b.Delete(m.key)
		if ok {
			f.indexDelete(m.key)
		}
		resp := valueResp{
			found:    ok,
			iamAddr:  b.Addr(),
			iamLevel: uint8(b.Level()),
		}.encode()
		return resp, n.maybeCheckpointLocked()
	})
}

// handleSearch answers the site-side half of the paper's parallel
// search — executed entirely on opaque ciphertext. With the posting
// index enabled it probes the index by each pattern's anchor piece
// (its first piece) and verifies only the candidate positions; without
// it, it falls back to the reference linear scan over every bucket →
// entry → series. Both paths report the identical raw hit set.
func (n *Node) handleSearch(payload []byte) ([]byte, error) {
	m, err := decodeSearchReq(payload)
	if err != nil {
		return nil, err
	}
	f := n.getFile(m.file)
	var resp searchResp
	n.mu.RLock()
	defer n.mu.RUnlock()
	n.met.searches.Inc()
	if f.idx != nil {
		n.met.postingSearches.Inc()
		n.searchPosting(f.idx, &m, &resp)
	} else {
		n.met.linearSearches.Inc()
		n.searchLinear(f, &m, &resp)
	}
	n.met.searchHits.Add(uint64(len(resp.hits)))
	return resp.encode(), nil
}

// searchPosting probes the posting index: for each (series, site)
// pattern, the entries whose streams contain the anchor piece are the
// only candidates, and each candidate offset is verified against the
// full pattern. Cost scales with candidate count, not file size. The
// probe walks the piece's packed posting array in one contiguous pass,
// skipping tombstones; a key's postings sit adjacent in the array
// (batch inserts sort, single inserts append together), so the key
// decomposition and entry lookup are memoized across the run of equal
// keys. Callers must hold the node lock (shared suffices).
func (n *Node) searchPosting(idx postingIndex, m *searchReq, resp *searchResp) {
	for _, s := range m.series {
		for k, pat := range s.patterns {
			if len(pat) == 0 {
				continue
			}
			var (
				lastKey uint64
				haveKey bool
				skipKey bool
				e       postEntry
				rid     uint64
				j, ek   int
			)
			for _, pt := range idx.postings(pat[0]) {
				if pt.off == tombstoneOff {
					continue
				}
				if !haveKey || pt.key != lastKey {
					lastKey, haveKey = pt.key, true
					rid, j, ek = DecomposeIndexKey(pt.key, int(m.kSites), uint(m.slotBits))
					skipKey = ek != k
					if !skipKey {
						e, _ = idx.entry(pt.key)
					}
				}
				if skipKey {
					continue
				}
				n.met.postingCandidates.Inc()
				if !core.MatchAt(e.pieces, pat, int(pt.off)) {
					continue
				}
				n.met.postingVerified.Inc()
				resp.hits = append(resp.hits, rawHit{
					rid:         rid,
					j:           uint8(j),
					k:           uint8(ek),
					a:           s.a,
					firstIndex:  e.firstIndex,
					pieceOffset: pt.off,
				})
			}
		}
	}
}

// searchLinear is the reference full scan: every bucket → entry →
// series → MatchOffsets. Callers must hold the node lock (shared
// suffices).
func (n *Node) searchLinear(f *nodeFile, m *searchReq, resp *searchResp) {
	var scratch []disperse.Piece
	for _, b := range f.buckets {
		scratch = searchBucket(b, m, resp, scratch)
	}
}

// searchBucket runs the reference scan over one bucket's entries. It is
// shared by the node's linear fallback and by degraded-mode search over
// guardian images. scratch is a reusable piece-decode arena (pass nil
// on first use); the grown arena is returned so one allocation is
// amortized over every entry of a scan instead of paid per entry.
func searchBucket(b *lhstar.Bucket, m *searchReq, resp *searchResp, scratch []disperse.Piece) []disperse.Piece {
	b.Scan(func(key uint64, value []byte) bool {
		iv, grown, err := decodeIndexValueInto(value, scratch[:0])
		if err != nil {
			return true // skip foreign entries
		}
		scratch = grown[:0]
		rid, j, k := DecomposeIndexKey(key, int(m.kSites), uint(m.slotBits))
		for _, s := range m.series {
			if k >= len(s.patterns) {
				continue
			}
			for _, off := range core.MatchOffsets(iv.pieces, s.patterns[k]) {
				resp.hits = append(resp.hits, rawHit{
					rid:         rid,
					j:           uint8(j),
					k:           uint8(k),
					a:           s.a,
					firstIndex:  iv.firstIndex,
					pieceOffset: uint32(off),
				})
			}
		}
		return true
	})
	return scratch
}

// searchNodeImage answers a search request from a serialized node image
// — the degraded-mode path: while a node is down, its last-synced
// guardian image stands in for it, so the dead node's index buckets
// still contribute their hits. The scan is the same reference walk the
// node's linear fallback uses, guaranteeing identical raw hit sets.
func searchNodeImage(raw []byte, m *searchReq) (searchResp, error) {
	var resp searchResp
	img, err := decodeNodeImage(raw)
	if err != nil {
		return resp, fmt.Errorf("sdds: degraded search: decoding image: %w", err)
	}
	var scratch []disperse.Piece
	for _, fi := range img.files {
		if fi.file != m.file {
			continue
		}
		for _, snap := range fi.buckets {
			b, err := lhstar.RestoreBucket(snap)
			if err != nil {
				return resp, fmt.Errorf("sdds: degraded search: restoring bucket: %w", err)
			}
			scratch = searchBucket(b, m, &resp, scratch)
		}
	}
	return resp, nil
}

func (n *Node) handleBucketCreate(payload []byte) ([]byte, error) {
	m, err := decodeBucketCreateReq(payload)
	if err != nil {
		return nil, err
	}
	f := n.getFile(m.file)
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := f.buckets[m.addr]; exists {
		return nil, fmt.Errorf("sdds: bucket %d already exists on node %d", m.addr, n.id)
	}
	if err := n.journalLocked(opBucketCreate, payload); err != nil {
		return nil, err
	}
	f.buckets[m.addr] = lhstar.NewBucket(m.addr, uint(m.level))
	return nil, n.maybeCheckpointLocked()
}

func (n *Node) handleSplitExtract(payload []byte) ([]byte, error) {
	m, err := decodeSplitExtractReq(payload)
	if err != nil {
		return nil, err
	}
	f := n.getFile(m.file)
	b, err := n.bucket(m.file, m.addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := f.migBlocked(m.file, m.addr); err != nil {
		return nil, err
	}
	// Journaled before the split: SplitInto is deterministic in the
	// bucket's state, so replay extracts (and drops) the same records
	// the live run handed to the absorbing node.
	if err := n.journalLocked(opSplitExtract, payload); err != nil {
		return nil, err
	}
	dst := lhstar.NewBucket(b.Addr()+1<<b.Level(), b.Level()+1)
	if _, err := b.SplitInto(dst); err != nil {
		return nil, err
	}
	var batch recordBatch
	dst.Scan(func(key uint64, value []byte) bool {
		batch.records = append(batch.records, kv{key: key, value: value})
		f.indexDelete(key) // record leaves this node's buckets
		return true
	})
	return batch.encode(), n.maybeCheckpointLocked()
}

func (n *Node) handleSplitAbsorb(payload []byte) ([]byte, error) {
	m, err := decodeSplitAbsorbReq(payload)
	if err != nil {
		return nil, err
	}
	f := n.getFile(m.file)
	b, err := n.bucket(m.file, m.addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := f.migBlocked(m.file, m.addr); err != nil {
		return nil, err
	}
	if err := n.journalLocked(opSplitAbsorb, payload); err != nil {
		return nil, err
	}
	for _, r := range m.batch.records {
		b.Put(r.key, r.value)
	}
	f.indexPutBatch(m.batch.records)
	return nil, n.maybeCheckpointLocked()
}

// handleWordSearch scans every local bucket of the word file: each
// entry is (rid → sorted token blob); the node reports the RIDs whose
// blob contains the query token. Pure equality on opaque tokens — no
// key material involved.
func (n *Node) handleWordSearch(payload []byte) ([]byte, error) {
	m, err := decodeWordSearchReq(payload)
	if err != nil {
		return nil, err
	}
	if len(m.token) != wordindex.TokenSize {
		return nil, fmt.Errorf("sdds: word token length %d, want %d", len(m.token), wordindex.TokenSize)
	}
	var token wordindex.Token
	copy(token[:], m.token)
	f := n.getFile(m.file)
	var resp wordSearchResp
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, b := range f.buckets {
		b.Scan(func(key uint64, value []byte) bool {
			ok, err := wordindex.BlobContains(value, token)
			if err == nil && ok {
				resp.rids = append(resp.rids, key)
			}
			return true
		})
	}
	return resp.encode(), nil
}

// handleMergeClose removes a bucket and returns all of its records for
// absorption by its merge partner.
func (n *Node) handleMergeClose(payload []byte) ([]byte, error) {
	m, err := decodeMergeCloseReq(payload)
	if err != nil {
		return nil, err
	}
	f := n.getFile(m.file)
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := f.buckets[m.addr]
	if !ok {
		return nil, fmt.Errorf("sdds: node %d has no bucket %d of file %d", n.id, m.addr, m.file)
	}
	if err := f.migBlocked(m.file, m.addr); err != nil {
		return nil, err
	}
	if err := n.journalLocked(opMergeClose, payload); err != nil {
		return nil, err
	}
	var batch recordBatch
	b.Scan(func(key uint64, value []byte) bool {
		batch.records = append(batch.records, kv{key: key, value: value})
		f.indexDelete(key) // bucket is being closed
		return true
	})
	delete(f.buckets, m.addr)
	return batch.encode(), n.maybeCheckpointLocked()
}

// handleMergeAbsorb adds the closed bucket's records to the partner and
// lowers the partner's level by one (undoing the split).
func (n *Node) handleMergeAbsorb(payload []byte) ([]byte, error) {
	m, err := decodeMergeAbsorbReq(payload)
	if err != nil {
		return nil, err
	}
	f := n.getFile(m.file)
	b, err := n.bucket(m.file, m.addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if b.Level() == 0 {
		return nil, fmt.Errorf("sdds: cannot lower level of bucket %d below 0", m.addr)
	}
	if err := f.migBlocked(m.file, m.addr); err != nil {
		return nil, err
	}
	if err := n.journalLocked(opMergeAbsorb, payload); err != nil {
		return nil, err
	}
	src := lhstar.NewBucket(b.Addr()+1<<(b.Level()-1), b.Level())
	for _, r := range m.batch.records {
		src.Put(r.key, r.value)
	}
	if err := b.MergeFrom(src); err != nil {
		return nil, err
	}
	f.indexPutBatch(m.batch.records)
	return nil, n.maybeCheckpointLocked()
}

// handleNodeSnapshot serializes this node's entire bucket inventory
// (all files) into a deterministic image — the data shard the LH*RS
// parity layer protects. Nodes hold no key material, so the image is as
// opaque as the buckets themselves.
func (n *Node) handleNodeSnapshot(payload []byte) ([]byte, error) {
	if len(payload) != 0 {
		return nil, errors.New("sdds: node snapshot takes no payload")
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.snapshotLocked(), nil
}

// snapshotLocked serializes the node's entire bucket inventory into the
// deterministic image shared by parity sync and WAL checkpoints.
// Callers must hold the node lock (shared suffices).
func (n *Node) snapshotLocked() []byte {
	fileIDs := make([]FileID, 0, len(n.files))
	for id := range n.files {
		fileIDs = append(fileIDs, id)
	}
	sort.Slice(fileIDs, func(i, j int) bool { return fileIDs[i] < fileIDs[j] })
	var img nodeImage
	for _, id := range fileIDs {
		f := n.files[id]
		addrs := make([]uint64, 0, len(f.buckets))
		for a := range f.buckets {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		fi := fileImage{file: id}
		for _, a := range addrs {
			fi.buckets = append(fi.buckets, f.buckets[a].Snapshot())
		}
		img.files = append(img.files, fi)
	}
	img.migs = n.migImageLocked()
	return img.encode()
}

// handleNodeRestore replaces this node's entire bucket inventory with a
// reconstructed image — what a spare site runs when taking over a
// failed node's identity after LH*RS recovery.
func (n *Node) handleNodeRestore(payload []byte) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	files, migs, err := n.buildFilesLocked(payload)
	if err != nil {
		return nil, err
	}
	// Checkpoint the incoming image BEFORE swapping it in: a restore
	// replaces everything the journal describes, so the durable state
	// must jump with it — a crash between the two leaves the old
	// (journal-consistent) state, never a mix.
	if n.store != nil {
		if err := n.store.Checkpoint(payload); err != nil {
			return nil, fmt.Errorf("sdds: node %d: checkpointing restored image: %w", n.id, err)
		}
		// A successful restore supersedes whatever recovery verdict the
		// store carried: the durable state is valid again.
		n.storeOutcome = wal.OutcomeRecovered
		n.storeDetail = ""
	}
	n.files = files
	n.adoptMigImageLocked(migs)
	return nil, nil
}

// restoreImageLocked replaces the node's state with a checkpoint image —
// the restore callback of Store.Recover. Callers must hold the write
// lock.
func (n *Node) restoreImageLocked(payload []byte) error {
	files, migs, err := n.buildFilesLocked(payload)
	if err != nil {
		return err
	}
	n.files = files
	n.adoptMigImageLocked(migs)
	return nil
}

// buildFilesLocked decodes a node image into a fresh bucket inventory
// (posting indexes rebuilt) without touching the node's current state.
// The migration ledger rides in the image's trailing section; callers
// adopt it after swapping the files in. Callers must hold the write
// lock.
func (n *Node) buildFilesLocked(payload []byte) (map[FileID]*nodeFile, migrationImage, error) {
	img, err := decodeNodeImage(payload)
	if err != nil {
		return nil, migrationImage{}, err
	}
	files := make(map[FileID]*nodeFile, len(img.files))
	for _, fi := range img.files {
		nf := n.newFileLocked(fi.file)
		for _, snap := range fi.buckets {
			b, err := lhstar.RestoreBucket(snap)
			if err != nil {
				return nil, migrationImage{}, fmt.Errorf("sdds: restoring file %d: %w", fi.file, err)
			}
			nf.buckets[b.Addr()] = b
		}
		nf.rebuildIndex()
		files[fi.file] = nf
	}
	return files, img.migs, nil
}

// handleRecoveryState reports how this node's local state came to be —
// the signal the Supervisor uses to decide between trusting a local
// replay and falling back to parity reconstruction.
func (n *Node) handleRecoveryState(payload []byte) ([]byte, error) {
	if len(payload) != 0 {
		return nil, errors.New("sdds: recovery state takes no payload")
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	resp := recoveryStateResp{mode: recoveryEphemeral}
	if n.store != nil {
		resp.seq = n.store.Seq()
		switch n.storeOutcome {
		case wal.OutcomeFresh:
			resp.mode = recoveryFresh
		case wal.OutcomeRecovered:
			resp.mode = recoveryRecovered
		case wal.OutcomeCorrupt:
			resp.mode = recoveryCorrupt
			resp.detail = n.storeDetail
		}
	}
	return resp.encode(), nil
}

func (n *Node) handleStats(payload []byte) ([]byte, error) {
	if len(payload) != 1 {
		return nil, errShortPayload
	}
	f := n.getFile(FileID(payload[0]))
	var resp statsResp
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, b := range f.buckets {
		resp.buckets = append(resp.buckets, bucketStat{
			addr:  b.Addr(),
			level: uint8(b.Level()),
			size:  uint32(b.Len()),
		})
	}
	return resp.encode(), nil
}
