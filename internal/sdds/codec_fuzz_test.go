package sdds

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/disperse"
)

// Fuzz targets: every decoder must be total — arbitrary bytes either
// decode or error, never panic — and every encoder must round-trip
// through its decoder bit-exactly.

func FuzzDecodePutReq(f *testing.F) {
	f.Add([]byte{})
	f.Add(putReq{file: FileIndex, addr: 5, hops: 1, key: 99, value: []byte("v")}.encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodePutReq(b)
		if err != nil {
			return
		}
		if got := m.encode(); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch: %x -> %x", b, got)
		}
	})
}

func FuzzDecodeKeyReq(f *testing.F) {
	f.Add([]byte{})
	f.Add(keyReq{file: FileRecords, addr: 3, key: 7}.encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeKeyReq(b)
		if err != nil {
			return
		}
		if got := m.encode(); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch: %x -> %x", b, got)
		}
	})
}

func FuzzDecodeValueResp(f *testing.F) {
	f.Add([]byte{})
	f.Add(valueResp{found: true, iamAddr: 2, iamLevel: 1, value: []byte("abc")}.encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeValueResp(b)
		if err != nil {
			return
		}
		if got := m.encode(); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch: %x -> %x", b, got)
		}
	})
}

func FuzzDecodeSearchReq(f *testing.F) {
	f.Add([]byte{})
	f.Add(searchReq{
		file: FileIndex, kSites: 2, slotBits: 2,
		series: []searchSeries{{a: 1, patterns: [][]disperse.Piece{{1, 2}, {3}}}},
	}.encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		if _, err := decodeSearchReq(b); err != nil {
			return
		}
		// A valid decode of fuzzer bytes need not re-encode bit-exactly
		// (nil vs empty slices), but must decode again identically.
		m, _ := decodeSearchReq(b)
		m2, err := decodeSearchReq(m.encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(m2.series) != len(m.series) {
			t.Fatalf("series count changed: %d -> %d", len(m.series), len(m2.series))
		}
	})
}

func FuzzDecodeSearchResp(f *testing.F) {
	f.Add([]byte{})
	f.Add(searchResp{hits: []rawHit{{rid: 1, j: 0, k: 1, a: 2, firstIndex: 0, pieceOffset: 3}}}.encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeSearchResp(b)
		if err != nil {
			return
		}
		if got := m.encode(); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch: %x -> %x", b, got)
		}
	})
}

func FuzzDecodeRecordBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(recordBatch{records: []kv{{key: 1, value: []byte("a")}, {key: 2, value: nil}}}.encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeRecordBatch(b)
		if err != nil {
			return
		}
		if got := m.encode(); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch: %x -> %x", b, got)
		}
	})
}

func FuzzDecodeNodeImage(f *testing.F) {
	f.Add([]byte{})
	f.Add(nodeImage{files: []fileImage{{file: FileRecords, buckets: [][]byte{{1, 2, 3}}}}}.encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		if _, err := decodeNodeImage(b); err != nil {
			return
		}
	})
}

func FuzzDecodeIndexValue(f *testing.F) {
	f.Add([]byte{})
	f.Add(indexValue{firstIndex: 2, pieces: []disperse.Piece{9, 8, 7}}.encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeIndexValue(b)
		if err != nil {
			return
		}
		if got := m.encode(); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch: %x -> %x", b, got)
		}
	})
}

// Property tests: randomized structured round-trips (the other
// direction from the fuzzers, which start at bytes).

func randBytes(rng *rand.Rand, maxLen int) []byte {
	b := make([]byte, rng.Intn(maxLen))
	rng.Read(b)
	return b
}

func TestCodecRoundTripProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20060410))
	for i := 0; i < 500; i++ {
		pr := putReq{
			file:  FileID(rng.Intn(3)),
			addr:  rng.Uint64(),
			hops:  uint8(rng.Intn(4)),
			key:   rng.Uint64(),
			value: randBytes(rng, 64),
		}
		got, err := decodePutReq(pr.encode())
		if err != nil {
			t.Fatalf("putReq: %v", err)
		}
		if got.file != pr.file || got.addr != pr.addr || got.hops != pr.hops ||
			got.key != pr.key || !bytes.Equal(got.value, pr.value) {
			t.Fatalf("putReq round trip: %+v -> %+v", pr, got)
		}

		batch := recordBatch{}
		for j := rng.Intn(8); j > 0; j-- {
			batch.records = append(batch.records, kv{key: rng.Uint64(), value: randBytes(rng, 32)})
		}
		gb, err := decodeRecordBatch(batch.encode())
		if err != nil {
			t.Fatalf("recordBatch: %v", err)
		}
		if len(gb.records) != len(batch.records) {
			t.Fatalf("recordBatch count: %d -> %d", len(batch.records), len(gb.records))
		}
		for j := range gb.records {
			if gb.records[j].key != batch.records[j].key ||
				!bytes.Equal(gb.records[j].value, batch.records[j].value) {
				t.Fatalf("recordBatch record %d mismatch", j)
			}
		}

		img := nodeImage{}
		for fi := rng.Intn(3); fi > 0; fi-- {
			f := fileImage{file: FileID(rng.Intn(3))}
			for bi := rng.Intn(4); bi > 0; bi-- {
				f.buckets = append(f.buckets, randBytes(rng, 48))
			}
			img.files = append(img.files, f)
		}
		enc := img.encode()
		// Zero padding (parity-shard equalization) must be tolerated.
		enc = append(enc, make([]byte, rng.Intn(7))...)
		gi, err := decodeNodeImage(enc)
		if err != nil {
			t.Fatalf("nodeImage: %v", err)
		}
		if len(gi.files) != len(img.files) {
			t.Fatalf("nodeImage files: %d -> %d", len(img.files), len(gi.files))
		}
		for j := range gi.files {
			if gi.files[j].file != img.files[j].file || len(gi.files[j].buckets) != len(img.files[j].buckets) {
				t.Fatalf("nodeImage file %d mismatch", j)
			}
			for b := range gi.files[j].buckets {
				if !bytes.Equal(gi.files[j].buckets[b], img.files[j].buckets[b]) {
					t.Fatalf("nodeImage bucket bytes mismatch")
				}
			}
		}
	}
}

func TestDecodeNodeImageRejectsNonZeroTrailer(t *testing.T) {
	img := nodeImage{files: []fileImage{{file: FileRecords, buckets: [][]byte{{1}}}}}
	enc := append(img.encode(), 0, 0, 5)
	if _, err := decodeNodeImage(enc); err == nil {
		t.Fatal("non-zero trailer accepted")
	}
}
