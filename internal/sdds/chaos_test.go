package sdds

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// chaosCluster wires n in-memory nodes behind a Faulty + Retry stack.
// Both client operations and server-to-server forwarding traverse the
// full middleware, exactly as esdds.NewMemoryCluster wires it.
func chaosCluster(t *testing.T, n int, seed int64, policy transport.RetryPolicy) (*Cluster, *transport.Faulty, *transport.Retry, *transport.Memory) {
	t.Helper()
	mem := transport.NewMemory()
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := NewPlacement(ids)
	if err != nil {
		t.Fatal(err)
	}
	faulty := transport.NewFaulty(mem, seed)
	retry := transport.NewRetry(faulty, policy, seed)
	for _, id := range ids {
		node := NewNode(id, retry, place)
		mem.Register(id, node.Handler())
	}
	return NewCluster(retry, place), faulty, retry, mem
}

func chaosPolicy() transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    2 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// TestChaosPutGetDeleteUnderDropsAndDelays drives the full key-value
// workload through a lossy, slow network: with retries enabled, no
// client-visible error may surface, and the data must be intact.
func TestChaosPutGetDeleteUnderDropsAndDelays(t *testing.T) {
	c, faulty, retry, _ := chaosCluster(t, 4, 20060410, chaosPolicy())
	c.SetMaxLoad(FileRecords, 8) // force splits mid-chaos
	faulty.SetDefault(transport.Fault{
		Drop:      0.15,
		Fail:      0.05,
		DelayProb: 0.1,
		Delay:     100 * time.Microsecond,
	})
	ctx := context.Background()
	const N = 300
	for k := uint64(0); k < N; k++ {
		if err := c.Put(ctx, FileRecords, k, []byte{byte(k), byte(k >> 8)}); err != nil {
			t.Fatalf("Put(%d) not masked: %v", k, err)
		}
	}
	if c.Size(FileRecords) != N {
		t.Errorf("Size = %d, want %d", c.Size(FileRecords), N)
	}
	if c.State(FileRecords).Buckets() < 8 {
		t.Errorf("no splits under chaos: %d buckets", c.State(FileRecords).Buckets())
	}
	for k := uint64(0); k < N; k++ {
		v, ok, err := c.Get(ctx, FileRecords, k)
		if err != nil {
			t.Fatalf("Get(%d) not masked: %v", k, err)
		}
		if !ok || v[0] != byte(k) || v[1] != byte(k>>8) {
			t.Fatalf("Get(%d) = %v %v — record corrupted or lost", k, v, ok)
		}
	}
	for k := uint64(0); k < N/2; k++ {
		ok, err := c.Delete(ctx, FileRecords, k)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v %v", k, ok, err)
		}
	}
	if c.Size(FileRecords) != N/2 {
		t.Errorf("Size after deletes = %d, want %d", c.Size(FileRecords), N/2)
	}
	// The chaos actually happened: drops were injected and retried.
	var dropped, retries uint64
	for _, st := range faulty.Stats() {
		dropped += st.Dropped
	}
	for _, st := range retry.Stats() {
		retries += st.Retries
	}
	if dropped == 0 || retries == 0 {
		t.Errorf("chaos did not engage: dropped=%d retries=%d", dropped, retries)
	}
}

// TestChaosDeterministicReplay runs the identical seeded workload twice
// and requires identical fault statistics — the reproducibility
// guarantee that makes chaos failures debuggable.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() []transport.FaultStats {
		c, faulty, _, _ := chaosCluster(t, 4, 777, chaosPolicy())
		faulty.SetDefault(transport.Fault{Drop: 0.2, Fail: 0.1})
		ctx := context.Background()
		for k := uint64(0); k < 200; k++ {
			if err := c.Put(ctx, FileRecords, k, []byte{byte(k)}); err != nil {
				t.Fatalf("Put(%d): %v", k, err)
			}
			if _, _, err := c.Get(ctx, FileRecords, k); err != nil {
				t.Fatalf("Get(%d): %v", k, err)
			}
		}
		return faulty.Stats()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("stats length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("node %d stats diverged: %+v vs %+v", a[i].Node, a[i], b[i])
		}
	}
}

// TestSearchPartialNamesExactlyTheDeadNodes blacks out a subset of
// nodes and requires SearchPartial to report precisely that subset —
// no more (healthy nodes misreported) and no less (failures swallowed).
func TestSearchPartialNamesExactlyTheDeadNodes(t *testing.T) {
	p := chaosPolicy()
	p.MaxAttempts = 3 // keep exhaustion against dead nodes quick
	c, faulty, _, _ := chaosCluster(t, 5, 4242, p)
	pl := testPipeline(t, 4, 2, 2)
	ctx := context.Background()

	rng := newChaosCorpus()
	for rid := uint64(1); rid <= 40; rid++ {
		recs, err := pl.BuildIndex(rid, rng.record(rid))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), SlotBits(pl.Chunkings(), pl.K())); err != nil {
			t.Fatal(err)
		}
	}
	query, err := pl.BuildQuery([]byte("GRIDLOCK"), false)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy cluster: no failures reported.
	_, failed, err := c.SearchPartial(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil || len(failed) != 0 {
		t.Fatalf("healthy SearchPartial: failed=%v err=%v", failed, err)
	}

	dead := []transport.NodeID{1, 3}
	faulty.Blackout(dead...)
	_, failed, err = c.SearchPartial(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != len(dead) || failed[0] != dead[0] || failed[1] != dead[1] {
		t.Fatalf("failed = %v, want exactly %v", failed, dead)
	}

	// Full Search refuses to return a silent under-approximation.
	if _, err := c.Search(ctx, FileIndex, pl, query, core.VerifyAny); err == nil {
		t.Error("Search succeeded with dead nodes")
	}

	faulty.Restore(dead...)
	_, failed, err = c.SearchPartial(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil || len(failed) != 0 {
		t.Fatalf("restored SearchPartial: failed=%v err=%v", failed, err)
	}
}

// TestRetryExhaustionSurfacesUnderlyingError kills one node's traffic
// completely and requires the SDDS operation to fail with the true
// transport cause still identifiable through the wrap chain.
func TestRetryExhaustionSurfacesUnderlyingError(t *testing.T) {
	p := chaosPolicy()
	p.MaxAttempts = 3
	c, faulty, _, _ := chaosCluster(t, 2, 5, p)
	faulty.SetFault(0, transport.Fault{Drop: 1})
	faulty.SetFault(1, transport.Fault{Drop: 1})
	ctx := context.Background()
	err := c.Put(ctx, FileRecords, 1, []byte("x"))
	if err == nil {
		t.Fatal("Put succeeded through a fully lossy network")
	}
	if !errors.Is(err, transport.ErrInjectedDrop) {
		t.Errorf("underlying drop lost: %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("exhaustion masqueraded as timeout: %v", err)
	}
}

// chaosCorpus generates deterministic record contents with a marker
// substring present in a known subset.
type chaosCorpus struct{}

func newChaosCorpus() *chaosCorpus { return &chaosCorpus{} }

func (cc *chaosCorpus) record(rid uint64) []byte {
	if rid%4 == 0 {
		return []byte(fmt.Sprintf("RECORD %04d HAS GRIDLOCK INSIDE", rid))
	}
	return []byte(fmt.Sprintf("RECORD %04d IS PERFECTLY ORDINARY", rid))
}

// TestSearchPartialUnderDupAndDelayFaults: duplicate deliveries and
// reordering delays must never change a search's answer — per-site hits
// are deduplicated by the K-site agreement combine, so repeated runs
// over a dup/delay-faulty network return the same dup-free, sorted RID
// set as a clean run.
func TestSearchPartialUnderDupAndDelayFaults(t *testing.T) {
	c, faulty, _, _ := chaosCluster(t, 4, 777, chaosPolicy())
	pl := testPipeline(t, 4, 2, 2)
	ctx := context.Background()

	rng := newChaosCorpus()
	for rid := uint64(1); rid <= 40; rid++ {
		recs, err := pl.BuildIndex(rid, rng.record(rid))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), SlotBits(pl.Chunkings(), pl.K())); err != nil {
			t.Fatal(err)
		}
	}
	query, err := pl.BuildQuery([]byte("GRIDLOCK"), false)
	if err != nil {
		t.Fatal(err)
	}
	baseline, failed, err := c.SearchPartial(ctx, FileIndex, pl, query, core.VerifyAny)
	if err != nil || len(failed) != 0 {
		t.Fatalf("clean SearchPartial: failed=%v err=%v", failed, err)
	}
	if len(baseline) == 0 {
		t.Fatal("baseline found no hits")
	}
	for i := 1; i < len(baseline); i++ {
		if baseline[i] <= baseline[i-1] {
			t.Fatalf("baseline not sorted/deduplicated: %v", baseline)
		}
	}

	faulty.SetDefault(transport.Fault{
		Dup:       0.5,
		DelayProb: 0.3,
		Delay:     200 * time.Microsecond,
	})
	for run := 0; run < 5; run++ {
		rids, failed, err := c.SearchPartial(ctx, FileIndex, pl, query, core.VerifyAny)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(failed) != 0 {
			t.Fatalf("run %d: dup/delay faults reported failures: %v", run, failed)
		}
		if len(rids) != len(baseline) {
			t.Fatalf("run %d: %v, want baseline %v", run, rids, baseline)
		}
		for i := range rids {
			if rids[i] != baseline[i] {
				t.Fatalf("run %d diverged: %v, want %v", run, rids, baseline)
			}
		}
	}
	// The faults actually fired.
	var dup, delayed uint64
	for _, fs := range faulty.Stats() {
		dup += fs.Duplicated
		delayed += fs.Delayed
	}
	if dup == 0 || delayed == 0 {
		t.Fatalf("fault schedule inert: dup=%d delayed=%d", dup, delayed)
	}
}
