package sdds

import (
	"strings"
	"time"

	"repro/internal/obs"
)

// This file wires the SDDS layer into the obs registry: node-side
// per-opcode latency and search-path counters, client-side operation
// counters plus per-search traces, supervisor repair-phase counters,
// and guardian sync/recover timings. Instrument methods must run
// before the component carries traffic; all instruments are nil-safe
// no-ops until then.

// opNames labels the per-opcode latency histograms.
var opNames = [...]string{
	opPut:           "put",
	opGet:           "get",
	opDelete:        "delete",
	opSearch:        "search",
	opBucketCreate:  "bucket_create",
	opSplitExtract:  "split_extract",
	opSplitAbsorb:   "split_absorb",
	opStats:         "stats",
	opMergeClose:    "merge_close",
	opMergeAbsorb:   "merge_absorb",
	opWordSearch:    "word_search",
	opNodeSnapshot:  "node_snapshot",
	opNodeRestore:   "node_restore",
	opPutBatch:       "put_batch",
	opPing:           "ping",
	opRecoveryState:  "recovery_state",
	opMigratePrepare: "migrate_prepare",
	opMigrateAbsorb:  "migrate_absorb",
	opMigrateCommit:  "migrate_commit",
	opMigrateAbort:   "migrate_abort",
}

// OpName returns the protocol name of an op code ("" for unknown ops).
func OpName(op uint8) string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return ""
}

// nodeMetrics counts a node's server-side work. Search invariants the
// metrics-invariant suite asserts:
//
//	posting_searches_total + linear_searches_total == searches_total
//	posting_verified_total <= posting_candidates_total
//	  (the difference is the index's false-positive verify overhead)
type nodeMetrics struct {
	on bool // gates the time.Now pair on the handler hot path

	ops      *obs.Counter
	opErrors *obs.Counter
	opNS     [len(opNames)]*obs.Histogram

	forwards *obs.Counter // LH* server-side forwards issued

	searches          *obs.Counter
	postingSearches   *obs.Counter
	linearSearches    *obs.Counter
	postingCandidates *obs.Counter // candidate offsets probed
	postingVerified   *obs.Counter // candidates that survived MatchAt
	searchHits        *obs.Counter // raw hits reported (both paths)

	indexTombstones  *obs.Counter // postings tombstoned by deletes/overwrites
	indexCompactions *obs.Counter // posting-list compaction epochs
}

// Instrument publishes the node's counters into reg. Call before the
// node serves traffic.
func (n *Node) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := nodeMetrics{
		on:                true,
		ops:               reg.Counter("node_ops_total"),
		opErrors:          reg.Counter("node_op_errors_total"),
		forwards:          reg.Counter("node_forwards_total"),
		searches:          reg.Counter("node_searches_total"),
		postingSearches:   reg.Counter("node_posting_searches_total"),
		linearSearches:    reg.Counter("node_linear_searches_total"),
		postingCandidates: reg.Counter("node_posting_candidates_total"),
		postingVerified:   reg.Counter("node_posting_verified_total"),
		searchHits:        reg.Counter("node_search_hits_total"),
		indexTombstones:   reg.Counter("node_index_tombstones_total"),
		indexCompactions:  reg.Counter("node_index_compactions_total"),
	}
	for op, name := range opNames {
		if name != "" {
			m.opNS[op] = reg.Histogram("node_op_" + name + "_ns")
		}
	}
	n.met = m
}

// observeOp records one handled request's latency and outcome.
func (m *nodeMetrics) observeOp(op uint8, d time.Duration, err error) {
	m.ops.Inc()
	if err != nil {
		m.opErrors.Inc()
	}
	if int(op) < len(m.opNS) {
		m.opNS[op].Observe(d.Nanoseconds())
	}
}

// clusterMetrics counts the client/coordinator side. cluster_iams_total
// tracks image-adjustment messages — the client's view of how far its
// image lagged (each one was an extra hop the server chain took).
type clusterMetrics struct {
	reg *obs.Registry // for per-search traces; nil when uninstrumented

	puts         *obs.Counter
	gets         *obs.Counter
	deletes      *obs.Counter
	searches     *obs.Counter
	wordSearches *obs.Counter
	batches      *obs.Counter // InsertIndexed batch RPC fan-outs
	iams         *obs.Counter
	splits       *obs.Counter
	merges       *obs.Counter

	searchNS        *obs.Histogram
	degradedServes  *obs.Counter // node results served from guardian images
	failedSites     *obs.Counter // node results lost entirely
	searchesPartial *obs.Counter // searches that returned incomplete

	// Two-phase migration lifecycle (DESIGN.md §14). The durable ledger
	// invariant started == committed + aborted + in_flight is asserted by
	// the migration tests over these surfaces.
	migStarted   *obs.Counter
	migCommitted *obs.Counter
	migAborted   *obs.Counter
	migResumed   *obs.Counter
	migInFlight  *obs.Gauge
}

// Instrument publishes the cluster client's counters into reg and
// enables per-search tracing. Call before the cluster carries traffic.
func (c *Cluster) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.met = clusterMetrics{
		reg:             reg,
		puts:            reg.Counter("cluster_puts_total"),
		gets:            reg.Counter("cluster_gets_total"),
		deletes:         reg.Counter("cluster_deletes_total"),
		searches:        reg.Counter("cluster_searches_total"),
		wordSearches:    reg.Counter("cluster_word_searches_total"),
		batches:         reg.Counter("cluster_insert_batches_total"),
		iams:            reg.Counter("cluster_iams_total"),
		splits:          reg.Counter("cluster_splits_total"),
		merges:          reg.Counter("cluster_merges_total"),
		searchNS:        reg.Histogram("cluster_search_ns"),
		degradedServes:  reg.Counter("cluster_degraded_serves_total"),
		failedSites:     reg.Counter("cluster_failed_sites_total"),
		searchesPartial: reg.Counter("cluster_partial_searches_total"),
		migStarted:      reg.Counter("sdds_migrations_started_total"),
		migCommitted:    reg.Counter("sdds_migrations_committed_total"),
		migAborted:      reg.Counter("sdds_migrations_aborted_total"),
		migResumed:      reg.Counter("sdds_migrations_resumed_total"),
		migInFlight:     reg.Gauge("sdds_migrations_in_flight"),
	}
}

// Metrics returns the registry the cluster was instrumented with (nil
// when uninstrumented).
func (c *Cluster) Metrics() *obs.Registry {
	return c.met.reg
}

// supervisorMetrics counts repair-lifecycle phases. Every journaled
// record increments exactly one phase counter, so
//
//	sum(phase counters) == journal length + journal dropped
//
// holds at all times (both sides count every record ever journaled).
type supervisorMetrics struct {
	phases [repairPhaseCount]*obs.Counter
}

const repairPhaseCount = int(RepairParityFallback) + 1

// sanitizePhase turns a RepairPhase display name into a metric-name
// segment ("nothing-to-restore" → "nothing_to_restore").
func sanitizePhase(name string) string {
	return strings.ReplaceAll(name, "-", "_")
}

// Instrument publishes the supervisor's per-phase repair counters into
// reg. Call before Start.
func (s *Supervisor) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	var m supervisorMetrics
	for p := 0; p < repairPhaseCount; p++ {
		m.phases[p] = reg.Counter("supervisor_phase_" + sanitizePhase(RepairPhase(p).String()) + "_total")
	}
	s.met = m
}

// guardianMetrics times the parity layer's two jobs.
type guardianMetrics struct {
	syncs       *obs.Counter
	syncErrors  *obs.Counter
	recovers    *obs.Counter
	recoverErrs *obs.Counter
	syncNS      *obs.Histogram
	recoverNS   *obs.Histogram
}

// Instrument publishes the guardian's counters into reg. Call before
// the guardian runs.
func (g *Guardian) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	g.met = guardianMetrics{
		syncs:       reg.Counter("guardian_syncs_total"),
		syncErrors:  reg.Counter("guardian_sync_errors_total"),
		recovers:    reg.Counter("guardian_recovers_total"),
		recoverErrs: reg.Counter("guardian_recover_errors_total"),
		syncNS:      reg.Histogram("guardian_sync_ns"),
		recoverNS:   reg.Histogram("guardian_recover_ns"),
	}
}
