package sdds

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disperse"
)

func TestPutReqRoundTrip(t *testing.T) {
	prop := func(file uint8, addr uint64, hops uint8, key uint64, value []byte) bool {
		m := putReq{file: FileID(file), addr: addr, hops: hops, key: key, value: value}
		got, err := decodePutReq(m.encode())
		return err == nil && got.file == m.file && got.addr == m.addr &&
			got.hops == m.hops && got.key == m.key && bytes.Equal(got.value, m.value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPutRespRoundTrip(t *testing.T) {
	prop := func(isNew bool, addr uint64, level uint8, n uint32) bool {
		m := putResp{isNew: isNew, iamAddr: addr, iamLevel: level, bucketLen: n}
		got, err := decodePutResp(m.encode())
		return err == nil && got == m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKeyReqValueRespRoundTrip(t *testing.T) {
	prop := func(file uint8, addr uint64, hops uint8, key uint64, found bool, value []byte) bool {
		kr := keyReq{file: FileID(file), addr: addr, hops: hops, key: key}
		gk, err := decodeKeyReq(kr.encode())
		if err != nil || gk != kr {
			return false
		}
		vr := valueResp{found: found, iamAddr: addr, iamLevel: hops, value: value}
		gv, err := decodeValueResp(vr.encode())
		return err == nil && gv.found == vr.found && gv.iamAddr == vr.iamAddr &&
			gv.iamLevel == vr.iamLevel && bytes.Equal(gv.value, vr.value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIndexValueRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		m := indexValue{firstIndex: rng.Uint32()}
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			m.pieces = append(m.pieces, disperse.Piece(rng.Intn(1<<16)))
		}
		got, err := decodeIndexValue(m.encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.firstIndex != m.firstIndex || len(got.pieces) != len(m.pieces) {
			t.Fatal("header mismatch")
		}
		for i := range m.pieces {
			if got.pieces[i] != m.pieces[i] {
				t.Fatal("piece mismatch")
			}
		}
	}
}

func TestSearchReqRespRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		req := searchReq{
			file:     FileID(rng.Intn(3)),
			kSites:   uint8(1 + rng.Intn(8)),
			slotBits: uint8(rng.Intn(7)),
		}
		for s := 0; s < rng.Intn(4); s++ {
			ser := searchSeries{a: uint16(rng.Intn(8))}
			for p := 0; p < int(req.kSites); p++ {
				var pat []disperse.Piece
				for c := 0; c < 1+rng.Intn(5); c++ {
					pat = append(pat, disperse.Piece(rng.Intn(1<<16)))
				}
				ser.patterns = append(ser.patterns, pat)
			}
			req.series = append(req.series, ser)
		}
		got, err := decodeSearchReq(req.encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.file != req.file || got.kSites != req.kSites || got.slotBits != req.slotBits ||
			len(got.series) != len(req.series) {
			t.Fatal("header mismatch")
		}
		for i := range req.series {
			if got.series[i].a != req.series[i].a ||
				len(got.series[i].patterns) != len(req.series[i].patterns) {
				t.Fatal("series mismatch")
			}
		}

		resp := searchResp{}
		for h := 0; h < rng.Intn(10); h++ {
			resp.hits = append(resp.hits, rawHit{
				rid:         rng.Uint64(),
				j:           uint8(rng.Intn(8)),
				k:           uint8(rng.Intn(8)),
				a:           uint16(rng.Intn(8)),
				firstIndex:  rng.Uint32(),
				pieceOffset: rng.Uint32(),
			})
		}
		gotResp, err := decodeSearchResp(resp.encode())
		if err != nil {
			t.Fatal(err)
		}
		if len(gotResp.hits) != len(resp.hits) {
			t.Fatal("hit count mismatch")
		}
		for i := range resp.hits {
			if gotResp.hits[i] != resp.hits[i] {
				t.Fatal("hit mismatch")
			}
		}
	}
}

func TestRecordBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var m recordBatch
		for i := 0; i < rng.Intn(10); i++ {
			v := make([]byte, rng.Intn(30))
			rng.Read(v)
			m.records = append(m.records, kv{key: rng.Uint64(), value: v})
		}
		got, err := decodeRecordBatch(m.encode())
		if err != nil {
			t.Fatal(err)
		}
		if len(got.records) != len(m.records) {
			t.Fatal("count mismatch")
		}
		for i := range m.records {
			if got.records[i].key != m.records[i].key ||
				!bytes.Equal(got.records[i].value, m.records[i].value) {
				t.Fatal("record mismatch")
			}
		}
	}
}

func TestControlMessageRoundTrips(t *testing.T) {
	bc := bucketCreateReq{file: 2, addr: 77, level: 5}
	if got, err := decodeBucketCreateReq(bc.encode()); err != nil || got != bc {
		t.Errorf("bucketCreate: %v %v", got, err)
	}
	se := splitExtractReq{file: 1, addr: 12}
	if got, err := decodeSplitExtractReq(se.encode()); err != nil || got != se {
		t.Errorf("splitExtract: %v %v", got, err)
	}
	mc := mergeCloseReq{file: 1, addr: 9}
	if got, err := decodeMergeCloseReq(mc.encode()); err != nil || got != mc {
		t.Errorf("mergeClose: %v %v", got, err)
	}
	sa := splitAbsorbReq{file: 1, addr: 3, batch: recordBatch{records: []kv{{key: 5, value: []byte("x")}}}}
	got, err := decodeSplitAbsorbReq(sa.encode())
	if err != nil || got.file != sa.file || got.addr != sa.addr || len(got.batch.records) != 1 {
		t.Errorf("splitAbsorb: %+v %v", got, err)
	}
	ma := mergeAbsorbReq{file: 1, addr: 3, batch: recordBatch{records: []kv{{key: 5, value: []byte("x")}}}}
	gotMA, err := decodeMergeAbsorbReq(ma.encode())
	if err != nil || gotMA.addr != ma.addr || len(gotMA.batch.records) != 1 {
		t.Errorf("mergeAbsorb: %+v %v", gotMA, err)
	}
	ws := wordSearchReq{file: FileWords, token: bytes.Repeat([]byte{7}, 16)}
	gotWS, err := decodeWordSearchReq(ws.encode())
	if err != nil || gotWS.file != ws.file || !bytes.Equal(gotWS.token, ws.token) {
		t.Errorf("wordSearch: %+v %v", gotWS, err)
	}
	wr := wordSearchResp{rids: []uint64{1, 99, 1 << 60}}
	gotWR, err := decodeWordSearchResp(wr.encode())
	if err != nil || len(gotWR.rids) != 3 || gotWR.rids[2] != 1<<60 {
		t.Errorf("wordSearchResp: %+v %v", gotWR, err)
	}
}

// TestDecodersRejectTruncation feeds every decoder truncated prefixes of
// valid messages: none may panic, and all must error (or decode a valid
// strict prefix — not possible here since all carry length fields).
func TestDecodersRejectTruncation(t *testing.T) {
	valid := [][]byte{
		putReq{file: 1, addr: 2, key: 3, value: []byte("abcdef")}.encode(),
		putResp{isNew: true, iamAddr: 9, bucketLen: 4}.encode(),
		keyReq{file: 1, addr: 2, key: 3}.encode(),
		valueResp{found: true, value: []byte("xyz")}.encode(),
		indexValue{firstIndex: 1, pieces: []disperse.Piece{1, 2, 3}}.encode(),
		recordBatch{records: []kv{{key: 1, value: []byte("v")}}}.encode(),
		wordSearchReq{file: 2, token: bytes.Repeat([]byte{1}, 16)}.encode(),
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := decodePutReq(b); return err },
		func(b []byte) error { _, err := decodePutResp(b); return err },
		func(b []byte) error { _, err := decodeKeyReq(b); return err },
		func(b []byte) error { _, err := decodeValueResp(b); return err },
		func(b []byte) error { _, err := decodeIndexValue(b); return err },
		func(b []byte) error { _, err := decodeRecordBatch(b); return err },
		func(b []byte) error { _, err := decodeWordSearchReq(b); return err },
	}
	for i, msg := range valid {
		if err := decoders[i](msg); err != nil {
			t.Fatalf("decoder %d rejects its own valid message: %v", i, err)
		}
		for cut := 0; cut < len(msg); cut++ {
			if err := decoders[i](msg[:cut]); err == nil {
				t.Errorf("decoder %d accepted truncation at %d/%d", i, cut, len(msg))
			}
		}
	}
}
