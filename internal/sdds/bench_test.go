package sdds

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/cipherx"
	"repro/internal/core"
	"repro/internal/disperse"
	"repro/internal/obs"
	"repro/internal/transport"
)

// --- Node-side search: posting index vs linear scan ---
//
// One 20k-record corpus per mode, built once and shared across
// benchmark iterations. The query is a selective 9-symbol substring of
// a known record, so the measured work is the node-side lookup, not
// result marshalling.

type searchBench struct {
	cluster *Cluster
	pl      *core.Pipeline
	query   *core.Query
}

const benchSearchRecords = 20000

var (
	searchBenchOnce sync.Once
	searchBenches   map[string]*searchBench
)

func buildSearchBench(b *testing.B, linear bool) *searchBench {
	rng := rand.New(rand.NewSource(99))
	mem := transport.NewMemory()
	ids := []transport.NodeID{0, 1, 2, 3}
	place, err := NewPlacement(ids)
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range ids {
		node := NewNode(id, mem, place)
		if linear {
			node.DisablePostingIndex()
		}
		mem.Register(id, node.Handler())
	}
	c := NewCluster(mem, place)

	pl := benchPipeline(b, 4, 2, 2)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()
	var needle []byte
	for rid := uint64(1); rid <= benchSearchRecords; rid++ {
		rc := make([]byte, 24)
		for i := range rc {
			rc[i] = byte('A' + rng.Intn(26))
		}
		if rid == benchSearchRecords/2 {
			needle = append([]byte(nil), rc[4:13]...)
		}
		recs, err := pl.BuildIndex(rid, rc)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
			b.Fatal(err)
		}
	}
	query, err := pl.BuildQuery(needle, false)
	if err != nil {
		b.Fatal(err)
	}
	return &searchBench{cluster: c, pl: pl, query: query}
}

func getSearchBench(b *testing.B, mode string) *searchBench {
	searchBenchOnce.Do(func() {
		searchBenches = map[string]*searchBench{
			"posting": buildSearchBench(b, false),
			"linear":  buildSearchBench(b, true),
		}
	})
	return searchBenches[mode]
}

func benchPipeline(tb testing.TB, s, m, k int) *core.Pipeline {
	tb.Helper()
	pl, err := core.NewPipeline(core.Params{
		Chunk:      chunk.Params{S: s, M: m},
		DisperseK:  k,
		MatrixKind: disperse.MatrixRandom,
		Key:        cipherx.KeyFromPassphrase("sdds-test"),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return pl
}

func benchmarkNodeSearch(b *testing.B, mode string) {
	sb := getSearchBench(b, mode)
	ctx := context.Background()
	lat := obs.NewHistogram() // per-iteration latency → p50/p99 metrics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		hits, err := sb.cluster.Search(ctx, FileIndex, sb.pl, sb.query, core.VerifyAny)
		lat.Observe(time.Since(start).Nanoseconds())
		if err != nil {
			b.Fatal(err)
		}
		if len(hits) == 0 {
			b.Fatal("query lost its record")
		}
	}
	b.StopTimer()
	s := lat.Snapshot()
	b.ReportMetric(float64(s.P50), "p50-ns")
	b.ReportMetric(float64(s.P99), "p99-ns")
}

func BenchmarkNodeSearch(b *testing.B) {
	b.Run("linear", func(b *testing.B) { benchmarkNodeSearch(b, "linear") })
	b.Run("posting", func(b *testing.B) { benchmarkNodeSearch(b, "posting") })
}

// --- Batched vs sequential InsertIndexed ---

// countingTransport counts client-issued RPCs; node-to-node forwards
// bypass it (nodes hold the raw memory transport), so the count is
// exactly the client's message cost.
type countingTransport struct {
	transport.Transport
	sends atomic.Int64
}

func (c *countingTransport) Send(ctx context.Context, node transport.NodeID, op uint8, payload []byte) ([]byte, error) {
	c.sends.Add(1)
	return c.Transport.Send(ctx, node, op, payload)
}

// SendsInline forwards the inner transport's inline-send marker so
// fan-out keeps its serial fast path under the counting wrapper.
func (c *countingTransport) SendsInline() bool {
	is, ok := c.Transport.(transport.InlineSender)
	return ok && is.SendsInline()
}

func insertBenchCluster(tb testing.TB, nodes int) (*Cluster, *countingTransport) {
	tb.Helper()
	mem := transport.NewMemory()
	ids := make([]transport.NodeID, nodes)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := NewPlacement(ids)
	if err != nil {
		tb.Fatal(err)
	}
	for _, id := range ids {
		node := NewNode(id, mem, place)
		mem.Register(id, node.Handler())
	}
	ct := &countingTransport{Transport: mem}
	return NewCluster(ct, place), ct
}

func benchmarkInsertIndexed(b *testing.B, batched bool) {
	rng := rand.New(rand.NewSource(7))
	pl := benchPipeline(b, 4, 2, 4)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()

	const records = 200
	recSets := make([][]core.IndexRecord, records)
	for i := range recSets {
		rc := make([]byte, 24)
		for j := range rc {
			rc[j] = byte('A' + rng.Intn(26))
		}
		recs, err := pl.BuildIndex(uint64(i+1), rc)
		if err != nil {
			b.Fatal(err)
		}
		recSets[i] = recs
	}

	b.ReportAllocs()
	b.ResetTimer()
	var rpcs, inserted int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, ct, cleanup := insertTCPBenchCluster(b, 4)
		b.StartTimer()
		for _, recs := range recSets {
			var err error
			if batched {
				err = c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits)
			} else {
				err = c.InsertIndexedSequential(ctx, FileIndex, recs, pl.K(), slotBits)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		rpcs += ct.sends.Load()
		inserted += records
		b.StopTimer()
		cleanup()
		b.StartTimer()
	}
	b.ReportMetric(float64(rpcs)/float64(inserted), "rpcs/record")
}

// BenchmarkInsertIndexed compares the two insert strategies over the
// fabric the batching work targets: real loopback TCP through the
// pooled multiplexed v2 transport. Sequential pays one round-trip per
// index record; batched scatters one multiplexed frame per destination
// node, so the per-RPC saving shows up directly as wall clock.
func BenchmarkInsertIndexed(b *testing.B) {
	b.Run("sequential", func(b *testing.B) { benchmarkInsertIndexed(b, false) })
	b.Run("batched", func(b *testing.B) { benchmarkInsertIndexed(b, true) })
}

// TestBatchedInsertRPCBound pins the batching contract: one insert of a
// multi-piece record costs at most one RPC per destination node (no
// splits pending).
func TestBatchedInsertRPCBound(t *testing.T) {
	pl := testPipeline(t, 4, 2, 4)
	slotBits := SlotBits(pl.Chunkings(), pl.K())
	ctx := context.Background()
	c, ct := insertBenchCluster(t, 4)
	c.SetMaxLoad(FileIndex, 1000) // no splits: isolate the batch cost

	recs, err := pl.BuildIndex(1, []byte("AN ENCRYPTED CONTENT SEARCHABLE SCALABLE STRUCTURE"))
	if err != nil {
		t.Fatal(err)
	}
	var pieces int
	for _, r := range recs {
		pieces += len(r.Streams)
	}
	before := ct.sends.Load()
	if err := c.InsertIndexed(ctx, FileIndex, recs, pl.K(), slotBits); err != nil {
		t.Fatal(err)
	}
	rpcs := ct.sends.Load() - before
	if nodes := int64(len(c.place.Nodes())); rpcs > nodes {
		t.Fatalf("batched insert used %d RPCs for %d nodes", rpcs, nodes)
	}
	if rpcs >= int64(pieces) {
		t.Fatalf("batching saved nothing: %d RPCs for %d pieces", rpcs, pieces)
	}
}

// --- Posting-index maintenance: flat vs legacy, single vs batched ---
//
// One iteration indexes idxBenchEntries pre-encoded values (zipfian
// piece popularity), so ns/op is directly comparable across the
// variants; "ns/entry" is also reported. "single" uses the per-entry
// put path on fresh keys — the case the old index paid a full
// indexDelete for; "legacy" is the pre-flat two-level map index on the
// same stream (its put IS the old indexPut, redundant delete included),
// so single-vs-legacy is the fix's delta. "batched" feeds all entries
// through putBatch as handlePutBatch does; "overwrite" re-indexes
// existing keys, exercising tombstoning and compaction at steady state.

const idxBenchEntries = 1000

func idxBenchValues() []kv {
	rng := rand.New(rand.NewSource(77))
	z := rand.NewZipf(rng, 1.2, 1, 511)
	ents := make([]kv, idxBenchEntries)
	for i := range ents {
		n := 4 + rng.Intn(10)
		ps := make([]disperse.Piece, n)
		for j := range ps {
			ps[j] = disperse.Piece(z.Uint64())
		}
		ents[i] = kv{
			key:   uint64(i + 1),
			value: indexValue{firstIndex: uint32(i % 4), pieces: ps}.encode(),
		}
	}
	return ents
}

func BenchmarkIndexPut(b *testing.B) {
	ents := idxBenchValues()
	perEntry := func(b *testing.B, total time.Duration) {
		b.Helper()
		b.ReportMetric(float64(total.Nanoseconds())/float64(b.N*idxBenchEntries), "ns/entry")
	}
	b.Run("single", func(b *testing.B) {
		x := newFlatIndex(nil)
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			x.reset()
			for _, e := range ents {
				x.put(e.key, e.value)
			}
		}
		perEntry(b, time.Since(start))
	})
	b.Run("batched", func(b *testing.B) {
		x := newFlatIndex(nil)
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			x.reset()
			x.putBatch(ents)
		}
		perEntry(b, time.Since(start))
	})
	b.Run("overwrite", func(b *testing.B) {
		x := newFlatIndex(nil)
		x.putBatch(ents) // steady state: every put below overwrites
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, e := range ents {
				x.put(e.key, e.value)
			}
		}
		perEntry(b, time.Since(start))
	})
	b.Run("legacy", func(b *testing.B) {
		x := newLegacyMapIndex()
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			x.reset()
			for _, e := range ents {
				x.put(e.key, e.value)
			}
		}
		perEntry(b, time.Since(start))
	})
}

// --- Placement.Nodes: cached immutable slice, zero allocations ---

func TestPlacementNodesZeroAlloc(t *testing.T) {
	place, err := NewPlacement([]transport.NodeID{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if len(place.Nodes()) != 5 {
			t.Fatal("wrong node count")
		}
	})
	if allocs != 0 {
		t.Fatalf("Placement.Nodes allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkPlacementNodes(b *testing.B) {
	place, err := NewPlacement([]transport.NodeID{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(place.Nodes()) == 0 {
			b.Fatal("empty placement")
		}
	}
}
