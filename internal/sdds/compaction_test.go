package sdds

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/disperse"
)

// hotValue builds an index value whose stream leads with the given hot
// piece, so every such entry lands a posting in the hot piece's list.
func hotValue(hot disperse.Piece, rng *rand.Rand) []byte {
	n := 2 + rng.Intn(6)
	ps := make([]disperse.Piece, n)
	ps[0] = hot
	for i := 1; i < n; i++ {
		ps[i] = disperse.Piece(1000 + rng.Intn(50))
	}
	return indexValue{firstIndex: 0, pieces: ps}.encode()
}

// TestCompactionTriggerUnderDeleteChurn drives sustained delete churn
// through one hot posting list and asserts the dead-fraction trigger
// actually fires, that the dead-ratio bound holds after every mutation,
// and that tombstone/compaction accounting is consistent throughout.
func TestCompactionTriggerUnderDeleteChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const hot = disperse.Piece(7)
	x := newFlatIndex(nil)

	// Fill the hot list well past compactMinLen.
	const n = 200
	for key := uint64(0); key < n; key++ {
		x.put(key, hotValue(hot, rng))
	}
	if len(x.postings(hot)) < compactMinLen {
		t.Fatalf("hot list too short to test: %d", len(x.postings(hot)))
	}

	// Churn: delete and re-insert random keys; every mutation must leave
	// the bound intact, and the trigger must fire along the way.
	for step := 0; step < 2000; step++ {
		key := uint64(rng.Intn(n))
		if step%3 == 0 {
			x.put(key, hotValue(hot, rng)) // overwrite: tombstone + fresh postings
		} else {
			x.remove(key)
		}
		checkFlatInvariants(t, 0, 0, x)
		if t.Failed() {
			t.Fatalf("invariant broken at step %d", step)
		}
	}
	st := x.stats()
	if st.compactions == 0 {
		t.Error("sustained delete churn never fired the compaction trigger")
	}
	if st.tombstones == 0 {
		t.Error("no tombstones recorded under delete churn")
	}
	t.Logf("churn: %d compactions, %d tombstones, live %d, dead %d",
		st.compactions, st.tombstones, st.live, st.dead)
}

// TestCompactionPreservesSearchResults pins the exact boundary: search
// results (probe matches) immediately before a compaction-triggering
// delete equal the results immediately after, minus exactly the deleted
// key's matches.
func TestCompactionPreservesSearchResults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const hot = disperse.Piece(3)
	pat := []disperse.Piece{hot}

	// Construct a state one tombstone short of the trigger, then delete
	// one more key and require the compaction to have fired.
	x := newFlatIndex(nil)
	const n = 64
	for key := uint64(0); key < n; key++ {
		x.put(key, hotValue(hot, rng))
	}
	var deleted []uint64
	for key := uint64(0); key < n; key++ {
		before := probeMatches(x, pat)
		pre := x.stats().compactions
		x.remove(key)
		deleted = append(deleted, key)
		after := probeMatches(x, pat)
		var want []idxMatch
		for _, m := range before {
			if m.key != key {
				want = append(want, m)
			}
		}
		if !reflect.DeepEqual(after, want) {
			t.Fatalf("delete of %d (compactions %d→%d): matches %v, want %v",
				key, pre, x.stats().compactions, after, want)
		}
	}
	if x.stats().compactions == 0 {
		t.Fatal("deleting every key of a hot list never compacted it")
	}
	if got := x.postings(hot); got != nil {
		t.Fatalf("fully dead hot list still present: %v", got)
	}
	_ = deleted
}

// TestCompactionBoundsListLength asserts the structural consequence of
// the amortized policy: a posting list never holds more than 2x its
// live postings (once at compactable length), no matter the churn
// pattern — the property that keeps probe cost O(live).
func TestCompactionBoundsListLength(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const hot = disperse.Piece(11)
	x := newFlatIndex(nil)
	live := make(map[uint64]bool)
	for step := 0; step < 5000; step++ {
		key := uint64(rng.Intn(100))
		if rng.Intn(2) == 0 {
			x.put(key, hotValue(hot, rng))
			live[key] = true
		} else {
			x.remove(key)
			delete(live, key)
		}
		items := x.postings(hot)
		if len(items) < compactMinLen {
			continue
		}
		liveCount := 0
		for _, pt := range items {
			if pt.off != tombstoneOff {
				liveCount++
			}
		}
		if len(items) > 2*liveCount {
			t.Fatalf("step %d: list length %d exceeds 2x live count %d", step, len(items), liveCount)
		}
	}
}

// TestCompactionReleasesOversizedBacking checks that a once-hot list
// whose live set shrank far below its high-water mark gets its backing
// reallocated smaller instead of pinned forever.
func TestCompactionReleasesOversizedBacking(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const hot = disperse.Piece(13)
	x := newFlatIndex(nil)
	const n = 512
	for key := uint64(0); key < n; key++ {
		x.put(key, hotValue(hot, rng))
	}
	highWater := cap(x.post[hot].items)
	for key := uint64(0); key < n-4; key++ {
		x.remove(key)
	}
	if got := cap(x.post[hot].items); got >= highWater {
		t.Fatalf("backing capacity %d not released from high-water %d", got, highWater)
	}
	// The survivors must still be probeable.
	if got := len(probeMatches(x, []disperse.Piece{hot})); got == 0 {
		t.Fatal("surviving keys lost their postings")
	}
}

// TestIndexPutBatchDuplicateKeys pins last-writer-wins semantics for
// duplicate keys within one batch against the sequential reference.
func TestIndexPutBatchDuplicateKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	z := rand.NewZipf(rng, 1.2, 1, 31)
	for trial := 0; trial < 50; trial++ {
		var ents []kv
		for i := 0; i < 3+rng.Intn(12); i++ {
			ents = append(ents, kv{
				key:   uint64(rng.Intn(4)), // tiny key space → many duplicates
				value: encodeTestValue(rng, z),
			})
		}
		batched := newFlatIndex(nil)
		batched.putBatch(ents)
		seq := newFlatIndex(nil)
		for _, e := range ents {
			seq.put(e.key, e.value)
		}
		if got, want := dumpPostings(batched), dumpPostings(seq); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: batched postings %v, sequential %v", trial, got, want)
		}
		for key := uint64(0); key < 4; key++ {
			be, bok := batched.entry(key)
			se, sok := seq.entry(key)
			if bok != sok || !reflect.DeepEqual(be, se) {
				t.Fatalf("trial %d: entry %d: batched (%v,%v), sequential (%v,%v)",
					trial, key, be, bok, se, sok)
			}
		}
		checkFlatInvariants(t, 0, 0, batched)
	}
}

// TestIndexPutBatchArenaStability feeds a batch large enough to span
// many pieces and verifies every entry's carved piece slice still reads
// back correctly — the arena-never-moves contract of
// decodeIndexValueInto.
func TestIndexPutBatchArenaStability(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	z := rand.NewZipf(rng, 1.1, 1, 255)
	var ents []kv
	want := make(map[uint64]indexValue)
	for key := uint64(0); key < 500; key++ {
		v := encodeTestValue(rng, z)
		ents = append(ents, kv{key: key, value: v})
		iv, err := decodeIndexValue(v)
		if err != nil {
			t.Fatal(err)
		}
		want[key] = iv
	}
	// A few foreign values interleaved: their peek fails, so they must
	// not consume arena space or shift anyone's carve.
	for i := 0; i < len(ents); i += 50 {
		ents[i] = kv{key: ents[i].key, value: []byte("junk")}
		delete(want, ents[i].key)
	}
	x := newFlatIndex(nil)
	x.putBatch(ents)
	for key, iv := range want {
		e, ok := x.entry(key)
		if !ok {
			t.Fatalf("key %d missing", key)
		}
		if e.firstIndex != iv.firstIndex || !reflect.DeepEqual(e.pieces, iv.pieces) {
			t.Fatalf("key %d: entry %v, want %v", key, e, iv)
		}
	}
	if st := x.stats(); st.entries != len(want) {
		t.Fatalf("%d entries indexed, want %d", st.entries, len(want))
	}
}
