// Package sdds is the distributed engine of the encrypted searchable
// SDDS: storage nodes hosting LH* buckets for the record-store file and
// the index file, a split coordinator, and the client operations —
// key-based Put/Get/Delete with image-based addressing, server-side
// forwarding and IAMs, plus the parallel index search that broadcasts
// encrypted query series to all nodes and combines per-site hits.
//
// Index records follow §5 of the paper: the key of an index piece is the
// RID with the chunking ID and dispersion-site ID appended as least
// significant bits, so the pieces of one record scatter over different
// LH* buckets (and therefore different nodes) as soon as the file has
// grown past 2^(slot bits) buckets.
package sdds

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/disperse"
	"repro/internal/transport"
)

// FileID identifies a logical SDDS file on the cluster.
type FileID uint8

const (
	// FileRecords is the record-store file (sealed records by RID).
	FileRecords FileID = 0
	// FileIndex is the searchable index file (piece streams by composite
	// key).
	FileIndex FileID = 1
	// FileWords is the optional word-index file (per-record token blobs
	// for exact whole-word search, the [SWP00] adaptation).
	FileWords FileID = 2
)

// Op codes of the node protocol.
const (
	opPut uint8 = iota + 1
	opGet
	opDelete
	opSearch
	opBucketCreate
	opSplitExtract
	opSplitAbsorb
	opStats
	opMergeClose
	opMergeAbsorb
	opWordSearch
	opNodeSnapshot
	opNodeRestore
	opPutBatch
	opPing
	opRecoveryState
	// The two-phase migration protocol (DESIGN.md §14). Op codes are
	// persisted in node journals, so new codes append — never renumber.
	opMigratePrepare
	opMigrateAbsorb
	opMigrateCommit
	opMigrateAbort
)

// PingOp is the exported health-probe op code: nodes answer it with an
// empty payload and no side effects, making it the natural ProbeOp for
// a transport.Detector watching sdds nodes.
const PingOp = opPing

// OpPriority classifies the node protocol's op codes into admission-
// control classes for a transport.Shedder guarding an sdds node:
// health probes and recovery-state queries are control traffic (a
// saturated node must keep proving liveness, or backpressure turns
// into spurious down-detection); Guardian image transfer (snapshot /
// restore) is background maintenance that yields to client traffic
// first; everything else — put/get/delete/search and the split/merge
// protocol — is foreground.
func OpPriority(op uint8) transport.Priority {
	switch op {
	case opPing, opRecoveryState:
		return transport.PriorityControl
	case opNodeSnapshot, opNodeRestore:
		return transport.PriorityBackground
	default:
		return transport.PriorityForeground
	}
}

// HedgeSafeOps lists the read-only, idempotent op codes that a
// transport.Hedge may safely attempt twice: record/index lookups and
// the ciphertext search ops. Mutations (put, delete, split, merge,
// restore) are excluded — a duplicated apply is not idempotent at the
// bucket-load level even when the final state converges.
func HedgeSafeOps() []uint8 {
	return []uint8{opGet, opSearch, opWordSearch, opStats}
}

// Recovery modes reported by opRecoveryState — how a node's local state
// came to be. The Supervisor uses them to pick the cheapest sound repair:
// a durable node that replayed its own journal needs no parity
// reconstruction; a node whose journal was absent or corrupt does.
const (
	// recoveryEphemeral: no durable store attached — every restart is a
	// total state loss.
	recoveryEphemeral uint8 = iota
	// recoveryFresh: durable store attached but it held no prior state.
	recoveryFresh
	// recoveryRecovered: state replayed from the local checkpoint+journal.
	recoveryRecovered
	// recoveryCorrupt: durable state failed checksum verification and was
	// reset; the node restarted empty and needs a remote restore.
	recoveryCorrupt
)

// recoveryStateResp reports a node's durable-recovery status: the mode
// above, the last journaled sequence number, and (for corrupt) the
// verification failure detail.
type recoveryStateResp struct {
	mode   uint8
	seq    uint64
	detail string
}

func (m recoveryStateResp) encode() []byte {
	w := &writer{}
	w.u8(m.mode)
	w.u64(m.seq)
	w.bytes([]byte(m.detail))
	return w.b
}

func decodeRecoveryStateResp(b []byte) (recoveryStateResp, error) {
	r := &reader{b: b}
	m := recoveryStateResp{mode: r.u8(), seq: r.u64()}
	m.detail = string(r.bytes())
	return m, r.done()
}

// ComposeIndexKey builds the §5 composite key: RID shifted left by
// slotBits with (chunking J, site k) packed into the low bits.
func ComposeIndexKey(rid uint64, j, k, kSites int, slotBits uint) uint64 {
	slot := uint64(j*kSites + k)
	return rid<<slotBits | slot
}

// DecomposeIndexKey inverts ComposeIndexKey.
func DecomposeIndexKey(key uint64, kSites int, slotBits uint) (rid uint64, j, k int) {
	slot := key & (1<<slotBits - 1)
	rid = key >> slotBits
	j = int(slot) / kSites
	k = int(slot) % kSites
	return rid, j, k
}

// SlotBits returns the number of low bits needed for M chunkings × K
// sites (Figure 3 uses 3 bits for 2 chunkings × 4 sites).
func SlotBits(m, k int) uint {
	slots := m * k
	bits := uint(0)
	for 1<<bits < slots {
		bits++
	}
	return bits
}

// --- binary buffer helpers ---

type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *writer) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *writer) pieces(v []disperse.Piece) {
	w.u32(uint32(len(v)))
	for _, p := range v {
		w.u16(uint16(p))
	}
}

// reserveU32 appends a placeholder and returns its offset for a later
// patchU32 — used to write a count before the counted items are known,
// so batch encoders can stream entries in one pass.
func (w *writer) reserveU32() int {
	off := len(w.b)
	w.u32(0)
	return off
}

func (w *writer) patchU32(off int, v uint32) {
	binary.BigEndian.PutUint32(w.b[off:off+4], v)
}

// writerPool recycles request-encode scratch buffers on the client hot
// path. A pooled buffer may be handed to Transport.Send and released
// immediately after it returns: transports (including the Retry and
// Faulty middleware, whose retries and duplicate deliveries are
// synchronous) must not retain request payloads past Send, and the
// node-side decoders copy every byte they keep.
var writerPool = sync.Pool{New: func() any { return new(writer) }}

func getWriter() *writer {
	w := writerPool.Get().(*writer)
	w.b = w.b[:0]
	return w
}

func putWriter(w *writer) {
	if cap(w.b) > 1<<20 {
		return // don't let one huge record pin a large buffer
	}
	writerPool.Put(w)
}

type reader struct {
	b   []byte
	off int
	err error
}

var errShortPayload = errors.New("sdds: short payload")

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.b) {
		r.err = errShortPayload
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if !r.need(n) {
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) pieces() []disperse.Piece {
	n := int(r.u32())
	if r.err != nil || !r.need(2*n) {
		return nil
	}
	out := make([]disperse.Piece, n)
	for i := range out {
		out[i] = disperse.Piece(binary.BigEndian.Uint16(r.b[r.off:]))
		r.off += 2
	}
	return out
}

// bound validates a decoded element count against the bytes actually
// remaining (each element needs at least elemSize bytes), so a corrupt
// count cannot drive a huge preallocation. Returns 0 on failure.
func (r *reader) bound(n uint32, elemSize int) int {
	if r.err != nil {
		return 0
	}
	if int(n)*elemSize > len(r.b)-r.off {
		r.err = errShortPayload
		return 0
	}
	return int(n)
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("sdds: %d trailing payload bytes", len(r.b)-r.off)
	}
	return nil
}

// --- request/response payloads ---

// putReq: file, bucket addr, hop count, key, value.
type putReq struct {
	file  FileID
	addr  uint64
	hops  uint8
	key   uint64
	value []byte
}

func (m putReq) encode() []byte {
	w := &writer{}
	m.encodeTo(w)
	return w.b
}

func (m putReq) encodeTo(w *writer) {
	w.u8(uint8(m.file))
	w.u64(m.addr)
	w.u8(m.hops)
	w.u64(m.key)
	w.bytes(m.value)
}

func decodePutReq(b []byte) (putReq, error) {
	r := &reader{b: b}
	m := putReq{
		file: FileID(r.u8()),
		addr: r.u64(),
		hops: r.u8(),
		key:  r.u64(),
	}
	m.value = append([]byte(nil), r.bytes()...)
	return m, r.done()
}

// putResp: whether the key was new, the owning bucket's address/level
// (IAM), and the owning bucket's record count (load signal for the
// coordinator).
type putResp struct {
	isNew     bool
	iamAddr   uint64
	iamLevel  uint8
	bucketLen uint32
}

func (m putResp) encode() []byte {
	w := &writer{}
	if m.isNew {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u64(m.iamAddr)
	w.u8(m.iamLevel)
	w.u32(m.bucketLen)
	return w.b
}

func decodePutResp(b []byte) (putResp, error) {
	r := &reader{b: b}
	m := putResp{
		isNew:     r.u8() == 1,
		iamAddr:   r.u64(),
		iamLevel:  r.u8(),
		bucketLen: r.u32(),
	}
	return m, r.done()
}

// putBatchReq carries the coalesced index-piece puts destined for one
// node: every entry is independently addressed (entries of one record
// scatter over many buckets), so the node re-runs the LH* ownership
// check per entry and forwards strays individually.
type putBatchReq struct {
	file    FileID
	entries []batchEntry
}

type batchEntry struct {
	addr  uint64
	key   uint64
	value []byte
}

func (m putBatchReq) encode() []byte {
	w := &writer{}
	m.encodeTo(w)
	return w.b
}

func (m putBatchReq) encodeTo(w *writer) {
	w.u8(uint8(m.file))
	w.u32(uint32(len(m.entries)))
	for _, e := range m.entries {
		w.u64(e.addr)
		w.u64(e.key)
		w.bytes(e.value)
	}
}

// batchReqIter stream-decodes a putBatchReq entry by entry. Values are
// BORROWED from the transport's request buffer: the handler must copy
// any byte it stores (bucket storage retains values, and the buffer may
// be pooled), but entries it only forwards or journals can use the
// borrowed bytes in place. valsCap bounds the total retained value
// bytes, so the handler can pack all copies into one exact backing.
type batchReqIter struct {
	r reader
	// file and n are the batch header, decoded up front.
	file FileID
	n    int
}

func newBatchReqIter(b []byte) (batchReqIter, error) {
	it := batchReqIter{r: reader{b: b}}
	it.file = FileID(it.r.u8())
	// Each entry is at least addr(8) + key(8) + value length(4).
	it.n = it.r.bound(it.r.u32(), 20)
	return it, it.r.err
}

// valsCap returns an upper bound on the summed value lengths: the bytes
// remaining after the header minus each entry's 20 fixed bytes. A
// backing with this capacity never reallocates, so slices carved from
// it while appending stay valid.
func (it *batchReqIter) valsCap() int {
	return len(it.r.b) - it.r.off - 20*it.n
}

func (it *batchReqIter) next() (batchEntry, error) {
	e := batchEntry{addr: it.r.u64(), key: it.r.u64()}
	e.value = it.r.bytes() // borrowed — copy before retaining
	return e, it.r.err
}

// decodePutBatchReq materializes a whole batch with values copied into
// one packed backing — the non-streaming counterpart of batchReqIter,
// kept for round-trip testing of the batch encoding.
func decodePutBatchReq(b []byte) (putBatchReq, error) {
	it, err := newBatchReqIter(b)
	if err != nil {
		return putBatchReq{}, err
	}
	m := putBatchReq{file: it.file}
	if it.n > 0 {
		m.entries = make([]batchEntry, 0, it.n)
		vals := make([]byte, 0, it.valsCap())
		for i := 0; i < it.n; i++ {
			e, perr := it.next()
			if perr != nil {
				return m, perr
			}
			start := len(vals)
			vals = append(vals, e.value...)
			e.value = vals[start:len(vals):len(vals)]
			m.entries = append(m.entries, e)
		}
	}
	return m, it.r.done()
}

// batchPutResp is one entry of a putBatchResp. moved reports that the
// entry's owning bucket differed from the address the client sent —
// the server sees both, so the client learns "apply this IAM" without
// remembering per entry what it asked for.
type batchPutResp struct {
	isNew     bool
	moved     bool
	iamAddr   uint64
	iamLevel  uint8
	bucketLen uint32
}

// putBatchResp returns one entry per batch entry, in request order. The
// leading byte of each entry packs isNew (bit 0) with moved (bit 1).
type putBatchResp struct {
	resps []batchPutResp
}

func (m putBatchResp) encode() []byte {
	w := &writer{b: make([]byte, 0, 4+14*len(m.resps))}
	w.u32(uint32(len(m.resps)))
	for _, p := range m.resps {
		var flags uint8
		if p.isNew {
			flags |= 1
		}
		if p.moved {
			flags |= 2
		}
		w.u8(flags)
		w.u64(p.iamAddr)
		w.u8(p.iamLevel)
		w.u32(p.bucketLen)
	}
	return w.b
}

// batchRespIter stream-decodes a putBatchResp entry by entry: the
// client walks the response exactly once, so decoding in place saves
// materializing a slice per batch on the insert hot path.
type batchRespIter struct {
	r reader
	n int
}

func newBatchRespIter(b []byte) (batchRespIter, error) {
	it := batchRespIter{r: reader{b: b}}
	it.n = it.r.bound(it.r.u32(), 14) // flags(1) + addr(8) + level(1) + len(4)
	return it, it.r.err
}

func (it *batchRespIter) next() (batchPutResp, error) {
	flags := it.r.u8()
	p := batchPutResp{
		isNew:     flags&1 != 0,
		moved:     flags&2 != 0,
		iamAddr:   it.r.u64(),
		iamLevel:  it.r.u8(),
		bucketLen: it.r.u32(),
	}
	return p, it.r.err
}

func decodePutBatchResp(b []byte) (putBatchResp, error) {
	it, err := newBatchRespIter(b)
	if err != nil {
		return putBatchResp{}, err
	}
	m := putBatchResp{}
	if it.n > 0 {
		m.resps = make([]batchPutResp, 0, it.n)
	}
	for i := 0; i < it.n; i++ {
		p, perr := it.next()
		if perr != nil {
			return m, perr
		}
		m.resps = append(m.resps, p)
	}
	return m, it.r.done()
}

// keyReq serves Get and Delete.
type keyReq struct {
	file FileID
	addr uint64
	hops uint8
	key  uint64
}

func (m keyReq) encode() []byte {
	w := &writer{}
	m.encodeTo(w)
	return w.b
}

func (m keyReq) encodeTo(w *writer) {
	w.u8(uint8(m.file))
	w.u64(m.addr)
	w.u8(m.hops)
	w.u64(m.key)
}

func decodeKeyReq(b []byte) (keyReq, error) {
	r := &reader{b: b}
	m := keyReq{
		file: FileID(r.u8()),
		addr: r.u64(),
		hops: r.u8(),
		key:  r.u64(),
	}
	return m, r.done()
}

// valueResp serves Get (found+value) and Delete (found).
type valueResp struct {
	found    bool
	iamAddr  uint64
	iamLevel uint8
	value    []byte
}

func (m valueResp) encode() []byte {
	w := &writer{}
	if m.found {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u64(m.iamAddr)
	w.u8(m.iamLevel)
	w.bytes(m.value)
	return w.b
}

func decodeValueResp(b []byte) (valueResp, error) {
	r := &reader{b: b}
	m := valueResp{
		found:    r.u8() == 1,
		iamAddr:  r.u64(),
		iamLevel: r.u8(),
	}
	m.value = append([]byte(nil), r.bytes()...)
	return m, r.done()
}

// indexValue is the stored value of one index piece: the first chunk
// index (after DropPartial trimming) and the piece stream.
type indexValue struct {
	firstIndex uint32
	pieces     []disperse.Piece
}

func (m indexValue) encode() []byte {
	w := &writer{}
	w.u32(m.firstIndex)
	w.pieces(m.pieces)
	return w.b
}

func decodeIndexValue(b []byte) (indexValue, error) {
	r := &reader{b: b}
	m := indexValue{firstIndex: r.u32(), pieces: r.pieces()}
	return m, r.done()
}

// indexValuePieceCount peeks the piece count of an encoded indexValue
// without decoding it. ok is false for anything that would not decode
// cleanly (foreign values stored in the index file), so batch decoders
// can pre-size an exact piece arena: the encoding is fixed-width —
// 4 bytes firstIndex, 4 bytes count, 2 bytes per piece — and a value
// is valid iff its length matches the count exactly.
func indexValuePieceCount(b []byte) (int, bool) {
	if len(b) < 8 {
		return 0, false
	}
	n := int(binary.BigEndian.Uint32(b[4:8]))
	if 8+2*n != len(b) {
		return 0, false
	}
	return n, true
}

// decodeIndexValueInto decodes like decodeIndexValue but appends the
// piece stream to arena instead of allocating, returning the grown
// arena. The caller must pre-size arena (via indexValuePieceCount sums)
// so it never reallocates — the returned iv.pieces is a full-capacity
// carve of the appended region and must not move. A value whose peek
// fails also fails here, so arena stays exactly sized.
func decodeIndexValueInto(b []byte, arena []disperse.Piece) (indexValue, []disperse.Piece, error) {
	n, ok := indexValuePieceCount(b)
	if !ok {
		return indexValue{}, arena, errShortPayload
	}
	start := len(arena)
	for i := 0; i < n; i++ {
		arena = append(arena, disperse.Piece(binary.BigEndian.Uint16(b[8+2*i:])))
	}
	iv := indexValue{
		firstIndex: binary.BigEndian.Uint32(b[:4]),
		pieces:     arena[start:len(arena):len(arena)],
	}
	return iv, arena, nil
}

// searchReq carries a compiled query to every node: for each series, the
// alignment and the per-site patterns. slotBits is the composite-key
// slot width (SlotBits(M, K)), which nodes need to decompose entry keys.
type searchReq struct {
	file     FileID
	kSites   uint8
	slotBits uint8
	series   []searchSeries
}

type searchSeries struct {
	a        uint16
	patterns [][]disperse.Piece // indexed by site k
}

func (m searchReq) encode() []byte {
	w := &writer{}
	w.u8(uint8(m.file))
	w.u8(m.kSites)
	w.u8(m.slotBits)
	w.u16(uint16(len(m.series)))
	for _, s := range m.series {
		w.u16(s.a)
		w.u8(uint8(len(s.patterns)))
		for _, p := range s.patterns {
			w.pieces(p)
		}
	}
	return w.b
}

func decodeSearchReq(b []byte) (searchReq, error) {
	r := &reader{b: b}
	m := searchReq{file: FileID(r.u8()), kSites: r.u8(), slotBits: r.u8()}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		s := searchSeries{a: r.u16()}
		np := int(r.u8())
		for p := 0; p < np && r.err == nil; p++ {
			s.patterns = append(s.patterns, r.pieces())
		}
		m.series = append(m.series, s)
	}
	return m, r.done()
}

// rawHit is one node-side match: entry (rid, j, k) matched series a at
// pieceOffset within a stream whose stored firstIndex is given. The
// client converts piece offsets to chunk indexes (it knows the
// pieces-per-chunk factor; nodes don't need to).
type rawHit struct {
	rid         uint64
	j           uint8
	k           uint8
	a           uint16
	firstIndex  uint32
	pieceOffset uint32
}

type searchResp struct {
	hits []rawHit
}

func (m searchResp) encode() []byte {
	w := &writer{}
	w.u32(uint32(len(m.hits)))
	for _, h := range m.hits {
		w.u64(h.rid)
		w.u8(h.j)
		w.u8(h.k)
		w.u16(h.a)
		w.u32(h.firstIndex)
		w.u32(h.pieceOffset)
	}
	return w.b
}

func decodeSearchResp(b []byte) (searchResp, error) {
	r := &reader{b: b}
	n := int(r.u32())
	m := searchResp{}
	for i := 0; i < n && r.err == nil; i++ {
		m.hits = append(m.hits, rawHit{
			rid:         r.u64(),
			j:           r.u8(),
			k:           r.u8(),
			a:           r.u16(),
			firstIndex:  r.u32(),
			pieceOffset: r.u32(),
		})
	}
	return m, r.done()
}

// bucketCreateReq tells a node to create an empty bucket.
type bucketCreateReq struct {
	file  FileID
	addr  uint64
	level uint8
}

func (m bucketCreateReq) encode() []byte {
	w := &writer{}
	w.u8(uint8(m.file))
	w.u64(m.addr)
	w.u8(m.level)
	return w.b
}

func decodeBucketCreateReq(b []byte) (bucketCreateReq, error) {
	r := &reader{b: b}
	m := bucketCreateReq{file: FileID(r.u8()), addr: r.u64(), level: r.u8()}
	return m, r.done()
}

// splitExtractReq asks the node owning a bucket to raise its level and
// hand over the records that no longer belong.
type splitExtractReq struct {
	file FileID
	addr uint64
}

func (m splitExtractReq) encode() []byte {
	w := &writer{}
	w.u8(uint8(m.file))
	w.u64(m.addr)
	return w.b
}

func decodeSplitExtractReq(b []byte) (splitExtractReq, error) {
	r := &reader{b: b}
	m := splitExtractReq{file: FileID(r.u8()), addr: r.u64()}
	return m, r.done()
}

// recordBatch carries moved records during a split.
type recordBatch struct {
	records []kv
}

type kv struct {
	key   uint64
	value []byte
}

func (m recordBatch) encode() []byte {
	w := &writer{}
	w.u32(uint32(len(m.records)))
	for _, r := range m.records {
		w.u64(r.key)
		w.bytes(r.value)
	}
	return w.b
}

func decodeRecordBatch(b []byte) (recordBatch, error) {
	r := &reader{b: b}
	n := int(r.u32())
	m := recordBatch{}
	for i := 0; i < n && r.err == nil; i++ {
		key := r.u64()
		val := append([]byte(nil), r.bytes()...)
		m.records = append(m.records, kv{key: key, value: val})
	}
	return m, r.done()
}

// splitAbsorbReq delivers moved records to the new bucket.
type splitAbsorbReq struct {
	file  FileID
	addr  uint64
	batch recordBatch
}

func (m splitAbsorbReq) encode() []byte {
	w := &writer{}
	w.u8(uint8(m.file))
	w.u64(m.addr)
	w.b = append(w.b, m.batch.encode()...)
	return w.b
}

func decodeSplitAbsorbReq(b []byte) (splitAbsorbReq, error) {
	r := &reader{b: b}
	m := splitAbsorbReq{file: FileID(r.u8()), addr: r.u64()}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		key := r.u64()
		val := append([]byte(nil), r.bytes()...)
		m.batch.records = append(m.batch.records, kv{key: key, value: val})
	}
	return m, r.done()
}

// mergeCloseReq asks a node to remove a bucket and hand over all its
// records (the first half of a file shrink).
type mergeCloseReq struct {
	file FileID
	addr uint64
}

func (m mergeCloseReq) encode() []byte {
	w := &writer{}
	w.u8(uint8(m.file))
	w.u64(m.addr)
	return w.b
}

func decodeMergeCloseReq(b []byte) (mergeCloseReq, error) {
	r := &reader{b: b}
	m := mergeCloseReq{file: FileID(r.u8()), addr: r.u64()}
	return m, r.done()
}

// mergeAbsorbReq delivers the closed bucket's records to its merge
// partner and lowers the partner's level.
type mergeAbsorbReq struct {
	file  FileID
	addr  uint64
	batch recordBatch
}

func (m mergeAbsorbReq) encode() []byte {
	w := &writer{}
	w.u8(uint8(m.file))
	w.u64(m.addr)
	w.b = append(w.b, m.batch.encode()...)
	return w.b
}

func decodeMergeAbsorbReq(b []byte) (mergeAbsorbReq, error) {
	r := &reader{b: b}
	m := mergeAbsorbReq{file: FileID(r.u8()), addr: r.u64()}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		key := r.u64()
		val := append([]byte(nil), r.bytes()...)
		m.batch.records = append(m.batch.records, kv{key: key, value: val})
	}
	return m, r.done()
}

// migrateHeader is the addressing block shared by every migration op:
// the coordinator-assigned migration ID plus the coordinator's view of
// the move — kind, file, source bucket, target bucket, and the expected
// level of the source bucket. Nodes validate the whole header against
// their local state and reject mismatches loudly instead of recomputing
// destinations locally.
type migrateHeader struct {
	mid   uint64
	kind  uint8 // migrateSplit or migrateMerge
	file  FileID
	from  uint64 // bucket records leave (split: splitting; merge: closing)
	to    uint64 // bucket records arrive at (split: new; merge: surviving)
	level uint8  // expected level of the source bucket
}

func (m migrateHeader) encodeTo(w *writer) {
	w.u64(m.mid)
	w.u8(m.kind)
	w.u8(uint8(m.file))
	w.u64(m.from)
	w.u64(m.to)
	w.u8(m.level)
}

func (m *migrateHeader) decodeFrom(r *reader) {
	m.mid = r.u64()
	m.kind = r.u8()
	m.file = FileID(r.u8())
	m.from = r.u64()
	m.to = r.u64()
	m.level = r.u8()
}

// migratePrepareReq opens a migration on the source node: journal the
// moved set as outgoing, keep serving it, and return a copy.
type migratePrepareReq struct {
	migrateHeader
}

func (m migratePrepareReq) encode() []byte {
	w := &writer{}
	m.encodeTo(w)
	return w.b
}

func decodeMigratePrepareReq(b []byte) (migratePrepareReq, error) {
	r := &reader{b: b}
	var m migratePrepareReq
	m.decodeFrom(r)
	return m, r.done()
}

// migratePrepareResp reports the source's migration status for the ID —
// freshly prepared or re-prepared (ok, batch attached), or the durable
// outcome of an already-finished migration (committed / aborted, no
// batch). The latter is what lets a restarted coordinator resume.
type migratePrepareResp struct {
	status uint8 // migrateStatusOK / Committed / Aborted
	batch  recordBatch
}

func (m migratePrepareResp) encode() []byte {
	w := &writer{}
	w.u8(m.status)
	w.b = append(w.b, m.batch.encode()...)
	return w.b
}

func decodeMigratePrepareResp(b []byte) (migratePrepareResp, error) {
	r := &reader{b: b}
	m := migratePrepareResp{status: r.u8()}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		key := r.u64()
		val := append([]byte(nil), r.bytes()...)
		m.batch.records = append(m.batch.records, kv{key: key, value: val})
	}
	return m, r.done()
}

// migrateAbsorbReq durably lands the moved records on the target node,
// keyed by migration ID (idempotent on retry).
type migrateAbsorbReq struct {
	migrateHeader
	batch recordBatch
}

func (m migrateAbsorbReq) encode() []byte {
	w := &writer{}
	m.encodeTo(w)
	w.b = append(w.b, m.batch.encode()...)
	return w.b
}

func decodeMigrateAbsorbReq(b []byte) (migrateAbsorbReq, error) {
	r := &reader{b: b}
	var m migrateAbsorbReq
	m.decodeFrom(r)
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		key := r.u64()
		val := append([]byte(nil), r.bytes()...)
		m.batch.records = append(m.batch.records, kv{key: key, value: val})
	}
	return m, r.done()
}

// migrateFinishReq closes a migration on either participant: commit
// makes the handoff final (source drops the outgoing set; target keeps
// the absorbed records), abort undoes it (source keeps everything;
// target discards what it absorbed). Both are idempotent on the ID.
type migrateFinishReq struct {
	mid uint64
}

func (m migrateFinishReq) encode() []byte {
	w := &writer{}
	w.u64(m.mid)
	return w.b
}

func decodeMigrateFinishReq(b []byte) (migrateFinishReq, error) {
	r := &reader{b: b}
	m := migrateFinishReq{mid: r.u64()}
	return m, r.done()
}

// statsResp reports a node's bucket inventory for one file.
type statsResp struct {
	buckets []bucketStat
}

type bucketStat struct {
	addr  uint64
	level uint8
	size  uint32
}

func (m statsResp) encode() []byte {
	w := &writer{}
	w.u32(uint32(len(m.buckets)))
	for _, b := range m.buckets {
		w.u64(b.addr)
		w.u8(b.level)
		w.u32(b.size)
	}
	return w.b
}

func decodeStatsResp(b []byte) (statsResp, error) {
	r := &reader{b: b}
	n := int(r.u32())
	m := statsResp{}
	for i := 0; i < n && r.err == nil; i++ {
		m.buckets = append(m.buckets, bucketStat{
			addr:  r.u64(),
			level: r.u8(),
			size:  r.u32(),
		})
	}
	return m, r.done()
}

// wordSearchReq broadcasts one word token to every node.
type wordSearchReq struct {
	file  FileID
	token []byte
}

func (m wordSearchReq) encode() []byte {
	w := &writer{}
	w.u8(uint8(m.file))
	w.bytes(m.token)
	return w.b
}

func decodeWordSearchReq(b []byte) (wordSearchReq, error) {
	r := &reader{b: b}
	m := wordSearchReq{file: FileID(r.u8())}
	m.token = append([]byte(nil), r.bytes()...)
	return m, r.done()
}

// wordSearchResp lists the RIDs whose blobs contain the token.
type wordSearchResp struct {
	rids []uint64
}

func (m wordSearchResp) encode() []byte {
	w := &writer{}
	w.u32(uint32(len(m.rids)))
	for _, r := range m.rids {
		w.u64(r)
	}
	return w.b
}

func decodeWordSearchResp(b []byte) (wordSearchResp, error) {
	r := &reader{b: b}
	n := int(r.u32())
	m := wordSearchResp{}
	for i := 0; i < n && r.err == nil; i++ {
		m.rids = append(m.rids, r.u64())
	}
	return m, r.done()
}

// nodeImage is a node's full serialized bucket inventory across all
// files — what a spare site needs to take over the node's identity.
// The encoding is deterministic (files by ID, buckets by address), so
// byte-identical logical state yields byte-identical images; that is
// what lets the LH*RS parity machinery in internal/rs protect images as
// opaque shards.
type nodeImage struct {
	files []fileImage
	migs  migrationImage
}

type fileImage struct {
	file    FileID
	buckets [][]byte // lhstar bucket snapshots, sorted by address
}

// migImageMarker introduces the optional migration-state section that
// follows the files section. It must be non-zero: images predating the
// section end in zero padding, and decodeNodeImage distinguishes the
// two by this byte.
const migImageMarker uint8 = 0x4D

// migrationImage is a node's in-flight two-phase migration state as it
// rides inside the node image: outgoing sets (source side), absorbed
// sets (target side), and the durable outcomes of finished migrations.
// All slices are sorted by migration ID for deterministic encoding.
type migrationImage struct {
	outgoing []migRecord
	absorbed []migRecord
	done     []migDone
}

func (m migrationImage) empty() bool {
	return len(m.outgoing) == 0 && len(m.absorbed) == 0 && len(m.done) == 0
}

func encodeMigRecords(w *writer, recs []migRecord) {
	w.u32(uint32(len(recs)))
	for _, rec := range recs {
		rec.migrateHeader.encodeTo(w)
		w.u32(uint32(len(rec.keys)))
		for _, k := range rec.keys {
			w.u64(k)
		}
	}
}

func decodeMigRecords(r *reader) []migRecord {
	n := int(r.u32())
	var out []migRecord
	for i := 0; i < n && r.err == nil; i++ {
		var rec migRecord
		rec.migrateHeader.decodeFrom(r)
		nk := r.bound(r.u32(), 8)
		for j := 0; j < nk && r.err == nil; j++ {
			rec.keys = append(rec.keys, r.u64())
		}
		out = append(out, rec)
	}
	return out
}

func (m nodeImage) encode() []byte {
	w := &writer{}
	w.u32(uint32(len(m.files)))
	for _, f := range m.files {
		w.u8(uint8(f.file))
		w.u32(uint32(len(f.buckets)))
		for _, b := range f.buckets {
			w.bytes(b)
		}
	}
	if !m.migs.empty() {
		w.u8(migImageMarker)
		w.u8(1) // section version
		encodeMigRecords(w, m.migs.outgoing)
		encodeMigRecords(w, m.migs.absorbed)
		w.u32(uint32(len(m.migs.done)))
		for _, d := range m.migs.done {
			w.u64(d.mid)
			w.u8(d.outcome)
		}
	}
	return w.b
}

// decodeNodeImage decodes a node image, tolerating trailing zero bytes:
// parity-group shards are zero-padded to a common length, and a
// recovered image comes back with that padding attached.
func decodeNodeImage(b []byte) (nodeImage, error) {
	r := &reader{b: b}
	nf := int(r.u32())
	m := nodeImage{}
	for i := 0; i < nf && r.err == nil; i++ {
		f := fileImage{file: FileID(r.u8())}
		nb := int(r.u32())
		for j := 0; j < nb && r.err == nil; j++ {
			f.buckets = append(f.buckets, append([]byte(nil), r.bytes()...))
		}
		m.files = append(m.files, f)
	}
	if r.err == nil && r.off < len(r.b) && r.b[r.off] == migImageMarker {
		r.u8() // marker
		if v := r.u8(); r.err == nil && v != 1 {
			return m, fmt.Errorf("sdds: unknown migration image section version %d", v)
		}
		m.migs.outgoing = decodeMigRecords(r)
		m.migs.absorbed = decodeMigRecords(r)
		nd := r.bound(r.u32(), 9)
		for i := 0; i < nd && r.err == nil; i++ {
			m.migs.done = append(m.migs.done, migDone{mid: r.u64(), outcome: r.u8()})
		}
	}
	if r.err != nil {
		return m, r.err
	}
	for _, x := range r.b[r.off:] {
		if x != 0 {
			return m, fmt.Errorf("sdds: %d trailing payload bytes", len(r.b)-r.off)
		}
	}
	return m, nil
}

// queryToSearchReq converts a compiled core.Query to the wire form.
func queryToSearchReq(file FileID, q *core.Query, m0, kSites int) searchReq {
	m := searchReq{file: file, kSites: uint8(kSites), slotBits: uint8(SlotBits(m0, kSites))}
	for _, s := range q.Series {
		m.series = append(m.series, searchSeries{
			a:        uint16(s.A),
			patterns: s.Patterns,
		})
	}
	return m
}
