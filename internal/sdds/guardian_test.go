package sdds

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/transport"
)

// guardedCluster builds an n-node memory cluster plus the plumbing a
// recovery scenario needs: kill (unregister) and revive (fresh empty
// node) handles.
type guardedCluster struct {
	cluster *Cluster
	mem     *transport.Memory
	place   *Placement
	tr      transport.Transport
	nodes   map[transport.NodeID]*Node // originals, for partition-heal scenarios
}

func newGuardedCluster(t *testing.T, n int) *guardedCluster {
	t.Helper()
	mem := transport.NewMemory()
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	place, err := NewPlacement(ids)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make(map[transport.NodeID]*Node, n)
	for _, id := range ids {
		node := NewNode(id, mem, place)
		nodes[id] = node
		mem.Register(id, node.Handler())
	}
	return &guardedCluster{cluster: NewCluster(mem, place), mem: mem, place: place, tr: mem, nodes: nodes}
}

func (g *guardedCluster) kill(ids ...transport.NodeID) {
	for _, id := range ids {
		g.mem.Unregister(id)
	}
}

// healPartition re-registers the original node objects — the node comes
// back with its state intact, as after a healed network partition (vs
// reviveEmpty, which models a fresh replacement site).
func (g *guardedCluster) healPartition(ids ...transport.NodeID) {
	for _, id := range ids {
		g.mem.Register(id, g.nodes[id].Handler())
	}
}

func (g *guardedCluster) reviveEmpty(ids ...transport.NodeID) {
	for _, id := range ids {
		node := NewNode(id, g.tr, g.place)
		g.mem.Register(id, node.Handler())
	}
}

// loadRecords inserts count records and returns the values by key.
func loadRecords(t *testing.T, c *Cluster, count int) map[uint64][]byte {
	t.Helper()
	ctx := context.Background()
	c.SetMaxLoad(FileRecords, 8)
	want := make(map[uint64][]byte, count)
	for k := uint64(0); k < uint64(count); k++ {
		v := []byte(fmt.Sprintf("value-%06d-%s", k, strings.Repeat("x", int(k%13))))
		if err := c.Put(ctx, FileRecords, k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	return want
}

func verifyRecords(t *testing.T, c *Cluster, want map[uint64][]byte) {
	t.Helper()
	ctx := context.Background()
	for k, v := range want {
		got, ok, err := c.Get(ctx, FileRecords, k)
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		if !ok || string(got) != string(v) {
			t.Fatalf("Get(%d) = %q %v, want %q — record lost in recovery", k, got, ok, v)
		}
	}
}

// TestGuardianRecoversAnyFLeqKFailures is the LH*RS availability claim
// at node granularity: with k parity shards, every failure set of size
// f <= k is recoverable with zero record loss.
func TestGuardianRecoversAnyFLeqKFailures(t *testing.T) {
	const n, k = 5, 2
	ctx := context.Background()
	// Try every failure set of size 1 and 2 over the 5 nodes.
	var failureSets [][]transport.NodeID
	for i := 0; i < n; i++ {
		failureSets = append(failureSets, []transport.NodeID{transport.NodeID(i)})
		for j := i + 1; j < n; j++ {
			failureSets = append(failureSets, []transport.NodeID{transport.NodeID(i), transport.NodeID(j)})
		}
	}
	for _, dead := range failureSets {
		gc := newGuardedCluster(t, n)
		want := loadRecords(t, gc.cluster, 160)
		guard, err := NewGuardian(gc.tr, gc.place, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := guard.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		if ok, err := guard.Scrub(); err != nil || !ok {
			t.Fatalf("scrub after sync: %v %v", ok, err)
		}

		gc.kill(dead...)
		// Dead nodes are really dead: operations touching them fail.
		deadHit := false
		for kk := uint64(0); kk < 160 && !deadHit; kk++ {
			if _, _, err := gc.cluster.Get(ctx, FileRecords, kk); err != nil {
				deadHit = true
			}
		}
		if !deadHit {
			t.Fatalf("killing %v did not disturb any read", dead)
		}

		gc.reviveEmpty(dead...)
		if err := guard.Recover(ctx, dead); err != nil {
			t.Fatalf("recover %v: %v", dead, err)
		}
		verifyRecords(t, gc.cluster, want)
	}
}

// TestGuardianFailsLoudlyBeyondK: f = k+1 failures exceed the MDS bound
// and must be rejected with an explicit error, not silent corruption.
func TestGuardianFailsLoudlyBeyondK(t *testing.T) {
	const n, k = 5, 2
	ctx := context.Background()
	gc := newGuardedCluster(t, n)
	loadRecords(t, gc.cluster, 80)
	guard, err := NewGuardian(gc.tr, gc.place, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	dead := []transport.NodeID{0, 2, 4} // k+1 = 3 failures
	gc.kill(dead...)
	gc.reviveEmpty(dead...)
	err = guard.Recover(ctx, dead)
	if err == nil {
		t.Fatal("recovery of k+1 failures succeeded — MDS bound violated")
	}
	if !strings.Contains(err.Error(), "recover") {
		t.Errorf("err = %v", err)
	}
}

// TestGuardianRecoveryPointIsLastSync: writes after the last Sync are
// not recoverable (documented LH*RS semantics with explicit sync), but
// everything up to the sync point is.
func TestGuardianRecoveryPointIsLastSync(t *testing.T) {
	const n, k = 4, 1
	ctx := context.Background()
	gc := newGuardedCluster(t, n)
	want := loadRecords(t, gc.cluster, 100)
	guard, err := NewGuardian(gc.tr, gc.place, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// A write after the sync point, landing on the node we will kill.
	lateKey := uint64(100)
	if err := gc.cluster.Put(ctx, FileRecords, lateKey, []byte("late")); err != nil {
		t.Fatal(err)
	}
	addr := gc.cluster.Image(FileRecords).Address(lateKey)
	victim := gc.place.NodeOf(addr)

	gc.kill(victim)
	gc.reviveEmpty(victim)
	if err := guard.Recover(ctx, []transport.NodeID{victim}); err != nil {
		t.Fatal(err)
	}
	verifyRecords(t, gc.cluster, want)
	if _, ok, err := gc.cluster.Get(ctx, FileRecords, lateKey); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("write after sync point survived — recovery point is wrong")
	}
}

// TestGuardianRequiresSyncBeforeRecover and rejects foreign nodes.
func TestGuardianPreconditions(t *testing.T) {
	gc := newGuardedCluster(t, 3)
	guard, err := NewGuardian(gc.tr, gc.place, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Recover before any Sync must fail with the dedicated sentinel so a
	// repair supervisor can distinguish "nothing to restore" from a real
	// parity failure.
	if err := guard.Recover(ctx, []transport.NodeID{0}); !errors.Is(err, ErrNeverSynced) {
		t.Errorf("recover before any sync: err = %v, want ErrNeverSynced", err)
	}
	if _, _, ok := guard.SyncedImage(0); ok {
		t.Error("SyncedImage available before any sync")
	}
	if guard.Synced() {
		t.Error("Synced() true before any sync")
	}
	if err := guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := guard.Recover(ctx, []transport.NodeID{17}); err == nil {
		t.Error("recover of unprotected node succeeded")
	}
	if err := guard.Recover(ctx, nil); err != nil {
		t.Errorf("empty recover should be a no-op: %v", err)
	}
}

// TestGuardianSyncFailsOnUnreachableNode: syncing around a hole would
// silently stale that node's recovery point; it must fail instead.
func TestGuardianSyncFailsOnUnreachableNode(t *testing.T) {
	gc := newGuardedCluster(t, 3)
	loadRecords(t, gc.cluster, 30)
	guard, err := NewGuardian(gc.tr, gc.place, 1)
	if err != nil {
		t.Fatal(err)
	}
	gc.kill(1)
	if err := guard.Sync(context.Background()); err == nil {
		t.Error("sync with unreachable node succeeded")
	}
}

// TestGuardianMultiFileRecovery: both the record file and the index
// file live on the same nodes; recovery must restore every file.
func TestGuardianMultiFileRecovery(t *testing.T) {
	const n, k = 4, 2
	ctx := context.Background()
	gc := newGuardedCluster(t, n)
	want := loadRecords(t, gc.cluster, 60)
	// Populate a second file too.
	for kk := uint64(0); kk < 40; kk++ {
		if err := gc.cluster.Put(ctx, FileIndex, kk<<3, []byte{byte(kk)}); err != nil {
			t.Fatal(err)
		}
	}
	guard, err := NewGuardian(gc.tr, gc.place, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	dead := []transport.NodeID{0, 3}
	gc.kill(dead...)
	gc.reviveEmpty(dead...)
	if err := guard.Recover(ctx, dead); err != nil {
		t.Fatal(err)
	}
	verifyRecords(t, gc.cluster, want)
	for kk := uint64(0); kk < 40; kk++ {
		v, ok, err := gc.cluster.Get(ctx, FileIndex, kk<<3)
		if err != nil || !ok || v[0] != byte(kk) {
			t.Fatalf("index file record %d lost: %v %v %v", kk, v, ok, err)
		}
	}
}
