// Package stats provides the statistical machinery the paper uses to
// evaluate the encrypted searchable SDDS: n-gram frequency analysis with
// χ²-against-uniform scores (Tables 1–5), top-k frequency tables, Shannon
// entropy, and a NIST-style randomness battery (the [S99]/[R&al01] tests
// §6 points to) for judging how close index records come to random bits.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Symbol is one element of an analyzed sequence: a raw byte, a Stage-2
// code value, or a dispersed piece. Values must be below 2^16.
type Symbol uint32

// maxSymbol bounds symbol values so that up to 4 of them pack into a
// uint64 map key.
const maxSymbol = 1 << 16

// NGramCounter counts sliding-window n-grams over symbol sequences.
type NGramCounter struct {
	n      int
	counts map[uint64]uint64
	total  uint64
}

// NewNGramCounter returns a counter for n-grams, 1 <= n <= 4.
func NewNGramCounter(n int) *NGramCounter {
	if n < 1 || n > 4 {
		panic(fmt.Sprintf("stats: n-gram size %d, want 1..4", n))
	}
	return &NGramCounter{n: n, counts: make(map[uint64]uint64)}
}

// N returns the gram size.
func (c *NGramCounter) N() int { return c.n }

func (c *NGramCounter) key(gram []Symbol) uint64 {
	var k uint64
	for _, s := range gram {
		if uint32(s) >= maxSymbol {
			panic(fmt.Sprintf("stats: symbol %d exceeds %d", s, maxSymbol-1))
		}
		k = k<<16 | uint64(s)
	}
	return k
}

func (c *NGramCounter) unkey(k uint64) []Symbol {
	gram := make([]Symbol, c.n)
	for i := c.n - 1; i >= 0; i-- {
		gram[i] = Symbol(k & (maxSymbol - 1))
		k >>= 16
	}
	return gram
}

// Add counts every n-gram of seq with a sliding window of stride 1.
// Sequences shorter than n contribute nothing. n-grams never span
// sequence boundaries — each record is counted separately, as in the
// paper's per-record database scans.
func (c *NGramCounter) Add(seq []Symbol) {
	if len(seq) < c.n {
		return
	}
	gram := make([]Symbol, c.n)
	for i := 0; i+c.n <= len(seq); i++ {
		copy(gram, seq[i:i+c.n])
		c.counts[c.key(gram)]++
		c.total++
	}
}

// AddBytes counts the n-grams of a byte sequence.
func (c *NGramCounter) AddBytes(b []byte) {
	seq := make([]Symbol, len(b))
	for i, x := range b {
		seq[i] = Symbol(x)
	}
	c.Add(seq)
}

// Total returns the number of counted n-grams.
func (c *NGramCounter) Total() uint64 { return c.total }

// Distinct returns the number of distinct n-grams observed.
func (c *NGramCounter) Distinct() int { return len(c.counts) }

// Count returns the count of one particular gram.
func (c *NGramCounter) Count(gram []Symbol) uint64 {
	if len(gram) != c.n {
		panic(fmt.Sprintf("stats: gram length %d, want %d", len(gram), c.n))
	}
	return c.counts[c.key(gram)]
}

// ChiSquare returns the χ² statistic of the observed n-gram distribution
// against the uniform distribution over alphabetSize^n cells, including
// the never-observed cells (each contributes E). This is the statistic
// of the paper's Tables 1–5: large values mean a spiky, attackable
// distribution; values near the degrees of freedom (cells−1) mean the
// sequence is statistically close to uniform.
func (c *NGramCounter) ChiSquare(alphabetSize int) float64 {
	if alphabetSize < 1 {
		panic("stats: alphabet size must be positive")
	}
	if c.total == 0 {
		return 0
	}
	cells := math.Pow(float64(alphabetSize), float64(c.n))
	e := float64(c.total) / cells
	var chi float64
	for _, o := range c.counts {
		d := float64(o) - e
		chi += d * d / e
	}
	// Unobserved cells each contribute (0-E)^2/E = E.
	chi += (cells - float64(len(c.counts))) * e
	return chi
}

// DegreesOfFreedom returns alphabetSize^n − 1.
func (c *NGramCounter) DegreesOfFreedom(alphabetSize int) float64 {
	return math.Pow(float64(alphabetSize), float64(c.n)) - 1
}

// Entropy returns the empirical Shannon entropy of the n-gram
// distribution in bits per n-gram.
func (c *NGramCounter) Entropy() float64 {
	if c.total == 0 {
		return 0
	}
	var h float64
	t := float64(c.total)
	for _, o := range c.counts {
		p := float64(o) / t
		h -= p * math.Log2(p)
	}
	return h
}

// GramCount is one row of a frequency table.
type GramCount struct {
	Gram  []Symbol
	Count uint64
	// Frac is Count/Total.
	Frac float64
}

// Top returns the k most frequent n-grams in decreasing order (ties
// broken by gram value for determinism).
func (c *NGramCounter) Top(k int) []GramCount {
	type kv struct {
		key   uint64
		count uint64
	}
	all := make([]kv, 0, len(c.counts))
	for key, count := range c.counts {
		all = append(all, kv{key, count})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].key < all[j].key
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]GramCount, k)
	for i := 0; i < k; i++ {
		out[i] = GramCount{
			Gram:  c.unkey(all[i].key),
			Count: all[i].count,
			Frac:  float64(all[i].count) / float64(c.total),
		}
	}
	return out
}

// GramString renders a gram of byte-range symbols as a string, using
// digits for small code values and characters for printable bytes.
func GramString(gram []Symbol) string {
	printable := true
	for _, s := range gram {
		if s < 32 || s > 126 {
			printable = false
			break
		}
	}
	if printable {
		b := make([]byte, len(gram))
		for i, s := range gram {
			b[i] = byte(s)
		}
		return string(b)
	}
	out := ""
	for i, s := range gram {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d", s)
	}
	return out
}

// ChiSquareTable computes the single/doublet/triplet χ² triple the paper
// reports for every experiment, over one pass of the given sequences.
type ChiSquareTable struct {
	Single, Double, Triple float64
	Singles                *NGramCounter
	Doubles                *NGramCounter
	Triples                *NGramCounter
}

// AnalyzeSequences builds the χ² table for symbol sequences drawn from an
// alphabet of the given size.
func AnalyzeSequences(seqs [][]Symbol, alphabetSize int) *ChiSquareTable {
	t := &ChiSquareTable{
		Singles: NewNGramCounter(1),
		Doubles: NewNGramCounter(2),
		Triples: NewNGramCounter(3),
	}
	for _, s := range seqs {
		t.Singles.Add(s)
		t.Doubles.Add(s)
		t.Triples.Add(s)
	}
	t.Single = t.Singles.ChiSquare(alphabetSize)
	t.Double = t.Doubles.ChiSquare(alphabetSize)
	t.Triple = t.Triples.ChiSquare(alphabetSize)
	return t
}

// AnalyzeBytes is AnalyzeSequences for raw byte records over a restricted
// alphabet: alphabet lists the symbols that occur (others panic), and the
// χ² space is |alphabet|^n. The paper's Table 1 uses the directory's own
// symbol set as the alphabet.
func AnalyzeBytes(records [][]byte, alphabet []byte) *ChiSquareTable {
	index := make(map[byte]Symbol, len(alphabet))
	for i, b := range alphabet {
		index[b] = Symbol(i)
	}
	seqs := make([][]Symbol, len(records))
	for i, r := range records {
		seq := make([]Symbol, len(r))
		for j, b := range r {
			s, ok := index[b]
			if !ok {
				panic(fmt.Sprintf("stats: symbol %q not in alphabet", b))
			}
			seq[j] = s
		}
		seqs[i] = seq
	}
	return AnalyzeSequences(seqs, len(alphabet))
}

// Alphabet returns the sorted set of distinct bytes in the records.
func Alphabet(records [][]byte) []byte {
	var present [256]bool
	for _, r := range records {
		for _, b := range r {
			present[b] = true
		}
	}
	out := make([]byte, 0, 64)
	for b := 0; b < 256; b++ {
		if present[b] {
			out = append(out, byte(b))
		}
	}
	return out
}
