package stats

import (
	"errors"
	"math"
)

// This file implements a NIST SP 800-22-style randomness battery — the
// direction §6 of the paper points to for assessing how close dispersed,
// chunked, preprocessed index records come to true random bits. Each test
// returns a p-value: under the null hypothesis "the stream is random",
// p-values are uniform on (0,1), and a p-value below the significance
// level (conventionally 0.01) rejects randomness.

// Bits is a bit stream stored most-significant-bit first in bytes.
type Bits struct {
	data []byte
	n    int // number of valid bits
}

// NewBits wraps a byte slice holding n valid bits.
func NewBits(data []byte, n int) (*Bits, error) {
	if n < 0 || n > len(data)*8 {
		return nil, errors.New("stats: bit count out of range")
	}
	return &Bits{data: data, n: n}, nil
}

// BitsFromBytes treats every bit of data as part of the stream.
func BitsFromBytes(data []byte) *Bits {
	return &Bits{data: data, n: len(data) * 8}
}

// BitsFromSymbols packs the low `width` bits of every symbol into a
// stream — the natural way to view a sequence of Stage-2 codes or
// dispersed pieces as bits.
func BitsFromSymbols(syms []Symbol, width uint) (*Bits, error) {
	if width < 1 || width > 16 {
		return nil, errors.New("stats: symbol width out of range 1..16")
	}
	n := len(syms) * int(width)
	data := make([]byte, (n+7)/8)
	pos := 0
	for _, s := range syms {
		for b := int(width) - 1; b >= 0; b-- {
			if s>>uint(b)&1 == 1 {
				data[pos/8] |= 1 << uint(7-pos%8)
			}
			pos++
		}
	}
	return &Bits{data: data, n: n}, nil
}

// Len returns the number of bits.
func (b *Bits) Len() int { return b.n }

// Bit returns bit i (0 or 1).
func (b *Bits) Bit(i int) int {
	return int(b.data[i/8] >> uint(7-i%8) & 1)
}

// Ones returns the number of one bits.
func (b *Bits) Ones() int {
	ones := 0
	for i := 0; i < b.n; i++ {
		ones += b.Bit(i)
	}
	return ones
}

// ErrShortStream reports a stream too short for a test's requirements.
var ErrShortStream = errors.New("stats: bit stream too short for test")

// Monobit runs the NIST frequency (monobit) test: the proportion of ones
// should be close to 1/2. Requires at least 100 bits.
func Monobit(b *Bits) (pvalue float64, err error) {
	if b.n < 100 {
		return 0, ErrShortStream
	}
	s := 2*b.Ones() - b.n // sum of ±1
	sObs := math.Abs(float64(s)) / math.Sqrt(float64(b.n))
	return math.Erfc(sObs / math.Sqrt2), nil
}

// BlockFrequency runs the NIST block frequency test with block size m.
func BlockFrequency(b *Bits, m int) (pvalue float64, err error) {
	if m < 2 || b.n < 2*m {
		return 0, ErrShortStream
	}
	nBlocks := b.n / m
	var chi float64
	for i := 0; i < nBlocks; i++ {
		ones := 0
		for j := 0; j < m; j++ {
			ones += b.Bit(i*m + j)
		}
		pi := float64(ones) / float64(m)
		chi += (pi - 0.5) * (pi - 0.5)
	}
	chi *= 4 * float64(m)
	return igamc(float64(nBlocks)/2, chi/2), nil
}

// Runs runs the NIST runs test: the number of maximal same-bit runs
// should match the expectation for a random stream. It presupposes the
// monobit test roughly passes; when the ones proportion deviates too far
// the test reports p = 0 as NIST prescribes.
func Runs(b *Bits) (pvalue float64, err error) {
	if b.n < 100 {
		return 0, ErrShortStream
	}
	n := float64(b.n)
	pi := float64(b.Ones()) / n
	if math.Abs(pi-0.5) >= 2/math.Sqrt(n) {
		return 0, nil
	}
	runs := 1
	for i := 1; i < b.n; i++ {
		if b.Bit(i) != b.Bit(i-1) {
			runs++
		}
	}
	num := math.Abs(float64(runs) - 2*n*pi*(1-pi))
	den := 2 * math.Sqrt(2*n) * pi * (1 - pi)
	return math.Erfc(num / den), nil
}

// Serial runs the NIST serial test with pattern length m, returning the
// first p-value (∇ψ²). It measures whether every m-bit pattern occurs
// equally often — the bit-level analogue of the paper's doublet/triplet
// χ² tables.
func Serial(b *Bits, m int) (pvalue float64, err error) {
	if m < 2 || b.n < 1<<uint(m+1) {
		return 0, ErrShortStream
	}
	psi := func(mm int) float64 {
		if mm == 0 {
			return 0
		}
		counts := make([]uint64, 1<<uint(mm))
		// Wrap around as NIST does: extend the sequence with its first
		// mm-1 bits.
		for i := 0; i < b.n; i++ {
			v := 0
			for j := 0; j < mm; j++ {
				v = v<<1 | b.Bit((i+j)%b.n)
			}
			counts[v]++
		}
		var sum float64
		for _, c := range counts {
			sum += float64(c) * float64(c)
		}
		return sum*float64(int(1)<<uint(mm))/float64(b.n) - float64(b.n)
	}
	d1 := psi(m) - psi(m-1)
	return igamc(math.Pow(2, float64(m-2)), d1/2), nil
}

// ApproximateEntropy runs the NIST approximate entropy test with block
// length m.
func ApproximateEntropy(b *Bits, m int) (pvalue float64, err error) {
	if m < 1 || b.n < 1<<uint(m+2) {
		return 0, ErrShortStream
	}
	phi := func(mm int) float64 {
		counts := make([]uint64, 1<<uint(mm))
		for i := 0; i < b.n; i++ {
			v := 0
			for j := 0; j < mm; j++ {
				v = v<<1 | b.Bit((i+j)%b.n)
			}
			counts[v]++
		}
		var sum float64
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(b.n)
				sum += p * math.Log(p)
			}
		}
		return sum
	}
	apen := phi(m) - phi(m+1)
	chi := 2 * float64(b.n) * (math.Ln2 - apen)
	return igamc(math.Pow(2, float64(m-1)), chi/2), nil
}

// TestResult is one battery entry.
type TestResult struct {
	Name   string
	P      float64
	Passed bool // P >= 0.01
	Err    error
}

// Battery runs the full randomness battery on a stream with conventional
// parameters and a 0.01 significance level.
func Battery(b *Bits) []TestResult {
	type tc struct {
		name string
		run  func() (float64, error)
	}
	tests := []tc{
		{"monobit", func() (float64, error) { return Monobit(b) }},
		{"block-frequency(m=128)", func() (float64, error) { return BlockFrequency(b, 128) }},
		{"runs", func() (float64, error) { return Runs(b) }},
		{"longest-run(m=8)", func() (float64, error) { return LongestRunOfOnes(b) }},
		{"cumulative-sums", func() (float64, error) { return CumulativeSums(b) }},
		{"serial(m=4)", func() (float64, error) { return Serial(b, 4) }},
		{"approx-entropy(m=4)", func() (float64, error) { return ApproximateEntropy(b, 4) }},
	}
	out := make([]TestResult, 0, len(tests))
	for _, tt := range tests {
		p, err := tt.run()
		out = append(out, TestResult{Name: tt.name, P: p, Passed: err == nil && p >= 0.01, Err: err})
	}
	return out
}

// igamc is the complemented (upper) regularized incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a), the tail probability of a χ² distribution with
// 2a degrees of freedom at 2x. Implementation follows the classic
// Cephes/Numerical-Recipes split: series for x < a+1, continued fraction
// otherwise.
func igamc(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - igamSeries(a, x)
	}
	return igamcCF(a, x)
}

// igamSeries computes the lower regularized incomplete gamma P(a, x) by
// series expansion.
func igamSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// igamcCF computes Q(a, x) by continued fraction (modified Lentz).
func igamcCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareP returns the p-value of a χ² statistic with the given degrees
// of freedom — the tail probability under the null hypothesis. It lets
// callers turn the paper's raw χ² numbers into accept/reject decisions.
func ChiSquareP(chi, dof float64) float64 {
	if dof <= 0 {
		return math.NaN()
	}
	return igamc(dof/2, chi/2)
}

// CumulativeSums runs the NIST cumulative-sums (cusum) test, forward
// mode: the maximum partial sum of ±1 bits should stay near zero for a
// random stream.
func CumulativeSums(b *Bits) (pvalue float64, err error) {
	if b.n < 100 {
		return 0, ErrShortStream
	}
	var s, z int
	for i := 0; i < b.n; i++ {
		s += 2*b.Bit(i) - 1
		if s > z {
			z = s
		} else if -s > z {
			z = -s
		}
	}
	n := float64(b.n)
	zf := float64(z)
	sqrtN := math.Sqrt(n)
	// NIST SP 800-22 §2.13 reference distribution.
	var sum1, sum2 float64
	kLo := int(math.Floor((-n/zf + 1) / 4))
	kHi := int(math.Floor((n/zf - 1) / 4))
	for k := kLo; k <= kHi; k++ {
		sum1 += phi(float64(4*k+1)*zf/sqrtN) - phi(float64(4*k-1)*zf/sqrtN)
	}
	kLo = int(math.Floor((-n/zf - 3) / 4))
	for k := kLo; k <= kHi; k++ {
		sum2 += phi(float64(4*k+3)*zf/sqrtN) - phi(float64(4*k+1)*zf/sqrtN)
	}
	p := 1 - sum1 + sum2
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// phi is the standard normal CDF.
func phi(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// LongestRunOfOnes runs the NIST longest-run-of-ones test with the
// 128-bit-block parameterization (M=8 requires >= 128 bits).
func LongestRunOfOnes(b *Bits) (pvalue float64, err error) {
	if b.n < 128 {
		return 0, ErrShortStream
	}
	// M=8 parameterization: categories <=1,2,3,>=4 with NIST's pi.
	const m = 8
	pi := []float64{0.2148, 0.3672, 0.2305, 0.1875}
	nBlocks := b.n / m
	var v [4]uint64
	for i := 0; i < nBlocks; i++ {
		longest, run := 0, 0
		for j := 0; j < m; j++ {
			if b.Bit(i*m+j) == 1 {
				run++
				if run > longest {
					longest = run
				}
			} else {
				run = 0
			}
		}
		switch {
		case longest <= 1:
			v[0]++
		case longest == 2:
			v[1]++
		case longest == 3:
			v[2]++
		default:
			v[3]++
		}
	}
	var chi float64
	for i := range v {
		e := float64(nBlocks) * pi[i]
		d := float64(v[i]) - e
		chi += d * d / e
	}
	return igamc(1.5, chi/2), nil
}
