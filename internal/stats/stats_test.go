package stats

import (
	"math"
	"testing"
)

func TestNewNGramCounterValidation(t *testing.T) {
	for _, n := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d: expected panic", n)
				}
			}()
			NewNGramCounter(n)
		}()
	}
}

func TestSingleCounts(t *testing.T) {
	c := NewNGramCounter(1)
	c.AddBytes([]byte("AABAC"))
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
	if c.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", c.Distinct())
	}
	if got := c.Count([]Symbol{'A'}); got != 3 {
		t.Errorf("Count(A) = %d, want 3", got)
	}
	if got := c.Count([]Symbol{'B'}); got != 1 {
		t.Errorf("Count(B) = %d, want 1", got)
	}
}

func TestDoubletSlidingWindow(t *testing.T) {
	c := NewNGramCounter(2)
	c.AddBytes([]byte("ABAB"))
	// Sliding doublets: AB, BA, AB.
	if c.Total() != 3 {
		t.Errorf("Total = %d, want 3", c.Total())
	}
	if got := c.Count([]Symbol{'A', 'B'}); got != 2 {
		t.Errorf("Count(AB) = %d, want 2", got)
	}
	if got := c.Count([]Symbol{'B', 'A'}); got != 1 {
		t.Errorf("Count(BA) = %d, want 1", got)
	}
}

func TestNoCrossBoundaryGrams(t *testing.T) {
	c := NewNGramCounter(2)
	c.AddBytes([]byte("AB"))
	c.AddBytes([]byte("CD"))
	if got := c.Count([]Symbol{'B', 'C'}); got != 0 {
		t.Errorf("BC counted across records: %d", got)
	}
	if c.Total() != 2 {
		t.Errorf("Total = %d, want 2", c.Total())
	}
}

func TestShortSequenceIgnored(t *testing.T) {
	c := NewNGramCounter(3)
	c.AddBytes([]byte("AB"))
	if c.Total() != 0 {
		t.Error("3-grams counted in a 2-symbol record")
	}
}

func TestChiSquareUniformIsZero(t *testing.T) {
	// A perfectly uniform distribution over the full alphabet gives
	// χ² = 0.
	c := NewNGramCounter(1)
	seq := make([]Symbol, 400)
	for i := range seq {
		seq[i] = Symbol(i % 4)
	}
	c.Add(seq)
	if chi := c.ChiSquare(4); chi != 0 {
		t.Errorf("uniform χ² = %g, want 0", chi)
	}
}

func TestChiSquareSpikeIsLarge(t *testing.T) {
	// All mass on one symbol of a 4-letter alphabet: χ² = 3N.
	c := NewNGramCounter(1)
	seq := make([]Symbol, 1000)
	c.Add(seq) // all zeros
	want := 3.0 * 1000
	if chi := c.ChiSquare(4); math.Abs(chi-want) > 1e-9 {
		t.Errorf("spike χ² = %g, want %g", chi, want)
	}
}

func TestChiSquareCountsUnobservedCells(t *testing.T) {
	// Two symbols uniform over an alphabet of 4: observed cells give
	// (N/2 - N/4)²/(N/4) each = N/8·2 = N/4... plus two empty cells at
	// E = N/4 each. For N=100: 2*(50-25)²/25 + 2*25 = 50 + 50 = 100.
	c := NewNGramCounter(1)
	seq := make([]Symbol, 100)
	for i := range seq {
		seq[i] = Symbol(i % 2)
	}
	c.Add(seq)
	if chi := c.ChiSquare(4); math.Abs(chi-100) > 1e-9 {
		t.Errorf("χ² = %g, want 100", chi)
	}
}

func TestChiSquareEmptyCounter(t *testing.T) {
	c := NewNGramCounter(1)
	if chi := c.ChiSquare(4); chi != 0 {
		t.Errorf("empty χ² = %g", chi)
	}
}

func TestEntropy(t *testing.T) {
	c := NewNGramCounter(1)
	seq := make([]Symbol, 256)
	for i := range seq {
		seq[i] = Symbol(i % 4)
	}
	c.Add(seq)
	if h := c.Entropy(); math.Abs(h-2) > 1e-9 {
		t.Errorf("uniform-4 entropy = %g, want 2", h)
	}
	c2 := NewNGramCounter(1)
	c2.Add(make([]Symbol, 100))
	if h := c2.Entropy(); h != 0 {
		t.Errorf("constant entropy = %g, want 0", h)
	}
}

func TestTop(t *testing.T) {
	c := NewNGramCounter(1)
	c.AddBytes([]byte("AAABBC"))
	top := c.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top(2) returned %d", len(top))
	}
	if top[0].Gram[0] != 'A' || top[0].Count != 3 {
		t.Errorf("top[0] = %v", top[0])
	}
	if top[1].Gram[0] != 'B' || top[1].Count != 2 {
		t.Errorf("top[1] = %v", top[1])
	}
	if math.Abs(top[0].Frac-0.5) > 1e-9 {
		t.Errorf("top[0].Frac = %g", top[0].Frac)
	}
	// k beyond distinct count clips.
	if got := c.Top(10); len(got) != 3 {
		t.Errorf("Top(10) returned %d, want 3", len(got))
	}
}

func TestGramString(t *testing.T) {
	if s := GramString([]Symbol{'A', 'N'}); s != "AN" {
		t.Errorf("GramString = %q", s)
	}
	if s := GramString([]Symbol{0, 3}); s != "0,3" {
		t.Errorf("GramString = %q", s)
	}
}

func TestAnalyzeSequences(t *testing.T) {
	seqs := [][]Symbol{{0, 1, 2, 3}, {0, 1, 2, 3}}
	tab := AnalyzeSequences(seqs, 4)
	if tab.Singles.Total() != 8 || tab.Doubles.Total() != 6 || tab.Triples.Total() != 4 {
		t.Errorf("totals: %d %d %d", tab.Singles.Total(), tab.Doubles.Total(), tab.Triples.Total())
	}
	if tab.Single != 0 {
		t.Errorf("uniform singles χ² = %g", tab.Single)
	}
	// Doublets are concentrated on 3 of 16 cells — χ² must be large.
	if tab.Double < 10 {
		t.Errorf("doublet χ² = %g, want large", tab.Double)
	}
	if tab.Triple < tab.Double {
		t.Errorf("triple χ² %g < double %g for structured data", tab.Triple, tab.Double)
	}
}

func TestAnalyzeBytesAndAlphabet(t *testing.T) {
	recs := [][]byte{[]byte("ANNA"), []byte("AANA")}
	alpha := Alphabet(recs)
	if string(alpha) != "AN" {
		t.Fatalf("Alphabet = %q", alpha)
	}
	tab := AnalyzeBytes(recs, alpha)
	// 5 As and 3 Ns in 8 symbols over a 2-letter alphabet:
	// χ² = (5-4)²/4 + (3-4)²/4 = 0.5.
	if math.Abs(tab.Single-0.5) > 1e-9 {
		t.Errorf("single χ² = %g, want 0.5", tab.Single)
	}
}

func TestAnalyzeBytesRejectsForeignSymbol(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for symbol outside alphabet")
		}
	}()
	AnalyzeBytes([][]byte{[]byte("AB")}, []byte("A"))
}

func TestCountValidation(t *testing.T) {
	c := NewNGramCounter(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong gram length")
		}
	}()
	c.Count([]Symbol{1})
}
