package stats

import (
	"math"
	"testing"
)

// lcgBytes produces deterministic pseudorandom bytes good enough to pass
// the battery (a full-period 64-bit LCG with output mixing).
func lcgBytes(n int, seed uint64) []byte {
	out := make([]byte, n)
	s := seed
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = byte(s >> 33)
	}
	return out
}

func TestNewBitsValidation(t *testing.T) {
	if _, err := NewBits([]byte{0xFF}, 9); err == nil {
		t.Error("bit count beyond data accepted")
	}
	if _, err := NewBits([]byte{0xFF}, -1); err == nil {
		t.Error("negative bit count accepted")
	}
	b, err := NewBits([]byte{0b10100000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 || b.Bit(0) != 1 || b.Bit(1) != 0 || b.Bit(2) != 1 {
		t.Error("bit accessors wrong")
	}
	if b.Ones() != 2 {
		t.Errorf("Ones = %d, want 2", b.Ones())
	}
}

func TestBitsFromSymbols(t *testing.T) {
	// Symbols 0b10, 0b01, 0b11 at width 2 → bits 100111.
	b, err := BitsFromSymbols([]Symbol{2, 1, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 0, 1, 1, 1}
	if b.Len() != 6 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i, w := range want {
		if b.Bit(i) != w {
			t.Errorf("bit %d = %d, want %d", i, b.Bit(i), w)
		}
	}
	if _, err := BitsFromSymbols(nil, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := BitsFromSymbols(nil, 17); err == nil {
		t.Error("width 17 accepted")
	}
}

func TestMonobitPassesOnRandom(t *testing.T) {
	b := BitsFromBytes(lcgBytes(4096, 1))
	p, err := Monobit(b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("random stream rejected: p = %g", p)
	}
}

func TestMonobitRejectsBiased(t *testing.T) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = 0xFF
	}
	p, err := Monobit(BitsFromBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("all-ones stream accepted: p = %g", p)
	}
}

func TestMonobitShortStream(t *testing.T) {
	if _, err := Monobit(BitsFromBytes(make([]byte, 4))); err != ErrShortStream {
		t.Errorf("err = %v, want ErrShortStream", err)
	}
}

func TestBlockFrequency(t *testing.T) {
	p, err := BlockFrequency(BitsFromBytes(lcgBytes(4096, 2)), 128)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("random stream rejected: p = %g", p)
	}
	// Alternating halves of 0x00 and 0xFF blocks fail badly.
	data := make([]byte, 1024)
	for i := 512; i < 1024; i++ {
		data[i] = 0xFF
	}
	p, err = BlockFrequency(BitsFromBytes(data), 128)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("blocky stream accepted: p = %g", p)
	}
	if _, err := BlockFrequency(BitsFromBytes(lcgBytes(8, 1)), 128); err != ErrShortStream {
		t.Error("short stream accepted")
	}
}

func TestRuns(t *testing.T) {
	p, err := Runs(BitsFromBytes(lcgBytes(4096, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("random stream rejected: p = %g", p)
	}
	// Alternating 0101… has far too many runs.
	data := make([]byte, 1024)
	for i := range data {
		data[i] = 0x55
	}
	p, err = Runs(BitsFromBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("alternating stream accepted: p = %g", p)
	}
}

func TestRunsPrerequisiteFailure(t *testing.T) {
	// Heavily biased stream: Runs reports p = 0 without running.
	data := make([]byte, 256)
	p, err := Runs(BitsFromBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("biased stream p = %g, want 0", p)
	}
}

func TestSerial(t *testing.T) {
	p, err := Serial(BitsFromBytes(lcgBytes(4096, 4)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("random stream rejected: p = %g", p)
	}
	// A repeating 0xF0 pattern concentrates 4-bit patterns.
	data := make([]byte, 1024)
	for i := range data {
		data[i] = 0xF0
	}
	p, err = Serial(BitsFromBytes(data), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("patterned stream accepted: p = %g", p)
	}
	if _, err := Serial(BitsFromBytes(lcgBytes(2, 1)), 4); err != ErrShortStream {
		t.Error("short stream accepted")
	}
}

func TestApproximateEntropy(t *testing.T) {
	p, err := ApproximateEntropy(BitsFromBytes(lcgBytes(4096, 5)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("random stream rejected: p = %g", p)
	}
	data := make([]byte, 1024) // constant zeros: minimal entropy
	p, err = ApproximateEntropy(BitsFromBytes(data), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("constant stream accepted: p = %g", p)
	}
}

func TestBattery(t *testing.T) {
	results := Battery(BitsFromBytes(lcgBytes(8192, 6)))
	if len(results) != 7 {
		t.Fatalf("battery ran %d tests", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
		if !r.Passed {
			t.Errorf("%s failed on random input: p = %g", r.Name, r.P)
		}
	}
	// The battery must flag constant data.
	flagged := 0
	for _, r := range Battery(BitsFromBytes(make([]byte, 8192))) {
		if !r.Passed {
			flagged++
		}
	}
	if flagged < 4 {
		t.Errorf("only %d tests flagged constant data", flagged)
	}
}

func TestIgamcKnownValues(t *testing.T) {
	// Q(a, x) for a=0.5 equals erfc(sqrt(x)).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := math.Erfc(math.Sqrt(x))
		got := igamc(0.5, x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("igamc(0.5, %g) = %g, want %g", x, got, want)
		}
	}
	// Q(1, x) = exp(-x).
	for _, x := range []float64{0.1, 1, 3, 10} {
		want := math.Exp(-x)
		got := igamc(1, x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("igamc(1, %g) = %g, want %g", x, got, want)
		}
	}
	if igamc(1, 0) != 1 {
		t.Error("igamc(a, 0) != 1")
	}
	if !math.IsNaN(igamc(-1, 1)) || !math.IsNaN(igamc(1, -1)) {
		t.Error("invalid arguments should give NaN")
	}
}

func TestChiSquareP(t *testing.T) {
	// χ² with 1 dof at 3.841 → p ≈ 0.05.
	p := ChiSquareP(3.841, 1)
	if math.Abs(p-0.05) > 0.001 {
		t.Errorf("p(3.841, 1) = %g, want ≈0.05", p)
	}
	// χ² with 3 dof at 7.815 → p ≈ 0.05.
	p = ChiSquareP(7.815, 3)
	if math.Abs(p-0.05) > 0.001 {
		t.Errorf("p(7.815, 3) = %g, want ≈0.05", p)
	}
	// Huge statistic → essentially zero.
	if p := ChiSquareP(1e6, 255); p > 1e-100 {
		t.Errorf("huge χ² p = %g", p)
	}
	if !math.IsNaN(ChiSquareP(1, 0)) {
		t.Error("dof=0 should give NaN")
	}
}

func TestCumulativeSums(t *testing.T) {
	p, err := CumulativeSums(BitsFromBytes(lcgBytes(4096, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("random stream rejected: p = %g", p)
	}
	// Strong drift: many more ones than zeros.
	data := make([]byte, 1024)
	for i := range data {
		data[i] = 0xFE
	}
	p, err = CumulativeSums(BitsFromBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("drifting stream accepted: p = %g", p)
	}
	if _, err := CumulativeSums(BitsFromBytes(make([]byte, 4))); err != ErrShortStream {
		t.Error("short stream accepted")
	}
}

func TestLongestRunOfOnes(t *testing.T) {
	p, err := LongestRunOfOnes(BitsFromBytes(lcgBytes(4096, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("random stream rejected: p = %g", p)
	}
	// All ones: every block's longest run is 8.
	data := make([]byte, 1024)
	for i := range data {
		data[i] = 0xFF
	}
	p, err = LongestRunOfOnes(BitsFromBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("all-ones stream accepted: p = %g", p)
	}
	if _, err := LongestRunOfOnes(BitsFromBytes(make([]byte, 4))); err != ErrShortStream {
		t.Error("short stream accepted")
	}
}

func TestBatteryIncludesNewTests(t *testing.T) {
	results := Battery(BitsFromBytes(lcgBytes(8192, 9)))
	if len(results) != 7 {
		t.Fatalf("battery ran %d tests, want 7", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Name] = true
	}
	if !names["longest-run(m=8)"] || !names["cumulative-sums"] {
		t.Error("new tests missing from battery")
	}
}
