// Package lhstar implements LH*, the scalable distributed linear-hashing
// data structure of Litwin, Neimat and Schneider [LNS96] that the paper
// uses as its storage substrate for both the record-store file and every
// index file.
//
// An LH* file is a set of buckets numbered 0..2^i+n−1, where (i, n) is
// the file state: i is the level and n the split pointer. A key C lives
// in bucket h_i(C) = C mod 2^i, except that buckets below the split
// pointer have already split and use h_{i+1}. The file grows one bucket
// at a time — bucket n splits into n and n+2^i — so the address space
// expands gracefully and each split moves only ~half of one bucket.
//
// Clients keep a possibly outdated image (i′, n′) of the file state and
// address buckets with it; a server that receives a key outside its
// range forwards it (at most twice, a proved LH* bound) and the final
// server sends the client an Image Adjustment Message (IAM) so the same
// mistake is never repeated. This package provides the pure addressing
// mathematics, the bucket structure, and a single-process File that the
// distributed layer (internal/sdds) composes with real transports.
package lhstar

import "fmt"

// Image is a client's view (i′, n′) of the file state. The zero Image
// (level 0, pointer 0 — one bucket) is the correct initial image.
type Image struct {
	// I is the image level i′.
	I uint
	// N is the image split pointer n′ < 2^I.
	N uint64
}

// Address computes the client-side address of key under the image:
// a = h_i′(C), corrected to h_{i′+1}(C) when a < n′.
func (img Image) Address(key uint64) uint64 {
	a := key % (1 << img.I)
	if a < img.N {
		a = key % (1 << (img.I + 1))
	}
	return a
}

// Buckets returns the number of buckets the image implies: 2^i′ + n′.
func (img Image) Buckets() uint64 { return 1<<img.I + img.N }

// Adjust applies an Image Adjustment Message: the address a and level j
// of a bucket that exists in the file. Following [LNS96], the client
// sets i′ = j−1 and n′ = a+1. Two normalizations keep the image provable
// from the IAM alone (so it never overshoots the true file state):
//
//   - a bucket with a ≥ 2^(j−1) is a new bucket of the current round, so
//     the provable split pointer is a+1−2^(j−1), not a+1;
//   - n′ = 2^i′ exactly means the round completed: level up.
func (img *Image) Adjust(a uint64, j uint) {
	if j == 0 {
		return
	}
	i := j - 1
	n := a + 1
	if n > 1<<i {
		n -= 1 << i
	} else if n == 1<<i {
		n = 0
		i++
	}
	// Never regress: only adopt the new image if it implies more
	// buckets.
	if (Image{I: i, N: n}).Buckets() > img.Buckets() {
		img.I = i
		img.N = n
	}
}

// ServerAddress runs the LH* server-side address computation at a bucket
// with address a and level j for a key: it returns the bucket the key
// belongs to from this bucket's perspective and whether a forward is
// needed. The classical guarantee is that following these forwards
// reaches the owning bucket in at most two hops from any starting point.
func ServerAddress(a uint64, j uint, key uint64) (next uint64, forward bool) {
	a1 := key % (1 << j)
	if a1 == a {
		return a, false
	}
	if j > 0 {
		a2 := key % (1 << (j - 1))
		if a2 > a && a2 < a1 {
			a1 = a2
		}
	}
	return a1, true
}

// State is the true file state held by the (logical) split coordinator.
type State struct {
	// I is the file level.
	I uint
	// N is the split pointer, 0 <= N < 2^I.
	N uint64
}

// Buckets returns the bucket count 2^I + N.
func (s State) Buckets() uint64 { return 1<<s.I + s.N }

// Image returns the exact image of the state.
func (s State) Image() Image { return Image{I: s.I, N: s.N} }

// Address computes the true address of a key.
func (s State) Address(key uint64) uint64 { return s.Image().Address(key) }

// BucketLevel returns the level of bucket a in state s: buckets below
// the split pointer or at/above 2^I have level I+1, others level I.
func (s State) BucketLevel(a uint64) uint {
	if a < s.N || a >= 1<<s.I {
		return s.I + 1
	}
	return s.I
}

// NextSplit returns the address of the next bucket to split (the split
// pointer) and the address of the bucket its upper half will move to.
func (s State) NextSplit() (from, to uint64) {
	return s.N, s.N + 1<<s.I
}

// AdvanceSplit moves the state past one split.
func (s *State) AdvanceSplit() {
	s.N++
	if s.N == 1<<s.I {
		s.N = 0
		s.I++
	}
}

// RetreatSplit undoes one split (file shrink). It reports false at the
// initial single-bucket state.
func (s *State) RetreatSplit() bool {
	if s.N == 0 {
		if s.I == 0 {
			return false
		}
		s.I--
		s.N = 1 << s.I
	}
	s.N--
	return true
}

// Record is one key/value pair stored in a bucket.
type Record struct {
	Key   uint64
	Value []byte
}

// Bucket is one LH* bucket: a level-tagged key/value store.
type Bucket struct {
	addr  uint64
	level uint
	recs  map[uint64][]byte
}

// NewBucket creates an empty bucket with the given address and level.
func NewBucket(addr uint64, level uint) *Bucket {
	return &Bucket{addr: addr, level: level, recs: make(map[uint64][]byte)}
}

// Addr returns the bucket's address.
func (b *Bucket) Addr() uint64 { return b.addr }

// Level returns the bucket's level.
func (b *Bucket) Level() uint { return b.level }

// Len returns the number of records.
func (b *Bucket) Len() int { return len(b.recs) }

// Belongs reports whether key addresses to this bucket at its level.
func (b *Bucket) Belongs(key uint64) bool {
	return key%(1<<b.level) == b.addr
}

// Put stores a record, replacing any existing value. It reports whether
// the key was new.
func (b *Bucket) Put(key uint64, value []byte) bool {
	_, existed := b.recs[key]
	b.recs[key] = value
	return !existed
}

// Get retrieves a record's value.
func (b *Bucket) Get(key uint64) ([]byte, bool) {
	v, ok := b.recs[key]
	return v, ok
}

// Delete removes a record, reporting whether it existed.
func (b *Bucket) Delete(key uint64) bool {
	_, ok := b.recs[key]
	delete(b.recs, key)
	return ok
}

// Scan calls fn for every record until fn returns false. Iteration
// order is unspecified.
func (b *Bucket) Scan(fn func(key uint64, value []byte) bool) {
	for k, v := range b.recs {
		if !fn(k, v) {
			return
		}
	}
}

// SplitInto raises the bucket's level by one and moves every record that
// no longer belongs into the destination bucket (which must have address
// addr + 2^level and the new level). It returns the number of records
// moved — typically about half, the linear-hashing balance property.
func (b *Bucket) SplitInto(dst *Bucket) (moved int, err error) {
	newLevel := b.level + 1
	wantAddr := b.addr + 1<<b.level
	if dst.addr != wantAddr {
		return 0, fmt.Errorf("lhstar: split destination address %d, want %d", dst.addr, wantAddr)
	}
	if dst.level != newLevel {
		return 0, fmt.Errorf("lhstar: split destination level %d, want %d", dst.level, newLevel)
	}
	b.level = newLevel
	for k, v := range b.recs {
		if k%(1<<newLevel) != b.addr {
			dst.recs[k] = v
			delete(b.recs, k)
			moved++
		}
	}
	return moved, nil
}

// MergeFrom undoes a split: it absorbs all records of src (which must be
// this bucket's split image) and lowers this bucket's level.
func (b *Bucket) MergeFrom(src *Bucket) error {
	if b.level == 0 {
		return fmt.Errorf("lhstar: cannot merge into level-0 bucket")
	}
	wantAddr := b.addr + 1<<(b.level-1)
	if src.addr != wantAddr {
		return fmt.Errorf("lhstar: merge source address %d, want %d", src.addr, wantAddr)
	}
	for k, v := range src.recs {
		b.recs[k] = v
	}
	src.recs = make(map[uint64][]byte)
	b.level--
	return nil
}
