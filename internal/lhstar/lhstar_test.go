package lhstar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestImageAddressInitial(t *testing.T) {
	img := Image{}
	for _, k := range []uint64{0, 1, 7, 1 << 40} {
		if a := img.Address(k); a != 0 {
			t.Errorf("initial image Address(%d) = %d, want 0", k, a)
		}
	}
	if img.Buckets() != 1 {
		t.Errorf("initial Buckets = %d", img.Buckets())
	}
}

func TestImageAddressSplitPointer(t *testing.T) {
	// i=1, n=1: buckets 0,1,2. Keys ≡ 0 (mod 2) below the pointer use
	// h_2.
	img := Image{I: 1, N: 1}
	cases := []struct{ key, want uint64 }{
		{0, 0}, {2, 2}, {4, 0}, {6, 2}, // even keys split by h_2
		{1, 1}, {3, 1}, {5, 1}, {7, 1}, // odd keys stay at bucket 1
	}
	for _, c := range cases {
		if got := img.Address(c.key); got != c.want {
			t.Errorf("Address(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	if img.Buckets() != 3 {
		t.Errorf("Buckets = %d, want 3", img.Buckets())
	}
}

func TestImageAdjustMonotone(t *testing.T) {
	img := Image{}
	img.Adjust(2, 2) // bucket 2, level 2 → i'=1, n'=3 → normalize: i'=2, n'=0? (3 >= 2^1)
	if img.Buckets() < 2 {
		t.Errorf("image did not grow: %+v", img)
	}
	before := img.Buckets()
	img.Adjust(0, 1) // stale IAM must not regress the image
	if img.Buckets() < before {
		t.Errorf("image regressed from %d to %d buckets", before, img.Buckets())
	}
	// j = 0 is a no-op.
	img2 := Image{I: 3, N: 2}
	img2.Adjust(5, 0)
	if img2 != (Image{I: 3, N: 2}) {
		t.Error("Adjust with level 0 changed image")
	}
}

func TestServerAddressOwnership(t *testing.T) {
	// Bucket 3 at level 2 owns keys ≡ 3 (mod 4).
	for _, key := range []uint64{3, 7, 11, 103} {
		next, fwd := ServerAddress(3, 2, key)
		if fwd || next != 3 {
			t.Errorf("key %d: next=%d fwd=%v, want owned", key, next, fwd)
		}
	}
	// Key 2 does not belong to bucket 3.
	if _, fwd := ServerAddress(3, 2, 2); !fwd {
		t.Error("key 2 should forward from bucket 3")
	}
}

func TestStateMachine(t *testing.T) {
	var s State
	if s.Buckets() != 1 {
		t.Fatal("initial state")
	}
	seq := []struct {
		buckets uint64
		i       uint
		n       uint64
	}{
		{2, 1, 0}, {3, 1, 1}, {4, 2, 0}, {5, 2, 1}, {6, 2, 2}, {7, 2, 3}, {8, 3, 0},
	}
	for _, want := range seq {
		s.AdvanceSplit()
		if s.Buckets() != want.buckets || s.I != want.i || s.N != want.n {
			t.Fatalf("after split: %+v, want %+v", s, want)
		}
	}
	for i := len(seq) - 2; i >= 0; i-- {
		if !s.RetreatSplit() {
			t.Fatal("RetreatSplit failed")
		}
		want := seq[i]
		if s.Buckets() != want.buckets {
			t.Fatalf("after retreat: %+v, want %d buckets", s, want.buckets)
		}
	}
	s = State{}
	if s.RetreatSplit() {
		t.Error("retreat from initial state should fail")
	}
}

func TestBucketLevel(t *testing.T) {
	s := State{I: 2, N: 1} // buckets 0..4; bucket 0 split, bucket 4 new
	cases := []struct {
		a    uint64
		want uint
	}{
		{0, 3}, {1, 2}, {2, 2}, {3, 2}, {4, 3},
	}
	for _, c := range cases {
		if got := s.BucketLevel(c.a); got != c.want {
			t.Errorf("BucketLevel(%d) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestBucketBasics(t *testing.T) {
	b := NewBucket(1, 1)
	if b.Addr() != 1 || b.Level() != 1 || b.Len() != 0 {
		t.Fatal("constructor fields")
	}
	if !b.Belongs(3) || b.Belongs(2) {
		t.Error("Belongs wrong")
	}
	if !b.Put(3, []byte("x")) {
		t.Error("first Put should report new")
	}
	if b.Put(3, []byte("y")) {
		t.Error("second Put should report replace")
	}
	v, ok := b.Get(3)
	if !ok || string(v) != "y" {
		t.Error("Get after replace")
	}
	if !b.Delete(3) || b.Delete(3) {
		t.Error("Delete semantics")
	}
}

func TestBucketSplitMerge(t *testing.T) {
	b := NewBucket(0, 0)
	for k := uint64(0); k < 100; k++ {
		b.Put(k, []byte{byte(k)})
	}
	dst := NewBucket(1, 1)
	moved, err := b.SplitInto(dst)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 50 || b.Len() != 50 || dst.Len() != 50 {
		t.Fatalf("moved %d, left %d, dst %d", moved, b.Len(), dst.Len())
	}
	if b.Level() != 1 {
		t.Error("source level not raised")
	}
	b.Scan(func(k uint64, _ []byte) bool {
		if k%2 != 0 {
			t.Fatalf("odd key %d left in bucket 0", k)
		}
		return true
	})
	// Merge back.
	if err := b.MergeFrom(dst); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 100 || dst.Len() != 0 || b.Level() != 0 {
		t.Error("merge did not restore")
	}
}

func TestSplitIntoValidation(t *testing.T) {
	b := NewBucket(0, 0)
	if _, err := b.SplitInto(NewBucket(2, 1)); err == nil {
		t.Error("wrong destination address accepted")
	}
	b2 := NewBucket(0, 0)
	if _, err := b2.SplitInto(NewBucket(1, 2)); err == nil {
		t.Error("wrong destination level accepted")
	}
	if err := NewBucket(0, 0).MergeFrom(NewBucket(1, 1)); err == nil {
		t.Error("merge into level-0 accepted")
	}
}

func TestFileInsertLookupDelete(t *testing.T) {
	f := NewFile(8)
	img := &Image{}
	for k := uint64(0); k < 1000; k++ {
		f.Insert(img, k, []byte{byte(k), byte(k >> 8)})
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Buckets() < 2 {
		t.Error("file did not grow")
	}
	for k := uint64(0); k < 1000; k++ {
		v, ok := f.Lookup(img, k)
		if !ok || v[0] != byte(k) {
			t.Fatalf("Lookup(%d) failed", k)
		}
	}
	if _, ok := f.Lookup(img, 5000); ok {
		t.Error("phantom key found")
	}
	for k := uint64(0); k < 500; k++ {
		if !f.Delete(img, k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if f.Delete(img, 0) {
		t.Error("double delete succeeded")
	}
	if f.Len() != 500 {
		t.Errorf("Len = %d after deletes", f.Len())
	}
}

func TestFileGrowsAndShrinks(t *testing.T) {
	f := NewFile(8)
	for k := uint64(0); k < 2000; k++ {
		f.Insert(nil, k, []byte("v"))
	}
	grown := f.Buckets()
	if grown < 100 {
		t.Fatalf("only %d buckets after 2000 inserts at load 8", grown)
	}
	for k := uint64(0); k < 2000; k++ {
		f.Delete(nil, k)
	}
	if f.Len() != 0 {
		t.Fatal("records remain")
	}
	if got := f.Buckets(); got >= grown {
		t.Errorf("file did not shrink: %d -> %d buckets", grown, got)
	}
	splits, merges, _, _ := f.Stats()
	if splits == 0 || merges == 0 {
		t.Errorf("splits=%d merges=%d", splits, merges)
	}
}

// TestStaleImageAlwaysReachesOwner is the LH* core theorem: a client
// with an arbitrarily stale image reaches the right bucket in at most
// two forward hops, and IAMs only improve the image.
func TestStaleImageAlwaysReachesOwner(t *testing.T) {
	f := NewFile(4)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 3000)
	for i := range keys {
		keys[i] = rng.Uint64() >> 8
		f.Insert(nil, keys[i], []byte{1}) // grow with a perfect client
	}
	// A brand-new client with the initial image must find every key;
	// route panics if any chain exceeds 2 hops.
	stale := &Image{}
	for _, k := range keys {
		if _, ok := f.Lookup(stale, k); !ok {
			t.Fatalf("stale client missed key %d", k)
		}
	}
	// The image must have improved along the way.
	if stale.Buckets() == 1 {
		t.Error("image never adjusted despite forwards")
	}
	// And must never overshoot the true state.
	if stale.Buckets() > f.Buckets() {
		t.Errorf("image overshoots: %d > %d", stale.Buckets(), f.Buckets())
	}
}

// TestImageConvergence: after enough lookups the client image stops
// causing forwards for previously accessed buckets.
func TestImageConvergence(t *testing.T) {
	f := NewFile(4)
	for k := uint64(0); k < 500; k++ {
		f.Insert(nil, k, []byte{1})
	}
	img := &Image{}
	for k := uint64(0); k < 500; k++ {
		f.Lookup(img, k)
	}
	_, _, forwardsBefore, _ := f.Stats()
	// Second pass: the converged image should produce almost no new
	// forwards (Lookup doesn't count forwards in Stats; use Insert).
	for k := uint64(0); k < 500; k++ {
		f.Insert(img, k, []byte{2})
	}
	_, _, forwardsAfter, _ := f.Stats()
	newForwards := forwardsAfter - forwardsBefore
	if newForwards > 25 { // 5% slack for residual staleness
		t.Errorf("converged image still caused %d forwards", newForwards)
	}
}

func TestScan(t *testing.T) {
	f := NewFile(8)
	want := make(map[uint64]bool)
	for k := uint64(0); k < 300; k++ {
		f.Insert(nil, k, []byte{byte(k)})
		want[k] = true
	}
	got := make(map[uint64]bool)
	f.Scan(func(k uint64, v []byte) bool {
		if got[k] {
			t.Fatalf("key %d scanned twice", k)
		}
		got[k] = true
		return true
	})
	if len(got) != len(want) {
		t.Errorf("scanned %d records, want %d", len(got), len(want))
	}
	// Early stop.
	n := 0
	f.Scan(func(uint64, []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop scanned %d", n)
	}
}

func TestScanBucket(t *testing.T) {
	f := NewFile(4)
	for k := uint64(0); k < 100; k++ {
		f.Insert(nil, k, []byte{1})
	}
	total := 0
	for a := uint64(0); a < f.Buckets(); a++ {
		if err := f.ScanBucket(a, func(uint64, []byte) bool { total++; return true }); err != nil {
			t.Fatal(err)
		}
	}
	if total != 100 {
		t.Errorf("bucket scans covered %d records", total)
	}
	if err := f.ScanBucket(9999, func(uint64, []byte) bool { return true }); err == nil {
		t.Error("missing bucket accepted")
	}
}

func TestLoadFactorBounded(t *testing.T) {
	f := NewFile(16)
	for k := uint64(0); k < 5000; k++ {
		f.Insert(nil, k, []byte{1})
	}
	if lf := f.LoadFactor(); lf > 16.5 {
		t.Errorf("load factor %f exceeds threshold", lf)
	}
}

// Property: client addressing with the exact image equals the state's
// own address function, for arbitrary states.
func TestAddressConsistencyQuick(t *testing.T) {
	prop := func(key uint64, iRaw uint8, nRaw uint64) bool {
		i := uint(iRaw % 20)
		n := nRaw % (1 << i)
		s := State{I: i, N: n}
		return s.Address(key) == s.Image().Address(key)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the two-hop forwarding bound holds from the address any
// valid (lagging) client image computes, for any file configuration.
// LH* does not promise the bound from arbitrary buckets — only from
// image-derived guesses.
func TestTwoHopBoundQuick(t *testing.T) {
	prop := func(key uint64, iRaw uint8, nRaw uint64, imgIRaw uint8, imgNRaw uint64) bool {
		i := uint(iRaw%16) + 1
		n := nRaw % (1 << i)
		s := State{I: i, N: n}
		imgI := uint(imgIRaw) % (i + 1)
		imgN := imgNRaw % (1 << imgI)
		img := Image{I: imgI, N: imgN}
		if img.Buckets() > s.Buckets() {
			return true // not a lagging image; out of scope
		}
		a := img.Address(key)
		for hops := 0; hops <= 2; hops++ {
			level := s.BucketLevel(a)
			next, fwd := ServerAddress(a, level, key)
			if !fwd {
				return a == s.Address(key)
			}
			a = next
			if a >= s.Buckets() {
				return false
			}
		}
		return false // needed more than 2 hops
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestStateNextSplit(t *testing.T) {
	s := State{I: 2, N: 1}
	from, to := s.NextSplit()
	if from != 1 || to != 5 {
		t.Errorf("NextSplit = (%d, %d), want (1, 5)", from, to)
	}
}

func TestFileStateAccessors(t *testing.T) {
	f := NewFile(0) // 0 selects DefaultMaxLoad
	if f.Buckets() != 1 || f.Len() != 0 {
		t.Error("fresh file state")
	}
	st := f.State()
	if st.I != 0 || st.N != 0 {
		t.Errorf("State = %+v", st)
	}
	for k := uint64(0); k < uint64(DefaultMaxLoad+2); k++ {
		f.Insert(nil, k, []byte{1})
	}
	if f.Buckets() < 2 {
		t.Error("default-load file never split")
	}
}

func TestLookupAdjustsImage(t *testing.T) {
	f := NewFile(4)
	for k := uint64(0); k < 200; k++ {
		f.Insert(nil, k, []byte{1})
	}
	img := &Image{}
	// A lookup that forwards must adjust the image.
	f.Lookup(img, 3)
	f.Lookup(img, 77)
	if img.Buckets() == 1 {
		t.Error("Lookup never adjusted the stale image")
	}
}

func TestDeleteMissingKeyNoMerge(t *testing.T) {
	f := NewFile(4)
	for k := uint64(0); k < 100; k++ {
		f.Insert(nil, k, []byte{1})
	}
	before := f.Buckets()
	if f.Delete(nil, 99999) {
		t.Error("phantom delete succeeded")
	}
	if f.Buckets() != before {
		t.Error("failed delete changed bucket count")
	}
}

func TestSnapshotEmptyBucket(t *testing.T) {
	b := NewBucket(3, 1)
	snap := b.Snapshot()
	got, err := RestoreBucket(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr() != 3 || got.Level() != 1 || got.Len() != 0 {
		t.Error("empty snapshot round trip")
	}
	// Garbage level detected.
	bad := append([]byte(nil), snap...)
	bad[15] = 0xFF // level bytes
	if _, err := RestoreBucket(bad); err == nil {
		t.Error("implausible level accepted")
	}
}
