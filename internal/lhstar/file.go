package lhstar

import (
	"fmt"
	"sync"
)

// File is a single-process LH* file: the coordinator state plus all
// buckets in one address space. It exercises exactly the algorithms the
// distributed layer runs across nodes — including client-image
// addressing, server forwarding, and IAMs — so the distributed engine
// can be validated against it. Safe for concurrent use.
type File struct {
	mu       sync.RWMutex
	state    State
	buckets  map[uint64]*Bucket
	maxLoad  int // split threshold: records per bucket
	minLoad  int // merge threshold (0 disables shrinking)
	size     int // total records
	splits   int // total splits performed
	merges   int // total merges performed
	forwards int // total forward hops across operations
	iamsSent int // total image adjustments issued
}

// DefaultMaxLoad is the default split threshold.
const DefaultMaxLoad = 64

// NewFile creates a file with one empty bucket. maxLoad is the per-
// bucket record threshold that triggers a split (<=0 selects
// DefaultMaxLoad).
func NewFile(maxLoad int) *File {
	if maxLoad <= 0 {
		maxLoad = DefaultMaxLoad
	}
	f := &File{
		buckets: make(map[uint64]*Bucket),
		maxLoad: maxLoad,
		minLoad: maxLoad / 4,
	}
	f.buckets[0] = NewBucket(0, 0)
	return f
}

// State returns the current coordinator state.
func (f *File) State() State {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.state
}

// Buckets returns the current bucket count.
func (f *File) Buckets() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.state.Buckets()
}

// Len returns the total number of records.
func (f *File) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.size
}

// Stats reports cumulative counters: splits, merges, forward hops, and
// IAMs issued.
func (f *File) Stats() (splits, merges, forwards, iams int) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.splits, f.merges, f.forwards, f.iamsSent
}

// route walks the LH* forwarding chain from the address the image
// implies to the owning bucket, counting hops. It must be called with
// the lock held.
func (f *File) route(img Image, key uint64) (*Bucket, int) {
	a := img.Address(key)
	// An outdated image can even point past the current bucket count
	// only if it overshot, which Adjust prevents; clamp defensively.
	if a >= f.state.Buckets() {
		a = f.state.Address(key)
	}
	hops := 0
	for {
		b := f.buckets[a]
		next, fwd := ServerAddress(b.addr, b.level, key)
		if !fwd {
			return b, hops
		}
		a = next
		hops++
		if hops > 2 {
			// The LH* bound guarantees <= 2 hops; exceeding it means a
			// broken invariant, which must never be masked.
			panic(fmt.Sprintf("lhstar: forwarding chain exceeded 2 hops for key %d", key))
		}
	}
}

// Insert stores a record using the client image img, returning the IAM
// information (final bucket address and level) and whether the image
// should be adjusted. A nil image uses the exact state (a local
// "perfect client").
func (f *File) Insert(img *Image, key uint64, value []byte) (iamAddr uint64, iamLevel uint, adjusted bool) {
	f.mu.Lock()
	use := f.exactImage(img)
	b, hops := f.route(use, key)
	if b.Put(key, value) {
		f.size++
	}
	f.forwards += hops
	iamAddr, iamLevel = b.addr, b.level
	if hops > 0 && img != nil {
		img.Adjust(iamAddr, iamLevel)
		f.iamsSent++
		adjusted = true
	}
	f.maybeSplit()
	f.mu.Unlock()
	return iamAddr, iamLevel, adjusted
}

// Lookup retrieves a record using the client image.
func (f *File) Lookup(img *Image, key uint64) ([]byte, bool) {
	f.mu.RLock()
	use := f.exactImage(img)
	b, hops := f.route(use, key)
	v, ok := b.Get(key)
	f.mu.RUnlock()
	if hops > 0 && img != nil {
		img.Adjust(b.addr, b.level)
	}
	return v, ok
}

// Delete removes a record using the client image, reporting whether it
// existed.
func (f *File) Delete(img *Image, key uint64) bool {
	f.mu.Lock()
	use := f.exactImage(img)
	b, _ := f.route(use, key)
	ok := b.Delete(key)
	if ok {
		f.size--
		f.maybeMerge()
	}
	f.mu.Unlock()
	return ok
}

func (f *File) exactImage(img *Image) Image {
	if img == nil {
		return f.state.Image()
	}
	return *img
}

// Scan calls fn for every record in the file (all buckets) until fn
// returns false — the parallel-scan primitive the paper's searches use.
func (f *File) Scan(fn func(key uint64, value []byte) bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for a := uint64(0); a < f.state.Buckets(); a++ {
		stop := false
		f.buckets[a].Scan(func(k uint64, v []byte) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// ScanBucket scans a single bucket by address.
func (f *File) ScanBucket(a uint64, fn func(key uint64, value []byte) bool) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	b, ok := f.buckets[a]
	if !ok {
		return fmt.Errorf("lhstar: no bucket %d", a)
	}
	b.Scan(fn)
	return nil
}

// maybeSplit performs coordinator-driven splits while any bucket exceeds
// the load threshold. Linear hashing splits bucket n regardless of which
// bucket overflowed; repeated overflow eventually rotates the pointer
// past every hot bucket. Called with the lock held.
func (f *File) maybeSplit() {
	for f.overloaded() {
		from, to := f.state.NextSplit()
		src := f.buckets[from]
		dst := NewBucket(to, src.level+1)
		if _, err := src.SplitInto(dst); err != nil {
			panic("lhstar: " + err.Error())
		}
		f.buckets[to] = dst
		f.state.AdvanceSplit()
		f.splits++
	}
}

func (f *File) overloaded() bool {
	// Split when the file-wide load factor exceeds the threshold, the
	// standard uncontrolled-split policy for linear hashing.
	return f.size > int(f.state.Buckets())*f.maxLoad
}

// maybeMerge shrinks the file while it is underloaded, one reverse split
// at a time. Called with the lock held.
func (f *File) maybeMerge() {
	if f.minLoad <= 0 {
		return
	}
	for f.state.Buckets() > 1 && f.size < int(f.state.Buckets()-1)*f.minLoad {
		st := f.state
		if !st.RetreatSplit() {
			return
		}
		from := st.N
		to := from + 1<<st.I
		dst := f.buckets[from]
		src := f.buckets[to]
		if err := dst.MergeFrom(src); err != nil {
			panic("lhstar: " + err.Error())
		}
		delete(f.buckets, to)
		f.state = st
		f.merges++
	}
}

// LoadFactor returns records per bucket.
func (f *File) LoadFactor() float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return float64(f.size) / float64(f.state.Buckets())
}
