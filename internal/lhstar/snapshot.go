package lhstar

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Snapshot serializes the bucket's contents deterministically (records
// sorted by key): header (address, level, count) followed by
// length-prefixed key/value pairs. Snapshots feed the LH*RS-style
// parity machinery in internal/rs, which protects bucket images against
// site loss.
func (b *Bucket) Snapshot() []byte {
	keys := make([]uint64, 0, len(b.recs))
	for k := range b.recs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	size := 8 + 8 + 4
	for _, k := range keys {
		size += 8 + 4 + len(b.recs[k])
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint64(out, b.addr)
	out = binary.BigEndian.AppendUint64(out, uint64(b.level))
	out = binary.BigEndian.AppendUint32(out, uint32(len(keys)))
	for _, k := range keys {
		out = binary.BigEndian.AppendUint64(out, k)
		v := b.recs[k]
		out = binary.BigEndian.AppendUint32(out, uint32(len(v)))
		out = append(out, v...)
	}
	return out
}

// RestoreBucket rebuilds a bucket from a snapshot. Trailing zero padding
// (added to equalize parity-group shard lengths) is tolerated.
func RestoreBucket(snapshot []byte) (*Bucket, error) {
	if len(snapshot) < 20 {
		return nil, fmt.Errorf("lhstar: snapshot too short (%d bytes)", len(snapshot))
	}
	addr := binary.BigEndian.Uint64(snapshot)
	level := binary.BigEndian.Uint64(snapshot[8:])
	count := binary.BigEndian.Uint32(snapshot[16:])
	if level > 64 {
		return nil, fmt.Errorf("lhstar: snapshot level %d implausible", level)
	}
	b := NewBucket(addr, uint(level))
	off := 20
	for i := uint32(0); i < count; i++ {
		if off+12 > len(snapshot) {
			return nil, fmt.Errorf("lhstar: snapshot truncated at record %d", i)
		}
		key := binary.BigEndian.Uint64(snapshot[off:])
		vlen := int(binary.BigEndian.Uint32(snapshot[off+8:]))
		off += 12
		if off+vlen > len(snapshot) {
			return nil, fmt.Errorf("lhstar: snapshot truncated in record %d value", i)
		}
		b.recs[key] = append([]byte(nil), snapshot[off:off+vlen]...)
		off += vlen
	}
	return b, nil
}
