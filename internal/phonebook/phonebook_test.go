package phonebook

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, 7)
	b := Generate(100, 7)
	c := Generate(100, 8)
	if len(a) != 100 {
		t.Fatalf("generated %d entries", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different entries")
		}
	}
	same := 0
	for i := range a {
		if a[i].Name == c[i].Name {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical directories")
	}
}

func TestPhoneNumbersUnique(t *testing.T) {
	entries := Generate(25000, 1)
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if seen[e.Phone] {
			t.Fatalf("duplicate phone %s", e.Phone)
		}
		seen[e.Phone] = true
	}
}

func TestRIDDerivation(t *testing.T) {
	e := Entry{Phone: "415-409-0271"}
	if got := e.RID(); got != 4154090271 {
		t.Errorf("RID = %d, want 4154090271", got)
	}
}

func TestRIDsUnique(t *testing.T) {
	entries := Generate(25000, 2)
	seen := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		if seen[e.RID()] {
			t.Fatalf("duplicate RID %d (%s)", e.RID(), e.Phone)
		}
		seen[e.RID()] = true
	}
}

func TestLastName(t *testing.T) {
	cases := []struct{ name, want string }{
		{"SCHWARZ THOMAS", "SCHWARZ"},
		{"AFDAHL E", "AFDAHL"},
		{"YU", "YU"},
		{"ABOGADO ALEJANDRO & CATHERINE", "ABOGADO"},
	}
	for _, c := range cases {
		if got := (Entry{Name: c.name}).LastName(); got != c.want {
			t.Errorf("LastName(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestNamesAreWellFormed(t *testing.T) {
	entries := Generate(5000, 3)
	for _, e := range entries {
		if e.Name == "" {
			t.Fatal("empty name")
		}
		if strings.ToUpper(e.Name) != e.Name {
			t.Fatalf("name %q not upper case", e.Name)
		}
		for _, r := range e.Name {
			ok := (r >= 'A' && r <= 'Z') || r == ' ' || r == '&' || r == '\'' || r == '-'
			if !ok {
				t.Fatalf("name %q contains unexpected symbol %q", e.Name, r)
			}
		}
		if strings.Contains(e.Name, "  ") {
			t.Fatalf("name %q has double space", e.Name)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	entries := Generate(2000, 4)
	for _, e := range entries {
		line := FormatRecord(e)
		if !strings.HasSuffix(line, "$$") {
			t.Fatalf("line %q missing terminator", line)
		}
		if !strings.Contains(line, "%") {
			t.Fatalf("line %q missing padding", line)
		}
		got, err := ParseRecord(line)
		if err != nil {
			t.Fatal(err)
		}
		if got != e {
			t.Fatalf("round trip: %+v != %+v", got, e)
		}
	}
}

func TestFormatMatchesFigure4Shape(t *testing.T) {
	line := FormatRecord(Entry{Name: "ADRIAN CORTEZ", Phone: "415-409-0271"})
	// Figure 4: "ADRIAN CORTEZ%%%…%415-409-0271$$".
	if !strings.HasPrefix(line, "ADRIAN CORTEZ%") {
		t.Errorf("line = %q", line)
	}
	if !strings.HasSuffix(line, "415-409-0271$$") {
		t.Errorf("line = %q", line)
	}
}

func TestParseRecordErrors(t *testing.T) {
	if _, err := ParseRecord("NOPE"); err == nil {
		t.Error("missing terminator accepted")
	}
	if _, err := ParseRecord("NAME-415$$"); err == nil {
		t.Error("missing padding accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	entries := Generate(500, 5)
	var buf bytes.Buffer
	if err := Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestSample(t *testing.T) {
	entries := Generate(1000, 6)
	s1 := Sample(entries, 100, 42)
	s2 := Sample(entries, 100, 42)
	s3 := Sample(entries, 100, 43)
	if len(s1) != 100 {
		t.Fatalf("sample size %d", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same seed sampled differently")
		}
	}
	diff := false
	for i := range s1 {
		if s1[i] != s3[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds sampled identically")
	}
	// Distinctness.
	seen := make(map[string]bool)
	for _, e := range s1 {
		if seen[e.Phone] {
			t.Fatal("sample repeated an entry")
		}
		seen[e.Phone] = true
	}
	// Oversized k clips.
	if got := Sample(entries, 5000, 1); len(got) != 1000 {
		t.Errorf("oversized sample returned %d", len(got))
	}
}

// TestCorpusShapeMatchesPaper checks the Table-1 shape criteria: a spiky
// single-letter distribution with the paper's top letters ranking high,
// χ² values exploding from singles to doublets to triplets, and a strong
// population of very short surnames.
func TestCorpusShapeMatchesPaper(t *testing.T) {
	entries := Generate(20000, 1)
	names := Names(entries)
	alpha := stats.Alphabet(names)
	tab := stats.AnalyzeBytes(names, alpha)

	if !(tab.Single > 0 && tab.Double > tab.Single && tab.Triple > tab.Double) {
		t.Errorf("χ² ordering violated: %.0f, %.0f, %.0f", tab.Single, tab.Double, tab.Triple)
	}
	// AnalyzeBytes reports grams as alphabet indices; decode them back
	// to letters before comparing.
	decode := func(g stats.GramCount) string {
		b := make([]byte, len(g.Gram))
		for i, s := range g.Gram {
			b[i] = alpha[s]
		}
		return string(b)
	}
	// Normalized per-letter spikes: A must be the most common letter and
	// the top-8 must include most of {A, E, N, R, I, O}.
	top := tab.Singles.Top(8)
	if decode(top[0]) != "A" && decode(top[1]) != "A" {
		t.Errorf("A not among the top letters: top = %v", renderAll(top, decode))
	}
	want := map[string]bool{"A": true, "E": true, "N": true, "R": true, "I": true, "O": true}
	hits := 0
	for _, g := range top {
		if want[decode(g)] {
			hits++
		}
	}
	if hits < 4 {
		t.Errorf("only %d of the paper's top letters in our top-8: %v", hits, renderAll(top, decode))
	}
	// AN must be a leading doublet.
	dtop := tab.Doubles.Top(10)
	foundAN := false
	for _, g := range dtop {
		if decode(g) == "AN" {
			foundAN = true
		}
	}
	if !foundAN {
		t.Errorf("AN not among top doublets: %v", renderAll(dtop, decode))
	}
	// Short surnames must be plentiful (the paper's FP analysis depends
	// on them).
	short := 0
	for _, e := range entries {
		if len(e.LastName()) <= 3 {
			short++
		}
	}
	if frac := float64(short) / float64(len(entries)); frac < 0.10 {
		t.Errorf("short-surname fraction %.3f, want >= 0.10", frac)
	}
}

func renderAll(gs []stats.GramCount, decode func(stats.GramCount) string) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = decode(g)
	}
	return out
}
