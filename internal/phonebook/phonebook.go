// Package phonebook generates and parses a synthetic stand-in for the
// paper's evaluation dataset, the San Francisco White Pages directory
// (282,965 entries of subscriber names keyed by telephone number).
//
// The real directory is proprietary, so this package synthesizes records
// with the same statistical shape the paper describes and exploits:
//
//   - upper-case names, surname first, many very short Asian surnames
//     (YU, WU, LEE, WOO, KIM, OU, IP, BA, LI, LE, …) that dominate the
//     paper's false-positive analysis;
//   - a spiky letter distribution topped by A, E, N, R, I, O with
//     frequent doublets AN/ER/AR/ON/IN and triplets CHA/MAR/SON/ONG/ANG
//     (Table 1);
//   - occasional joint entries ("ALEJANDRO & CATHERINE"), bare initials
//     ("AFDAHL E"), and hyphenated or apostrophized names, so the symbol
//     alphabet matches Figure 5's (letters, space, &, ', -).
//
// Generation is fully deterministic from a seed. Formatting matches the
// paper's Figure 4 extract: the name padded with '%' to a fixed width,
// a 415 telephone number, and a "$$" terminator.
package phonebook

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
)

// Entry is one directory record: the telephone number is the record
// identifier (assumed non-sensitive, as in the paper) and the name is the
// searchable record content.
type Entry struct {
	// Phone is the record identifier, e.g. "415-409-0271".
	Phone string
	// Name is the subscriber name, upper case, surname first.
	Name string
}

// RID returns the numeric record identifier derived from the phone
// number (digits only, as a uint64).
func (e Entry) RID() uint64 {
	var id uint64
	for i := 0; i < len(e.Phone); i++ {
		if c := e.Phone[i]; c >= '0' && c <= '9' {
			id = id*10 + uint64(c-'0')
		}
	}
	return id
}

// LastName returns the surname: the first space-delimited token of the
// name, mirroring the directory's SURNAME GIVEN layout.
func (e Entry) LastName() string {
	if i := strings.IndexByte(e.Name, ' '); i >= 0 {
		return e.Name[:i]
	}
	return e.Name
}

// weighted is a name with a sampling weight.
type weighted struct {
	name   string
	weight int
}

// surnames approximates the SF directory mix: a heavy short-Asian-surname
// tail (the source of the paper's false-positive storms) over a base of
// longer Western and Hispanic surnames rich in AN/ER/AR/ON/IN doublets
// and CHA/MAR/SON/ONG/ANG triplets.
var surnames = []weighted{
	// Very short, very frequent — the paper's FP villains.
	{"YU", 95}, {"OU", 90}, {"IP", 88}, {"BA", 85}, {"WU", 80},
	{"LI", 60}, {"LE", 55}, {"NG", 50}, {"HO", 45}, {"LU", 40},
	{"MA", 38}, {"SO", 30}, {"AU", 28}, {"ON", 25},
	// Short (3-letter) frequent names from the paper's chunking-FP list.
	{"WOO", 62}, {"KAY", 58}, {"KIM", 57}, {"LEE", 120}, {"SEE", 40},
	{"MAI", 42}, {"LIM", 40}, {"MAK", 38}, {"LEW", 36}, {"CHU", 34},
	{"YEE", 33}, {"LOW", 25}, {"FUNG", 30}, {"TANG", 42}, {"WANG", 55},
	{"WONG", 110}, {"CHAN", 115}, {"CHANG", 70}, {"CHEN", 85}, {"ONG", 30},
	{"HUANG", 48}, {"ZHANG", 40}, {"LIANG", 32}, {"YANG", 46}, {"KWAN", 22},
	{"CHEUNG", 38}, {"LEUNG", 40}, {"CHIN", 28}, {"CHOW", 30}, {"TRAN", 60},
	{"NGUYEN", 105}, {"PHAM", 35}, {"HOANG", 28}, {"VUONG", 14}, {"DANG", 22},
	{"LAM", 45}, {"TAM", 25}, {"FONG", 26}, {"KONG", 20}, {"TONG", 22},
	// Western / Hispanic base.
	{"ANDERSON", 60}, {"JOHNSON", 75}, {"MARTINEZ", 58}, {"GARCIA", 62},
	{"HERNANDEZ", 48}, {"RODRIGUEZ", 50}, {"FERNANDEZ", 30}, {"GONZALEZ", 46},
	{"MARTIN", 40}, {"MARINO", 18}, {"MARSHALL", 22}, {"MARLOWE", 8},
	{"CHAVEZ", 26}, {"CHAMBERS", 16}, {"CHAPMAN", 18}, {"RICHARDSON", 24},
	{"ROBINSON", 32}, {"WILSON", 44}, {"THOMPSON", 38}, {"JACKSON", 36},
	{"HARRISON", 20}, {"NELSON", 30}, {"CARLSON", 18}, {"OLSON", 16},
	{"PETERSON", 26}, {"HANSON", 18}, {"LARSON", 16}, {"SANDERS", 20},
	{"ALEXANDER", 22}, {"ARMSTRONG", 18}, {"ARNOLD", 14}, {"BARNES", 18},
	{"BENNETT", 18}, {"BRENNAN", 12}, {"CANTRELL", 8}, {"CARPENTER", 12},
	{"FRANKLIN", 14}, {"FREEMAN", 14}, {"GARDNER", 12}, {"GRANT", 12},
	{"HERMAN", 10}, {"HERNAN", 6}, {"KEARNEY", 6}, {"LANE", 10},
	{"LANDER", 8}, {"MANNING", 10}, {"MARANO", 5}, {"MERCER", 8},
	{"MILLER", 48}, {"MILLS", 14}, {"MONTGOMERY", 10}, {"MORENO", 14},
	{"MORGAN", 18}, {"MORRISON", 14}, {"NEWMAN", 12},
	{"NORMAN", 10}, {"PARKER", 22}, {"RAMIREZ", 26}, {"REARDON", 6},
	{"RIVERA", 18}, {"ROMERO", 14}, {"SANTANA", 10}, {"SANTIAGO", 10},
	{"SCHWARZ", 6}, {"SHANNON", 8}, {"SHERMAN", 10}, {"SPENCER", 12},
	{"STANTON", 8}, {"SULLIVAN", 18}, {"TANNER", 8}, {"TAYLOR", 30},
	{"TURNER", 20}, {"VARGAS", 14}, {"WAGNER", 12}, {"WARREN", 12},
	{"ABOGADO", 4}, {"ADAMS", 22}, {"ADAMSON", 6}, {"AFDAHL", 2},
	{"AKIMOTO", 5}, {"ALBAREZ", 4}, {"ALGAHIEM", 2}, {"ALGHAZALY", 2},
	{"ARBELAEZ", 3}, {"ARMENANTE", 3}, {"CORTEZ", 14}, {"DAMSTER", 1},
	{"ARELLANO", 6}, {"BRANDON", 8}, {"CALDERON", 10}, {"CAMPBELL", 20},
	{"CARRANZA", 6}, {"CASTELLANO", 5}, {"CERVANTES", 8}, {"DELGADO", 10},
	{"DURAN", 8}, {"ESCOBAR", 8}, {"ESPINOZA", 10}, {"FIGUEROA", 8},
	{"FONSECA", 5}, {"GALLARDO", 5}, {"GRANADOS", 4}, {"GUERRERO", 10},
	{"IBARRA", 6}, {"JARAMILLO", 4}, {"LITWIN", 2}, {"LOPEZ", 30},
	{"MALDONADO", 8}, {"MANCINI", 4}, {"MARQUEZ", 8}, {"MEDRANO", 4},
	{"MIRANDA", 10}, {"MONTANO", 5}, {"O'BRIEN", 14}, {"O'CONNOR", 12},
	{"O'NEILL", 10}, {"OROZCO", 6}, {"PALOMINO", 3}, {"PENA", 10},
	{"QUINTERO", 5}, {"RENTERIA", 4}, {"SALDANA", 4}, {"SANDOVAL", 10},
	{"SANTOS", 14}, {"SERRANO", 8}, {"TSUI", 4}, {"VALENZUELA", 6},
	{"VANDERBERG", 3}, {"VILLANUEVA", 6}, {"ZAMORA", 6}, {"ZEPEDA", 4},
	{"SMITH-JONES", 3}, {"GARCIA-LOPEZ", 3}, {"WONG-CHAN", 2},
}

// givens skews toward names reinforcing the target letter shape.
var givens = []weighted{
	{"MARIA", 60}, {"ANNA", 40}, {"ANA", 30}, {"JUAN", 30}, {"JOHN", 45},
	{"JANE", 20}, {"ALAN", 22}, {"ALANA", 10}, {"ANDREA", 24}, {"ANDREW", 26},
	{"ANGELA", 24}, {"ANTONIO", 26}, {"ARMANDO", 14}, {"ARTURO", 12},
	{"BRIAN", 22}, {"CARMEN", 18}, {"CAROLINA", 12}, {"CATHERINE", 20},
	{"CHARLENE", 8}, {"CHRISTINA", 18}, {"DANIEL", 28}, {"DIANA", 16},
	{"EDUARDO", 14}, {"ELAINE", 12}, {"ELENA", 14}, {"ERIC", 18},
	{"ERNESTO", 10}, {"ESTHER", 10}, {"FERNANDO", 14}, {"FRANCES", 10},
	{"GINA", 12}, {"GLORIA", 14}, {"HELEN", 16}, {"IRENE", 14},
	{"JASON", 18}, {"JENNIFER", 22}, {"JOANNE", 10}, {"JORGE", 14},
	{"KAREN", 18}, {"KEVIN", 18}, {"LAURA", 16}, {"LEONARD", 8},
	{"LIBIA", 2}, {"LINDA", 18}, {"MANUEL", 16}, {"MARCO", 10},
	{"MARGARET", 14}, {"MARIANA", 8}, {"MARIO", 14}, {"MARK", 20},
	{"MARTIN", 12}, {"MARTHA", 12}, {"MEI", 18}, {"MING", 16},
	{"NANCY", 16}, {"NATHAN", 10}, {"NORMA", 8}, {"ORLANDO", 8},
	{"PATRICIA", 18}, {"RAMON", 12}, {"RAMONA", 6}, {"RANDALL", 6},
	{"RAYMOND", 14}, {"RENE", 8}, {"RICARDO", 12}, {"ROLAND", 8},
	{"ROSARIO", 8}, {"SANDRA", 16}, {"SEAN", 10}, {"SHARON", 12},
	{"STEVEN", 18}, {"SUSAN", 18}, {"TERESA", 14}, {"THOMAS", 22},
	{"VANESSA", 10}, {"VERONICA", 12}, {"VINCENT", 12}, {"WARREN", 6},
	{"WILLIAM", 24}, {"XAVIER", 4}, {"YOLANDA", 8}, {"YOSHIMI", 3},
	{"ALEJANDRO", 14}, {"ADRIAN", 12}, {"EBREHIM", 2}, {"WITOLD", 1},
	{"WEI", 16}, {"JING", 12}, {"HONG", 12}, {"LAN", 10}, {"TUAN", 8},
	{"MINH", 10}, {"QUAN", 6}, {"KWOK", 6}, {"SIU", 8}, {"WAI", 10},
}

// sampler draws names proportionally to weight.
type sampler struct {
	names  []string
	cum    []int
	weight int
}

func newSampler(ws []weighted) *sampler {
	s := &sampler{}
	for _, w := range ws {
		if w.weight <= 0 {
			continue
		}
		s.weight += w.weight
		s.names = append(s.names, w.name)
		s.cum = append(s.cum, s.weight)
	}
	return s
}

func (s *sampler) draw(rng *rand.Rand) string {
	x := rng.Intn(s.weight)
	i := sort.SearchInts(s.cum, x+1)
	return s.names[i]
}

// NameWidth is the '%'-padded name field width of a formatted record,
// matching the paper's Figure 4 layout.
const NameWidth = 30

// Generate produces n deterministic directory entries from the seed.
// Phone numbers are unique for n up to 10 million.
func Generate(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	sSur := newSampler(surnames)
	sGiv := newSampler(givens)
	out := make([]Entry, n)
	for i := range out {
		name := composeName(rng, sSur, sGiv)
		out[i] = Entry{
			Phone: fmt.Sprintf("415-%03d-%04d", 100+i/10000, i%10000),
			Name:  name,
		}
	}
	return out
}

func composeName(rng *rand.Rand, sSur, sGiv *sampler) string {
	sur := sSur.draw(rng)
	switch r := rng.Intn(100); {
	case r < 60: // SURNAME GIVEN
		return sur + " " + sGiv.draw(rng)
	case r < 70: // SURNAME GIVEN I
		return sur + " " + sGiv.draw(rng) + " " + string(rune('A'+rng.Intn(26)))
	case r < 78: // SURNAME GIVEN & GIVEN (joint entry)
		return sur + " " + sGiv.draw(rng) + " & " + sGiv.draw(rng)
	case r < 88: // SURNAME I (bare initial, like "AFDAHL E")
		return sur + " " + string(rune('A'+rng.Intn(26)))
	case r < 94: // SURNAME GIVEN GIVEN (two given names)
		return sur + " " + sGiv.draw(rng) + " " + sGiv.draw(rng)
	default: // surname only
		return sur
	}
}

// FormatRecord renders an entry as a Figure-4 directory line:
// NAME%%%…%PHONE$$. Names longer than NameWidth are kept whole with a
// single '%' separator.
func FormatRecord(e Entry) string {
	pad := NameWidth - len(e.Name)
	if pad < 1 {
		pad = 1
	}
	return e.Name + strings.Repeat("%", pad) + e.Phone + "$$"
}

// ParseRecord inverts FormatRecord.
func ParseRecord(line string) (Entry, error) {
	if !strings.HasSuffix(line, "$$") {
		return Entry{}, fmt.Errorf("phonebook: missing terminator in %q", line)
	}
	body := line[:len(line)-2]
	i := strings.IndexByte(body, '%')
	if i < 0 {
		return Entry{}, fmt.Errorf("phonebook: missing padding in %q", line)
	}
	j := strings.LastIndexByte(body, '%')
	return Entry{Name: body[:i], Phone: body[j+1:]}, nil
}

// Write renders entries one per line.
func Write(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if _, err := bw.WriteString(FormatRecord(e)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a file written by Write.
func Read(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	var out []Entry
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		e, err := ParseRecord(line)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Names extracts the record contents (the searchable fields) from
// entries.
func Names(entries []Entry) [][]byte {
	out := make([][]byte, len(entries))
	for i, e := range entries {
		out[i] = []byte(e.Name)
	}
	return out
}

// Sample draws k distinct entries deterministically (Fisher–Yates prefix
// on a copy), mirroring the paper's "we extracted 1000 random records".
func Sample(entries []Entry, k int, seed int64) []Entry {
	if k > len(entries) {
		k = len(entries)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	out := make([]Entry, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = entries[idx[i]]
	}
	return out
}
