// Package disperse implements Stage 3 of the encrypted searchable SDDS:
// dispersion of index-record chunks over k sites.
//
// A chunk of c = k·g bits is viewed as a row vector (c_1, …, c_k) over
// the Galois field GF(2^g) and multiplied by an invertible k×k matrix E:
// (d_1, …, d_k) = (c_1, …, c_k)·E. Piece d_i is stored on dispersion
// site i. Because E is invertible the pieces jointly carry exactly the
// chunk's information, but — when E is dense — each individual piece
// depends on the whole chunk, so a single site sees only a 1/k fraction
// of the (already flattened) information and a per-site frequency
// analysis degrades accordingly.
//
// Searches disperse their chunk series the same way and send piece i to
// site i; a chunk-level match requires all k sites to match at the same
// offset, so false positives rise as k grows (each site alone matches
// more often).
package disperse

import (
	"fmt"

	"repro/internal/cipherx"
	"repro/internal/gf"
)

// Piece is one dispersed fragment of a chunk: a g-bit value stored on a
// single dispersion site.
type Piece uint16

// MatrixKind selects the family of the dispersal matrix E.
type MatrixKind uint8

const (
	// MatrixCauchy uses a Cauchy matrix: provably nonsingular with all
	// entries nonzero — the paper's recommended shape.
	MatrixCauchy MatrixKind = iota
	// MatrixVandermonde uses a square Vandermonde matrix.
	MatrixVandermonde
	// MatrixRandomDense samples a key-derived random nonsingular matrix
	// with no zero entries. Such matrices do not exist for every (K, G)
	// combination (e.g. K=2 over GF(2)); construction fails then.
	MatrixRandomDense
	// MatrixRandom samples a key-derived random nonsingular matrix with
	// no density constraint — the construction of the paper's Table 2
	// experiment ("a random non-singular matrix"). It works for every
	// valid (K, G), including K=4 pieces of G=2 bits where the
	// structured families are impossible.
	MatrixRandom
)

// Params configures a Disperser.
type Params struct {
	// K is the number of dispersion sites. Must be >= 1; the paper
	// recommends 2 or 4.
	K int
	// G is the piece width in bits (1..16). The chunk width is K*G bits
	// and must not exceed 64.
	G uint
	// Kind selects the dispersal matrix family.
	Kind MatrixKind
	// Key seeds key-derived matrices so that a client can regenerate E
	// deterministically. Required for MatrixRandomDense; ignored for the
	// structured families.
	Key cipherx.Key
}

// Disperser splits chunks into pieces and reassembles them. Immutable
// and safe for concurrent use after construction.
type Disperser struct {
	field *gf.Field
	e     *gf.Matrix
	inv   *gf.Matrix
	k     int
	g     uint
}

// New builds a Disperser from params.
func New(p Params) (*Disperser, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("disperse: K=%d, want >= 1", p.K)
	}
	if p.G < 1 || p.G > 16 {
		return nil, fmt.Errorf("disperse: G=%d, want 1..16", p.G)
	}
	if uint(p.K)*p.G > 64 {
		return nil, fmt.Errorf("disperse: chunk width K*G = %d bits exceeds 64", uint(p.K)*p.G)
	}
	field, err := gf.New(p.G)
	if err != nil {
		return nil, err
	}
	var e *gf.Matrix
	switch p.Kind {
	case MatrixCauchy:
		e, err = gf.Cauchy(field, p.K)
	case MatrixVandermonde:
		e, err = gf.Vandermonde(field, p.K, p.K)
	case MatrixRandomDense:
		e, err = gf.RandomNonsingularDense(field, p.K, keyedSource(p.Key))
	case MatrixRandom:
		e, err = gf.RandomNonsingular(field, p.K, keyedSource(p.Key))
	default:
		return nil, fmt.Errorf("disperse: unknown matrix kind %d", p.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("disperse: building E: %w", err)
	}
	inv, err := e.Inverse()
	if err != nil {
		return nil, fmt.Errorf("disperse: inverting E: %w", err)
	}
	return &Disperser{field: field, e: e, inv: inv, k: p.K, g: p.G}, nil
}

// keyedSource derives a deterministic uint32 stream from a key via
// splitmix64 seeded by the key's first bytes.
func keyedSource(key cipherx.Key) func() uint32 {
	var seed uint64
	for i := 0; i < 8; i++ {
		seed = seed<<8 | uint64(key[i])
	}
	state := seed
	var buf uint64
	var have bool
	return func() uint32 {
		if have {
			have = false
			return uint32(buf)
		}
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		buf = z >> 32
		have = true
		return uint32(z)
	}
}

// K returns the number of dispersion sites.
func (d *Disperser) K() int { return d.k }

// G returns the piece width in bits.
func (d *Disperser) G() uint { return d.g }

// ChunkBits returns the chunk width K*G in bits.
func (d *Disperser) ChunkBits() uint { return uint(d.k) * d.g }

// Matrix returns (a copy of) the dispersal matrix E.
func (d *Disperser) Matrix() *gf.Matrix { return d.e.Clone() }

// Disperse splits a chunk (its low ChunkBits bits, big-endian piece
// order: c_1 is the most significant g bits) into k pieces.
func (d *Disperser) Disperse(chunk uint64) []Piece {
	out := make([]Piece, d.k)
	d.DisperseInto(out, chunk)
	return out
}

// DisperseInto is Disperse without allocation. len(dst) must be K.
// It is the pipeline's per-chunk hot path, so the scratch vectors live
// on the stack (K*G <= 64 bits bounds K at 64).
func (d *Disperser) DisperseInto(dst []Piece, chunk uint64) {
	if len(dst) != d.k {
		panic(fmt.Sprintf("disperse: dst length %d, want %d", len(dst), d.k))
	}
	if bits := d.ChunkBits(); bits < 64 && chunk&^(1<<bits-1) != 0 {
		panic(fmt.Sprintf("disperse: chunk %#x exceeds %d-bit width", chunk, bits))
	}
	var vecArr, resArr [64]gf.Elem
	vec, res := vecArr[:d.k], resArr[:d.k]
	mask := uint64(d.field.Mask())
	for i := 0; i < d.k; i++ {
		shift := uint(d.k-1-i) * d.g
		vec[i] = gf.Elem(chunk >> shift & mask)
	}
	d.e.MulVecInto(res, vec)
	for i, r := range res {
		dst[i] = Piece(r)
	}
}

// Reconstruct inverts Disperse: given the k pieces it returns the chunk.
func (d *Disperser) Reconstruct(pieces []Piece) uint64 {
	if len(pieces) != d.k {
		panic(fmt.Sprintf("disperse: %d pieces, want %d", len(pieces), d.k))
	}
	vec := make([]gf.Elem, d.k)
	for i, p := range pieces {
		if !d.field.Valid(gf.Elem(p)) {
			panic(fmt.Sprintf("disperse: piece %#x exceeds %d-bit width", p, d.g))
		}
		vec[i] = gf.Elem(p)
	}
	res := make([]gf.Elem, d.k)
	d.inv.MulVecInto(res, vec)
	var chunk uint64
	for _, r := range res {
		chunk = chunk<<d.g | uint64(r)
	}
	return chunk
}

// DisperseStream splits a sequence of chunks into k parallel piece
// streams: stream i holds the i-th piece of every chunk, in order. This
// is the layout stored at dispersion site i for one index record.
func (d *Disperser) DisperseStream(chunks []uint64) [][]Piece {
	streams := make([][]Piece, d.k)
	for i := range streams {
		streams[i] = make([]Piece, len(chunks))
	}
	tmp := make([]Piece, d.k)
	for ci, c := range chunks {
		d.DisperseInto(tmp, c)
		for i, p := range tmp {
			streams[i][ci] = p
		}
	}
	return streams
}

// ReconstructStream inverts DisperseStream.
func (d *Disperser) ReconstructStream(streams [][]Piece) ([]uint64, error) {
	if len(streams) != d.k {
		return nil, fmt.Errorf("disperse: %d streams, want %d", len(streams), d.k)
	}
	n := len(streams[0])
	for i, s := range streams {
		if len(s) != n {
			return nil, fmt.Errorf("disperse: stream %d length %d, want %d", i, len(s), n)
		}
	}
	chunks := make([]uint64, n)
	tmp := make([]Piece, d.k)
	for ci := range chunks {
		for i := range tmp {
			tmp[i] = streams[i][ci]
		}
		chunks[ci] = d.Reconstruct(tmp)
	}
	return chunks, nil
}
