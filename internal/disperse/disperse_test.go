package disperse

import (
	"testing"
	"testing/quick"

	"repro/internal/cipherx"
)

func params(k int, g uint, kind MatrixKind) Params {
	return Params{K: k, G: g, Kind: kind, Key: cipherx.KeyFromPassphrase("disperse-test")}
}

func TestNewValidation(t *testing.T) {
	bad := []Params{
		{K: 0, G: 2},
		{K: 4, G: 0},
		{K: 4, G: 17},
		{K: 5, G: 16}, // 80 bits > 64
		{K: 2, G: 4, Kind: MatrixKind(99)},
	}
	for _, p := range bad {
		p.Key = cipherx.KeyFromPassphrase("x")
		if _, err := New(p); err == nil {
			t.Errorf("Params %+v accepted, want error", p)
		}
	}
	good := []Params{
		{K: 1, G: 8},
		{K: 4, G: 2, Kind: MatrixRandom},
		{K: 4, G: 2, Kind: MatrixRandomDense},
		{K: 2, G: 8, Kind: MatrixVandermonde},
		{K: 4, G: 16},
		{K: 8, G: 8},
	}
	for _, p := range good {
		p.Key = cipherx.KeyFromPassphrase("x")
		if _, err := New(p); err != nil {
			t.Errorf("Params %+v rejected: %v", p, err)
		}
	}
}

func TestAccessors(t *testing.T) {
	d, err := New(params(4, 2, MatrixRandom))
	if err != nil {
		t.Fatal(err)
	}
	if d.K() != 4 || d.G() != 2 || d.ChunkBits() != 8 {
		t.Errorf("K=%d G=%d ChunkBits=%d", d.K(), d.G(), d.ChunkBits())
	}
	m := d.Matrix()
	if m.Rows() != 4 || m.Cols() != 4 {
		t.Error("Matrix shape wrong")
	}
	// Matrix() returns a copy: mutating it must not affect dispersal.
	before := d.Disperse(0xAB)
	m.Set(0, 0, 0)
	after := d.Disperse(0xAB)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Matrix() exposed internal state")
		}
	}
}

func TestRoundTripAllKindsExhaustive8Bit(t *testing.T) {
	// The paper's Table-2 configuration: one 8-bit symbol dispersed into
	// four 2-bit pieces. Exhaustive over the whole domain.
	// Structured families are impossible over GF(4) at k=4, so Table 2's
	// configuration admits only the random families.
	for _, kind := range []MatrixKind{MatrixRandom, MatrixRandomDense} {
		d, err := New(params(4, 2, kind))
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		seen := make(map[[4]Piece]bool)
		for c := uint64(0); c < 256; c++ {
			ps := d.Disperse(c)
			if got := d.Reconstruct(ps); got != c {
				t.Fatalf("kind %d: Reconstruct(Disperse(%#x)) = %#x", kind, c, got)
			}
			var key [4]Piece
			copy(key[:], ps)
			if seen[key] {
				t.Fatalf("kind %d: dispersal not injective at %#x", kind, c)
			}
			seen[key] = true
			for i, p := range ps {
				if p > 3 {
					t.Fatalf("kind %d: piece %d = %d exceeds 2 bits", kind, i, p)
				}
			}
		}
	}
}

func TestDeterministicFromKey(t *testing.T) {
	key := cipherx.KeyFromPassphrase("fixed")
	a, err := New(Params{K: 4, G: 4, Kind: MatrixRandomDense, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Params{K: 4, G: 4, Kind: MatrixRandomDense, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(Params{K: 4, G: 4, Kind: MatrixRandomDense, Key: cipherx.KeyFromPassphrase("different")})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Matrix().Equal(b.Matrix()) {
		t.Error("same key gave different matrices")
	}
	if a.Matrix().Equal(other.Matrix()) {
		t.Error("different keys gave equal matrices")
	}
}

func TestPieceDependsOnWholeChunk(t *testing.T) {
	// With a dense matrix, flipping any input piece of the chunk changes
	// every output piece — the property that defeats per-site frequency
	// analysis of chunk fragments.
	d, err := New(params(4, 4, MatrixCauchy))
	if err != nil {
		t.Fatal(err)
	}
	base := d.Disperse(0x00)
	for in := 0; in < 4; in++ {
		flipped := d.Disperse(uint64(1) << (uint(in) * 4))
		for out := 0; out < 4; out++ {
			if flipped[out] == base[out] {
				t.Errorf("input piece %d does not influence output piece %d", in, out)
			}
		}
	}
}

func TestRoundTripQuick64Bit(t *testing.T) {
	d, err := New(params(4, 16, MatrixCauchy))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(c uint64) bool {
		return d.Reconstruct(d.Disperse(c)) == c
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLinearityQuick(t *testing.T) {
	// Dispersal is GF-linear: D(a ^ b) == D(a) ^ D(b) piecewise.
	d, err := New(params(2, 8, MatrixRandomDense))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint16) bool {
		da := d.Disperse(uint64(a))
		db := d.Disperse(uint64(b))
		dx := d.Disperse(uint64(a ^ b))
		for i := range dx {
			if dx[i] != da[i]^db[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDomainPanics(t *testing.T) {
	d, err := New(params(4, 2, MatrixRandom))
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "chunk too wide", func() { d.Disperse(0x100) })
	assertPanics(t, "dst wrong len", func() { d.DisperseInto(make([]Piece, 3), 1) })
	assertPanics(t, "pieces wrong len", func() { d.Reconstruct(make([]Piece, 3)) })
	assertPanics(t, "piece too wide", func() { d.Reconstruct([]Piece{4, 0, 0, 0}) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestStreamRoundTrip(t *testing.T) {
	d, err := New(params(4, 2, MatrixRandomDense))
	if err != nil {
		t.Fatal(err)
	}
	chunks := []uint64{0x00, 0x41, 0x42, 0xFF, 0x7E}
	streams := d.DisperseStream(chunks)
	if len(streams) != 4 {
		t.Fatalf("%d streams, want 4", len(streams))
	}
	for i, s := range streams {
		if len(s) != len(chunks) {
			t.Fatalf("stream %d length %d, want %d", i, len(s), len(chunks))
		}
	}
	back, err := d.ReconstructStream(streams)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		if back[i] != chunks[i] {
			t.Errorf("chunk %d: %#x != %#x", i, back[i], chunks[i])
		}
	}
}

func TestReconstructStreamValidation(t *testing.T) {
	d, err := New(params(2, 4, MatrixCauchy))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReconstructStream([][]Piece{{1}}); err == nil {
		t.Error("wrong stream count accepted")
	}
	if _, err := d.ReconstructStream([][]Piece{{1, 2}, {3}}); err == nil {
		t.Error("ragged streams accepted")
	}
}

// TestEqualChunksEqualPieces is the search-critical ECB-like property at
// the piece level: equal chunks produce equal pieces at every site, so
// per-site matching works.
func TestEqualChunksEqualPieces(t *testing.T) {
	d, err := New(params(4, 2, MatrixRandomDense))
	if err != nil {
		t.Fatal(err)
	}
	a := d.Disperse(0x53)
	b := d.Disperse(0x53)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("equal chunks dispersed differently")
		}
	}
}

func TestSingleSiteDegenerate(t *testing.T) {
	// K=1 is the degenerate no-dispersion case: the piece is an
	// invertible transform of the whole chunk.
	d, err := New(params(1, 8, MatrixCauchy))
	if err != nil {
		t.Fatal(err)
	}
	for c := uint64(0); c < 256; c++ {
		ps := d.Disperse(c)
		if len(ps) != 1 {
			t.Fatal("K=1 should give one piece")
		}
		if d.Reconstruct(ps) != c {
			t.Fatal("K=1 round trip failed")
		}
	}
}
