package encode

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTrainValidation(t *testing.T) {
	corpus := [][]byte{[]byte("HELLO")}
	if _, err := Train(corpus, 0, 8); err == nil {
		t.Error("group size 0 accepted")
	}
	if _, err := Train(corpus, 1, 1); err == nil {
		t.Error("1 code value accepted")
	}
	if _, err := Train(corpus, 1, MaxCodes+1); err == nil {
		t.Error("too many code values accepted")
	}
	if _, err := Train([][]byte{[]byte("AB")}, 4, 8); err == nil {
		t.Error("corpus with no full groups accepted")
	}
	if _, err := Train(corpus, 2, 8); err != nil {
		t.Errorf("valid training failed: %v", err)
	}
}

// TestFigure5Assignment reproduces the paper's Figure 5 exactly: given
// the published symbol counts, the greedy least-loaded assignment with
// ties to the higher code value yields the published code for every
// symbol.
func TestFigure5Assignment(t *testing.T) {
	// Symbol, count, expected code — transcribed from Figure 5.
	rows := []struct {
		sym   byte
		count int
		code  Code
	}{
		{' ', 503, 0}, {'A', 495, 1}, {'E', 407, 2}, {'N', 383, 3},
		{'R', 350, 4}, {'I', 300, 5}, {'O', 287, 6}, {'L', 258, 7},
		{'S', 258, 7}, {'T', 200, 6}, {'H', 186, 5}, {'M', 178, 4},
		{'C', 159, 3}, {'D', 150, 2}, {'U', 112, 5}, {'G', 108, 6},
		{'Y', 97, 1}, {'B', 87, 0}, {'K', 74, 7}, {'J', 72, 4},
		{'P', 71, 3}, {'F', 59, 2}, {'W', 49, 7}, {'V', 45, 0},
		{'Z', 29, 1}, {'&', 14, 6}, {'X', 6, 5}, {'Q', 5, 4},
		{'\'', 1, 5}, {'-', 1, 5},
	}
	var corpus [][]byte
	for _, r := range rows {
		corpus = append(corpus, bytes.Repeat([]byte{r.sym}, r.count))
	}
	cb, err := Train(corpus, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		got, err := cb.Code([]byte{r.sym})
		if err != nil {
			t.Fatal(err)
		}
		if got != r.code {
			t.Errorf("symbol %q: code %d, want %d (Figure 5)", r.sym, got, r.code)
		}
	}
	// L and S share code 7 — the explicit collision Figure 5 shows.
	col, err := cb.Collides([]byte("L"), []byte("S"))
	if err != nil {
		t.Fatal(err)
	}
	if !col {
		t.Error("L and S should share a code value")
	}
	// B and V share code 0 — the paper's AVOGADO/ABOGADO example.
	col, err = cb.Collides([]byte("B"), []byte("V"))
	if err != nil {
		t.Fatal(err)
	}
	if !col {
		t.Error("B and V should share code 0")
	}
}

func TestLoadsAreBalanced(t *testing.T) {
	// With many distinct groups, greedy balancing should keep the load
	// spread tight: max/min < 1.05 for a smooth distribution.
	var corpus [][]byte
	for i := 0; i < 200; i++ {
		corpus = append(corpus, bytes.Repeat([]byte{byte(i)}, 1000-4*i))
	}
	cb, err := Train(corpus, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	loads := cb.Loads()
	var min, max uint64 = loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == 0 || float64(max)/float64(min) > 1.05 {
		t.Errorf("unbalanced loads: min=%d max=%d", min, max)
	}
}

func TestBits(t *testing.T) {
	corpus := [][]byte{[]byte("ABCDEFGH")}
	for _, c := range []struct {
		n    int
		bits uint
	}{
		{2, 1}, {3, 2}, {4, 2}, {8, 3}, {16, 4}, {128, 7}, {130, 8},
	} {
		cb, err := Train(corpus, 1, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got := cb.Bits(); got != c.bits {
			t.Errorf("n=%d: Bits = %d, want %d", c.n, got, c.bits)
		}
	}
}

func TestCodeLengthValidation(t *testing.T) {
	cb, err := Train([][]byte{[]byte("ABCD")}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Code([]byte("A")); err == nil {
		t.Error("wrong group length accepted")
	}
}

func TestUnknownPolicies(t *testing.T) {
	corpus := [][]byte{[]byte("AAAABBBB")}
	hash, err := TrainWithPolicy(corpus, 1, 4, UnknownHash)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := hash.Code([]byte("Z"))
	if err != nil {
		t.Fatalf("UnknownHash should not error: %v", err)
	}
	c2, _ := hash.Code([]byte("Z"))
	if c1 != c2 {
		t.Error("hash fallback not deterministic")
	}
	if int(c1) >= hash.N() {
		t.Error("hash fallback out of range")
	}

	strict, err := TrainWithPolicy(corpus, 1, 4, UnknownError)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Code([]byte("Z")); err == nil {
		t.Error("UnknownError should reject unseen group")
	}
}

// TestEncodePhases mirrors the paper's §7 example: "ABOGADO ALEJANDRO"
// chunked at size 2 yields phase-0 groups [AB][OG][AD][O ]… and phase-1
// groups [BO][GA][DO][ A]…, with partial head/tail dropped.
func TestEncodePhases(t *testing.T) {
	data := []byte("ABOGADO ALEJANDRO")
	cb, err := Train([][]byte{data}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := cb.Encode(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p0) != 8 { // 17 symbols → 8 full groups at phase 0
		t.Errorf("phase 0: %d groups, want 8", len(p0))
	}
	p1, err := cb.Encode(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 8 { // (17-1)/2 = 8 full groups at phase 1
		t.Errorf("phase 1: %d groups, want 8", len(p1))
	}
	// Phase-0 group 0 is "AB"; check it agrees with direct coding.
	want, _ := cb.Code([]byte("AB"))
	if p0[0] != want {
		t.Errorf("phase 0 group 0 = %d, want code of AB %d", p0[0], want)
	}
	want, _ = cb.Code([]byte("BO"))
	if p1[0] != want {
		t.Errorf("phase 1 group 0 = %d, want code of BO %d", p1[0], want)
	}

	all, err := cb.EncodeAllPhases(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("EncodeAllPhases returned %d phases", len(all))
	}
	if len(all[0]) != len(p0) || len(all[1]) != len(p1) {
		t.Error("EncodeAllPhases disagrees with Encode")
	}
}

func TestEncodePhaseValidation(t *testing.T) {
	cb, err := Train([][]byte{[]byte("ABCD")}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Encode([]byte("ABCD"), -1); err == nil {
		t.Error("negative phase accepted")
	}
	if _, err := cb.Encode([]byte("ABCD"), 2); err == nil {
		t.Error("phase >= group size accepted")
	}
}

// Property: encoding is a function — equal substrings encode equally
// regardless of the containing record. This is the invariant that makes
// searching after Stage 2 possible at all.
func TestEncodingConsistencyQuick(t *testing.T) {
	corpus := [][]byte{[]byte("THE QUICK BROWN FOX JUMPS OVER THE LAZY DOG")}
	cb, err := Train(corpus, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b []byte) bool {
		// Append the same suffix to different prefixes of even length;
		// the suffix's group codes must be identical.
		suffix := []byte("WXYZ")
		pa := append(bytes.Repeat([]byte("Q"), 2*(len(a)%5)), suffix...)
		pb := append(bytes.Repeat([]byte("R"), 2*(len(b)%7)), suffix...)
		ea, err := cb.Encode(pa, 0)
		if err != nil {
			return false
		}
		eb, err := cb.Encode(pb, 0)
		if err != nil {
			return false
		}
		// Last two groups of both encodings are the suffix groups.
		na, nb := len(ea), len(eb)
		return na >= 2 && nb >= 2 && ea[na-1] == eb[nb-1] && ea[na-2] == eb[nb-2]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssignmentsOrdering(t *testing.T) {
	corpus := [][]byte{[]byte(strings.Repeat("A", 10) + strings.Repeat("B", 5) + "C")}
	cb, err := Train(corpus, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	as := cb.Assignments()
	if len(as) != 3 {
		t.Fatalf("%d assignments, want 3", len(as))
	}
	if as[0].Group != "A" || as[1].Group != "B" || as[2].Group != "C" {
		t.Errorf("order = %q %q %q", as[0].Group, as[1].Group, as[2].Group)
	}
	if as[0].Count != 10 || as[0].Code != 0 { // highest-frequency group takes code 0
		t.Errorf("A: count=%d code=%d", as[0].Count, as[0].Code)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	corpus := [][]byte{[]byte("ABOGADO ALEJANDRO & CATHERINE"), []byte("LITWIN WITOLD")}
	for _, gs := range []int{1, 2, 4} {
		orig, err := TrainWithPolicy(corpus, gs, 8, UnknownError)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
		}
		got, err := ReadCodebook(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.GroupSize() != orig.GroupSize() || got.N() != orig.N() || got.Policy() != orig.Policy() {
			t.Error("header fields differ after round trip")
		}
		if got.Groups() != orig.Groups() {
			t.Errorf("groups %d != %d", got.Groups(), orig.Groups())
		}
		for _, a := range orig.Assignments() {
			c, err := got.Code([]byte(a.Group))
			if err != nil {
				t.Fatal(err)
			}
			if c != a.Code {
				t.Errorf("group %q: code %d != %d", a.Group, c, a.Code)
			}
		}
		lo, lg := orig.Loads(), got.Loads()
		for i := range lo {
			if lo[i] != lg[i] {
				t.Errorf("load[%d] %d != %d", i, lg[i], lo[i])
			}
		}
	}
}

func TestReadCodebookCorrupt(t *testing.T) {
	orig, err := Train([][]byte{[]byte("ABCD")}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadCodebook(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadCodebook(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadCodebook(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("truncated input accepted")
	}
}
