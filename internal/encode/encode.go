// Package encode implements Stage 2 of the encrypted searchable SDDS:
// redundancy removal by lossy, frequency-balancing compression.
//
// A codebook maps every group of GroupSize consecutive symbols to one of
// N code values. The codebook is trained on a representative corpus: the
// distinct groups are sorted by decreasing frequency and assigned
// greedily to the currently least-loaded code value, so code values end
// up occurring with (approximately) equal frequency. This flattens the
// frequency spikes an ECB frequency analysis would exploit — at the cost
// of collisions (several groups sharing one code), which surface as false
// positives in searches.
//
// The greedy least-loaded rule, with ties broken toward the higher code
// value, reproduces the paper's Figure 5 assignment exactly for the given
// counts.
package encode

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// Code is one encoded value, in [0, N).
type Code uint32

// MaxCodes bounds the codebook size; 2^16 code values is far beyond the
// paper's experiments (which top out at 128).
const MaxCodes = 1 << 16

// UnknownPolicy selects what Encode does with a group never seen during
// training.
type UnknownPolicy uint8

const (
	// UnknownHash deterministically assigns unseen groups to
	// FNV-1a(group) mod N. This keeps the insert and search paths
	// consistent for novel data at the cost of slightly unbalancing the
	// code distribution.
	UnknownHash UnknownPolicy = iota
	// UnknownError makes Encode return an error for unseen groups.
	UnknownError
)

// Codebook is a trained Stage-2 encoder. It is immutable after Train and
// safe for concurrent use.
type Codebook struct {
	groupSize int
	n         int
	policy    UnknownPolicy
	codes     map[string]Code
	counts    map[string]uint64 // training counts, for reporting
	loads     []uint64          // total training frequency per code value
}

// Train builds a codebook over groups of groupSize symbols with n code
// values from the corpus records. Groups are collected from every record
// at every phase (offset 0..groupSize-1), mirroring the paper's "collect
// all these chunks and encode them".
func Train(corpus [][]byte, groupSize, n int) (*Codebook, error) {
	return TrainWithPolicy(corpus, groupSize, n, UnknownHash)
}

// TrainWithPolicy is Train with an explicit unknown-group policy.
func TrainWithPolicy(corpus [][]byte, groupSize, n int, policy UnknownPolicy) (*Codebook, error) {
	if groupSize < 1 {
		return nil, fmt.Errorf("encode: group size %d, want >= 1", groupSize)
	}
	if n < 2 || n > MaxCodes {
		return nil, fmt.Errorf("encode: %d code values, want 2..%d", n, MaxCodes)
	}
	counts := make(map[string]uint64)
	for _, rec := range corpus {
		for phase := 0; phase < groupSize; phase++ {
			for i := phase; i+groupSize <= len(rec); i += groupSize {
				counts[string(rec[i:i+groupSize])]++
			}
		}
	}
	if len(counts) == 0 {
		return nil, errors.New("encode: corpus contains no full groups")
	}
	cb := &Codebook{
		groupSize: groupSize,
		n:         n,
		policy:    policy,
		codes:     make(map[string]Code, len(counts)),
		counts:    counts,
		loads:     make([]uint64, n),
	}
	cb.assign()
	return cb, nil
}

// assign distributes groups to code values: groups in decreasing
// frequency order; the first n groups take codes 0..n-1 in that order
// ("place these characters into buckets, one for each encoded symbol, in
// order of frequency of occurrence"), and every later group goes to the
// least-loaded value with ties broken toward the higher value. This exact
// rule reproduces the paper's Figure 5 assignment from its counts,
// including the W→7 and '-'→5 tie cases. Equal-frequency groups are
// ordered lexicographically for determinism.
func (cb *Codebook) assign() {
	type gc struct {
		group string
		count uint64
	}
	gs := make([]gc, 0, len(cb.counts))
	for g, c := range cb.counts {
		gs = append(gs, gc{g, c})
	}
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].count != gs[j].count {
			return gs[i].count > gs[j].count
		}
		return gs[i].group < gs[j].group
	})
	for idx, g := range gs {
		best := idx
		if idx >= cb.n {
			best = 0
			for v := 1; v < cb.n; v++ {
				if cb.loads[v] <= cb.loads[best] {
					best = v
				}
			}
		}
		cb.codes[g.group] = Code(best)
		cb.loads[best] += g.count
	}
}

// GroupSize returns the symbols per group.
func (cb *Codebook) GroupSize() int { return cb.groupSize }

// N returns the number of code values.
func (cb *Codebook) N() int { return cb.n }

// Bits returns the number of bits needed per code value: ceil(log2 N).
func (cb *Codebook) Bits() uint {
	b := uint(0)
	for 1<<b < cb.n {
		b++
	}
	return b
}

// Groups returns the number of distinct trained groups.
func (cb *Codebook) Groups() int { return len(cb.codes) }

// Policy returns the unknown-group policy.
func (cb *Codebook) Policy() UnknownPolicy { return cb.policy }

// ErrUnknownGroup reports an unseen group under UnknownError policy.
var ErrUnknownGroup = errors.New("encode: group not in codebook")

// Code maps one group to its code value. The group must have length
// GroupSize.
func (cb *Codebook) Code(group []byte) (Code, error) {
	if len(group) != cb.groupSize {
		return 0, fmt.Errorf("encode: group length %d, want %d", len(group), cb.groupSize)
	}
	if c, ok := cb.codes[string(group)]; ok {
		return c, nil
	}
	if cb.policy == UnknownError {
		return 0, fmt.Errorf("%w: %q", ErrUnknownGroup, group)
	}
	return cb.hashCode(group), nil
}

func (cb *Codebook) hashCode(group []byte) Code {
	h := fnv.New64a()
	h.Write(group)
	return Code(h.Sum64() % uint64(cb.n))
}

// Encode maps the consecutive groups of data starting at offset phase to
// code values. Partial head (before phase) and tail groups are dropped,
// mirroring the paper's experiments ("in the first chunking, we deleted
// the last, incomplete chunk, in the second one, we deleted the first").
func (cb *Codebook) Encode(data []byte, phase int) ([]Code, error) {
	if phase < 0 || phase >= cb.groupSize {
		return nil, fmt.Errorf("encode: phase %d out of range [0,%d)", phase, cb.groupSize)
	}
	out := make([]Code, 0, (len(data)-phase)/cb.groupSize+1)
	for i := phase; i+cb.groupSize <= len(data); i += cb.groupSize {
		c, err := cb.Code(data[i : i+cb.groupSize])
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// EncodeAllPhases returns the GroupSize encodings of data, one per phase.
func (cb *Codebook) EncodeAllPhases(data []byte) ([][]Code, error) {
	out := make([][]Code, cb.groupSize)
	for phase := 0; phase < cb.groupSize; phase++ {
		enc, err := cb.Encode(data, phase)
		if err != nil {
			return nil, err
		}
		out[phase] = enc
	}
	return out, nil
}

// Collides reports whether two distinct groups share a code value — the
// source of Stage-2 false positives (e.g. the paper's "B" and "V" both
// encoding to 0, so "AVOGADO" matches "ABOGADO").
func (cb *Codebook) Collides(a, b []byte) (bool, error) {
	ca, err := cb.Code(a)
	if err != nil {
		return false, err
	}
	cbv, err := cb.Code(b)
	if err != nil {
		return false, err
	}
	return ca == cbv, nil
}

// Assignment is one row of a Figure-5-style encoding table.
type Assignment struct {
	Group string
	Count uint64
	Code  Code
}

// Assignments returns the trained groups in decreasing frequency order
// (the order the greedy assignment processed them), matching the layout
// of the paper's Figure 5.
func (cb *Codebook) Assignments() []Assignment {
	out := make([]Assignment, 0, len(cb.codes))
	for g, c := range cb.codes {
		out = append(out, Assignment{Group: g, Count: cb.counts[g], Code: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// Loads returns the total training frequency assigned to each code value.
// A flat profile is the design goal of Stage 2.
func (cb *Codebook) Loads() []uint64 {
	return append([]uint64(nil), cb.loads...)
}

// codebookMagic identifies the serialization format.
const codebookMagic = "ESDDSCB1"

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the codebook. The format is a stable little-endian
// binary layout: magic, group size, n, policy, entry count, then
// (group, count, code) triples.
func (cb *Codebook) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	write := func(v any) error {
		return binary.Write(bw, binary.LittleEndian, v)
	}
	if _, err := bw.WriteString(codebookMagic); err != nil {
		return cw.n, err
	}
	hdr := []uint32{uint32(cb.groupSize), uint32(cb.n), uint32(cb.policy), uint32(len(cb.codes))}
	for _, h := range hdr {
		if err := write(h); err != nil {
			return cw.n, err
		}
	}
	// Deterministic order for reproducible files.
	groups := make([]string, 0, len(cb.codes))
	for g := range cb.codes {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		if err := write(uint32(len(g))); err != nil {
			return cw.n, err
		}
		if _, err := bw.WriteString(g); err != nil {
			return cw.n, err
		}
		if err := write(cb.counts[g]); err != nil {
			return cw.n, err
		}
		if err := write(uint32(cb.codes[g])); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadCodebook deserializes a codebook written by WriteTo.
func ReadCodebook(r io.Reader) (*Codebook, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codebookMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("encode: reading magic: %w", err)
	}
	if string(magic) != codebookMagic {
		return nil, fmt.Errorf("encode: bad magic %q", magic)
	}
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("encode: reading header: %w", err)
		}
	}
	groupSize, n, policy, entries := int(hdr[0]), int(hdr[1]), UnknownPolicy(hdr[2]), int(hdr[3])
	if groupSize < 1 || n < 2 || n > MaxCodes || entries < 0 {
		return nil, fmt.Errorf("encode: corrupt header %v", hdr)
	}
	cb := &Codebook{
		groupSize: groupSize,
		n:         n,
		policy:    policy,
		codes:     make(map[string]Code, entries),
		counts:    make(map[string]uint64, entries),
		loads:     make([]uint64, n),
	}
	for i := 0; i < entries; i++ {
		var glen uint32
		if err := binary.Read(br, binary.LittleEndian, &glen); err != nil {
			return nil, fmt.Errorf("encode: entry %d: %w", i, err)
		}
		if int(glen) != groupSize {
			return nil, fmt.Errorf("encode: entry %d has group length %d, want %d", i, glen, groupSize)
		}
		g := make([]byte, glen)
		if _, err := io.ReadFull(br, g); err != nil {
			return nil, fmt.Errorf("encode: entry %d: %w", i, err)
		}
		var count uint64
		var code uint32
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("encode: entry %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &code); err != nil {
			return nil, fmt.Errorf("encode: entry %d: %w", i, err)
		}
		if int(code) >= n {
			return nil, fmt.Errorf("encode: entry %d has code %d >= n %d", i, code, n)
		}
		cb.codes[string(g)] = Code(code)
		cb.counts[string(g)] = count
		cb.loads[code] += count
	}
	return cb, nil
}
