package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/chunk"
	"repro/internal/cipherx"
	"repro/internal/disperse"
	"repro/internal/encode"
)

func testKey() cipherx.Key { return cipherx.KeyFromPassphrase("core-test") }

func rawParams(s, m, k int) Params {
	return Params{
		Chunk:      chunk.Params{S: s, M: m},
		DisperseK:  k,
		MatrixKind: disperse.MatrixRandom,
		Key:        testKey(),
	}
}

func mustPipeline(t *testing.T, p Params) *Pipeline {
	t.Helper()
	pl, err := NewPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestNewPipelineValidation(t *testing.T) {
	corpus := [][]byte{[]byte("ABCDEFGHIJKLMNOP")}
	sym, err := encode.Train(corpus, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := encode.Train(corpus, 2, 8)
	if err != nil {
		t.Fatal(err)
	}

	bad := []Params{
		{Chunk: chunk.Params{S: 0, M: 1}, DisperseK: 1, Key: testKey()},
		{Chunk: chunk.Params{S: 4, M: 3}, DisperseK: 1, Key: testKey()},
		// Both codebooks set.
		{Chunk: chunk.Params{S: 2, M: 2}, SymbolCodebook: sym, ChunkCodebook: pair, DisperseK: 1, Key: testKey()},
		// Symbol codebook with wrong group size.
		{Chunk: chunk.Params{S: 2, M: 2}, SymbolCodebook: pair, DisperseK: 1, Key: testKey()},
		// Chunk codebook group size != S.
		{Chunk: chunk.Params{S: 4, M: 4}, ChunkCodebook: pair, DisperseK: 1, Key: testKey()},
		// DisperseK < 1.
		{Chunk: chunk.Params{S: 2, M: 2}, DisperseK: 0, Key: testKey()},
		// K does not divide chunk bits (S=2 raw → 16 bits, K=3).
		{Chunk: chunk.Params{S: 2, M: 2}, DisperseK: 3, Key: testKey()},
		// Piece too wide: S=4 raw → 32 bits, K=1... valid; K=2 → 16 ok; use S=8, K=2 → 32 bits/2=16 ok; S=8 K=1 is fine too (split pieces).
		// Chunk too wide: S=16 raw → 128 bits.
		{Chunk: chunk.Params{S: 16, M: 1}, DisperseK: 1, Key: testKey()},
	}
	for i, p := range bad {
		if p.MatrixKind == 0 {
			p.MatrixKind = disperse.MatrixRandom
		}
		if _, err := NewPipeline(p); err == nil {
			t.Errorf("bad[%d] accepted: %+v", i, p)
		}
	}

	good := []Params{
		rawParams(4, 4, 1),
		rawParams(4, 2, 4),
		rawParams(8, 4, 8),
		rawParams(1, 1, 4),
		{Chunk: chunk.Params{S: 2, M: 2}, SymbolCodebook: sym, DisperseK: 2, MatrixKind: disperse.MatrixRandom, Key: testKey()},
		{Chunk: chunk.Params{S: 2, M: 2}, ChunkCodebook: pair, DisperseK: 3, MatrixKind: disperse.MatrixRandom, Key: testKey()},
	}
	for i, p := range good {
		if _, err := NewPipeline(p); err != nil {
			t.Errorf("good[%d] rejected: %v", i, err)
		}
	}
}

func TestPipelineAccessors(t *testing.T) {
	pl := mustPipeline(t, rawParams(4, 2, 4))
	if pl.ChunkBits() != 32 {
		t.Errorf("ChunkBits = %d, want 32", pl.ChunkBits())
	}
	if pl.K() != 4 || pl.Chunkings() != 2 {
		t.Errorf("K=%d M=%d", pl.K(), pl.Chunkings())
	}
	if pl.MinQueryLen() != 5 {
		t.Errorf("MinQueryLen = %d, want 5", pl.MinQueryLen())
	}
}

func TestBuildIndexShape(t *testing.T) {
	pl := mustPipeline(t, rawParams(4, 2, 4))
	recs, err := pl.BuildIndex(7, []byte("ABCDEFGHIJ"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d index records, want 2 (M)", len(recs))
	}
	for j, r := range recs {
		if r.RID != 7 || r.J != j {
			t.Errorf("record %d: RID=%d J=%d", j, r.RID, r.J)
		}
		if len(r.Streams) != 4 {
			t.Fatalf("record %d: %d streams, want 4 (K)", j, len(r.Streams))
		}
		want := chunk.Params{S: 4, M: 2}.NumChunks(10, j)
		for k, s := range r.Streams {
			if len(s) != want {
				t.Errorf("record %d stream %d: %d pieces, want %d", j, k, len(s), want)
			}
		}
	}
}

func TestIndexDeterministic(t *testing.T) {
	pl := mustPipeline(t, rawParams(4, 2, 2))
	a, err := pl.BuildIndex(1, []byte("HELLO WORLD"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl.BuildIndex(1, []byte("HELLO WORLD"))
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		for k := range a[j].Streams {
			for i := range a[j].Streams[k] {
				if a[j].Streams[k][i] != b[j].Streams[k][i] {
					t.Fatal("indexing not deterministic")
				}
			}
		}
	}
}

func TestIndexKeyed(t *testing.T) {
	p1 := rawParams(4, 2, 2)
	p2 := rawParams(4, 2, 2)
	p2.Key = cipherx.KeyFromPassphrase("other")
	a, _ := mustPipeline(t, p1).BuildIndex(1, []byte("HELLO WORLD!"))
	b, _ := mustPipeline(t, p2).BuildIndex(1, []byte("HELLO WORLD!"))
	same := 0
	total := 0
	for j := range a {
		for k := range a[j].Streams {
			for i := range a[j].Streams[k] {
				total++
				if a[j].Streams[k][i] == b[j].Streams[k][i] {
					same++
				}
			}
		}
	}
	if same == total {
		t.Error("different keys produced identical index records")
	}
}

func TestMatchOffsets(t *testing.T) {
	s := []disperse.Piece{1, 2, 3, 1, 2, 3, 1}
	cases := []struct {
		pattern []disperse.Piece
		want    []int
	}{
		{[]disperse.Piece{1, 2}, []int{0, 3}},
		{[]disperse.Piece{3, 1}, []int{2, 5}},
		{[]disperse.Piece{1}, []int{0, 3, 6}},
		{[]disperse.Piece{9}, nil},
		{[]disperse.Piece{}, nil},
		{[]disperse.Piece{1, 2, 3, 1, 2, 3, 1, 9}, nil}, // longer than stream
	}
	for _, c := range cases {
		got := MatchOffsets(s, c.pattern)
		if len(got) != len(c.want) {
			t.Errorf("MatchOffsets(%v) = %v, want %v", c.pattern, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("MatchOffsets(%v) = %v, want %v", c.pattern, got, c.want)
			}
		}
	}
}

// TestNoFalseNegativesRaw is the core guarantee: without lossy encoding,
// every true substring occurrence is found, across geometries, dispersal
// widths, and verification modes.
func TestNoFalseNegativesRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ '&-")
	configs := []Params{
		rawParams(4, 4, 1),
		rawParams(4, 2, 2),
		rawParams(4, 1, 4),
		rawParams(8, 4, 4),
		rawParams(2, 2, 4),
		rawParams(1, 1, 4),
	}
	for _, cfg := range configs {
		pl := mustPipeline(t, cfg)
		ix := NewMemIndex(pl)
		var rcs [][]byte
		for rid := uint64(0); rid < 30; rid++ {
			n := cfg.Chunk.S*2 + rng.Intn(30)
			rc := make([]byte, n)
			for i := range rc {
				rc[i] = alphabet[rng.Intn(len(alphabet))]
			}
			rcs = append(rcs, rc)
			if err := ix.Insert(rid, rc); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 100; trial++ {
			rid := uint64(rng.Intn(len(rcs)))
			rc := rcs[rid]
			minLen := pl.MinQueryLen()
			fullMin := cfg.Chunk.S*2 - 1 // min length for the full alignment set
			need := minLen
			if fullMin > need {
				need = fullMin
			}
			if len(rc) < need {
				continue
			}
			qlen := need + rng.Intn(len(rc)-need+1)
			pos := rng.Intn(len(rc) - qlen + 1)
			q := rc[pos : pos+qlen]
			for _, mode := range []VerifyMode{VerifyAny, VerifyAll, VerifyAligned} {
				got, err := ix.Search(q, mode)
				if err != nil {
					t.Fatalf("cfg %+v mode %v: %v", cfg.Chunk, mode, err)
				}
				found := false
				for _, g := range got {
					if g == rid {
						found = true
					}
				}
				if !found {
					t.Fatalf("cfg %+v mode %v: query %q (pos %d) not found in record %d %q",
						cfg.Chunk, mode, q, pos, rid, rc)
				}
			}
		}
	}
}

// TestAlignedModeIsExact: with no lossy encoding, VerifyAligned matches
// exactly the records that contain the query as a plaintext substring.
func TestAlignedModeIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []byte("ABCD") // tiny alphabet to force coincidences
	pl := mustPipeline(t, rawParams(4, 4, 2))
	ix := NewMemIndex(pl)
	var rcs [][]byte
	for rid := uint64(0); rid < 60; rid++ {
		n := 10 + rng.Intn(25)
		rc := make([]byte, n)
		for i := range rc {
			rc[i] = alphabet[rng.Intn(len(alphabet))]
		}
		rcs = append(rcs, rc)
		if err := ix.Insert(rid, rc); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 200; trial++ {
		qlen := 7 + rng.Intn(6) // >= 2S-1 for the full alignment set
		q := make([]byte, qlen)
		for i := range q {
			q[i] = alphabet[rng.Intn(len(alphabet))]
		}
		got, err := ix.Search(q, VerifyAligned)
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for rid, rc := range rcs {
			if bytes.Contains(rc, q) {
				want = append(want, uint64(rid))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %q: got %v, want %v", q, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %q: got %v, want %v", q, got, want)
			}
		}
	}
}

// TestAnyModeOverApproximates: VerifyAny may report extra records but
// never misses one, and every VerifyAligned hit is also a VerifyAny hit.
func TestAnyModeOverApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alphabet := []byte("AB")
	pl := mustPipeline(t, rawParams(4, 2, 1))
	ix := NewMemIndex(pl)
	var rcs [][]byte
	for rid := uint64(0); rid < 40; rid++ {
		n := 12 + rng.Intn(16)
		rc := make([]byte, n)
		for i := range rc {
			rc[i] = alphabet[rng.Intn(len(alphabet))]
		}
		rcs = append(rcs, rc)
		ix.Insert(rid, rc)
	}
	for trial := 0; trial < 100; trial++ {
		qlen := 7 + rng.Intn(4)
		q := make([]byte, qlen)
		for i := range q {
			q[i] = alphabet[rng.Intn(len(alphabet))]
		}
		anyHits, err := ix.Search(q, VerifyAny)
		if err != nil {
			t.Fatal(err)
		}
		anySet := make(map[uint64]bool)
		for _, r := range anyHits {
			anySet[r] = true
		}
		for rid, rc := range rcs {
			if bytes.Contains(rc, q) && !anySet[uint64(rid)] {
				t.Fatalf("VerifyAny missed true occurrence of %q in record %d", q, rid)
			}
		}
	}
}

func TestQueryTooShort(t *testing.T) {
	pl := mustPipeline(t, rawParams(8, 4, 1))
	ix := NewMemIndex(pl)
	ix.Insert(1, []byte("ABCDEFGHIJKLMNOP"))
	if _, err := ix.Search([]byte("ABCDEFGH"), VerifyAny); err == nil {
		t.Error("8-symbol query accepted (min is 9)")
	}
}

func TestDropPartialInteriorMatches(t *testing.T) {
	p := rawParams(4, 2, 2)
	p.Chunk.DropPartial = true
	pl := mustPipeline(t, p)
	ix := NewMemIndex(pl)
	rc := []byte("XXXXSCHWARZ THOMASXXXX")
	ix.Insert(7, rc)
	// Interior query, fully covered by stored chunks.
	got, err := ix.Search([]byte("SCHWARZ T"), VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("interior query not found: %v", got)
	}
}

func TestSymbolCodebookPipeline(t *testing.T) {
	// Table-4 configuration: per-symbol encoding into 8 codes, then
	// chunk size 2 with 2 chunkings, no dispersion.
	corpus := [][]byte{[]byte("ABOGADO ALEJANDRO & CATHERINE"), []byte("SCHWARZ THOMAS"), []byte("LITWIN WITOLD")}
	cb, err := encode.Train(corpus, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{
		Chunk:          chunk.Params{S: 2, M: 2},
		SymbolCodebook: cb,
		DisperseK:      1,
		Key:            testKey(),
	}
	pl := mustPipeline(t, p)
	if pl.ChunkBits() != 6 { // 2 symbols × 3 bits
		t.Errorf("ChunkBits = %d, want 6", pl.ChunkBits())
	}
	ix := NewMemIndex(pl)
	for i, rc := range corpus {
		if err := ix.Insert(uint64(i), rc); err != nil {
			t.Fatal(err)
		}
	}
	// True positive must be found.
	got, err := ix.Search([]byte("SCHWARZ"), VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range got {
		if r == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("SCHWARZ not found under symbol encoding: %v", got)
	}
	// The paper's collision: B and V share a code, so AVOGADO does hit
	// ABOGADO — a Stage-2 false positive by design.
	col, err := cb.Collides([]byte("B"), []byte("V"))
	if err != nil {
		t.Fatal(err)
	}
	if col {
		got, err = ix.Search([]byte("AVOGADO"), VerifyAny)
		if err != nil {
			t.Fatal(err)
		}
		hit := false
		for _, r := range got {
			if r == 0 {
				hit = true
			}
		}
		if !hit {
			t.Error("expected Stage-2 false positive for AVOGADO (B/V collide)")
		}
	}
}

func TestChunkCodebookPipeline(t *testing.T) {
	// Table-5 configuration: 2-symbol chunks encoded into 16 codes, two
	// chunkings, dispersed over 2 sites (4 bits → 2 pieces of 2 bits).
	corpus := [][]byte{
		[]byte("ABOGADO ALEJANDRO & CATHERINE"),
		[]byte("SCHWARZ THOMAS"),
		[]byte("MARTINEZ MARIA"),
		[]byte("WONG MEI"),
	}
	cb, err := encode.Train(corpus, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{
		Chunk:         chunk.Params{S: 2, M: 2},
		ChunkCodebook: cb,
		DisperseK:     2,
		MatrixKind:    disperse.MatrixRandom,
		Key:           testKey(),
	}
	pl := mustPipeline(t, p)
	if pl.ChunkBits() != 4 {
		t.Errorf("ChunkBits = %d, want 4", pl.ChunkBits())
	}
	ix := NewMemIndex(pl)
	for i, rc := range corpus {
		if err := ix.Insert(uint64(i), rc); err != nil {
			t.Fatal(err)
		}
	}
	for i, rc := range corpus {
		name := rc[:bytes.IndexByte(rc, ' ')]
		if len(name) < pl.MinQueryLen() {
			continue
		}
		got, err := ix.Search(name, VerifyAny)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range got {
			if r == uint64(i) {
				found = true
			}
		}
		if !found {
			t.Errorf("record %d: %q not found: %v", i, name, got)
		}
	}
}

func TestWideUndispersedChunks(t *testing.T) {
	// S=4 raw, K=1: 32-bit chunks stored as two 16-bit pieces on one
	// site. Matching must stay chunk-aligned.
	pl := mustPipeline(t, rawParams(4, 4, 1))
	ix := NewMemIndex(pl)
	ix.Insert(1, []byte("ABCDEFGHIJKLMNOP"))
	ix.Insert(2, []byte("ZZZZZZZZZZZZZZZZ"))
	got, err := ix.Search([]byte("CDEFGHI"), VerifyAligned)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("got %v, want [1]", got)
	}
}

func TestCombineHitsModes(t *testing.T) {
	geom := chunk.Params{S: 4, M: 2}
	// A consistent pair of hits: position 2 seen from both chunkings.
	// chunking 0: a=(4-(2+0)%4)%4=2, idx=(2+2+0)/4=1
	// chunking 1 (shift 2): a=(4-(2+2)%4)%4=0, idx=(2+0+2)/4=1
	consistent := []SeriesHit{
		{RID: 1, J: 0, A: 2, ChunkIndex: 1},
		{RID: 1, J: 1, A: 0, ChunkIndex: 1},
	}
	inconsistent := []SeriesHit{
		{RID: 1, J: 0, A: 2, ChunkIndex: 1}, // position 2
		{RID: 1, J: 1, A: 0, ChunkIndex: 2}, // position 6
	}
	oneChunking := consistent[:1]

	if CombineHits(nil, 2, VerifyAny, geom) {
		t.Error("no hits should not match")
	}
	if !CombineHits(oneChunking, 2, VerifyAny, geom) {
		t.Error("VerifyAny should accept a single hit")
	}
	if CombineHits(oneChunking, 2, VerifyAll, geom) {
		t.Error("VerifyAll should reject a single-chunking hit")
	}
	if !CombineHits(consistent, 2, VerifyAll, geom) {
		t.Error("VerifyAll should accept hits from all chunkings")
	}
	if !CombineHits(consistent, 2, VerifyAligned, geom) {
		t.Error("VerifyAligned should accept position-consistent hits")
	}
	if CombineHits(inconsistent, 2, VerifyAligned, geom) {
		t.Error("VerifyAligned should reject position-inconsistent hits")
	}
	if CombineHits(consistent, 2, VerifyMode(99), geom) {
		t.Error("unknown mode should reject")
	}
}

func TestVerifyModeString(t *testing.T) {
	if VerifyAny.String() != "any" || VerifyAll.String() != "all" ||
		VerifyAligned.String() != "aligned" || VerifyMode(9).String() != "unknown" {
		t.Error("String() values wrong")
	}
}

func TestMemIndexLifecycle(t *testing.T) {
	pl := mustPipeline(t, rawParams(4, 2, 1))
	ix := NewMemIndex(pl)
	if ix.Len() != 0 {
		t.Error("new index not empty")
	}
	ix.Insert(1, []byte("HELLO WORLD AGAIN"))
	ix.Insert(2, []byte("GOODBYE WORLD NOW"))
	if ix.Len() != 2 {
		t.Errorf("Len = %d", ix.Len())
	}
	got, _ := ix.Search([]byte("WORLD"), VerifyAny)
	if len(got) != 2 {
		t.Errorf("WORLD found in %v", got)
	}
	// Replace record 1; old content must stop matching.
	ix.Insert(1, []byte("SOMETHING ELSE HERE"))
	got, _ = ix.Search([]byte("HELLO"), VerifyAny)
	if len(got) != 0 {
		t.Errorf("replaced content still matches: %v", got)
	}
	if !ix.Delete(2) {
		t.Error("Delete(2) = false")
	}
	if ix.Delete(2) {
		t.Error("double delete reported true")
	}
	got, _ = ix.Search([]byte("WORLD"), VerifyAny)
	if len(got) != 0 {
		t.Errorf("deleted record still matches: %v", got)
	}
	if ix.Pipeline() != pl {
		t.Error("Pipeline accessor wrong")
	}
}

func TestSearchHitsDiagnostics(t *testing.T) {
	pl := mustPipeline(t, rawParams(4, 4, 1))
	ix := NewMemIndex(pl)
	rc := []byte("ABCDEFGHIJKLMNOP")
	ix.Insert(5, rc)
	hits, err := ix.SearchHits([]byte("CDEFGHIJK"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	// Every hit must imply the true position 2.
	for _, h := range hits {
		if pos := h.Position(pl.Params().Chunk); pos != 2 {
			t.Errorf("hit %+v implies position %d, want 2", h, pos)
		}
	}
	// With the full alignment set and M=S=4, all 4 chunkings hit.
	seenJ := make(map[int]bool)
	for _, h := range hits {
		seenJ[h.J] = true
	}
	if len(seenJ) != 4 {
		t.Errorf("hits from %d chunkings, want 4", len(seenJ))
	}
}

// TestFigure2Example mirrors the paper's Figure 2: record "SCHWARZ"
// searched with a leading space, chunk size 4, two chunkings.
func TestFigure2Example(t *testing.T) {
	pl := mustPipeline(t, rawParams(4, 2, 1))
	ix := NewMemIndex(pl)
	rc := []byte("415-439-0007 SCHWARZ THOMAS")
	ix.Insert(7, rc)
	got, err := ix.Search([]byte(" SCHWARZ "), VerifyAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("got %v, want [7]", got)
	}
	// Two chunkings → the minimal set compiles two search series.
	q, err := pl.BuildQuery([]byte(" SCHWARZ "), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 2 {
		t.Errorf("%d search series, want 2 (Figure 2b)", len(q.Series))
	}
}
