// Package core composes the three stages of the paper's encrypted
// searchable index into a single pipeline:
//
//	record content (RC)
//	  → optional Stage-2 symbol encoding        (internal/encode)
//	  → Stage-1 chunking at M shifts            (internal/chunk)
//	  → optional Stage-2 chunk-level encoding   (internal/encode)
//	  → Stage-1 ECB encryption per chunk        (internal/cipherx)
//	  → Stage-3 dispersion into K piece streams (internal/disperse)
//
// The output of indexing one record is M index records (one per
// chunking), each dispersed into K piece streams destined for K
// dispersion sites. A query runs through the same pipeline to produce,
// per alignment series, K piece patterns; a site matches its pattern
// against its streams by exact consecutive-piece comparison, and the
// coordinator combines per-site hits (all K sites of one chunking must
// agree at the same offset).
//
// The package also provides MemIndex, a single-process reference
// implementation of the full store/search semantics. The distributed
// implementation in internal/sdds must agree with it result-for-result,
// which the integration tests assert.
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/chunk"
	"repro/internal/cipherx"
	"repro/internal/disperse"
	"repro/internal/encode"
)

// Params configures the index pipeline for one index file.
type Params struct {
	// Chunk fixes the Stage-1 geometry (chunk size S, chunkings M,
	// partial-chunk suppression).
	Chunk chunk.Params

	// SymbolCodebook, when non-nil, applies Stage-2 redundancy removal
	// at the symbol level before chunking: every RC byte is replaced by
	// its code value. The codebook must have GroupSize 1 and at most 256
	// codes. This is the configuration of the paper's Table 4.
	SymbolCodebook *encode.Codebook

	// ChunkCodebook, when non-nil, applies Stage-2 redundancy removal at
	// the chunk level: every Stage-1 chunk (S raw symbols) is replaced
	// by one code value. The codebook's GroupSize must equal Chunk.S.
	// This is the configuration of the paper's Table 5. Mutually
	// exclusive with SymbolCodebook.
	ChunkCodebook *encode.Codebook

	// DisperseK is the number of dispersion sites K (Stage 3). 1 means
	// no dispersion: the encrypted chunk is stored whole on one site.
	DisperseK int

	// MatrixKind selects the dispersal matrix family. Ignored when
	// DisperseK is 1.
	MatrixKind disperse.MatrixKind

	// Key is the client's master key for this index file; the ECB chunk
	// key and the dispersal matrix are derived from it.
	Key cipherx.Key
}

// Pipeline is the compiled form of Params. Immutable and safe for
// concurrent use.
type Pipeline struct {
	p          Params
	symbolBits uint // bits per stream symbol (8 raw, or codebook bits)
	chunkBits  uint // bits per packed chunk value
	ecb        *cipherx.BitPRP
	disp       *disperse.Disperser // nil when K == 1
}

// NewPipeline validates params and compiles the pipeline.
func NewPipeline(p Params) (*Pipeline, error) {
	if err := p.Chunk.Validate(); err != nil {
		return nil, err
	}
	if p.SymbolCodebook != nil && p.ChunkCodebook != nil {
		return nil, errors.New("core: symbol and chunk codebooks are mutually exclusive")
	}
	pl := &Pipeline{p: p, symbolBits: 8}
	if cb := p.SymbolCodebook; cb != nil {
		if cb.GroupSize() != 1 {
			return nil, fmt.Errorf("core: symbol codebook group size %d, want 1", cb.GroupSize())
		}
		if cb.N() > 256 {
			return nil, fmt.Errorf("core: symbol codebook has %d codes, want <= 256", cb.N())
		}
		pl.symbolBits = cb.Bits()
	}
	if cb := p.ChunkCodebook; cb != nil {
		if cb.GroupSize() != p.Chunk.S {
			return nil, fmt.Errorf("core: chunk codebook group size %d, want S=%d", cb.GroupSize(), p.Chunk.S)
		}
		pl.chunkBits = cb.Bits()
	} else {
		pl.chunkBits = uint(p.Chunk.S) * pl.symbolBits
	}
	if pl.chunkBits < 1 || pl.chunkBits > 64 {
		return nil, fmt.Errorf("core: packed chunk width %d bits, want 1..64", pl.chunkBits)
	}
	ecb, err := cipherx.NewBitPRP(cipherx.DeriveKey(p.Key, "index-ecb"), pl.chunkBits)
	if err != nil {
		return nil, err
	}
	pl.ecb = ecb
	if p.DisperseK < 1 {
		return nil, fmt.Errorf("core: DisperseK %d, want >= 1", p.DisperseK)
	}
	if p.DisperseK > 1 {
		if pl.chunkBits%uint(p.DisperseK) != 0 {
			return nil, fmt.Errorf("core: DisperseK %d does not divide chunk width %d bits", p.DisperseK, pl.chunkBits)
		}
		g := pl.chunkBits / uint(p.DisperseK)
		if g > 16 {
			return nil, fmt.Errorf("core: piece width %d bits exceeds 16; raise DisperseK", g)
		}
		d, err := disperse.New(disperse.Params{
			K:    p.DisperseK,
			G:    g,
			Kind: p.MatrixKind,
			Key:  cipherx.DeriveKey(p.Key, "index-dispersal"),
		})
		if err != nil {
			return nil, err
		}
		pl.disp = d
	}
	return pl, nil
}

// Params returns the pipeline's configuration.
func (pl *Pipeline) Params() Params { return pl.p }

// ChunkBits returns the packed chunk width in bits.
func (pl *Pipeline) ChunkBits() uint { return pl.chunkBits }

// K returns the number of dispersion sites (1 = no dispersion).
func (pl *Pipeline) K() int { return pl.p.DisperseK }

// Chunkings returns M, the number of index records per record.
func (pl *Pipeline) Chunkings() int { return pl.p.Chunk.M }

// MinQueryLen returns the minimum searchable query length in raw
// symbols for the minimal alignment set. (A symbol-level codebook maps
// raw symbols 1:1 onto stream symbols, so the geometry is unchanged.)
func (pl *Pipeline) MinQueryLen() int {
	return pl.p.Chunk.S + pl.p.Chunk.Alignments() - 1
}

// symbolStream maps RC bytes to the pipeline's symbol stream: the
// identity for raw mode, per-symbol codes under a symbol codebook.
func (pl *Pipeline) symbolStream(rc []byte) ([]byte, error) {
	cb := pl.p.SymbolCodebook
	if cb == nil {
		return rc, nil
	}
	codes, err := cb.Encode(rc, 0)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = byte(c)
	}
	return out, nil
}

// packChunk converts one S-symbol chunk into its chunk value: the
// chunk-codebook code if configured, else the big-endian packing of the
// symbols at symbolBits each.
func (pl *Pipeline) packChunk(c []byte) (uint64, error) {
	if cb := pl.p.ChunkCodebook; cb != nil {
		code, err := cb.Code(c)
		if err != nil {
			return 0, err
		}
		return uint64(code), nil
	}
	var v uint64
	for _, s := range c {
		v = v<<pl.symbolBits | uint64(s)
	}
	return v, nil
}

// valsPool recycles the encrypted-chunk scratch vector of
// encryptChunks: the values are dead once the piece streams are built,
// so the buffer never escapes an encryptChunks call.
var valsPool = sync.Pool{New: func() any { return new([]uint64) }}

// encryptChunks runs Stage 1's ECB and Stage 3's dispersion over a chunk
// sequence, yielding the K piece streams (K = 1 gives one stream of
// whole encrypted chunk values). The dispersion loop writes pieces
// straight into the output streams via DisperseInto — one backing
// allocation for all K streams, no per-chunk garbage.
func (pl *Pipeline) encryptChunks(chunks [][]byte) ([][]disperse.Piece, error) {
	vp := valsPool.Get().(*[]uint64)
	defer valsPool.Put(vp)
	if cap(*vp) < len(chunks) {
		*vp = make([]uint64, len(chunks))
	}
	vals := (*vp)[:len(chunks)]
	for i, c := range chunks {
		v, err := pl.packChunk(c)
		if err != nil {
			return nil, err
		}
		vals[i] = pl.ecb.EncryptBits(v)
	}
	if pl.disp != nil {
		k := pl.disp.K()
		streams := make([][]disperse.Piece, k)
		backing := make([]disperse.Piece, k*len(vals))
		for i := range streams {
			streams[i] = backing[i*len(vals) : (i+1)*len(vals) : (i+1)*len(vals)]
		}
		var tmp [64]disperse.Piece // K*G <= 64 bits bounds K at 64
		for ci, v := range vals {
			pl.disp.DisperseInto(tmp[:k], v)
			for i := 0; i < k; i++ {
				streams[i][ci] = tmp[i]
			}
		}
		return streams, nil
	}
	// No dispersion: a single stream. Chunk values can exceed 16 bits
	// only when packing raw symbols, in which case we must keep whole
	// values; Piece is 16-bit, so wide undispersed chunks are split into
	// 16-bit pieces on the single site, preserving exact matching.
	per := int((pl.chunkBits + 15) / 16)
	stream := make([]disperse.Piece, 0, len(vals)*per)
	for _, v := range vals {
		for s := per - 1; s >= 0; s-- {
			stream = append(stream, disperse.Piece(v>>(uint(s)*16)))
		}
	}
	return [][]disperse.Piece{stream}, nil
}

// piecesPerChunk returns how many stored pieces one chunk occupies in a
// single site's stream (1 when dispersed; ceil(chunkBits/16) when not).
func (pl *Pipeline) piecesPerChunk() int {
	if pl.disp != nil {
		return 1
	}
	return int((pl.chunkBits + 15) / 16)
}

// IndexRecord is the index data of one (record, chunking) pair.
type IndexRecord struct {
	// RID identifies the original record.
	RID uint64
	// J is the chunking index (0 <= J < M).
	J int
	// FirstIndex is the chunk index of the first stored chunk (nonzero
	// after DropPartial trimming).
	FirstIndex int
	// Streams[k] is the piece stream stored on dispersion site k.
	Streams [][]disperse.Piece
}

// BuildIndex produces the M index records of one record content.
func (pl *Pipeline) BuildIndex(rid uint64, rc []byte) ([]IndexRecord, error) {
	stream, err := pl.symbolStream(rc)
	if err != nil {
		return nil, err
	}
	out := make([]IndexRecord, 0, pl.p.Chunk.M)
	for j := 0; j < pl.p.Chunk.M; j++ {
		ck := chunk.Split(stream, pl.p.Chunk, j)
		streams, err := pl.encryptChunks(ck.Chunks)
		if err != nil {
			return nil, err
		}
		out = append(out, IndexRecord{
			RID:        rid,
			J:          j,
			FirstIndex: ck.FirstIndex,
			Streams:    streams,
		})
	}
	return out, nil
}

// QuerySeries is one alignment of a compiled query: per dispersion site,
// the consecutive piece pattern to match.
type QuerySeries struct {
	// A is the alignment in stream symbols.
	A int
	// Patterns[k] is the pattern for dispersion site k.
	Patterns [][]disperse.Piece
	// Chunks is the number of chunks in the series.
	Chunks int
}

// Query is a compiled substring query.
type Query struct {
	// Series holds one entry per generated alignment.
	Series []QuerySeries
	// All records whether the full alignment set (S series) was
	// generated rather than the minimal S/M set.
	All bool
}

// BuildQuery compiles a substring query through the same pipeline. With
// all=false the minimal S/M alignment set is generated (cheapest, most
// false positives); with all=true the full S-series set (the §2.3 basic
// scheme, enabling cross-chunking verification).
func (pl *Pipeline) BuildQuery(q []byte, all bool) (*Query, error) {
	stream, err := pl.symbolStream(q)
	if err != nil {
		return nil, err
	}
	series, err := chunk.QuerySeries(stream, pl.p.Chunk, all)
	if err != nil {
		return nil, err
	}
	out := &Query{All: all, Series: make([]QuerySeries, 0, len(series))}
	for _, s := range series {
		streams, err := pl.encryptChunks(s.Chunks)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, QuerySeries{
			A:        s.A,
			Patterns: streams,
			Chunks:   len(s.Chunks),
		})
	}
	return out, nil
}

// MatchOffsets returns every offset o (in pieces) at which pattern
// occurs as a consecutive run in stream. It is the site-side matching
// primitive: both inputs are opaque encrypted pieces, so a storage site
// can execute it without any key material.
func MatchOffsets(stream, pattern []disperse.Piece) []int {
	if len(pattern) == 0 || len(pattern) > len(stream) {
		return nil
	}
	var out []int
outer:
	for o := 0; o+len(pattern) <= len(stream); o++ {
		for i, p := range pattern {
			if stream[o+i] != p {
				continue outer
			}
		}
		out = append(out, o)
	}
	return out
}

// SeriesHit is one coordinator-level hit: chunking J matched series
// alignment A with its first chunk at ChunkIndex.
type SeriesHit struct {
	RID        uint64
	J          int
	A          int
	ChunkIndex int
}

// Position returns the record position (in stream symbols) implied by
// the hit, which may be negative when the match begins in the padded
// head region.
func (h SeriesHit) Position(p chunk.Params) int {
	return chunk.Position(p, h.J, h.A, h.ChunkIndex)
}

// MatchIndexRecord matches one compiled query against one index record:
// for each series, the offsets at which all K site streams agree. This
// is the conjunction the paper specifies: "if all dispersion sites
// belonging to a certain record chunking report a hit at the same
// offset, then this is reported as a hit".
func (pl *Pipeline) MatchIndexRecord(q *Query, rec *IndexRecord) []SeriesHit {
	ppc := pl.piecesPerChunk()
	var hits []SeriesHit
	for _, s := range q.Series {
		// Site 0 drives; other sites confirm.
		offs := MatchOffsets(rec.Streams[0], s.Patterns[0])
		for _, o := range offs {
			if ppc > 1 && o%ppc != 0 {
				// Undispersed wide chunks occupy ppc pieces each; only
				// chunk-aligned offsets correspond to chunk boundaries.
				continue
			}
			ok := true
			for k := 1; k < len(rec.Streams); k++ {
				if !MatchAt(rec.Streams[k], s.Patterns[k], o) {
					ok = false
					break
				}
			}
			if ok {
				hits = append(hits, SeriesHit{
					RID:        rec.RID,
					J:          rec.J,
					A:          s.A,
					ChunkIndex: rec.FirstIndex + o/ppc,
				})
			}
		}
	}
	return hits
}

// MatchAt reports whether pattern occurs in stream at offset o — the
// single-candidate form of MatchOffsets, used by posting-list probes
// that already know the candidate positions.
func MatchAt(stream, pattern []disperse.Piece, o int) bool {
	if o < 0 || o+len(pattern) > len(stream) || len(pattern) == 0 {
		return false
	}
	for i, p := range pattern {
		if stream[o+i] != p {
			return false
		}
	}
	return true
}
