package core

import (
	"sort"
	"sync"

	"repro/internal/chunk"
)

// VerifyMode selects how the coordinator combines per-chunking hits into
// a record-level match decision. All modes already require agreement of
// all K dispersion sites within a chunking (that conjunction happens in
// MatchIndexRecord); the mode governs agreement *across* chunkings.
type VerifyMode uint8

const (
	// VerifyAny reports a record as soon as any single (chunking,
	// alignment) pair matches — the §2.5 storage-reduced semantics. With
	// the minimal alignment set this is the only possible mode, since
	// exactly one pair can match a true occurrence.
	VerifyAny VerifyMode = iota
	// VerifyAll requires every chunking to report at least one hit —
	// the §2.3 basic-scheme semantics ("it is not possible that a search
	// results in false positives from all sites"). Requires the full
	// alignment set.
	VerifyAll
	// VerifyAligned additionally requires the per-chunking hits to agree
	// on a single occurrence position, the strongest check expressible
	// over the index records. Requires the full alignment set.
	VerifyAligned
)

// String implements fmt.Stringer.
func (m VerifyMode) String() string {
	switch m {
	case VerifyAny:
		return "any"
	case VerifyAll:
		return "all"
	case VerifyAligned:
		return "aligned"
	default:
		return "unknown"
	}
}

// CombineHits reduces per-series hits for one record to a match decision
// under the given mode. chunkings is M, the number of chunkings the
// record was indexed with; geom is the chunking geometry (needed to map
// hits to occurrence positions under VerifyAligned).
func CombineHits(hits []SeriesHit, chunkings int, mode VerifyMode, geom chunk.Params) bool {
	if len(hits) == 0 {
		return false
	}
	switch mode {
	case VerifyAny:
		return true
	case VerifyAll:
		seen := make(map[int]bool)
		for _, h := range hits {
			seen[h.J] = true
		}
		return len(seen) == chunkings
	case VerifyAligned:
		// Positions implied per chunking; a record matches if some
		// position is implied by every chunking.
		perJ := make(map[int]map[int]bool)
		for _, h := range hits {
			pos := h.Position(geom)
			if perJ[h.J] == nil {
				perJ[h.J] = make(map[int]bool)
			}
			perJ[h.J][pos] = true
		}
		if len(perJ) != chunkings {
			return false
		}
		// Intersect over the smallest set.
		var smallest map[int]bool
		for _, s := range perJ {
			if smallest == nil || len(s) < len(smallest) {
				smallest = s
			}
		}
		for pos := range smallest {
			all := true
			for _, s := range perJ {
				if !s[pos] {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// MemIndex is the single-process reference implementation of the
// complete scheme: it stores index records in memory and searches them
// exactly as the distributed coordinator would. The distributed engine
// must agree with MemIndex result-for-result.
type MemIndex struct {
	pl *Pipeline

	mu   sync.RWMutex
	recs map[uint64][]IndexRecord
}

// NewMemIndex builds an empty reference index over the pipeline.
func NewMemIndex(pl *Pipeline) *MemIndex {
	return &MemIndex{pl: pl, recs: make(map[uint64][]IndexRecord)}
}

// Pipeline returns the underlying pipeline.
func (ix *MemIndex) Pipeline() *Pipeline { return ix.pl }

// Len returns the number of indexed records.
func (ix *MemIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.recs)
}

// Insert indexes one record content under rid, replacing any previous
// index for the same rid.
func (ix *MemIndex) Insert(rid uint64, rc []byte) error {
	recs, err := ix.pl.BuildIndex(rid, rc)
	if err != nil {
		return err
	}
	ix.mu.Lock()
	ix.recs[rid] = recs
	ix.mu.Unlock()
	return nil
}

// Delete removes a record's index. It reports whether the rid existed.
func (ix *MemIndex) Delete(rid uint64) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.recs[rid]; !ok {
		return false
	}
	delete(ix.recs, rid)
	return true
}

// Search returns the sorted RIDs of records matching the query under
// the given verification mode. VerifyAll and VerifyAligned compile the
// full alignment set; VerifyAny the minimal one.
func (ix *MemIndex) Search(q []byte, mode VerifyMode) ([]uint64, error) {
	query, err := ix.pl.BuildQuery(q, mode != VerifyAny)
	if err != nil {
		return nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []uint64
	for rid, recs := range ix.recs {
		var hits []SeriesHit
		for i := range recs {
			hits = append(hits, ix.pl.MatchIndexRecord(query, &recs[i])...)
		}
		if CombineHits(hits, ix.pl.Chunkings(), mode, ix.pl.p.Chunk) {
			out = append(out, rid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// SearchHits returns the raw per-series hits for a query — the data a
// coordinator would see — for diagnostics and experiments.
func (ix *MemIndex) SearchHits(q []byte, all bool) ([]SeriesHit, error) {
	query, err := ix.pl.BuildQuery(q, all)
	if err != nil {
		return nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var hits []SeriesHit
	for _, recs := range ix.recs {
		for i := range recs {
			hits = append(hits, ix.pl.MatchIndexRecord(query, &recs[i])...)
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.RID != b.RID {
			return a.RID < b.RID
		}
		if a.J != b.J {
			return a.J < b.J
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.ChunkIndex < b.ChunkIndex
	})
	return hits, nil
}
