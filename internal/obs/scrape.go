package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ParseText inverts WriteText: it parses the text exposition into a
// flat name → value map. Histogram quantile lines are flattened to
// suffixed keys — `lat{quantile="0.5"} 7` becomes `lat_p50: 7` — so a
// scrape consumer addresses every series by one flat name. Unparsable
// lines are an error: a half-read scrape must not pass for a complete
// one.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("obs: metrics line %d: no value in %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: bad value in %q", lineNo, line)
		}
		if base, rest, hasQ := strings.Cut(name, `{quantile="`); hasQ {
			q, _, closed := strings.Cut(rest, `"}`)
			if !closed {
				return nil, fmt.Errorf("obs: metrics line %d: unterminated quantile label in %q", lineNo, line)
			}
			switch q {
			case "0.5":
				name = base + "_p50"
			case "0.9":
				name = base + "_p90"
			case "0.99":
				name = base + "_p99"
			default:
				name = base + "_q" + q
			}
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Scrape fetches a /metrics endpoint (as served by Registry.Handler)
// and parses it with ParseText.
func Scrape(ctx context.Context, url string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scraping %s: HTTP %d", url, resp.StatusCode)
	}
	return ParseText(resp.Body)
}
