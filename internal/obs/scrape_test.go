package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestParseTextRoundTrip: ParseText must invert WriteText for every
// instrument kind, with histogram quantiles flattened to _p50/_p90/_p99.
func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(42)
	r.Gauge("inflight").Set(-3)
	h := r.Histogram("op_latency_ns")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}

	got, err := ParseText(strings.NewReader(r.WriteString()))
	if err != nil {
		t.Fatal(err)
	}
	if got["ops_total"] != 42 {
		t.Errorf("ops_total = %v, want 42", got["ops_total"])
	}
	if got["inflight"] != -3 {
		t.Errorf("inflight = %v, want -3", got["inflight"])
	}
	if got["op_latency_ns_count"] != 1000 {
		t.Errorf("histogram count = %v, want 1000", got["op_latency_ns_count"])
	}
	snap := h.Snapshot()
	for key, want := range map[string]int64{
		"op_latency_ns_p50": snap.P50,
		"op_latency_ns_p90": snap.P90,
		"op_latency_ns_p99": snap.P99,
	} {
		if got[key] != float64(want) {
			t.Errorf("%s = %v, want %d", key, got[key], want)
		}
	}
	if _, ok := got[`op_latency_ns{quantile="0.5"}`]; ok {
		t.Error("raw quantile label leaked into parsed keys")
	}
}

// TestParseTextRejectsGarbage: truncated or mangled lines fail loudly.
func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"name_only",
		"name not_a_number",
		`lat{quantile="0.5 7`,
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted", bad)
		}
	}
}

// TestScrape: the HTTP round trip through Registry.Handler.
func TestScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("splits_total").Add(7)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	got, err := Scrape(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got["splits_total"] != 7 {
		t.Fatalf("scraped splits_total = %v, want 7", got["splits_total"])
	}
	if _, err := Scrape(context.Background(), srv.URL+"/missing%"); err == nil {
		t.Error("bad URL accepted")
	}
}
