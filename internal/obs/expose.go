package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WriteText renders every registered instrument as a Prometheus-style
// text page: one `name value` line per counter/gauge, and a block of
// `name_count`, `name_sum`, and `name{quantile="..."}` lines per
// histogram. Names are emitted in sorted order so scrapes are diffable.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	insts := make(map[string]any, len(names))
	for _, n := range names {
		insts[n] = r.insts[n]
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		switch inst := insts[name].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, inst.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, inst.Value()); err != nil {
				return err
			}
		case *Histogram:
			s := inst.Snapshot()
			if _, err := fmt.Fprintf(w,
				"%s_count %d\n%s_sum %d\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.9\"} %d\n%s{quantile=\"0.99\"} %d\n",
				name, s.Count, name, s.Sum, name, s.P50, name, s.P90, name, s.P99); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteString renders the text exposition to a string.
func (r *Registry) WriteString() string {
	var b strings.Builder
	r.WriteText(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// Handler returns an http.Handler serving the text exposition, suitable
// for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w) //nolint:errcheck // client went away
	})
}

// snapshotJSON is the expvar rendering of the whole registry.
func (r *Registry) snapshotJSON() interface{} {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	insts := make(map[string]any, len(names))
	for _, n := range names {
		insts[n] = r.insts[n]
	}
	r.mu.Unlock()
	out := make(map[string]any, len(names))
	for _, name := range names {
		switch inst := insts[name].(type) {
		case *Counter:
			out[name] = inst.Value()
		case *Gauge:
			out[name] = inst.Value()
		case *Histogram:
			s := inst.Snapshot()
			out[name] = map[string]any{
				"count": s.Count, "sum": s.Sum,
				"min": s.Min, "max": s.Max, "mean": s.Mean,
				"p50": s.P50, "p90": s.P90, "p99": s.P99,
			}
		}
	}
	return out
}

// expvarFunc adapts the registry to expvar.Var.
type expvarFunc func() interface{}

func (f expvarFunc) String() string {
	b, err := json.Marshal(f())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// PublishExpvar publishes the registry under the given expvar name
// (e.g. "esdds"). Safe to call once per process per name; expvar
// panics on duplicate names, so Publish guards with Get.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvarFunc(r.snapshotJSON))
}
