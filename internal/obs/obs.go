// Package obs is a dependency-free observability kit for the SDDS
// reproduction: atomic counters and gauges, bounded log-linear latency
// histograms with quantile snapshots, and a registry that renders
// everything as a Prometheus-style text page and as expvar JSON.
//
// The paper's evaluation (ICDE 2006 §5) reasons from measured per-stage
// costs; this package is how the reproduction measures them. Every layer
// (transport, node, WAL, control loops) accepts a *Registry via an
// Instrument method and publishes named instruments into it. Instruments
// are safe for concurrent use: counters and gauges are single atomics,
// histograms are fixed arrays of atomic buckets, and the registry itself
// is a copy-on-read map under a mutex.
//
// Naming convention: `<layer>_<what>_<unit>` in snake_case, where layer
// is one of transport_, node_, wal_, cluster_, detector_, supervisor_,
// guardian_; counters end in _total, duration histograms in _ns.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op on Add/Inc (so call sites
// in un-instrumented components need no guards beyond a nil metrics
// struct check).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op on a nil receiver).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value; it can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value (no-op on a nil receiver).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: log-linear, like HDR histograms. Values in
// [0,2^linBits) land in one bucket each (exact); larger values are split
// into octaves of 2^subBits sub-buckets, giving a relative quantile
// error bounded by 2^-subBits (~3% for subBits=5). Buckets are atomic
// uint64 counters, so Observe is lock-free and allocation-free.
const (
	subBits    = 5
	subBuckets = 1 << subBits // 32 sub-buckets per octave
	linBits    = subBits      // linear region covers [0, 32)
	// Octave 0 is the linear region; non-linear octaves run from 1
	// (values in [32,64)) through 64-subBits (top bit set), so the
	// bucket array needs 64-subBits+1 octaves to cover any uint64.
	numOctaves = 64 - subBits + 1
	numBuckets = numOctaves * subBuckets
)

// Histogram records a distribution of non-negative int64 samples
// (typically latencies in nanoseconds). All methods are safe for
// concurrent use and no-ops on a nil receiver. Construct with
// NewHistogram (or via Registry.Histogram); the zero value is not
// usable because min carries a sentinel.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until the first sample
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// NewHistogram returns a ready-to-use histogram.
func NewHistogram() *Histogram {
	h := new(Histogram)
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a sample to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	// Octave = position of the highest set bit above the linear region;
	// mantissa = the subBits bits just below it.
	hi := bits.Len64(v) - 1 // >= subBits here
	octave := hi - subBits + 1
	mantissa := (v >> (uint(hi) - subBits)) & (subBuckets - 1)
	return octave*subBuckets + int(mantissa)
}

// bucketValue returns a representative (midpoint) sample for a bucket.
func bucketValue(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	octave := idx / subBuckets
	mantissa := uint64(idx % subBuckets)
	lo := (uint64(subBuckets) | mantissa) << uint(octave-1)
	width := uint64(1) << uint(octave-1)
	return lo + width/2
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old {
			break
		}
		if h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old {
			break
		}
		if h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count         uint64
	Sum           int64
	Min, Max      int64
	P50, P90, P99 int64
	Mean          float64
}

// Snapshot summarizes the histogram. Quantiles are reconstructed from
// bucket midpoints, so they carry the ~2^-subBits relative error bound.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return s
	}
	s.Count = total
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(total)
	quantile := func(q float64) int64 {
		rank := uint64(math.Ceil(q * float64(total)))
		if rank < 1 {
			rank = 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= rank {
				v := int64(bucketValue(i))
				if v < s.Min {
					v = s.Min
				}
				if v > s.Max {
					v = s.Max
				}
				return v
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	return s
}

// Quantile returns the q-quantile (0 < q <= 1) of the observed samples,
// or 0 if the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	min, max := h.min.Load(), h.max.Load()
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			v := int64(bucketValue(i))
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}

// Registry holds named instruments. Get-or-create methods are idempotent
// and safe for concurrent use; asking for an existing name with a
// different instrument kind panics (a programming error worth failing
// loudly on).
type Registry struct {
	mu    sync.Mutex
	order []string // registration order for stable exposition
	insts map[string]any

	traces traceRing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{insts: make(map[string]any)}
}

// Counter returns the counter with the given name, creating it if
// needed. Nil-safe: a nil registry returns nil, and nil instruments
// no-op, so components can be instrumented unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return getOrCreate[*Counter](r, name, func() *Counter { return new(Counter) })
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return getOrCreate[*Gauge](r, name, func() *Gauge { return new(Gauge) })
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return getOrCreate[*Histogram](r, name, NewHistogram)
}

func getOrCreate[T any](r *Registry, name string, mk func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.insts[name]; ok {
		t, ok := got.(T)
		if !ok {
			panic(fmt.Sprintf("obs: instrument %q re-registered as a different kind (%T)", name, got))
		}
		return t
	}
	t := mk()
	r.insts[name] = t
	r.order = append(r.order, name)
	return t
}

// Names returns all registered instrument names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// CounterValue returns the value of a counter, or 0 if it does not
// exist (without creating it). Handy for test assertions.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	got := r.insts[name]
	r.mu.Unlock()
	if c, ok := got.(*Counter); ok {
		return c.Value()
	}
	return 0
}

// GaugeValue returns the value of a gauge, or 0 if it does not exist.
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	got := r.insts[name]
	r.mu.Unlock()
	if g, ok := got.(*Gauge); ok {
		return g.Value()
	}
	return 0
}

// HistogramSnapshot returns a snapshot of a histogram, or the zero
// snapshot if it does not exist.
func (r *Registry) HistogramSnapshot(name string) HistogramSnapshot {
	if r == nil {
		return HistogramSnapshot{}
	}
	r.mu.Lock()
	got := r.insts[name]
	r.mu.Unlock()
	if h, ok := got.(*Histogram); ok {
		return h.Snapshot()
	}
	return HistogramSnapshot{}
}
