package obs

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if got := r.CounterValue("x_total"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("missing"); got != 0 {
		t.Fatalf("CounterValue(missing) = %d, want 0", got)
	}
	if got := r.GaugeValue("g"); got != 4 {
		t.Fatalf("GaugeValue = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter should stay 0")
	}
	g := r.Gauge("g")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should stay 0")
	}
	h := r.Histogram("h")
	h.Observe(5)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should stay empty")
	}
	if r.Names() != nil || r.Traces() != nil {
		t.Fatal("nil registry should enumerate nothing")
	}
	if err := r.WriteText(nil); err != nil {
		t.Fatal(err)
	}
	var tr *Trace
	tr.Lap("s")
	tr.AddHops(1)
	tr.Finish()
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < perG; j++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_ns").Observe(int64(rng.Intn(1_000_000)))
			}
		}(int64(i))
	}
	wg.Wait()
	if got := r.CounterValue("c_total"); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.GaugeValue("g"); got != goroutines*perG {
		t.Fatalf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("h_ns").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	s := r.Histogram("h_ns").Snapshot()
	if s.Min < 0 || s.Max >= 1_000_000 || s.Min > s.Max {
		t.Fatalf("snapshot min/max out of range: %+v", s)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// The linear region [0,32) is exact: every value is its own bucket.
	h := NewHistogram()
	for v := int64(0); v < 32; v++ {
		h.Observe(v)
	}
	for i := 1; i <= 32; i++ {
		q := float64(i) / 32
		want := int64(i - 1)
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// The log-linear layout bounds relative error by 2^-subBits per
	// octave boundary; allow 2x that for midpoint reconstruction.
	const relErr = 2.0 / subBuckets
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform spread over ~6 decades, like latencies.
		v := int64(math.Exp(rng.Float64()*13.8)) + rng.Int63n(100)
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(math.Ceil(q*float64(len(samples))))-1]
		got := h.Quantile(q)
		if err := math.Abs(float64(got-exact)) / float64(exact); err > relErr {
			t.Errorf("Quantile(%v) = %d, exact %d, rel err %.4f > %.4f", q, got, exact, err, relErr)
		}
	}
	s := h.Snapshot()
	if s.Count != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", s.Count, len(samples))
	}
	if s.Min != samples[0] || s.Max != samples[len(samples)-1] {
		t.Fatalf("min/max = %d/%d, want %d/%d", s.Min, s.Max, samples[0], samples[len(samples)-1])
	}
	var sum int64
	for _, v := range samples {
		sum += v
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d", s.Sum, sum)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to that bucket.
	for idx := 0; idx < numBuckets; idx++ {
		v := bucketValue(idx)
		if got := bucketIndex(v); got != idx {
			t.Fatalf("bucketIndex(bucketValue(%d)) = %d", idx, got)
		}
	}
	// And indexing must be monotonic in the sample value.
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 10, 1 << 20, 1 << 40, math.MaxUint64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		if idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		prev = idx
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("negative sample should clamp to 0, got %d", got)
	}
}

func TestWriteTextAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("node_puts_total").Add(3)
	r.Gauge("cluster_down_nodes").Set(1)
	r.Histogram("node_op_ns").Observe(100)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"node_puts_total 3\n",
		"cluster_down_nodes 1\n",
		"node_op_ns_count 1\n",
		"node_op_ns_sum 100\n",
		`node_op_ns{quantile="0.99"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.String() != out {
		t.Fatalf("handler served %d / %q, want 200 / WriteText output", rec.Code, rec.Body.String())
	}
}

func TestExpvarPublish(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(2)
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry") // second publish must not panic
	s := expvarFunc(r.snapshotJSON).String()
	if !strings.Contains(s, `"c_total":2`) {
		t.Fatalf("expvar JSON missing counter: %s", s)
	}
}

func TestTraceLifecycle(t *testing.T) {
	r := NewRegistry()
	tr := r.StartTrace("search")
	tr.Lap("broadcast")
	time.Sleep(time.Millisecond)
	tr.Lap("combine")
	tr.AddHops(2)
	tr.AddHops(1)
	rec := tr.Finish()
	if rec.Op != "search" || rec.ID == 0 {
		t.Fatalf("bad record: %+v", rec)
	}
	if rec.Hops != 3 {
		t.Fatalf("hops = %d, want 3", rec.Hops)
	}
	if len(rec.Laps) != 2 || rec.Laps[0].Stage != "broadcast" || rec.Laps[1].Stage != "combine" {
		t.Fatalf("laps = %+v", rec.Laps)
	}
	if rec.Laps[1].D < time.Millisecond {
		t.Fatalf("combine lap %v should cover the sleep", rec.Laps[1].D)
	}
	if rec.Total < rec.Laps[0].D+rec.Laps[1].D {
		t.Fatalf("total %v < sum of laps", rec.Total)
	}
	got := r.Traces()
	if len(got) != 1 || got[0].ID != rec.ID {
		t.Fatalf("registry traces = %+v", got)
	}
	// Finish is idempotent: no double-store.
	tr.Finish()
	if len(r.Traces()) != 1 {
		t.Fatal("double Finish stored the trace twice")
	}
	if s := rec.String(); !strings.Contains(s, "search#") || !strings.Contains(s, "hops=3") {
		t.Fatalf("record string %q", s)
	}
}

func TestTraceRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < traceRingCap+10; i++ {
		r.StartTrace("op").Finish()
	}
	got := r.Traces()
	if len(got) != traceRingCap {
		t.Fatalf("ring holds %d, want %d", len(got), traceRingCap)
	}
	for i := 1; i < len(got); i++ {
		if got[i].ID <= got[i-1].ID {
			t.Fatalf("ring out of order at %d: %d <= %d", i, got[i].ID, got[i-1].ID)
		}
	}
}

func TestTraceContextThreading(t *testing.T) {
	r := NewRegistry()
	tr := r.StartTrace("op")
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("TraceFrom did not return the threaded trace")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatal("TraceFrom on a bare context should be nil")
	}
	if ctx2 := WithTrace(context.Background(), nil); TraceFrom(ctx2) != nil {
		t.Fatal("WithTrace(nil) should be a no-op")
	}
}

func TestConcurrentTraces(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr := r.StartTrace("op")
				tr.Lap("a")
				tr.AddHops(1)
				tr.Finish()
			}
		}()
	}
	wg.Wait()
	if got := r.Traces(); len(got) != traceRingCap {
		t.Fatalf("ring holds %d, want %d", len(got), traceRingCap)
	}
}
