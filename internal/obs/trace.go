package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a lightweight per-operation trace: an op ID, the operation
// name, stage timings recorded as laps, and the number of extra node
// hops the operation took (LH* forwards / IAM-corrected retries). It is
// deliberately simpler than a full distributed tracer — one span per
// client operation, stages recorded locally — because the point is the
// per-stage cost breakdown the paper's evaluation reasons from, not
// cross-process context propagation.
//
// All methods are nil-safe so call sites can thread a trace
// unconditionally.
type Trace struct {
	ID   uint64
	Op   string
	mu   sync.Mutex
	reg  *Registry
	t0   time.Time
	mark time.Time
	laps []Lap
	hops int
	done bool
}

// Lap is one completed stage of a traced operation.
type Lap struct {
	Stage string
	D     time.Duration
}

// TraceRecord is a finished trace as stored in the registry's ring.
type TraceRecord struct {
	ID    uint64
	Op    string
	Start time.Time
	Total time.Duration
	Hops  int
	Laps  []Lap
}

// String renders one line: "op#id total=1.2ms hops=1 stage=dur ...".
func (t TraceRecord) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d total=%s hops=%d", t.Op, t.ID, t.Total, t.Hops)
	for _, l := range t.Laps {
		fmt.Fprintf(&b, " %s=%s", l.Stage, l.D)
	}
	return b.String()
}

var traceID atomic.Uint64

// StartTrace begins a trace for the named operation. The registry may
// be nil; the trace still works (callers can inspect it) but Finish
// stores nothing.
func (r *Registry) StartTrace(op string) *Trace {
	now := time.Now()
	return &Trace{
		ID:   traceID.Add(1),
		Op:   op,
		reg:  r,
		t0:   now,
		mark: now,
	}
}

// Lap records the time since the previous Lap (or since the trace
// started) under the given stage name.
func (t *Trace) Lap(stage string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.laps = append(t.laps, Lap{Stage: stage, D: now.Sub(t.mark)})
	t.mark = now
	t.mu.Unlock()
}

// AddHops adds n to the trace's hop count.
func (t *Trace) AddHops(n int) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	t.hops += n
	t.mu.Unlock()
}

// Hops returns the accumulated hop count.
func (t *Trace) Hops() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hops
}

// Laps returns a copy of the recorded laps.
func (t *Trace) Laps() []Lap {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Lap(nil), t.laps...)
}

// Finish completes the trace and stores it in the registry's bounded
// ring of recent traces. Idempotent; returns the finished record.
func (t *Trace) Finish() TraceRecord {
	if t == nil {
		return TraceRecord{}
	}
	now := time.Now()
	t.mu.Lock()
	rec := TraceRecord{
		ID:    t.ID,
		Op:    t.Op,
		Start: t.t0,
		Total: now.Sub(t.t0),
		Hops:  t.hops,
		Laps:  append([]Lap(nil), t.laps...),
	}
	already := t.done
	t.done = true
	t.mu.Unlock()
	if !already && t.reg != nil {
		t.reg.traces.add(rec)
	}
	return rec
}

// traceRingCap bounds the registry's memory for finished traces.
const traceRingCap = 64

// traceRing is a bounded ring of recent finished traces.
type traceRing struct {
	mu   sync.Mutex
	recs [traceRingCap]TraceRecord
	n    uint64 // total ever added
}

func (tr *traceRing) add(rec TraceRecord) {
	tr.mu.Lock()
	tr.recs[tr.n%traceRingCap] = rec
	tr.n++
	tr.mu.Unlock()
}

// Traces returns the most recent finished traces, oldest first.
func (r *Registry) Traces() []TraceRecord {
	if r == nil {
		return nil
	}
	tr := &r.traces
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.n
	if n > traceRingCap {
		n = traceRingCap
	}
	out := make([]TraceRecord, 0, n)
	start := tr.n - n
	for i := start; i < tr.n; i++ {
		out = append(out, tr.recs[i%traceRingCap])
	}
	return out
}

type traceCtxKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom extracts the trace from a context, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
