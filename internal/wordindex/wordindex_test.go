package wordindex

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cipherx"
)

func testIndex() *Index {
	return New(cipherx.KeyFromPassphrase("words"), nil)
}

func TestLetterTokenizer(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SCHWARZ THOMAS", []string{"SCHWARZ", "THOMAS"}},
		{"ABOGADO ALEJANDRO & CATHERINE", []string{"ABOGADO", "ALEJANDRO", "CATHERINE"}},
		{"O'BRIEN SEAN", []string{"O", "BRIEN", "SEAN"}},
		{"lower case", []string{"LOWER", "CASE"}},
		{"415-409-0007", nil},
		{"", nil},
		{"X", []string{"X"}},
	}
	for _, c := range cases {
		got := LetterTokenizer([]byte(c.in))
		if len(got) != len(c.want) {
			t.Errorf("%q: got %q, want %q", c.in, got, c.want)
			continue
		}
		for i := range got {
			if string(got[i]) != c.want[i] {
				t.Errorf("%q: got %q, want %q", c.in, got, c.want)
			}
		}
	}
}

func TestTokensDeterministicKeyedDeduped(t *testing.T) {
	ix := testIndex()
	a := ix.Tokens([]byte("ANNA ANNA SMITH"))
	b := ix.Tokens([]byte("SMITH ANNA"))
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("token counts: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("same word set should give identical sorted tokens")
		}
	}
	other := New(cipherx.KeyFromPassphrase("different"), nil)
	if other.TokenOf([]byte("ANNA")) == ix.TokenOf([]byte("ANNA")) {
		t.Error("different keys gave equal tokens")
	}
}

func TestBlobContains(t *testing.T) {
	ix := testIndex()
	tokens := ix.Tokens([]byte("SCHWARZ THOMAS JUNIOR"))
	blob := Blob(tokens)
	for _, w := range []string{"SCHWARZ", "THOMAS", "JUNIOR"} {
		ok, err := BlobContains(blob, ix.TokenOf([]byte(w)))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("word %q not found in blob", w)
		}
	}
	ok, err := BlobContains(blob, ix.TokenOf([]byte("SCHWAR"))) // prefix is NOT a word
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("prefix matched as word")
	}
	if _, err := BlobContains([]byte{1, 2, 3}, Token{}); err == nil {
		t.Error("ragged blob accepted")
	}
}

func TestBlobTokensRoundTrip(t *testing.T) {
	ix := testIndex()
	tokens := ix.Tokens([]byte("ONE TWO THREE FOUR"))
	got, err := BlobTokens(Blob(tokens))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tokens) {
		t.Fatalf("%d tokens, want %d", len(got), len(tokens))
	}
	for i := range got {
		if got[i] != tokens[i] {
			t.Error("round trip mismatch")
		}
	}
	if _, err := BlobTokens(make([]byte, 17)); err == nil {
		t.Error("ragged blob accepted")
	}
}

// Property: every tokenized word of any content is found in the
// content's own blob, and random other words almost never are.
func TestBlobCompletenessQuick(t *testing.T) {
	ix := testIndex()
	prop := func(content []byte) bool {
		blob := Blob(ix.Tokens(content))
		for _, w := range LetterTokenizer(content) {
			ok, err := BlobContains(blob, ix.TokenOf(w))
			if err != nil || !ok {
				return false
			}
		}
		ok, err := BlobContains(blob, ix.TokenOf([]byte("QQXXYYZZWORDNOTTHERE")))
		return err == nil && !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptyContent(t *testing.T) {
	ix := testIndex()
	blob := Blob(ix.Tokens(nil))
	if len(blob) != 0 {
		t.Error("empty content should give empty blob")
	}
	ok, err := BlobContains(blob, ix.TokenOf([]byte("X")))
	if err != nil || ok {
		t.Error("empty blob should match nothing")
	}
}

func TestCustomTokenizer(t *testing.T) {
	// A tokenizer splitting on '%' exercises the injection point.
	tok := func(content []byte) [][]byte { return bytes.Split(content, []byte("%")) }
	ix := New(cipherx.KeyFromPassphrase("custom"), tok)
	blob := Blob(ix.Tokens([]byte("alpha%beta")))
	ok, err := BlobContains(blob, ix.TokenOf([]byte("alpha")))
	if err != nil || !ok {
		t.Error("custom tokenizer word not found")
	}
}
