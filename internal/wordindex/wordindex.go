// Package wordindex adapts the word-search technique of Song, Wagner
// and Perrig [SWP00] to the SDDS, the integration the paper's
// conclusion calls for ("Song's et al. method of encrypting while
// allowing for word searches should be adapted to our system").
//
// Where the chunk index supports arbitrary substring patterns at the
// cost of false positives, the word index supports exact whole-word
// search with none: each record's content is tokenized into words and
// every word is mapped to a 16-byte deterministic token
// HMAC-SHA256(key, word). A record's word blob (its sorted, deduplicated
// tokens) is stored beside its chunk index; a word query sends the
// word's token to all sites, which match it against their blobs by pure
// equality. Like the chunk index, the construction deliberately leaks
// word-equality patterns — the trade that enables server-side search —
// and nothing else about the words.
package wordindex

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sort"

	"repro/internal/cipherx"
)

// TokenSize is the size of one word token in bytes.
const TokenSize = 16

// Token is the deterministic encryption of one word.
type Token [TokenSize]byte

// Tokenizer splits record content into words. Implementations must be
// deterministic: the same content must always yield the same words.
type Tokenizer func(content []byte) [][]byte

// LetterTokenizer splits on any non-letter symbol and upper-cases — the
// natural tokenizer for the directory corpus.
func LetterTokenizer(content []byte) [][]byte {
	var words [][]byte
	start := -1
	for i := 0; i <= len(content); i++ {
		isLetter := i < len(content) &&
			(content[i] >= 'A' && content[i] <= 'Z' || content[i] >= 'a' && content[i] <= 'z')
		if isLetter && start < 0 {
			start = i
		}
		if !isLetter && start >= 0 {
			w := make([]byte, i-start)
			for j, c := range content[start:i] {
				if c >= 'a' && c <= 'z' {
					c -= 'a' - 'A'
				}
				w[j] = c
			}
			words = append(words, w)
			start = -1
		}
	}
	return words
}

// Index derives word tokens under a client key.
type Index struct {
	key cipherx.Key
	tok Tokenizer
}

// New builds an Index with the given tokenizer (nil selects
// LetterTokenizer).
func New(key cipherx.Key, tok Tokenizer) *Index {
	if tok == nil {
		tok = LetterTokenizer
	}
	return &Index{key: cipherx.DeriveKey(key, "word-index"), tok: tok}
}

// TokenOf maps one word to its search token.
func (ix *Index) TokenOf(word []byte) Token {
	mac := hmac.New(sha256.New, ix.key[:])
	mac.Write(word)
	var t Token
	copy(t[:], mac.Sum(nil))
	return t
}

// Tokens returns the sorted, deduplicated tokens of every word in the
// content.
func (ix *Index) Tokens(content []byte) []Token {
	words := ix.tok(content)
	seen := make(map[Token]bool, len(words))
	out := make([]Token, 0, len(words))
	for _, w := range words {
		t := ix.TokenOf(w)
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// Blob serializes tokens into the stored form: the concatenation of the
// sorted 16-byte tokens. Sites match against blobs without any key.
func Blob(tokens []Token) []byte {
	out := make([]byte, 0, len(tokens)*TokenSize)
	for _, t := range tokens {
		out = append(out, t[:]...)
	}
	return out
}

// BlobContains reports whether a stored blob contains the token. Blobs
// are sorted, so this is a binary search over 16-byte cells.
func BlobContains(blob []byte, t Token) (bool, error) {
	if len(blob)%TokenSize != 0 {
		return false, fmt.Errorf("wordindex: blob length %d not a multiple of %d", len(blob), TokenSize)
	}
	n := len(blob) / TokenSize
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		c := bytes.Compare(blob[mid*TokenSize:(mid+1)*TokenSize], t[:])
		switch {
		case c == 0:
			return true, nil
		case c < 0:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false, nil
}

// BlobTokens parses a blob back into tokens (for diagnostics).
func BlobTokens(blob []byte) ([]Token, error) {
	if len(blob)%TokenSize != 0 {
		return nil, fmt.Errorf("wordindex: blob length %d not a multiple of %d", len(blob), TokenSize)
	}
	out := make([]Token, len(blob)/TokenSize)
	for i := range out {
		copy(out[i][:], blob[i*TokenSize:])
	}
	return out, nil
}
