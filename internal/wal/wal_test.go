package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// replayState is the reference model used across the tests: a store
// whose whole state is the ordered list of (op, payload) mutations, with
// a trivially checkable checkpoint encoding.
type replayState struct {
	ops []Entry
}

func (r *replayState) apply(op uint8, payload []byte) error {
	r.ops = append(r.ops, Entry{Op: op, Payload: append([]byte(nil), payload...)})
	return nil
}

func (r *replayState) image() []byte {
	var out []byte
	for _, e := range r.ops {
		out = append(out, e.Op)
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.Payload)))
		out = append(out, e.Payload...)
	}
	return out
}

func (r *replayState) restore(image []byte) error {
	r.ops = nil
	for len(image) > 0 {
		if len(image) < 5 {
			return errors.New("short image")
		}
		op := image[0]
		n := int(binary.BigEndian.Uint32(image[1:]))
		if len(image) < 5+n {
			return errors.New("short image payload")
		}
		r.ops = append(r.ops, Entry{Op: op, Payload: append([]byte(nil), image[5:5+n]...)})
		image = image[5+n:]
	}
	return nil
}

func sameOps(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func mustOpen(t *testing.T, fsys FS, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(fsys, dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func payload(i int) []byte { return []byte(fmt.Sprintf("payload-%04d", i)) }

func TestFreshStore(t *testing.T) {
	s := mustOpen(t, NewMemFS(), "d", Options{})
	out, err := s.Recover(func([]byte) error { t.Fatal("restore on fresh"); return nil },
		func(uint8, []byte) error { t.Fatal("apply on fresh"); return nil })
	if err != nil || out != OutcomeFresh {
		t.Fatalf("Recover = %v, %v; want fresh", out, err)
	}
	if s.Seq() != 0 {
		t.Fatalf("Seq = %d on fresh store", s.Seq())
	}
}

func TestJournalReplayRoundtrip(t *testing.T) {
	fsys := NewMemFS()
	s := mustOpen(t, fsys, "d", Options{})
	var ref replayState
	for i := 0; i < 20; i++ {
		if err := s.Journal(uint8(i%5+1), payload(i)); err != nil {
			t.Fatalf("Journal %d: %v", i, err)
		}
		ref.apply(uint8(i%5+1), payload(i)) //nolint:errcheck
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, fsys, "d", Options{})
	var got replayState
	out, err := s2.Recover(got.restore, got.apply)
	if err != nil || out != OutcomeRecovered {
		t.Fatalf("Recover = %v, %v; want recovered", out, err)
	}
	if !sameOps(got.ops, ref.ops) {
		t.Fatalf("replayed %d ops, want %d (or payload mismatch)", len(got.ops), len(ref.ops))
	}
	if s2.Seq() != 20 {
		t.Fatalf("Seq = %d, want 20", s2.Seq())
	}
	// Replay material is consumed.
	if out, _ := s2.Recover(nil, nil); out != OutcomeFresh {
		t.Fatalf("second Recover = %v, want fresh", out)
	}
}

func TestCheckpointAndReplay(t *testing.T) {
	fsys := NewMemFS()
	s := mustOpen(t, fsys, "d", Options{})
	var ref replayState
	for i := 0; i < 10; i++ {
		if err := s.Journal(1, payload(i)); err != nil {
			t.Fatal(err)
		}
		ref.apply(1, payload(i)) //nolint:errcheck
	}
	if err := s.Checkpoint(ref.image()); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 10; i < 15; i++ {
		if err := s.Journal(2, payload(i)); err != nil {
			t.Fatal(err)
		}
		ref.apply(2, payload(i)) //nolint:errcheck
	}
	s.Close()

	s2 := mustOpen(t, fsys, "d", Options{})
	var got replayState
	restored := false
	out, err := s2.Recover(
		func(img []byte) error { restored = true; return got.restore(img) },
		got.apply)
	if err != nil || out != OutcomeRecovered {
		t.Fatalf("Recover = %v, %v", out, err)
	}
	if !restored {
		t.Fatal("checkpoint image not offered to restore")
	}
	if !sameOps(got.ops, ref.ops) {
		t.Fatalf("state mismatch after checkpoint replay: got %d ops, want %d", len(got.ops), len(ref.ops))
	}
}

func TestCheckpointDueCadence(t *testing.T) {
	s := mustOpen(t, NewMemFS(), "d", Options{CheckpointBytes: 64})
	if s.CheckpointDue() {
		t.Fatal("due on empty journal")
	}
	for i := 0; !s.CheckpointDue(); i++ {
		if i > 100 {
			t.Fatal("never due")
		}
		if err := s.Journal(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint([]byte("img")); err != nil {
		t.Fatal(err)
	}
	if s.CheckpointDue() {
		t.Fatal("still due after checkpoint")
	}
}

func TestTornTailTruncated(t *testing.T) {
	for cut := 1; cut < frameOverhead+8; cut += 3 {
		fsys := NewMemFS()
		s := mustOpen(t, fsys, "d", Options{})
		for i := 0; i < 3; i++ {
			if err := s.Journal(1, payload(i)); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		// Tear the last frame by appending a truncated fourth frame.
		frame := appendFrame(nil, 4, 1, payload(3))
		data, err := fsys.ReadFile("d/wal.log")
		if err != nil {
			t.Fatal(err)
		}
		fsys.files["d/wal.log"].durable = append(data, frame[:cut]...)

		s2 := mustOpen(t, fsys, "d", Options{})
		var got replayState
		out, err := s2.Recover(got.restore, got.apply)
		if err != nil || out != OutcomeRecovered {
			t.Fatalf("cut %d: Recover = %v, %v", cut, out, err)
		}
		if len(got.ops) != 3 {
			t.Fatalf("cut %d: replayed %d ops, want 3", cut, len(got.ops))
		}
		// The tail is gone from disk too: journaling must continue cleanly.
		if err := s2.Journal(1, payload(99)); err != nil {
			t.Fatalf("cut %d: Journal after truncation: %v", cut, err)
		}
	}
}

func TestBitFlipIsCorrupt(t *testing.T) {
	fsys := NewMemFS()
	s := mustOpen(t, fsys, "d", Options{})
	for i := 0; i < 5; i++ {
		if err := s.Journal(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Flip a bit inside the first frame's payload — a complete frame
	// with a bad checksum is corruption, never a torn tail.
	if err := fsys.FlipBit("d/wal.log", len(logMagic)+frameOverhead+2, 3); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, fsys, "d", Options{})
	out, err := s2.Recover(nil, nil)
	if out != OutcomeCorrupt || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Recover = %v, %v; want corrupt", out, err)
	}
	// Corrupt stores refuse writes until Reset.
	if err := s2.Journal(1, payload(0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Journal on corrupt store = %v, want ErrCorrupt", err)
	}
	if err := s2.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if err := s2.Journal(1, payload(0)); err != nil {
		t.Fatalf("Journal after Reset: %v", err)
	}
	if s2.Seq() != 1 {
		t.Fatalf("Seq after Reset = %d, want 1", s2.Seq())
	}
}

func TestCheckpointBitFlipIsCorrupt(t *testing.T) {
	fsys := NewMemFS()
	s := mustOpen(t, fsys, "d", Options{})
	for i := 0; i < 4; i++ {
		if err := s.Journal(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint([]byte("checkpoint image bytes")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := fsys.FlipBit("d/checkpoint", len(ckptMagic)+16+3, 1); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, fsys, "d", Options{})
	out, err := s2.Recover(nil, nil)
	if out != OutcomeCorrupt || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Recover = %v, %v; want corrupt", out, err)
	}
}

func TestSequenceGapIsCorrupt(t *testing.T) {
	fsys := NewMemFS()
	s := mustOpen(t, fsys, "d", Options{})
	for i := 0; i < 3; i++ {
		if err := s.Journal(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Append a frame that skips a sequence number: a hole, not a tear.
	f := fsys.files["d/wal.log"]
	f.durable = appendFrame(f.durable, 5, 1, payload(5))

	s2 := mustOpen(t, fsys, "d", Options{})
	out, err := s2.Recover(nil, nil)
	if out != OutcomeCorrupt || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Recover = %v, %v; want corrupt", out, err)
	}
}

func TestStaleEntriesSkipped(t *testing.T) {
	// A crash between checkpoint rename and journal truncation leaves
	// already-checkpointed entries in the journal; replay must skip
	// them instead of applying twice.
	fsys := NewMemFS()
	s := mustOpen(t, fsys, "d", Options{})
	var ref replayState
	for i := 0; i < 6; i++ {
		if err := s.Journal(1, payload(i)); err != nil {
			t.Fatal(err)
		}
		ref.apply(1, payload(i)) //nolint:errcheck
	}
	logImage := append([]byte(nil), fsys.files["d/wal.log"].durable...)
	if err := s.Checkpoint(ref.image()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Resurrect the pre-truncation journal next to the new checkpoint.
	fsys.files["d/wal.log"].durable = logImage

	s2 := mustOpen(t, fsys, "d", Options{})
	var got replayState
	applied := 0
	out, err := s2.Recover(got.restore, func(op uint8, p []byte) error {
		applied++
		return got.apply(op, p)
	})
	if err != nil || out != OutcomeRecovered {
		t.Fatalf("Recover = %v, %v", out, err)
	}
	if applied != 0 {
		t.Fatalf("replayed %d stale entries, want 0", applied)
	}
	if !sameOps(got.ops, ref.ops) {
		t.Fatal("state mismatch after stale-skip replay")
	}
}

func TestClosedStore(t *testing.T) {
	s := mustOpen(t, NewMemFS(), "d", Options{})
	s.Close()
	if err := s.Journal(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Journal after Close = %v, want ErrClosed", err)
	}
	if err := s.Checkpoint(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestAbortKeepsDurable(t *testing.T) {
	fsys := NewMemFS()
	s := mustOpen(t, fsys, "d", Options{})
	for i := 0; i < 4; i++ {
		if err := s.Journal(1, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Abort()
	s2 := mustOpen(t, fsys, "d", Options{})
	var got replayState
	out, err := s2.Recover(got.restore, got.apply)
	if err != nil || out != OutcomeRecovered || len(got.ops) != 4 {
		t.Fatalf("Recover after Abort = %v, %v, %d ops", out, err, len(got.ops))
	}
}

func TestOSFSRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, OSFS{}, dir, Options{})
	var ref replayState
	for i := 0; i < 8; i++ {
		if err := s.Journal(3, payload(i)); err != nil {
			t.Fatal(err)
		}
		ref.apply(3, payload(i)) //nolint:errcheck
	}
	if err := s.Checkpoint(ref.image()); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 12; i++ {
		if err := s.Journal(4, payload(i)); err != nil {
			t.Fatal(err)
		}
		ref.apply(4, payload(i)) //nolint:errcheck
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, OSFS{}, dir, Options{})
	var got replayState
	out, err := s2.Recover(got.restore, got.apply)
	if err != nil || out != OutcomeRecovered {
		t.Fatalf("Recover = %v, %v", out, err)
	}
	if !sameOps(got.ops, ref.ops) {
		t.Fatal("state mismatch on real filesystem")
	}
	s2.Close()
}

// TestCrashMatrix is the WAL-level half of the fault matrix: a scripted
// journal/checkpoint workload is cut at every filesystem operation, in
// every tear mode, and the replayed state must equal the reference built
// from acknowledged operations — optionally extended by the single
// unacknowledged operation in flight at the crash. Anything else (a lost
// acked op, a corrupt verdict, extra ops) is silent data loss or
// over-replay and fails.
func TestCrashMatrix(t *testing.T) {
	// workload drives a fixed script against the store, mirroring every
	// acknowledged mutation into ref. It stops at the first crash error,
	// recording the op that was in flight.
	workload := func(s *Store, ref *replayState) (inflight *Entry, crashed bool) {
		step := 0
		journal := func(op uint8) bool {
			p := payload(step)
			step++
			if err := s.Journal(op, p); err != nil {
				inflight = &Entry{Op: op, Payload: p}
				return false
			}
			ref.apply(op, p) //nolint:errcheck
			return true
		}
		checkpoint := func() bool {
			return s.Checkpoint(ref.image()) == nil
		}
		for i := 0; i < 6; i++ {
			if !journal(uint8(i%3 + 1)) {
				return inflight, true
			}
		}
		if !checkpoint() {
			return nil, true
		}
		for i := 0; i < 4; i++ {
			if !journal(4) {
				return inflight, true
			}
		}
		if !checkpoint() {
			return nil, true
		}
		for i := 0; i < 3; i++ {
			if !journal(5) {
				return inflight, true
			}
		}
		return nil, false
	}

	// Dry run to count crash points. SetCrash(0) resets the op counter
	// so it spans exactly the workload, as in the armed runs below.
	probe := NewMemFS()
	s := mustOpen(t, probe, "d", Options{})
	probe.SetCrash(0, CrashDrop)
	if _, crashed := workload(s, &replayState{}); crashed {
		t.Fatal("dry run crashed")
	}
	totalOps := probe.Ops()
	s.Close()
	if totalOps < 20 {
		t.Fatalf("workload too small for a meaningful matrix: %d ops", totalOps)
	}

	stride := 1
	if testing.Short() {
		stride = 5
	}
	for _, mode := range []CrashMode{CrashDrop, CrashKeep, CrashTorn} {
		for at := 1; at <= totalOps; at += stride {
			t.Run(fmt.Sprintf("%s/op%02d", mode, at), func(t *testing.T) {
				fsys := NewMemFS()
				st := mustOpen(t, fsys, "d", Options{})
				fsys.SetCrash(at, mode)
				var ref replayState
				inflight, crashed := workload(st, &ref)
				if !crashed {
					t.Fatalf("crash point %d never fired", at)
				}
				st.Abort()
				fsys.Restart()

				st2, err := Open(fsys, "d", Options{})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				var got replayState
				out, err := st2.Recover(got.restore, got.apply)
				if out == OutcomeCorrupt {
					t.Fatalf("crash (not corruption) produced corrupt verdict: %v", err)
				}
				if err != nil {
					t.Fatalf("Recover: %v", err)
				}
				want := ref.ops
				if !sameOps(got.ops, want) {
					if inflight == nil || !sameOps(got.ops, append(append([]Entry(nil), want...), *inflight)) {
						t.Fatalf("state after crash replay: got %d ops, acked %d (inflight present: %v)",
							len(got.ops), len(want), inflight != nil)
					}
				}
				// The recovered store must keep working: journal one
				// more op and recover again.
				if err := st2.Journal(9, []byte("post-crash")); err != nil {
					t.Fatalf("Journal after recovery: %v", err)
				}
				st2.Close()
				st3 := mustOpen(t, fsys, "d", Options{})
				var again replayState
				if out, err := st3.Recover(again.restore, again.apply); err != nil || out != OutcomeRecovered {
					t.Fatalf("second recovery = %v, %v", out, err)
				}
				if len(again.ops) != len(got.ops)+1 {
					t.Fatalf("second recovery: %d ops, want %d", len(again.ops), len(got.ops)+1)
				}
			})
		}
	}
}
