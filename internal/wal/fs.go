package wal

import (
	"io"
	"os"
)

// FS is the narrow filesystem surface the store needs. Factoring it out
// serves two masters: production runs on OSFS (real files, real
// fsyncs), and the crash-consistency matrix runs on MemFS, which can
// cut the power at any write/sync/rename boundary and replay the
// resulting disk image. Every path handed to an FS is store-internal
// (dir-relative joins are done by the caller).
type FS interface {
	// MkdirAll creates the store directory (and parents) if absent.
	MkdirAll(dir string) error
	// ReadFile returns the current contents of a file, or an error
	// satisfying os.IsNotExist when it does not exist.
	ReadFile(name string) ([]byte, error)
	// OpenAppend opens a file for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// OpenTrunc opens a file for writing, truncating any prior content
	// — the first step of the write-temp → fsync → rename discipline.
	OpenTrunc(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file (os.IsNotExist errors are tolerated by the
	// store).
	Remove(name string) error
	// Truncate cuts a file to the given size — how a torn journal tail
	// is discarded after replay.
	Truncate(name string, size int64) error
	// SyncDir flushes directory metadata so a completed rename survives
	// power loss.
	SyncDir(dir string) error
}

// File is an open, append-position file handle.
type File interface {
	io.Writer
	// Sync flushes written bytes to stable storage; data is durable —
	// and an append may be acknowledged — only after Sync returns.
	Sync() error
	Close() error
}

// OSFS is the production FS: the real filesystem via package os.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// OpenTrunc implements FS.
func (OSFS) OpenTrunc(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS. Directory fsync is best effort: some
// filesystems reject it (EINVAL), and the store's recovery path
// tolerates a lost rename (the old checkpoint plus a longer journal
// replay to the same state), so the error is not propagated.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	d.Sync() //nolint:errcheck // best effort, see above
	return d.Close()
}
