package wal

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

// TestWALMetricInvariants exercises the journal/checkpoint/recover
// lifecycle and checks the durability counters against it: every
// acknowledged append carries at least one fsync, checkpoints are
// counted once, and a replay accounts for exactly the entries still in
// the journal.
func TestWALMetricInvariants(t *testing.T) {
	fsys := NewMemFS()
	st, err := Open(fsys, "node0", Options{CheckpointBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st.Instrument(reg)

	const appends = 25
	for i := 0; i < appends; i++ {
		if err := st.Journal(1, []byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint([]byte("image-at-25")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Journal(2, []byte(fmt.Sprintf("tail-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if got := reg.CounterValue("wal_appends_total"); got != appends+5 {
		t.Errorf("wal_appends_total = %d, want %d", got, appends+5)
	}
	if got := reg.CounterValue("wal_checkpoints_total"); got != 1 {
		t.Errorf("wal_checkpoints_total = %d, want 1", got)
	}
	// The core durability invariant: with NoSync unset, every append
	// fsynced, so fsyncs >= appends (checkpoints add two more each).
	fsyncs := reg.CounterValue("wal_fsyncs_total")
	if fsyncs < appends+5 {
		t.Errorf("wal_fsyncs_total = %d, want >= %d (one per append)", fsyncs, appends+5)
	}
	for _, h := range []string{"wal_append_ns", "wal_fsync_ns"} {
		if snap := reg.HistogramSnapshot(h); snap.Count != appends+5 {
			t.Errorf("%s count = %d, want %d", h, snap.Count, appends+5)
		}
	}
	if snap := reg.HistogramSnapshot("wal_checkpoint_ns"); snap.Count != 1 {
		t.Errorf("wal_checkpoint_ns count = %d, want 1", snap.Count)
	}

	// Reopen: the replay must account for exactly the 5 post-checkpoint
	// entries.
	st2, err := Open(fsys, "node0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	st2.Instrument(reg2)
	var replayed int
	outcome, err := st2.Recover(
		func(image []byte) error { return nil },
		func(op uint8, payload []byte) error { replayed++; return nil },
	)
	if err != nil || outcome != OutcomeRecovered {
		t.Fatalf("Recover = %v, %v; want OutcomeRecovered", outcome, err)
	}
	if replayed != 5 {
		t.Fatalf("replayed %d entries, want 5", replayed)
	}
	if got := reg2.CounterValue("wal_replays_total"); got != 1 {
		t.Errorf("wal_replays_total = %d, want 1", got)
	}
	if got := reg2.CounterValue("wal_replay_entries_total"); got != 5 {
		t.Errorf("wal_replay_entries_total = %d, want 5", got)
	}
	st2.Close()
}

// TestWALMetricCorruptionAndReset checks that a corrupt recovery and
// the subsequent reset are both counted.
func TestWALMetricCorruptionAndReset(t *testing.T) {
	fsys := NewMemFS()
	st, err := Open(fsys, "n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Journal(1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Flip a bit inside the completed journal frame so the CRC check
	// fails as corruption, not a torn tail.
	size, err := fsys.Size("n/" + logName)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.FlipBit("n/"+logName, size-2, 0); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(fsys, "n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	st2.Instrument(reg)
	outcome, err := st2.Recover(nil, nil)
	if outcome != OutcomeCorrupt || err == nil {
		t.Fatalf("Recover = %v, %v; want OutcomeCorrupt", outcome, err)
	}
	if got := reg.CounterValue("wal_corruptions_total"); got != 1 {
		t.Errorf("wal_corruptions_total = %d, want 1", got)
	}
	if err := st2.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("wal_resets_total"); got != 1 {
		t.Errorf("wal_resets_total = %d, want 1", got)
	}
	// Post-reset the store journals again and keeps counting.
	if err := st2.Journal(1, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("wal_appends_total"); got != 1 {
		t.Errorf("wal_appends_total after reset = %d, want 1", got)
	}
	st2.Close()
}
