package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
)

// ErrCrashed is returned by every MemFS operation once an injected
// crash has fired: from the store's point of view the process (and its
// disk) is gone until Restart.
var ErrCrashed = errors.New("wal: simulated crash")

// CrashMode selects what happens to bytes that were written but not yet
// synced when the injected crash fires — the torn-write model of the
// fault matrix.
type CrashMode uint8

const (
	// CrashDrop loses every unsynced byte: the page cache never reached
	// the platter.
	CrashDrop CrashMode = iota
	// CrashKeep persists every unsynced byte, including the write in
	// flight: the cache happened to flush just before the power cut.
	CrashKeep
	// CrashTorn persists earlier unsynced bytes but tears the write in
	// flight down the middle — the canonical torn frame.
	CrashTorn
)

// String implements fmt.Stringer.
func (m CrashMode) String() string {
	switch m {
	case CrashDrop:
		return "drop"
	case CrashKeep:
		return "keep"
	case CrashTorn:
		return "torn"
	default:
		return "unknown"
	}
}

// memFile models one file as two layers: bytes that have reached stable
// storage and bytes still sitting in the (volatile) write cache.
type memFile struct {
	durable  []byte
	buffered []byte
}

func (f *memFile) view() []byte {
	out := make([]byte, 0, len(f.durable)+len(f.buffered))
	out = append(out, f.durable...)
	return append(out, f.buffered...)
}

// MemFS is an in-memory FS with explicit durability semantics and
// injectable crashes, in the errfs tradition: every mutating operation
// (write, sync, rename, truncate, remove, create) is a numbered crash
// point, and SetCrash arms the filesystem to cut power at one of them.
// At the crash, unsynced bytes survive according to the configured
// CrashMode; afterwards every operation fails with ErrCrashed until
// Restart, which hands back the post-crash disk image.
//
// Simplifications, chosen to match how the store writes: renames and
// truncates are durable immediately (the store orders them after
// syncs), and unsynced data is a single contiguous tail per file (the
// store syncs every frame before acknowledging it).
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	ops     int
	crashAt int // fire when ops reaches this count; 0 = disarmed
	mode    CrashMode
	crashed bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// SetCrash arms a crash at the n-th mutating operation from now (n >=
// 1), with the given tear mode for unsynced bytes. Ops counts restart
// from zero.
func (m *MemFS) SetCrash(n int, mode CrashMode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = 0
	m.crashAt = n
	m.mode = mode
}

// Ops returns the number of mutating operations performed since the
// filesystem was created or last armed/restarted.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether the armed crash has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Restart clears the crashed state, presenting the post-crash disk
// image (durable bytes only) to subsequent operations — the disk a
// restarted process finds. The op counter resets and no crash is armed.
func (m *MemFS) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
	m.crashAt = 0
	m.ops = 0
}

// FlipBit flips one bit of a file's durable content — media corruption,
// as opposed to a crash artifact. off addresses the byte, bit the bit
// within it.
func (m *MemFS) FlipBit(name string, off int, bit uint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fs.ErrNotExist
	}
	all := f.view()
	if off < 0 || off >= len(all) {
		return fmt.Errorf("wal: FlipBit offset %d out of range (%d bytes)", off, len(all))
	}
	if off < len(f.durable) {
		f.durable[off] ^= 1 << (bit % 8)
	} else {
		f.buffered[off-len(f.durable)] ^= 1 << (bit % 8)
	}
	return nil
}

// Size returns a file's current (cache-inclusive) length.
func (m *MemFS) Size(name string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return 0, fs.ErrNotExist
	}
	return len(f.durable) + len(f.buffered), nil
}

// gate is the crash point shared by every mutating operation. It
// returns ErrCrashed when the filesystem is already dead, or fires the
// armed crash — in which case the triggering operation does not take
// effect (inflight carries the write being torn, nil for other ops).
// Callers hold m.mu.
func (m *MemFS) gate(target *memFile, inflight []byte) error {
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if m.crashAt == 0 || m.ops < m.crashAt {
		return nil
	}
	// Power cut. Settle every file's cache per the tear mode.
	m.crashed = true
	if target != nil && len(inflight) > 0 {
		switch m.mode {
		case CrashKeep:
			target.buffered = append(target.buffered, inflight...)
		case CrashTorn:
			target.buffered = append(target.buffered, inflight[:len(inflight)/2]...)
		}
	}
	for _, f := range m.files {
		if m.mode == CrashDrop {
			f.buffered = nil
			continue
		}
		f.durable = append(f.durable, f.buffered...)
		f.buffered = nil
	}
	return ErrCrashed
}

// file returns (creating if asked) the named file. Callers hold m.mu.
func (m *MemFS) file(name string, create bool) (*memFile, error) {
	f, ok := m.files[name]
	if !ok {
		if !create {
			return nil, fs.ErrNotExist
		}
		f = &memFile{}
		m.files[name] = f
	}
	return f, nil
}

// MkdirAll implements FS (directories are implicit).
func (m *MemFS) MkdirAll(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, err := m.file(name, false)
	if err != nil {
		return nil, err
	}
	return f.view(), nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		// Creation mutates the directory: a crash point.
		if err := m.gate(nil, nil); err != nil {
			return nil, err
		}
		m.files[name] = &memFile{}
	} else if m.crashed {
		return nil, ErrCrashed
	}
	return &memHandle{fs: m, name: name}, nil
}

// OpenTrunc implements FS.
func (m *MemFS) OpenTrunc(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.gate(nil, nil); err != nil {
		return nil, err
	}
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name}, nil
}

// Rename implements FS. Completed renames are modeled durable (the
// store orders every rename after the temp file's sync and follows it
// with SyncDir; crashing at the rename op itself covers the
// not-yet-visible case).
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := m.file(oldname, false)
	if err != nil {
		if m.crashed {
			return ErrCrashed
		}
		return err
	}
	if err := m.gate(nil, nil); err != nil {
		return err
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		if m.crashed {
			return ErrCrashed
		}
		return fs.ErrNotExist
	}
	if err := m.gate(nil, nil); err != nil {
		return err
	}
	delete(m.files, name)
	return nil
}

// Truncate implements FS. Like renames, completed truncates are
// modeled durable.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := m.file(name, false)
	if err != nil {
		if m.crashed {
			return ErrCrashed
		}
		return err
	}
	if err := m.gate(nil, nil); err != nil {
		return err
	}
	all := f.view()
	if int64(len(all)) > size {
		all = all[:size]
	}
	f.durable = all
	f.buffered = nil
	return nil
}

// SyncDir implements FS (renames are already durable; still a crash
// point).
func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gate(nil, nil)
}

// memHandle is an append handle into a MemFS file.
type memHandle struct {
	fs   *MemFS
	name string
}

// Write appends into the file's volatile cache.
func (h *memHandle) Write(b []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok {
		if h.fs.crashed {
			return 0, ErrCrashed
		}
		return 0, fs.ErrNotExist
	}
	if err := h.fs.gate(f, b); err != nil {
		return 0, err
	}
	f.buffered = append(f.buffered, b...)
	return len(b), nil
}

// Sync promotes the file's cached bytes to stable storage.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok {
		if h.fs.crashed {
			return ErrCrashed
		}
		return fs.ErrNotExist
	}
	if err := h.fs.gate(nil, nil); err != nil {
		return err
	}
	f.durable = append(f.durable, f.buffered...)
	f.buffered = nil
	return nil
}

// Close implements File (handles carry no state to release).
func (h *memHandle) Close() error { return nil }
