package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the journal scanner and the
// frame decoder, checking the invariants recovery relies on: no panics,
// every complete frame either round-trips exactly or is reported
// corrupt, and a clean scan yields contiguous sequence numbers with the
// consumed prefix re-encoding to the same bytes.
func FuzzWALDecode(f *testing.F) {
	// Seeds: a valid two-frame journal, a torn tail, a bit-flipped
	// frame, a sequence gap, a bad magic, and raw garbage.
	valid := append([]byte(nil), logMagic...)
	valid = appendFrame(valid, 1, 3, []byte("alpha"))
	valid = appendFrame(valid, 2, 7, []byte("beta-payload"))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	flipped := append([]byte(nil), valid...)
	flipped[len(logMagic)+frameOverhead+1] ^= 0x10
	f.Add(flipped)
	gap := append([]byte(nil), logMagic...)
	gap = appendFrame(gap, 1, 1, []byte("a"))
	gap = appendFrame(gap, 3, 1, []byte("b"))
	f.Add(gap)
	f.Add([]byte("NOTMAGIC"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(appendFrame(nil, 42, 9, bytes.Repeat([]byte{0xab}, 100)))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, goodLen, lastSeq, err := scanJournal(data, 0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("scanJournal error not ErrCorrupt: %v", err)
			}
		} else {
			if goodLen < 0 || goodLen > len(data) {
				t.Fatalf("goodLen %d out of range [0,%d]", goodLen, len(data))
			}
			// Contiguity: a clean scan never leaves sequence holes.
			for i, e := range entries {
				if e.Seq != uint64(i)+1 {
					t.Fatalf("entry %d has seq %d", i, e.Seq)
				}
			}
			if len(entries) > 0 && lastSeq != entries[len(entries)-1].Seq {
				t.Fatalf("lastSeq %d, final entry seq %d", lastSeq, entries[len(entries)-1].Seq)
			}
			// Re-encoding the accepted prefix reproduces it byte for
			// byte — the decoder accepted nothing it cannot write.
			if goodLen >= len(logMagic) {
				enc := append([]byte(nil), logMagic...)
				for _, e := range entries {
					enc = appendFrame(enc, e.Seq, e.Op, e.Payload)
				}
				if !bytes.Equal(enc, data[:goodLen]) {
					t.Fatalf("accepted prefix does not round-trip: %d vs %d bytes", len(enc), goodLen)
				}
			}
		}

		// Single-frame decoder: success must round-trip exactly.
		if e, n, derr := decodeFrame(data); derr == nil {
			if got := appendFrame(nil, e.Seq, e.Op, e.Payload); !bytes.Equal(got, data[:n]) {
				t.Fatalf("decodeFrame round-trip mismatch (%d bytes)", n)
			}
		}

		// Checkpoint decoder on the same corpus: no panics, errors are
		// ErrCorrupt.
		if _, _, cerr := decodeCheckpoint(data); cerr != nil && !errors.Is(cerr, ErrCorrupt) {
			t.Fatalf("decodeCheckpoint error not ErrCorrupt: %v", cerr)
		}
	})
}
