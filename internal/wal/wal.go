// Package wal gives a storage node crash-consistent local durability: a
// checksummed, length-prefixed write-ahead log of mutating operations
// plus periodic whole-state checkpoints written with the write-temp →
// fsync → atomic-rename discipline. A node that journals every mutation
// before applying it can be restarted after any crash and replay
// checkpoint+journal back to a state equivalent to what it had
// acknowledged — torn journal tails (the un-acknowledged write in
// flight at the crash) are detected by CRC framing and truncated, while
// checksum failures anywhere else are surfaced as ErrCorrupt so the
// caller can fall back to remote parity repair instead of trusting a
// damaged replay. Nothing is ever silently dropped: every recovery
// reports exactly one of fresh, recovered, or corrupt.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Sentinel errors.
var (
	// ErrCorrupt reports durable state that failed verification in a
	// way a crash cannot explain: a checksum mismatch on a complete
	// journal frame or on the checkpoint, a sequence gap, or a mangled
	// header. The local state must not be trusted; Reset and restore
	// from elsewhere (e.g. LH*RS parity).
	ErrCorrupt = errors.New("wal: durable state corrupt")
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("wal: store closed")
)

// Outcome classifies what Recover found on disk.
type Outcome uint8

const (
	// OutcomeFresh: no prior durable state — a brand-new store.
	OutcomeFresh Outcome = iota
	// OutcomeRecovered: checkpoint and/or journal verified and
	// replayed.
	OutcomeRecovered
	// OutcomeCorrupt: durable state failed verification; the store
	// refuses writes until Reset.
	OutcomeCorrupt
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeFresh:
		return "fresh"
	case OutcomeRecovered:
		return "recovered"
	case OutcomeCorrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// Options tunes a store.
type Options struct {
	// NoSync skips the per-append fsync. Appends are then only as
	// durable as the OS page cache — a crash may lose a clean suffix of
	// acknowledged entries (never a middle, never corruption). Off by
	// default: durability first.
	NoSync bool
	// CheckpointBytes is the journal growth after which CheckpointDue
	// reports true (default 1 MiB). Smaller values trade checkpoint
	// write amplification for faster recovery.
	CheckpointBytes int64
}

// Entry is one journaled operation.
type Entry struct {
	Seq     uint64
	Op      uint8
	Payload []byte
}

// File layout within the store directory.
const (
	logName  = "wal.log"
	ckptName = "checkpoint"
	tmpName  = "checkpoint.tmp"
)

var (
	logMagic  = []byte("ESDWAL01")
	ckptMagic = []byte("ESDCKP01")
	crcTable  = crc32.MakeTable(crc32.Castagnoli)
)

// frame layout: u32 payload length | u32 CRC32-C | u64 seq | u8 op |
// payload. The CRC covers seq, op and payload, so a frame vouches for
// its own identity as well as its bytes.
const frameOverhead = 4 + 4 + 8 + 1

// appendFrame appends one encoded journal frame to dst.
func appendFrame(dst []byte, seq uint64, op uint8, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	body := make([]byte, 0, 9+len(payload))
	body = binary.BigEndian.AppendUint64(body, seq)
	body = append(body, op)
	body = append(body, payload...)
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(body, crcTable))
	return append(dst, body...)
}

// errTorn reports an incomplete trailing frame — the write that was in
// flight when the process died. It is an internal verdict: replay
// truncates the tail instead of failing.
var errTorn = errors.New("wal: torn frame")

// decodeFrame decodes the first frame in b, returning the entry and the
// number of bytes consumed. A frame that runs past the end of b is
// errTorn; a complete frame whose checksum does not match is ErrCorrupt.
func decodeFrame(b []byte) (Entry, int, error) {
	if len(b) < 4 {
		return Entry{}, 0, errTorn
	}
	plen := int(binary.BigEndian.Uint32(b))
	total := frameOverhead + plen
	if plen < 0 || total < 0 || total > len(b) {
		return Entry{}, 0, errTorn
	}
	crc := binary.BigEndian.Uint32(b[4:])
	body := b[8:total]
	if crc32.Checksum(body, crcTable) != crc {
		return Entry{}, 0, fmt.Errorf("%w: journal frame checksum mismatch", ErrCorrupt)
	}
	return Entry{
		Seq:     binary.BigEndian.Uint64(body),
		Op:      body[8],
		Payload: body[9:],
	}, total, nil
}

// scanJournal walks a journal image: it verifies the header, decodes
// frames, and separates the three possible verdicts — entries to
// replay (seq beyond ckptSeq, contiguous), a torn tail to truncate at
// goodLen, or corruption. lastSeq is the highest sequence seen (ckptSeq
// when the journal holds nothing newer).
func scanJournal(data []byte, ckptSeq uint64) (entries []Entry, goodLen int, lastSeq uint64, err error) {
	lastSeq = ckptSeq
	if len(data) == 0 {
		return nil, 0, lastSeq, nil
	}
	if len(data) < len(logMagic) {
		// Crash between file creation and the header write.
		return nil, 0, lastSeq, nil
	}
	if string(data[:len(logMagic)]) != string(logMagic) {
		return nil, 0, lastSeq, fmt.Errorf("%w: journal header %q", ErrCorrupt, data[:len(logMagic)])
	}
	off := len(logMagic)
	var prev uint64
	first := true
	for off < len(data) {
		e, n, derr := decodeFrame(data[off:])
		if errors.Is(derr, errTorn) {
			break
		}
		if derr != nil {
			return nil, 0, lastSeq, fmt.Errorf("%w (offset %d)", derr, off)
		}
		switch {
		case first && e.Seq > ckptSeq+1:
			// The journal starts past what the checkpoint covers:
			// entries are missing, not torn.
			return nil, 0, lastSeq, fmt.Errorf("%w: journal gap: first seq %d after checkpoint seq %d", ErrCorrupt, e.Seq, ckptSeq)
		case !first && e.Seq != prev+1:
			return nil, 0, lastSeq, fmt.Errorf("%w: journal gap: seq %d after %d", ErrCorrupt, e.Seq, prev)
		}
		first = false
		prev = e.Seq
		if e.Seq > ckptSeq {
			e.Payload = append([]byte(nil), e.Payload...)
			entries = append(entries, e)
		}
		off += n
	}
	if prev > lastSeq {
		lastSeq = prev
	}
	return entries, off, lastSeq, nil
}

// encodeCheckpoint builds the checkpoint file image: magic | u64 seq |
// u32 image length | u32 CRC32-C over seq+image | image.
func encodeCheckpoint(seq uint64, image []byte) []byte {
	out := make([]byte, 0, len(ckptMagic)+16+len(image))
	out = append(out, ckptMagic...)
	out = binary.BigEndian.AppendUint64(out, seq)
	out = binary.BigEndian.AppendUint32(out, uint32(len(image)))
	crc := crc32.Checksum(out[len(ckptMagic):len(ckptMagic)+8], crcTable)
	crc = crc32.Update(crc, crcTable, image)
	out = binary.BigEndian.AppendUint32(out, crc)
	return append(out, image...)
}

// decodeCheckpoint verifies and unpacks a checkpoint image. Any
// mismatch is ErrCorrupt: the checkpoint was written with
// temp+fsync+rename, so a crash can only leave the previous intact
// checkpoint (or none), never a partial one.
func decodeCheckpoint(data []byte) (seq uint64, image []byte, err error) {
	hdr := len(ckptMagic) + 16
	if len(data) < hdr {
		return 0, nil, fmt.Errorf("%w: checkpoint truncated (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:len(ckptMagic)]) != string(ckptMagic) {
		return 0, nil, fmt.Errorf("%w: checkpoint header %q", ErrCorrupt, data[:len(ckptMagic)])
	}
	seq = binary.BigEndian.Uint64(data[len(ckptMagic):])
	imgLen := int(binary.BigEndian.Uint32(data[len(ckptMagic)+8:]))
	crc := binary.BigEndian.Uint32(data[len(ckptMagic)+12:])
	if imgLen < 0 || hdr+imgLen != len(data) {
		return 0, nil, fmt.Errorf("%w: checkpoint length %d, want %d", ErrCorrupt, len(data), hdr+imgLen)
	}
	image = data[hdr:]
	want := crc32.Checksum(data[len(ckptMagic):len(ckptMagic)+8], crcTable)
	want = crc32.Update(want, crcTable, image)
	if crc != want {
		return 0, nil, fmt.Errorf("%w: checkpoint checksum mismatch", ErrCorrupt)
	}
	return seq, image, nil
}

// Store is one node's durable backing: a journal of operations plus the
// latest checkpoint. All methods are safe for concurrent use; journal
// order is the lock-acquisition order, so callers serializing appends
// with their state mutations (e.g. under the node lock) get a journal
// that replays to the same state.
type Store struct {
	fsys FS
	dir  string
	opts Options

	mu       sync.Mutex
	log      File
	seq      uint64 // last journaled sequence number
	ckptSeq  uint64 // sequence covered by the on-disk checkpoint
	logBytes int64
	closed   bool

	// Recovery material captured at Open, consumed by Recover.
	corrupt   string // why verification failed ("" = clean)
	image     []byte
	entries   []Entry
	recovered bool

	met walMetrics // set by Instrument before traffic; nil-safe
}

// Open opens (creating if necessary) the store in dir on fsys and
// verifies its durable state. Corruption does not fail Open: the store
// comes back in a read-refusing corrupt state that Recover reports and
// Reset clears — so the caller, not a disk error path, decides how to
// repair. Open fails only on real I/O errors.
func Open(fsys FS, dir string, opts Options) (*Store, error) {
	if opts.CheckpointBytes <= 0 {
		opts.CheckpointBytes = 1 << 20
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	s := &Store{fsys: fsys, dir: dir, opts: opts}
	// A leftover temp file is a checkpoint whose rename never happened;
	// it holds nothing the journal cannot replay.
	if err := s.fsys.Remove(s.path(tmpName)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("wal: removing stale checkpoint temp: %w", err)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	if s.corrupt != "" {
		return s, nil
	}
	if err := s.openLog(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// corruptDetail stores a verification failure without the ErrCorrupt
// prefix — the sentinel is re-attached wherever the verdict surfaces.
func corruptDetail(err error) string {
	return strings.TrimPrefix(err.Error(), ErrCorrupt.Error()+": ")
}

// load verifies checkpoint and journal, capturing replay material or a
// corruption verdict.
func (s *Store) load() error {
	ckpt, err := s.fsys.ReadFile(s.path(ckptName))
	switch {
	case err == nil:
		seq, image, derr := decodeCheckpoint(ckpt)
		if derr != nil {
			s.corrupt = corruptDetail(derr)
			return nil
		}
		s.image = append([]byte(nil), image...)
		s.ckptSeq = seq
		s.seq = seq
		s.recovered = true
	case os.IsNotExist(err):
	default:
		return fmt.Errorf("wal: reading checkpoint: %w", err)
	}

	data, err := s.fsys.ReadFile(s.path(logName))
	switch {
	case os.IsNotExist(err):
		return nil
	case err != nil:
		return fmt.Errorf("wal: reading journal: %w", err)
	}
	entries, goodLen, lastSeq, serr := scanJournal(data, s.ckptSeq)
	if serr != nil {
		s.corrupt = corruptDetail(serr)
		return nil
	}
	if goodLen < len(data) {
		// Torn tail: the write in flight at the crash. It was never
		// acknowledged, so cutting it is recovery, not loss.
		if err := s.fsys.Truncate(s.path(logName), int64(goodLen)); err != nil {
			return fmt.Errorf("wal: truncating torn journal tail: %w", err)
		}
	}
	s.entries = entries
	s.logBytes = int64(goodLen)
	s.seq = lastSeq
	if lastSeq > 0 || len(entries) > 0 {
		s.recovered = true
	}
	return nil
}

// openLog opens the append handle, stamping the header on a fresh
// journal.
func (s *Store) openLog() error {
	f, err := s.fsys.OpenAppend(s.path(logName))
	if err != nil {
		return fmt.Errorf("wal: opening journal: %w", err)
	}
	s.log = f
	if s.logBytes == 0 {
		if _, err := f.Write(logMagic); err != nil {
			return fmt.Errorf("wal: writing journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing journal header: %w", err)
		}
		s.met.fsyncs.Inc()
		s.logBytes = int64(len(logMagic))
	}
	return nil
}

// Recover reports what Open found and replays it in order: restore is
// called first with the checkpoint image (if any), then apply once per
// journal entry past the checkpoint. On OutcomeCorrupt neither callback
// runs and the error (wrapping ErrCorrupt) says why; the caller must
// Reset before journaling. The replay material is consumed: a second
// call reports OutcomeFresh.
func (s *Store) Recover(restore func(image []byte) error, apply func(op uint8, payload []byte) error) (Outcome, error) {
	s.mu.Lock()
	corrupt, image, entries, recovered := s.corrupt, s.image, s.entries, s.recovered
	s.image, s.entries, s.recovered = nil, nil, false
	s.mu.Unlock()
	if corrupt != "" {
		s.met.corruptions.Inc()
		return OutcomeCorrupt, fmt.Errorf("%w: %s", ErrCorrupt, corrupt)
	}
	if !recovered {
		return OutcomeFresh, nil
	}
	s.met.replays.Inc()
	s.met.replayEntries.Add(uint64(len(entries)))
	if image != nil {
		if err := restore(image); err != nil {
			return OutcomeRecovered, fmt.Errorf("wal: restoring checkpoint: %w", err)
		}
	}
	for _, e := range entries {
		if err := apply(e.Op, e.Payload); err != nil {
			return OutcomeRecovered, fmt.Errorf("wal: replaying journal seq %d (op %d): %w", e.Seq, e.Op, err)
		}
	}
	return OutcomeRecovered, nil
}

// Journal durably appends one operation. On return (without error) the
// entry has been written — and, unless NoSync is set, fsynced — so the
// caller may apply and acknowledge the mutation.
func (s *Store) Journal(op uint8, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.corrupt != "" {
		return fmt.Errorf("%w: %s (Reset required)", ErrCorrupt, s.corrupt)
	}
	var start time.Time
	if s.met.on {
		start = time.Now()
	}
	frame := appendFrame(nil, s.seq+1, op, payload)
	if _, err := s.log.Write(frame); err != nil {
		return fmt.Errorf("wal: journal append: %w", err)
	}
	if !s.opts.NoSync {
		var syncStart time.Time
		if s.met.on {
			syncStart = time.Now()
		}
		if err := s.log.Sync(); err != nil {
			return fmt.Errorf("wal: journal sync: %w", err)
		}
		if s.met.on {
			s.met.fsyncs.Inc()
			s.met.fsyncNS.Observe(time.Since(syncStart).Nanoseconds())
		}
	}
	s.seq++
	s.logBytes += int64(len(frame))
	if s.met.on {
		s.met.appends.Inc()
		s.met.appendNS.Observe(time.Since(start).Nanoseconds())
	}
	return nil
}

// CheckpointDue reports whether the journal has grown past the
// checkpoint cadence.
func (s *Store) CheckpointDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logBytes-int64(len(logMagic)) >= s.opts.CheckpointBytes
}

// Checkpoint atomically persists a full state image covering everything
// journaled so far and prunes the journal. The sequence is write temp →
// fsync → rename → sync dir → truncate journal; a crash at any point
// leaves either the old checkpoint plus the full journal or the new
// checkpoint plus a journal whose stale prefix replay skips.
func (s *Store) Checkpoint(image []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.corrupt != "" {
		return fmt.Errorf("%w: %s (Reset required)", ErrCorrupt, s.corrupt)
	}
	var ckptStart time.Time
	if s.met.on {
		ckptStart = time.Now()
	}
	f, err := s.fsys.OpenTrunc(s.path(tmpName))
	if err != nil {
		return fmt.Errorf("wal: checkpoint temp: %w", err)
	}
	if _, err := f.Write(encodeCheckpoint(s.seq, image)); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := s.fsys.Rename(s.path(tmpName), s.path(ckptName)); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return fmt.Errorf("wal: checkpoint dir sync: %w", err)
	}
	if err := s.fsys.Truncate(s.path(logName), int64(len(logMagic))); err != nil {
		return fmt.Errorf("wal: pruning journal: %w", err)
	}
	s.ckptSeq = s.seq
	s.logBytes = int64(len(logMagic))
	if s.met.on {
		s.met.checkpoints.Inc()
		s.met.fsyncs.Add(2) // checkpoint file sync + dir sync
		s.met.checkpointNS.Observe(time.Since(ckptStart).Nanoseconds())
	}
	return nil
}

// Reset wipes the store back to empty — the only way out of the corrupt
// state, taken after deciding the local replay cannot be trusted and a
// remote restore will follow.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.log != nil {
		s.log.Close()
		s.log = nil
	}
	for _, name := range []string{ckptName, tmpName, logName} {
		if err := s.fsys.Remove(s.path(name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: reset: removing %s: %w", name, err)
		}
	}
	s.seq, s.ckptSeq, s.logBytes = 0, 0, 0
	s.corrupt, s.image, s.entries, s.recovered = "", nil, nil, false
	s.met.resets.Inc()
	return s.openLog()
}

// Seq returns the last journaled sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.log == nil {
		return nil
	}
	err := s.log.Sync()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	s.log = nil
	return err
}

// Abort closes the store without flushing — the in-process equivalent
// of a crash, used when a node is killed rather than shut down. Durable
// state is whatever the journal discipline already made durable.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.log != nil {
		s.log.Close()
		s.log = nil
	}
}
