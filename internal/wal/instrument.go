package wal

import (
	"repro/internal/obs"
)

// walMetrics counts the store's durability work. The central invariant,
// asserted by the metrics-invariant suite: with NoSync unset,
//
//	wal_fsyncs_total >= wal_appends_total
//
// because every acknowledged append carries its own fsync (checkpoints
// add more). Replay counters let recovery tests assert that every entry
// journaled before a crash was either replayed or checkpointed away.
type walMetrics struct {
	on bool // gates the time.Now pairs on the append path

	appends       *obs.Counter
	fsyncs        *obs.Counter
	checkpoints   *obs.Counter
	resets        *obs.Counter
	replays       *obs.Counter // Recover calls that found state
	replayEntries *obs.Counter // journal entries re-applied
	corruptions   *obs.Counter // Recover calls reporting OutcomeCorrupt

	appendNS     *obs.Histogram
	fsyncNS      *obs.Histogram
	checkpointNS *obs.Histogram
}

// Instrument publishes the store's counters into reg. Call after Open
// (or Reset) and before the store carries traffic.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := walMetrics{
		on:            true,
		appends:       reg.Counter("wal_appends_total"),
		fsyncs:        reg.Counter("wal_fsyncs_total"),
		checkpoints:   reg.Counter("wal_checkpoints_total"),
		resets:        reg.Counter("wal_resets_total"),
		replays:       reg.Counter("wal_replays_total"),
		replayEntries: reg.Counter("wal_replay_entries_total"),
		corruptions:   reg.Counter("wal_corruptions_total"),
		appendNS:      reg.Histogram("wal_append_ns"),
		fsyncNS:       reg.Histogram("wal_fsync_ns"),
		checkpointNS:  reg.Histogram("wal_checkpoint_ns"),
	}
	s.mu.Lock()
	s.met = m
	s.mu.Unlock()
}
