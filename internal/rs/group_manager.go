package rs

import (
	"fmt"
	"sync"
)

// BucketGroup is the LH*RS availability unit applied to bucket images: m
// data shards (serialized bucket snapshots, zero-padded to a common
// length) protected by k parity shards. Updates are delta-based — the
// LH*RS property that changing one data bucket touches only the k parity
// sites, never the sibling data buckets.
//
// In LH*RS terms, the data shards live on the group's data sites and the
// parity shards on dedicated parity sites; RecoverShards is what a
// spare site runs after up to k simultaneous site failures.
type BucketGroup struct {
	mu     sync.Mutex
	coder  *Group
	size   int // current shard length (grows as needed)
	data   [][]byte
	parity [][]byte
}

// NewBucketGroup creates an empty group of m data and k parity shards.
func NewBucketGroup(m, k int) (*BucketGroup, error) {
	coder, err := NewGroup(m, k)
	if err != nil {
		return nil, err
	}
	bg := &BucketGroup{coder: coder, size: 0}
	bg.data = make([][]byte, m)
	bg.parity = make([][]byte, k)
	for i := range bg.data {
		bg.data[i] = []byte{}
	}
	for j := range bg.parity {
		bg.parity[j] = []byte{}
	}
	return bg, nil
}

// M returns the number of data shards.
func (bg *BucketGroup) M() int { return bg.coder.M() }

// K returns the number of parity shards.
func (bg *BucketGroup) K() int { return bg.coder.K() }

// ShardSize returns the current (padded) shard length in bytes.
func (bg *BucketGroup) ShardSize() int {
	bg.mu.Lock()
	defer bg.mu.Unlock()
	return bg.size
}

// pad returns image zero-padded to length n (n even).
func pad(image []byte, n int) []byte {
	out := make([]byte, n)
	copy(out, image)
	return out
}

// grow extends every shard (zero padding) so new images fit. Zero
// padding is parity-neutral: parity of extended zeros is zero, so
// existing parity bytes stay valid and new positions start at zero on
// both sides. Caller holds the lock.
func (bg *BucketGroup) grow(n int) {
	if n%2 == 1 {
		n++
	}
	if n <= bg.size {
		return
	}
	for i := range bg.data {
		bg.data[i] = pad(bg.data[i], n)
	}
	for j := range bg.parity {
		bg.parity[j] = pad(bg.parity[j], n)
	}
	bg.size = n
}

// Update replaces data shard i with the new bucket image and applies
// delta updates to every parity shard.
func (bg *BucketGroup) Update(i int, image []byte) error {
	if i < 0 || i >= bg.M() {
		return fmt.Errorf("rs: data shard %d out of range [0,%d)", i, bg.M())
	}
	bg.mu.Lock()
	defer bg.mu.Unlock()
	bg.grow(len(image))
	oldShard := bg.data[i]
	newShard := pad(image, bg.size)
	for j := range bg.parity {
		if err := bg.coder.UpdateDelta(bg.parity[j], j, i, oldShard, newShard); err != nil {
			return err
		}
	}
	bg.data[i] = newShard
	return nil
}

// DataShard returns a copy of data shard i (its padded image).
func (bg *BucketGroup) DataShard(i int) ([]byte, error) {
	if i < 0 || i >= bg.M() {
		return nil, fmt.Errorf("rs: data shard %d out of range", i)
	}
	bg.mu.Lock()
	defer bg.mu.Unlock()
	return append([]byte(nil), bg.data[i]...), nil
}

// ParityShard returns a copy of parity shard j.
func (bg *BucketGroup) ParityShard(j int) ([]byte, error) {
	if j < 0 || j >= bg.K() {
		return nil, fmt.Errorf("rs: parity shard %d out of range", j)
	}
	bg.mu.Lock()
	defer bg.mu.Unlock()
	return append([]byte(nil), bg.parity[j]...), nil
}

// Shards exports copies of all m+k shards (data first) — what survives
// on the sites after a failure, with nil for the lost ones, feeds
// RecoverShards.
func (bg *BucketGroup) Shards() [][]byte {
	bg.mu.Lock()
	defer bg.mu.Unlock()
	out := make([][]byte, 0, bg.M()+bg.K())
	for _, d := range bg.data {
		out = append(out, append([]byte(nil), d...))
	}
	for _, p := range bg.parity {
		out = append(out, append([]byte(nil), p...))
	}
	return out
}

// RecoverShards reconstructs up to k missing shards (nil entries) in
// place from the survivors. It is a pure function of its input — the
// spare site needs no access to the group's live state.
func (bg *BucketGroup) RecoverShards(shards [][]byte) error {
	return bg.coder.Recover(shards)
}

// Scrub verifies that the stored parity matches the stored data.
func (bg *BucketGroup) Scrub() (bool, error) {
	shards := bg.Shards()
	if bg.ShardSize() == 0 {
		return true, nil
	}
	return bg.coder.Verify(shards)
}
