package rs

import (
	"bytes"
	"testing"

	"repro/internal/lhstar"
)

func TestBucketGroupUpdateAndScrub(t *testing.T) {
	bg, err := NewBucketGroup(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bg.M() != 4 || bg.K() != 2 {
		t.Fatal("accessors")
	}
	// Sequential updates of varying sizes; parity must stay consistent.
	images := [][]byte{
		[]byte("bucket zero image"),
		[]byte("bucket one"),
		[]byte("bucket two has rather more content than the others"),
		[]byte("b3"),
	}
	for i, img := range images {
		if err := bg.Update(i, img); err != nil {
			t.Fatal(err)
		}
		ok, err := bg.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("scrub failed after update %d", i)
		}
	}
	// Re-update a shard (delta path with nonzero old value).
	if err := bg.Update(1, []byte("bucket one, revised and longer")); err != nil {
		t.Fatal(err)
	}
	ok, err := bg.Scrub()
	if err != nil || !ok {
		t.Fatalf("scrub after re-update: %v %v", ok, err)
	}
	d, err := bg.DataShard(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(d, []byte("bucket one, revised and longer")) {
		t.Error("data shard content wrong")
	}
}

func TestBucketGroupValidation(t *testing.T) {
	bg, err := NewBucketGroup(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bg.Update(5, []byte("x")); err == nil {
		t.Error("bad index accepted")
	}
	if _, err := bg.DataShard(-1); err == nil {
		t.Error("bad data index accepted")
	}
	if _, err := bg.ParityShard(3); err == nil {
		t.Error("bad parity index accepted")
	}
}

func TestBucketGroupRecoverAfterSiteLoss(t *testing.T) {
	bg, err := NewBucketGroup(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		img := bytes.Repeat([]byte{byte('A' + i)}, 20+i*7)
		if err := bg.Update(i, img); err != nil {
			t.Fatal(err)
		}
	}
	want := bg.Shards()
	// Lose two sites: one data, one parity.
	shards := bg.Shards()
	shards[1], shards[4] = nil, nil
	if err := bg.RecoverShards(shards); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatalf("shard %d not recovered", i)
		}
	}
}

// TestLHStarBucketAvailability is the LH*RS story end to end: live LH*
// buckets, snapshots kept parity-protected across updates, a site loss,
// and full bucket reconstruction from the survivors.
func TestLHStarBucketAvailability(t *testing.T) {
	const m, k = 4, 2
	bg, err := NewBucketGroup(m, k)
	if err != nil {
		t.Fatal(err)
	}
	// Four live buckets receiving inserts; after every change the owning
	// site pushes its new snapshot (delta-updating the parity sites).
	buckets := make([]*lhstar.Bucket, m)
	for i := range buckets {
		buckets[i] = lhstar.NewBucket(uint64(i), 2)
	}
	for r := 0; r < 200; r++ {
		i := r % m
		buckets[i].Put(uint64(r*4+i), []byte{byte(r), byte(r >> 8), byte(i)})
		if err := bg.Update(i, buckets[i].Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := bg.Scrub()
	if err != nil || !ok {
		t.Fatalf("scrub: %v %v", ok, err)
	}

	// Disaster: sites 0 and 2 burn down. A spare site gathers the
	// surviving shards and reconstructs.
	shards := bg.Shards()
	shards[0], shards[2] = nil, nil
	if err := bg.RecoverShards(shards); err != nil {
		t.Fatal(err)
	}
	for _, lost := range []int{0, 2} {
		restored, err := lhstar.RestoreBucket(shards[lost])
		if err != nil {
			t.Fatalf("bucket %d: %v", lost, err)
		}
		if restored.Addr() != uint64(lost) || restored.Level() != 2 {
			t.Fatalf("bucket %d header wrong after recovery", lost)
		}
		if restored.Len() != buckets[lost].Len() {
			t.Fatalf("bucket %d has %d records, want %d", lost, restored.Len(), buckets[lost].Len())
		}
		buckets[lost].Scan(func(key uint64, value []byte) bool {
			v, found := restored.Get(key)
			if !found || !bytes.Equal(v, value) {
				t.Fatalf("bucket %d record %d lost or corrupted", lost, key)
			}
			return true
		})
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	b := lhstar.NewBucket(5, 3)
	for i := 0; i < 50; i++ {
		b.Put(uint64(i*8+5), bytes.Repeat([]byte{byte(i)}, i%9))
	}
	snap := b.Snapshot()
	// Determinism.
	if !bytes.Equal(snap, b.Snapshot()) {
		t.Error("snapshot not deterministic")
	}
	// Round trip, including with trailing padding.
	padded := append(append([]byte(nil), snap...), make([]byte, 13)...)
	got, err := lhstar.RestoreBucket(padded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr() != 5 || got.Level() != 3 || got.Len() != b.Len() {
		t.Fatal("restored header/size wrong")
	}
	// Corrupt/truncated snapshots rejected.
	if _, err := lhstar.RestoreBucket(snap[:10]); err == nil {
		t.Error("short snapshot accepted")
	}
	if _, err := lhstar.RestoreBucket(snap[:25]); err == nil {
		t.Error("truncated snapshot accepted")
	}
}
