// Package rs implements the Reed–Solomon parity machinery of LH*RS
// [LMS05], the scalable high-availability variant of LH* the paper names
// as a substrate. Buckets are organized into parity groups of m data
// buckets protected by up to k parity buckets; the code is maximum
// distance separable, so any k simultaneous bucket losses within a group
// are recoverable.
//
// The code is systematic over GF(2^16) (the field LH*RS uses) with a
// Cauchy parity matrix, whose every square submatrix is nonsingular —
// exactly the property that makes [I | C] an MDS generator. Parity
// maintenance is delta-based: when a record changes in a data bucket,
// each parity bucket applies Δ = old ⊕ new scaled by its coefficient,
// without reading the other data buckets.
package rs

import (
	"errors"
	"fmt"

	"repro/internal/gf"
)

// Group is one parity group's coding configuration. Immutable and safe
// for concurrent use.
type Group struct {
	m     int // data buckets
	k     int // parity buckets
	field *gf.Field
	p     *gf.Matrix // m×k parity coefficients
}

// NewGroup builds the coding for m data and k parity buckets.
func NewGroup(m, k int) (*Group, error) {
	if m < 1 {
		return nil, fmt.Errorf("rs: m=%d, want >= 1", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("rs: k=%d, want >= 1", k)
	}
	field := gf.MustNew(16)
	if uint32(m+k) >= field.Size() {
		return nil, fmt.Errorf("rs: m+k=%d too large for GF(2^16)", m+k)
	}
	// Cauchy parity block: p[i][j] = 1/(x_i + y_j) with x_i = alpha^i,
	// y_j = alpha^(m+j); all points distinct, so every square submatrix
	// of p is nonsingular and [I | p] is MDS.
	p := gf.NewMatrix(field, m, k)
	for i := 0; i < m; i++ {
		xi := field.Exp(uint32(i))
		for j := 0; j < k; j++ {
			yj := field.Exp(uint32(m + j))
			p.Set(i, j, field.Inv(xi^yj))
		}
	}
	return &Group{m: m, k: k, field: field, p: p}, nil
}

// M returns the number of data buckets.
func (g *Group) M() int { return g.m }

// K returns the number of parity buckets.
func (g *Group) K() int { return g.k }

// symbols converts a byte slice to GF(2^16) symbols (big-endian pairs).
// The byte length must be even.
func symbols(b []byte) []gf.Elem {
	out := make([]gf.Elem, len(b)/2)
	for i := range out {
		out[i] = gf.Elem(uint32(b[2*i])<<8 | uint32(b[2*i+1]))
	}
	return out
}

func bytesOf(sym []gf.Elem) []byte {
	out := make([]byte, 2*len(sym))
	for i, s := range sym {
		out[2*i] = byte(uint32(s) >> 8)
		out[2*i+1] = byte(s)
	}
	return out
}

func (g *Group) checkShards(shards [][]byte, want int) (int, error) {
	if len(shards) != want {
		return 0, fmt.Errorf("rs: %d shards, want %d", len(shards), want)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if len(s)%2 != 0 {
			return 0, fmt.Errorf("rs: shard %d has odd length %d", i, len(s))
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("rs: shard %d length %d, want %d", i, len(s), size)
		}
	}
	if size == -1 {
		return 0, errors.New("rs: all shards missing")
	}
	return size, nil
}

// Encode computes the k parity shards for m equal-length data shards
// (byte lengths must be even — pad with zero bytes if needed).
func (g *Group) Encode(data [][]byte) ([][]byte, error) {
	size, err := g.checkShards(data, g.m)
	if err != nil {
		return nil, err
	}
	for i, d := range data {
		if d == nil {
			return nil, fmt.Errorf("rs: data shard %d missing", i)
		}
	}
	parity := make([][]gf.Elem, g.k)
	for j := range parity {
		parity[j] = make([]gf.Elem, size/2)
	}
	for i, d := range data {
		sym := symbols(d)
		for j := 0; j < g.k; j++ {
			g.field.AddMulSlice(parity[j], sym, g.p.At(i, j))
		}
	}
	out := make([][]byte, g.k)
	for j := range out {
		out[j] = bytesOf(parity[j])
	}
	return out, nil
}

// UpdateDelta applies a data-bucket change to one parity shard in place:
// parity_j ^= (old ⊕ new) · p[i][j]. This is the LH*RS single-message
// parity update — no other data bucket participates.
func (g *Group) UpdateDelta(parity []byte, j, i int, oldData, newData []byte) error {
	if j < 0 || j >= g.k {
		return fmt.Errorf("rs: parity index %d out of range [0,%d)", j, g.k)
	}
	if i < 0 || i >= g.m {
		return fmt.Errorf("rs: data index %d out of range [0,%d)", i, g.m)
	}
	if len(oldData) != len(newData) || len(oldData) != len(parity) {
		return errors.New("rs: delta length mismatch")
	}
	if len(parity)%2 != 0 {
		return errors.New("rs: odd shard length")
	}
	delta := make([]byte, len(oldData))
	for x := range delta {
		delta[x] = oldData[x] ^ newData[x]
	}
	ps := symbols(parity)
	g.field.AddMulSlice(ps, symbols(delta), g.p.At(i, j))
	copy(parity, bytesOf(ps))
	return nil
}

// Recover reconstructs the missing shards in place. shards must have
// length m+k with data shards first; missing shards are nil. At most k
// shards may be missing.
func (g *Group) Recover(shards [][]byte) error {
	size, err := g.checkShards(shards, g.m+g.k)
	if err != nil {
		return err
	}
	missing := 0
	for _, s := range shards {
		if s == nil {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}
	if missing > g.k {
		return fmt.Errorf("rs: %d shards missing, can recover at most %d", missing, g.k)
	}
	// Generator column for shard c: data shard i has e_i; parity shard
	// m+j has column p[:, j]. Collect m available shards and solve.
	avail := make([]int, 0, g.m)
	for c := 0; c < g.m+g.k && len(avail) < g.m; c++ {
		if shards[c] != nil {
			avail = append(avail, c)
		}
	}
	// Build the m×m matrix whose rows are the generator columns of the
	// available shards: shard_c = Σ_i d_i · col_c[i], i.e. the vector of
	// available shards equals D × A where A's columns are col_c. Using
	// row-vector convention: [shards] = [d] · A.
	a := gf.NewMatrix(g.field, g.m, g.m)
	for idx, c := range avail {
		for i := 0; i < g.m; i++ {
			a.Set(i, idx, g.generatorAt(i, c))
		}
	}
	inv, err := a.Inverse()
	if err != nil {
		return fmt.Errorf("rs: decode matrix singular: %w", err)
	}
	// Recover data symbols column by column.
	n := size / 2
	availSyms := make([][]gf.Elem, g.m)
	for idx, c := range avail {
		availSyms[idx] = symbols(shards[c])
	}
	dataSyms := make([][]gf.Elem, g.m)
	for i := range dataSyms {
		dataSyms[i] = make([]gf.Elem, n)
	}
	// [d] = [shards_avail] · A^{-1}: d_i = Σ_idx avail_idx · inv[idx][i].
	for idx := 0; idx < g.m; idx++ {
		row := availSyms[idx]
		for i := 0; i < g.m; i++ {
			g.field.AddMulSlice(dataSyms[i], row, inv.At(idx, i))
		}
	}
	// Fill missing data shards.
	for i := 0; i < g.m; i++ {
		if shards[i] == nil {
			shards[i] = bytesOf(dataSyms[i])
		}
	}
	// Recompute missing parity shards from the (now complete) data.
	for j := 0; j < g.k; j++ {
		if shards[g.m+j] != nil {
			continue
		}
		ps := make([]gf.Elem, n)
		for i := 0; i < g.m; i++ {
			g.field.AddMulSlice(ps, dataSyms[i], g.p.At(i, j))
		}
		shards[g.m+j] = bytesOf(ps)
	}
	return nil
}

// generatorAt returns G[i][c] for the systematic generator [I | P].
func (g *Group) generatorAt(i, c int) gf.Elem {
	if c < g.m {
		if c == i {
			return 1
		}
		return 0
	}
	return g.p.At(i, c-g.m)
}

// Verify recomputes parity from data and reports whether every parity
// shard matches — a scrub operation.
func (g *Group) Verify(shards [][]byte) (bool, error) {
	if _, err := g.checkShards(shards, g.m+g.k); err != nil {
		return false, err
	}
	for _, s := range shards {
		if s == nil {
			return false, errors.New("rs: cannot verify with missing shards")
		}
	}
	parity, err := g.Encode(shards[:g.m])
	if err != nil {
		return false, err
	}
	for j := range parity {
		stored := shards[g.m+j]
		for x := range parity[j] {
			if parity[j][x] != stored[x] {
				return false, nil
			}
		}
	}
	return true, nil
}
