package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

func randShards(t *testing.T, m, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, m)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestNewGroupValidation(t *testing.T) {
	for _, c := range []struct{ m, k int }{{0, 1}, {1, 0}, {-1, 2}, {70000, 2}} {
		if _, err := NewGroup(c.m, c.k); err == nil {
			t.Errorf("NewGroup(%d, %d) accepted", c.m, c.k)
		}
	}
	g, err := NewGroup(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 || g.K() != 2 {
		t.Error("accessors wrong")
	}
}

func TestEncodeValidation(t *testing.T) {
	g, _ := NewGroup(3, 2)
	if _, err := g.Encode(randShards(t, 2, 10, 1)); err == nil {
		t.Error("wrong shard count accepted")
	}
	bad := randShards(t, 3, 10, 1)
	bad[1] = bad[1][:9] // odd length
	if _, err := g.Encode(bad); err == nil {
		t.Error("odd shard length accepted")
	}
	ragged := randShards(t, 3, 10, 1)
	ragged[2] = ragged[2][:8]
	if _, err := g.Encode(ragged); err == nil {
		t.Error("ragged shards accepted")
	}
	nils := randShards(t, 3, 10, 1)
	nils[0] = nil
	if _, err := g.Encode(nils); err == nil {
		t.Error("missing data shard accepted")
	}
}

func TestEncodeVerify(t *testing.T) {
	g, _ := NewGroup(4, 3)
	data := randShards(t, 4, 64, 2)
	parity, err := g.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parity) != 3 {
		t.Fatalf("%d parity shards", len(parity))
	}
	all := append(append([][]byte{}, data...), parity...)
	ok, err := g.Verify(all)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("fresh encode fails verification")
	}
	// Corrupt a byte: verification must fail.
	all[5][3] ^= 1
	ok, err = g.Verify(all)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("corruption not detected")
	}
}

func TestRecoverAllLossPatterns(t *testing.T) {
	// Exhaustively drop every subset of up to k shards for a small
	// group and verify exact recovery — the MDS property.
	g, err := NewGroup(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(t, 4, 32, 3)
	parity, err := g.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	n := len(full)
	for mask := 0; mask < 1<<n; mask++ {
		lost := 0
		for b := 0; b < n; b++ {
			if mask>>b&1 == 1 {
				lost++
			}
		}
		if lost == 0 || lost > g.K() {
			continue
		}
		shards := make([][]byte, n)
		for b := 0; b < n; b++ {
			if mask>>b&1 == 0 {
				shards[b] = append([]byte(nil), full[b]...)
			}
		}
		if err := g.Recover(shards); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for b := 0; b < n; b++ {
			if !bytes.Equal(shards[b], full[b]) {
				t.Fatalf("mask %b: shard %d not recovered correctly", mask, b)
			}
		}
	}
}

func TestRecoverTooManyLost(t *testing.T) {
	g, _ := NewGroup(3, 2)
	data := randShards(t, 3, 16, 4)
	parity, _ := g.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := g.Recover(shards); err == nil {
		t.Error("recovery with m lost data shards and only k=2 parity accepted")
	}
}

func TestRecoverNoneMissing(t *testing.T) {
	g, _ := NewGroup(2, 1)
	data := randShards(t, 2, 8, 5)
	parity, _ := g.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	if err := g.Recover(shards); err != nil {
		t.Errorf("no-op recovery failed: %v", err)
	}
}

func TestRecoverAllMissing(t *testing.T) {
	g, _ := NewGroup(2, 1)
	if err := g.Recover(make([][]byte, 3)); err == nil {
		t.Error("all-missing accepted")
	}
}

func TestUpdateDelta(t *testing.T) {
	g, err := NewGroup(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(t, 4, 32, 6)
	parity, err := g.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Change data shard 2 and apply deltas to both parity shards.
	oldData := append([]byte(nil), data[2]...)
	rng := rand.New(rand.NewSource(7))
	rng.Read(data[2])
	for j := range parity {
		if err := g.UpdateDelta(parity[j], j, 2, oldData, data[2]); err != nil {
			t.Fatal(err)
		}
	}
	// The incrementally updated parity must equal a full re-encode.
	want, err := g.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for j := range parity {
		if !bytes.Equal(parity[j], want[j]) {
			t.Errorf("parity %d: delta update diverges from re-encode", j)
		}
	}
}

func TestUpdateDeltaValidation(t *testing.T) {
	g, _ := NewGroup(2, 1)
	p := make([]byte, 8)
	if err := g.UpdateDelta(p, 1, 0, make([]byte, 8), make([]byte, 8)); err == nil {
		t.Error("bad parity index accepted")
	}
	if err := g.UpdateDelta(p, 0, 2, make([]byte, 8), make([]byte, 8)); err == nil {
		t.Error("bad data index accepted")
	}
	if err := g.UpdateDelta(p, 0, 0, make([]byte, 8), make([]byte, 6)); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := g.UpdateDelta(make([]byte, 7), 0, 0, make([]byte, 7), make([]byte, 7)); err == nil {
		t.Error("odd length accepted")
	}
}

func TestVerifyValidation(t *testing.T) {
	g, _ := NewGroup(2, 1)
	if _, err := g.Verify(make([][]byte, 2)); err == nil {
		t.Error("wrong count accepted")
	}
	shards := randShards(t, 3, 8, 8)
	shards[1] = nil
	if _, err := g.Verify(shards); err == nil {
		t.Error("missing shard accepted in verify")
	}
}

func TestSingleDataBucketGroup(t *testing.T) {
	// m=1 is mirroring-like: parity is a scaled copy.
	g, err := NewGroup(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(t, 1, 16, 9)
	parity, err := g.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{nil, parity[0], parity[1]}
	if err := g.Recover(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[0], data[0]) {
		t.Error("mirror recovery failed")
	}
}

func TestLargeGroup(t *testing.T) {
	g, err := NewGroup(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(t, 10, 128, 10)
	parity, err := g.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	// Lose 4 mixed shards.
	want := make([][]byte, len(shards))
	for i := range shards {
		want[i] = append([]byte(nil), shards[i]...)
	}
	shards[0], shards[5], shards[10], shards[13] = nil, nil, nil, nil
	if err := g.Recover(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatalf("shard %d wrong after recovery", i)
		}
	}
}
