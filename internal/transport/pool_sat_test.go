package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestPoolWaitersFailFastOnConnDeath: Sends multiplexed onto a
// connection that dies while their responses are pending must fail
// immediately with the connection error — not sit out their full
// context deadline waiting for frames that can never arrive.
func TestPoolWaitersFailFastOnConnDeath(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			go io.Copy(io.Discard, c) //nolint:errcheck // black hole: read requests, answer nothing
		}
	}()

	cli := NewTCP(map[NodeID]string{1: lis.Addr().String()})
	defer cli.Close()

	const n = 6
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_, err := cli.Send(ctx, 1, 1, []byte("doomed"))
			errCh <- err
		}()
	}
	// Wait until every request is written and waiting on a response.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, inflight := cli.PoolStats(); inflight == n {
			break
		}
		if time.Now().After(deadline) {
			_, inflight := cli.PoolStats()
			t.Fatalf("only %d/%d requests in flight", inflight, n)
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	mu.Lock()
	for _, c := range conns {
		c.Close()
	}
	mu.Unlock()

	for i := 0; i < n; i++ {
		select {
		case err := <-errCh:
			if err == nil {
				t.Fatal("send on a dead conn succeeded")
			}
			if errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("waiter sat out its deadline instead of failing fast: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d still blocked 5s after its conn died", i)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("waiters took %v to fail after conn death", elapsed)
	}
}

// TestPoolSaturationNoGoroutineLeak: bursts far past PoolSize queue
// onto the bounded pool; repeating the burst must not grow the
// process's goroutine population — queued dials and abandoned waiters
// all terminate.
func TestPoolSaturationNoGoroutineLeak(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)
	defer stop()

	cli := NewTCP(map[NodeID]string{1: addr})
	cli.PoolSize = 2
	defer cli.Close()

	burst := func() {
		var wg sync.WaitGroup
		for i := 0; i < 100; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := cli.Send(context.Background(), 1, 1, []byte("x")); err != nil {
					t.Errorf("send: %v", err)
				}
			}()
		}
		wg.Wait()
	}

	// Warm burst: establishes conns and parks the reusable worker pools
	// (those are process-global and bounded; they are the baseline, not
	// a leak).
	burst()
	time.Sleep(50 * time.Millisecond)
	base := runtime.NumGoroutine()

	for i := 0; i < 3; i++ {
		burst()
	}

	const slack = 20
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across repeated saturation bursts",
				base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
