package transport

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// NodeState is a failure detector's verdict on one node.
type NodeState uint8

const (
	// NodeUp: the node answered its most recent signals.
	NodeUp NodeState = iota
	// NodeSuspect: at least one recent signal failed, but not enough to
	// confirm the node down.
	NodeSuspect
	// NodeDown: DownAfter consecutive signals failed — the node is
	// presumed dead or partitioned until it answers again.
	NodeDown
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeSuspect:
		return "suspect"
	case NodeDown:
		return "down"
	default:
		return "unknown"
	}
}

// DetectorPolicy tunes a Detector.
type DetectorPolicy struct {
	// ProbeOp is the op code sent as an active health probe. A node that
	// answers — even with a handler error — is alive; only transport
	// failures count against it.
	ProbeOp uint8
	// ProbeInterval is the background probing period. 0 disables active
	// probing (the detector then runs on passive signals only).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 1s).
	ProbeTimeout time.Duration
	// DownAfter is the number of consecutive failed signals confirming a
	// node down (default 2). The first failure alone moves it to
	// NodeSuspect.
	DownAfter int
	// UpAfter is the number of consecutive successful signals taking a
	// suspect/down node back to NodeUp (default 1).
	UpAfter int
}

func (p *DetectorPolicy) fillDefaults() {
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = time.Second
	}
	if p.DownAfter < 1 {
		p.DownAfter = 2
	}
	if p.UpAfter < 1 {
		p.UpAfter = 1
	}
}

// HealthEvent is one node's state transition.
type HealthEvent struct {
	Node  NodeID
	State NodeState
	At    time.Time
	// Cause is the error string that drove a transition to
	// Suspect/Down; empty for transitions to Up.
	Cause string
}

// NodeHealth is a snapshot of one node's detector accounting.
type NodeHealth struct {
	Node                NodeID
	State               NodeState
	ConsecutiveFailures int
	LastTransition      time.Time
	LastError           string
	ActiveProbes        uint64 // probe signals seen
	PassiveSignals      uint64 // signals fed by ObserveSend
}

type detNode struct {
	NodeHealth
	consecOK int
}

// Detector is a lightweight per-node failure detector: it combines
// active health probes (a periodic ProbeOp to every member) with
// passive signals from live traffic (feed it as the Retry middleware's
// SendObserver) into a three-state verdict per node, and publishes
// state transitions to subscribers.
//
// Membership is authoritative, not discovered: the detector watches
// exactly the nodes it was constructed with, so a crashed node that
// drops out of the transport's directory still gets probed and
// confirmed down instead of silently disappearing.
type Detector struct {
	tr      Transport
	policy  DetectorPolicy
	members []NodeID

	mu      sync.Mutex
	nodes   map[NodeID]*detNode
	subs    []chan HealthEvent
	started bool
	stop    chan struct{}
	done    chan struct{}
	now     func() time.Time // injectable clock for tests

	met detectorMetrics // set by Instrument before traffic; nil-safe
}

// NewDetector builds a detector over the transport watching the given
// membership. Start begins background probing; ProbeOnce and
// ObserveSend work without it.
func NewDetector(tr Transport, members []NodeID, policy DetectorPolicy) *Detector {
	policy.fillDefaults()
	d := &Detector{
		tr:      tr,
		policy:  policy,
		members: append([]NodeID(nil), members...),
		nodes:   make(map[NodeID]*detNode, len(members)),
		now:     time.Now,
	}
	for _, n := range members {
		d.nodes[n] = &detNode{NodeHealth: NodeHealth{Node: n, State: NodeUp}}
	}
	return d
}

// Policy returns the effective policy (defaults filled).
func (d *Detector) Policy() DetectorPolicy { return d.policy }

// Transport returns the transport the detector probes over — the same
// unretried path a supervisor should use for control-plane queries
// against nodes it is inspecting.
func (d *Detector) Transport() Transport { return d.tr }

// Members returns the watched membership.
func (d *Detector) Members() []NodeID {
	return append([]NodeID(nil), d.members...)
}

// Start launches the background probe loop (no-op when ProbeInterval
// is 0 or the detector already runs).
func (d *Detector) Start() {
	d.mu.Lock()
	if d.started || d.policy.ProbeInterval <= 0 {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	stop, done := d.stop, d.done
	d.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(d.policy.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				d.ProbeOnce(context.Background())
			}
		}
	}()
}

// Stop halts background probing. Subscriptions stay open (no further
// active events; passive signals keep flowing if traffic does).
func (d *Detector) Stop() {
	d.mu.Lock()
	if !d.started {
		d.mu.Unlock()
		return
	}
	d.started = false
	stop, done := d.stop, d.done
	d.mu.Unlock()
	close(stop)
	<-done
}

// ProbeOnce runs one synchronous probe round over all members.
func (d *Detector) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, node := range d.members {
		wg.Add(1)
		go func(node NodeID) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, d.policy.ProbeTimeout)
			defer cancel()
			_, err := d.tr.Send(pctx, node, d.policy.ProbeOp, nil)
			d.signal(node, err, false)
		}(node)
	}
	wg.Wait()
}

// ObserveSend feeds a passive signal from live traffic; it implements
// the Retry middleware's SendObserver. A nil error (or a remote handler
// error, which proves the node answered) counts as alive; transport
// failures count against the node.
func (d *Detector) ObserveSend(node NodeID, err error) {
	d.signal(node, err, true)
}

// alive classifies a send outcome: the node is alive if the request got
// an answer — an application-level error, a shed (overloaded) response,
// or a deadline-expired drop all prove the node read the frame and
// replied. Only transport failures (no answer at all) count against it:
// a node at 3x capacity sheds by design, and shedding must never read
// as dying.
func alive(err error) bool {
	var re *RemoteError
	return err == nil || errors.As(err, &re) || overloadAlive(err)
}

// signal folds one outcome into the node's state machine and publishes
// any transition.
func (d *Detector) signal(node NodeID, err error, passive bool) {
	d.mu.Lock()
	n, ok := d.nodes[node]
	if !ok {
		d.mu.Unlock()
		return // not a watched member
	}
	if passive {
		n.PassiveSignals++
		d.met.passive.Inc()
	} else {
		n.ActiveProbes++
		d.met.probes.Inc()
	}
	prev := n.State
	var events []HealthEvent
	if alive(err) {
		n.ConsecutiveFailures = 0
		n.consecOK++
		if n.State != NodeUp && n.consecOK >= d.policy.UpAfter {
			n.State = NodeUp
			n.LastTransition = d.now()
			n.LastError = ""
			events = append(events, HealthEvent{Node: node, State: NodeUp, At: n.LastTransition})
			d.met.toUp.Inc()
		}
	} else {
		n.consecOK = 0
		n.ConsecutiveFailures++
		n.LastError = err.Error()
		switch {
		case n.ConsecutiveFailures >= d.policy.DownAfter && n.State != NodeDown:
			n.State = NodeDown
			n.LastTransition = d.now()
			events = append(events, HealthEvent{Node: node, State: NodeDown, At: n.LastTransition, Cause: n.LastError})
			d.met.toDown.Inc()
		case n.State == NodeUp:
			n.State = NodeSuspect
			n.LastTransition = d.now()
			events = append(events, HealthEvent{Node: node, State: NodeSuspect, At: n.LastTransition, Cause: n.LastError})
			d.met.toSuspect.Inc()
		}
	}
	switch {
	case prev != NodeDown && n.State == NodeDown:
		d.met.downNodes.Add(1)
	case prev == NodeDown && n.State != NodeDown:
		d.met.downNodes.Add(-1)
	}
	subs := append([]chan HealthEvent(nil), d.subs...)
	d.mu.Unlock()
	for _, ev := range events {
		for _, sub := range subs {
			select {
			case sub <- ev:
			default: // never block the signal path; snapshots backstop
			}
		}
	}
}

// Subscribe returns a channel of state transitions. Delivery is
// best-effort: events are dropped when the buffer is full, so consumers
// needing completeness must also reconcile against Snapshot.
func (d *Detector) Subscribe(buffer int) <-chan HealthEvent {
	if buffer < 1 {
		buffer = 16
	}
	ch := make(chan HealthEvent, buffer)
	d.mu.Lock()
	d.subs = append(d.subs, ch)
	d.mu.Unlock()
	return ch
}

// State returns the current verdict on one node (NodeUp for unknown
// nodes: the detector has no evidence against them).
func (d *Detector) State(node NodeID) NodeState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n, ok := d.nodes[node]; ok {
		return n.State
	}
	return NodeUp
}

// Down lists the confirmed-down members in ascending order.
func (d *Detector) Down() []NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []NodeID
	for _, n := range d.nodes {
		if n.State == NodeDown {
			out = append(out, n.Node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns every member's health, sorted by node ID.
func (d *Detector) Snapshot() []NodeHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NodeHealth, 0, len(d.nodes))
	for _, n := range d.nodes {
		out = append(out, n.NodeHealth)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
