package transport

import "repro/internal/obs"

// This file wires the transport layer into the obs registry. Each
// middleware gets an Instrument method that populates a struct of
// instrument pointers; un-instrumented components leave the pointers
// nil, and obs instruments are nil-receiver no-ops, so the hot paths
// need no branches. Instrument must be called before the component
// carries traffic (it writes plain fields the hot paths read without
// synchronization).

// retryMetrics counts the Retry middleware's work. Invariants the
// metrics-invariant suite asserts:
//
//	attempts_total == attempt_successes_total + attempt_failures_total
//	attempts_total == (sends_total - breaker_rejects_total) + retries_total
//	  (exact when no caller context expires during a backoff)
type retryMetrics struct {
	sends          *obs.Counter // Send calls
	attempts       *obs.Counter // deliveries handed to the inner transport
	retries        *obs.Counter // attempts beyond a Send's first
	successes      *obs.Counter // attempts that returned without error
	failures       *obs.Counter // attempts that returned an error
	exhausted      *obs.Counter // Sends that failed all MaxAttempts
	breakerTrips   *obs.Counter // breaker open events
	breakerRejects *obs.Counter // Sends rejected by an open breaker
	budgetDenied   *obs.Counter // retries withheld: token bucket empty
	overloaded     *obs.Counter // attempts answered with ErrOverloaded
	backoffNS      *obs.Histogram
	sendNS         *obs.Histogram
}

// Instrument publishes the middleware's counters into reg. Call before
// the transport carries traffic.
func (r *Retry) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.met = retryMetrics{
		sends:          reg.Counter("transport_retry_sends_total"),
		attempts:       reg.Counter("transport_retry_attempts_total"),
		retries:        reg.Counter("transport_retry_retries_total"),
		successes:      reg.Counter("transport_retry_attempt_successes_total"),
		failures:       reg.Counter("transport_retry_attempt_failures_total"),
		exhausted:      reg.Counter("transport_retry_exhausted_total"),
		breakerTrips:   reg.Counter("transport_retry_breaker_trips_total"),
		breakerRejects: reg.Counter("transport_retry_breaker_rejects_total"),
		budgetDenied:   reg.Counter("transport_retry_budget_exhausted_total"),
		overloaded:     reg.Counter("transport_retry_overloaded_total"),
		backoffNS:      reg.Histogram("transport_retry_backoff_ns"),
		sendNS:         reg.Histogram("transport_retry_send_ns"),
	}
}

// hedgeMetrics counts the hedging middleware. Invariant: won ≤ fired ≤
// eligible sends; a hedge "wins" when its response arrives before the
// primary's.
type hedgeMetrics struct {
	fired  *obs.Counter // second attempts actually launched
	won    *obs.Counter // hedges whose response was used
	denied *obs.Counter // hedge delay elapsed but token bucket was empty
}

// Instrument publishes the hedge middleware's counters into reg.
func (h *Hedge) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	h.met = hedgeMetrics{
		fired:  reg.Counter("transport_hedge_fired_total"),
		won:    reg.Counter("transport_hedge_won_total"),
		denied: reg.Counter("transport_hedge_denied_total"),
	}
}

// faultyMetrics mirrors FaultStats into the registry; each counter
// equals the same field summed over Faulty.Stats().
type faultyMetrics struct {
	sends      *obs.Counter
	dropped    *obs.Counter
	failed     *obs.Counter
	delayed    *obs.Counter
	duplicated *obs.Counter
	blacked    *obs.Counter
}

// Instrument publishes the fault injector's counters into reg.
func (f *Faulty) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	f.met = faultyMetrics{
		sends:      reg.Counter("transport_fault_sends_total"),
		dropped:    reg.Counter("transport_fault_drops_total"),
		failed:     reg.Counter("transport_fault_fails_total"),
		delayed:    reg.Counter("transport_fault_delays_total"),
		duplicated: reg.Counter("transport_fault_dups_total"),
		blacked:    reg.Counter("transport_fault_blackouts_total"),
	}
}

// detectorMetrics counts signals and state transitions. Invariant:
// signals seen == probes + passive, and every transition lands in
// exactly one of the three per-state counters.
type detectorMetrics struct {
	probes    *obs.Counter
	passive   *obs.Counter
	toUp      *obs.Counter
	toSuspect *obs.Counter
	toDown    *obs.Counter
	downNodes *obs.Gauge
}

// Instrument publishes the detector's counters into reg.
func (d *Detector) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.met = detectorMetrics{
		probes:    reg.Counter("detector_probes_total"),
		passive:   reg.Counter("detector_passive_signals_total"),
		toUp:      reg.Counter("detector_transitions_up_total"),
		toSuspect: reg.Counter("detector_transitions_suspect_total"),
		toDown:    reg.Counter("detector_transitions_down_total"),
		downNodes: reg.Gauge("detector_down_nodes"),
	}
}

// tcpMetrics counts the client side of the TCP transport: dials, pooled
// connection reuse, frame bytes on the wire (header included; the
// 4-byte v2 magic preamble is counted on neither side so client and
// server byte counters stay symmetric), and pool lifecycle. Invariants:
//
//	dials_total + conn_reuses_total == Sends that acquired a connection
//	pool_conns == open pooled connections (gauge)
//	inflight   == requests between acquire and release (gauge)
type tcpMetrics struct {
	dials         *obs.Counter
	reuses        *obs.Counter
	bytesOut      *obs.Counter
	bytesIn       *obs.Counter
	poolConns     *obs.Gauge
	inflight      *obs.Gauge
	connDeaths    *obs.Counter
	dialCoalesced *obs.Counter
}

// Instrument publishes the TCP client's counters into reg.
func (t *TCP) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.met = tcpMetrics{
		dials:         reg.Counter("transport_tcp_dials_total"),
		reuses:        reg.Counter("transport_tcp_conn_reuses_total"),
		bytesOut:      reg.Counter("transport_tcp_bytes_out_total"),
		bytesIn:       reg.Counter("transport_tcp_bytes_in_total"),
		poolConns:     reg.Gauge("transport_tcp_pool_conns"),
		inflight:      reg.Gauge("transport_tcp_inflight"),
		connDeaths:    reg.Counter("transport_tcp_conn_deaths_total"),
		dialCoalesced: reg.Counter("transport_tcp_dial_coalesced_total"),
	}
}

// serverMetrics counts the node side of the TCP protocol. inflight is
// the number of v2 request frames currently inside handler workers.
// Every well-formed request frame lands in exactly one of admits /
// sheds / expired, so the invariant suite asserts
//
//	admits_total + shed_total + expired_total == frames_total
//
// (corrupt frames kill the connection and dispatch nowhere).
type serverMetrics struct {
	conns         *obs.Counter
	frames        *obs.Counter
	handlerErrors *obs.Counter
	bytesIn       *obs.Counter
	bytesOut      *obs.Counter
	inflight      *obs.Gauge
	admits        *obs.Counter // requests dispatched to a handler
	sheds         *obs.Counter // rejected by the admission controller
	expired       *obs.Counter // dropped: propagated deadline already passed
}

// Instrument publishes the server's counters into reg.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.met = serverMetrics{
		conns:         reg.Counter("transport_srv_conns_total"),
		frames:        reg.Counter("transport_srv_frames_total"),
		handlerErrors: reg.Counter("transport_srv_handler_errors_total"),
		bytesIn:       reg.Counter("transport_srv_bytes_in_total"),
		bytesOut:      reg.Counter("transport_srv_bytes_out_total"),
		inflight:      reg.Gauge("transport_srv_inflight"),
		admits:        reg.Counter("transport_srv_admits_total"),
		sheds:         reg.Counter("transport_srv_shed_total"),
		expired:       reg.Counter("transport_srv_expired_total"),
	}
}

// frameWireBytes is the on-wire size of a frame carrying payload:
// 4-byte length, 1-byte tag, payload.
func frameWireBytes(payload []byte) uint64 { return uint64(5 + len(payload)) }
