package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"net"
	"testing"
)

// benchServer starts a real Server with a fixed-cost handler and
// returns its address.
func benchServer(b *testing.B) string {
	b.Helper()
	srv := NewServer(func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		return p, nil
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	b.Cleanup(func() { srv.Close() })
	return lis.Addr().String()
}

// BenchmarkTransport measures one round trip of a 256-byte request
// through three client strategies against the same server:
//
//	turn      — the pre-v2 wire discipline: one v1 frame per connection
//	            turn on a single connection (write, flush, read, repeat)
//	pooled    — the multiplexed v2 client, one caller (requests still
//	            serialize, but through the pool's write/demux loops)
//	pipelined — the multiplexed v2 client with many concurrent callers
//	            sharing pooled connections
func BenchmarkTransport(b *testing.B) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}

	b.Run("turn", func(b *testing.B) {
		addr := benchServer(b)
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer nc.Close()
		r := bufio.NewReader(nc)
		w := bufio.NewWriter(nc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := writeFrame(w, 1, payload); err != nil {
				b.Fatal(err)
			}
			if _, _, err := readFrame(r); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("pooled", func(b *testing.B) {
		addr := benchServer(b)
		cli := NewTCP(map[NodeID]string{1: addr})
		defer cli.Close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cli.Send(ctx, 1, 1, payload); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("pipelined", func(b *testing.B) {
		addr := benchServer(b)
		cli := NewTCP(map[NodeID]string{1: addr})
		defer cli.Close()
		ctx := context.Background()
		b.ReportAllocs()
		// Many in-flight requests per CPU: the point of multiplexing is
		// overlapping round trips, not adding processors.
		b.SetParallelism(16)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := cli.Send(ctx, 1, 1, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkFrameV2 isolates the codec: encode+decode of one v2 frame
// through the pooled payload path, no sockets.
func BenchmarkFrameV2(b *testing.B) {
	payload := make([]byte, 256)
	var hdr [frameHdrV2]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		putFrameHdrV2(hdr[:], uint32(i), 1, len(payload))
		n := binary.BigEndian.Uint32(hdr[:4])
		if n < 5 || n > maxFrame {
			b.Fatal("bad length")
		}
		buf := getPayloadBuf(int(n) - 5)
		copy(*buf, payload)
		putPayloadBuf(buf)
	}
}
