package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Fault injection errors. Both are transport-level failures (a request
// that never reached the node), so Retryable reports true for them.
var (
	// ErrInjectedDrop reports a request discarded by a Faulty transport
	// before delivery — the network "ate" the message.
	ErrInjectedDrop = errors.New("transport: injected drop")
	// ErrInjectedFault reports a synthetic transport error (e.g. a reset
	// connection) injected by a Faulty transport.
	ErrInjectedFault = errors.New("transport: injected fault")
	// ErrNodeDown reports a send to a node currently under blackout — the
	// Faulty model of a crashed or partitioned site.
	ErrNodeDown = errors.New("transport: node down")
)

// Fault is one node's failure schedule: independent probabilities drawn
// per request from the node's seeded stream. All faults act on the
// request path (before delivery), so retried requests are always safe —
// a dropped request was never executed. Duplicate delivery executes the
// request twice and returns the first response, modeling a duplicated
// message on an idempotent operation.
type Fault struct {
	// Drop is the probability the request is silently discarded
	// (ErrInjectedDrop after any injected delay).
	Drop float64
	// Fail is the probability of a synthetic transport error
	// (ErrInjectedFault).
	Fail float64
	// Dup is the probability the request is delivered twice; the first
	// response wins. Only meaningful for idempotent ops.
	Dup float64
	// DelayProb is the probability a request is delayed by Delay before
	// anything else happens. The delay respects context cancellation.
	DelayProb float64
	// Delay is the injected latency when DelayProb fires.
	Delay time.Duration
}

// FaultStats counts what a Faulty transport did to one node's traffic.
type FaultStats struct {
	Node       NodeID
	Sends      uint64 // requests seen (including faulted ones)
	Dropped    uint64
	Failed     uint64
	Delayed    uint64
	Duplicated uint64
	Blacked    uint64 // requests rejected by blackout
}

// Faulty wraps a Transport and injects seeded, deterministic failures
// according to per-node fault schedules. Each node has its own random
// stream derived from the seed, so the fault decisions a node's request
// sequence sees are reproducible even when requests to different nodes
// interleave (as in Broadcast).
type Faulty struct {
	inner Transport
	seed  int64

	mu    sync.Mutex
	def   Fault
	per   map[NodeID]Fault
	black map[NodeID]bool
	rngs  map[NodeID]*rand.Rand
	stats map[NodeID]*FaultStats

	met faultyMetrics // set by Instrument before traffic; nil-safe
}

// NewFaulty wraps a transport with a fault injector. With no schedule
// set it is transparent.
func NewFaulty(inner Transport, seed int64) *Faulty {
	return &Faulty{
		inner: inner,
		seed:  seed,
		per:   make(map[NodeID]Fault),
		black: make(map[NodeID]bool),
		rngs:  make(map[NodeID]*rand.Rand),
		stats: make(map[NodeID]*FaultStats),
	}
}

// SetDefault installs the fault schedule applied to every node without
// a per-node override.
func (f *Faulty) SetDefault(fault Fault) {
	f.mu.Lock()
	f.def = fault
	f.mu.Unlock()
}

// SetFault installs a per-node fault schedule, overriding the default.
func (f *Faulty) SetFault(node NodeID, fault Fault) {
	f.mu.Lock()
	f.per[node] = fault
	f.mu.Unlock()
}

// ClearFaults removes every schedule (default and overrides), leaving
// blackouts in place.
func (f *Faulty) ClearFaults() {
	f.mu.Lock()
	f.def = Fault{}
	f.per = make(map[NodeID]Fault)
	f.mu.Unlock()
}

// Blackout makes the listed nodes unreachable (every send fails with
// ErrNodeDown) until Restore — a crashed site or a network partition
// seen from this transport's side.
func (f *Faulty) Blackout(nodes ...NodeID) {
	f.mu.Lock()
	for _, n := range nodes {
		f.black[n] = true
	}
	f.mu.Unlock()
}

// Restore lifts the blackout from the listed nodes.
func (f *Faulty) Restore(nodes ...NodeID) {
	f.mu.Lock()
	for _, n := range nodes {
		delete(f.black, n)
	}
	f.mu.Unlock()
}

// Blackouts lists the currently blacked-out nodes in ascending order.
func (f *Faulty) Blackouts() []NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NodeID, 0, len(f.black))
	for n := range f.black {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a copy of the per-node fault counters, sorted by node.
func (f *Faulty) Stats() []FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FaultStats, 0, len(f.stats))
	for _, s := range f.stats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// NodeStats returns the fault counters of one node.
func (f *Faulty) NodeStats(node NodeID) FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.stats[node]; ok {
		return *s
	}
	return FaultStats{Node: node}
}

func (f *Faulty) statsOf(node NodeID) *FaultStats {
	s, ok := f.stats[node]
	if !ok {
		s = &FaultStats{Node: node}
		f.stats[node] = s
	}
	return s
}

// rngOf returns the node's private random stream. Per-node streams keep
// fault decisions deterministic per node even when Broadcast interleaves
// requests to many nodes in arbitrary goroutine order.
func (f *Faulty) rngOf(node NodeID) *rand.Rand {
	r, ok := f.rngs[node]
	if !ok {
		r = rand.New(rand.NewSource(f.seed ^ (int64(node)+1)*0x1e3779b97f4a7c15))
		f.rngs[node] = r
	}
	return r
}

// decision is one request's drawn fate.
type decision struct {
	delay time.Duration
	drop  bool
	fail  bool
	dup   bool
}

// Send implements Transport.
func (f *Faulty) Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	st := f.statsOf(node)
	st.Sends++
	f.met.sends.Inc()
	if f.black[node] {
		st.Blacked++
		f.met.blacked.Inc()
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrNodeDown, node)
	}
	fault, ok := f.per[node]
	if !ok {
		fault = f.def
	}
	var d decision
	rng := f.rngOf(node)
	// Draw every probability in a fixed order so a schedule change does
	// not shift the stream for unrelated fault kinds.
	if fault.DelayProb > 0 && rng.Float64() < fault.DelayProb {
		d.delay = fault.Delay
		st.Delayed++
		f.met.delayed.Inc()
	}
	if fault.Drop > 0 && rng.Float64() < fault.Drop {
		d.drop = true
		st.Dropped++
		f.met.dropped.Inc()
	}
	if fault.Fail > 0 && rng.Float64() < fault.Fail {
		d.fail = true
		st.Failed++
		f.met.failed.Inc()
	}
	if fault.Dup > 0 && rng.Float64() < fault.Dup {
		d.dup = true
		st.Duplicated++
		f.met.duplicated.Inc()
	}
	f.mu.Unlock()

	if d.delay > 0 {
		if err := sleepCtx(ctx, d.delay); err != nil {
			return nil, err
		}
	}
	if d.drop {
		return nil, fmt.Errorf("%w: request to node %d", ErrInjectedDrop, node)
	}
	if d.fail {
		return nil, fmt.Errorf("%w: request to node %d", ErrInjectedFault, node)
	}
	resp, err := f.inner.Send(ctx, node, op, payload)
	if d.dup && err == nil {
		// Duplicate delivery: the node executes the request again; the
		// duplicate's response is discarded.
		f.inner.Send(ctx, node, op, payload) //nolint:errcheck // duplicate outcome is irrelevant
	}
	return resp, err
}

// Nodes implements Transport. Blacked-out nodes stay listed: membership
// is directory knowledge, reachability is not.
func (f *Faulty) Nodes() []NodeID { return f.inner.Nodes() }

// Close implements Transport.
func (f *Faulty) Close() error { return f.inner.Close() }

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
