package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMemoryDeadlinePassthrough: the in-process transport hands the
// caller's context (deadline included) straight to the handler — the
// baseline the wire encoding must reproduce.
func TestMemoryDeadlinePassthrough(t *testing.T) {
	m := NewMemory()
	sawDeadline := make(chan time.Time, 1)
	m.Register(1, func(ctx context.Context, _ uint8, p []byte) ([]byte, error) {
		d, ok := ctx.Deadline()
		if !ok {
			t.Error("handler context has no deadline")
		}
		sawDeadline <- d
		return p, nil
	})
	want := time.Now().Add(3 * time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), want)
	defer cancel()
	if _, err := m.Send(ctx, 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := <-sawDeadline; !got.Equal(want) {
		t.Errorf("handler deadline = %v, want %v", got, want)
	}
}

// TestTCPDeadlinePropagation: a client deadline crosses the wire as a
// relative budget and re-materializes as the handler's context
// deadline, close to the remaining client budget.
func TestTCPDeadlinePropagation(t *testing.T) {
	const budget = 2 * time.Second
	remaining := make(chan time.Duration, 1)
	addr, stop := startTCPNode(t, func(ctx context.Context, _ uint8, p []byte) ([]byte, error) {
		d, ok := ctx.Deadline()
		if !ok {
			remaining <- -1
		} else {
			remaining <- time.Until(d)
		}
		return p, nil
	})
	defer stop()
	cli := NewTCP(map[NodeID]string{1: addr})
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if _, err := cli.Send(ctx, 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got := <-remaining
	if got < 0 {
		t.Fatal("handler context carried no deadline — budget was not propagated")
	}
	// The handler's budget is the client's minus (in-flight time + clock
	// skew on one host ≈ nothing): it must be positive and never exceed
	// what the client had.
	if got <= 0 || got > budget {
		t.Errorf("handler remaining budget = %v, want in (0, %v]", got, budget)
	}
	if got < budget/2 {
		t.Errorf("handler remaining budget = %v — lost more than half of %v in transit", got, budget)
	}

	// No caller deadline → no wire field → no handler deadline.
	if _, err := cli.Send(context.Background(), 1, 1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got := <-remaining; got != -1 {
		t.Errorf("deadline-less send grew a handler deadline of %v", got)
	}
}

// TestTCPSendExpiredContext: a context that is already dead never
// touches the network.
func TestTCPSendExpiredContext(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)
	defer stop()
	cli := NewTCP(map[NodeID]string{1: addr})
	defer cli.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := cli.Send(ctx, 1, 1, []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestTCPSendRejectsReservedOpBit: op codes with the deadline flag bit
// set cannot be encoded unambiguously and must be refused client-side.
func TestTCPSendRejectsReservedOpBit(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)
	defer stop()
	cli := NewTCP(map[NodeID]string{1: addr})
	defer cli.Close()
	if _, err := cli.Send(context.Background(), 1, tagDeadline|3, nil); err == nil {
		t.Fatal("op with the reserved deadline bit was accepted")
	}
}

// rawV2Client opens a bare v2 connection to addr: magic preamble sent,
// reader/writer ready. The test speaks the wire protocol by hand.
func rawV2Client(t *testing.T, addr string) (net.Conn, *bufio.Reader, *bufio.Writer) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	var magic [4]byte
	binary.BigEndian.PutUint32(magic[:], magicV2)
	if _, err := conn.Write(magic[:]); err != nil {
		t.Fatal(err)
	}
	return conn, bufio.NewReader(conn), bufio.NewWriter(conn)
}

// TestServerDropsExpiredOnArrival: a request whose budget is already
// spent (zero, or garbage that decodes negative) is answered with
// statusExpired without running the handler, and counted.
func TestServerDropsExpiredOnArrival(t *testing.T) {
	reg := obs.NewRegistry()
	handled := make(chan struct{}, 16)
	srv := NewServer(func(_ context.Context, _ uint8, p []byte) ([]byte, error) {
		handled <- struct{}{}
		return p, nil
	})
	srv.Instrument(reg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck // exits on Close
	defer srv.Close()

	_, r, w := rawV2Client(t, lis.Addr().String())
	send := func(id uint32, budget []byte, body []byte) {
		t.Helper()
		payload := append(append([]byte(nil), budget...), body...)
		if err := writeFrameV2(w, id, 1|tagDeadline, payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	zero := make([]byte, deadlineBytes)
	garbage := []byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88} // decodes negative

	send(1, zero, []byte("dead"))
	send(2, garbage, []byte("also dead"))
	for i := 0; i < 2; i++ {
		id, status, payload, _, err := readFrameV2(r, false)
		if err != nil {
			t.Fatal(err)
		}
		if status != statusExpired {
			t.Fatalf("response %d: status = %d, want statusExpired", id, status)
		}
		if len(payload) != 0 {
			t.Errorf("statusExpired carried a %d-byte payload", len(payload))
		}
	}

	// A healthy budget on the same connection still dispatches.
	live := make([]byte, deadlineBytes)
	binary.BigEndian.PutUint64(live, uint64(5*time.Second))
	send(3, live, []byte("alive"))
	id, status, payload, _, err := readFrameV2(r, false)
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 || status != statusOK || string(payload) != "alive" {
		t.Fatalf("live request: id=%d status=%d payload=%q", id, status, payload)
	}
	select {
	case <-handled:
	default:
		t.Fatal("live request never reached the handler")
	}
	if n := len(handled); n != 0 {
		t.Fatalf("expired requests reached the handler %d times", n)
	}

	if got := reg.CounterValue("transport_srv_expired_total"); got != 2 {
		t.Errorf("transport_srv_expired_total = %d, want 2", got)
	}
	frames := reg.CounterValue("transport_srv_frames_total")
	sum := reg.CounterValue("transport_srv_admits_total") +
		reg.CounterValue("transport_srv_shed_total") +
		reg.CounterValue("transport_srv_expired_total")
	if sum != frames {
		t.Errorf("admission invariant broken: admits+sheds+expired = %d, frames = %d", sum, frames)
	}
}

// TestServerKillsConnOnTruncatedDeadline: the deadline flag promises an
// 8-byte budget; a frame too short to hold one is a protocol violation
// and the server must drop the connection rather than guess.
func TestServerKillsConnOnTruncatedDeadline(t *testing.T) {
	srv := NewServer(echoHandler)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck // exits on Close
	defer srv.Close()

	conn, r, w := rawV2Client(t, lis.Addr().String())
	if err := writeFrameV2(w, 1, 1|tagDeadline, []byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, _, _, _, err := readFrameV2(r, false); err == nil {
		t.Fatal("server answered a truncated-deadline frame instead of dropping the conn")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server neither answered nor closed within 5s")
	}
}

// TestServerV1FramesStillServed: the legacy 5-byte-header protocol has
// no deadline field and no admission control; a v2-capable server must
// keep serving it verbatim — including op bytes that collide with the
// v2 deadline flag — and count every frame as admitted so the
// admission invariant spans both protocols.
func TestServerV1FramesStillServed(t *testing.T) {
	reg := obs.NewRegistry()
	gotOp := make(chan uint8, 1)
	srv := NewServer(func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		gotOp <- op
		return p, nil
	})
	srv.Instrument(reg)
	// A v1 server may still be fronted by a shedder-armed Server value;
	// the v1 path must ignore it rather than shed ops it cannot signal
	// overload for (v1 has no status vocabulary beyond ok/err).
	srv.SetShedder(NewShedder(ShedPolicy{MinLimit: 1, MaxLimit: 1}))
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck // exits on Close
	defer srv.Close()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r, w := bufio.NewReader(conn), bufio.NewWriter(conn)
	// 0x80|5 would be a deadline-flagged op in v2; in v1 it is just an
	// op byte and must reach the handler unmodified.
	if err := writeFrame(w, tagDeadline|5, []byte("v1 body")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	status, payload, err := readFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if status != statusOK || string(payload) != "v1 body" {
		t.Fatalf("v1 response: status=%d payload=%q", status, payload)
	}
	if op := <-gotOp; op != tagDeadline|5 {
		t.Errorf("handler saw op %#x, want %#x unmodified", op, tagDeadline|5)
	}
	if admits := reg.CounterValue("transport_srv_admits_total"); admits != 1 {
		t.Errorf("v1 frame not counted as admitted: admits = %d", admits)
	}
	if sheds := reg.CounterValue("transport_srv_shed_total"); sheds != 0 {
		t.Errorf("v1 path shed %d frames", sheds)
	}
}

// TestNodeForwardInheritsDeadline is the IAM-chain half of deadline
// propagation at the transport level: a handler that forwards with its
// own request's context hands the remaining budget to the next hop.
func TestNodeForwardInheritsDeadline(t *testing.T) {
	hopBudget := make(chan time.Duration, 1)
	leafAddr, stopLeaf := startTCPNode(t, func(ctx context.Context, _ uint8, p []byte) ([]byte, error) {
		if d, ok := ctx.Deadline(); ok {
			hopBudget <- time.Until(d)
		} else {
			hopBudget <- -1
		}
		return p, nil
	})
	defer stopLeaf()
	leafCli := NewTCP(map[NodeID]string{2: leafAddr})
	defer leafCli.Close()

	frontAddr, stopFront := startTCPNode(t, func(ctx context.Context, op uint8, p []byte) ([]byte, error) {
		return leafCli.Send(ctx, 2, op, p) // forward with the inherited ctx
	})
	defer stopFront()
	cli := NewTCP(map[NodeID]string{1: frontAddr})
	defer cli.Close()

	const budget = 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if _, err := cli.Send(ctx, 1, 1, []byte("fwd")); err != nil {
		t.Fatal(err)
	}
	got := <-hopBudget
	if got <= 0 {
		t.Fatal("second hop saw no deadline — budget lost at the forwarding node")
	}
	if got > budget {
		t.Errorf("second hop budget %v exceeds the original %v", got, budget)
	}
	if got < budget/2 {
		t.Errorf("second hop budget %v — more than half of %v lost across two hops", got, budget)
	}
}
