package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Frame format v1, both directions:
//
//	uint32 length (of everything after this field, big-endian)
//	uint8  op     (request) / status (response: 0 ok, 1 error)
//	bytes  payload
//
// v1 is strictly request-per-connection-turn; the multiplexed v2 format
// lives in wire.go and the pooled client in pool.go. The server speaks
// both: a v2 client announces itself with a magic preamble the server
// peeks before choosing a loop.
//
// maxFrame bounds a frame to keep a malformed peer from exhausting
// memory.
const maxFrame = 64 << 20

const (
	statusOK  = 0
	statusErr = 1
)

// srvReadBuf / srvWriteBuf size the server's per-connection bufio
// layers. Typical frames are a few hundred bytes (a record + its index
// pieces) but batch frames run to tens of KiB; 64 KiB lets a whole
// batch coalesce into one syscall while staying cheap per connection.
const (
	srvReadBuf  = 64 << 10
	srvWriteBuf = 64 << 10
)

// writeFrameUnflushed appends one v1 frame to w without flushing, so
// consecutive frames coalesce into one syscall; the caller flushes when
// its queue drains.
func writeFrameUnflushed(w *bufio.Writer, tag uint8, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = tag
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeFrame(w *bufio.Writer, tag uint8, payload []byte) error {
	if err := writeFrameUnflushed(w, tag, payload); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (tag uint8, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("transport: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Server serves the SDDS protocol for one node over TCP.
type Server struct {
	handler Handler
	lis     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	shed *Shedder // optional admission control; set before Serve

	met serverMetrics // set by Instrument before Serve; nil-safe
}

// NewServer wraps a handler; call Serve with a listener to start.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[net.Conn]struct{})}
}

// SetShedder arms adaptive admission control on the v2 loop: requests
// past the shedder's limit are answered with statusOverloaded (and a
// retry-after hint) instead of being queued, and requests whose
// propagated deadline already passed are dropped with statusExpired.
// Call before Serve. The v1 loop is unaffected — it is strictly one
// request per turn, so a v1 connection cannot pile up work.
func (s *Server) SetShedder(sh *Shedder) { s.shed = sh }

// Serve accepts connections until the listener is closed. Each
// connection speaks v1 (sequential request/response turns) or v2
// (multiplexed tagged frames), chosen by peeking for the v2 magic
// preamble.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		// Close ran before we published the listener; it could not
		// close it, so we must, or Accept below would block forever.
		s.mu.Unlock()
		return lis.Close()
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	s.met.conns.Inc()
	r := bufio.NewReaderSize(conn, srvReadBuf)
	peek, err := r.Peek(4)
	if err != nil {
		return
	}
	if binary.BigEndian.Uint32(peek) == magicV2 {
		r.Discard(4) //nolint:errcheck // peeked bytes cannot fail to discard
		s.serveConnV2(conn, r)
		return
	}
	s.serveConnV1(conn, r)
}

// serveConnV1 is the legacy loop: one request, one response, in order.
func (s *Server) serveConnV1(conn net.Conn, r *bufio.Reader) {
	w := bufio.NewWriterSize(conn, srvWriteBuf)
	for {
		op, payload, err := readFrame(r)
		if err != nil {
			return // connection closed or corrupt; drop it
		}
		s.met.frames.Inc()
		s.met.bytesIn.Add(frameWireBytes(payload))
		s.met.admits.Inc() // v1 has no admission control: every frame dispatches
		resp, herr := s.handler(context.Background(), op, payload)
		if herr != nil {
			s.met.handlerErrors.Inc()
			msg := []byte(herr.Error())
			if err := writeFrame(w, statusErr, msg); err != nil {
				return
			}
			s.met.bytesOut.Add(frameWireBytes(msg))
			continue
		}
		if err := writeFrame(w, statusOK, resp); err != nil {
			return
		}
		s.met.bytesOut.Add(frameWireBytes(resp))
	}
}

// srvResp is one finished request on its way to the writer goroutine.
// reqBuf is the pooled buffer the request payload was read into; the
// writer releases it only after the response frame is written, because
// a handler's response may alias its request.
type srvResp struct {
	id      uint32
	status  uint8
	payload []byte
	reqBuf  *[]byte
}

// srvTask is one v2 request dispatched to a handler worker. inflight is
// the connection's own live-request counter; the writer consults it to
// decide whether yielding for more responses is worthwhile. deadline is
// the caller's propagated deadline (zero when none was sent); tok is
// the shedder admission receipt when the server runs one.
type srvTask struct {
	s        *Server
	id       uint32
	op       uint8
	payload  []byte
	buf      *[]byte
	deadline time.Time
	tok      ShedToken
	admitted bool
	respCh   chan srvResp
	wg       *sync.WaitGroup
	inflight *atomic.Int32
}

func (t srvTask) run() {
	defer t.wg.Done()
	ctx := context.Background()
	var cancel context.CancelFunc
	if !t.deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, t.deadline)
	}
	resp, herr := t.s.handler(ctx, t.op, t.payload)
	if cancel != nil {
		cancel()
	}
	if t.admitted {
		t.s.shed.Done(t.tok)
	}
	// Decrement before the response is queued so the writer's snapshot
	// counts only requests that still owe it a response.
	t.s.met.inflight.Add(-1)
	t.inflight.Add(-1)
	if herr != nil {
		t.s.met.handlerErrors.Inc()
		// A request whose forward was shed or expired downstream keeps
		// its status on the way back out instead of flattening into a
		// generic remote error: the original client must see overload as
		// backpressure (and honor the hint), not as a node failure.
		var oe *OverloadedError
		if errors.As(herr, &oe) {
			hint := make([]byte, deadlineBytes)
			binary.BigEndian.PutUint64(hint, uint64(oe.RetryAfter))
			t.respCh <- srvResp{id: t.id, status: statusOverloaded, payload: hint, reqBuf: t.buf}
			return
		}
		if errors.Is(herr, context.DeadlineExceeded) {
			t.respCh <- srvResp{id: t.id, status: statusExpired, reqBuf: t.buf}
			return
		}
		t.respCh <- srvResp{id: t.id, status: statusErr, payload: []byte(herr.Error()), reqBuf: t.buf}
		return
	}
	t.respCh <- srvResp{id: t.id, status: statusOK, payload: resp, reqBuf: t.buf}
}

// srvIdle parks finished handler workers for reuse, exactly like the
// client-side fan-out pool: dispatch never queues behind a busy worker
// (a fresh goroutine is spawned when no parked worker is free, so a
// blocking handler — e.g. one forwarding to a peer node — cannot stall
// unrelated requests), while parked workers keep their grown stacks so
// a hot request stream stops paying per-request stack growth.
var srvIdle = make(chan chan srvTask, 64)

func srvGo(t srvTask) {
	select {
	case mb := <-srvIdle:
		mb <- t
	default:
		go srvWorker(t)
	}
}

func srvWorker(t srvTask) {
	mb := make(chan srvTask)
	for {
		t.run()
		t = srvTask{} // hold no buffers while parked
		select {
		case srvIdle <- mb:
		default:
			return
		}
		t = <-mb
	}
}

// serveConnV2 is the multiplexed loop: a reader dispatching each
// request frame to its own worker goroutine, and a single writer
// goroutine serializing response frames back (out of order relative to
// requests). Flushes coalesce: the writer only flushes when its queue
// is momentarily empty, so a burst of responses ships as one syscall.
func (s *Server) serveConnV2(conn net.Conn, r *bufio.Reader) {
	respCh := make(chan srvResp, 128)
	writerDone := make(chan struct{})
	var inflight atomic.Int32
	go func() {
		defer close(writerDone)
		w := bufio.NewWriterSize(conn, srvWriteBuf)
		var werr error
		for resp := range respCh {
			// When other requests on this connection still owe responses,
			// yield once so workers that are about to finish can queue
			// theirs too; the whole burst then leaves in one flush instead
			// of one syscall per response. A lone request skips the yield.
			if len(respCh) == 0 && inflight.Load() > 0 {
				runtime.Gosched()
			}
			for {
				if werr == nil {
					werr = writeFrameV2(w, resp.id, resp.status, resp.payload)
					if werr == nil {
						s.met.bytesOut.Add(frameWireBytesV2(resp.payload))
					} else {
						conn.Close() // unblock the read loop
					}
				}
				putPayloadBuf(resp.reqBuf)
				more := false
				select {
				case next, ok := <-respCh:
					if ok {
						resp = next
						more = true
					}
				default:
				}
				if !more {
					break
				}
			}
			if werr == nil {
				if werr = w.Flush(); werr != nil {
					conn.Close()
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for {
		id, tag, payload, buf, err := readFrameV2(r, true)
		if err != nil {
			break
		}
		s.met.frames.Inc()
		s.met.bytesIn.Add(frameWireBytesV2(payload))
		op := tag &^ tagDeadline
		var deadline time.Time
		if tag&tagDeadline != 0 {
			budget, rest, derr := splitBudget(payload)
			if derr != nil {
				// Protocol violation: the flag promised a deadline field the
				// frame doesn't hold. Drop the connection like any other
				// corrupt stream.
				putPayloadBuf(buf)
				break
			}
			payload = rest
			if budget <= 0 {
				// Already expired on arrival: answer statusExpired without
				// touching the handler — the client's own deadline fired (or
				// will momentarily), so any real work here is wasted CPU.
				s.met.expired.Inc()
				respCh <- srvResp{id: id, status: statusExpired, reqBuf: buf}
				continue
			}
			deadline = time.Now().Add(budget)
		}
		task := srvTask{s: s, id: id, op: op, payload: payload, buf: buf, deadline: deadline, respCh: respCh, wg: &wg, inflight: &inflight}
		if s.shed != nil {
			tok, retryAfter, ok := s.shed.Admit(op)
			if !ok {
				s.met.sheds.Inc()
				hint := make([]byte, deadlineBytes)
				binary.BigEndian.PutUint64(hint, uint64(retryAfter))
				respCh <- srvResp{id: id, status: statusOverloaded, payload: hint, reqBuf: buf}
				continue
			}
			task.tok, task.admitted = tok, true
		}
		s.met.admits.Inc()
		s.met.inflight.Add(1)
		inflight.Add(1)
		wg.Add(1)
		srvGo(task)
	}
	wg.Wait()
	close(respCh)
	<-writerDone
}

// Close stops accepting and closes all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}
