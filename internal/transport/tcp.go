package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// Frame format, both directions:
//
//	uint32 length (of everything after this field, big-endian)
//	uint8  op     (request) / status (response: 0 ok, 1 error)
//	bytes  payload
//
// maxFrame bounds a frame to keep a malformed peer from exhausting
// memory.
const maxFrame = 64 << 20

const (
	statusOK  = 0
	statusErr = 1
)

func writeFrame(w *bufio.Writer, tag uint8, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = tag
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (tag uint8, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("transport: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Server serves the SDDS protocol for one node over TCP.
type Server struct {
	handler Handler
	lis     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	met serverMetrics // set by Instrument before Serve; nil-safe
}

// NewServer wraps a handler; call Serve with a listener to start.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener is closed. Each
// connection carries a sequential request/response stream; concurrency
// comes from multiple connections.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	s.met.conns.Inc()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		op, payload, err := readFrame(r)
		if err != nil {
			return // connection closed or corrupt; drop it
		}
		s.met.frames.Inc()
		s.met.bytesIn.Add(frameWireBytes(payload))
		resp, herr := s.handler(op, payload)
		if herr != nil {
			s.met.handlerErrors.Inc()
			msg := []byte(herr.Error())
			if err := writeFrame(w, statusErr, msg); err != nil {
				return
			}
			s.met.bytesOut.Add(frameWireBytes(msg))
			continue
		}
		if err := writeFrame(w, statusOK, resp); err != nil {
			return
		}
		s.met.bytesOut.Add(frameWireBytes(resp))
	}
}

// Close stops accepting and closes all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// TCP is the client-side TCP transport: a node-address directory with a
// small per-node connection pool.
type TCP struct {
	mu     sync.Mutex
	addrs  map[NodeID]string
	idle   map[NodeID][]*tcpConn
	closed bool

	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// PoolSize caps idle connections kept per node.
	PoolSize int

	met tcpMetrics // set by Instrument before traffic; nil-safe
}

type tcpConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// NewTCP creates a transport over the given node address directory.
func NewTCP(addrs map[NodeID]string) *TCP {
	cp := make(map[NodeID]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	return &TCP{
		addrs:       cp,
		idle:        make(map[NodeID][]*tcpConn),
		DialTimeout: 5 * time.Second,
		PoolSize:    4,
	}
}

// AddNode registers (or updates) a node address.
func (t *TCP) AddNode(node NodeID, addr string) {
	t.mu.Lock()
	t.addrs[node] = addr
	t.mu.Unlock()
}

// Nodes implements Transport.
func (t *TCP) Nodes() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, len(t.addrs))
	for id := range t.addrs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// getConn returns a pooled connection (pooled reports true) or dials a
// fresh one.
func (t *TCP) getConn(node NodeID) (c *tcpConn, pooled bool, err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, errors.New("transport: closed")
	}
	addr, ok := t.addrs[node]
	if !ok {
		t.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %d", ErrUnknownNode, node)
	}
	if pool := t.idle[node]; len(pool) > 0 {
		c := pool[len(pool)-1]
		t.idle[node] = pool[:len(pool)-1]
		t.mu.Unlock()
		t.met.reuses.Inc()
		return c, true, nil
	}
	t.mu.Unlock()
	nc, err := t.dial(node, addr)
	if err != nil {
		return nil, false, err
	}
	return nc, false, nil
}

func (t *TCP) dial(node NodeID, addr string) (*tcpConn, error) {
	nc, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing node %d: %w", node, err)
	}
	t.met.dials.Inc()
	return &tcpConn{c: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}, nil
}

func (t *TCP) putConn(node NodeID, c *tcpConn) {
	t.mu.Lock()
	if !t.closed && len(t.idle[node]) < t.PoolSize {
		t.idle[node] = append(t.idle[node], c)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	c.c.Close()
}

// Send implements Transport. A request uses one pooled connection for
// its full round trip; the context deadline maps onto socket deadlines.
func (t *TCP) Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, pooled, err := t.getConn(node)
	if err != nil {
		return nil, err
	}
	var dl time.Time // zero clears any deadline a pooled conn carries
	if d, ok := ctx.Deadline(); ok {
		dl = d
	}
	if serr := c.c.SetDeadline(dl); serr != nil {
		// A pooled connection that rejects a deadline is poisoned
		// (already closed by the peer or the OS); a stale frame must
		// never be read off it. Drop it and retry once on a fresh dial.
		c.c.Close()
		if !pooled {
			return nil, fmt.Errorf("transport: setting deadline for node %d: %w", node, serr)
		}
		t.mu.Lock()
		addr, ok := t.addrs[node]
		t.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrUnknownNode, node)
		}
		if c, err = t.dial(node, addr); err != nil {
			return nil, err
		}
		if serr := c.c.SetDeadline(dl); serr != nil {
			c.c.Close()
			return nil, fmt.Errorf("transport: setting deadline for node %d: %w", node, serr)
		}
	}
	if err := writeFrame(c.w, op, payload); err != nil {
		c.c.Close()
		return nil, fmt.Errorf("transport: sending to node %d: %w", node, err)
	}
	t.met.bytesOut.Add(frameWireBytes(payload))
	status, resp, err := readFrame(c.r)
	if err != nil {
		c.c.Close()
		return nil, fmt.Errorf("transport: reading from node %d: %w", node, err)
	}
	t.met.bytesIn.Add(frameWireBytes(resp))
	t.putConn(node, c)
	if status == statusErr {
		return nil, &RemoteError{Node: node, Msg: string(resp)}
	}
	return resp, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for _, pool := range t.idle {
		for _, c := range pool {
			c.c.Close()
		}
	}
	t.idle = make(map[NodeID][]*tcpConn)
	return nil
}
