// Package transport carries the SDDS protocol between clients,
// coordinator, and storage nodes. It deliberately separates transport
// from protocol: messages are (op, payload) byte frames; the sdds layer
// defines op codes and payload encodings.
//
// Two implementations are provided: an in-memory transport that wires
// nodes as goroutine handlers (used by tests and examples that simulate
// a multicomputer in one process) and a TCP transport over real sockets
// (used by the cmd/esdds-node daemon). Both expose the same interface,
// so every distributed code path in the repository runs identically over
// loopback TCP and in memory.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies one storage node.
type NodeID int

// Handler processes one request on a node and returns the response
// payload. Handlers must be safe for concurrent use. The context
// carries the caller's remaining deadline budget when one was
// propagated (in memory: the caller's own context; over TCP: a
// deadline reconstructed from the wire-v2 deadline field), so a
// handler that forwards — an LH* hop, a scatter leg — hands its peers
// the time the original caller actually has left.
type Handler func(ctx context.Context, op uint8, payload []byte) ([]byte, error)

// Transport sends requests to nodes and awaits their responses.
type Transport interface {
	// Send delivers (op, payload) to the node and returns its response.
	// Remote handler errors come back as *RemoteError.
	Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error)
	// Nodes lists the reachable node IDs in ascending order.
	Nodes() []NodeID
	// Close releases connections.
	Close() error
}

// RemoteError is an error returned by a node's handler, carried across
// the transport.
type RemoteError struct {
	Node NodeID
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("node %d: %s", e.Node, e.Msg)
}

// ErrUnknownNode reports a send to an unregistered node.
var ErrUnknownNode = errors.New("transport: unknown node")

// Memory is the in-process transport: a registry of handlers.
type Memory struct {
	mu       sync.RWMutex
	handlers map[NodeID]Handler
	closed   bool
}

// NewMemory creates an empty in-memory transport.
func NewMemory() *Memory {
	return &Memory{handlers: make(map[NodeID]Handler)}
}

// Register wires a node's handler. Re-registering replaces the handler.
func (m *Memory) Register(node NodeID, h Handler) {
	m.mu.Lock()
	m.handlers[node] = h
	m.mu.Unlock()
}

// Unregister removes a node — simulating a site failure. Subsequent
// sends to it fail with ErrUnknownNode.
func (m *Memory) Unregister(node NodeID) {
	m.mu.Lock()
	delete(m.handlers, node)
	m.mu.Unlock()
}

// Send implements Transport.
func (m *Memory) Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	h, ok := m.handlers[node]
	closed := m.closed
	m.mu.RUnlock()
	if closed {
		return nil, errors.New("transport: closed")
	}
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, node)
	}
	resp, err := h(ctx, op, payload)
	if err != nil {
		return nil, &RemoteError{Node: node, Msg: err.Error()}
	}
	return resp, nil
}

// Nodes implements Transport.
func (m *Memory) Nodes() []NodeID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]NodeID, 0, len(m.handlers))
	for id := range m.handlers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close implements Transport.
func (m *Memory) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}

// Result is one node's reply in a scatter-gather exchange.
type Result struct {
	Node    NodeID
	Payload []byte
	Err     error
}

// InlineSender marks transports whose Send completes synchronously on
// the calling goroutine with no I/O to overlap — the in-memory
// transport, where a send IS the handler call. Fan-out helpers run such
// sends serially when the context cannot be cancelled: with no latency
// to hide, worker handoff is pure scheduling overhead, and with an
// uncancellable context a serial pass blocks in exactly the cases a
// parallel one would (fan-out waits for every result either way).
type InlineSender interface {
	SendsInline() bool
}

// SendsInline marks the in-memory transport for serial fan-out: a send
// is a direct handler call on the caller's goroutine.
func (m *Memory) SendsInline() bool { return true }

// CtxSender marks transports whose Send returns promptly once the
// context ends, even mid-request — the pooled TCP transport, whose
// round-trip selects on ctx.Done while the demux goroutine owns the
// socket. Fan-out helpers call such transports directly instead of
// paying a watchdog goroutine per send; transports that can block past
// cancellation (an in-memory handler that never returns, a middleware
// that swallows the context) must not carry the marker.
type CtxSender interface {
	SendsWithContext() bool
}

// SendsWithContext marks the pooled TCP transport: roundTrip abandons
// the waiter and returns ctx.Err() the moment the context ends.
func (t *TCP) SendsWithContext() bool { return true }

// SendsWithContext forwards the inner transport's marker: Retry only
// adds context-honoring sleeps between attempts, so it aborts promptly
// exactly when its inner transport does.
func (r *Retry) SendsWithContext() bool {
	cs, ok := r.inner.(CtxSender)
	return ok && cs.SendsWithContext()
}

// sendAbortable runs one Send but returns as soon as the context ends,
// carrying ctx.Err(), even if the underlying transport ignores
// cancellation (a hung node, a blocked in-memory handler). The
// abandoned send finishes (and is discarded) on its own goroutine.
func sendAbortable(ctx context.Context, tr Transport, node NodeID, op uint8, payload []byte) ([]byte, error) {
	if ctx.Done() == nil {
		// A context that can never be cancelled (context.Background and
		// friends) needs no abort goroutine or channel.
		return tr.Send(ctx, node, op, payload)
	}
	if cs, ok := tr.(CtxSender); ok && cs.SendsWithContext() {
		// The transport aborts on its own when the context ends; a
		// watchdog goroutine would only duplicate that select.
		return tr.Send(ctx, node, op, payload)
	}
	type outcome struct {
		payload []byte
		err     error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, err := tr.Send(ctx, node, op, payload)
		ch <- outcome{resp, err}
	}()
	select {
	case o := <-ch:
		return o.payload, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// fanTask is one unit of scatter-gather work run by the fan-out worker
// pool.
type fanTask struct {
	ctx     context.Context
	tr      Transport
	node    NodeID
	op      uint8
	payload []byte
	out     *Result
	wg      *sync.WaitGroup
}

func (t fanTask) run() {
	resp, err := sendAbortable(t.ctx, t.tr, t.node, t.op, t.payload)
	*t.out = Result{Node: t.node, Payload: resp, Err: err}
	t.wg.Done()
}

// fanIdle holds the mailboxes of parked fan-out workers. Dispatch
// reuses a parked worker when one is free and spawns a fresh goroutine
// otherwise — a task is never queued behind a busy worker, so a slow or
// blocked send cannot stall an unrelated fan-out. Parked workers keep
// their grown stacks, which matters on the in-memory transport: the
// node handler runs on the dispatching goroutine, and a cold goroutine
// pays stack-growth through the whole handler on every send.
var fanIdle = make(chan chan fanTask, 64)

func fanGo(t fanTask) {
	select {
	case mb := <-fanIdle:
		mb <- t
	default:
		go fanWorker(t)
	}
}

func fanWorker(t fanTask) {
	mb := make(chan fanTask)
	for {
		t.run()
		t = fanTask{} // hold no payload references while parked
		select {
		case fanIdle <- mb:
		default:
			return // enough workers parked already; retire this one
		}
		t = <-mb
	}
}

// fanOut dispatches one send per node and waits for all results;
// payloadAt indexes into the caller's node order. nodes[0] runs inline
// on the caller's goroutine (which would otherwise just block), so a
// single-node fan-out costs no goroutine at all.
func fanOut(ctx context.Context, tr Transport, nodes []NodeID, op uint8, payloadAt func(int) []byte, out []Result) {
	if len(nodes) == 0 {
		return
	}
	if is, ok := tr.(InlineSender); ok && is.SendsInline() && ctx.Done() == nil {
		for i, n := range nodes {
			resp, err := tr.Send(ctx, n, op, payloadAt(i))
			out[i] = Result{Node: n, Payload: resp, Err: err}
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(nodes) - 1)
	for i := 1; i < len(nodes); i++ {
		fanGo(fanTask{ctx: ctx, tr: tr, node: nodes[i], op: op, payload: payloadAt(i), out: &out[i], wg: &wg})
	}
	resp, err := sendAbortable(ctx, tr, nodes[0], op, payloadAt(0))
	out[0] = Result{Node: nodes[0], Payload: resp, Err: err}
	wg.Wait()
}

// Broadcast sends the same request to every listed node in parallel and
// collects all results, ordered by node ID. This is the primitive behind
// the paper's parallel searches: the query series go to all index sites
// at once and the coordinator gathers their hits. When the context ends,
// pending sends abort promptly and their Results carry ctx.Err().
func Broadcast(ctx context.Context, tr Transport, nodes []NodeID, op uint8, payload []byte) []Result {
	out := make([]Result, len(nodes))
	fanOut(ctx, tr, nodes, op, func(int) []byte { return payload }, out)
	return out
}

// Scatter sends a distinct request to each node in parallel; requests
// maps node → payload. Results are ordered by ascending node ID. When
// the context ends, pending sends abort promptly and their Results
// carry ctx.Err().
func Scatter(ctx context.Context, tr Transport, op uint8, requests map[NodeID][]byte) []Result {
	nodes := make([]NodeID, 0, len(requests))
	payloads := make([][]byte, 0, len(requests))
	for n := range requests {
		nodes = append(nodes, n)
	}
	// Destination sets are small (one entry per node); a direct insertion
	// sort beats sort.Slice's reflection-based swaps on every hot path.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j] < nodes[j-1]; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
	for _, n := range nodes {
		payloads = append(payloads, requests[n])
	}
	return ScatterList(ctx, tr, op, nodes, payloads)
}

// ScatterList is Scatter for callers that already hold parallel node and
// payload slices: no map, no sort — results come back in input order,
// results[i] answering nodes[i]. Nodes must be distinct.
func ScatterList(ctx context.Context, tr Transport, op uint8, nodes []NodeID, payloads [][]byte) []Result {
	out := make([]Result, len(nodes))
	fanOut(ctx, tr, nodes, op, func(i int) []byte { return payloads[i] }, out)
	return out
}
