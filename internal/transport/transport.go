// Package transport carries the SDDS protocol between clients,
// coordinator, and storage nodes. It deliberately separates transport
// from protocol: messages are (op, payload) byte frames; the sdds layer
// defines op codes and payload encodings.
//
// Two implementations are provided: an in-memory transport that wires
// nodes as goroutine handlers (used by tests and examples that simulate
// a multicomputer in one process) and a TCP transport over real sockets
// (used by the cmd/esdds-node daemon). Both expose the same interface,
// so every distributed code path in the repository runs identically over
// loopback TCP and in memory.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies one storage node.
type NodeID int

// Handler processes one request on a node and returns the response
// payload. Handlers must be safe for concurrent use.
type Handler func(op uint8, payload []byte) ([]byte, error)

// Transport sends requests to nodes and awaits their responses.
type Transport interface {
	// Send delivers (op, payload) to the node and returns its response.
	// Remote handler errors come back as *RemoteError.
	Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error)
	// Nodes lists the reachable node IDs in ascending order.
	Nodes() []NodeID
	// Close releases connections.
	Close() error
}

// RemoteError is an error returned by a node's handler, carried across
// the transport.
type RemoteError struct {
	Node NodeID
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("node %d: %s", e.Node, e.Msg)
}

// ErrUnknownNode reports a send to an unregistered node.
var ErrUnknownNode = errors.New("transport: unknown node")

// Memory is the in-process transport: a registry of handlers.
type Memory struct {
	mu       sync.RWMutex
	handlers map[NodeID]Handler
	closed   bool
}

// NewMemory creates an empty in-memory transport.
func NewMemory() *Memory {
	return &Memory{handlers: make(map[NodeID]Handler)}
}

// Register wires a node's handler. Re-registering replaces the handler.
func (m *Memory) Register(node NodeID, h Handler) {
	m.mu.Lock()
	m.handlers[node] = h
	m.mu.Unlock()
}

// Unregister removes a node — simulating a site failure. Subsequent
// sends to it fail with ErrUnknownNode.
func (m *Memory) Unregister(node NodeID) {
	m.mu.Lock()
	delete(m.handlers, node)
	m.mu.Unlock()
}

// Send implements Transport.
func (m *Memory) Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	h, ok := m.handlers[node]
	closed := m.closed
	m.mu.RUnlock()
	if closed {
		return nil, errors.New("transport: closed")
	}
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, node)
	}
	resp, err := h(op, payload)
	if err != nil {
		return nil, &RemoteError{Node: node, Msg: err.Error()}
	}
	return resp, nil
}

// Nodes implements Transport.
func (m *Memory) Nodes() []NodeID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]NodeID, 0, len(m.handlers))
	for id := range m.handlers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close implements Transport.
func (m *Memory) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}

// Result is one node's reply in a scatter-gather exchange.
type Result struct {
	Node    NodeID
	Payload []byte
	Err     error
}

// sendAbortable runs one Send but returns as soon as the context ends,
// carrying ctx.Err(), even if the underlying transport ignores
// cancellation (a hung node, a blocked in-memory handler). The
// abandoned send finishes (and is discarded) on its own goroutine.
func sendAbortable(ctx context.Context, tr Transport, node NodeID, op uint8, payload []byte) ([]byte, error) {
	type outcome struct {
		payload []byte
		err     error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, err := tr.Send(ctx, node, op, payload)
		ch <- outcome{resp, err}
	}()
	select {
	case o := <-ch:
		return o.payload, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Broadcast sends the same request to every listed node in parallel and
// collects all results, ordered by node ID. This is the primitive behind
// the paper's parallel searches: the query series go to all index sites
// at once and the coordinator gathers their hits. When the context ends,
// pending sends abort promptly and their Results carry ctx.Err().
func Broadcast(ctx context.Context, tr Transport, nodes []NodeID, op uint8, payload []byte) []Result {
	out := make([]Result, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node NodeID) {
			defer wg.Done()
			resp, err := sendAbortable(ctx, tr, node, op, payload)
			out[i] = Result{Node: node, Payload: resp, Err: err}
		}(i, node)
	}
	wg.Wait()
	return out
}

// Scatter sends a distinct request to each node in parallel; requests
// maps node → payload. Results are ordered by ascending node ID. When
// the context ends, pending sends abort promptly and their Results
// carry ctx.Err().
func Scatter(ctx context.Context, tr Transport, op uint8, requests map[NodeID][]byte) []Result {
	nodes := make([]NodeID, 0, len(requests))
	for n := range requests {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	out := make([]Result, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node NodeID) {
			defer wg.Done()
			resp, err := sendAbortable(ctx, tr, node, op, requests[node])
			out[i] = Result{Node: node, Payload: resp, Err: err}
		}(i, node)
	}
	wg.Wait()
	return out
}
