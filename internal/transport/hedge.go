package transport

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Request hedging (DESIGN.md §13): for idempotent read ops, if the
// primary attempt has not answered within a p99-ish delay, launch one
// backup attempt on the same node and take whichever answers first.
// In this SDDS a record lives on exactly one node, so the hedge is a
// second chance past a stuck worker, a dropped frame, or a momentary
// queue — not a replica switch. A token budget caps hedge volume so
// tail tolerance cannot become load amplification during a brown-out.

// HedgePolicy tunes the Hedge middleware.
type HedgePolicy struct {
	// Ops lists the op codes that may be hedged. Only idempotent,
	// read-only ops belong here: a hedged mutation could apply twice.
	// Empty means hedging is disabled (pure pass-through).
	Ops []uint8
	// Delay fixes the hedge trigger delay. 0 means adaptive: the p99 of
	// recently observed successful latencies for hedgeable ops, clamped
	// to [MinDelay, MaxDelay].
	Delay time.Duration
	// MinDelay / MaxDelay clamp the adaptive delay (defaults 1ms / 1s).
	// Until enough samples accumulate the delay sits at MaxDelay, so a
	// cold client does not hedge-storm.
	MinDelay time.Duration
	MaxDelay time.Duration
	// Budget caps hedges to roughly this fraction of un-hedged sends
	// (token bucket, like RetryPolicy.RetryBudget; default 0.1).
	Budget float64
	// Burst caps (and seeds) the token balance (default 10).
	Burst int
}

func (p *HedgePolicy) fillDefaults() {
	if p.MinDelay <= 0 {
		p.MinDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.MaxDelay < p.MinDelay {
		p.MaxDelay = p.MinDelay
	}
	if p.Budget <= 0 {
		p.Budget = 0.1
	}
	if p.Burst <= 0 {
		p.Burst = 10
	}
}

// hedgeWarmup is how many latency samples the adaptive delay needs
// before it trusts its p99; below it the delay stays at MaxDelay.
const hedgeWarmup = 32

// Hedge is a Transport middleware adding budgeted backup requests for
// idempotent ops. Place it below Retry: a retry of a hedged send is a
// fresh hedging decision, and hedge outcomes feed Retry's observer
// exactly like any attempt.
type Hedge struct {
	inner     Transport
	pol       HedgePolicy
	hedgeable [256]bool

	hist    *obs.Histogram // successful hedgeable-op latencies
	samples atomic.Uint64
	delayNs atomic.Int64 // cached adaptive delay

	mu     sync.Mutex
	tokens float64

	met hedgeMetrics // set by Instrument; nil-safe
}

// NewHedge wraps a transport with hedging under the given policy.
func NewHedge(inner Transport, pol HedgePolicy) *Hedge {
	pol.fillDefaults()
	h := &Hedge{inner: inner, pol: pol, hist: obs.NewHistogram(), tokens: float64(pol.Burst)}
	for _, op := range pol.Ops {
		h.hedgeable[op] = true
	}
	h.delayNs.Store(int64(pol.MaxDelay))
	return h
}

// delay returns the current hedge trigger delay.
func (h *Hedge) delay() time.Duration {
	if h.pol.Delay > 0 {
		return h.pol.Delay
	}
	return time.Duration(h.delayNs.Load())
}

// record feeds one successful round-trip latency into the adaptive
// delay estimate; every 64th sample refreshes the cached p99.
func (h *Hedge) record(lat time.Duration) {
	h.hist.Observe(lat.Nanoseconds())
	n := h.samples.Add(1)
	if n < hedgeWarmup || n%64 != 0 {
		return
	}
	d := time.Duration(h.hist.Quantile(0.99))
	if d < h.pol.MinDelay {
		d = h.pol.MinDelay
	}
	if d > h.pol.MaxDelay {
		d = h.pol.MaxDelay
	}
	h.delayNs.Store(int64(d))
}

// takeToken spends one hedge token if available.
func (h *Hedge) takeToken() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tokens >= 1 {
		h.tokens--
		return true
	}
	return false
}

// earnToken credits one un-hedged send.
func (h *Hedge) earnToken() {
	h.mu.Lock()
	h.tokens += h.pol.Budget
	if burst := float64(h.pol.Burst); h.tokens > burst {
		h.tokens = burst
	}
	h.mu.Unlock()
}

// Send implements Transport. Non-hedgeable ops pass straight through.
func (h *Hedge) Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error) {
	if !h.hedgeable[op] {
		return h.inner.Send(ctx, node, op, payload)
	}
	type res struct {
		payload []byte
		err     error
		hedged  bool
	}
	start := time.Now()
	// Buffered for both attempts: an abandoned attempt parks its result
	// and its goroutine exits — nothing leaks, nothing blocks.
	ch := make(chan res, 2)
	go func() {
		p, e := h.inner.Send(ctx, node, op, payload)
		ch <- res{p, e, false}
	}()
	timer := time.NewTimer(h.delay())
	var first res
	select {
	case first = <-ch:
		timer.Stop()
		h.earnToken()
		if first.err == nil {
			h.record(time.Since(start))
		}
		return first.payload, first.err
	case <-ctx.Done():
		timer.Stop()
		return nil, ctx.Err()
	case <-timer.C:
	}
	// The primary is past the hedge delay. Fire a backup if the budget
	// allows; otherwise keep waiting on the primary alone.
	if !h.takeToken() {
		h.met.denied.Inc()
		h.earnToken()
		select {
		case first = <-ch:
			if first.err == nil {
				h.record(time.Since(start))
			}
			return first.payload, first.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	h.met.fired.Inc()
	go func() {
		p, e := h.inner.Send(ctx, node, op, payload)
		ch <- res{p, e, true}
	}()
	select {
	case first = <-ch:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if first.err == nil {
		if first.hedged {
			h.met.won.Inc()
		}
		h.record(time.Since(start))
		return first.payload, nil
	}
	// First arrival failed; the other attempt is still our best hope.
	select {
	case second := <-ch:
		if second.err == nil {
			if second.hedged {
				h.met.won.Inc()
			}
			h.record(time.Since(start))
			return second.payload, nil
		}
		// Both failed: surface the primary's error for stable semantics.
		if first.hedged {
			first = second
		}
		return first.payload, first.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Nodes implements Transport.
func (h *Hedge) Nodes() []NodeID { return h.inner.Nodes() }

// Close implements Transport.
func (h *Hedge) Close() error { return h.inner.Close() }

// SendsWithContext forwards the inner transport's marker: hedged sends
// always select on ctx, and pass-through ops behave like the inner
// transport.
func (h *Hedge) SendsWithContext() bool {
	cs, ok := h.inner.(CtxSender)
	return ok && cs.SendsWithContext()
}
