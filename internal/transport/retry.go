package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrCircuitOpen reports a send rejected without any network attempt
// because the target node's circuit breaker is open (too many
// consecutive failures; the node is presumed down until the cooldown
// elapses).
var ErrCircuitOpen = errors.New("transport: circuit open")

// RetryPolicy tunes the Retry middleware.
type RetryPolicy struct {
	// MaxAttempts bounds total delivery attempts per Send (>= 1).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// Multiplier is the exponential backoff factor (default 2).
	Multiplier float64
	// Jitter randomizes each backoff by ±Jitter fraction (0..1) of its
	// value, decorrelating retry storms across clients.
	Jitter float64
	// FailureThreshold opens a node's circuit breaker after this many
	// consecutive failed attempts (0 disables the breaker).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects sends before letting
	// a probe through.
	Cooldown time.Duration
	// RetryBudget, when > 0, caps retries across the whole transport to
	// roughly this fraction of successful sends (Finagle-style token
	// bucket: every success earns RetryBudget tokens, every retry spends
	// one, balance capped at BudgetBurst). With the budget drained a
	// failed attempt is returned instead of retried, so N clients
	// retrying into an overloaded cluster amplify offered load by at
	// most 1+RetryBudget — a retry storm cannot melt a brown-out into a
	// blackout. 0 disables budgeting (every retry allowed, as before).
	RetryBudget float64
	// BudgetBurst caps (and seeds) the token balance, letting a cold
	// client retry before its first success (default 20 when RetryBudget
	// is set).
	BudgetBurst int
	// NoRetryOps lists op codes that must never be re-sent even on a
	// transport failure: ops whose first delivery may have applied a
	// destructive, non-idempotent effect whose result existed only in the
	// (lost) response. Re-sending such an op can silently destroy data —
	// the failure must surface to the caller instead.
	NoRetryOps []uint8
}

// DefaultRetryPolicy returns the stock policy: 4 attempts, 10ms–1s
// exponential backoff with 20% jitter, breaker at 8 consecutive
// failures with a 1s cooldown.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      4,
		BaseDelay:        10 * time.Millisecond,
		MaxDelay:         time.Second,
		Multiplier:       2,
		Jitter:           0.2,
		FailureThreshold: 8,
		Cooldown:         time.Second,
	}
}

func (p *RetryPolicy) fillDefaults() {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.RetryBudget > 0 && p.BudgetBurst <= 0 {
		p.BudgetBurst = 20
	}
}

// Retryable classifies an error as a transport-level failure worth
// retrying. Handler errors (RemoteError) reached the node and must not
// be replayed blindly; context errors mean the caller gave up; unknown
// nodes and open breakers cannot be cured by resending. An
// OverloadedError IS retryable (backpressure asks us to come back
// later, subject to the retry budget and retry-after hint); an
// ExpiredError is not — it matches context.DeadlineExceeded, because
// the caller's deadline is what expired.
func Retryable(err error) bool {
	var re *RemoteError
	switch {
	case err == nil:
		return false
	case errors.As(err, &re):
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, ErrUnknownNode):
		return false
	case errors.Is(err, ErrCircuitOpen):
		return false
	}
	return true
}

// NodeStats is one node's health accounting under the Retry middleware.
type NodeStats struct {
	Node                NodeID
	Sends               uint64 // Send calls (not attempts)
	Successes           uint64
	Failures            uint64 // failed attempts
	Retries             uint64 // attempts beyond the first
	BreakerTrips        uint64
	ConsecutiveFailures int
	BreakerOpen         bool
}

type nodeHealth struct {
	NodeStats
	openUntil time.Time
}

// SendObserver receives the outcome of every delivery attempt a Retry
// makes — the passive half of failure detection. err is nil when the
// node answered (including with a handler error, which proves it
// alive); attempts the middleware never made (open breaker) and
// caller-side context expiry are not reported, since they carry no
// evidence about the node.
type SendObserver interface {
	ObserveSend(node NodeID, err error)
}

// Retry is a Transport middleware adding exponential-backoff retries
// with jitter, context-deadline awareness, and a per-node circuit
// breaker with health accounting.
type Retry struct {
	inner  Transport
	policy RetryPolicy

	noRetry [256]bool // ops from policy.NoRetryOps, indexed for the hot path

	mu       sync.Mutex
	rng      *rand.Rand
	nodes    map[NodeID]*nodeHealth
	now      func() time.Time // injectable clock for tests
	observer SendObserver
	budget   float64 // retry tokens left (meaningful when policy.RetryBudget > 0)

	met retryMetrics // set by Instrument before traffic; nil-safe
}

// NewRetry wraps a transport with the retry/breaker middleware. The
// seed drives jitter only; it never changes which attempts happen.
func NewRetry(inner Transport, policy RetryPolicy, seed int64) *Retry {
	policy.fillDefaults()
	r := &Retry{
		inner:  inner,
		policy: policy,
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  make(map[NodeID]*nodeHealth),
		now:    time.Now,
		budget: float64(policy.BudgetBurst),
	}
	for _, op := range policy.NoRetryOps {
		r.noRetry[op] = true
	}
	return r
}

// Policy returns the effective policy (defaults filled).
func (r *Retry) Policy() RetryPolicy { return r.policy }

// SetObserver installs a per-attempt outcome observer (typically a
// Detector, to fold live-traffic evidence into failure detection).
// Passing nil removes it.
func (r *Retry) SetObserver(o SendObserver) {
	r.mu.Lock()
	r.observer = o
	r.mu.Unlock()
}

// observe reports one attempt's outcome to the observer, outside the
// lock (observers may call back into this transport).
func (r *Retry) observe(node NodeID, err error) {
	r.mu.Lock()
	o := r.observer
	r.mu.Unlock()
	if o == nil {
		return
	}
	// Overload and expired responses prove the node alive — it read our
	// frame and answered. Check before the context-error cases: an
	// ExpiredError matches context.DeadlineExceeded, but unlike a true
	// caller-side expiry it IS evidence about the node, and it must land
	// as an up-signal, not be discarded (or worse, a saturated-but-
	// healthy node would drift into suspicion on pure backpressure).
	if overloadAlive(err) {
		o.ObserveSend(node, nil)
		return
	}
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return // the caller gave up; says nothing about the node
	case errors.Is(err, ErrCircuitOpen):
		return // no attempt was made
	}
	var re *RemoteError
	if errors.As(err, &re) {
		err = nil // the node answered; it is alive
	}
	o.ObserveSend(node, err)
}

func (r *Retry) healthOf(node NodeID) *nodeHealth {
	h, ok := r.nodes[node]
	if !ok {
		h = &nodeHealth{NodeStats: NodeStats{Node: node}}
		r.nodes[node] = h
	}
	return h
}

// backoff returns the pause before retry number n (n >= 1), jittered.
// Caller holds the lock (the rng is not goroutine-safe).
func (r *Retry) backoff(n int) time.Duration {
	d := float64(r.policy.BaseDelay)
	for i := 1; i < n; i++ {
		d *= r.policy.Multiplier
		if d >= float64(r.policy.MaxDelay) {
			break
		}
	}
	if d > float64(r.policy.MaxDelay) {
		d = float64(r.policy.MaxDelay)
	}
	if r.policy.Jitter > 0 {
		d *= 1 + r.policy.Jitter*(2*r.rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Send implements Transport: attempts the request up to MaxAttempts
// times, backing off between attempts. On exhaustion the returned error
// wraps the last underlying failure, so errors.Is/As still see the real
// cause rather than a synthetic timeout.
func (r *Retry) Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.met.sends.Inc()
	start := time.Now()
	defer func() { r.met.sendNS.Observe(time.Since(start).Nanoseconds()) }()
	r.mu.Lock()
	h := r.healthOf(node)
	h.Sends++
	if r.policy.FailureThreshold > 0 && h.openUntil.After(r.now()) {
		until := h.openUntil
		r.mu.Unlock()
		r.met.breakerRejects.Inc()
		return nil, fmt.Errorf("%w: node %d until %s", ErrCircuitOpen, node, until.Format(time.RFC3339Nano))
	}
	r.mu.Unlock()

	var last error
	for attempt := 1; attempt <= r.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if !r.takeToken() {
				// Budget drained: stop amplifying load. The last failure
				// is surfaced (wrapped) so callers still see the cause.
				r.met.budgetDenied.Inc()
				return nil, fmt.Errorf("transport: retry budget exhausted, giving up on node %d after %d attempts: %w",
					node, attempt-1, last)
			}
			r.mu.Lock()
			h.Retries++
			pause := r.backoff(attempt - 1)
			r.mu.Unlock()
			// An overloaded node's retry-after hint is a promise that
			// sooner is pointless; never come back before it.
			if ra, ok := RetryAfterOf(last); ok && ra > pause {
				pause = ra
			}
			r.met.retries.Inc()
			r.met.backoffNS.Observe(pause.Nanoseconds())
			if err := sleepCtx(ctx, pause); err != nil {
				// The caller's deadline expired while we were backing
				// off; surface the real failure, not the timeout.
				return nil, fmt.Errorf("transport: giving up on node %d after %d attempts (%v): %w",
					node, attempt-1, err, last)
			}
		}
		r.met.attempts.Inc()
		resp, err := r.inner.Send(ctx, node, op, payload)
		r.observe(node, err)
		if err == nil {
			r.met.successes.Inc()
			r.mu.Lock()
			h.Successes++
			h.ConsecutiveFailures = 0
			h.openUntil = time.Time{}
			h.BreakerOpen = false
			if r.policy.RetryBudget > 0 {
				r.budget += r.policy.RetryBudget
				if burst := float64(r.policy.BudgetBurst); r.budget > burst {
					r.budget = burst
				}
			}
			r.mu.Unlock()
			return resp, nil
		}
		last = err
		r.met.failures.Inc()
		if overloadAlive(err) {
			r.met.overloaded.Inc()
		}
		// Backpressure is not node failure: shed/expired responses come
		// from a live node doing its job, so they never feed the breaker's
		// consecutive-failure count (a saturated cluster with a tripped-
		// open breaker would turn brown-out into black-out).
		r.recordFailure(h, !overloadAlive(err))
		if !Retryable(err) {
			return nil, err
		}
		if r.noRetry[op] {
			// The op may have applied destructively on the node with its
			// result lost in transit; a re-send would find (and destroy)
			// a different state. Surface the failure instead.
			return nil, fmt.Errorf("transport: op %d is not retry-safe, giving up on node %d: %w", op, node, err)
		}
	}
	r.met.exhausted.Inc()
	return nil, fmt.Errorf("transport: %d attempts to node %d failed: %w",
		r.policy.MaxAttempts, node, last)
}

// takeToken spends one retry token; reports false when the budget is
// drained. Always true when budgeting is disabled.
func (r *Retry) takeToken() bool {
	if r.policy.RetryBudget <= 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget >= 1 {
		r.budget--
		return true
	}
	return false
}

func (r *Retry) recordFailure(h *nodeHealth, breaker bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h.Failures++
	if !breaker {
		return
	}
	h.ConsecutiveFailures++
	if r.policy.FailureThreshold > 0 && h.ConsecutiveFailures >= r.policy.FailureThreshold && !h.openUntil.After(r.now()) {
		h.openUntil = r.now().Add(r.policy.Cooldown)
		h.BreakerOpen = true
		h.BreakerTrips++
		r.met.breakerTrips.Inc()
	}
}

// Stats returns a copy of every node's health counters, sorted by node.
func (r *Retry) Stats() []NodeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeStats, 0, len(r.nodes))
	for _, h := range r.nodes {
		s := h.NodeStats
		s.BreakerOpen = r.policy.FailureThreshold > 0 && h.openUntil.After(r.now())
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// NodeStats returns one node's health counters.
func (r *Retry) NodeStats(node NodeID) NodeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.nodes[node]
	if !ok {
		return NodeStats{Node: node}
	}
	s := h.NodeStats
	s.BreakerOpen = r.policy.FailureThreshold > 0 && h.openUntil.After(r.now())
	return s
}

// ResetBreaker force-closes a node's breaker — call it after recovering
// a failed node so traffic resumes immediately instead of waiting out
// the cooldown.
func (r *Retry) ResetBreaker(node NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.healthOf(node)
	h.ConsecutiveFailures = 0
	h.openUntil = time.Time{}
	h.BreakerOpen = false
}

// Nodes implements Transport.
func (r *Retry) Nodes() []NodeID { return r.inner.Nodes() }

// Close implements Transport.
func (r *Retry) Close() error { return r.inner.Close() }
