package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// stubTransport scripts responses by global call index — the knobs the
// budget and hedge tests need (latency, per-call outcomes) without a
// real network.
type stubTransport struct {
	mu    sync.Mutex
	calls int
	fn    func(ctx context.Context, call int, node NodeID, op uint8) ([]byte, error)
}

func (s *stubTransport) Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error) {
	s.mu.Lock()
	c := s.calls
	s.calls++
	fn := s.fn
	s.mu.Unlock()
	return fn(ctx, c, node, op)
}

func (s *stubTransport) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *stubTransport) setFn(fn func(ctx context.Context, call int, node NodeID, op uint8) ([]byte, error)) {
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

func (s *stubTransport) Nodes() []NodeID { return nil }
func (s *stubTransport) Close() error    { return nil }

func budgetPolicy(budget float64, burst int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Multiplier:  2,
		RetryBudget: budget,
		BudgetBurst: burst,
	}
}

// TestRetryBudgetCapsRetries: with the budget drained and nothing
// succeeding, further Sends get exactly one attempt each — the retry
// storm is capped, and the surfaced error still carries the real cause.
func TestRetryBudgetCapsRetries(t *testing.T) {
	reg := obs.NewRegistry()
	inner := &stubTransport{fn: func(context.Context, int, NodeID, uint8) ([]byte, error) {
		return nil, ErrInjectedDrop
	}}
	r := NewRetry(inner, budgetPolicy(0.5, 3), 1)
	r.Instrument(reg)

	for i := 0; i < 10; i++ {
		_, err := r.Send(context.Background(), 1, 1, nil)
		if err == nil {
			t.Fatalf("send %d succeeded against an always-failing transport", i)
		}
		if !errors.Is(err, ErrInjectedDrop) {
			t.Fatalf("send %d lost the underlying cause: %v", i, err)
		}
	}
	// Send 1 burns the 3 seeded tokens on its 3 retries (4 attempts);
	// sends 2..10 are denied their first retry: 1 attempt each.
	if got := inner.callCount(); got != 13 {
		t.Errorf("attempts = %d, want 13 (4 + 9×1)", got)
	}
	if got := reg.CounterValue("transport_retry_budget_exhausted_total"); got != 9 {
		t.Errorf("transport_retry_budget_exhausted_total = %d, want 9", got)
	}
	st := r.NodeStats(1)
	if st.Sends != 10 || st.Retries != 3 {
		t.Errorf("stats = %+v, want Sends 10 / Retries 3", st)
	}
}

// TestRetryBudgetEarnedBySuccesses: successes refill the bucket at the
// policy rate, so a transport that mostly works keeps its retries.
func TestRetryBudgetEarnedBySuccesses(t *testing.T) {
	inner := &stubTransport{fn: func(_ context.Context, call int, _ NodeID, _ uint8) ([]byte, error) {
		switch {
		case call <= 4: // drain the seeded burst with pure failures
			return nil, ErrInjectedDrop
		case call <= 6: // two successes earn 2 × RetryBudget = 2 tokens
			return []byte("ok"), nil
		case call == 7: // then one transient failure…
			return nil, ErrInjectedDrop
		default: // …whose retry (paid from earned tokens) succeeds
			return []byte("ok"), nil
		}
	}}
	p := budgetPolicy(1.0, 2)
	p.MaxAttempts = 2
	r := NewRetry(inner, p, 1)

	// Sends 1–2: fail, retry, fail — two tokens spent.
	for i := 0; i < 2; i++ {
		if _, err := r.Send(context.Background(), 1, 1, nil); err == nil {
			t.Fatal("want failure while draining budget")
		}
	}
	// Send 3: the budget is empty; the retry is denied.
	_, err := r.Send(context.Background(), 1, 1, nil)
	if err == nil || !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("budget-denied send: err = %v", err)
	}
	if got := inner.callCount(); got != 5 {
		t.Fatalf("attempts before refill = %d, want 5", got)
	}
	// Two clean successes refill the bucket…
	for i := 0; i < 2; i++ {
		if _, err := r.Send(context.Background(), 1, 1, nil); err != nil {
			t.Fatalf("healthy send failed: %v", err)
		}
	}
	// …so the next transient failure is retried again, and masked.
	if _, err := r.Send(context.Background(), 1, 1, nil); err != nil {
		t.Fatalf("retry not restored after successes: %v", err)
	}
	if got := r.NodeStats(1).Retries; got != 3 {
		t.Errorf("retries = %d, want 3 (2 draining + 1 after refill)", got)
	}
}

// TestOverloadDoesNotTripBreaker: shed responses are backpressure from
// a live node. They must not count toward the circuit breaker's
// consecutive-failure threshold, and the observer (the detector in the
// real stack) must see them as successes.
func TestOverloadDoesNotTripBreaker(t *testing.T) {
	reg := obs.NewRegistry()
	inner := &stubTransport{fn: func(_ context.Context, _ int, node NodeID, _ uint8) ([]byte, error) {
		return nil, &OverloadedError{Node: node, RetryAfter: time.Millisecond}
	}}
	p := budgetPolicy(0, 0) // budget off; breaker is the subject
	p.MaxAttempts = 1
	p.FailureThreshold = 2
	p.Cooldown = time.Hour
	r := NewRetry(inner, p, 1)
	r.Instrument(reg)
	rec := &recordingObserver{}
	r.SetObserver(rec)

	for i := 0; i < 10; i++ {
		_, err := r.Send(context.Background(), 1, 1, nil)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("send %d: err = %v, want ErrOverloaded", i, err)
		}
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("send %d rejected by breaker — backpressure turned into blackout", i)
		}
	}
	st := r.NodeStats(1)
	if st.ConsecutiveFailures != 0 || st.BreakerTrips != 0 || st.BreakerOpen {
		t.Errorf("breaker fed by overload: %+v", st)
	}
	if got := reg.CounterValue("transport_retry_overloaded_total"); got != 10 {
		t.Errorf("transport_retry_overloaded_total = %d, want 10", got)
	}
	rec.mu.Lock()
	seen := len(rec.errs)
	for i, e := range rec.errs {
		if e != nil {
			t.Errorf("observer signal %d = %v, want nil (node is alive)", i, e)
		}
	}
	rec.mu.Unlock()
	if seen != 10 {
		t.Errorf("observer saw %d signals, want 10", seen)
	}

	// Real failures still count: two take the breaker down.
	inner.setFn(func(context.Context, int, NodeID, uint8) ([]byte, error) {
		return nil, ErrInjectedDrop
	})
	r.Send(context.Background(), 1, 1, nil) //nolint:errcheck
	r.Send(context.Background(), 1, 1, nil) //nolint:errcheck
	if st := r.NodeStats(1); !st.BreakerOpen {
		t.Errorf("real failures no longer trip the breaker: %+v", st)
	}
}

// TestRetryHonorsRetryAfterHint: the server's hint is a floor on the
// backoff before the next attempt.
func TestRetryHonorsRetryAfterHint(t *testing.T) {
	const hint = 120 * time.Millisecond
	inner := &stubTransport{fn: func(_ context.Context, call int, node NodeID, _ uint8) ([]byte, error) {
		if call == 0 {
			return nil, &OverloadedError{Node: node, RetryAfter: hint}
		}
		return []byte("ok"), nil
	}}
	p := budgetPolicy(0, 0)
	p.MaxAttempts = 2
	p.BaseDelay = time.Millisecond
	p.MaxDelay = 2 * time.Millisecond
	r := NewRetry(inner, p, 1)

	start := time.Now()
	if _, err := r.Send(context.Background(), 1, 1, nil); err != nil {
		t.Fatalf("retry after hint failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Errorf("retried after %v, hint promised nothing before %v", elapsed, hint)
	}
	if got := inner.callCount(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestRetryObserverClassification pins the full passive-signal map:
// what each error class reports to the failure detector.
func TestRetryObserverClassification(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		observed bool // reaches the observer at all
		asAlive  bool // reported with err == nil
	}{
		{"success", nil, true, true},
		{"overloaded", &OverloadedError{Node: 1}, true, true},
		{"expired", &ExpiredError{Node: 1}, true, true},
		{"remote handler error", &RemoteError{Node: 1, Msg: "no bucket"}, true, true},
		{"caller deadline", context.DeadlineExceeded, false, false},
		{"caller cancel", context.Canceled, false, false},
		{"transport failure", ErrInjectedDrop, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inner := &stubTransport{fn: func(context.Context, int, NodeID, uint8) ([]byte, error) {
				if tc.err == nil {
					return []byte("ok"), nil
				}
				return nil, tc.err
			}}
			p := budgetPolicy(0, 0)
			p.MaxAttempts = 1
			r := NewRetry(inner, p, 1)
			rec := &recordingObserver{}
			r.SetObserver(rec)
			r.Send(context.Background(), 1, 1, nil) //nolint:errcheck // outcome is the observer's view
			rec.mu.Lock()
			defer rec.mu.Unlock()
			if !tc.observed {
				if len(rec.errs) != 0 {
					t.Fatalf("observer saw %v, want no signal", rec.errs)
				}
				return
			}
			if len(rec.errs) != 1 {
				t.Fatalf("observer saw %d signals, want 1", len(rec.errs))
			}
			if alive := rec.errs[0] == nil; alive != tc.asAlive {
				t.Errorf("observed err = %v, want alive=%v", rec.errs[0], tc.asAlive)
			}
		})
	}
}

// TestDetectorIgnoresBackpressure is the regression for the detector
// half of the misclassification bug: a node shedding load (or dropping
// expired requests) is alive, and no amount of backpressure may mark it
// suspect — while genuine failures still take it down.
func TestDetectorIgnoresBackpressure(t *testing.T) {
	m := NewMemory()
	m.Register(0, echoHandler)
	d := newTestDetector(m, []NodeID{0}, 1, 1) // hair-trigger: one bad signal = down

	for i := 0; i < 20; i++ {
		d.ObserveSend(0, &OverloadedError{Node: 0, RetryAfter: time.Millisecond})
		d.ObserveSend(0, &ExpiredError{Node: 0})
	}
	if st := d.State(0); st != NodeUp {
		t.Fatalf("node marked %v on pure backpressure, want up", st)
	}
	d.ObserveSend(0, errors.New("connection refused"))
	if st := d.State(0); st != NodeDown {
		t.Fatalf("real failure no longer detected: state %v", st)
	}
}

// TestRetryDetectorOverloadEndToEnd wires Retry's observer to a
// Detector (the esdds stack) and hammers an always-shedding transport:
// the node must stay Up throughout.
func TestRetryDetectorOverloadEndToEnd(t *testing.T) {
	m := NewMemory()
	m.Register(1, echoHandler)
	inner := &stubTransport{fn: func(_ context.Context, _ int, node NodeID, _ uint8) ([]byte, error) {
		return nil, &OverloadedError{Node: node, RetryAfter: time.Microsecond}
	}}
	p := budgetPolicy(0.1, 5)
	r := NewRetry(inner, p, 1)
	d := newTestDetector(m, []NodeID{1}, 1, 1)
	r.SetObserver(d)

	for i := 0; i < 50; i++ {
		if _, err := r.Send(context.Background(), 1, 1, nil); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if st := d.State(1); st != NodeUp {
		t.Fatalf("sustained shedding marked the node %v, want up", st)
	}
}
