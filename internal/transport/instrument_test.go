package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

// echoRig builds Memory → Faulty → Retry with every layer instrumented
// into one registry.
func echoRig(t *testing.T, nodes int, fault Fault, policy RetryPolicy) (*obs.Registry, *Faulty, *Retry) {
	t.Helper()
	reg := obs.NewRegistry()
	mem := NewMemory()
	for i := 0; i < nodes; i++ {
		mem.Register(NodeID(i), func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
			return payload, nil
		})
	}
	faulty := NewFaulty(mem, 7)
	faulty.SetDefault(fault)
	faulty.Instrument(reg)
	retry := NewRetry(faulty, policy, 7)
	retry.Instrument(reg)
	t.Cleanup(func() { retry.Close() })
	return reg, faulty, retry
}

// TestRetryMetricInvariants drives seeded faulty traffic and asserts
// the retry layer's cross-metric identities exactly.
func TestRetryMetricInvariants(t *testing.T) {
	reg, faulty, retry := echoRig(t, 3, Fault{Fail: 0.3, Drop: 0.1}, RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
	})
	ctx := context.Background()
	for i := 0; i < 300; i++ {
		retry.Send(ctx, NodeID(i%3), 1, []byte{byte(i)}) //nolint:errcheck // failures are the point
	}

	sends := reg.CounterValue("transport_retry_sends_total")
	attempts := reg.CounterValue("transport_retry_attempts_total")
	retries := reg.CounterValue("transport_retry_retries_total")
	succ := reg.CounterValue("transport_retry_attempt_successes_total")
	fail := reg.CounterValue("transport_retry_attempt_failures_total")
	rejects := reg.CounterValue("transport_retry_breaker_rejects_total")

	if sends != 300 {
		t.Fatalf("sends_total = %d, want 300", sends)
	}
	// Every attempt resolves as success or failure.
	if attempts != succ+fail {
		t.Errorf("attempts %d != successes %d + failures %d", attempts, succ, fail)
	}
	// No context ever expires here, so the identity is exact: each
	// non-rejected Send makes 1 + itsRetries attempts.
	if attempts != (sends-rejects)+retries {
		t.Errorf("attempts %d != (sends %d - rejects %d) + retries %d", attempts, sends, rejects, retries)
	}
	// The ISSUE's canonical example: retries happen at least once per
	// failed attempt that was retryable, so attempts >= failures.
	if attempts < fail {
		t.Errorf("attempts %d < failed attempts %d", attempts, fail)
	}
	if fail == 0 {
		t.Error("fault schedule injected no failures; test is vacuous")
	}

	// Every injected fault is counted: the obs counters must equal the
	// same field summed over the injector's own per-node stats.
	var want FaultStats
	for _, s := range faulty.Stats() {
		want.Sends += s.Sends
		want.Dropped += s.Dropped
		want.Failed += s.Failed
		want.Delayed += s.Delayed
		want.Duplicated += s.Duplicated
		want.Blacked += s.Blacked
	}
	for name, got := range map[string]uint64{
		"transport_fault_sends_total":     want.Sends,
		"transport_fault_drops_total":     want.Dropped,
		"transport_fault_fails_total":     want.Failed,
		"transport_fault_delays_total":    want.Delayed,
		"transport_fault_dups_total":      want.Duplicated,
		"transport_fault_blackouts_total": want.Blacked,
	} {
		if reg.CounterValue(name) != got {
			t.Errorf("%s = %d, want %d (FaultStats sum)", name, reg.CounterValue(name), got)
		}
	}
	// The retry layer's attempts all flowed through the injector.
	if want.Sends != attempts {
		t.Errorf("fault sends %d != retry attempts %d", want.Sends, attempts)
	}
	// Latency histograms saw every send and every backoff.
	if n := reg.HistogramSnapshot("transport_retry_send_ns").Count; n != sends {
		t.Errorf("send_ns count = %d, want %d", n, sends)
	}
	if n := reg.HistogramSnapshot("transport_retry_backoff_ns").Count; n != retries {
		t.Errorf("backoff_ns count = %d, want retries %d", n, retries)
	}
}

// TestBreakerMetrics blacks out a node until its breaker opens, then
// asserts trip and reject counters match the middleware's own stats.
func TestBreakerMetrics(t *testing.T) {
	reg, faulty, retry := echoRig(t, 2, Fault{}, RetryPolicy{
		MaxAttempts:      1,
		FailureThreshold: 3,
		Cooldown:         time.Hour, // breaker stays open for the whole test
	})
	faulty.Blackout(1)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		_, err := retry.Send(ctx, 1, 1, nil)
		if err == nil {
			t.Fatal("send to blacked-out node succeeded")
		}
	}
	trips := reg.CounterValue("transport_retry_breaker_trips_total")
	rejects := reg.CounterValue("transport_retry_breaker_rejects_total")
	if trips != 1 {
		t.Errorf("breaker_trips_total = %d, want 1", trips)
	}
	// 3 failures trip the breaker; the remaining 7 sends are rejected.
	if rejects != 7 {
		t.Errorf("breaker_rejects_total = %d, want 7", rejects)
	}
	st := retry.NodeStats(1)
	if uint64(st.BreakerTrips) != trips {
		t.Errorf("metric trips %d != NodeStats trips %d", trips, st.BreakerTrips)
	}
	exhausted := reg.CounterValue("transport_retry_exhausted_total")
	if exhausted != 3 {
		t.Errorf("exhausted_total = %d, want 3 (MaxAttempts=1 turns every attempted failure terminal)", exhausted)
	}
}

// TestDetectorMetrics probes a blacked-out node down and back up and
// asserts signal and transition counters against the snapshot.
func TestDetectorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	mem := NewMemory()
	for i := 0; i < 3; i++ {
		mem.Register(NodeID(i), func(_ context.Context, op uint8, payload []byte) ([]byte, error) { return nil, nil })
	}
	faulty := NewFaulty(mem, 1)
	det := NewDetector(faulty, []NodeID{0, 1, 2}, DetectorPolicy{DownAfter: 2})
	det.Instrument(reg)

	ctx := context.Background()
	faulty.Blackout(2)
	det.ProbeOnce(ctx) // node 2: suspect
	det.ProbeOnce(ctx) // node 2: down
	if g := reg.GaugeValue("detector_down_nodes"); g != 1 {
		t.Fatalf("down_nodes gauge = %d, want 1 while node 2 is down", g)
	}
	faulty.Restore(2)
	det.ProbeOnce(ctx) // node 2: back up

	if got := reg.CounterValue("detector_probes_total"); got != 9 {
		t.Errorf("probes_total = %d, want 9 (3 rounds x 3 members)", got)
	}
	var snapProbes uint64
	for _, nh := range det.Snapshot() {
		snapProbes += nh.ActiveProbes
	}
	if got := reg.CounterValue("detector_probes_total"); got != snapProbes {
		t.Errorf("probes_total = %d != snapshot sum %d", got, snapProbes)
	}
	for name, want := range map[string]uint64{
		"detector_transitions_suspect_total": 1,
		"detector_transitions_down_total":    1,
		"detector_transitions_up_total":      1,
	} {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if g := reg.GaugeValue("detector_down_nodes"); g != 0 {
		t.Errorf("down_nodes gauge = %d, want 0 after recovery", g)
	}

	// Passive signals route to the passive counter.
	det.ObserveSend(0, errors.New("boom"))
	if got := reg.CounterValue("detector_passive_signals_total"); got != 1 {
		t.Errorf("passive_signals_total = %d, want 1", got)
	}
}

// TestTCPByteAccounting runs a real server+client pair and asserts the
// two ends agree byte for byte, frame for frame.
func TestTCPByteAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(func(_ context.Context, op uint8, payload []byte) ([]byte, error) {
		if op == 99 {
			return nil, errors.New("handler error")
		}
		return append([]byte{op}, payload...), nil
	})
	srv.Instrument(reg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	cli := NewTCP(map[NodeID]string{0: lis.Addr().String()})
	cli.Instrument(reg)
	defer cli.Close()

	ctx := context.Background()
	const requests = 20
	var okBytesIn uint64
	for i := 0; i < requests; i++ {
		resp, err := cli.Send(ctx, 0, 1, make([]byte, i))
		if err != nil {
			t.Fatal(err)
		}
		okBytesIn += frameWireBytesV2(resp)
	}
	if _, err := cli.Send(ctx, 0, 99, nil); err == nil {
		t.Fatal("handler error did not surface")
	}
	okBytesIn += frameWireBytesV2([]byte("handler error"))

	// The client's inbound counter is exactly the sum of v2 response
	// frames (the 4-byte magic preamble is counted on neither side).
	if got := reg.CounterValue("transport_tcp_bytes_in_total"); got != okBytesIn {
		t.Errorf("client bytes in = %d, want %d", got, okBytesIn)
	}
	if got := reg.GaugeValue("transport_tcp_pool_conns"); got < 1 {
		t.Errorf("pool_conns gauge = %d, want >= 1 while the pool is warm", got)
	}
	if got := reg.GaugeValue("transport_tcp_inflight"); got != 0 {
		t.Errorf("tcp inflight gauge = %d, want 0 at rest", got)
	}
	if got := reg.GaugeValue("transport_srv_inflight"); got != 0 {
		t.Errorf("srv inflight gauge = %d, want 0 at rest", got)
	}

	frames := reg.CounterValue("transport_srv_frames_total")
	if frames != requests+1 {
		t.Errorf("srv frames = %d, want %d", frames, requests+1)
	}
	if got := reg.CounterValue("transport_srv_handler_errors_total"); got != 1 {
		t.Errorf("srv handler_errors = %d, want 1", got)
	}
	// Both directions agree end to end, headers included.
	if cOut, sIn := reg.CounterValue("transport_tcp_bytes_out_total"), reg.CounterValue("transport_srv_bytes_in_total"); cOut != sIn {
		t.Errorf("client bytes out %d != server bytes in %d", cOut, sIn)
	}
	if cIn, sOut := reg.CounterValue("transport_tcp_bytes_in_total"), reg.CounterValue("transport_srv_bytes_out_total"); cIn != sOut {
		t.Errorf("client bytes in %d != server bytes out %d", cIn, sOut)
	}
	dials := reg.CounterValue("transport_tcp_dials_total")
	reuses := reg.CounterValue("transport_tcp_conn_reuses_total")
	if dials < 1 {
		t.Error("no dials counted")
	}
	if dials+reuses != requests+1 {
		t.Errorf("dials %d + reuses %d != sends %d", dials, reuses, requests+1)
	}
	if got := reg.CounterValue("transport_srv_conns_total"); got != dials {
		t.Errorf("srv conns %d != client dials %d", got, dials)
	}
}
