package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// faultyOverEcho builds a Faulty over a Memory with n echo nodes.
func faultyOverEcho(n int, seed int64) (*Faulty, *Memory) {
	mem := NewMemory()
	for i := NodeID(0); i < NodeID(n); i++ {
		mem.Register(i, echoHandler)
	}
	return NewFaulty(mem, seed), mem
}

func TestFaultyTransparentByDefault(t *testing.T) {
	f, _ := faultyOverEcho(2, 1)
	resp, err := f.Send(context.Background(), 0, 7, []byte("x"))
	if err != nil || string(resp) != "\x07x" {
		t.Fatalf("Send = %q, %v", resp, err)
	}
	if got := f.Nodes(); len(got) != 2 {
		t.Errorf("Nodes = %v", got)
	}
}

func TestFaultyDeterministicOutcomes(t *testing.T) {
	// Two injectors with the same seed and schedule must fault the same
	// requests in the same way.
	run := func() []bool {
		f, _ := faultyOverEcho(1, 42)
		f.SetDefault(Fault{Drop: 0.5})
		var outcomes []bool
		for i := 0; i < 200; i++ {
			_, err := f.Send(context.Background(), 0, 1, nil)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at request %d", i)
		}
	}
	ok := 0
	for _, v := range a {
		if v {
			ok++
		}
	}
	if ok == 0 || ok == len(a) {
		t.Errorf("Drop=0.5 produced %d/%d successes — schedule not applied", ok, len(a))
	}
}

func TestFaultyDropAndFailErrors(t *testing.T) {
	f, _ := faultyOverEcho(1, 7)
	f.SetFault(0, Fault{Drop: 1})
	if _, err := f.Send(context.Background(), 0, 1, nil); !errors.Is(err, ErrInjectedDrop) {
		t.Errorf("drop err = %v", err)
	}
	f.SetFault(0, Fault{Fail: 1})
	if _, err := f.Send(context.Background(), 0, 1, nil); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("fail err = %v", err)
	}
	st := f.NodeStats(0)
	if st.Dropped != 1 || st.Failed != 1 || st.Sends != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultyBlackoutAndRestore(t *testing.T) {
	f, _ := faultyOverEcho(3, 1)
	f.Blackout(1, 2)
	if got := f.Blackouts(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Blackouts = %v", got)
	}
	if _, err := f.Send(context.Background(), 1, 1, nil); !errors.Is(err, ErrNodeDown) {
		t.Errorf("blackout err = %v", err)
	}
	// Healthy node unaffected.
	if _, err := f.Send(context.Background(), 0, 1, nil); err != nil {
		t.Errorf("healthy node err = %v", err)
	}
	f.Restore(1)
	if _, err := f.Send(context.Background(), 1, 1, nil); err != nil {
		t.Errorf("restored node err = %v", err)
	}
	if _, err := f.Send(context.Background(), 2, 1, nil); !errors.Is(err, ErrNodeDown) {
		t.Errorf("still-black node err = %v", err)
	}
	// Blacked-out nodes stay in the membership view.
	if got := f.Nodes(); len(got) != 3 {
		t.Errorf("Nodes = %v", got)
	}
}

func TestFaultyDuplicateDelivery(t *testing.T) {
	mem := NewMemory()
	var calls int32
	mem.Register(0, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		atomic.AddInt32(&calls, 1)
		return []byte{byte(atomic.LoadInt32(&calls))}, nil
	})
	f := NewFaulty(mem, 3)
	f.SetFault(0, Fault{Dup: 1})
	resp, err := f.Send(context.Background(), 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&calls) != 2 {
		t.Errorf("handler ran %d times, want 2", calls)
	}
	// The first response wins; the duplicate's is discarded.
	if len(resp) != 1 || resp[0] != 1 {
		t.Errorf("resp = %v, want first delivery's", resp)
	}
}

func TestFaultyDelayRespectsContext(t *testing.T) {
	f, _ := faultyOverEcho(1, 5)
	f.SetFault(0, Fault{DelayProb: 1, Delay: 5 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Send(ctx, 0, 1, nil)
	if err == nil {
		t.Fatal("delayed send ignored deadline")
	}
	if time.Since(start) > time.Second {
		t.Error("delay did not respect context deadline")
	}
}

func TestFaultyPerNodeOverride(t *testing.T) {
	f, _ := faultyOverEcho(2, 9)
	f.SetDefault(Fault{Drop: 1})
	f.SetFault(1, Fault{}) // node 1 exempt
	if _, err := f.Send(context.Background(), 0, 1, nil); err == nil {
		t.Error("default schedule not applied to node 0")
	}
	if _, err := f.Send(context.Background(), 1, 1, nil); err != nil {
		t.Errorf("override not applied to node 1: %v", err)
	}
	f.ClearFaults()
	if _, err := f.Send(context.Background(), 0, 1, nil); err != nil {
		t.Errorf("ClearFaults left schedule active: %v", err)
	}
}
