package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startRawV2Node runs a hand-rolled v2 peer (no Server involved) so
// tests control exactly how and when response frames come back. The
// react callback receives each decoded request and a reply function; it
// runs on the connection's read goroutine.
func startRawV2Node(t *testing.T, react func(id uint32, op uint8, payload []byte, reply func(id uint32, status uint8, payload []byte))) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				var magic [4]byte
				if _, err := io.ReadFull(r, magic[:]); err != nil || binary.BigEndian.Uint32(magic[:]) != magicV2 {
					return
				}
				var wmu sync.Mutex
				w := bufio.NewWriter(conn)
				reply := func(id uint32, status uint8, payload []byte) {
					wmu.Lock()
					defer wmu.Unlock()
					if err := writeFrameV2(w, id, status, payload); err == nil {
						w.Flush() //nolint:errcheck
					}
				}
				for {
					id, op, payload, _, err := readFrameV2(r, false)
					if err != nil {
						return
					}
					react(id, op, payload, reply)
				}
			}(conn)
		}
	}()
	return lis.Addr().String()
}

// TestMuxOutOfOrderResponses holds every request until three have
// arrived, then answers them newest-first. Each Send must still receive
// its own response — the demux routes by id, not arrival order.
func TestMuxOutOfOrderResponses(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	type pending struct {
		id      uint32
		payload []byte
	}
	var held []pending
	addr := startRawV2Node(t, func(id uint32, op uint8, payload []byte, reply func(uint32, uint8, []byte)) {
		mu.Lock()
		held = append(held, pending{id, append([]byte(nil), payload...)})
		if len(held) < n {
			mu.Unlock()
			return
		}
		batch := held
		held = nil
		mu.Unlock()
		for i := len(batch) - 1; i >= 0; i-- { // reversed completion order
			reply(batch[i].id, statusOK, append([]byte("echo:"), batch[i].payload...))
		}
	})

	cli := NewTCP(map[NodeID]string{1: addr})
	cli.PoolSize = 1 // force all requests onto one multiplexed conn
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("req-%d", i)
			resp, err := cli.Send(context.Background(), 1, 1, []byte(want))
			if err != nil {
				errs[i] = err
				return
			}
			if got := string(resp); got != "echo:"+want {
				errs[i] = fmt.Errorf("response mismatch: got %q, want %q", got, "echo:"+want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
}

// TestMuxConcurrencyTorture hammers one pooled connection from many
// goroutines; run under -race this exercises every mux lock. Each
// response must match its request exactly despite out-of-order
// completion on the server's worker pool.
func TestMuxConcurrencyTorture(t *testing.T) {
	addr, stop := startTCPNode(t, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		return append([]byte{op}, p...), nil
	})
	defer stop()

	cli := NewTCP(map[NodeID]string{1: addr})
	cli.PoolSize = 1
	defer cli.Close()

	const goroutines = 32
	const perG = 50
	var wg sync.WaitGroup
	var failures atomic.Int32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				payload := []byte(fmt.Sprintf("g%d-i%d", g, i))
				resp, err := cli.Send(context.Background(), 1, uint8(g%250), payload)
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					failures.Add(1)
					return
				}
				if len(resp) == 0 || resp[0] != uint8(g%250) || string(resp[1:]) != string(payload) {
					t.Errorf("g%d i%d: response mismatch %q", g, i, resp)
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() > 0 {
		return
	}
	conns, inflight := cli.PoolStats()
	if conns != 1 {
		t.Errorf("pool conns = %d, want 1 (PoolSize 1)", conns)
	}
	if inflight != 0 {
		t.Errorf("inflight = %d, want 0 at rest", inflight)
	}
}

// TestPoolBounded verifies pool exhaustion semantics: with more
// concurrent requests than PoolSize, the pool stops growing at the cap
// and excess requests multiplex onto existing connections instead of
// dialing or failing.
func TestPoolBounded(t *testing.T) {
	release := make(chan struct{})
	addr, stop := startTCPNode(t, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		<-release
		return p, nil
	})
	defer stop()

	cli := NewTCP(map[NodeID]string{1: addr})
	cli.PoolSize = 2
	defer cli.Close()

	const concurrent = 24
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Send(context.Background(), 1, 1, []byte("x")); err != nil {
				t.Errorf("send: %v", err)
			}
		}()
	}
	// Wait until every request is in flight, then check the pool cap.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, inflight := cli.PoolStats()
		if inflight == concurrent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests in flight", inflight)
		}
		time.Sleep(time.Millisecond)
	}
	if conns, _ := cli.PoolStats(); conns > cli.PoolSize {
		t.Errorf("pool grew to %d conns, cap is %d", conns, cli.PoolSize)
	}
	close(release)
	wg.Wait()
}

// recordingObserver captures pool-level failure signals.
type recordingObserver struct {
	mu    sync.Mutex
	nodes []NodeID
	errs  []error
}

func (o *recordingObserver) ObserveSend(node NodeID, err error) {
	o.mu.Lock()
	o.nodes = append(o.nodes, node)
	o.errs = append(o.errs, err)
	o.mu.Unlock()
}

func (o *recordingObserver) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.nodes)
}

// TestDeadConnEviction kills the server under a warm pool and verifies
// the client evicts the dead connection (no silent redial: the pool
// drains to zero and the failure is reported to the observer even with
// no Send in flight — the demux goroutine sees the EOF while idle).
func TestDeadConnEviction(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)

	obs := &recordingObserver{}
	cli := NewTCP(map[NodeID]string{1: addr})
	cli.SetObserver(obs)
	defer cli.Close()

	if _, err := cli.Send(context.Background(), 1, 1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if conns, _ := cli.PoolStats(); conns != 1 {
		t.Fatalf("pool conns = %d, want 1", conns)
	}

	stop() // server gone; the pooled conn dies while idle

	deadline := time.Now().Add(5 * time.Second)
	for {
		conns, _ := cli.PoolStats()
		if conns == 0 && obs.count() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead conn not evicted/reported: conns=%d signals=%d", conns, obs.count())
		}
		time.Sleep(time.Millisecond)
	}
	obs.mu.Lock()
	if obs.nodes[0] != 1 || obs.errs[0] == nil {
		t.Errorf("observed (%v, %v), want node 1 with a non-nil error", obs.nodes[0], obs.errs[0])
	}
	obs.mu.Unlock()

	// The next Send fails loudly (no transparent redial to a dead node)…
	if _, err := cli.Send(context.Background(), 1, 1, []byte("x")); err == nil {
		t.Fatal("send to dead node succeeded")
	}
}

// TestIdleReaper closes connections that sat idle past IdleTimeout —
// and does NOT report reaping to the observer (an idle reap is pool
// policy, not a failure signal).
func TestIdleReaper(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)
	defer stop()

	obs := &recordingObserver{}
	cli := NewTCP(map[NodeID]string{1: addr})
	cli.IdleTimeout = 20 * time.Millisecond
	cli.SetObserver(obs)
	defer cli.Close()

	if _, err := cli.Send(context.Background(), 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if conns, _ := cli.PoolStats(); conns == 0 {
			break
		}
		if time.Now().After(deadline) {
			conns, _ := cli.PoolStats()
			t.Fatalf("idle conn not reaped: %d conns", conns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := obs.count(); n != 0 {
		t.Errorf("idle reap produced %d observer signals, want 0", n)
	}
	// The pool recovers transparently on the next Send.
	if _, err := cli.Send(context.Background(), 1, 1, []byte("y")); err != nil {
		t.Fatalf("send after reap: %v", err)
	}
}

// TestDialCoalescing fires a burst of first-contact Sends at one node:
// without coalescing each would dial its own connection; with it the
// dial count stays within the pool bound.
func TestDialCoalescing(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)
	defer stop()

	cli := NewTCP(map[NodeID]string{1: addr})
	defer cli.Close()

	const burst = 16
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Send(context.Background(), 1, 1, []byte("x")); err != nil {
				t.Errorf("send: %v", err)
			}
		}()
	}
	wg.Wait()
	if conns, _ := cli.PoolStats(); conns > cli.PoolSize {
		t.Errorf("burst grew the pool to %d conns, cap is %d", conns, cli.PoolSize)
	}
}

// TestMuxContextCancelAbandonsWaiter cancels one Send mid-flight on a
// shared connection: the cancelled Send returns promptly with ctx.Err,
// the connection survives, and a later Send on the same conn works (the
// late response for the abandoned id is dropped by the demux).
func TestMuxContextCancelAbandonsWaiter(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	addr, stop := startTCPNode(t, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		if op == 9 {
			<-gate
		}
		return p, nil
	})
	defer stop()
	defer gateOnce.Do(func() { close(gate) })

	cli := NewTCP(map[NodeID]string{1: addr})
	cli.PoolSize = 1
	defer cli.Close()

	// Warm the single conn so both Sends share it.
	if _, err := cli.Send(context.Background(), 1, 1, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cli.Send(ctx, 1, 9, []byte("slow"))
	if err == nil {
		t.Fatal("blocked send did not observe its context")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled send took %v, want prompt return", elapsed)
	}
	gateOnce.Do(func() { close(gate) }) // let the abandoned handler finish

	if resp, err := cli.Send(context.Background(), 1, 1, []byte("after")); err != nil || string(resp) != "after" {
		t.Fatalf("conn did not survive abandoned waiter: resp=%q err=%v", resp, err)
	}
	if conns, _ := cli.PoolStats(); conns != 1 {
		t.Errorf("pool conns = %d, want the same single conn", conns)
	}
}

// TestPoolDeathFeedsDetector wires the pool's failure observer into a
// Detector and composes the stack the way esdds does — Faulty over the
// pooled TCP transport. Killing the server must surface as passive
// detector signals (dead pooled conn = send observation), driving the
// node to NodeDown without a single application Send after the kill.
func TestPoolDeathFeedsDetector(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)

	tcp := NewTCP(map[NodeID]string{1: addr})
	defer tcp.Close()
	faulty := NewFaulty(tcp, 1)
	det := NewDetector(faulty, []NodeID{1}, DetectorPolicy{DownAfter: 1})
	tcp.SetObserver(det)

	// Traffic through the full stack works and keeps the node up.
	if _, err := faulty.Send(context.Background(), 1, 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if s := det.Snapshot(); s[0].State != NodeUp {
		t.Fatalf("state = %v, want up", s[0].State)
	}

	// Drop every conn the pool holds by killing the server. No further
	// Sends: the only failure evidence is the pool-level signal.
	stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := det.Snapshot(); s[0].State == NodeDown {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("detector state = %v, want down from passive pool signal", det.Snapshot()[0].State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMuxPayloadNotRetained checks the codec contract the sdds layer
// depends on: a request payload may be recycled the moment Send
// returns. Reusing one buffer for every request with a mutation between
// sends must never corrupt a frame.
func TestMuxPayloadNotRetained(t *testing.T) {
	addr, stop := startTCPNode(t, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		return append([]byte(nil), p...), nil
	})
	defer stop()

	cli := NewTCP(map[NodeID]string{1: addr})
	cli.PoolSize = 1
	defer cli.Close()

	buf := make([]byte, 64)
	for i := 0; i < 200; i++ {
		for j := range buf {
			buf[j] = byte(i)
		}
		resp, err := cli.Send(context.Background(), 1, 1, buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range resp {
			if b != byte(i) {
				t.Fatalf("iteration %d: response byte %d — transport retained a recycled payload", i, b)
			}
		}
	}
}
