package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                   // length 0 — below minimum
	f.Add([]byte{0, 0, 0, 1, 7})                // minimal valid frame
	f.Add([]byte{0, 0, 0, 5, 1, 'a', 'b', 'c'}) // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})    // oversized length
	big := make([]byte, 4)
	binary.BigEndian.PutUint32(big, maxFrame+1)
	f.Add(append(big, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; may only error or return a frame consistent
		// with the input.
		tag, payload, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(data) < 5 {
			t.Fatalf("frame decoded from %d bytes", len(data))
		}
		n := binary.BigEndian.Uint32(data)
		if n < 1 || n > maxFrame {
			t.Fatalf("out-of-range length %d accepted", n)
		}
		if tag != data[4] {
			t.Fatalf("tag = %d, want %d", tag, data[4])
		}
		if len(payload) != int(n)-1 {
			t.Fatalf("payload length %d, want %d", len(payload), n-1)
		}
	})
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(7), []byte("payload"))
	f.Add(uint8(255), make([]byte, 1024))
	f.Fuzz(func(t *testing.T, tag uint8, payload []byte) {
		var buf bytes.Buffer
		if err := writeFrame(bufio.NewWriter(&buf), tag, payload); err != nil {
			t.Fatal(err)
		}
		gotTag, gotPayload, err := readFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotTag != tag || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip: (%d, %q) -> (%d, %q)", tag, payload, gotTag, gotPayload)
		}
	})
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(bufio.NewWriter(&buf), 7, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail with an error, never hang or panic.
	for n := 0; n < len(full); n++ {
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(full[:n])))
		if err == nil {
			t.Fatalf("truncated frame of %d/%d bytes accepted", n, len(full))
		}
		if n > 4 {
			// Header and part of the body arrived; the loss is mid-frame.
			if err != io.ErrUnexpectedEOF {
				t.Fatalf("prefix %d: err = %v, want unexpected EOF", n, err)
			}
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = 1
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])))
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized frame: err = %v", err)
	}
	// Zero-length frame (no tag byte) is equally invalid.
	var zero [4]byte
	_, _, err = readFrame(bufio.NewReader(bytes.NewReader(zero[:])))
	if err == nil {
		t.Fatal("zero-length frame accepted")
	}
}
