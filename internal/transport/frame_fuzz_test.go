package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                   // length 0 — below minimum
	f.Add([]byte{0, 0, 0, 1, 7})                // minimal valid frame
	f.Add([]byte{0, 0, 0, 5, 1, 'a', 'b', 'c'}) // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})    // oversized length
	big := make([]byte, 4)
	binary.BigEndian.PutUint32(big, maxFrame+1)
	f.Add(append(big, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; may only error or return a frame consistent
		// with the input.
		tag, payload, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(data) < 5 {
			t.Fatalf("frame decoded from %d bytes", len(data))
		}
		n := binary.BigEndian.Uint32(data)
		if n < 1 || n > maxFrame {
			t.Fatalf("out-of-range length %d accepted", n)
		}
		if tag != data[4] {
			t.Fatalf("tag = %d, want %d", tag, data[4])
		}
		if len(payload) != int(n)-1 {
			t.Fatalf("payload length %d, want %d", len(payload), n-1)
		}
	})
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(7), []byte("payload"))
	f.Add(uint8(255), make([]byte, 1024))
	f.Fuzz(func(t *testing.T, tag uint8, payload []byte) {
		var buf bytes.Buffer
		if err := writeFrame(bufio.NewWriter(&buf), tag, payload); err != nil {
			t.Fatal(err)
		}
		gotTag, gotPayload, err := readFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotTag != tag || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip: (%d, %q) -> (%d, %q)", tag, payload, gotTag, gotPayload)
		}
	})
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(bufio.NewWriter(&buf), 7, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail with an error, never hang or panic.
	for n := 0; n < len(full); n++ {
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(full[:n])))
		if err == nil {
			t.Fatalf("truncated frame of %d/%d bytes accepted", n, len(full))
		}
		if n > 4 {
			// Header and part of the body arrived; the loss is mid-frame.
			if err != io.ErrUnexpectedEOF {
				t.Fatalf("prefix %d: err = %v, want unexpected EOF", n, err)
			}
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = 1
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])))
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized frame: err = %v", err)
	}
	// Zero-length frame (no tag byte) is equally invalid.
	var zero [4]byte
	_, _, err = readFrame(bufio.NewReader(bytes.NewReader(zero[:])))
	if err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

// --- wire protocol v2 (multiplexed tagged frames) ---

func FuzzReadFrameV2(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 1})                 // length 4 — below v2 minimum of 5
	f.Add([]byte{0, 0, 0, 5, 0, 0, 0, 1, 7})              // minimal valid frame
	f.Add([]byte{0, 0, 0, 9, 0, 0, 0, 2, 1, 'a'})         // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 1, 1})  // oversized length
	f.Add([]byte{0xE5, 0xDD, 0x55, 0x02, 0, 0, 0, 1, 1})  // magic where a length belongs
	f.Add([]byte{0, 0, 0, 6, 0xff, 0xff, 0xff, 0xff, 0xee, 0x00}) // corrupt id+tag bytes still decode
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; may only error or return a frame consistent
		// with the input, for both the pooled and unpooled payload paths.
		for _, pooled := range []bool{false, true} {
			id, tag, payload, buf, err := readFrameV2(bufio.NewReader(bytes.NewReader(data)), pooled)
			if err != nil {
				continue
			}
			if len(data) < frameHdrV2 {
				t.Fatalf("frame decoded from %d bytes", len(data))
			}
			n := binary.BigEndian.Uint32(data)
			if n < 5 || n > maxFrame {
				t.Fatalf("out-of-range length %d accepted", n)
			}
			if want := binary.BigEndian.Uint32(data[4:8]); id != want {
				t.Fatalf("id = %d, want %d", id, want)
			}
			if tag != data[8] {
				t.Fatalf("tag = %d, want %d", tag, data[8])
			}
			if len(payload) != int(n)-5 {
				t.Fatalf("payload length %d, want %d", len(payload), n-5)
			}
			if !bytes.Equal(payload, data[frameHdrV2:frameHdrV2+len(payload)]) {
				t.Fatal("payload bytes differ from input")
			}
			putPayloadBuf(buf)
		}
	})
}

func FuzzFrameV2RoundTrip(f *testing.F) {
	f.Add(uint32(0), uint8(0), []byte{})
	f.Add(uint32(1), uint8(7), []byte("payload"))
	f.Add(uint32(0xffffffff), uint8(255), make([]byte, 1024))
	f.Fuzz(func(t *testing.T, id uint32, tag uint8, payload []byte) {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeFrameV2(w, id, tag, payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil { // writeFrameV2 deliberately does not flush
			t.Fatal(err)
		}
		gotID, gotTag, gotPayload, _, err := readFrameV2(bufio.NewReader(&buf), false)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotID != id || gotTag != tag || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip: (%d, %d, %q) -> (%d, %d, %q)", id, tag, payload, gotID, gotTag, gotPayload)
		}
	})
}

// TestReadFrameV2Truncated covers mid-stream loss: every strict prefix
// of a valid two-frame v2 stream must fail (on the first or second
// frame) without a hang or panic — and frames before the cut decode.
func TestReadFrameV2Truncated(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrameV2(w, 1, 7, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := writeFrameV2(w, 2, 8, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	first := frameHdrV2 + len("hello world")
	for n := 0; n < len(full); n++ {
		r := bufio.NewReader(bytes.NewReader(full[:n]))
		id, tag, payload, _, err := readFrameV2(r, false)
		if n < first {
			if err == nil {
				t.Fatalf("truncated first frame of %d/%d bytes accepted", n, first)
			}
			if n > frameHdrV2 && err != io.ErrUnexpectedEOF {
				t.Fatalf("prefix %d: err = %v, want unexpected EOF", n, err)
			}
			continue
		}
		// First frame is whole; it must decode, and the cut must land on
		// the second.
		if err != nil || id != 1 || tag != 7 || string(payload) != "hello world" {
			t.Fatalf("prefix %d: first frame (%d, %d, %q, %v)", n, id, tag, payload, err)
		}
		if _, _, _, _, err := readFrameV2(r, false); err == nil {
			t.Fatalf("truncated second frame at %d/%d bytes accepted", n, len(full))
		}
	}
}

func TestReadFrameV2Oversized(t *testing.T) {
	var hdr [frameHdrV2]byte
	binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[8] = 1
	_, _, _, _, err := readFrameV2(bufio.NewReader(bytes.NewReader(hdr[:])), false)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized v2 frame: err = %v", err)
	}
	// Lengths 0..4 cannot hold the id+tag — all invalid.
	for n := uint32(0); n < 5; n++ {
		binary.BigEndian.PutUint32(hdr[:4], n)
		_, _, _, _, err := readFrameV2(bufio.NewReader(bytes.NewReader(hdr[:])), false)
		if err == nil {
			t.Fatalf("v2 frame with length %d accepted", n)
		}
	}
}

// FuzzSplitBudget covers the deadline-field parser with arbitrary
// payload bytes: short payloads must error, everything else must yield
// a non-negative budget (garbage that would decode negative clamps to
// "already expired") and pass the op payload through untouched.
func FuzzSplitBudget(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, deadlineBytes-1)) // one byte short of the field
	f.Add(binary.BigEndian.AppendUint64(nil, 0))
	f.Add(binary.BigEndian.AppendUint64(nil, 1<<63)) // decodes negative
	f.Add(append(binary.BigEndian.AppendUint64(nil, uint64(time.Second)), 'o', 'p'))
	f.Fuzz(func(t *testing.T, data []byte) {
		budget, rest, err := splitBudget(data)
		if len(data) < deadlineBytes {
			if err == nil {
				t.Fatalf("%d-byte payload accepted as a deadline field", len(data))
			}
			return
		}
		if err != nil {
			t.Fatalf("splitBudget(%d bytes) = %v", len(data), err)
		}
		if budget < 0 {
			t.Fatalf("negative budget %v escaped the clamp", budget)
		}
		if u := binary.BigEndian.Uint64(data); int64(u) >= 0 && budget != time.Duration(u) {
			t.Fatalf("budget = %v, want %v", budget, time.Duration(u))
		}
		if !bytes.Equal(rest, data[deadlineBytes:]) {
			t.Fatal("op payload mangled while stripping the deadline field")
		}
	})
}

// FuzzDeadlineFrameRoundTrip: a deadline-flagged request frame survives
// write → read → splitBudget for arbitrary ids, ops, budgets, and
// bodies, exactly as the server's v2 loop consumes it.
func FuzzDeadlineFrameRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint8(3), uint64(0), []byte("p"))
	f.Add(uint32(7), uint8(31), uint64(time.Second), []byte{})
	f.Add(uint32(0xffffffff), uint8(0x7f), uint64(1)<<63, []byte("neg"))
	f.Fuzz(func(t *testing.T, id uint32, op uint8, budget uint64, body []byte) {
		op &^= tagDeadline // ops live in the low 7 bits
		payload := make([]byte, deadlineBytes+len(body))
		binary.BigEndian.PutUint64(payload, budget)
		copy(payload[deadlineBytes:], body)
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeFrameV2(w, id, op|tagDeadline, payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		gotID, tag, gotPayload, _, err := readFrameV2(bufio.NewReader(&buf), false)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotID != id || tag&tagDeadline == 0 || tag&^tagDeadline != op {
			t.Fatalf("round trip: (%d, %#x) -> (%d, %#x)", id, op|tagDeadline, gotID, tag)
		}
		gotBudget, rest, err := splitBudget(gotPayload)
		if err != nil {
			t.Fatalf("splitBudget after round trip: %v", err)
		}
		if int64(budget) >= 0 {
			if gotBudget != time.Duration(budget) {
				t.Fatalf("budget = %v, want %v", gotBudget, time.Duration(budget))
			}
		} else if gotBudget != 0 {
			t.Fatalf("negative wire budget decoded as %v, want clamp to 0", gotBudget)
		}
		if !bytes.Equal(rest, body) {
			t.Fatalf("body = %q, want %q", rest, body)
		}
	})
}

// TestV2FrameAgainstV1StyleRead: the v2 magic preamble must be
// unparseable as a v1 frame — that is the whole downgrade story: a v1
// reader confronted with a v2 client rejects the stream at the first
// read instead of misinterpreting frame boundaries.
func TestV2FrameAgainstV1StyleRead(t *testing.T) {
	var stream bytes.Buffer
	var magic [4]byte
	binary.BigEndian.PutUint32(magic[:], magicV2)
	stream.Write(magic[:])
	w := bufio.NewWriter(&stream)
	if err := writeFrameV2(w, 1, 3|tagDeadline, append(make([]byte, deadlineBytes), 'x')); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(stream.Bytes()))); err == nil {
		t.Fatal("v1 reader accepted a v2 stream — magic did not poison the length field")
	}
}

// TestServerRejectsCorruptV2Stream interleaves a valid request with
// garbage on one server connection: the server answers what it parsed
// and drops the connection at the corruption point instead of
// misinterpreting bytes.
func TestServerRejectsCorruptV2Stream(t *testing.T) {
	addr, stop := startTCPNode(t, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		return append([]byte(nil), p...), nil
	})
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var magic [4]byte
	binary.BigEndian.PutUint32(magic[:], magicV2)
	if _, err := nc.Write(magic[:]); err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(nc)
	if err := writeFrameV2(w, 42, 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// A frame whose length field exceeds maxFrame: corruption.
	var bad [frameHdrV2]byte
	binary.BigEndian.PutUint32(bad[:4], maxFrame+1)
	w.Write(bad[:]) //nolint:errcheck
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(nc)
	id, status, payload, _, err := readFrameV2(r, false)
	if err != nil || id != 42 || status != statusOK || string(payload) != "ok" {
		t.Fatalf("valid frame before corruption not served: (%d, %d, %q, %v)", id, status, payload, err)
	}
	// After the corrupt header the server must close the connection.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, _, _, _, err := readFrameV2(r, false); err == nil {
		t.Fatal("server kept serving after corrupt frame")
	}
}
