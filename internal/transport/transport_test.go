package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func echoHandler(_ context.Context, op uint8, payload []byte) ([]byte, error) {
	if op == 99 {
		return nil, errors.New("boom")
	}
	out := append([]byte{op}, payload...)
	return out, nil
}

func TestMemorySendAndErrors(t *testing.T) {
	m := NewMemory()
	m.Register(1, echoHandler)
	ctx := context.Background()

	resp, err := m.Send(ctx, 1, 7, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("\x07hi")) {
		t.Errorf("resp = %q", resp)
	}
	// Handler error surfaces as RemoteError.
	_, err = m.Send(ctx, 1, 99, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Node != 1 || re.Msg != "boom" {
		t.Errorf("err = %v", err)
	}
	// Unknown node.
	if _, err := m.Send(ctx, 5, 1, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
	// Cancelled context.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := m.Send(cctx, 1, 1, nil); err == nil {
		t.Error("cancelled context accepted")
	}
	// Closed transport.
	m.Close()
	if _, err := m.Send(ctx, 1, 1, nil); err == nil {
		t.Error("closed transport accepted send")
	}
}

func TestMemoryNodes(t *testing.T) {
	m := NewMemory()
	for _, id := range []NodeID{3, 1, 2} {
		m.Register(id, echoHandler)
	}
	got := m.Nodes()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Nodes = %v", got)
	}
}

func TestBroadcast(t *testing.T) {
	m := NewMemory()
	var calls int32
	for i := NodeID(0); i < 8; i++ {
		id := i
		m.Register(id, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
			atomic.AddInt32(&calls, 1)
			if id == 3 {
				return nil, errors.New("node 3 down")
			}
			return []byte{byte(id)}, nil
		})
	}
	results := Broadcast(context.Background(), m, m.Nodes(), 1, []byte("q"))
	if len(results) != 8 {
		t.Fatalf("%d results", len(results))
	}
	if atomic.LoadInt32(&calls) != 8 {
		t.Errorf("%d calls", calls)
	}
	for i, r := range results {
		if r.Node != NodeID(i) {
			t.Errorf("result %d from node %d", i, r.Node)
		}
		if i == 3 {
			if r.Err == nil {
				t.Error("node 3 error lost")
			}
			continue
		}
		if r.Err != nil || len(r.Payload) != 1 || r.Payload[0] != byte(i) {
			t.Errorf("result %d: %v %q", i, r.Err, r.Payload)
		}
	}
}

func TestScatter(t *testing.T) {
	m := NewMemory()
	for i := NodeID(0); i < 4; i++ {
		m.Register(i, echoHandler)
	}
	reqs := map[NodeID][]byte{
		0: []byte("a"), 2: []byte("c"), 3: []byte("d"),
	}
	results := Scatter(context.Background(), m, 5, reqs)
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	wantNodes := []NodeID{0, 2, 3}
	wantPayload := []string{"\x05a", "\x05c", "\x05d"}
	for i, r := range results {
		if r.Node != wantNodes[i] || string(r.Payload) != wantPayload[i] {
			t.Errorf("result %d: node %d payload %q", i, r.Node, r.Payload)
		}
	}
}

// startTCPNode spins up a server with the handler and returns its
// address and a closer.
func startTCPNode(t *testing.T, h Handler) (string, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	done := make(chan struct{})
	go func() {
		srv.Serve(lis)
		close(done)
	}()
	return lis.Addr().String(), func() {
		srv.Close()
		<-done
	}
}

func TestTCPRoundTrip(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)
	defer stop()
	tr := NewTCP(map[NodeID]string{1: addr})
	defer tr.Close()
	ctx := context.Background()

	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("req-%d", i))
		resp, err := tr.Send(ctx, 1, 7, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, append([]byte{7}, payload...)) {
			t.Errorf("resp = %q", resp)
		}
	}
}

func TestTCPRemoteError(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)
	defer stop()
	tr := NewTCP(map[NodeID]string{1: addr})
	defer tr.Close()
	_, err := tr.Send(context.Background(), 1, 99, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Errorf("err = %v", err)
	}
	// The connection survives a handler error: next request works.
	if _, err := tr.Send(context.Background(), 1, 1, []byte("x")); err != nil {
		t.Errorf("request after error failed: %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	var served int32
	addr, stop := startTCPNode(t, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		atomic.AddInt32(&served, 1)
		return p, nil
	})
	defer stop()
	tr := NewTCP(map[NodeID]string{1: addr})
	defer tr.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				payload := []byte{byte(g), byte(i)}
				resp, err := tr.Send(context.Background(), 1, 1, payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, payload) {
					errs <- fmt.Errorf("corrupted response %q for %q", resp, payload)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&served) != 400 {
		t.Errorf("served %d requests, want 400", served)
	}
}

func TestTCPLargePayload(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)
	defer stop()
	tr := NewTCP(map[NodeID]string{1: addr})
	defer tr.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	resp, err := tr.Send(context.Background(), 1, 2, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp[1:], payload) {
		t.Error("large payload corrupted")
	}
}

func TestTCPUnknownAndUnreachable(t *testing.T) {
	tr := NewTCP(map[NodeID]string{})
	defer tr.Close()
	if _, err := tr.Send(context.Background(), 9, 1, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
	dead := NewTCP(map[NodeID]string{1: "127.0.0.1:1"}) // nothing listens on port 1
	dead.DialTimeout = 200 * time.Millisecond
	defer dead.Close()
	if _, err := dead.Send(context.Background(), 1, 1, nil); err == nil {
		t.Error("unreachable node accepted")
	}
}

func TestTCPContextDeadline(t *testing.T) {
	addr, stop := startTCPNode(t, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		time.Sleep(2 * time.Second)
		return p, nil
	})
	defer stop()
	tr := NewTCP(map[NodeID]string{1: addr})
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.Send(ctx, 1, 1, []byte("slow"))
	if err == nil {
		t.Fatal("deadline ignored")
	}
	if time.Since(start) > time.Second {
		t.Error("deadline not enforced promptly")
	}
}

func TestTCPBroadcastAcrossNodes(t *testing.T) {
	addrs := make(map[NodeID]string)
	var stops []func()
	for i := NodeID(0); i < 4; i++ {
		id := i
		addr, stop := startTCPNode(t, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
			return []byte{byte(id)}, nil
		})
		addrs[id] = addr
		stops = append(stops, stop)
	}
	defer func() {
		for _, s := range stops {
			s()
		}
	}()
	tr := NewTCP(addrs)
	defer tr.Close()
	results := Broadcast(context.Background(), tr, tr.Nodes(), 1, nil)
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil || r.Payload[0] != byte(i) {
			t.Errorf("result %d: %v %v", i, r.Err, r.Payload)
		}
	}
}

func TestTCPAddNode(t *testing.T) {
	addr, stop := startTCPNode(t, echoHandler)
	defer stop()
	tr := NewTCP(nil)
	defer tr.Close()
	tr.AddNode(7, addr)
	if _, err := tr.Send(context.Background(), 7, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	nodes := tr.Nodes()
	if len(nodes) != 1 || nodes[0] != 7 {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestScatterAbortsOnContextCancel(t *testing.T) {
	m := NewMemory()
	m.Register(0, echoHandler)
	release := make(chan struct{})
	m.Register(1, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		<-release // a hung node: never answers until cleanup
		return nil, nil
	})
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results := Scatter(ctx, m, 7, map[NodeID][]byte{
		0: []byte("a"),
		1: []byte("b"),
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Scatter blocked %v on a hung node instead of aborting", elapsed)
	}
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	// Node 0 answered before the cancel; node 1's pending send must
	// carry the context error.
	if results[0].Err != nil {
		t.Errorf("healthy node result: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("hung node err = %v, want context.Canceled", results[1].Err)
	}
}

func TestBroadcastAbortsOnContextDeadline(t *testing.T) {
	m := NewMemory()
	release := make(chan struct{})
	m.Register(0, echoHandler)
	m.Register(1, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	results := Broadcast(ctx, m, []NodeID{0, 1}, 7, nil)
	if results[0].Err != nil {
		t.Errorf("healthy node result: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Errorf("hung node err = %v, want context.DeadlineExceeded", results[1].Err)
	}
}
