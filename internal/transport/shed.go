package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Adaptive admission control (DESIGN.md §13). The Shedder sits between
// the server's v2 frame reader and the handler worker pool and decides,
// per request, whether the node should take on more concurrent work or
// reject with a retry-after hint. Two cooperating mechanisms:
//
//   - An AIMD concurrency limit: admitted in-flight requests may not
//     exceed the current limit. The limit is probed upward additively
//     when it binds while latency is healthy, and cut multiplicatively
//     when queueing delay is sustained — the classic TCP-style control
//     loop, applied to handler concurrency.
//   - A CoDel-style queue-delay signal: per window, the shedder
//     compares the mean handler latency against a floor (the smallest
//     per-window minimum seen recently, approximating uncontended
//     service time). The excess is standing queue delay; when it stays
//     above Target for two consecutive windows, the limit is cut.
//
// Priority classes keep the control plane alive and client traffic
// ahead of maintenance: Control ops (health probes) are always
// admitted, Background ops (Guardian scrub/repair/bulk sync) are
// admitted only while in-flight work is under BackgroundFraction of
// the limit, Foreground ops get the full limit.

// Priority is an op's admission-control class.
type Priority uint8

const (
	// PriorityForeground is client-facing work (put/get/search): full
	// admission limit.
	PriorityForeground Priority = iota
	// PriorityBackground is maintenance traffic (scrub, repair, bulk
	// sync): first to be shed, admitted only while the node has slack.
	PriorityBackground
	// PriorityControl is health-check traffic: never shed, so a
	// saturated node still proves liveness to its detector.
	PriorityControl
)

// PriorityFunc classifies an op code into a Priority. A nil classifier
// treats every op as foreground.
type PriorityFunc func(op uint8) Priority

// ShedPolicy tunes a Shedder. Zero values take defaults.
type ShedPolicy struct {
	// MinLimit / MaxLimit bound the AIMD concurrency limit
	// (defaults 8 / 1024). The limit starts at MaxLimit: a
	// freshly-started node is assumed healthy until latency says
	// otherwise.
	MinLimit int
	MaxLimit int
	// Target is the acceptable standing queue delay — mean handler
	// latency above the recent floor (default 5ms). Sustained excess
	// cuts the limit.
	Target time.Duration
	// Window is the control-loop interval (default 100ms).
	Window time.Duration
	// BackgroundFraction is the share of the limit background ops may
	// occupy (default 0.5).
	BackgroundFraction float64
	// Classify maps op codes to priorities; nil means all foreground.
	Classify PriorityFunc
}

func (p *ShedPolicy) fillDefaults() {
	if p.MinLimit <= 0 {
		p.MinLimit = 8
	}
	if p.MaxLimit <= 0 {
		p.MaxLimit = 1024
	}
	if p.MaxLimit < p.MinLimit {
		p.MaxLimit = p.MinLimit
	}
	if p.Target <= 0 {
		p.Target = 5 * time.Millisecond
	}
	if p.Window <= 0 {
		p.Window = 100 * time.Millisecond
	}
	if p.BackgroundFraction <= 0 || p.BackgroundFraction > 1 {
		p.BackgroundFraction = 0.5
	}
}

// floorWindows is how many window minima the floor estimate spans:
// 10 windows × 100ms default = a 1s memory of uncontended latency.
const floorWindows = 10

// ShedToken is the receipt for an admitted request; hand it back via
// Done when the handler finishes so the shedder can account latency.
type ShedToken struct {
	start time.Time
	prio  Priority
}

// Shedder is a per-node adaptive admission controller. Safe for
// concurrent use; the admit fast path is two atomics.
type Shedder struct {
	pol ShedPolicy
	now func() time.Time // injectable for deterministic tests

	inflight atomic.Int64
	limit    atomic.Int64

	mu          sync.Mutex
	windowStart time.Time
	winCount    int64
	winSum      time.Duration
	winMin      time.Duration
	hitLimit    bool // limit bound (rejected something) this window
	aboveRuns   int  // consecutive windows with queue delay > Target
	minRing     [floorWindows]time.Duration
	ringN       int
	ringI       int
	lastAvg     time.Duration // previous window's mean latency (hint basis)

	limitGauge *obs.Gauge // nil until Instrument
}

// NewShedder builds a shedder from a policy (zero fields defaulted).
func NewShedder(pol ShedPolicy) *Shedder {
	pol.fillDefaults()
	s := &Shedder{pol: pol, now: time.Now}
	s.limit.Store(int64(pol.MaxLimit))
	return s
}

// Instrument publishes the live concurrency limit as
// transport_srv_shed_limit.
func (s *Shedder) Instrument(reg *obs.Registry) {
	s.limitGauge = reg.Gauge("transport_srv_shed_limit")
	s.limitGauge.Set(s.limit.Load())
}

// Limit reports the current AIMD concurrency limit.
func (s *Shedder) Limit() int { return int(s.limit.Load()) }

// Inflight reports currently admitted, unfinished requests.
func (s *Shedder) Inflight() int { return int(s.inflight.Load()) }

// Admit decides one request. ok=true: run the handler and call
// Done(tok) when it finishes. ok=false: shed — reply overloaded with
// the retryAfter hint and do not call Done.
func (s *Shedder) Admit(op uint8) (tok ShedToken, retryAfter time.Duration, ok bool) {
	prio := PriorityForeground
	if s.pol.Classify != nil {
		prio = s.pol.Classify(op)
	}
	if prio == PriorityControl {
		// Always admitted and never counted: control traffic must get
		// through precisely when the node is saturated, and its
		// near-zero service time would poison the latency floor.
		return ShedToken{prio: prio}, 0, true
	}
	eff := s.limit.Load()
	if prio == PriorityBackground {
		eff = int64(float64(eff) * s.pol.BackgroundFraction)
		if eff < 1 {
			eff = 1
		}
	}
	if n := s.inflight.Add(1); n > eff {
		s.inflight.Add(-1)
		return ShedToken{}, s.reject(), false
	}
	return ShedToken{start: s.now(), prio: prio}, 0, true
}

// Done closes out an admitted request, feeding its latency into the
// control loop.
func (s *Shedder) Done(tok ShedToken) {
	if tok.prio == PriorityControl {
		return
	}
	s.inflight.Add(-1)
	now := s.now()
	lat := now.Sub(tok.start)
	if lat < 0 {
		lat = 0
	}
	s.mu.Lock()
	s.winCount++
	s.winSum += lat
	if s.winCount == 1 || lat < s.winMin {
		s.winMin = lat
	}
	s.maybeRotate(now)
	s.mu.Unlock()
}

// reject records a shed (the limit bound) and returns the retry-after
// hint: the previous window's mean latency, floored at Target and
// capped at 1s — roughly "one service time from now there may be room".
func (s *Shedder) reject() time.Duration {
	now := s.now()
	s.mu.Lock()
	s.hitLimit = true
	s.maybeRotate(now)
	hint := s.lastAvg
	s.mu.Unlock()
	if hint < s.pol.Target {
		hint = s.pol.Target
	}
	if hint > time.Second {
		hint = time.Second
	}
	return hint
}

// maybeRotate closes the control window if it has elapsed. Called with
// mu held from every Done and every rejection, so under any sustained
// traffic the loop keeps turning; an idle shedder has nothing to adapt.
func (s *Shedder) maybeRotate(now time.Time) {
	if s.windowStart.IsZero() {
		s.windowStart = now
		return
	}
	if now.Sub(s.windowStart) < s.pol.Window {
		return
	}
	limit := s.limit.Load()
	newLimit := limit
	if s.winCount > 0 {
		avg := s.winSum / time.Duration(s.winCount)
		floor := s.winMin
		for i := 0; i < s.ringN; i++ {
			if s.minRing[i] < floor {
				floor = s.minRing[i]
			}
		}
		s.minRing[s.ringI] = s.winMin
		s.ringI = (s.ringI + 1) % floorWindows
		if s.ringN < floorWindows {
			s.ringN++
		}
		s.lastAvg = avg
		if avg-floor > s.pol.Target {
			s.aboveRuns++
		} else {
			s.aboveRuns = 0
			if s.hitLimit {
				// Limit bound while latency stayed healthy: probe upward.
				newLimit = limit + limit/16
				if newLimit == limit {
					newLimit = limit + 1
				}
				if max := int64(s.pol.MaxLimit); newLimit > max {
					newLimit = max
				}
			}
		}
		if s.aboveRuns >= 2 {
			// Sustained standing queue: multiplicative decrease.
			newLimit = limit * 85 / 100
			if min := int64(s.pol.MinLimit); newLimit < min {
				newLimit = min
			}
			s.aboveRuns = 0
		}
	}
	if newLimit != limit {
		s.limit.Store(newLimit)
		s.limitGauge.Set(newLimit)
	}
	s.winCount, s.winSum, s.winMin = 0, 0, 0
	s.hitLimit = false
	s.windowStart = now
}
