package transport

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded is the sentinel matched by errors.Is when a server's
// admission controller shed a request. It signals backpressure, not
// failure: the node is alive and answering, it just refused to queue
// more work. Callers should back off (honoring the retry-after hint
// when present) and must not feed it to failure detectors as a
// down-signal.
var ErrOverloaded = errors.New("transport: server overloaded")

// OverloadedError is the client-side form of a statusOverloaded wire
// response: node's shedder rejected the request before the handler
// ran. RetryAfter is the server's backoff hint (zero when it offered
// none).
type OverloadedError struct {
	Node       NodeID
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("node %d: overloaded (retry after %v)", e.Node, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// ExpiredError is the client-side form of a statusExpired wire
// response: the request's propagated deadline had already passed when
// the server read it, so the server dropped it without running the
// handler. It matches errors.Is(err, context.DeadlineExceeded) — from
// the caller's point of view the op timed out; the wire status only
// tells us the server noticed first.
type ExpiredError struct {
	Node NodeID
}

func (e *ExpiredError) Error() string {
	return fmt.Sprintf("node %d: request deadline expired before dispatch", e.Node)
}

// Is makes errors.Is(err, context.DeadlineExceeded) match.
func (e *ExpiredError) Is(target error) bool { return target == context.DeadlineExceeded }

// RetryAfterOf extracts a server backoff hint from an error chain.
func RetryAfterOf(err error) (time.Duration, bool) {
	var oe *OverloadedError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		return oe.RetryAfter, true
	}
	return 0, false
}

// overloadAlive reports whether an error proves the node processed
// our frame and answered — shed or expired responses come from a
// live, merely saturated node. Detector and Retry use this to keep
// backpressure out of the failure-suspicion path: a cluster at 3x
// capacity must shed, and shedding must not read as nodes dying.
func overloadAlive(err error) bool {
	var oe *OverloadedError
	var ee *ExpiredError
	return errors.As(err, &oe) || errors.As(err, &ee)
}
