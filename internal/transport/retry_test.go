package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// scripted is a Transport whose per-node responses follow a script of
// errors (nil = success). Past the script's end it always succeeds.
type scripted struct {
	mu     sync.Mutex
	script map[NodeID][]error
	calls  map[NodeID]int
}

func newScripted() *scripted {
	return &scripted{script: make(map[NodeID][]error), calls: make(map[NodeID]int)}
}

func (s *scripted) Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.calls[node]
	s.calls[node]++
	if seq := s.script[node]; i < len(seq) && seq[i] != nil {
		return nil, seq[i]
	}
	return []byte("ok"), nil
}

func (s *scripted) callCount(node NodeID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[node]
}

func (s *scripted) Nodes() []NodeID { return nil }
func (s *scripted) Close() error    { return nil }

func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      4,
		BaseDelay:        time.Millisecond,
		MaxDelay:         5 * time.Millisecond,
		Multiplier:       2,
		Jitter:           0.2,
		FailureThreshold: 0,
	}
}

func TestRetryMasksTransientFailures(t *testing.T) {
	s := newScripted()
	s.script[1] = []error{ErrInjectedDrop, ErrInjectedDrop, nil}
	r := NewRetry(s, fastPolicy(), 1)
	resp, err := r.Send(context.Background(), 1, 1, nil)
	if err != nil {
		t.Fatalf("transient failures not masked: %v", err)
	}
	if string(resp) != "ok" {
		t.Errorf("resp = %q", resp)
	}
	if got := s.callCount(1); got != 3 {
		t.Errorf("%d attempts, want 3", got)
	}
	st := r.NodeStats(1)
	if st.Retries != 2 || st.Failures != 2 || st.Successes != 1 || st.Sends != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ConsecutiveFailures != 0 {
		t.Errorf("success did not reset consecutive failures: %+v", st)
	}
}

func TestRetryExhaustionReturnsUnderlyingError(t *testing.T) {
	s := newScripted()
	s.script[2] = []error{ErrInjectedDrop, ErrInjectedDrop, ErrInjectedDrop, ErrInjectedDrop, ErrInjectedDrop}
	r := NewRetry(s, fastPolicy(), 1)
	_, err := r.Send(context.Background(), 2, 1, nil)
	if err == nil {
		t.Fatal("exhaustion returned success")
	}
	// The real cause must survive wrapping — no timeout masquerade.
	if !errors.Is(err, ErrInjectedDrop) {
		t.Errorf("underlying error lost: %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("exhaustion disguised as deadline: %v", err)
	}
	if got := s.callCount(2); got != 4 {
		t.Errorf("%d attempts, want MaxAttempts=4", got)
	}
}

func TestRetryDoesNotRetryRemoteErrors(t *testing.T) {
	s := newScripted()
	s.script[1] = []error{&RemoteError{Node: 1, Msg: "no bucket"}}
	r := NewRetry(s, fastPolicy(), 1)
	_, err := r.Send(context.Background(), 1, 1, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if got := s.callCount(1); got != 1 {
		t.Errorf("remote error retried: %d attempts", got)
	}
	// Unknown node: also no retry.
	s.script[9] = []error{fmt.Errorf("%w: 9", ErrUnknownNode), nil}
	if _, err := r.Send(context.Background(), 9, 1, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
	if got := s.callCount(9); got != 1 {
		t.Errorf("unknown node retried: %d attempts", got)
	}
}

func TestRetryDeadlineDuringBackoffKeepsCause(t *testing.T) {
	s := newScripted()
	s.script[1] = []error{ErrInjectedFault, ErrInjectedFault, ErrInjectedFault, ErrInjectedFault}
	p := fastPolicy()
	p.BaseDelay = 200 * time.Millisecond
	p.MaxDelay = 200 * time.Millisecond
	r := NewRetry(s, p, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := r.Send(ctx, 1, 1, nil)
	if err == nil {
		t.Fatal("send succeeded past deadline")
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Errorf("cause lost under deadline: %v", err)
	}
}

func TestRetryCircuitBreaker(t *testing.T) {
	s := newScripted()
	fail := make([]error, 20)
	for i := range fail {
		fail[i] = ErrInjectedDrop
	}
	s.script[3] = fail
	p := fastPolicy()
	p.FailureThreshold = 4
	p.Cooldown = 50 * time.Millisecond
	r := NewRetry(s, p, 1)

	// First send: 4 attempts all fail → breaker trips at the threshold.
	if _, err := r.Send(context.Background(), 3, 1, nil); err == nil {
		t.Fatal("want failure")
	}
	st := r.NodeStats(3)
	if !st.BreakerOpen || st.BreakerTrips != 1 {
		t.Fatalf("breaker not open after threshold: %+v", st)
	}
	// While open: fail fast, no network attempts.
	before := s.callCount(3)
	_, err := r.Send(context.Background(), 3, 1, nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v", err)
	}
	if s.callCount(3) != before {
		t.Error("open breaker let an attempt through")
	}
	if Retryable(err) {
		t.Error("ErrCircuitOpen classified retryable")
	}
	// After cooldown, a probe goes through; the scripted errors are
	// exhausted by then, so it succeeds and the breaker closes.
	time.Sleep(p.Cooldown + 10*time.Millisecond)
	s.mu.Lock()
	s.script[3] = nil // node healthy again
	s.mu.Unlock()
	if _, err := r.Send(context.Background(), 3, 1, nil); err != nil {
		t.Fatalf("probe after cooldown failed: %v", err)
	}
	if st := r.NodeStats(3); st.BreakerOpen || st.ConsecutiveFailures != 0 {
		t.Errorf("breaker did not close on success: %+v", st)
	}
}

func TestRetryResetBreaker(t *testing.T) {
	s := newScripted()
	fail := make([]error, 8)
	for i := range fail {
		fail[i] = ErrInjectedDrop
	}
	s.script[1] = fail
	p := fastPolicy()
	p.FailureThreshold = 2
	p.Cooldown = time.Hour // would stay open forever
	r := NewRetry(s, p, 1)
	r.Send(context.Background(), 1, 1, nil) //nolint:errcheck
	if !r.NodeStats(1).BreakerOpen {
		t.Fatal("breaker not open")
	}
	r.ResetBreaker(1)
	s.mu.Lock()
	s.script[1] = nil
	s.mu.Unlock()
	if _, err := r.Send(context.Background(), 1, 1, nil); err != nil {
		t.Fatalf("send after ResetBreaker failed: %v", err)
	}
}

func TestRetryStatsSorted(t *testing.T) {
	s := newScripted()
	r := NewRetry(s, fastPolicy(), 1)
	for _, n := range []NodeID{5, 1, 3} {
		r.Send(context.Background(), n, 1, nil) //nolint:errcheck
	}
	st := r.Stats()
	if len(st) != 3 || st[0].Node != 1 || st[1].Node != 3 || st[2].Node != 5 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestRetryOverFaultyEndToEnd(t *testing.T) {
	// The composed stack: Memory → Faulty(drops) → Retry. With
	// MaxAttempts comfortably above the drop rate, every request
	// succeeds — retries fully mask the transient faults.
	f, _ := faultyOverEcho(4, 1234)
	f.SetDefault(Fault{Drop: 0.4})
	p := fastPolicy()
	p.MaxAttempts = 8
	r := NewRetry(f, p, 99)
	for i := 0; i < 300; i++ {
		node := NodeID(i % 4)
		if _, err := r.Send(context.Background(), node, 1, []byte{byte(i)}); err != nil {
			t.Fatalf("request %d not masked: %v", i, err)
		}
	}
	var retries uint64
	for _, st := range r.Stats() {
		retries += st.Retries
	}
	if retries == 0 {
		t.Error("no retries recorded — faults were not injected")
	}
}
