package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TCP is the client-side transport: a node-address directory over a
// per-node pool of multiplexed v2 connections. Many in-flight requests
// share one connection — each Send registers a per-request id, a write
// loop coalesces pending frames into one vectored write, and a demux
// goroutine per connection routes response frames (which may complete
// out of order) back to their waiters.
//
// Failure policy: a dead pooled connection is evicted and reported to
// the installed SendObserver (so a Detector sees it as passive
// evidence), and the Sends it carried fail with a retryable error — the
// transport never silently redials mid-request; redial happens on the
// next Send (typically driven by the Retry middleware).
type TCP struct {
	mu     sync.Mutex
	addrs  map[NodeID]string
	pools  map[NodeID]*nodePool
	closed bool

	observer SendObserver // pool-level failure signals; may be nil

	reaperOnce sync.Once
	reaperStop chan struct{}

	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// PoolSize caps multiplexed connections kept per node.
	PoolSize int
	// IdleTimeout is how long a connection may sit with no in-flight
	// requests before the reaper closes it (0 disables reaping).
	IdleTimeout time.Duration
	// WriteTimeout bounds one vectored write of queued frames; a
	// connection that cannot drain its write within it is considered
	// dead. It exists so a hung peer cannot wedge Sends forever.
	WriteTimeout time.Duration

	met tcpMetrics // set by Instrument before traffic; nil-safe
}

// nodePool is one node's connection set plus its dial-coalescing state:
// at most one dial per node is in flight, and Sends that find the pool
// empty wait for it instead of dialing their own.
type nodePool struct {
	conns   []*muxConn
	dialing *dialWait
}

type dialWait struct {
	done chan struct{}
	conn *muxConn
	err  error
}

// connGrowInflight is the in-flight depth on the least-loaded
// connection beyond which the pool grows (up to PoolSize): below it,
// multiplexing on an existing connection is cheaper than a dial.
const connGrowInflight = 4

// ErrClosed reports a Send on a closed transport.
var ErrClosed = errors.New("transport: closed")

// NewTCP creates a transport over the given node address directory.
func NewTCP(addrs map[NodeID]string) *TCP {
	cp := make(map[NodeID]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	return &TCP{
		addrs:        cp,
		pools:        make(map[NodeID]*nodePool),
		DialTimeout:  5 * time.Second,
		PoolSize:     4,
		IdleTimeout:  60 * time.Second,
		WriteTimeout: 15 * time.Second,
	}
}

// SetObserver installs a pool-level failure observer: every connection
// death (idle or carrying requests) is reported as one ObserveSend with
// the error that killed it, feeding passive failure detection the same
// way the Retry middleware does for whole-Send outcomes. Passing nil
// removes it.
func (t *TCP) SetObserver(o SendObserver) {
	t.mu.Lock()
	t.observer = o
	t.mu.Unlock()
}

// AddNode registers (or updates) a node address.
func (t *TCP) AddNode(node NodeID, addr string) {
	t.mu.Lock()
	t.addrs[node] = addr
	t.mu.Unlock()
}

// Nodes implements Transport.
func (t *TCP) Nodes() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, len(t.addrs))
	for id := range t.addrs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PoolStats reports the current pool state: open connections and
// in-flight requests summed over all nodes.
func (t *TCP) PoolStats() (conns, inflight int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.pools {
		conns += len(p.conns)
		for _, c := range p.conns {
			inflight += int(c.inflight.Load())
		}
	}
	return conns, inflight
}

// getConn returns a live pooled connection with a reservation (its
// in-flight count already incremented) or dials one, coalescing
// concurrent dials per node.
func (t *TCP) getConn(ctx context.Context, node NodeID) (*muxConn, error) {
	for {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return nil, ErrClosed
		}
		addr, ok := t.addrs[node]
		if !ok {
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: %d", ErrUnknownNode, node)
		}
		p := t.pools[node]
		if p == nil {
			p = &nodePool{}
			t.pools[node] = p
		}
		// Least-loaded live connection.
		var best *muxConn
		for _, c := range p.conns {
			if best == nil || c.inflight.Load() < best.inflight.Load() {
				best = c
			}
		}
		if best != nil && (best.inflight.Load() < connGrowInflight || len(p.conns) >= t.PoolSize || p.dialing != nil) {
			best.inflight.Add(1)
			t.mu.Unlock()
			t.met.reuses.Inc()
			t.met.inflight.Add(1)
			return best, nil
		}
		if p.dialing != nil {
			// A dial for this node is already in flight and the pool is
			// empty: wait for it rather than stampeding the dialer.
			dw := p.dialing
			t.mu.Unlock()
			t.met.dialCoalesced.Inc()
			select {
			case <-dw.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if dw.err != nil {
				return nil, dw.err
			}
			continue // re-enter: the fresh conn is in the pool now
		}
		dw := &dialWait{done: make(chan struct{})}
		p.dialing = dw
		t.mu.Unlock()

		c, err := t.dial(node, addr)
		t.mu.Lock()
		p.dialing = nil
		dw.conn, dw.err = c, err
		if err == nil {
			if t.closed {
				t.mu.Unlock()
				close(dw.done)
				c.fail(ErrClosed)
				return nil, ErrClosed
			}
			p.conns = append(p.conns, c)
			c.inflight.Add(1)
			t.met.poolConns.Add(1)
			t.met.inflight.Add(1)
		}
		t.mu.Unlock()
		close(dw.done)
		if err != nil {
			return nil, err
		}
		t.startReaper()
		return c, nil
	}
}

// dial establishes one v2 connection: TCP connect, magic preamble, then
// the demux and write loops take over the socket.
func (t *TCP) dial(node NodeID, addr string) (*muxConn, error) {
	nc, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing node %d: %w", node, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) //nolint:errcheck // best-effort
	}
	var magic [4]byte
	binary.BigEndian.PutUint32(magic[:], magicV2)
	if t.DialTimeout > 0 {
		nc.SetWriteDeadline(time.Now().Add(t.DialTimeout)) //nolint:errcheck
	}
	if _, err := nc.Write(magic[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: v2 preamble to node %d: %w", node, err)
	}
	nc.SetWriteDeadline(time.Time{}) //nolint:errcheck
	t.met.dials.Inc()
	c := &muxConn{
		t:       t,
		node:    node,
		nc:      nc,
		writeCh: make(chan *wireReq, 128),
		waiters: make(map[uint32]chan wireResp),
		closed:  make(chan struct{}),
	}
	c.lastIdle.Store(time.Now().UnixNano())
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// removeConn evicts a dead connection from its pool and reports the
// death to the observer (unless the transport itself is closing).
func (t *TCP) removeConn(c *muxConn, err error) {
	t.mu.Lock()
	p := t.pools[c.node]
	if p != nil {
		for i, pc := range p.conns {
			if pc == c {
				p.conns = append(p.conns[:i], p.conns[i+1:]...)
				t.met.poolConns.Add(-1)
				break
			}
		}
	}
	closed := t.closed
	obs := t.observer
	t.mu.Unlock()
	if closed || errors.Is(err, ErrClosed) {
		return
	}
	t.met.connDeaths.Inc()
	if obs != nil {
		obs.ObserveSend(c.node, err)
	}
}

// startReaper lazily launches the idle-connection reaper.
func (t *TCP) startReaper() {
	if t.IdleTimeout <= 0 {
		return
	}
	t.reaperOnce.Do(func() {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		t.reaperStop = make(chan struct{})
		stop := t.reaperStop
		t.mu.Unlock()
		interval := t.IdleTimeout / 2
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					t.reapIdle()
				}
			}
		}()
	})
}

// reapIdle closes connections that carried no request for IdleTimeout.
func (t *TCP) reapIdle() {
	cutoff := time.Now().Add(-t.IdleTimeout).UnixNano()
	var victims []*muxConn
	t.mu.Lock()
	for _, p := range t.pools {
		kept := p.conns[:0]
		for _, c := range p.conns {
			if c.inflight.Load() == 0 && c.lastIdle.Load() < cutoff {
				victims = append(victims, c)
				t.met.poolConns.Add(-1)
			} else {
				kept = append(kept, c)
			}
		}
		p.conns = kept
	}
	t.mu.Unlock()
	for _, c := range victims {
		// Evicted before failing, so removeConn finds nothing to report:
		// an idle reap is policy, not a failure signal.
		c.fail(errConnReaped)
	}
}

var errConnReaped = fmt.Errorf("%w: idle connection reaped", ErrClosed)

// Send implements Transport: one multiplexed round trip. The request
// shares a pooled connection with other in-flight Sends; the context
// governs only this request (cancelling it abandons the response — the
// connection stays healthy and a late response for the abandoned id is
// dropped by the demux loop).
func (t *TCP) Send(ctx context.Context, node NodeID, op uint8, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if op&tagDeadline != 0 {
		return nil, fmt.Errorf("transport: op %d collides with the v2 deadline flag (ops must be < 0x80)", op)
	}
	// Propagate the caller's remaining budget on the wire so the server
	// (and every hop it forwards to) can drop work that is already doomed.
	// The absolute deadline rides to the write loop, which encodes the
	// budget left at the moment the frame is actually serialized — a frame
	// that sat in the write queue carries its true remaining time, not a
	// stale snapshot.
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline && time.Until(deadline) <= 0 {
		return nil, context.DeadlineExceeded
	}
	if !hasDeadline {
		deadline = time.Time{}
	}
	c, err := t.getConn(ctx, node)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, op, deadline, payload)
	c.release()
	if err != nil {
		return nil, err
	}
	switch resp.status {
	case statusErr:
		return nil, &RemoteError{Node: node, Msg: string(resp.payload)}
	case statusOverloaded:
		var retryAfter time.Duration
		if len(resp.payload) >= deadlineBytes {
			if d := time.Duration(binary.BigEndian.Uint64(resp.payload[:deadlineBytes])); d > 0 {
				retryAfter = d
			}
		}
		return nil, &OverloadedError{Node: node, RetryAfter: retryAfter}
	case statusExpired:
		return nil, &ExpiredError{Node: node}
	}
	return resp.payload, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	var victims []*muxConn
	for _, p := range t.pools {
		victims = append(victims, p.conns...)
		p.conns = nil
	}
	stop := t.reaperStop
	t.reaperStop = nil
	t.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	for _, c := range victims {
		c.fail(ErrClosed)
	}
	return nil
}

// --- multiplexed connection ---

// muxConn is one v2 connection: a write loop coalescing queued request
// frames into vectored writes, and a demux (read) loop routing response
// frames to per-id waiters.
type muxConn struct {
	t    *TCP
	node NodeID
	nc   net.Conn

	writeCh  chan *wireReq
	inflight atomic.Int32
	lastIdle atomic.Int64 // UnixNano of the moment inflight last hit 0

	mu      sync.Mutex
	waiters map[uint32]chan wireResp
	nextID  uint32
	dead    bool
	err     error

	closed chan struct{} // closed by fail(); wakes both loops
}

type wireReq struct {
	id       uint32
	op       uint8
	deadline time.Time // non-zero: frame carries the deadline field
	payload  []byte
	wrote    chan struct{} // closed once the frame left (or will never leave) this process
}

type wireResp struct {
	status  uint8
	payload []byte
	err     error
}

// release drops one in-flight reservation.
func (c *muxConn) release() {
	if c.inflight.Add(-1) == 0 {
		c.lastIdle.Store(time.Now().UnixNano())
	}
	c.t.met.inflight.Add(-1)
}

// roundTrip runs one tagged request over the shared connection. A
// non-zero deadline is encoded as the frame's deadline field.
func (c *muxConn) roundTrip(ctx context.Context, op uint8, deadline time.Time, payload []byte) (wireResp, error) {
	ch := make(chan wireResp, 1)
	c.mu.Lock()
	if c.dead {
		err := c.err
		c.mu.Unlock()
		return wireResp{}, fmt.Errorf("transport: node %d: %w", c.node, err)
	}
	c.nextID++
	id := c.nextID
	c.waiters[id] = ch
	c.mu.Unlock()

	req := &wireReq{id: id, op: op, deadline: deadline, payload: payload, wrote: make(chan struct{})}
	select {
	case c.writeCh <- req:
	case <-c.closed:
		c.dropWaiter(id)
		return wireResp{}, fmt.Errorf("transport: sending to node %d: %w", c.node, c.deathErr())
	case <-ctx.Done():
		// Nothing was enqueued, so nothing holds the payload: safe to
		// abandon immediately even on a backed-up write queue.
		c.dropWaiter(id)
		return wireResp{}, ctx.Err()
	}
	// Wait until the frame has hit the socket (or the conn died): the
	// caller may recycle the payload buffer the moment Send returns, so
	// returning while a write loop still holds it would corrupt frames.
	// A live conn drains writes promptly; a wedged one trips
	// WriteTimeout and dies, closing c.closed.
	select {
	case <-req.wrote:
	case <-c.closed:
		// The write loop exited without draining this request; its frame
		// was never (and will never be) written.
		c.dropWaiter(id)
		return wireResp{}, fmt.Errorf("transport: sending to node %d: %w", c.node, c.deathErr())
	}
	select {
	case resp := <-ch:
		if resp.err != nil {
			return wireResp{}, fmt.Errorf("transport: reading from node %d: %w", c.node, resp.err)
		}
		return resp, nil
	case <-ctx.Done():
		c.dropWaiter(id)
		return wireResp{}, ctx.Err()
	}
}

func (c *muxConn) dropWaiter(id uint32) {
	c.mu.Lock()
	delete(c.waiters, id)
	c.mu.Unlock()
}

func (c *muxConn) deathErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return errors.New("connection closed")
}

// writeBatch bounds how many queued frames one vectored write carries.
const writeBatch = 64

// hdrSlot is one write-arena slot: a v2 header plus room for the
// optional deadline field.
const hdrSlot = frameHdrV2 + deadlineBytes

// writeLoop drains queued requests, coalescing everything pending into
// one net.Buffers vectored write — headers (and deadline fields) from a
// reused arena, payload slices used in place (zero copy).
func (c *muxConn) writeLoop() {
	var (
		hdrs    [writeBatch * hdrSlot]byte
		pending = make([]*wireReq, 0, writeBatch)
		bufs    = make(net.Buffers, 0, 2*writeBatch)
	)
	for {
		select {
		case <-c.closed:
			return
		case req := <-c.writeCh:
			pending = append(pending[:0], req)
		}
		// With more requests in flight than just this one, yield once
		// before committing to a syscall: senders that are already
		// runnable get to enqueue, so a burst of concurrent requests
		// coalesces into one vectored write instead of N. A lone caller
		// skips the yield and keeps its latency.
		if c.inflight.Load() > 1 {
			runtime.Gosched()
		}
	gather:
		for len(pending) < writeBatch {
			select {
			case req := <-c.writeCh:
				pending = append(pending, req)
			default:
				break gather
			}
		}
		bufs = bufs[:0]
		var wire uint64
		for i, req := range pending {
			slot := hdrs[i*hdrSlot : i*hdrSlot+hdrSlot]
			if req.deadline.IsZero() {
				h := slot[:frameHdrV2]
				putFrameHdrV2(h, req.id, req.op, len(req.payload))
				bufs = append(bufs, h)
			} else {
				// Encode the budget left right now; a frame that queued
				// behind a slow batch ships the time its caller truly has.
				h := slot[:frameHdrV2+deadlineBytes]
				putFrameHdrV2(h[:frameHdrV2], req.id, req.op|tagDeadline, deadlineBytes+len(req.payload))
				putBudget(h[frameHdrV2:], time.Until(req.deadline))
				bufs = append(bufs, h)
				wire += deadlineBytes
			}
			if len(req.payload) > 0 {
				bufs = append(bufs, req.payload)
			}
			wire += frameWireBytesV2(req.payload)
		}
		if c.t.WriteTimeout > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(c.t.WriteTimeout)) //nolint:errcheck
		}
		_, err := bufs.WriteTo(c.nc)
		for _, req := range pending {
			close(req.wrote)
		}
		if err != nil {
			c.fail(fmt.Errorf("writing frame: %w", err))
			return
		}
		c.t.met.bytesOut.Add(wire)
	}
}

// readLoop is the demux goroutine: it reads response frames and routes
// each to the waiter registered under its id. Responses for ids whose
// waiter gave up (context cancelled) are dropped. A read error kills
// the connection: every current waiter fails, the pool evicts it, and
// the observer hears about it.
func (c *muxConn) readLoop() {
	r := newReaderBuf(c.nc)
	for {
		id, status, payload, _, err := readFrameV2(r, false)
		if err != nil {
			c.fail(err)
			return
		}
		c.t.met.bytesIn.Add(frameWireBytesV2(payload))
		c.mu.Lock()
		ch := c.waiters[id]
		delete(c.waiters, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- wireResp{status: status, payload: payload}
		}
	}
}

// fail tears the connection down exactly once: marks it dead, closes
// the socket (waking both loops), fails every waiter, and evicts it
// from the pool.
func (c *muxConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.err = err
	waiters := c.waiters
	c.waiters = make(map[uint32]chan wireResp)
	c.mu.Unlock()
	close(c.closed)
	c.nc.Close()
	for _, ch := range waiters {
		ch <- wireResp{err: err}
	}
	c.t.removeConn(c, err)
}

// newReaderBuf sizes the demux read buffer for the typical response mix
// (small putResp/searchResp frames with the occasional large batch or
// image frame, which bufio reads through without growing).
func newReaderBuf(nc net.Conn) *bufio.Reader {
	return bufio.NewReaderSize(nc, 64<<10)
}
