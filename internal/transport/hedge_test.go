package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

const hedgeOp = 7

func hedgePolicy() HedgePolicy {
	return HedgePolicy{Ops: []uint8{hedgeOp}, Delay: 20 * time.Millisecond, Budget: 1, Burst: 10}
}

// TestHedgeFiresAndWins: a stuck primary past the hedge delay triggers
// one backup attempt, and the faster answer is returned well before the
// primary would have finished.
func TestHedgeFiresAndWins(t *testing.T) {
	reg := obs.NewRegistry()
	inner := &stubTransport{fn: func(ctx context.Context, call int, _ NodeID, _ uint8) ([]byte, error) {
		if call == 0 {
			if err := sleepCtx(ctx, 400*time.Millisecond); err != nil {
				return nil, err
			}
			return []byte("slow"), nil
		}
		return []byte("fast"), nil
	}}
	h := NewHedge(inner, hedgePolicy())
	h.Instrument(reg)

	start := time.Now()
	resp, err := h.Send(context.Background(), 1, hedgeOp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "fast" {
		t.Errorf("resp = %q, want the hedge's answer", resp)
	}
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Errorf("hedged send took %v — waited out the stuck primary", elapsed)
	}
	if fired := reg.CounterValue("transport_hedge_fired_total"); fired != 1 {
		t.Errorf("transport_hedge_fired_total = %d, want 1", fired)
	}
	if won := reg.CounterValue("transport_hedge_won_total"); won != 1 {
		t.Errorf("transport_hedge_won_total = %d, want 1", won)
	}
}

// TestHedgeNonHedgeableOpPassesThrough: ops outside the policy's list
// (mutations) make exactly one attempt, always.
func TestHedgeNonHedgeableOpPassesThrough(t *testing.T) {
	reg := obs.NewRegistry()
	inner := &stubTransport{fn: func(ctx context.Context, _ int, _ NodeID, _ uint8) ([]byte, error) {
		if err := sleepCtx(ctx, 60*time.Millisecond); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	}}
	h := NewHedge(inner, hedgePolicy()) // delay 20ms < the 60ms latency
	h.Instrument(reg)
	if _, err := h.Send(context.Background(), 1, 9, nil); err != nil {
		t.Fatal(err)
	}
	if got := inner.callCount(); got != 1 {
		t.Errorf("non-hedgeable op made %d attempts, want 1", got)
	}
	if fired := reg.CounterValue("transport_hedge_fired_total"); fired != 0 {
		t.Errorf("hedge fired %d times for a non-hedgeable op", fired)
	}
}

// TestHedgeBudgetDenied: with the token bucket drained, slow sends wait
// on the primary instead of amplifying load.
func TestHedgeBudgetDenied(t *testing.T) {
	reg := obs.NewRegistry()
	inner := &stubTransport{fn: func(ctx context.Context, _ int, _ NodeID, _ uint8) ([]byte, error) {
		if err := sleepCtx(ctx, 60*time.Millisecond); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	}}
	pol := hedgePolicy()
	pol.Delay = 5 * time.Millisecond
	pol.Budget = 0.001 // earn essentially nothing back
	pol.Burst = 1      // one seeded token
	h := NewHedge(inner, pol)
	h.Instrument(reg)

	for i := 0; i < 2; i++ {
		if _, err := h.Send(context.Background(), 1, hedgeOp, nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if fired := reg.CounterValue("transport_hedge_fired_total"); fired != 1 {
		t.Errorf("transport_hedge_fired_total = %d, want 1 (one seeded token)", fired)
	}
	if denied := reg.CounterValue("transport_hedge_denied_total"); denied != 1 {
		t.Errorf("transport_hedge_denied_total = %d, want 1", denied)
	}
	// Three calls total: two primaries + the single hedge.
	if got := inner.callCount(); got != 3 {
		t.Errorf("inner attempts = %d, want 3", got)
	}
}

// TestHedgeBothFailPrefersPrimaryError: when both attempts fail the
// primary's error is surfaced, independent of which failure arrived
// first — stable semantics for callers that classify errors.
func TestHedgeBothFailPrefersPrimaryError(t *testing.T) {
	primaryErr := errors.New("primary boom")
	inner := &stubTransport{fn: func(ctx context.Context, call int, _ NodeID, _ uint8) ([]byte, error) {
		if call == 0 {
			if err := sleepCtx(ctx, 80*time.Millisecond); err != nil {
				return nil, err
			}
			return nil, primaryErr
		}
		return nil, errors.New("hedge boom") // fails immediately, arrives first
	}}
	pol := hedgePolicy()
	pol.Delay = 5 * time.Millisecond
	h := NewHedge(inner, pol)

	_, err := h.Send(context.Background(), 1, hedgeOp, nil)
	if !errors.Is(err, primaryErr) {
		t.Fatalf("err = %v, want the primary's error", err)
	}
	if got := inner.callCount(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestHedgeContextCancel: a hedged send in flight still honors its
// context promptly.
func TestHedgeContextCancel(t *testing.T) {
	inner := &stubTransport{fn: func(ctx context.Context, _ int, _ NodeID, _ uint8) ([]byte, error) {
		if err := sleepCtx(ctx, 10*time.Second); err != nil {
			return nil, err
		}
		return []byte("never"), nil
	}}
	pol := hedgePolicy()
	pol.Delay = 5 * time.Millisecond
	h := NewHedge(inner, pol)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := h.Send(ctx, 1, hedgeOp, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled hedge took %v to return", elapsed)
	}
}
