package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

func newTestDetector(m *Memory, members []NodeID, downAfter, upAfter int) *Detector {
	return NewDetector(m, members, DetectorPolicy{
		ProbeOp:      0,
		ProbeTimeout: 200 * time.Millisecond,
		DownAfter:    downAfter,
		UpAfter:      upAfter,
	})
}

func TestDetectorStateTransitions(t *testing.T) {
	m := NewMemory()
	members := []NodeID{0, 1, 2}
	for _, id := range members {
		m.Register(id, echoHandler)
	}
	d := newTestDetector(m, members, 2, 2)
	ctx := context.Background()

	d.ProbeOnce(ctx)
	for _, id := range members {
		if st := d.State(id); st != NodeUp {
			t.Fatalf("node %d after healthy probe: %v", id, st)
		}
	}

	// Kill node 1: first failed probe → suspect, second → down.
	m.Unregister(1)
	d.ProbeOnce(ctx)
	if st := d.State(1); st != NodeSuspect {
		t.Fatalf("node 1 after one failure: %v, want suspect", st)
	}
	d.ProbeOnce(ctx)
	if st := d.State(1); st != NodeDown {
		t.Fatalf("node 1 after two failures: %v, want down", st)
	}
	if down := d.Down(); len(down) != 1 || down[0] != 1 {
		t.Fatalf("Down = %v", down)
	}
	// Healthy peers unaffected.
	if d.State(0) != NodeUp || d.State(2) != NodeUp {
		t.Fatal("healthy nodes disturbed by peer failure")
	}

	// Revive: UpAfter=2 means one success is not enough.
	m.Register(1, echoHandler)
	d.ProbeOnce(ctx)
	if st := d.State(1); st != NodeDown {
		t.Fatalf("node 1 after one success: %v, want still down (UpAfter=2)", st)
	}
	d.ProbeOnce(ctx)
	if st := d.State(1); st != NodeUp {
		t.Fatalf("node 1 after two successes: %v, want up", st)
	}
	if down := d.Down(); len(down) != 0 {
		t.Fatalf("Down after recovery = %v", down)
	}
}

func TestDetectorRemoteErrorCountsAsAlive(t *testing.T) {
	m := NewMemory()
	m.Register(0, func(_ context.Context, op uint8, p []byte) ([]byte, error) {
		return nil, errors.New("handler rejects probes")
	})
	d := newTestDetector(m, []NodeID{0}, 1, 1)
	d.ProbeOnce(context.Background())
	if st := d.State(0); st != NodeUp {
		t.Fatalf("node answering with a handler error marked %v, want up", st)
	}
}

func TestDetectorPassiveSignals(t *testing.T) {
	m := NewMemory()
	m.Register(0, echoHandler)
	d := newTestDetector(m, []NodeID{0}, 2, 1)

	// Passive failures confirm a node down without any probe.
	d.ObserveSend(0, ErrUnknownNode)
	d.ObserveSend(0, ErrUnknownNode)
	if st := d.State(0); st != NodeDown {
		t.Fatalf("after two passive failures: %v, want down", st)
	}
	// A passive success brings it back.
	d.ObserveSend(0, nil)
	if st := d.State(0); st != NodeUp {
		t.Fatalf("after passive success: %v, want up", st)
	}
	// Unknown nodes are ignored (not watched membership).
	d.ObserveSend(42, ErrUnknownNode)
	if st := d.State(42); st != NodeUp {
		t.Fatalf("unwatched node state = %v", st)
	}
	snap := d.Snapshot()
	if len(snap) != 1 || snap[0].PassiveSignals != 3 || snap[0].ActiveProbes != 0 {
		t.Fatalf("snapshot accounting = %+v", snap)
	}
}

func TestDetectorRetryObserverIntegration(t *testing.T) {
	// Wire the detector as the Retry middleware's observer: a send to a
	// dead node must mark it down purely from live-traffic signals.
	m := NewMemory()
	m.Register(0, echoHandler)
	m.Register(1, echoHandler)
	r := NewRetry(m, RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Multiplier:  2,
	}, 1)
	d := newTestDetector(m, []NodeID{0, 1}, 2, 1)
	r.SetObserver(d)
	ctx := context.Background()

	m.Unregister(1)
	// ErrUnknownNode is not retryable, so each Send is one attempt = one
	// passive failure; the second confirms the node down.
	if _, err := r.Send(ctx, 1, 7, nil); err == nil {
		t.Fatal("send to dead node succeeded")
	}
	if st := d.State(1); st != NodeSuspect {
		t.Fatalf("node 1 after one failed send: %v, want suspect", st)
	}
	if _, err := r.Send(ctx, 1, 7, nil); err == nil {
		t.Fatal("send to dead node succeeded")
	}
	if st := d.State(1); st != NodeDown {
		t.Fatalf("node 1 after two failed sends: %v, want down", st)
	}
	// Healthy traffic keeps node 0 up and counts signals.
	if _, err := r.Send(ctx, 0, 7, nil); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if snap[0].PassiveSignals == 0 {
		t.Fatal("successful send produced no passive signal")
	}
	if snap[1].State != NodeDown || snap[1].LastError == "" {
		t.Fatalf("node 1 health = %+v", snap[1])
	}
}

func TestDetectorSubscribe(t *testing.T) {
	m := NewMemory()
	m.Register(0, echoHandler)
	d := newTestDetector(m, []NodeID{0}, 2, 1)
	events := d.Subscribe(16)
	ctx := context.Background()

	m.Unregister(0)
	d.ProbeOnce(ctx) // → suspect
	d.ProbeOnce(ctx) // → down
	m.Register(0, echoHandler)
	d.ProbeOnce(ctx) // → up

	want := []NodeState{NodeSuspect, NodeDown, NodeUp}
	for i, w := range want {
		select {
		case ev := <-events:
			if ev.Node != 0 || ev.State != w {
				t.Fatalf("event %d = %+v, want state %v", i, ev, w)
			}
			if w != NodeUp && ev.Cause == "" {
				t.Fatalf("failure event %d missing cause", i)
			}
		case <-time.After(time.Second):
			t.Fatalf("missing event %d (%v)", i, w)
		}
	}
	select {
	case ev := <-events:
		t.Fatalf("unexpected extra event %+v", ev)
	default:
	}
}

func TestDetectorBackgroundProbing(t *testing.T) {
	m := NewMemory()
	m.Register(0, echoHandler)
	d := NewDetector(m, []NodeID{0}, DetectorPolicy{
		ProbeInterval: time.Millisecond,
		ProbeTimeout:  100 * time.Millisecond,
		DownAfter:     2,
		UpAfter:       1,
	})
	events := d.Subscribe(16)
	d.Start()
	defer d.Stop()

	m.Unregister(0)
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.State == NodeDown {
				return // background loop confirmed the failure on its own
			}
		case <-deadline:
			t.Fatal("background probing never confirmed the node down")
		}
	}
}
