package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

// shedClock is a hand-cranked clock for deterministic control-loop
// tests: windows rotate exactly when the test advances time.
type shedClock struct{ t time.Time }

func (c *shedClock) now() time.Time              { return c.t }
func (c *shedClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newShedClock() *shedClock                   { return &shedClock{t: time.Unix(1_000_000, 0)} }
func clockedShedder(p ShedPolicy) (*Shedder, *shedClock) {
	s := NewShedder(p)
	clk := newShedClock()
	s.now = clk.now
	return s, clk
}

func TestShedderConcurrencyLimitBinds(t *testing.T) {
	s := NewShedder(ShedPolicy{MinLimit: 2, MaxLimit: 2, Target: 7 * time.Millisecond})
	t1, _, ok := s.Admit(1)
	if !ok {
		t.Fatal("first admit refused")
	}
	t2, _, ok := s.Admit(1)
	if !ok {
		t.Fatal("second admit refused under limit 2")
	}
	_, hint, ok := s.Admit(1)
	if ok {
		t.Fatal("admitted past the concurrency limit")
	}
	// With no completed window yet the hint floors at Target.
	if hint != 7*time.Millisecond {
		t.Errorf("cold retry-after hint = %v, want Target (7ms)", hint)
	}
	s.Done(t1)
	t3, _, ok := s.Admit(1)
	if !ok {
		t.Fatal("slot freed by Done not reusable")
	}
	if got := s.Inflight(); got != 2 {
		t.Errorf("inflight = %d, want 2", got)
	}
	s.Done(t2)
	s.Done(t3)
	if got := s.Inflight(); got != 0 {
		t.Errorf("inflight after drain = %d, want 0", got)
	}
}

func TestShedderRetryAfterHintCapped(t *testing.T) {
	s := NewShedder(ShedPolicy{MinLimit: 1, MaxLimit: 1})
	// Pretend the last window averaged 5s of handler latency: the hint
	// must still cap at 1s — a shed is "come back soon", not "go away".
	s.mu.Lock()
	s.lastAvg = 5 * time.Second
	s.mu.Unlock()
	tok, _, ok := s.Admit(1)
	if !ok {
		t.Fatal("admit refused")
	}
	defer s.Done(tok)
	_, hint, ok := s.Admit(1)
	if ok {
		t.Fatal("admitted past limit 1")
	}
	if hint != time.Second {
		t.Errorf("hint = %v, want capped at 1s", hint)
	}
}

func TestShedderPriorities(t *testing.T) {
	classify := func(op uint8) Priority {
		switch op {
		case 1:
			return PriorityForeground
		case 2:
			return PriorityBackground
		default:
			return PriorityControl
		}
	}
	s := NewShedder(ShedPolicy{MinLimit: 4, MaxLimit: 4, BackgroundFraction: 0.5, Classify: classify})

	// Background gets only BackgroundFraction of the limit: 2 of 4.
	b1, _, ok := s.Admit(2)
	if !ok {
		t.Fatal("background admit 1 refused")
	}
	b2, _, ok := s.Admit(2)
	if !ok {
		t.Fatal("background admit 2 refused")
	}
	if _, _, ok := s.Admit(2); ok {
		t.Fatal("background admitted past its fraction of the limit")
	}
	// Foreground still has the full limit (the two background slots count
	// against it).
	f1, _, ok := s.Admit(1)
	if !ok {
		t.Fatal("foreground admit refused with slack left")
	}
	f2, _, ok := s.Admit(1)
	if !ok {
		t.Fatal("foreground admit refused at the limit boundary")
	}
	if _, _, ok := s.Admit(1); ok {
		t.Fatal("foreground admitted past the limit")
	}
	// Control is admitted precisely when the node is saturated, and never
	// counted against the limit.
	c, _, ok := s.Admit(9)
	if !ok {
		t.Fatal("control traffic shed at saturation — probes would read as node death")
	}
	if got := s.Inflight(); got != 4 {
		t.Errorf("inflight = %d, want 4 (control uncounted)", got)
	}
	s.Done(c)
	if got := s.Inflight(); got != 4 {
		t.Errorf("control Done changed inflight to %d", got)
	}
	for _, tok := range []ShedToken{b1, b2, f1, f2} {
		s.Done(tok)
	}
}

// driveWindow pushes one full control window of uniform-latency ops
// through the shedder and rotates it exactly once: four overlapping ops
// share a single clock advance (so a latency above the window length
// cannot rotate mid-batch), then a final op past the window boundary
// triggers the rotation (the loop only turns on traffic).
func driveWindow(t *testing.T, s *Shedder, clk *shedClock, lat time.Duration) {
	t.Helper()
	toks := make([]ShedToken, 0, 4)
	for i := 0; i < 4; i++ {
		tok, _, ok := s.Admit(1)
		if !ok {
			t.Fatal("admit refused by an idle shedder")
		}
		toks = append(toks, tok)
	}
	clk.advance(lat)
	for _, tok := range toks {
		s.Done(tok)
	}
	clk.advance(s.pol.Window)
	tok, _, ok := s.Admit(1)
	if !ok {
		t.Fatal("admit refused by an idle shedder")
	}
	clk.advance(lat)
	s.Done(tok)
}

func TestShedderAIMDCutsOnStandingQueue(t *testing.T) {
	s, clk := clockedShedder(ShedPolicy{
		MinLimit: 8, MaxLimit: 100,
		Target: 5 * time.Millisecond, Window: 100 * time.Millisecond,
	})
	// Two healthy windows establish a ~1ms latency floor.
	driveWindow(t, s, clk, time.Millisecond)
	driveWindow(t, s, clk, time.Millisecond)
	if got := s.Limit(); got != 100 {
		t.Fatalf("limit moved to %d on healthy traffic, want 100", got)
	}
	// 50ms means ~49ms of standing queue over the floor. One bad window
	// is tolerated (a blip), two in a row cut multiplicatively.
	driveWindow(t, s, clk, 50*time.Millisecond)
	if got := s.Limit(); got != 100 {
		t.Fatalf("limit cut after a single bad window: %d", got)
	}
	driveWindow(t, s, clk, 50*time.Millisecond)
	if got := s.Limit(); got != 85 {
		t.Fatalf("limit after sustained queueing = %d, want 100*85%% = 85", got)
	}
	// The run counter reset on the cut: it takes two more bad windows to
	// cut again.
	driveWindow(t, s, clk, 50*time.Millisecond)
	if got := s.Limit(); got != 85 {
		t.Fatalf("limit = %d immediately after cut, want 85", got)
	}
	driveWindow(t, s, clk, 50*time.Millisecond)
	if got := s.Limit(); got != 72 {
		t.Fatalf("second cut: limit = %d, want 85*85%% = 72", got)
	}
}

func TestShedderCutFloorsAtMinLimit(t *testing.T) {
	s, clk := clockedShedder(ShedPolicy{
		MinLimit: 8, MaxLimit: 100,
		Target: 5 * time.Millisecond, Window: 100 * time.Millisecond,
	})
	driveWindow(t, s, clk, time.Millisecond) // floor
	s.limit.Store(9)
	driveWindow(t, s, clk, 50*time.Millisecond)
	driveWindow(t, s, clk, 50*time.Millisecond)
	if got := s.Limit(); got != 8 {
		t.Fatalf("limit = %d, want clamped at MinLimit 8 (9*85%% would be 7)", got)
	}
}

func TestShedderAdditiveIncreaseWhenBoundAndHealthy(t *testing.T) {
	s, clk := clockedShedder(ShedPolicy{
		MinLimit: 2, MaxLimit: 100,
		Target: 5 * time.Millisecond, Window: 100 * time.Millisecond,
	})
	s.limit.Store(20)
	// Saturate: fill every slot, and have one rejection mark the limit as
	// binding this window.
	toks := make([]ShedToken, 0, 20)
	for i := 0; i < 20; i++ {
		tok, _, ok := s.Admit(1)
		if !ok {
			t.Fatalf("admit %d refused under limit 20", i)
		}
		toks = append(toks, tok)
	}
	if _, _, ok := s.Admit(1); ok {
		t.Fatal("admitted past limit 20")
	}
	// Drain with healthy latency and rotate the window.
	clk.advance(time.Millisecond)
	for _, tok := range toks {
		s.Done(tok)
	}
	clk.advance(s.pol.Window)
	tok, _, ok := s.Admit(1)
	if !ok {
		t.Fatal("admit refused after drain")
	}
	clk.advance(time.Millisecond)
	s.Done(tok)
	// Limit bound + latency at the floor → additive probe: 20 + 20/16.
	if got := s.Limit(); got != 21 {
		t.Fatalf("limit = %d, want additive increase to 21", got)
	}
}

// TestServerShedsPastLimit runs the real server path: with the shedder
// pinned to one concurrent request and the handler blocked, every other
// concurrent Send must come back as ErrOverloaded with a usable
// retry-after hint, and the registry must satisfy the admission
// invariant admits + sheds + expired == frames.
func TestServerShedsPastLimit(t *testing.T) {
	reg := obs.NewRegistry()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := NewServer(func(_ context.Context, _ uint8, p []byte) ([]byte, error) {
		entered <- struct{}{}
		<-release
		return p, nil
	})
	sh := NewShedder(ShedPolicy{MinLimit: 1, MaxLimit: 1})
	sh.Instrument(reg)
	srv.SetShedder(sh)
	srv.Instrument(reg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck // exits on Close
	defer srv.Close()

	cli := NewTCP(map[NodeID]string{1: lis.Addr().String()})
	defer cli.Close()

	const n = 8
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := cli.Send(context.Background(), 1, 1, []byte("x"))
			results <- err
		}()
	}
	<-entered // exactly one request admitted and running
	for i := 0; i < n-1; i++ {
		err := <-results
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("shed request %d: err = %v, want ErrOverloaded", i, err)
		}
		var oe *OverloadedError
		if !errors.As(err, &oe) {
			t.Fatalf("shed request %d: %v is not an *OverloadedError", i, err)
		}
		if oe.RetryAfter < sh.pol.Target || oe.RetryAfter > time.Second {
			t.Errorf("retry-after hint %v outside [Target, 1s]", oe.RetryAfter)
		}
		if ra, ok := RetryAfterOf(err); !ok || ra != oe.RetryAfter {
			t.Errorf("RetryAfterOf = (%v, %v), want (%v, true)", ra, ok, oe.RetryAfter)
		}
	}
	close(release)
	if err := <-results; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}

	frames := reg.CounterValue("transport_srv_frames_total")
	admits := reg.CounterValue("transport_srv_admits_total")
	sheds := reg.CounterValue("transport_srv_shed_total")
	expired := reg.CounterValue("transport_srv_expired_total")
	if admits+sheds+expired != frames {
		t.Errorf("admission invariant broken: admits %d + sheds %d + expired %d != frames %d",
			admits, sheds, expired, frames)
	}
	if admits != 1 || sheds != n-1 || expired != 0 {
		t.Errorf("counters = admits %d / sheds %d / expired %d, want 1 / %d / 0", admits, sheds, expired, n-1)
	}
	if reg.GaugeValue("transport_srv_shed_limit") != 1 {
		t.Errorf("shed limit gauge = %d, want 1", reg.GaugeValue("transport_srv_shed_limit"))
	}
}

// TestServerPropagatesOverloadFromHandler covers the forward chain: a
// handler whose downstream forward was shed returns an OverloadedError,
// and the server must re-encode it as statusOverloaded (hint intact)
// rather than flattening it into a generic remote error — the original
// client sees backpressure end to end. Likewise a handler deadline
// expiry becomes statusExpired.
func TestServerPropagatesOverloadFromHandler(t *testing.T) {
	const hint = 42 * time.Millisecond
	addr, stop := startTCPNode(t, func(_ context.Context, op uint8, _ []byte) ([]byte, error) {
		switch op {
		case 1:
			return nil, &OverloadedError{Node: 7, RetryAfter: hint}
		case 2:
			return nil, context.DeadlineExceeded
		default:
			return nil, errors.New("plain handler failure")
		}
	})
	defer stop()
	cli := NewTCP(map[NodeID]string{3: addr})
	defer cli.Close()

	_, err := cli.Send(context.Background(), 3, 1, nil)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("forwarded shed came back as %v, want *OverloadedError", err)
	}
	if oe.RetryAfter != hint {
		t.Errorf("retry-after hint = %v, want %v preserved across the hop", oe.RetryAfter, hint)
	}
	if oe.Node != 3 {
		t.Errorf("overload attributed to node %d, want the answering node 3", oe.Node)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Error("propagated overload does not match ErrOverloaded")
	}

	_, err = cli.Send(context.Background(), 3, 2, nil)
	var ee *ExpiredError
	if !errors.As(err, &ee) {
		t.Fatalf("handler deadline expiry came back as %v, want *ExpiredError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("ExpiredError does not match context.DeadlineExceeded")
	}

	// Ordinary handler errors still surface as RemoteError.
	_, err = cli.Send(context.Background(), 3, 9, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("plain handler error came back as %v, want *RemoteError", err)
	}
}
