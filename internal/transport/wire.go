package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// Wire protocol v2 — the multiplexed frame format (see DESIGN.md §12).
//
// A v2 client announces itself by sending a 4-byte magic preamble
// immediately after dialing. The value is deliberately invalid as a v1
// frame length (it exceeds maxFrame), so a v1 server that reads it as a
// length rejects the connection instead of misparsing, and a v2 server
// can Peek these 4 bytes to pick the right loop — the backward-compat
// story is simply "upgrade servers first".
//
// Every v2 frame, both directions:
//
//	uint32 length (of everything after this field, big-endian)
//	uint32 id     (request tag; the response echoes it)
//	uint8  tag    (request: op / response: status)
//	bytes  payload
//
// The id lets many requests share one connection with out-of-order
// completion: the client registers a waiter per id and a demux
// goroutine routes each response frame to its waiter.
const magicV2 = 0xE5DD5502 // > maxFrame, so never a valid v1 length

// frameHdrV2 is the fixed part of a v2 frame: length + id + tag.
const frameHdrV2 = 9

// tagDeadline is the request-tag flag bit marking a propagated
// deadline: when set, the payload begins with deadlineBytes of
// big-endian remaining budget in nanoseconds (relative, so no clock
// sync between peers is assumed), followed by the op payload proper.
// Op codes therefore live in the low 7 bits — the sdds protocol uses
// ops < 32, and TCP.Send rejects ops that collide with the flag. v1
// frames never carry deadlines; response tags (statuses) never set it.
const tagDeadline = 0x80

// deadlineBytes is the wire size of the optional deadline field.
const deadlineBytes = 8

// statusOverloaded / statusExpired extend the v1/v2 response statuses
// (0 ok, 1 handler error). Overloaded: the server's admission
// controller shed the request before the handler ran; the payload
// carries a big-endian uint64 retry-after hint in nanoseconds.
// Expired: the propagated deadline had already passed on arrival, so
// the server dropped the request instead of burning CPU on doomed
// work; the payload is empty. Both are distinguishable from handler
// errors so clients treat them as backpressure, not node failure.
const (
	statusOverloaded = 2
	statusExpired    = 3
)

// putBudget encodes a deadline budget for the wire. Budgets are
// clamped at zero: a caller whose deadline already passed should not
// reach the encoder (Send checks ctx.Err first), but a torn race
// between that check and encoding must not wrap negative into a huge
// unsigned budget.
func putBudget(b []byte, budget time.Duration) {
	if budget < 0 {
		budget = 0
	}
	binary.BigEndian.PutUint64(b[:deadlineBytes], uint64(budget))
}

// splitBudget decodes and strips the deadline field from a request
// payload whose tag carried tagDeadline. Garbage high-bit budgets
// (which would decode as negative durations) come back as 0 — i.e.
// already expired — rather than poisoning time arithmetic; a payload
// too short to hold the field is a protocol violation.
func splitBudget(payload []byte) (budget time.Duration, rest []byte, err error) {
	if len(payload) < deadlineBytes {
		return 0, nil, fmt.Errorf("transport: v2 deadline frame payload %d bytes, want >= %d", len(payload), deadlineBytes)
	}
	u := binary.BigEndian.Uint64(payload[:deadlineBytes])
	budget = time.Duration(u)
	if budget < 0 {
		budget = 0
	}
	return budget, payload[deadlineBytes:], nil
}

// putFrameHdrV2 encodes a v2 frame header into h.
func putFrameHdrV2(h []byte, id uint32, tag uint8, payloadLen int) {
	binary.BigEndian.PutUint32(h[:4], uint32(5+payloadLen))
	binary.BigEndian.PutUint32(h[4:8], id)
	h[8] = tag
}

// writeFrameV2 appends one v2 frame to w WITHOUT flushing, so a batch
// of frames coalesces into one syscall; the caller flushes when its
// queue drains.
func writeFrameV2(w *bufio.Writer, id uint32, tag uint8, payload []byte) error {
	var hdr [frameHdrV2]byte
	putFrameHdrV2(hdr[:], id, tag, len(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// payloadPool recycles v2 frame payload buffers. The server reads each
// request into a pooled buffer and releases it after the response is
// written — safe because sdds decoders copy every byte they keep and
// the WAL journals synchronously. Buffers above 1 MiB are not pooled so
// one huge frame cannot pin a large allocation.
var payloadPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getPayloadBuf(n int) *[]byte {
	p := payloadPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putPayloadBuf(p *[]byte) {
	if p == nil || cap(*p) > 1<<20 {
		return
	}
	payloadPool.Put(p)
}

// readFrameV2 reads one v2 frame. When pooled is true the payload is
// backed by a pooled buffer the caller MUST release with putPayloadBuf
// once the payload (and anything aliasing it) is dead; otherwise the
// payload is freshly allocated and owned by the caller.
func readFrameV2(r *bufio.Reader, pooled bool) (id uint32, tag uint8, payload []byte, buf *[]byte, err error) {
	var hdr [frameHdrV2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 5 || n > maxFrame {
		return 0, 0, nil, nil, fmt.Errorf("transport: v2 frame length %d out of range", n)
	}
	id = binary.BigEndian.Uint32(hdr[4:8])
	tag = hdr[8]
	body := int(n) - 5
	if pooled {
		buf = getPayloadBuf(body)
		payload = *buf
	} else {
		payload = make([]byte, body)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		putPayloadBuf(buf)
		return 0, 0, nil, nil, err
	}
	return id, tag, payload, buf, nil
}

// frameWireBytesV2 is the on-wire size of a v2 frame carrying payload.
func frameWireBytesV2(payload []byte) uint64 {
	return uint64(frameHdrV2 + len(payload))
}
