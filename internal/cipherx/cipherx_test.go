package cipherx

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b + byte(i)
	}
	return k
}

func TestKeyFromBytes(t *testing.T) {
	raw := make([]byte, KeySize)
	for i := range raw {
		raw[i] = byte(i)
	}
	k, err := KeyFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k[:], raw) {
		t.Error("key bytes not copied")
	}
	if _, err := KeyFromBytes(raw[:31]); err != ErrBadKey {
		t.Errorf("short key: err = %v, want ErrBadKey", err)
	}
	if _, err := KeyFromBytes(append(raw, 0)); err != ErrBadKey {
		t.Errorf("long key: err = %v, want ErrBadKey", err)
	}
}

func TestKeyFromPassphraseDeterministicAndDistinct(t *testing.T) {
	a := KeyFromPassphrase("hello")
	b := KeyFromPassphrase("hello")
	c := KeyFromPassphrase("hellp")
	if a != b {
		t.Error("same passphrase gave different keys")
	}
	if a == c {
		t.Error("different passphrases gave equal keys")
	}
}

func TestDeriveKeyIndependence(t *testing.T) {
	master := testKey(1)
	a := DeriveKey(master, "index")
	b := DeriveKey(master, "record")
	if a == b {
		t.Error("distinct labels gave equal keys")
	}
	if a == master || b == master {
		t.Error("derived key equals master")
	}
	if DeriveKey(master, "index") != a {
		t.Error("DeriveKey not deterministic")
	}
	if DeriveKeyN(master, "chunking", 0) == DeriveKeyN(master, "chunking", 1) {
		t.Error("distinct indices gave equal keys")
	}
	// The numbered form must not collide with a plain label containing
	// the same bytes by construction of the separator.
	if DeriveKeyN(master, "x", 0) == DeriveKey(master, "x") {
		t.Error("DeriveKeyN(label, 0) collides with DeriveKey(label)")
	}
}

func TestBitPRPWidthValidation(t *testing.T) {
	for _, w := range []uint{0, 65, 100} {
		if _, err := NewBitPRP(testKey(2), w); err == nil {
			t.Errorf("width %d: want error", w)
		}
	}
}

func TestBitPRPIsPermutationSmallWidths(t *testing.T) {
	// Exhaustively verify bijectivity for every width up to 12 bits.
	for w := uint(1); w <= 12; w++ {
		prp, err := NewBitPRP(testKey(3), w)
		if err != nil {
			t.Fatal(err)
		}
		size := uint64(1) << w
		seen := make([]bool, size)
		for x := uint64(0); x < size; x++ {
			y := prp.EncryptBits(x)
			if y >= size {
				t.Fatalf("w=%d: Encrypt(%d) = %d escapes domain", w, x, y)
			}
			if seen[y] {
				t.Fatalf("w=%d: Encrypt not injective at output %d", w, y)
			}
			seen[y] = true
			if back := prp.DecryptBits(y); back != x {
				t.Fatalf("w=%d: Decrypt(Encrypt(%d)) = %d", w, x, back)
			}
		}
	}
}

func TestBitPRPRoundTrip64(t *testing.T) {
	prp, err := NewBitPRP(testKey(4), 64)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(x uint64) bool {
		return prp.DecryptBits(prp.EncryptBits(x)) == x
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBitPRPOddWidthRoundTrip(t *testing.T) {
	prp, err := NewBitPRP(testKey(5), 33)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(x uint64) bool {
		v := x & (1<<33 - 1)
		y := prp.EncryptBits(v)
		if y >= 1<<33 {
			return false
		}
		return prp.DecryptBits(y) == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBitPRPDeterministicAndKeyed(t *testing.T) {
	a, _ := NewBitPRP(testKey(6), 16)
	b, _ := NewBitPRP(testKey(6), 16)
	c, _ := NewBitPRP(testKey(7), 16)
	same, diff := 0, 0
	for x := uint64(0); x < 4096; x++ {
		if a.EncryptBits(x) != b.EncryptBits(x) {
			t.Fatal("same key disagrees")
		}
		if a.EncryptBits(x) == c.EncryptBits(x) {
			same++
		} else {
			diff++
		}
	}
	// Two independent random permutations of 2^16 agree on a 4096-point
	// sample about 4096/65536 ≈ 0.06 times in expectation; allow slack.
	if same > 16 {
		t.Errorf("different keys agree on %d/4096 points — not keyed?", same)
	}
	_ = diff
}

func TestBitPRPDomainPanics(t *testing.T) {
	prp, _ := NewBitPRP(testKey(8), 8)
	assertPanics(t, "Encrypt", func() { prp.EncryptBits(256) })
	assertPanics(t, "Decrypt", func() { prp.DecryptBits(1 << 20) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestNewByteCipherSelection(t *testing.T) {
	key := testKey(9)
	if _, err := NewByteCipher(key, 0); err == nil {
		t.Error("chunk length 0 accepted")
	}
	for _, n := range []int{1, 2, 4, 6, 8, 9, 12, 15, 16, 17, 24, 32, 48} {
		c, err := NewByteCipher(key, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if c.ChunkLen() != n {
			t.Fatalf("n=%d: ChunkLen = %d", n, c.ChunkLen())
		}
	}
}

func TestByteCipherRoundTripAllSizes(t *testing.T) {
	key := testKey(10)
	for _, n := range []int{1, 2, 3, 4, 6, 8, 9, 11, 16, 20, 32} {
		c, err := NewByteCipher(key, n)
		if err != nil {
			t.Fatal(err)
		}
		src := make([]byte, n)
		for trial := 0; trial < 64; trial++ {
			for i := range src {
				src[i] = byte(trial*31 + i*7)
			}
			enc := make([]byte, n)
			dec := make([]byte, n)
			c.Encrypt(enc, src)
			if bytes.Equal(enc, src) && n > 1 {
				// A permutation can have fixed points, but 64 in a row
				// would mean identity; count instead of failing hard.
				continue
			}
			c.Decrypt(dec, enc)
			if !bytes.Equal(dec, src) {
				t.Fatalf("n=%d trial=%d: round trip failed", n, trial)
			}
		}
	}
}

func TestByteCipherDeterministicECBProperty(t *testing.T) {
	// The defining ECB property: equal chunks encrypt equally — this is
	// what the index-record search relies on.
	c, err := NewByteCipher(testKey(11), 4)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]byte, 4)
	b := make([]byte, 4)
	c.Encrypt(a, []byte("ABCD"))
	c.Encrypt(b, []byte("ABCD"))
	if !bytes.Equal(a, b) {
		t.Error("equal plaintext chunks gave different ciphertexts")
	}
	c.Encrypt(b, []byte("ABCE"))
	if bytes.Equal(a, b) {
		t.Error("distinct plaintext chunks collided")
	}
}

func TestByteCipherInPlace(t *testing.T) {
	for _, n := range []int{4, 16, 20} {
		c, err := NewByteCipher(testKey(12), n)
		if err != nil {
			t.Fatal(err)
		}
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i)
		}
		want := make([]byte, n)
		c.Encrypt(want, src)
		buf := append([]byte(nil), src...)
		c.Encrypt(buf, buf) // in place
		if !bytes.Equal(buf, want) {
			t.Errorf("n=%d: in-place encryption differs", n)
		}
		c.Decrypt(buf, buf)
		if !bytes.Equal(buf, src) {
			t.Errorf("n=%d: in-place decryption differs", n)
		}
	}
}

func TestByteCipherLengthPanics(t *testing.T) {
	c, err := NewByteCipher(testKey(13), 4)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "short src", func() { c.Encrypt(make([]byte, 4), make([]byte, 3)) })
	assertPanics(t, "short dst", func() { c.Decrypt(make([]byte, 3), make([]byte, 4)) })
	big, err := NewByteCipher(testKey(13), 20)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "feistel short", func() { big.Encrypt(make([]byte, 20), make([]byte, 19)) })
	ecb, err := NewByteCipher(testKey(13), 16)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "ecb short", func() { ecb.Encrypt(make([]byte, 16), make([]byte, 15)) })
	assertPanics(t, "ecb short dec", func() { ecb.Decrypt(make([]byte, 15), make([]byte, 16)) })
}

func TestByteFeistelBijectiveSample(t *testing.T) {
	// For a 9-byte Feistel we cannot enumerate the domain; check
	// injectivity over a structured sample instead.
	c, err := NewByteCipher(testKey(14), 9)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]string)
	src := make([]byte, 9)
	enc := make([]byte, 9)
	for i := 0; i < 20000; i++ {
		for j := range src {
			src[j] = byte(i >> (j % 3 * 8) * (j + 1))
		}
		src[0] = byte(i)
		src[1] = byte(i >> 8)
		c.Encrypt(enc, src)
		if prev, ok := seen[string(enc)]; ok && prev != string(src) {
			t.Fatalf("collision: %q and %q both encrypt to %x", prev, src, enc)
		}
		seen[string(enc)] = string(src)
	}
}

func TestRecordCipherRoundTrip(t *testing.T) {
	rc := NewRecordCipher(testKey(15))
	ad := []byte("rid-007")
	pt := []byte("SCHWARZ THOMAS%%%%%%%415-409-0007$$")
	sealed := rc.Seal(ad, pt)
	if len(sealed) != len(pt)+rc.Overhead() {
		t.Errorf("sealed length %d, want %d", len(sealed), len(pt)+rc.Overhead())
	}
	got, err := rc.Open(ad, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Error("round trip mismatch")
	}
}

func TestRecordCipherDeterministic(t *testing.T) {
	rc := NewRecordCipher(testKey(16))
	a := rc.Seal([]byte("k"), []byte("v"))
	b := rc.Seal([]byte("k"), []byte("v"))
	if !bytes.Equal(a, b) {
		t.Error("SIV sealing should be deterministic")
	}
}

func TestRecordCipherAuthFailures(t *testing.T) {
	rc := NewRecordCipher(testKey(17))
	ad := []byte("rid-1")
	sealed := rc.Seal(ad, []byte("secret content"))

	// Flipped ciphertext bit.
	bad := append([]byte(nil), sealed...)
	bad[len(bad)-1] ^= 1
	if _, err := rc.Open(ad, bad); err != ErrAuth {
		t.Errorf("tampered ciphertext: err = %v, want ErrAuth", err)
	}
	// Flipped tag bit.
	bad = append([]byte(nil), sealed...)
	bad[0] ^= 1
	if _, err := rc.Open(ad, bad); err != ErrAuth {
		t.Errorf("tampered tag: err = %v, want ErrAuth", err)
	}
	// Wrong associated data.
	if _, err := rc.Open([]byte("rid-2"), sealed); err != ErrAuth {
		t.Errorf("wrong ad: err = %v, want ErrAuth", err)
	}
	// Truncated below tag size.
	if _, err := rc.Open(ad, sealed[:8]); err != ErrAuth {
		t.Errorf("truncated: err = %v, want ErrAuth", err)
	}
	// Wrong key.
	other := NewRecordCipher(testKey(18))
	if _, err := other.Open(ad, sealed); err != ErrAuth {
		t.Errorf("wrong key: err = %v, want ErrAuth", err)
	}
}

func TestRecordCipherEmptyPlaintext(t *testing.T) {
	rc := NewRecordCipher(testKey(19))
	sealed := rc.Seal(nil, nil)
	got, err := rc.Open(nil, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d bytes, want empty", len(got))
	}
}

func TestRecordCipherQuickRoundTrip(t *testing.T) {
	rc := NewRecordCipher(testKey(20))
	prop := func(ad, pt []byte) bool {
		got, err := rc.Open(ad, rc.Seal(ad, pt))
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
