package cipherx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
)

// ChunkCipher is a deterministic keyed permutation over fixed-width bit
// values. Encrypt and Decrypt must be inverses and safe for concurrent
// use.
//
// Index-record generation applies a ChunkCipher independently to every
// chunk of every chunking ("Electronic Code Book" in the paper), which is
// exactly what makes encrypted substring matching possible — and what
// Stage 2 (redundancy removal) and Stage 3 (dispersion) then harden
// against frequency analysis.
type ChunkCipher interface {
	// BlockBits returns the permutation's domain width in bits.
	BlockBits() uint
	// EncryptBits maps a value with BlockBits significant bits to another
	// value in the same domain.
	EncryptBits(x uint64) uint64
	// DecryptBits inverts EncryptBits.
	DecryptBits(x uint64) uint64
}

// feistelRounds is the number of Feistel rounds. Ten rounds of a balanced
// Feistel network with domain-separated PRF rounds is comfortably beyond
// the Luby–Rackoff bound for a strong PRP.
const feistelRounds = 10

// BitPRP is a keyed pseudorandom permutation over w-bit values,
// 1 <= w <= 64. It is a balanced Feistel network over the width rounded
// up to an even number of bits, with AES-256 as the round function;
// odd-width domains are handled by cycle-walking, which preserves the
// permutation property exactly.
type BitPRP struct {
	width    uint   // external domain width
	halfBits uint   // feistel half width (of the rounded-up even width)
	halfMask uint64 // mask of halfBits bits
	domMask  uint64 // mask of width bits
	rounds   int
	block    cipher.Block
}

var _ ChunkCipher = (*BitPRP)(nil)

// NewBitPRP constructs the PRP for the given key and width in bits.
func NewBitPRP(key Key, widthBits uint) (*BitPRP, error) {
	if widthBits < 1 || widthBits > 64 {
		return nil, fmt.Errorf("cipherx: BitPRP width %d out of range 1..64", widthBits)
	}
	b, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	even := widthBits
	if even%2 == 1 {
		even++
	}
	if even < 2 {
		even = 2
	}
	return &BitPRP{
		width:    widthBits,
		halfBits: even / 2,
		halfMask: mask64(even / 2),
		domMask:  mask64(widthBits),
		rounds:   feistelRounds,
		block:    b,
	}, nil
}

func mask64(bits uint) uint64 {
	if bits == 0 {
		return 0
	}
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<bits - 1
}

// BlockBits returns the domain width in bits.
func (p *BitPRP) BlockBits() uint { return p.width }

// prpScratch holds the AES input/output blocks for one permutation
// call. The slices handed to cipher.Block.Encrypt escape through the
// interface, so per-round stack arrays would heap-allocate twice per
// AES invocation — 20 allocations per Feistel pass on the hottest path
// in index building. Pooling one scratch per EncryptBits/DecryptBits
// call keeps the round function allocation-free and the PRP safe for
// concurrent use.
type prpScratch struct{ in, out [16]byte }

var prpScratchPool = sync.Pool{New: func() any { return new(prpScratch) }}

// roundF is the Feistel round function: AES(round ∥ width ∥ half)
// truncated to half width. AES under a secret key is a PRF on distinct
// inputs; the round counter and width domain-separate rounds and
// instances.
func (p *BitPRP) roundF(round int, half uint64, s *prpScratch) uint64 {
	s.in[0] = byte(round)
	s.in[1] = byte(p.width)
	binary.BigEndian.PutUint64(s.in[8:], half)
	p.block.Encrypt(s.out[:], s.in[:])
	return binary.BigEndian.Uint64(s.out[:8]) & p.halfMask
}

// feistelOnce applies the balanced Feistel network forward over the
// rounded-up even width.
func (p *BitPRP) feistelOnce(x uint64, s *prpScratch) uint64 {
	l := (x >> p.halfBits) & p.halfMask
	r := x & p.halfMask
	for i := 0; i < p.rounds; i++ {
		l, r = r, l^p.roundF(i, r, s)
	}
	return l<<p.halfBits | r
}

// feistelOnceInv applies the network backward.
func (p *BitPRP) feistelOnceInv(x uint64, s *prpScratch) uint64 {
	l := (x >> p.halfBits) & p.halfMask
	r := x & p.halfMask
	for i := p.rounds - 1; i >= 0; i-- {
		l, r = r^p.roundF(i, l, s), l
	}
	return l<<p.halfBits | r
}

// EncryptBits applies the permutation. Bits above the width must be zero.
func (p *BitPRP) EncryptBits(x uint64) uint64 {
	if x&^p.domMask != 0 {
		panic(fmt.Sprintf("cipherx: value %#x exceeds %d-bit domain", x, p.width))
	}
	s := prpScratchPool.Get().(*prpScratch)
	// Cycle-walk: the Feistel domain may be one bit wider than ours; keep
	// applying the permutation until the result falls back inside. The
	// walk re-enters the domain because the cycle containing x does.
	y := p.feistelOnce(x, s)
	for y&^p.domMask != 0 {
		y = p.feistelOnce(y, s)
	}
	prpScratchPool.Put(s)
	return y
}

// DecryptBits inverts EncryptBits.
func (p *BitPRP) DecryptBits(x uint64) uint64 {
	if x&^p.domMask != 0 {
		panic(fmt.Sprintf("cipherx: value %#x exceeds %d-bit domain", x, p.width))
	}
	s := prpScratchPool.Get().(*prpScratch)
	y := p.feistelOnceInv(x, s)
	for y&^p.domMask != 0 {
		y = p.feistelOnceInv(y, s)
	}
	prpScratchPool.Put(s)
	return y
}

// ByteCipher is a deterministic keyed permutation over fixed-length byte
// chunks, the form used for Stage-1 ECB over raw symbol chunks.
type ByteCipher interface {
	// ChunkLen returns the chunk length in bytes.
	ChunkLen() int
	// Encrypt writes the permuted chunk into dst. len(src) and len(dst)
	// must both equal ChunkLen; dst may alias src.
	Encrypt(dst, src []byte)
	// Decrypt inverts Encrypt with the same length contract.
	Decrypt(dst, src []byte)
}

// bitByteCipher adapts a BitPRP to byte chunks of length <= 8.
type bitByteCipher struct {
	prp *BitPRP
	n   int
}

func (c *bitByteCipher) ChunkLen() int { return c.n }

func (c *bitByteCipher) Encrypt(dst, src []byte) {
	c.checkLens(dst, src)
	putUintBE(dst, c.prp.EncryptBits(uintBE(src)), c.n)
}

func (c *bitByteCipher) Decrypt(dst, src []byte) {
	c.checkLens(dst, src)
	putUintBE(dst, c.prp.DecryptBits(uintBE(src)), c.n)
}

func (c *bitByteCipher) checkLens(dst, src []byte) {
	if len(dst) != c.n || len(src) != c.n {
		panic(fmt.Sprintf("cipherx: chunk length must be %d (dst %d, src %d)", c.n, len(dst), len(src)))
	}
}

func uintBE(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func putUintBE(b []byte, v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// aesECBCipher is AES applied to exactly one 16-byte chunk — true ECB.
type aesECBCipher struct {
	block cipher.Block
}

func (c *aesECBCipher) ChunkLen() int { return aes.BlockSize }

func (c *aesECBCipher) Encrypt(dst, src []byte) {
	if len(dst) != aes.BlockSize || len(src) != aes.BlockSize {
		panic("cipherx: AES-ECB chunk must be 16 bytes")
	}
	c.block.Encrypt(dst, src)
}

func (c *aesECBCipher) Decrypt(dst, src []byte) {
	if len(dst) != aes.BlockSize || len(src) != aes.BlockSize {
		panic("cipherx: AES-ECB chunk must be 16 bytes")
	}
	c.block.Decrypt(dst, src)
}

// byteFeistelCipher is a balanced Feistel network over byte strings of
// arbitrary fixed length >= 2, with an HMAC-SHA256-based round function
// extended in counter mode to the half length. It covers chunk lengths
// between 9 and 15 bytes and lengths above 16 that are not AES blocks.
type byteFeistelCipher struct {
	n      int
	lh     int // left half length (ceil)
	rh     int // right half length (floor)
	rounds int
	macKey [32]byte
	// scratch pools the per-call working state: the two halves, the PRF
	// output buffer, and a keyed HMAC whose Reset restores precomputed
	// pads. Without it every chunk paid 3 slice allocations plus an
	// hmac.New (4 more) per PRF round — on the Stage-1 hot path that is
	// tens of allocations per chunk.
	scratch sync.Pool
}

// feistelScratch is one pooled working set of a byteFeistelCipher call.
type feistelScratch struct {
	l, r, tmp []byte
	mac       hash.Hash
	sum       []byte
}

func newByteFeistel(key Key, n int) *byteFeistelCipher {
	c := &byteFeistelCipher{
		n:      n,
		lh:     (n + 1) / 2,
		rh:     n / 2,
		rounds: feistelRounds,
	}
	sub := DeriveKey(key, "byte-feistel")
	copy(c.macKey[:], sub[:])
	c.scratch.New = func() any {
		return &feistelScratch{
			l:   make([]byte, c.lh),
			r:   make([]byte, c.rh),
			tmp: make([]byte, c.lh),
			mac: hmac.New(sha256.New, c.macKey[:]),
			sum: make([]byte, 0, sha256.Size),
		}
	}
	return c
}

func (c *byteFeistelCipher) ChunkLen() int { return c.n }

// prf fills out with a keystream derived from (round, in).
func (c *byteFeistelCipher) prf(s *feistelScratch, round int, in, out []byte) {
	var ctr uint32
	off := 0
	for off < len(out) {
		s.mac.Reset()
		var hdr [9]byte
		hdr[0] = byte(round)
		binary.BigEndian.PutUint32(hdr[1:5], uint32(c.n))
		binary.BigEndian.PutUint32(hdr[5:9], ctr)
		s.mac.Write(hdr[:])
		s.mac.Write(in)
		s.sum = s.mac.Sum(s.sum[:0])
		off += copy(out[off:], s.sum)
		ctr++
	}
}

// Encrypt applies the network. For unequal half lengths we use the
// alternating unbalanced Feistel: even rounds XOR a PRF of the right half
// into the left half, odd rounds the reverse. Each round is trivially
// invertible, so the composition is a permutation.
func (c *byteFeistelCipher) Encrypt(dst, src []byte) {
	c.checkLens(dst, src)
	s := c.scratch.Get().(*feistelScratch)
	l, r := s.l, s.r
	copy(l, src[:c.lh])
	copy(r, src[c.lh:])
	for i := 0; i < c.rounds; i++ {
		if i%2 == 0 {
			c.prf(s, i, r, s.tmp[:c.lh])
			for j := range l {
				l[j] ^= s.tmp[j]
			}
		} else {
			c.prf(s, i, l, s.tmp[:c.rh])
			for j := range r {
				r[j] ^= s.tmp[j]
			}
		}
	}
	copy(dst, l)
	copy(dst[c.lh:], r)
	c.scratch.Put(s)
}

// Decrypt inverts Encrypt by replaying rounds in reverse order.
func (c *byteFeistelCipher) Decrypt(dst, src []byte) {
	c.checkLens(dst, src)
	s := c.scratch.Get().(*feistelScratch)
	l, r := s.l, s.r
	copy(l, src[:c.lh])
	copy(r, src[c.lh:])
	for i := c.rounds - 1; i >= 0; i-- {
		if i%2 == 0 {
			c.prf(s, i, r, s.tmp[:c.lh])
			for j := range l {
				l[j] ^= s.tmp[j]
			}
		} else {
			c.prf(s, i, l, s.tmp[:c.rh])
			for j := range r {
				r[j] ^= s.tmp[j]
			}
		}
	}
	copy(dst, l)
	copy(dst[c.lh:], r)
	c.scratch.Put(s)
}

func (c *byteFeistelCipher) checkLens(dst, src []byte) {
	if len(dst) != c.n || len(src) != c.n {
		panic(fmt.Sprintf("cipherx: chunk length must be %d (dst %d, src %d)", c.n, len(dst), len(src)))
	}
}

// NewByteCipher returns a deterministic permutation over chunks of exactly
// chunkLen bytes:
//
//   - 1..8 bytes: BitPRP over 8*chunkLen bits,
//   - 16 bytes: AES-256 in true ECB (one chunk = one block),
//   - anything else >= 2: byte-level Feistel network.
func NewByteCipher(key Key, chunkLen int) (ByteCipher, error) {
	switch {
	case chunkLen < 1:
		return nil, fmt.Errorf("cipherx: invalid chunk length %d", chunkLen)
	case chunkLen <= 8:
		prp, err := NewBitPRP(key, uint(chunkLen)*8)
		if err != nil {
			return nil, err
		}
		return &bitByteCipher{prp: prp, n: chunkLen}, nil
	case chunkLen == aes.BlockSize:
		b, err := aes.NewCipher(key[:])
		if err != nil {
			return nil, err
		}
		return &aesECBCipher{block: b}, nil
	default:
		return newByteFeistel(key, chunkLen), nil
	}
}
