package cipherx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"hash"
	"sync"
)

// RecordCipher is the strong, authenticated encryption applied to whole
// records at the record store site. No searching is possible under it;
// all search capability lives in the separately encoded index records.
//
// Construction: SIV-style deterministic authenticated encryption.
// The synthetic IV is HMAC-SHA256(macKey, ad ∥ plaintext) truncated to 16
// bytes; the plaintext is encrypted with AES-256-CTR under encKey using
// the SIV as the initial counter block; the SIV doubles as the
// authentication tag, verified on open by recomputing it from the
// decrypted plaintext. Determinism makes tests and replication
// reproducible and is safe here because each record is sealed once under
// a per-file key with its RID as associated data.
type RecordCipher struct {
	macKey Key
	// block is the AES-256 key schedule, expanded once at construction —
	// expanding it per Seal/Open would dominate small-record cost.
	block cipher.Block
	// macs pools keyed HMAC states (with their Sum scratch): after the
	// first use an HMAC Reset restores the precomputed pads, so a pooled
	// state makes the per-record MAC allocation-free.
	macs sync.Pool
}

// recordMAC is one pooled HMAC state plus its digest scratch.
type recordMAC struct {
	mac hash.Hash
	sum []byte
}

// sivSize is the synthetic IV / tag length in bytes.
const sivSize = 16

// ErrAuth reports a failed authenticity check on Open.
var ErrAuth = errors.New("cipherx: record authentication failed")

// NewRecordCipher derives independent encryption and MAC subkeys from key.
func NewRecordCipher(key Key) *RecordCipher {
	encKey := DeriveKey(key, "record-enc")
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		panic("cipherx: aes.NewCipher: " + err.Error())
	}
	rc := &RecordCipher{
		macKey: DeriveKey(key, "record-mac"),
		block:  block,
	}
	rc.macs.New = func() any {
		return &recordMAC{
			mac: hmac.New(sha256.New, rc.macKey[:]),
			sum: make([]byte, 0, sha256.Size),
		}
	}
	return rc
}

// Overhead returns the ciphertext expansion in bytes.
func (rc *RecordCipher) Overhead() int { return sivSize }

func (rc *RecordCipher) siv(ad, plaintext []byte) [sivSize]byte {
	m := rc.macs.Get().(*recordMAC)
	m.mac.Reset()
	var lenAD [8]byte
	putUintBE(lenAD[:], uint64(len(ad)), 8)
	m.mac.Write(lenAD[:])
	m.mac.Write(ad)
	m.mac.Write(plaintext)
	m.sum = m.mac.Sum(m.sum[:0])
	var iv [sivSize]byte
	copy(iv[:], m.sum)
	rc.macs.Put(m)
	return iv
}

func (rc *RecordCipher) ctr(iv [sivSize]byte, dst, src []byte) {
	stream := cipher.NewCTR(rc.block, iv[:])
	stream.XORKeyStream(dst, src)
}

// Seal encrypts plaintext bound to the associated data ad (typically the
// record identifier). The result is tag ∥ ciphertext.
func (rc *RecordCipher) Seal(ad, plaintext []byte) []byte {
	iv := rc.siv(ad, plaintext)
	out := make([]byte, sivSize+len(plaintext))
	copy(out, iv[:])
	rc.ctr(iv, out[sivSize:], plaintext)
	return out
}

// Open authenticates and decrypts a sealed record. It returns ErrAuth if
// the ciphertext or associated data was modified.
func (rc *RecordCipher) Open(ad, sealed []byte) ([]byte, error) {
	if len(sealed) < sivSize {
		return nil, ErrAuth
	}
	var iv [sivSize]byte
	copy(iv[:], sealed[:sivSize])
	plaintext := make([]byte, len(sealed)-sivSize)
	rc.ctr(iv, plaintext, sealed[sivSize:])
	want := rc.siv(ad, plaintext)
	if subtle.ConstantTimeCompare(iv[:], want[:]) != 1 {
		return nil, ErrAuth
	}
	return plaintext, nil
}
