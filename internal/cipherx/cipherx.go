// Package cipherx supplies the cryptographic primitives of the encrypted
// searchable SDDS:
//
//   - deterministic "ECB-style" chunk ciphers — keyed pseudorandom
//     permutations applied independently to each index-record chunk, so
//     that equal plaintext chunks encrypt to equal ciphertext chunks and
//     substring search degenerates to matching encrypted chunk runs
//     (Stage 1 of the paper's scheme);
//   - strong, authenticated record encryption for the record store site
//     (AES-CTR with an SIV-style synthetic IV and HMAC-SHA256
//     authentication), under which no searching is possible; and
//   - key derivation, so a single client master key yields independent
//     subkeys per file and per chunking.
//
// Chunk widths in the scheme are small (a chunk of s symbols encoded into
// one of n code values occupies only a few bits), far below the 128-bit
// AES block. For those widths the package provides a balanced Feistel
// network over the bit string with an AES-based round function — the
// standard construction for a small-domain PRP. For widths that are a
// multiple of 128 bits, plain AES-ECB is used directly.
package cipherx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// KeySize is the size in bytes of all keys accepted by this package.
const KeySize = 32

// Key is a 256-bit secret key.
type Key [KeySize]byte

// ErrBadKey reports a malformed key.
var ErrBadKey = errors.New("cipherx: key must be 32 bytes")

// KeyFromBytes copies b into a Key. b must be exactly KeySize bytes.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, ErrBadKey
	}
	copy(k[:], b)
	return k, nil
}

// KeyFromPassphrase derives a Key from an arbitrary passphrase. This is a
// convenience for examples and tools; production deployments should supply
// uniformly random keys.
func KeyFromPassphrase(passphrase string) Key {
	var k Key
	sum := sha256.Sum256([]byte("esdds-passphrase-v1\x00" + passphrase))
	copy(k[:], sum[:])
	return k
}

// DeriveKey derives an independent subkey from master for the given label.
// Distinct labels yield (computationally) independent keys; the
// construction is HMAC-SHA256(master, label), a one-step HKDF-Expand.
func DeriveKey(master Key, label string) Key {
	mac := hmac.New(sha256.New, master[:])
	mac.Write([]byte(label))
	var k Key
	copy(k[:], mac.Sum(nil))
	return k
}

// DeriveKeyN derives a numbered subkey, e.g. one key per chunking or per
// dispersal site.
func DeriveKeyN(master Key, label string, n uint32) Key {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], n)
	return DeriveKey(master, label+"\x00"+string(buf[:]))
}
