// Package gf implements arithmetic in binary Galois fields GF(2^g) for
// 1 <= g <= 16, together with vector and matrix operations over those
// fields.
//
// The package serves two consumers in this repository:
//
//   - Stage-3 dispersion of index records (an invertible k×k matrix over
//     GF(2^g) splits each chunk into k pieces stored on k sites), and
//   - LH*RS-style parity groups, which use Reed–Solomon coding over
//     GF(2^16).
//
// Fields are represented by log/antilog tables generated from a fixed
// primitive polynomial per width, so multiplication and division are two
// table lookups and one addition. All operations are constant-time in the
// size of the field element and allocation-free.
package gf

import "fmt"

// Elem is a field element. Only the low g bits are significant for a
// field GF(2^g); the remaining bits must be zero.
type Elem uint32

// primitivePolys[g] is a primitive polynomial of degree g over GF(2),
// written with the leading x^g term included. These are the conventional
// choices (e.g. 0x11D for GF(2^8) as used by Reed–Solomon codes and
// 0x1100B for GF(2^16) as used by LH*RS).
var primitivePolys = [17]uint32{
	0,       // g=0: unused
	0x3,     // x + 1
	0x7,     // x^2 + x + 1
	0xB,     // x^3 + x + 1
	0x13,    // x^4 + x + 1
	0x25,    // x^5 + x^2 + 1
	0x43,    // x^6 + x + 1
	0x89,    // x^7 + x^3 + 1
	0x11D,   // x^8 + x^4 + x^3 + x^2 + 1
	0x211,   // x^9 + x^4 + 1
	0x409,   // x^10 + x^3 + 1
	0x805,   // x^11 + x^2 + 1
	0x1053,  // x^12 + x^6 + x^4 + x + 1
	0x201B,  // x^13 + x^4 + x^3 + x + 1
	0x4143,  // x^14 + x^8 + x^6 + x + 1
	0x8003,  // x^15 + x + 1
	0x1100B, // x^16 + x^12 + x^3 + x + 1
}

// Field holds the tables for one GF(2^g).
type Field struct {
	g    uint     // field width in bits
	size uint32   // 2^g
	mask uint32   // 2^g - 1
	poly uint32   // primitive polynomial (with leading term)
	log  []uint32 // log[a] for a != 0: discrete log base alpha
	exp  []Elem   // exp[i] = alpha^i, doubled to avoid a mod
}

var fieldCache [17]*Field

// New returns the field GF(2^g). Fields are cached and immutable, so the
// returned pointer may be shared freely between goroutines.
func New(g uint) (*Field, error) {
	if g < 1 || g > 16 {
		return nil, fmt.Errorf("gf: unsupported field width %d (want 1..16)", g)
	}
	if f := fieldCache[g]; f != nil {
		return f, nil
	}
	f := &Field{
		g:    g,
		size: 1 << g,
		mask: 1<<g - 1,
		poly: primitivePolys[g],
	}
	f.buildTables()
	fieldCache[g] = f
	return f, nil
}

// MustNew is New but panics on an invalid width. Use for package-level
// initialization with constant widths.
func MustNew(g uint) *Field {
	f, err := New(g)
	if err != nil {
		panic(err)
	}
	return f
}

func (f *Field) buildTables() {
	n := int(f.size)
	f.log = make([]uint32, n)
	f.exp = make([]Elem, 2*n) // doubled so exp[log a + log b] needs no mod
	x := uint32(1)
	for i := 0; i < n-1; i++ {
		f.exp[i] = Elem(x)
		f.log[x] = uint32(i)
		x <<= 1
		if x&f.size != 0 {
			x ^= f.poly
		}
	}
	// Extend the exp table for the no-mod multiplication trick.
	for i := n - 1; i < 2*n; i++ {
		f.exp[i] = f.exp[i-(n-1)]
	}
}

// Width returns g, the field width in bits.
func (f *Field) Width() uint { return f.g }

// Size returns 2^g, the number of field elements.
func (f *Field) Size() uint32 { return f.size }

// Mask returns 2^g - 1.
func (f *Field) Mask() uint32 { return f.mask }

// Valid reports whether a fits in the field.
func (f *Field) Valid(a Elem) bool { return uint32(a)&^f.mask == 0 }

// Add returns a + b. In characteristic 2 addition and subtraction are both
// XOR, so Sub is the same operation.
func (f *Field) Add(a, b Elem) Elem { return a ^ b }

// Sub returns a - b (identical to Add in GF(2^g)).
func (f *Field) Sub(a, b Elem) Elem { return a ^ b }

// Mul returns a * b.
func (f *Field) Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a / b. Division by zero panics, mirroring integer division.
func (f *Field) Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	la, lb := f.log[a], f.log[b]
	if la < lb {
		la += f.size - 1
	}
	return f.exp[la-lb]
}

// Inv returns the multiplicative inverse of a. Inverting zero panics.
func (f *Field) Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.exp[(f.size-1)-f.log[a]]
}

// Exp returns alpha^i for the field generator alpha.
func (f *Field) Exp(i uint32) Elem { return f.exp[i%(f.size-1)] }

// Log returns the discrete logarithm of a base alpha. Log of zero panics.
func (f *Field) Log(a Elem) uint32 {
	if a == 0 {
		panic("gf: log of zero")
	}
	return f.log[a]
}

// Pow returns a^n (with a^0 == 1, including 0^0 == 1 by convention).
func (f *Field) Pow(a Elem, n uint32) Elem {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := uint64(f.log[a]) * uint64(n)
	return f.exp[uint32(l%uint64(f.size-1))]
}

// MulSlice computes dst[i] = c * src[i] for all i. dst and src must have
// equal length; dst may alias src.
func (f *Field) MulSlice(dst, src []Elem, c Elem) {
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	lc := f.log[c]
	for i, a := range src {
		if a == 0 {
			dst[i] = 0
		} else {
			dst[i] = f.exp[f.log[a]+lc]
		}
	}
}

// AddMulSlice computes dst[i] ^= c * src[i] for all i — the core
// Reed–Solomon inner loop.
func (f *Field) AddMulSlice(dst, src []Elem, c Elem) {
	if len(dst) != len(src) {
		panic("gf: AddMulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	lc := f.log[c]
	for i, a := range src {
		if a != 0 {
			dst[i] ^= f.exp[f.log[a]+lc]
		}
	}
}

// DotVec returns the inner product of two equal-length vectors.
func (f *Field) DotVec(a, b []Elem) Elem {
	if len(a) != len(b) {
		panic("gf: DotVec length mismatch")
	}
	var acc Elem
	for i := range a {
		acc ^= f.Mul(a[i], b[i])
	}
	return acc
}
