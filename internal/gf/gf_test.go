package gf

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadWidths(t *testing.T) {
	for _, g := range []uint{0, 17, 32} {
		if _, err := New(g); err == nil {
			t.Errorf("New(%d): want error, got nil", g)
		}
	}
}

func TestNewCachesFields(t *testing.T) {
	a, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("New(8) returned distinct instances; want cached pointer")
	}
}

func TestFieldBasics(t *testing.T) {
	f := MustNew(8)
	if f.Width() != 8 {
		t.Errorf("Width = %d, want 8", f.Width())
	}
	if f.Size() != 256 {
		t.Errorf("Size = %d, want 256", f.Size())
	}
	if f.Mask() != 255 {
		t.Errorf("Mask = %d, want 255", f.Mask())
	}
	if !f.Valid(255) || f.Valid(256) {
		t.Error("Valid misclassifies boundary elements")
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for _, g := range []uint{2, 4, 8, 12, 16} {
		f := MustNew(g)
		for a := Elem(1); uint32(a) < f.Size(); a++ {
			if got := f.Exp(f.Log(a)); got != a {
				t.Fatalf("GF(2^%d): Exp(Log(%d)) = %d", g, a, got)
			}
		}
	}
}

func TestGeneratorHasFullOrder(t *testing.T) {
	// alpha must generate all nonzero elements: the exp table over
	// [0, 2^g-1) must hit every nonzero element exactly once.
	for g := uint(1); g <= 16; g++ {
		f := MustNew(g)
		seen := make(map[Elem]bool)
		for i := uint32(0); i < f.Size()-1; i++ {
			e := f.Exp(i)
			if e == 0 {
				t.Fatalf("GF(2^%d): alpha^%d = 0", g, i)
			}
			if seen[e] {
				t.Fatalf("GF(2^%d): alpha^%d repeats element %d — polynomial not primitive", g, i, e)
			}
			seen[e] = true
		}
		if len(seen) != int(f.Size()-1) {
			t.Fatalf("GF(2^%d): generator order %d, want %d", g, len(seen), f.Size()-1)
		}
	}
}

func TestMulTableSmallField(t *testing.T) {
	// GF(4) with x^2+x+1: multiplication table is fully known.
	f := MustNew(2)
	want := [4][4]Elem{
		{0, 0, 0, 0},
		{0, 1, 2, 3},
		{0, 2, 3, 1},
		{0, 3, 1, 2},
	}
	for a := Elem(0); a < 4; a++ {
		for b := Elem(0); b < 4; b++ {
			if got := f.Mul(a, b); got != want[a][b] {
				t.Errorf("GF(4): %d*%d = %d, want %d", a, b, got, want[a][b])
			}
		}
	}
}

func TestMulDivInverse(t *testing.T) {
	f := MustNew(8)
	for a := Elem(1); uint32(a) < f.Size(); a++ {
		inv := f.Inv(a)
		if f.Mul(a, inv) != 1 {
			t.Fatalf("a * Inv(a) != 1 for a=%d", a)
		}
		for _, b := range []Elem{1, 2, 7, 100, 255} {
			if f.Div(f.Mul(a, b), b) != a {
				t.Fatalf("(a*b)/b != a for a=%d b=%d", a, b)
			}
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	f := MustNew(8)
	assertPanics(t, "Div", func() { f.Div(1, 0) })
	assertPanics(t, "Inv", func() { f.Inv(0) })
	assertPanics(t, "Log", func() { f.Log(0) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestPow(t *testing.T) {
	f := MustNew(8)
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 != 1")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("0^5 != 0")
	}
	for _, a := range []Elem{1, 2, 3, 87, 255} {
		p := Elem(1)
		for n := uint32(0); n < 520; n++ {
			if got := f.Pow(a, n); got != p {
				t.Fatalf("Pow(%d, %d) = %d, want %d", a, n, got, p)
			}
			p = f.Mul(p, a)
		}
	}
}

// Property: field axioms hold for random triples in GF(2^8) and GF(2^16).
func TestFieldAxiomsQuick(t *testing.T) {
	for _, g := range []uint{8, 16} {
		f := MustNew(g)
		mask := Elem(f.Mask())
		axioms := func(x, y, z uint32) bool {
			a, b, c := Elem(x)&mask, Elem(y)&mask, Elem(z)&mask
			// Commutativity.
			if f.Add(a, b) != f.Add(b, a) || f.Mul(a, b) != f.Mul(b, a) {
				return false
			}
			// Associativity.
			if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
				return false
			}
			if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
				return false
			}
			// Distributivity.
			if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
				return false
			}
			// Identities.
			if f.Add(a, 0) != a || f.Mul(a, 1) != a {
				return false
			}
			// Additive inverse (self-inverse in char 2).
			return f.Add(a, a) == 0
		}
		if err := quick.Check(axioms, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("GF(2^%d) axioms: %v", g, err)
		}
	}
}

func TestMulSliceAndAddMulSlice(t *testing.T) {
	f := MustNew(8)
	src := []Elem{0, 1, 2, 3, 100, 255}
	dst := make([]Elem, len(src))
	f.MulSlice(dst, src, 7)
	for i := range src {
		if dst[i] != f.Mul(src[i], 7) {
			t.Fatalf("MulSlice[%d] = %d, want %d", i, dst[i], f.Mul(src[i], 7))
		}
	}
	acc := []Elem{9, 9, 9, 9, 9, 9}
	f.AddMulSlice(acc, src, 3)
	for i := range src {
		want := Elem(9) ^ f.Mul(src[i], 3)
		if acc[i] != want {
			t.Fatalf("AddMulSlice[%d] = %d, want %d", i, acc[i], want)
		}
	}
	// c == 0 leaves dst untouched for AddMul, zeroes it for Mul.
	f.AddMulSlice(acc, src, 0)
	f.MulSlice(dst, src, 0)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatal("MulSlice by zero should zero dst")
		}
	}
}

func TestMulSliceByZeroZeroes(t *testing.T) {
	f := MustNew(8)
	dst := []Elem{1, 2, 3}
	f.MulSlice(dst, []Elem{4, 5, 6}, 0)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("MulSlice(c=0) must zero dst")
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	f := MustNew(8)
	assertPanics(t, "MulSlice", func() { f.MulSlice(make([]Elem, 2), make([]Elem, 3), 1) })
	assertPanics(t, "AddMulSlice", func() { f.AddMulSlice(make([]Elem, 2), make([]Elem, 3), 1) })
	assertPanics(t, "DotVec", func() { f.DotVec(make([]Elem, 2), make([]Elem, 3)) })
}

func TestDotVec(t *testing.T) {
	f := MustNew(8)
	a := []Elem{1, 2, 3}
	b := []Elem{4, 5, 6}
	want := f.Mul(1, 4) ^ f.Mul(2, 5) ^ f.Mul(3, 6)
	if got := f.DotVec(a, b); got != want {
		t.Errorf("DotVec = %d, want %d", got, want)
	}
}
