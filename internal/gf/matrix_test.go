package gf

import (
	"testing"
	"testing/quick"
)

// xorshift32 gives the tests a cheap deterministic source.
func xorshift32(seed uint32) func() uint32 {
	s := seed
	if s == 0 {
		s = 0x9e3779b9
	}
	return func() uint32 {
		s ^= s << 13
		s ^= s >> 17
		s ^= s << 5
		return s
	}
}

func TestIdentityMulVec(t *testing.T) {
	f := MustNew(8)
	id := Identity(f, 4)
	v := []Elem{10, 20, 30, 40}
	got := id.MulVec(v)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("I*v changed the vector: %v -> %v", v, got)
		}
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	f := MustNew(8)
	m, err := RandomNonsingular(f, 5, xorshift32(1))
	if err != nil {
		t.Fatal(err)
	}
	id := Identity(f, 5)
	if !m.Mul(id).Equal(m) || !id.Mul(m).Equal(m) {
		t.Error("M*I or I*M != M")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, g := range []uint{4, 8, 16} {
		f := MustNew(g)
		for k := 1; k <= 6; k++ {
			m, err := RandomNonsingular(f, k, xorshift32(uint32(g*100+uint(k))))
			if err != nil {
				t.Fatal(err)
			}
			inv, err := m.Inverse()
			if err != nil {
				t.Fatalf("GF(2^%d) k=%d: %v", g, k, err)
			}
			if !m.Mul(inv).Equal(Identity(f, k)) {
				t.Errorf("GF(2^%d) k=%d: M * M^-1 != I", g, k)
			}
			if !inv.Mul(m).Equal(Identity(f, k)) {
				t.Errorf("GF(2^%d) k=%d: M^-1 * M != I", g, k)
			}
		}
	}
}

func TestSingularMatrixDetected(t *testing.T) {
	f := MustNew(8)
	m := NewMatrix(f, 3, 3)
	// Row 2 = row 0 + row 1 makes the matrix singular.
	vals := [2][3]Elem{{1, 2, 3}, {4, 5, 6}}
	for c := 0; c < 3; c++ {
		m.Set(0, c, vals[0][c])
		m.Set(1, c, vals[1][c])
		m.Set(2, c, vals[0][c]^vals[1][c])
	}
	if m.IsNonsingular() {
		t.Error("linearly dependent rows reported nonsingular")
	}
	if _, err := m.Inverse(); err != ErrSingular {
		t.Errorf("Inverse err = %v, want ErrSingular", err)
	}
}

func TestNonSquareInverseFails(t *testing.T) {
	f := MustNew(8)
	m := NewMatrix(f, 2, 3)
	if _, err := m.Inverse(); err == nil {
		t.Error("inverting a 2x3 matrix should fail")
	}
	if m.IsNonsingular() {
		t.Error("non-square matrix cannot be nonsingular")
	}
}

func TestCauchyPropertiesAndShape(t *testing.T) {
	f := MustNew(8)
	for k := 1; k <= 8; k++ {
		m, err := Cauchy(f, k)
		if err != nil {
			t.Fatalf("Cauchy k=%d: %v", k, err)
		}
		if !m.IsNonsingular() {
			t.Errorf("Cauchy k=%d singular", k)
		}
		for r := 0; r < k; r++ {
			for c := 0; c < k; c++ {
				if m.At(r, c) == 0 {
					t.Errorf("Cauchy k=%d has zero entry at (%d,%d)", k, r, c)
				}
			}
		}
	}
	// Too large for the field must fail.
	small := MustNew(2)
	if _, err := Cauchy(small, 2); err == nil {
		t.Error("Cauchy over GF(4) with k=2 needs 2k<4; want error")
	}
}

func TestVandermondeNonsingular(t *testing.T) {
	f := MustNew(8)
	for k := 1; k <= 6; k++ {
		m, err := Vandermonde(f, k, k)
		if err != nil {
			t.Fatal(err)
		}
		if !m.IsNonsingular() {
			t.Errorf("square Vandermonde k=%d singular", k)
		}
	}
	if _, err := Vandermonde(MustNew(2), 4, 4); err == nil {
		t.Error("Vandermonde with repeated points should fail")
	}
}

func TestRandomNonsingularDense(t *testing.T) {
	f := MustNew(4)
	m, err := RandomNonsingularDense(f, 4, xorshift32(7))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsNonsingular() {
		t.Error("dense sample singular")
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if m.At(r, c) == 0 {
				t.Errorf("zero entry at (%d,%d)", r, c)
			}
		}
	}
}

func TestRandomNonsingularDenseImpossible(t *testing.T) {
	// Over GF(2) a 2x2 all-nonzero matrix is all-ones and singular.
	if _, err := RandomNonsingularDense(MustNew(1), 2, xorshift32(3)); err == nil {
		t.Error("want error for impossible dense dimension")
	}
}

// Property: dispersal round trip — for random vectors v and a fixed
// nonsingular E, (v*E)*E^-1 == v. This is the exact Stage-3 invariant.
func TestDispersalRoundTripQuick(t *testing.T) {
	f := MustNew(4)
	e, err := RandomNonsingularDense(f, 4, xorshift32(99))
	if err != nil {
		t.Fatal(err)
	}
	inv, err := e.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c, d uint8) bool {
		v := []Elem{Elem(a) & 15, Elem(b) & 15, Elem(c) & 15, Elem(d) & 15}
		back := inv.MulVec(e.MulVec(v))
		for i := range v {
			if back[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: MulVec is linear — (u+v)*E == u*E + v*E.
func TestMulVecLinearityQuick(t *testing.T) {
	f := MustNew(8)
	e, err := Cauchy(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a0, a1, a2, b0, b1, b2 uint8) bool {
		u := []Elem{Elem(a0), Elem(a1), Elem(a2)}
		v := []Elem{Elem(b0), Elem(b1), Elem(b2)}
		sum := []Elem{u[0] ^ v[0], u[1] ^ v[1], u[2] ^ v[2]}
		lhs := e.MulVec(sum)
		ue, ve := e.MulVec(u), e.MulVec(v)
		for i := range lhs {
			if lhs[i] != ue[i]^ve[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMulVecIntoMatchesMulVec(t *testing.T) {
	f := MustNew(8)
	m, err := Vandermonde(f, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	v := []Elem{7, 0, 200}
	want := m.MulVec(v)
	dst := make([]Elem, 5)
	// Pre-dirty dst to check it gets cleared.
	for i := range dst {
		dst[i] = 0xAA
	}
	m.MulVecInto(dst, v)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestShapeMismatchesPanic(t *testing.T) {
	f := MustNew(8)
	m := NewMatrix(f, 2, 3)
	assertPanics(t, "Mul", func() { m.Mul(NewMatrix(f, 2, 2)) })
	assertPanics(t, "MulVec", func() { m.MulVec([]Elem{1}) })
	assertPanics(t, "MulVecInto", func() { m.MulVecInto(make([]Elem, 2), []Elem{1, 2}) })
	assertPanics(t, "Set", func() { m.Set(0, 0, 256) })
	assertPanics(t, "NewMatrix", func() { NewMatrix(f, 0, 1) })
}

func TestMatrixString(t *testing.T) {
	f := MustNew(8)
	m := Identity(f, 2)
	if s := m.String(); s == "" {
		t.Error("String() empty")
	}
}
