package gf

import (
	"errors"
	"fmt"
)

// Matrix is a dense rows×cols matrix over a particular field. The zero
// Matrix is not usable; construct with NewMatrix or one of the generators.
type Matrix struct {
	f    *Field
	rows int
	cols int
	a    []Elem // row-major
}

// ErrSingular is returned when a matrix that must be invertible is not.
var ErrSingular = errors.New("gf: matrix is singular")

// NewMatrix returns a zero rows×cols matrix over f.
func NewMatrix(f *Field, rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{f: f, rows: rows, cols: cols, a: make([]Elem, rows*cols)}
}

// Identity returns the n×n identity matrix over f.
func Identity(f *Field, n int) *Matrix {
	m := NewMatrix(f, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Field returns the field the matrix is defined over.
func (m *Matrix) Field() *Field { return m.f }

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) Elem { return m.a[r*m.cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v Elem) {
	if !m.f.Valid(v) {
		panic(fmt.Sprintf("gf: element %#x out of range for GF(2^%d)", uint32(v), m.f.g))
	}
	m.a[r*m.cols+c] = v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.f, m.rows, m.cols)
	copy(n.a, m.a)
	return n
}

// Equal reports whether m and o have the same shape, field, and elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.f != o.f || m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.a {
		if m.a[i] != o.a[i] {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%0*x", (m.f.g+3)/4, uint32(m.At(r, c)))
		}
		s += "\n"
	}
	return s
}

// Mul returns m * o. The column count of m must equal the row count of o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("gf: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := NewMatrix(m.f, m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			v := m.At(r, k)
			if v == 0 {
				continue
			}
			lr := m.f.log[v]
			for c := 0; c < o.cols; c++ {
				w := o.At(k, c)
				if w != 0 {
					out.a[r*out.cols+c] ^= m.f.exp[lr+m.f.log[w]]
				}
			}
		}
	}
	return out
}

// MulVec returns the row vector v * m, the operation used by Stage-3
// dispersion: a chunk written as a row vector of k field elements times a
// k×k dispersal matrix. len(v) must equal m.Rows().
func (m *Matrix) MulVec(v []Elem) []Elem {
	out := make([]Elem, m.cols)
	m.MulVecInto(out, v)
	return out
}

// MulVecInto computes dst = v * m without allocating. len(v) must equal
// m.Rows() and len(dst) must equal m.Cols().
func (m *Matrix) MulVecInto(dst, v []Elem) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("gf: vector length %d does not match %d rows", len(v), m.rows))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("gf: dst length %d does not match %d cols", len(dst), m.cols))
	}
	for c := range dst {
		dst[c] = 0
	}
	for r, x := range v {
		if x == 0 {
			continue
		}
		lx := m.f.log[x]
		row := m.a[r*m.cols : (r+1)*m.cols]
		for c, w := range row {
			if w != 0 {
				dst[c] ^= m.f.exp[lx+m.f.log[w]]
			}
		}
	}
}

// Inverse returns m^-1 via Gauss–Jordan elimination, or ErrSingular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("gf: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	work := m.Clone()
	inv := Identity(m.f, n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			work.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		// Scale the pivot row to make the pivot 1.
		p := work.At(col, col)
		if p != 1 {
			ip := m.f.Inv(p)
			work.scaleRow(col, ip)
			inv.scaleRow(col, ip)
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := work.At(r, col)
			if factor == 0 {
				continue
			}
			work.addMulRow(r, col, factor)
			inv.addMulRow(r, col, factor)
		}
	}
	return inv, nil
}

// IsNonsingular reports whether m is square and invertible.
func (m *Matrix) IsNonsingular() bool {
	if m.rows != m.cols {
		return false
	}
	_, err := m.Inverse()
	return err == nil
}

func (m *Matrix) swapRows(r1, r2 int) {
	a := m.a[r1*m.cols : (r1+1)*m.cols]
	b := m.a[r2*m.cols : (r2+1)*m.cols]
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
}

func (m *Matrix) scaleRow(r int, c Elem) {
	row := m.a[r*m.cols : (r+1)*m.cols]
	m.f.MulSlice(row, row, c)
}

// addMulRow does row[dst] ^= c * row[src].
func (m *Matrix) addMulRow(dst, src int, c Elem) {
	d := m.a[dst*m.cols : (dst+1)*m.cols]
	s := m.a[src*m.cols : (src+1)*m.cols]
	m.f.AddMulSlice(d, s, c)
}

// Cauchy returns the k×k Cauchy matrix with entries 1/(x_i + y_j) where
// x_i = alpha^i and y_j = alpha^(k+j). Cauchy matrices over a field are
// always nonsingular and every entry is nonzero — the paper's preferred
// shape for a dispersal matrix E ("a good E seems to be one where all
// coefficients are nonzero"). Requires 2k < field size.
func Cauchy(f *Field, k int) (*Matrix, error) {
	if uint32(2*k) >= f.size {
		return nil, fmt.Errorf("gf: Cauchy needs 2k < 2^%d, got k=%d", f.g, k)
	}
	m := NewMatrix(f, k, k)
	for i := 0; i < k; i++ {
		xi := f.Exp(uint32(i))
		for j := 0; j < k; j++ {
			yj := f.Exp(uint32(k + j))
			if xi == yj {
				return nil, fmt.Errorf("gf: degenerate Cauchy points")
			}
			m.Set(i, j, f.Inv(xi^yj))
		}
	}
	return m, nil
}

// Vandermonde returns the rows×cols Vandermonde matrix with entries
// alpha^(i*j). The square version is nonsingular as long as the evaluation
// points alpha^i are distinct, i.e. rows <= 2^g - 1.
func Vandermonde(f *Field, rows, cols int) (*Matrix, error) {
	if uint32(rows) > f.size-1 {
		return nil, fmt.Errorf("gf: Vandermonde needs rows <= 2^%d-1, got %d", f.g, rows)
	}
	m := NewMatrix(f, rows, cols)
	for i := 0; i < rows; i++ {
		x := f.Exp(uint32(i))
		v := Elem(1)
		for j := 0; j < cols; j++ {
			m.Set(i, j, v)
			v = f.Mul(v, x)
		}
	}
	return m, nil
}

// RandomNonsingular returns a uniformly sampled nonsingular k×k matrix
// using the supplied deterministic source, retrying until invertible. The
// source is any function returning pseudorandom uint32s (e.g. a seeded
// xorshift); determinism keeps dispersal reproducible from a key.
func RandomNonsingular(f *Field, k int, next func() uint32) (*Matrix, error) {
	if k <= 0 {
		return nil, fmt.Errorf("gf: invalid dimension %d", k)
	}
	for attempt := 0; attempt < 256; attempt++ {
		m := NewMatrix(f, k, k)
		for i := range m.a {
			m.a[i] = Elem(next() & f.mask)
		}
		if m.IsNonsingular() {
			return m, nil
		}
	}
	return nil, errors.New("gf: failed to sample a nonsingular matrix")
}

// RandomNonsingularDense is RandomNonsingular constrained to matrices with
// no zero coefficients, matching the paper's recommendation for dispersal
// matrices (every output piece then depends on the whole chunk).
func RandomNonsingularDense(f *Field, k int, next func() uint32) (*Matrix, error) {
	if k <= 0 {
		return nil, fmt.Errorf("gf: invalid dimension %d", k)
	}
	if f.size == 2 && k > 1 {
		// Over GF(2) the only all-nonzero matrix is all-ones, singular
		// for k > 1.
		return nil, fmt.Errorf("gf: dense nonsingular %dx%d impossible over GF(2)", k, k)
	}
	for attempt := 0; attempt < 4096; attempt++ {
		m := NewMatrix(f, k, k)
		for i := range m.a {
			v := Elem(next() & f.mask)
			for v == 0 {
				v = Elem(next() & f.mask)
			}
			m.a[i] = v
		}
		if m.IsNonsingular() {
			return m, nil
		}
	}
	return nil, errors.New("gf: failed to sample a dense nonsingular matrix")
}
