package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/disperse"
)

// StorageRow quantifies the §2.5 trade-off for one chunking count M at
// fixed chunk size S: how much index storage a record costs, how long
// queries must be, and how many false positives searches suffer under
// the cheap (VerifyAny) and strict (VerifyAligned) combination rules.
type StorageRow struct {
	M int
	// Alignments is S/M, the series per (minimal) search.
	Alignments int
	// MinQueryLen is the minimal searchable substring length.
	MinQueryLen int
	// IndexBytes is the total index storage for the sample.
	IndexBytes int
	// StorageRatio is IndexBytes / total record bytes.
	StorageRatio float64
	// FPAny counts false-positive (query, record) pairs under VerifyAny
	// over the queries long enough for the minimal series.
	FPAny int
	// QueriesAny is the number of queries the FPAny column ran.
	QueriesAny int
	// FPAligned counts false positives under VerifyAligned over the
	// queries long enough for the full series (>= 2S-1 symbols).
	FPAligned int
	// QueriesAligned is the number of queries the FPAligned column ran.
	QueriesAligned int
}

// RunStorageTradeoff measures the §2.5 storage-versus-accuracy knob: at
// fixed S, every divisor M of S from 1 to S, with no Stage-2 encoding so
// all false positives come from chunk-granular matching alone.
func RunStorageTradeoff(sample *Corpus, s int) ([]StorageRow, error) {
	queries := lastNames(sample)
	var rows []StorageRow
	for m := 1; m <= s; m++ {
		if s%m != 0 {
			continue
		}
		row, err := runStorageRow(sample, s, m, queries)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runStorageRow(sample *Corpus, s, m int, queries [][]byte) (*StorageRow, error) {
	pl, err := core.NewPipeline(core.Params{
		Chunk:      chunk.Params{S: s, M: m},
		DisperseK:  1,
		MatrixKind: disperse.MatrixRandom,
		Key:        FPKey,
	})
	if err != nil {
		return nil, err
	}
	ix := core.NewMemIndex(pl)
	indexBytes, recordBytes := 0, 0
	for i, name := range sample.Names {
		if err := ix.Insert(uint64(i), name); err != nil {
			return nil, err
		}
		recordBytes += len(name)
		recs, err := pl.BuildIndex(uint64(i), name)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			for _, stream := range r.Streams {
				indexBytes += 2 * len(stream)
			}
		}
	}
	row := &StorageRow{
		M:            m,
		Alignments:   pl.Params().Chunk.Alignments(),
		MinQueryLen:  pl.MinQueryLen(),
		IndexBytes:   indexBytes,
		StorageRatio: float64(indexBytes) / float64(recordBytes),
	}
	fullMin := 2*s - 1
	for _, q := range queries {
		if len(q) >= row.MinQueryLen {
			row.QueriesAny++
			rids, err := ix.Search(q, core.VerifyAny)
			if err != nil {
				return nil, err
			}
			for _, rid := range rids {
				if !bytes.Contains(sample.Names[rid], q) {
					row.FPAny++
				}
			}
		}
		if len(q) >= fullMin {
			row.QueriesAligned++
			rids, err := ix.Search(q, core.VerifyAligned)
			if err != nil {
				return nil, err
			}
			for _, rid := range rids {
				if !bytes.Contains(sample.Names[rid], q) {
					row.FPAligned++
				}
			}
		}
	}
	return row, nil
}

// RenderStorage prints the trade-off table.
func RenderStorage(s int, rows []StorageRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Storage/accuracy trade-off at chunk size S=%d (§2.5)\n", s)
	fmt.Fprintf(&b, "  %-3s %6s %8s %10s %9s %9s %11s %9s\n",
		"M", "series", "min qry", "idx bytes", "ratio", "FP(any)", "FP(aligned)", "queries")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-3d %6d %8d %10d %8.2fx %9d %11d %5d/%d\n",
			r.M, r.Alignments, r.MinQueryLen, r.IndexBytes, r.StorageRatio,
			r.FPAny, r.FPAligned, r.QueriesAny, r.QueriesAligned)
	}
	return b.String()
}
