package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cipherx"
	"repro/internal/disperse"
	"repro/internal/encode"
	"repro/internal/stats"
)

// GramFreq is a decoded frequency-table row.
type GramFreq struct {
	Gram string
	Frac float64
}

// Table1 is the raw-directory analysis of the paper's Table 1.
type Table1 struct {
	ChiSingle, ChiDouble, ChiTriple float64
	TopSingles                      []GramFreq
	TopDoubles                      []GramFreq
	TopTriples                      []GramFreq
}

func decodeTop(counter *stats.NGramCounter, alphabet []byte, k int) []GramFreq {
	top := counter.Top(k)
	out := make([]GramFreq, len(top))
	for i, g := range top {
		b := make([]byte, len(g.Gram))
		for j, s := range g.Gram {
			b[j] = alphabet[s]
		}
		out[i] = GramFreq{Gram: string(b), Frac: g.Frac}
	}
	return out
}

// RunTable1 computes χ² for single characters, doublets, and triplets of
// the directory and lists the most common grams.
func RunTable1(c *Corpus) *Table1 {
	tab := stats.AnalyzeBytes(c.Names, c.Alphabet)
	return &Table1{
		ChiSingle:  tab.Single,
		ChiDouble:  tab.Double,
		ChiTriple:  tab.Triple,
		TopSingles: decodeTop(tab.Singles, c.Alphabet, 6),
		TopDoubles: decodeTop(tab.Doubles, c.Alphabet, 5),
		TopTriples: decodeTop(tab.Triples, c.Alphabet, 5),
	}
}

// Render prints the table in the paper's layout.
func (t *Table1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: χ²-values for the synthetic SF Phone Directory\n")
	fmt.Fprintf(&b, "  χ² (Single Letter) %14.0f\n", t.ChiSingle)
	fmt.Fprintf(&b, "  χ² (Doublets)      %14.0f\n", t.ChiDouble)
	fmt.Fprintf(&b, "  χ² (Triplets)      %14.0f\n", t.ChiTriple)
	for _, g := range t.TopSingles {
		fmt.Fprintf(&b, "  %-4s %6.2f%%\n", g.Gram, 100*g.Frac)
	}
	for _, g := range t.TopDoubles {
		fmt.Fprintf(&b, "  %-4s %6.2f%%\n", g.Gram, 100*g.Frac)
	}
	for _, g := range t.TopTriples {
		fmt.Fprintf(&b, "  %-4s %6.2f%%\n", g.Gram, 100*g.Frac)
	}
	return b.String()
}

// Table2 is the dispersion-alone analysis: every 8-bit symbol dispersed
// into four 2-bit pieces via a key-derived random nonsingular matrix,
// then the piece streams analyzed over the 4-symbol alphabet {0,1,2,3}.
type Table2 struct {
	ChiSingle, ChiDouble, ChiTriple float64
	SymbolFreq                      [4]float64 // frequency of 0,1,2,3
	TopDoubles                      []GramFreq
	// PerSiteChiSingle is the single-symbol χ² of each dispersion site's
	// own stream (extension: the paper aggregates).
	PerSiteChiSingle [4]float64
}

// RunTable2 disperses the corpus symbol-wise and measures the piece
// distributions.
func RunTable2(c *Corpus, key cipherx.Key) (*Table2, error) {
	d, err := disperse.New(disperse.Params{
		K:    4,
		G:    2,
		Kind: disperse.MatrixRandom,
		Key:  key,
	})
	if err != nil {
		return nil, err
	}
	// All-site aggregate sequences: for each record and each site, the
	// site's piece stream is one sequence.
	var agg [][]stats.Symbol
	perSite := make([][][]stats.Symbol, 4)
	tmp := make([]disperse.Piece, 4)
	for _, name := range c.Names {
		streams := make([][]stats.Symbol, 4)
		for i := range streams {
			streams[i] = make([]stats.Symbol, len(name))
		}
		for pos, sym := range name {
			d.DisperseInto(tmp, uint64(sym))
			for i, p := range tmp {
				streams[i][pos] = stats.Symbol(p)
			}
		}
		for i := range streams {
			agg = append(agg, streams[i])
			perSite[i] = append(perSite[i], streams[i])
		}
	}
	tab := stats.AnalyzeSequences(agg, 4)
	out := &Table2{
		ChiSingle: tab.Single,
		ChiDouble: tab.Double,
		ChiTriple: tab.Triple,
	}
	total := float64(tab.Singles.Total())
	for s := 0; s < 4; s++ {
		out.SymbolFreq[s] = float64(tab.Singles.Count([]stats.Symbol{stats.Symbol(s)})) / total
	}
	for _, g := range tab.Doubles.Top(4) {
		out.TopDoubles = append(out.TopDoubles, GramFreq{
			Gram: fmt.Sprintf("%d%d", g.Gram[0], g.Gram[1]),
			Frac: g.Frac,
		})
	}
	for i := 0; i < 4; i++ {
		st := stats.AnalyzeSequences(perSite[i], 4)
		out.PerSiteChiSingle[i] = st.Single
	}
	return out, nil
}

// Render prints the table in the paper's layout.
func (t *Table2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: χ²-values after Dispersion (s=1, k=4, g=2 bits)\n")
	fmt.Fprintf(&b, "  χ² (Single Letter) %14.0f\n", t.ChiSingle)
	fmt.Fprintf(&b, "  χ² (Doublets)      %14.0f\n", t.ChiDouble)
	fmt.Fprintf(&b, "  χ² (Triplets)      %14.0f\n", t.ChiTriple)
	for s, f := range t.SymbolFreq {
		fmt.Fprintf(&b, "  %d    %6.1f%%\n", s, 100*f)
	}
	for _, g := range t.TopDoubles {
		fmt.Fprintf(&b, "  %-4s %6.2f%%\n", g.Gram, 100*g.Frac)
	}
	return b.String()
}

// Table3Row is one (chunk size, encodings) cell row of Table 3.
type Table3Row struct {
	ChunkSize int
	Encodings int
	ChiSingle float64
	ChiDouble float64
	ChiTriple float64
}

// Table3Grid mirrors the paper's parameter grid.
var Table3Grid = map[int][]int{
	1: {2, 4, 8, 16},
	2: {8, 16, 32, 64, 128},
	4: {16, 32, 64, 128},
	6: {16, 32, 64, 128},
}

// RunTable3 measures redundancy removal alone: symbols grouped into
// chunks of each size, encoded with a frequency-balancing codebook of
// each encoding count (phase 0, partial tail dropped as in the paper),
// then χ² of the encoded stream over the code alphabet.
func RunTable3(c *Corpus) ([]Table3Row, error) {
	var out []Table3Row
	for _, cs := range []int{1, 2, 4, 6} {
		for _, enc := range Table3Grid[cs] {
			row, err := RunTable3Cell(c, cs, enc)
			if err != nil {
				return nil, err
			}
			out = append(out, *row)
		}
	}
	return out, nil
}

// RunTable3Cell computes one row of Table 3.
func RunTable3Cell(c *Corpus, chunkSize, encodings int) (*Table3Row, error) {
	cb, err := encode.Train(c.Names, chunkSize, encodings)
	if err != nil {
		return nil, err
	}
	seqs := make([][]stats.Symbol, 0, len(c.Names))
	for _, name := range c.Names {
		codes, err := cb.Encode(name, 0)
		if err != nil {
			return nil, err
		}
		seq := make([]stats.Symbol, len(codes))
		for i, cd := range codes {
			seq[i] = stats.Symbol(cd)
		}
		seqs = append(seqs, seq)
	}
	tab := stats.AnalyzeSequences(seqs, encodings)
	return &Table3Row{
		ChunkSize: chunkSize,
		Encodings: encodings,
		ChiSingle: tab.Single,
		ChiDouble: tab.Double,
		ChiTriple: tab.Triple,
	}, nil
}

// RenderTable3 prints the grid in the paper's per-chunk-size blocks.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: χ²-values after Pre-Processing\n")
	last := -1
	for _, r := range rows {
		if r.ChunkSize != last {
			fmt.Fprintf(&b, "Chunk Size = %d\n", r.ChunkSize)
			fmt.Fprintf(&b, "  %-8s %14s %14s %14s\n", "# encod.", "χ² single", "χ² double", "χ² triple")
			last = r.ChunkSize
		}
		fmt.Fprintf(&b, "  %-8d %14.3f %14.1f %14.1f\n", r.Encodings, r.ChiSingle, r.ChiDouble, r.ChiTriple)
	}
	return b.String()
}
