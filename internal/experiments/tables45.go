package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/chunk"
	"repro/internal/cipherx"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/stats"
)

// FPKey is the fixed pipeline key for the false-positive experiments;
// the choice of key cannot affect match/non-match outcomes (the ECB
// layer is a bijection), so any constant works.
var FPKey = cipherx.KeyFromPassphrase("esdds-fp-experiments")

// Table4Row is one encoding-count row of Table 4.
type Table4Row struct {
	Encodings int
	ChiSingle float64
	ChiDouble float64
	ChiTriple float64
	// FP1 counts (query, record) false-positive pairs after symbol
	// encoding alone.
	FP1 int
	// FP2 counts false-positive pairs after symbol encoding plus
	// chunking with chunk size 2 (two chunkings, partial chunks
	// dropped).
	FP2 int
}

// Table4Encodings is the paper's encoding grid for Table 4.
var Table4Encodings = []int{8, 16, 32}

// Table4Result holds both panels of Table 4.
type Table4Result struct {
	// All is panel (a): every sampled entry's last name queried.
	All []Table4Row
	// Long is panel (b): only last names longer than 5 characters.
	Long []Table4Row
	// Queries and LongQueries record how many searches each panel ran.
	Queries, LongQueries int
}

// matchCodes reports whether pattern occurs as a consecutive
// subsequence of stream.
func matchCodes(stream, pattern []encode.Code) bool {
	if len(pattern) == 0 || len(pattern) > len(stream) {
		return false
	}
outer:
	for o := 0; o+len(pattern) <= len(stream); o++ {
		for i, p := range pattern {
			if stream[o+i] != p {
				continue outer
			}
		}
		return true
	}
	return false
}

// RunTable4 reproduces the paper's first false-positive experiment:
// 1000 random records, their last names as queries, symbols encoded
// individually into n codes (FP1) and then chunked with chunk size 2
// (FP2). A hit is a false positive when the record's plaintext does not
// contain the query (an occurrence inside a longer name — ADAMS in
// ADAMSON — counts as true, as in the paper).
func RunTable4(sample *Corpus) (*Table4Result, error) {
	queriesAll := lastNames(sample)
	queriesLong := longNames(queriesAll, 5)
	res := &Table4Result{Queries: len(queriesAll), LongQueries: len(queriesLong)}
	for _, enc := range Table4Encodings {
		rowAll, rowLong, err := runTable4Encoding(sample, enc, queriesAll, queriesLong)
		if err != nil {
			return nil, err
		}
		res.All = append(res.All, *rowAll)
		res.Long = append(res.Long, *rowLong)
	}
	return res, nil
}

func lastNames(c *Corpus) [][]byte {
	out := make([][]byte, 0, len(c.Entries))
	for _, e := range c.Entries {
		out = append(out, []byte(e.LastName()))
	}
	return out
}

func longNames(queries [][]byte, minLen int) [][]byte {
	var out [][]byte
	for _, q := range queries {
		if len(q) > minLen {
			out = append(out, q)
		}
	}
	return out
}

func runTable4Encoding(sample *Corpus, enc int, queriesAll, queriesLong [][]byte) (all, long *Table4Row, err error) {
	cb, err := encode.Train(sample.Names, 1, enc)
	if err != nil {
		return nil, nil, err
	}
	// χ² of the encoded streams.
	seqs := make([][]stats.Symbol, len(sample.Names))
	encoded := make([][]encode.Code, len(sample.Names))
	for i, name := range sample.Names {
		codes, err := cb.Encode(name, 0)
		if err != nil {
			return nil, nil, err
		}
		encoded[i] = codes
		seq := make([]stats.Symbol, len(codes))
		for j, cd := range codes {
			seq[j] = stats.Symbol(cd)
		}
		seqs[i] = seq
	}
	tab := stats.AnalyzeSequences(seqs, enc)

	// FP2 machinery: the full Stage-1+2 pipeline at S=2, M=2, partials
	// dropped — the paper's "chunking with chunk size = 2".
	pl, err := core.NewPipeline(core.Params{
		Chunk:          chunk.Params{S: 2, M: 2, DropPartial: true},
		SymbolCodebook: cb,
		DisperseK:      1,
		Key:            FPKey,
	})
	if err != nil {
		return nil, nil, err
	}
	ix := core.NewMemIndex(pl)
	for i, name := range sample.Names {
		if err := ix.Insert(uint64(i), name); err != nil {
			return nil, nil, err
		}
	}

	count := func(queries [][]byte) (fp1, fp2 int, err error) {
		for _, q := range queries {
			qCodes, err := cb.Encode(q, 0)
			if err != nil {
				return 0, 0, err
			}
			// FP1: encoded-substring match per record.
			for i, name := range sample.Names {
				if matchCodes(encoded[i], qCodes) && !bytes.Contains(name, q) {
					fp1++
				}
			}
			// FP2: chunked search.
			if len(q) >= pl.MinQueryLen() {
				rids, err := ix.Search(q, core.VerifyAny)
				if err != nil {
					return 0, 0, err
				}
				for _, rid := range rids {
					if !bytes.Contains(sample.Names[rid], q) {
						fp2++
					}
				}
			}
		}
		return fp1, fp2, nil
	}

	fp1All, fp2All, err := count(queriesAll)
	if err != nil {
		return nil, nil, err
	}
	fp1Long, fp2Long, err := count(queriesLong)
	if err != nil {
		return nil, nil, err
	}
	base := Table4Row{
		Encodings: enc,
		ChiSingle: tab.Single,
		ChiDouble: tab.Double,
		ChiTriple: tab.Triple,
	}
	a, l := base, base
	a.FP1, a.FP2 = fp1All, fp2All
	l.FP1, l.FP2 = fp1Long, fp2Long
	return &a, &l, nil
}

// Render prints both panels in the paper's layout.
func (t *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: False positives after symbol encoding (FP1) and after\n")
	fmt.Fprintf(&b, "symbol encoding and chunking with chunk size = 2 (%d records)\n", t.Queries)
	fmt.Fprintf(&b, "(a) All entries (%d queries)\n", t.Queries)
	renderTable4Rows(&b, t.All)
	fmt.Fprintf(&b, "(b) Entries with names longer than 5 characters (%d queries)\n", t.LongQueries)
	renderTable4Rows(&b, t.Long)
	return b.String()
}

func renderTable4Rows(b *strings.Builder, rows []Table4Row) {
	fmt.Fprintf(b, "  %-4s %12s %12s %12s %8s %8s\n", "En", "χ² single", "χ² double", "χ² triple", "FP1", "FP2")
	for _, r := range rows {
		fmt.Fprintf(b, "  %-4d %12.2f %12.1f %12.1f %8d %8d\n",
			r.Encodings, r.ChiSingle, r.ChiDouble, r.ChiTriple, r.FP1, r.FP2)
	}
}

// Table5Row is one encoding-count row of Table 5.
type Table5Row struct {
	Encodings int
	ChiSingle float64
	ChiDouble float64
	ChiTriple float64
	FP        int
}

// Table5Encodings is the paper's encoding grid for Table 5.
var Table5Encodings = []int{8, 16, 32, 64}

// Table5Result holds both panels of Table 5.
type Table5Result struct {
	All                  []Table5Row
	Long                 []Table5Row
	Queries, LongQueries int
}

// RunTable5 reproduces the paper's second false-positive experiment:
// two-symbol chunks encoded directly into n codes (the chunking and the
// grouping coincide, so chunking adds no further false positives — the
// paper's observation that Table 5 needs only one FP column).
func RunTable5(sample *Corpus) (*Table5Result, error) {
	queriesAll := lastNames(sample)
	queriesLong := longNames(queriesAll, 5)
	res := &Table5Result{Queries: len(queriesAll), LongQueries: len(queriesLong)}
	for _, enc := range Table5Encodings {
		rowAll, rowLong, err := runTable5Encoding(sample, enc, queriesAll, queriesLong)
		if err != nil {
			return nil, err
		}
		res.All = append(res.All, *rowAll)
		res.Long = append(res.Long, *rowLong)
	}
	return res, nil
}

func runTable5Encoding(sample *Corpus, enc int, queriesAll, queriesLong [][]byte) (all, long *Table5Row, err error) {
	cb, err := encode.Train(sample.Names, 2, enc)
	if err != nil {
		return nil, nil, err
	}
	// χ² over both grouping phases' code streams.
	var seqs [][]stats.Symbol
	for _, name := range sample.Names {
		for phase := 0; phase < 2; phase++ {
			codes, err := cb.Encode(name, phase)
			if err != nil {
				return nil, nil, err
			}
			seq := make([]stats.Symbol, len(codes))
			for j, cd := range codes {
				seq[j] = stats.Symbol(cd)
			}
			seqs = append(seqs, seq)
		}
	}
	tab := stats.AnalyzeSequences(seqs, enc)

	pl, err := core.NewPipeline(core.Params{
		Chunk:         chunk.Params{S: 2, M: 2, DropPartial: true},
		ChunkCodebook: cb,
		DisperseK:     1,
		Key:           FPKey,
	})
	if err != nil {
		return nil, nil, err
	}
	ix := core.NewMemIndex(pl)
	for i, name := range sample.Names {
		if err := ix.Insert(uint64(i), name); err != nil {
			return nil, nil, err
		}
	}
	count := func(queries [][]byte) (int, error) {
		fp := 0
		for _, q := range queries {
			if len(q) < pl.MinQueryLen() {
				continue
			}
			rids, err := ix.Search(q, core.VerifyAny)
			if err != nil {
				return 0, err
			}
			for _, rid := range rids {
				if !bytes.Contains(sample.Names[rid], q) {
					fp++
				}
			}
		}
		return fp, nil
	}
	fpAll, err := count(queriesAll)
	if err != nil {
		return nil, nil, err
	}
	fpLong, err := count(queriesLong)
	if err != nil {
		return nil, nil, err
	}
	base := Table5Row{
		Encodings: enc,
		ChiSingle: tab.Single,
		ChiDouble: tab.Double,
		ChiTriple: tab.Triple,
	}
	a, l := base, base
	a.FP, l.FP = fpAll, fpLong
	return &a, &l, nil
}

// Render prints both panels in the paper's layout.
func (t *Table5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: False positives after chunk encoding (chunk size 2)\n")
	fmt.Fprintf(&b, "(a) All entries (%d queries)\n", t.Queries)
	renderTable5Rows(&b, t.All)
	fmt.Fprintf(&b, "(b) Entries with last names longer than 5 characters (%d queries)\n", t.LongQueries)
	renderTable5Rows(&b, t.Long)
	return b.String()
}

func renderTable5Rows(b *strings.Builder, rows []Table5Row) {
	fmt.Fprintf(b, "  %-4s %12s %12s %12s %8s\n", "Enc", "χ² single", "χ² double", "χ² triple", "FP")
	for _, r := range rows {
		fmt.Fprintf(b, "  %-4d %12.3f %12.1f %12.1f %8d\n",
			r.Encodings, r.ChiSingle, r.ChiDouble, r.ChiTriple, r.FP)
	}
}

// Figure5 is the 8-code symbol encoding assignment table.
type Figure5 struct {
	Rows []encode.Assignment
}

// RunFigure5 trains the 8-code symbol codebook on the sample and returns
// its assignment table (symbol, count, code) in frequency order — the
// paper's Figure 5.
func RunFigure5(sample *Corpus) (*Figure5, error) {
	cb, err := encode.Train(sample.Names, 1, 8)
	if err != nil {
		return nil, err
	}
	return &Figure5{Rows: cb.Assignments()}, nil
}

// Render prints the assignment table.
func (f *Figure5) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Encoding Assignment for 8 possible encodings\n")
	fmt.Fprintf(&b, "  %-8s %8s %8s\n", "Symbol", "Quantity", "Encoding")
	for _, r := range f.Rows {
		sym := r.Group
		if sym == " " {
			sym = "space"
		}
		fmt.Fprintf(&b, "  %-8s %8d %8d\n", sym, r.Count, r.Code)
	}
	return b.String()
}

// RandomnessResult is the §6 extension: the NIST-style battery run over
// the final index-piece streams versus the raw plaintext bits.
type RandomnessResult struct {
	Raw   []stats.TestResult
	Index []stats.TestResult
}

// RunRandomness builds the complete scheme (symbol encoding into 8
// codes, chunk size 2, two chunkings, dispersion over 2 sites) and
// compares the randomness battery on raw plaintext bits vs the stored
// index pieces.
func RunRandomness(sample *Corpus, key cipherx.Key) (*RandomnessResult, error) {
	cb, err := encode.Train(sample.Names, 1, 8)
	if err != nil {
		return nil, err
	}
	pl, err := core.NewPipeline(core.Params{
		Chunk:          chunk.Params{S: 2, M: 2, DropPartial: true},
		SymbolCodebook: cb,
		DisperseK:      2,
		Key:            key,
	})
	if err != nil {
		return nil, err
	}
	var rawBytes []byte
	var pieceSyms []stats.Symbol
	pieceBits := pl.ChunkBits() / 2 // bits per piece at K=2
	for i, name := range sample.Names {
		rawBytes = append(rawBytes, name...)
		recs, err := pl.BuildIndex(uint64(i), name)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			for _, stream := range rec.Streams {
				for _, p := range stream {
					pieceSyms = append(pieceSyms, stats.Symbol(p))
				}
			}
		}
	}
	idxBits, err := stats.BitsFromSymbols(pieceSyms, pieceBits)
	if err != nil {
		return nil, err
	}
	return &RandomnessResult{
		Raw:   stats.Battery(stats.BitsFromBytes(rawBytes)),
		Index: stats.Battery(idxBits),
	}, nil
}

// Render prints the battery comparison.
func (r *RandomnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Randomness battery (NIST-style, significance 0.01)\n")
	fmt.Fprintf(&b, "  %-24s %14s %14s\n", "test", "raw p-value", "index p-value")
	for i := range r.Raw {
		idx := "-"
		if i < len(r.Index) {
			idx = fmt.Sprintf("%.4f (%s)", r.Index[i].P, passFail(r.Index[i].Passed))
		}
		fmt.Fprintf(&b, "  %-24s %8.4f (%s) %18s\n", r.Raw[i].Name, r.Raw[i].P, passFail(r.Raw[i].Passed), idx)
	}
	return b.String()
}

func passFail(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}
