package experiments

import (
	"strings"
	"testing"

	"repro/internal/cipherx"
)

// A modest corpus keeps the test suite fast; the shape criteria below
// are scale-free.
func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	return NewCorpus(8000, DefaultSeed)
}

func TestCorpusConstruction(t *testing.T) {
	c := testCorpus(t)
	if len(c.Entries) != 8000 || len(c.Names) != 8000 {
		t.Fatal("corpus size")
	}
	if len(c.Alphabet) < 20 {
		t.Errorf("alphabet only %d symbols", len(c.Alphabet))
	}
	s := c.Sample(100, 1)
	if len(s.Entries) != 100 {
		t.Errorf("sample size %d", len(s.Entries))
	}
}

func TestTable1Shape(t *testing.T) {
	c := testCorpus(t)
	tab := RunTable1(c)
	// Shape criteria from the paper: strongly non-uniform, exploding
	// from singles to doublets to triplets.
	if !(tab.ChiSingle > 1000) {
		t.Errorf("single χ² = %.0f, want large", tab.ChiSingle)
	}
	if !(tab.ChiDouble > tab.ChiSingle && tab.ChiTriple > tab.ChiDouble) {
		t.Errorf("ordering: %.0f %.0f %.0f", tab.ChiSingle, tab.ChiDouble, tab.ChiTriple)
	}
	if len(tab.TopSingles) != 6 || len(tab.TopDoubles) != 5 || len(tab.TopTriples) != 5 {
		t.Error("top lists wrong length")
	}
	if s := tab.Render(); !strings.Contains(s, "Table 1") {
		t.Error("render missing header")
	}
}

func TestTable2Shape(t *testing.T) {
	c := testCorpus(t)
	t1 := RunTable1(c)
	t2, err := RunTable2(c, cipherx.KeyFromPassphrase("table2"))
	if err != nil {
		t.Fatal(err)
	}
	// Dispersion reduces χ² dramatically but does not equalize: the
	// paper's Table 2 still shows a skewed 2-bit distribution.
	if !(t2.ChiSingle < t1.ChiSingle/2) {
		t.Errorf("dispersion did not reduce single χ²: %.0f vs %.0f", t2.ChiSingle, t1.ChiSingle)
	}
	if !(t2.ChiTriple < t1.ChiTriple/2) {
		t.Errorf("dispersion did not reduce triple χ²: %.0f vs %.0f", t2.ChiTriple, t1.ChiTriple)
	}
	sum := 0.0
	for _, f := range t2.SymbolFreq {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("symbol frequencies sum to %f", sum)
	}
	// Still non-uniform (χ² single well above the 3 degrees of freedom).
	if t2.ChiSingle < 100 {
		t.Errorf("dispersed singles suspiciously uniform: χ² = %.1f", t2.ChiSingle)
	}
	if s := t2.Render(); !strings.Contains(s, "Table 2") {
		t.Error("render missing header")
	}
}

func TestTable3Shape(t *testing.T) {
	c := testCorpus(t)
	rows, err := RunTable3(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, encs := range Table3Grid {
		want += len(encs)
	}
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	byCell := make(map[[2]int]Table3Row)
	for _, r := range rows {
		byCell[[2]int{r.ChunkSize, r.Encodings}] = r
		// Universal shape: balanced codes make singles tiny relative to
		// doublets/triplets (inter-chunk predictability survives).
		if r.ChiDouble < r.ChiSingle {
			t.Errorf("cs=%d enc=%d: doublet χ² %.1f < single %.1f",
				r.ChunkSize, r.Encodings, r.ChiDouble, r.ChiSingle)
		}
		if r.ChiTriple < r.ChiDouble {
			t.Errorf("cs=%d enc=%d: triple χ² %.1f < double %.1f",
				r.ChunkSize, r.Encodings, r.ChiTriple, r.ChiDouble)
		}
	}
	// Within one chunk size, more encodings → larger χ² (less
	// compression, more structure survives). Check the extremes.
	for cs, encs := range Table3Grid {
		lo := byCell[[2]int{cs, encs[0]}]
		hi := byCell[[2]int{cs, encs[len(encs)-1]}]
		if hi.ChiTriple <= lo.ChiTriple {
			t.Errorf("cs=%d: triple χ² not increasing with encodings (%.1f -> %.1f)",
				cs, lo.ChiTriple, hi.ChiTriple)
		}
	}
	// At equal code budget, larger chunks flatten better: compare
	// cs=2,enc=16 against cs=6,enc=16 doublets (paper: 72,530 vs 1,014).
	small := byCell[[2]int{2, 16}]
	large := byCell[[2]int{6, 16}]
	if large.ChiDouble >= small.ChiDouble {
		t.Errorf("cs=6 should beat cs=2 at 16 encodings: %.1f vs %.1f",
			large.ChiDouble, small.ChiDouble)
	}
	if s := RenderTable3(rows); !strings.Contains(s, "Chunk Size = 6") {
		t.Error("render missing blocks")
	}
}

func TestTable4Shape(t *testing.T) {
	c := testCorpus(t)
	sample := c.Sample(500, 42)
	res, err := RunTable4(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != len(Table4Encodings) || len(res.Long) != len(Table4Encodings) {
		t.Fatal("row counts")
	}
	for i := range res.All {
		a, l := res.All[i], res.Long[i]
		// Chunking adds false positives: FP2 >= FP1.
		if a.FP2 < a.FP1 {
			t.Errorf("enc=%d: FP2 %d < FP1 %d", a.Encodings, a.FP2, a.FP1)
		}
		// Long names nearly eliminate FPs.
		if l.FP1 > a.FP1/5+5 {
			t.Errorf("enc=%d: long-name FP1 %d not ≪ all-entries FP1 %d", a.Encodings, l.FP1, a.FP1)
		}
		// χ² grows with encodings (less compression).
		if i > 0 && a.ChiTriple <= res.All[i-1].ChiTriple {
			t.Errorf("triple χ² not increasing: %.1f -> %.1f", res.All[i-1].ChiTriple, a.ChiTriple)
		}
	}
	// More encodings → fewer FPs (paper: 6253 → 911 → 0).
	first, last := res.All[0], res.All[len(res.All)-1]
	if last.FP1 >= first.FP1 && first.FP1 > 0 {
		t.Errorf("FP1 not decreasing with encodings: %d -> %d", first.FP1, last.FP1)
	}
	if last.FP2 >= first.FP2 && first.FP2 > 0 {
		t.Errorf("FP2 not decreasing with encodings: %d -> %d", first.FP2, last.FP2)
	}
	if s := res.Render(); !strings.Contains(s, "Table 4") {
		t.Error("render")
	}
}

func TestTable5Shape(t *testing.T) {
	c := testCorpus(t)
	sample := c.Sample(500, 42)
	res, err := RunTable5(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != len(Table5Encodings) {
		t.Fatal("row counts")
	}
	for i := range res.All {
		a, l := res.All[i], res.Long[i]
		if l.FP > a.FP {
			t.Errorf("enc=%d: long FP %d > all FP %d", a.Encodings, l.FP, a.FP)
		}
		if i > 0 && a.FP > res.All[i-1].FP {
			t.Errorf("FP not decreasing with encodings: %d -> %d", res.All[i-1].FP, a.FP)
		}
	}
	// Key cross-table comparison at equal code count: chunk-level
	// encoding flattens the per-code distribution far better than
	// symbol-level encoding (paper: single χ² 0.002 vs 1.49 at 8 codes)
	// — the trade-off being its higher false-positive counts.
	t4, err := RunTable4(sample)
	if err != nil {
		t.Fatal(err)
	}
	var t4row Table4Row
	for _, r := range t4.All {
		if r.Encodings == 8 {
			t4row = r
		}
	}
	var t5row Table5Row
	for _, r := range res.All {
		if r.Encodings == 8 {
			t5row = r
		}
	}
	if t5row.ChiSingle >= t4row.ChiSingle {
		t.Errorf("chunk encoding should flatten singles more at equal code count: %.3f vs %.3f",
			t5row.ChiSingle, t4row.ChiSingle)
	}
	if s := res.Render(); !strings.Contains(s, "Table 5") {
		t.Error("render")
	}
}

func TestFigure5(t *testing.T) {
	c := testCorpus(t)
	sample := c.Sample(1000, 42)
	fig, err := RunFigure5(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) < 20 {
		t.Fatalf("only %d symbols", len(fig.Rows))
	}
	// Frequency order and code range.
	for i, r := range fig.Rows {
		if len(r.Group) != 1 {
			t.Errorf("row %d group %q not a single symbol", i, r.Group)
		}
		if r.Code > 7 {
			t.Errorf("code %d out of range", r.Code)
		}
		if i > 0 && r.Count > fig.Rows[i-1].Count {
			t.Error("rows not in decreasing frequency order")
		}
	}
	// The first 8 symbols take codes 0..7 in order.
	for i := 0; i < 8; i++ {
		if int(fig.Rows[i].Code) != i {
			t.Errorf("row %d code %d, want %d", i, fig.Rows[i].Code, i)
		}
	}
	if s := fig.Render(); !strings.Contains(s, "space") {
		t.Error("render should show the space symbol")
	}
}

func TestRandomnessExtension(t *testing.T) {
	c := testCorpus(t)
	sample := c.Sample(400, 7)
	res, err := RunRandomness(sample, cipherx.KeyFromPassphrase("battery"))
	if err != nil {
		t.Fatal(err)
	}
	// Raw ASCII text must fail essentially everything.
	rawFails := 0
	for _, r := range res.Raw {
		if !r.Passed {
			rawFails++
		}
	}
	if rawFails < 3 {
		t.Errorf("raw plaintext passed too many randomness tests (%d failures)", rawFails)
	}
	// The index pieces must look much more random: at least monobit
	// should pass after encode+ECB+dispersion.
	idxPasses := 0
	for _, r := range res.Index {
		if r.Passed {
			idxPasses++
		}
	}
	if idxPasses == 0 {
		t.Error("index pieces failed the entire battery")
	}
	if s := res.Render(); !strings.Contains(s, "monobit") {
		t.Error("render")
	}
}

func TestStorageTradeoff(t *testing.T) {
	c := testCorpus(t)
	sample := c.Sample(400, 9)
	rows, err := RunStorageTradeoff(sample, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // M ∈ {1, 2, 4}
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for i, r := range rows {
		// Storage grows with M (M copies of the chunked record, modulo
		// per-chunking padding differences).
		if i > 0 && r.IndexBytes <= rows[i-1].IndexBytes {
			t.Errorf("M=%d: storage %d not larger than M=%d's %d",
				r.M, r.IndexBytes, rows[i-1].M, rows[i-1].IndexBytes)
		}
		// Minimum query length shrinks as M grows: S + S/M − 1.
		want := 4 + 4/r.M - 1
		if r.MinQueryLen != want {
			t.Errorf("M=%d: MinQueryLen %d, want %d", r.M, r.MinQueryLen, want)
		}
		// Aligned verification (full series) never has more FPs than the
		// cheap mode counted over at least as many queries.
		if r.FPAligned > r.FPAny && r.QueriesAligned <= r.QueriesAny {
			t.Errorf("M=%d: FPAligned %d > FPAny %d", r.M, r.FPAligned, r.FPAny)
		}
	}
	// At M=S the aligned mode must be exact: zero false positives.
	last := rows[len(rows)-1]
	if last.M == 4 && last.FPAligned != 0 {
		t.Errorf("M=S aligned mode had %d FPs, want 0 (exactness theorem)", last.FPAligned)
	}
	if s := RenderStorage(4, rows); !strings.Contains(s, "trade-off") {
		t.Error("render")
	}
}
