// Package experiments regenerates every table and figure of the paper's
// evaluation (§6–7) on the synthetic SF-directory corpus:
//
//	Table 1 — χ² of the raw directory + most common 1/2/3-grams
//	Table 2 — χ² after dispersion alone (8-bit symbols → four 2-bit pieces)
//	Table 3 — χ² after redundancy removal alone (chunk sizes × encodings)
//	Table 4 — false positives after symbol encoding (FP1) and after
//	          chunking with chunk size 2 (FP2), all entries and >5-char names
//	Table 5 — false positives after chunk-level encoding
//	Figure 5 — the 8-code encoding assignment table
//
// plus a randomness-battery extension (§6 points to NIST-style testing).
// Each experiment returns a structured result and renders itself in the
// paper's layout, so cmd/esdds-repro can print side-by-side comparisons
// and the benchmark harness can regenerate any row.
package experiments

import (
	"repro/internal/phonebook"
	"repro/internal/stats"
)

// Corpus is the evaluation dataset: a synthetic SF directory.
type Corpus struct {
	// Entries are the generated directory entries.
	Entries []phonebook.Entry
	// Names are the record contents (the searchable fields).
	Names [][]byte
	// Alphabet is the sorted set of symbols occurring in Names.
	Alphabet []byte
}

// PaperCorpusSize is the size of the paper's dataset (282,965 entries).
const PaperCorpusSize = 282965

// DefaultSeed is the corpus seed used across the repository so results
// are reproducible run-to-run.
const DefaultSeed = 20060403 // ICDE 2006 week

// NewCorpus generates an n-entry corpus.
func NewCorpus(n int, seed int64) *Corpus {
	entries := phonebook.Generate(n, seed)
	names := phonebook.Names(entries)
	return &Corpus{
		Entries:  entries,
		Names:    names,
		Alphabet: stats.Alphabet(names),
	}
}

// Sample draws k distinct entries (the paper's "1000 random records").
func (c *Corpus) Sample(k int, seed int64) *Corpus {
	entries := phonebook.Sample(c.Entries, k, seed)
	names := phonebook.Names(entries)
	return &Corpus{Entries: entries, Names: names, Alphabet: stats.Alphabet(names)}
}
