package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fixtureReport builds a report with known headline numbers.
func fixtureReport(p99 time.Duration, errRate float64, audit *AuditResult) *Report {
	return &Report{
		Schema:  BenchSchema,
		Profile: "smoke",
		Ops: map[string]OpStats{
			"search": {Count: 1000, P50Ns: int64(p99) / 4, P99Ns: int64(p99)},
			"insert": {Count: 4000, P50Ns: 1e6, P99Ns: 9e6},
		},
		Config:  RunConfig{Rate: 2000},
		Totals:  Totals{Ops: 5000, ErrorRate: errRate, Throughput: 1250},
		Cluster: ClusterCounters{RecordSplits: 5, IndexSplits: 2, IAMs: 9},
		Audit:   audit,
	}
}

// TestParseGate covers accepted and rejected gate syntax.
func TestParseGate(t *testing.T) {
	valid := []struct {
		expr  string
		bound float64
	}{
		{"search.p99 < 250ms", float64(250 * time.Millisecond)},
		{"error_rate == 0", 0},
		{"loss == 0", 0},
		{"throughput >= 100.5", 100.5},
		{"shed != 7", 7},
		{"insert.p50 <= 1.5s", float64(1500 * time.Millisecond)},
	}
	for _, tc := range valid {
		g, err := ParseGate(tc.expr)
		if err != nil {
			t.Errorf("ParseGate(%q): %v", tc.expr, err)
			continue
		}
		if g.bound != tc.bound || g.isPrev {
			t.Errorf("ParseGate(%q) bound = %v isPrev=%v, want %v", tc.expr, g.bound, g.isPrev, tc.bound)
		}
	}
	for _, tc := range []struct {
		expr   string
		factor float64
	}{
		{"search.p99 <= prev*1.5", 1.5},
		{"throughput >= prev", 1},
	} {
		g, err := ParseGate(tc.expr)
		if err != nil || !g.isPrev || g.prevFactor != tc.factor {
			t.Errorf("ParseGate(%q) = %+v, %v; want prev factor %v", tc.expr, g, err, tc.factor)
		}
	}
	for _, tc := range []struct {
		expr   string
		factor float64
	}{
		{"throughput >= offered*0.55", 0.55},
		{"throughput >= offered", 1},
	} {
		g, err := ParseGate(tc.expr)
		if err != nil || !g.isOffered || g.offeredFactor != tc.factor {
			t.Errorf("ParseGate(%q) = %+v, %v; want offered factor %v", tc.expr, g, err, tc.factor)
		}
	}
	for _, bad := range []string{
		"", "search.p99", "search.p99 <", "search.p99 ~ 5", "search.p99 < banana",
		"search.p99 < prev*0", "search.p99 < prev*x", "a b c d",
		"throughput >= offered*0", "throughput >= offered*x",
	} {
		if _, err := ParseGate(bad); err == nil {
			t.Errorf("ParseGate(%q) accepted", bad)
		}
	}
}

// TestParseGates skips blanks/comments and aggregates errors.
func TestParseGates(t *testing.T) {
	gates, err := ParseGates([]string{"search.p99 < 250ms", "", "# comment", "loss == 0"})
	if err != nil || len(gates) != 2 {
		t.Fatalf("ParseGates = %d gates, %v", len(gates), err)
	}
	if _, err := ParseGates([]string{"good == 0", "bad <"}); err == nil {
		t.Fatal("bad gate list accepted")
	}
}

// TestEvalGates is the pass/fail/skip/regression matrix.
func TestEvalGates(t *testing.T) {
	audit := &AuditResult{Checked: 3000}
	cur := fixtureReport(200*time.Millisecond, 0, audit)
	prevGood := fixtureReport(180*time.Millisecond, 0, audit)
	prevFast := fixtureReport(50*time.Millisecond, 0, audit)

	cases := []struct {
		name     string
		exprs    []string
		cur      *Report
		prev     *Report
		wantPass bool
		wantSkip int
	}{
		{"absolute pass", []string{"search.p99 < 250ms"}, cur, nil, true, 0},
		{"absolute fail", []string{"search.p99 < 100ms"}, cur, nil, false, 0},
		{"error rate pass", []string{"error_rate == 0"}, cur, nil, true, 0},
		{"error rate fail", []string{"error_rate == 0"}, fixtureReport(time.Millisecond, 0.01, audit), nil, false, 0},
		{"loss pass", []string{"loss == 0"}, cur, nil, true, 0},
		{"loss fail", []string{"loss == 0"}, fixtureReport(time.Millisecond, 0, &AuditResult{Checked: 10, Missing: 2}), nil, false, 0},
		{"loss gate without audit fails", []string{"loss == 0"}, fixtureReport(time.Millisecond, 0, nil), nil, false, 0},
		{"unknown metric fails", []string{"bogus.p99 < 1s"}, cur, nil, false, 0},
		{"regression within bound", []string{"search.p99 <= prev*1.5"}, cur, prevGood, true, 0},
		{"regression breached", []string{"search.p99 <= prev*1.5"}, cur, prevFast, false, 0},
		{"regression no baseline skips", []string{"search.p99 <= prev*1.5"}, cur, nil, true, 1},
		{"offered floor within bound", []string{"throughput >= offered*0.55"}, cur, nil, true, 0},
		{"offered floor breached", []string{"throughput >= offered*0.8"}, cur, nil, false, 0},
		{"offered without rate skips", []string{"throughput >= offered*0.55"}, func() *Report {
			r := fixtureReport(200*time.Millisecond, 0, audit)
			r.Config.Rate = 0
			return r
		}(), nil, true, 1},
		{"multi gate one fails", []string{"error_rate == 0", "search.p99 < 100ms"}, cur, nil, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gates, err := ParseGates(tc.exprs)
			if err != nil {
				t.Fatal(err)
			}
			outcomes, pass := EvalGates(gates, tc.cur, tc.prev)
			if pass != tc.wantPass {
				t.Fatalf("pass = %v, want %v (outcomes %+v)", pass, tc.wantPass, outcomes)
			}
			skips := 0
			for _, o := range outcomes {
				if o.Skipped {
					skips++
				}
				if o.Detail == "" {
					t.Errorf("outcome %q has no detail", o.Expr)
				}
			}
			if skips != tc.wantSkip {
				t.Fatalf("skips = %d, want %d", skips, tc.wantSkip)
			}
		})
	}
}

// TestEvalGateDetailRendersDurations: latency gate details show
// human-readable durations, not raw nanosecond counts.
func TestEvalGateDetailRendersDurations(t *testing.T) {
	gates, _ := ParseGates([]string{"search.p99 < 250ms"})
	outcomes, _ := EvalGates(gates, fixtureReport(200*time.Millisecond, 0, nil), nil)
	if !strings.Contains(outcomes[0].Detail, "200ms") || !strings.Contains(outcomes[0].Detail, "250ms") {
		t.Fatalf("detail %q does not render durations", outcomes[0].Detail)
	}
}

// TestBenchFileMerge: writing one profile must preserve every other
// profile already in the file.
func TestBenchFileMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")

	first, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full := fixtureReport(90*time.Millisecond, 0, nil)
	full.Profile = "full"
	first.Put(full)
	if err := WriteBenchFile(path, first); err != nil {
		t.Fatal(err)
	}

	second, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	second.Put(fixtureReport(200*time.Millisecond, 0, nil)) // profile "smoke"
	if err := WriteBenchFile(path, second); err != nil {
		t.Fatal(err)
	}

	final, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Profiles) != 2 {
		t.Fatalf("profiles %v, want smoke+full preserved", len(final.Profiles))
	}
	if final.Profiles["full"] == nil || final.Profiles["full"].Ops["search"].P99Ns != int64(90*time.Millisecond) {
		t.Fatal("re-running smoke clobbered the full profile's history")
	}
	if final.Profiles["smoke"] == nil {
		t.Fatal("smoke profile missing after Put")
	}
}

// TestLoadBenchFileCorrupt: a present-but-broken history file must be
// an error, not a silent reset.
func TestLoadBenchFileCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchFile(path); err == nil {
		t.Fatal("corrupt BENCH file loaded without error")
	}
}

// TestDiffReports: the regression diff names the headline series and
// handles a missing baseline.
func TestDiffReports(t *testing.T) {
	cur := fixtureReport(200*time.Millisecond, 0, nil)
	if d := DiffReports(nil, cur); !strings.Contains(d, "no previous BENCH entry") {
		t.Fatalf("nil-prev diff = %q", d)
	}
	prev := fixtureReport(100*time.Millisecond, 0, nil)
	d := DiffReports(prev, cur)
	for _, want := range []string{"search.p99", "insert.p50", "throughput", "error_rate", "splits", "+100.0%"} {
		if !strings.Contains(d, want) {
			t.Fatalf("diff missing %q:\n%s", want, d)
		}
	}
}
