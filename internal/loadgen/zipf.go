package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s — the classic zipfian popularity skew of real query
// traffic (a few hot queries, a long cold tail). It is implemented by
// inversion over the exact cumulative distribution so PMF reports the
// true per-rank probability, which the χ² distribution test (in the
// spirit of the paper's §6 flatness analysis) checks samples against.
type Zipf struct {
	s   float64
	cum []float64 // cum[i] = P(rank <= i), cum[n-1] == 1
}

// NewZipf builds a sampler over n ranks with exponent s >= 0 (s == 0 is
// uniform; larger s is spikier).
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("loadgen: zipf needs n >= 1, got %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("loadgen: zipf exponent %v out of range", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{s: s, cum: cum}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// PMF returns the exact probability of rank i.
func (z *Zipf) PMF(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}

// Sample draws one rank using the given source of uniform randomness.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}
