package loadgen

import (
	"fmt"
	"math/rand"

	"repro/internal/phonebook"
)

// StreamConfig fixes one deterministic operation stream.
type StreamConfig struct {
	// Seed drives every random choice of the stream (op kinds, record
	// contents, query ranks, delete targets). Identical configs replay
	// identical streams.
	Seed int64
	// Ops is the stream length.
	Ops int
	// Mix is the insert/search/delete split. Zero value: DefaultMix.
	Mix Mix
	// QueryPool is the number of distinct queries popularity is spread
	// over (default 512).
	QueryPool int
	// ZipfS is the zipfian exponent of query popularity (default 1.1).
	ZipfS float64
	// MinQueryLen drops query-pool candidates shorter than this, so
	// every query satisfies the store's minimum searchable substring
	// length (default 7 — covers SearchVerified/SearchExact at the
	// soak's default chunk geometry S=4).
	MinQueryLen int
}

func (c *StreamConfig) fillDefaults() {
	if c.Mix == (Mix{}) {
		c.Mix = DefaultMix
	}
	if c.QueryPool == 0 {
		c.QueryPool = 512
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.MinQueryLen == 0 {
		c.MinQueryLen = 7
	}
}

// contentChunk is the number of phonebook entries generated per batch.
// Contents are regenerable chunk-by-chunk, so neither the stream nor
// the post-soak audit ever holds millions of records in memory.
const contentChunk = 8192

// Stream is a deterministic sequence of operations over a synthetic
// phonebook corpus. Record contents are Figure-4 directory lines;
// queries are surnames drawn zipfian from a fixed pool, so a soak's
// query traffic has the hot-head/long-tail shape of real lookups.
//
// A Stream is not safe for concurrent use; the runner consumes it from
// its single dispatcher goroutine.
type Stream struct {
	cfg     StreamConfig
	rng     *rand.Rand
	zipf    *Zipf
	queries [][]byte

	next    int
	inserts int      // insert ops emitted so far
	live    []uint64 // stream-view rids available for deletion

	chunkIdx int // currently cached content chunk (-1: none)
	chunk    []phonebook.Entry
}

// querySeedSalt decouples the query-pool corpus from the record corpus
// so pool construction does not disturb record determinism.
const querySeedSalt = 0x5eed9001

// NewStream validates the config and builds the query pool.
func NewStream(cfg StreamConfig) (*Stream, error) {
	cfg.fillDefaults()
	if cfg.Ops < 1 {
		return nil, fmt.Errorf("loadgen: stream needs at least 1 op, got %d", cfg.Ops)
	}
	if err := cfg.Mix.validate(); err != nil {
		return nil, err
	}
	queries := buildQueryPool(cfg)
	if len(queries) == 0 {
		return nil, fmt.Errorf("loadgen: empty query pool (min query length %d too strict)", cfg.MinQueryLen)
	}
	z, err := NewZipf(len(queries), cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	return &Stream{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		zipf:     z,
		queries:  queries,
		chunkIdx: -1,
	}, nil
}

// buildQueryPool draws distinct surnames of sufficient length from a
// salted corpus sample. Surnames recur across many directory entries,
// so searches return multi-record hit sets.
func buildQueryPool(cfg StreamConfig) [][]byte {
	candidates := phonebook.Generate(cfg.QueryPool*16, cfg.Seed^querySeedSalt)
	seen := make(map[string]bool, cfg.QueryPool)
	pool := make([][]byte, 0, cfg.QueryPool)
	for _, e := range candidates {
		name := e.LastName()
		if len(name) < cfg.MinQueryLen || seen[name] {
			continue
		}
		seen[name] = true
		pool = append(pool, []byte(name))
		if len(pool) == cfg.QueryPool {
			break
		}
	}
	return pool
}

// Queries exposes the query pool (rank order), for distribution tests.
func (s *Stream) Queries() [][]byte { return s.queries }

// Inserts returns the number of insert ops emitted so far.
func (s *Stream) Inserts() int { return s.inserts }

// ContentOf regenerates the record content for an insert-assigned RID
// (RIDs are assigned densely from 1). It is what the audit compares a
// read-back against, and is deterministic and independent of stream
// position.
func (s *Stream) ContentOf(rid uint64) []byte {
	idx := int(rid - 1)
	ci := idx / contentChunk
	if s.chunkIdx != ci {
		s.chunk = phonebook.Generate(contentChunk, s.cfg.Seed+int64(ci)+1)
		s.chunkIdx = ci
	}
	return []byte(phonebook.FormatRecord(s.chunk[idx%contentChunk]))
}

// Next returns the next operation, or ok=false at end of stream.
func (s *Stream) Next() (op Op, ok bool) {
	if s.next >= s.cfg.Ops {
		return Op{}, false
	}
	op.Index = s.next
	s.next++
	r := s.rng.Intn(100)
	switch {
	case r < s.cfg.Mix.InsertPct:
		op.Kind = OpInsert
	case r < s.cfg.Mix.InsertPct+s.cfg.Mix.SearchPct:
		op.Kind = OpSearch
	default:
		op.Kind = OpDelete
		if len(s.live) == 0 {
			// Nothing to delete yet: keep the record file growing.
			op.Kind = OpInsert
		}
	}
	switch op.Kind {
	case OpInsert:
		s.inserts++
		op.RID = uint64(s.inserts)
		op.Content = s.ContentOf(op.RID)
		s.live = append(s.live, op.RID)
	case OpSearch:
		op.Query = s.queries[s.zipf.Sample(s.rng)]
	case OpDelete:
		i := s.rng.Intn(len(s.live))
		op.RID = s.live[i]
		s.live[i] = s.live[len(s.live)-1]
		s.live = s.live[:len(s.live)-1]
	}
	return op, true
}
