package loadgen

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// drain consumes a stream fully.
func drain(t *testing.T, s *Stream) []Op {
	t.Helper()
	var ops []Op
	for {
		op, ok := s.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

// TestStreamReplayDeterministic: identical seeds must replay identical
// op streams — the property that makes soak runs reproducible and the
// audit's content regeneration sound.
func TestStreamReplayDeterministic(t *testing.T) {
	cfg := StreamConfig{Seed: 42, Ops: 5000, Mix: Mix{60, 25, 15}}
	a, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opsA, opsB := drain(t, a), drain(t, b)
	if len(opsA) != cfg.Ops || len(opsB) != cfg.Ops {
		t.Fatalf("stream lengths %d/%d, want %d", len(opsA), len(opsB), cfg.Ops)
	}
	for i := range opsA {
		x, y := opsA[i], opsB[i]
		if x.Kind != y.Kind || x.RID != y.RID ||
			!bytes.Equal(x.Content, y.Content) || !bytes.Equal(x.Query, y.Query) {
			t.Fatalf("op %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

// TestStreamSeedsDiffer: different seeds must not replay the same
// stream.
func TestStreamSeedsDiffer(t *testing.T) {
	a, _ := NewStream(StreamConfig{Seed: 1, Ops: 500})
	b, _ := NewStream(StreamConfig{Seed: 2, Ops: 500})
	opsA, opsB := drain(t, a), drain(t, b)
	same := 0
	for i := range opsA {
		if opsA[i].Kind == opsB[i].Kind && bytes.Equal(opsA[i].Query, opsB[i].Query) {
			same++
		}
	}
	if same == len(opsA) {
		t.Fatal("seeds 1 and 2 produced identical streams")
	}
}

// TestStreamMixProportions: op kinds track the configured mix.
func TestStreamMixProportions(t *testing.T) {
	s, err := NewStream(StreamConfig{Seed: 3, Ops: 10000, Mix: Mix{70, 25, 5}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	for _, op := range drain(t, s) {
		counts[op.Kind]++
	}
	if got := counts[OpSearch]; got < 2200 || got > 2800 {
		t.Errorf("searches = %d, want ~2500", got)
	}
	// Early deletes fall back to inserts, so inserts >= 70% and
	// deletes <= 5%.
	if got := counts[OpInsert]; got < 6800 {
		t.Errorf("inserts = %d, want >= 6800", got)
	}
	if got := counts[OpDelete]; got == 0 || got > 600 {
		t.Errorf("deletes = %d, want 1..600", got)
	}
}

// TestStreamRIDsDenseAndDeletesLive: inserts assign dense RIDs from 1,
// and every delete targets a previously inserted, not-yet-deleted RID.
func TestStreamRIDsDenseAndDeletesLive(t *testing.T) {
	s, _ := NewStream(StreamConfig{Seed: 9, Ops: 8000, Mix: Mix{50, 20, 30}})
	var nextRID uint64 = 1
	live := map[uint64]bool{}
	for _, op := range drain(t, s) {
		switch op.Kind {
		case OpInsert:
			if op.RID != nextRID {
				t.Fatalf("insert RID %d, want dense %d", op.RID, nextRID)
			}
			nextRID++
			live[op.RID] = true
		case OpDelete:
			if !live[op.RID] {
				t.Fatalf("delete of RID %d which is not live", op.RID)
			}
			delete(live, op.RID)
		}
	}
}

// TestStreamContentOfDeterministic: content regeneration is positional,
// independent of stream progress and of other chunk accesses — the
// audit depends on this.
func TestStreamContentOfDeterministic(t *testing.T) {
	cfg := StreamConfig{Seed: 7, Ops: 10}
	a, _ := NewStream(cfg)
	b, _ := NewStream(cfg)
	// Touch a far chunk on b first to force a cache swap.
	far := b.ContentOf(uint64(3*contentChunk + 17))
	if len(far) == 0 {
		t.Fatal("empty content")
	}
	for _, rid := range []uint64{1, 2, uint64(contentChunk), uint64(contentChunk) + 1, 99999} {
		if !bytes.Equal(a.ContentOf(rid), b.ContentOf(rid)) {
			t.Fatalf("ContentOf(%d) differs between identically seeded streams", rid)
		}
	}
	if !bytes.HasSuffix(a.ContentOf(1), []byte("$")) {
		t.Error("content is not a Figure-4 formatted record")
	}
}

// TestStreamQueryPool: the pool is non-empty, distinct, and respects
// the minimum searchable length.
func TestStreamQueryPool(t *testing.T) {
	s, _ := NewStream(StreamConfig{Seed: 11, Ops: 10, QueryPool: 128, MinQueryLen: 7})
	qs := s.Queries()
	if len(qs) == 0 {
		t.Fatal("empty query pool")
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if len(q) < 7 {
			t.Fatalf("query %q shorter than MinQueryLen", q)
		}
		if seen[string(q)] {
			t.Fatalf("duplicate query %q", q)
		}
		seen[string(q)] = true
	}
}

// TestZipfChiSquare: the sampler's empirical distribution must match
// the exact zipfian PMF — χ² goodness-of-fit with tail ranks merged to
// keep expected counts >= 5.
func TestZipfChiSquare(t *testing.T) {
	const n, samples = 64, 200000
	z, err := NewZipf(n, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1234))
	obs := make([]float64, n)
	for i := 0; i < samples; i++ {
		obs[z.Sample(rng)]++
	}
	var chi, dof float64
	var obsTail, expTail float64
	for i := 0; i < n; i++ {
		exp := float64(samples) * z.PMF(i)
		if exp < 5 {
			obsTail += obs[i]
			expTail += exp
			continue
		}
		chi += (obs[i] - exp) * (obs[i] - exp) / exp
		dof++
	}
	if expTail > 0 {
		chi += (obsTail - expTail) * (obsTail - expTail) / expTail
		dof++
	}
	dof--
	p := stats.ChiSquareP(chi, dof)
	if p < 0.001 {
		t.Fatalf("zipf samples reject the exact PMF: chi2=%.1f dof=%.0f p=%g", chi, dof, p)
	}
}

// TestZipfPMF: probabilities sum to 1 and decrease with rank.
func TestZipfPMF(t *testing.T) {
	z, _ := NewZipf(100, 1.1)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.PMF(i)
		if i > 0 && z.PMF(i) > z.PMF(i-1) {
			t.Fatalf("PMF not decreasing at rank %d", i)
		}
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Fatalf("PMF sums to %v, want 1", sum)
	}
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0) should fail")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("negative exponent should fail")
	}
}

// TestMixParse: Mix round-trips through its string form and rejects
// junk.
func TestMixParse(t *testing.T) {
	m, err := ParseMix("70/25/5")
	if err != nil || m != (Mix{70, 25, 5}) {
		t.Fatalf("ParseMix = %+v, %v", m, err)
	}
	if m.String() != "70/25/5" {
		t.Fatalf("String = %q", m.String())
	}
	for _, bad := range []string{"", "70/25", "70/25/6", "-1/96/5", "a/b/c"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) should fail", bad)
		}
	}
}

// TestStreamConfigValidation: bad configs are rejected up front.
func TestStreamConfigValidation(t *testing.T) {
	if _, err := NewStream(StreamConfig{Ops: 0}); err == nil {
		t.Error("Ops=0 should fail")
	}
	if _, err := NewStream(StreamConfig{Ops: 10, Mix: Mix{50, 50, 50}}); err == nil {
		t.Error("mix not summing to 100 should fail")
	}
	if _, err := NewStream(StreamConfig{Ops: 10, MinQueryLen: 60}); err == nil {
		t.Error("unsatisfiable MinQueryLen should fail")
	}
}
