package loadgen

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// instantTarget acknowledges everything immediately.
type instantTarget struct {
	inserts, searches, deletes atomic.Int64
}

func (t *instantTarget) Insert(context.Context, uint64, []byte) error {
	t.inserts.Add(1)
	return nil
}
func (t *instantTarget) Search(context.Context, []byte) ([]uint64, error) {
	t.searches.Add(1)
	return nil, nil
}
func (t *instantTarget) Delete(context.Context, uint64) error {
	t.deletes.Add(1)
	return nil
}
func (t *instantTarget) Get(context.Context, uint64) ([]byte, error) {
	return nil, ErrNotFound
}

// slowTarget holds every op for a fixed service time on the fake clock.
type slowTarget struct {
	clock Clock
	d     time.Duration
}

func (t *slowTarget) Insert(context.Context, uint64, []byte) error {
	t.clock.Sleep(t.d)
	return nil
}
func (t *slowTarget) Search(context.Context, []byte) ([]uint64, error) {
	t.clock.Sleep(t.d)
	return nil, nil
}
func (t *slowTarget) Delete(context.Context, uint64) error {
	t.clock.Sleep(t.d)
	return nil
}
func (t *slowTarget) Get(context.Context, uint64) ([]byte, error) {
	return nil, ErrNotFound
}

// runOnFakeClock drives a runner to completion with a FakeClock
// advancer goroutine.
func runOnFakeClock(t *testing.T, fc *FakeClock, r *Runner, s *Stream) *RunResult {
	t.Helper()
	type outcome struct {
		res *RunResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := r.Run(context.Background(), s)
		done <- outcome{res, err}
	}()
	go func() {
		for fc.AdvanceToNextWaiter() {
		}
	}()
	out := <-done
	fc.Stop()
	if out.err != nil {
		t.Fatalf("Run: %v", out.err)
	}
	return out.res
}

// TestRunnerHitsTargetRate: on a fake clock with an instant target, the
// achieved offered rate must match the configured Poisson rate within
// ±5%.
func TestRunnerHitsTargetRate(t *testing.T) {
	const rate, ops = 500.0, 4000
	fc := NewFakeClock(time.Unix(0, 0))
	stream, err := NewStream(StreamConfig{Seed: 5, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	target := &instantTarget{}
	r, err := NewRunner(target, RunnerConfig{Rate: rate, Seed: 7, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	res := runOnFakeClock(t, fc, r, stream)

	var issued, counted uint64
	for _, sec := range res.Timeline {
		issued += sec.Issued
	}
	for _, st := range res.Ops {
		counted += st.Count + st.Skipped
	}
	if issued != ops {
		t.Fatalf("issued %d arrivals, want %d (open loop must never drop arrivals)", issued, ops)
	}
	if counted+res.Shed != ops {
		t.Fatalf("counted %d + shed %d != %d ops", counted, res.Shed, ops)
	}
	achieved := float64(ops) / res.Elapsed.Seconds()
	if math.Abs(achieved-rate)/rate > 0.05 {
		t.Fatalf("achieved rate %.1f/s, want %v/s ±5%%", achieved, rate)
	}
}

// TestRunnerCoordinatedOmissionSafe: with a saturated single-slot
// target, recorded latency must include queueing delay from the
// *scheduled* arrival — orders of magnitude above the service time —
// instead of silently degrading the offered rate.
func TestRunnerCoordinatedOmissionSafe(t *testing.T) {
	const (
		rate    = 1000.0
		ops     = 200
		service = 10 * time.Millisecond
	)
	fc := NewFakeClock(time.Unix(0, 0))
	stream, err := NewStream(StreamConfig{Seed: 5, Ops: ops, Mix: Mix{100, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	target := &slowTarget{clock: fc, d: service}
	r, err := NewRunner(target, RunnerConfig{
		Rate: rate, Seed: 7, Clock: fc,
		MaxInFlight: 1, MaxQueue: 10 * ops, // no shedding: pure backlog
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runOnFakeClock(t, fc, r, stream)

	ins := res.Ops["insert"]
	if ins.Count != ops {
		t.Fatalf("completed %d inserts, want %d", ins.Count, ops)
	}
	// The backlog is ~ops*service deep by the end; a coordinated-
	// omission-blind harness would report ~service for every op.
	if ins.MaxNs < int64(50*service) {
		t.Fatalf("max latency %v; open-loop accounting must surface the queueing delay (service %v)",
			time.Duration(ins.MaxNs), service)
	}
	if ins.P50Ns <= int64(service) {
		t.Fatalf("p50 %v <= service time %v: queueing delay not accounted", time.Duration(ins.P50Ns), service)
	}
	if res.Elapsed < time.Duration(ops)*service {
		t.Fatalf("elapsed %v shorter than serialized service time", res.Elapsed)
	}
}

// TestRunnerShedsBeyondQueueBound: when the queue bound is hit, excess
// arrivals are shed and counted, never silently absorbed.
func TestRunnerShedsBeyondQueueBound(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	stream, err := NewStream(StreamConfig{Seed: 5, Ops: 300, Mix: Mix{100, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	target := &slowTarget{clock: fc, d: 10 * time.Millisecond}
	r, err := NewRunner(target, RunnerConfig{
		Rate: 1000, Seed: 7, Clock: fc, MaxInFlight: 1, MaxQueue: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runOnFakeClock(t, fc, r, stream)
	if res.Shed == 0 {
		t.Fatal("expected sheds with MaxQueue=2 under 10x overload")
	}
	var issued uint64
	for _, sec := range res.Timeline {
		issued += sec.Issued
	}
	if issued != 300 {
		t.Fatalf("issued %d, want 300: sheds must still count as arrivals", issued)
	}
	if res.Ops["insert"].Count+res.Shed != 300 {
		t.Fatalf("completions %d + sheds %d != 300", res.Ops["insert"].Count, res.Shed)
	}
}

// failingTarget errors every insert.
type failingTarget struct{ instantTarget }

func (t *failingTarget) Insert(context.Context, uint64, []byte) error {
	return errors.New("bucket on fire")
}

// TestRunnerLedgerTracksAcks: the ledger must reflect acknowledged
// outcomes — failed inserts never become live, deletes only target
// acknowledged-live records.
func TestRunnerLedgerTracksAcks(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	stream, err := NewStream(StreamConfig{Seed: 5, Ops: 200, Mix: Mix{60, 20, 20}})
	if err != nil {
		t.Fatal(err)
	}
	target := &failingTarget{}
	r, err := NewRunner(target, RunnerConfig{Rate: 1000, Seed: 7, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	res := runOnFakeClock(t, fc, r, stream)

	counts := r.Ledger().Counts()
	if counts.Live != 0 {
		t.Fatalf("ledger says %d live records after all inserts failed", counts.Live)
	}
	if counts.Failed == 0 {
		t.Fatal("ledger recorded no failed inserts")
	}
	ins := res.Ops["insert"]
	if ins.Errors != ins.Count || ins.ErrorRate != 1 {
		t.Fatalf("insert stats %+v, want all errored", ins)
	}
	if ins.FirstError == "" {
		t.Fatal("first error not captured")
	}
	// No insert ever succeeded, so every delete must have been skipped
	// (never sent against a non-acknowledged record).
	if del, ok := res.Ops["delete"]; ok {
		if del.Count != 0 || del.Skipped == 0 {
			t.Fatalf("delete stats %+v, want only skips", del)
		}
	}
}

// TestRunnerRejectsBadRate: a non-positive rate is a config error.
func TestRunnerRejectsBadRate(t *testing.T) {
	if _, err := NewRunner(&instantTarget{}, RunnerConfig{Rate: 0}); err == nil {
		t.Fatal("Rate=0 accepted")
	}
}

// TestFakeClock: sleepers wake exactly at their deadline when advanced.
func TestFakeClock(t *testing.T) {
	fc := NewFakeClock(time.Unix(100, 0))
	woke := make(chan time.Time, 1)
	go func() {
		fc.Sleep(50 * time.Millisecond)
		woke <- fc.Now()
	}()
	if !fc.AdvanceToNextWaiter() {
		t.Fatal("AdvanceToNextWaiter returned false before Stop")
	}
	at := <-woke
	if want := time.Unix(100, 0).Add(50 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("woke at %v, want %v", at, want)
	}
	fc.Stop()
	if fc.AdvanceToNextWaiter() {
		t.Fatal("AdvanceToNextWaiter returned true after Stop")
	}
}
