package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Gate is one declarative SLO: "metric op bound". Examples:
//
//	search.p99 < 250ms      — absolute latency bound (duration literal)
//	error_rate == 0         — no failed ops
//	loss == 0               — the post-soak audit found every record
//	search.p99 <= prev*1.5  — regression bound against the previous
//	                          BENCH entry for the same profile
//	throughput >= offered*0.55 — bound relative to the run's own
//	                          offered rate, so a capacity floor keeps
//	                          meaning when -ops/-rate are overridden
//
// Latency metrics are nanoseconds; bounds may be bare numbers or Go
// duration literals. A "prev"-relative gate is skipped (with a note,
// not a failure) when no baseline exists yet.
type Gate struct {
	Expr   string
	Metric string
	Op     string
	// exactly one of these is set
	bound         float64
	prevFactor    float64
	isPrev        bool
	offeredFactor float64
	isOffered     bool
}

// GateOutcome is one evaluated gate, recorded in the report.
type GateOutcome struct {
	Expr    string  `json:"expr"`
	Pass    bool    `json:"pass"`
	Skipped bool    `json:"skipped,omitempty"`
	Value   float64 `json:"value,omitempty"`
	Bound   float64 `json:"bound,omitempty"`
	Detail  string  `json:"detail"`
}

var gateOps = map[string]func(v, b float64) bool{
	"<":  func(v, b float64) bool { return v < b },
	"<=": func(v, b float64) bool { return v <= b },
	">":  func(v, b float64) bool { return v > b },
	">=": func(v, b float64) bool { return v >= b },
	"==": func(v, b float64) bool { return v == b },
	"!=": func(v, b float64) bool { return v != b },
}

// ParseGate parses one "metric op bound" expression.
func ParseGate(expr string) (Gate, error) {
	fields := strings.Fields(expr)
	if len(fields) != 3 {
		return Gate{}, fmt.Errorf("loadgen: gate %q: want \"metric op bound\"", expr)
	}
	g := Gate{Expr: strings.Join(fields, " "), Metric: fields[0], Op: fields[1]}
	if _, ok := gateOps[g.Op]; !ok {
		return Gate{}, fmt.Errorf("loadgen: gate %q: unknown operator %q", expr, g.Op)
	}
	bound := fields[2]
	switch {
	case bound == "prev":
		g.isPrev, g.prevFactor = true, 1
	case strings.HasPrefix(bound, "prev*"):
		f, err := strconv.ParseFloat(bound[len("prev*"):], 64)
		if err != nil || f <= 0 {
			return Gate{}, fmt.Errorf("loadgen: gate %q: bad prev factor %q", expr, bound)
		}
		g.isPrev, g.prevFactor = true, f
	case bound == "offered":
		g.isOffered, g.offeredFactor = true, 1
	case strings.HasPrefix(bound, "offered*"):
		f, err := strconv.ParseFloat(bound[len("offered*"):], 64)
		if err != nil || f <= 0 {
			return Gate{}, fmt.Errorf("loadgen: gate %q: bad offered factor %q", expr, bound)
		}
		g.isOffered, g.offeredFactor = true, f
	default:
		if v, err := strconv.ParseFloat(bound, 64); err == nil {
			g.bound = v
		} else if d, derr := time.ParseDuration(bound); derr == nil {
			g.bound = float64(d)
		} else {
			return Gate{}, fmt.Errorf("loadgen: gate %q: bad bound %q (number or duration)", expr, bound)
		}
	}
	return g, nil
}

// ParseGates parses a list of gate expressions, reporting every bad one.
func ParseGates(exprs []string) ([]Gate, error) {
	gates := make([]Gate, 0, len(exprs))
	var errs []string
	for _, e := range exprs {
		e = strings.TrimSpace(e)
		if e == "" || strings.HasPrefix(e, "#") {
			continue
		}
		g, err := ParseGate(e)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		gates = append(gates, g)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return gates, nil
}

// metricValue resolves a gate metric against a report. Latency metrics
// are nanoseconds. Audit metrics exist only when an audit ran: a gate
// on a missing metric fails rather than passing vacuously.
func metricValue(r *Report, name string) (float64, bool) {
	if kind, stat, ok := strings.Cut(name, "."); ok {
		st, have := r.Ops[kind]
		if !have {
			return 0, false
		}
		switch stat {
		case "p50":
			return float64(st.P50Ns), true
		case "p90":
			return float64(st.P90Ns), true
		case "p99":
			return float64(st.P99Ns), true
		case "mean":
			return st.MeanNs, true
		case "max":
			return float64(st.MaxNs), true
		case "count":
			return float64(st.Count), true
		case "errors":
			return float64(st.Errors), true
		case "error_rate":
			return st.ErrorRate, true
		case "rejected":
			return float64(st.Rejected), true
		}
		return 0, false
	}
	switch name {
	case "ops":
		return float64(r.Totals.Ops), true
	case "errors":
		return float64(r.Totals.Errors), true
	case "error_rate":
		return r.Totals.ErrorRate, true
	case "shed":
		return float64(r.Totals.Shed), true
	case "rejected":
		return float64(r.Totals.Rejected), true
	case "throughput":
		return r.Totals.Throughput, true
	case "goodput":
		return r.Totals.Goodput, true
	case "elapsed_sec":
		return r.Totals.ElapsedSec, true
	case "splits":
		return float64(r.Cluster.RecordSplits + r.Cluster.IndexSplits), true
	case "record_splits":
		return float64(r.Cluster.RecordSplits), true
	case "index_splits":
		return float64(r.Cluster.IndexSplits), true
	case "iams":
		return float64(r.Cluster.IAMs), true
	case "record_buckets":
		return float64(r.Cluster.RecordBuckets), true
	case "index_buckets":
		return float64(r.Cluster.IndexBuckets), true
	case "nodes_used":
		return float64(r.Cluster.NodesUsed), true
	case "retry_attempts":
		return float64(r.Cluster.RetryAttempts), true
	case "retry_retries":
		return float64(r.Cluster.RetryRetries), true
	case "retry_failures":
		return float64(r.Cluster.RetryFailures), true
	case "repairs":
		return float64(r.Cluster.Repairs), true
	case "migrations_started":
		return float64(r.Cluster.MigStarted), true
	case "migrations_committed":
		return float64(r.Cluster.MigCommitted), true
	case "migrations_aborted":
		return float64(r.Cluster.MigAborted), true
	case "migrations_resumed":
		return float64(r.Cluster.MigResumed), true
	case "migrations_in_flight":
		return float64(r.Cluster.MigInFlight), true
	case "attempts_per_op":
		// Mean transport attempts per logical send: 1 + retries/sends,
		// from counters snapshotted before the audit. The overload SLO
		// bounds it to prove retry budgets prevent amplification storms.
		if r.Cluster.RetryAttempts == 0 {
			return 0, false
		}
		return 1 + float64(r.Cluster.RetryRetries)/float64(r.Cluster.RetryAttempts), true
	}
	if r.Audit != nil {
		switch name {
		case "loss":
			return float64(r.Audit.Loss()), true
		case "missing":
			return float64(r.Audit.Missing), true
		case "corrupt":
			return float64(r.Audit.Corrupt), true
		case "ghosts":
			return float64(r.Audit.Ghosts), true
		case "search_misses":
			return float64(r.Audit.SearchMisses), true
		case "audit_errors":
			return float64(r.Audit.Errors), true
		}
	}
	return 0, false
}

// latencyMetric reports whether a metric is a nanosecond latency series
// (rendered as a duration in gate details).
func latencyMetric(name string) bool {
	_, stat, ok := strings.Cut(name, ".")
	if !ok {
		return false
	}
	switch stat {
	case "p50", "p90", "p99", "mean", "max":
		return true
	}
	return false
}

func gateValue(metric string, v float64) string {
	if latencyMetric(metric) {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmtMetric(metric, v)
}

// EvalGates evaluates every gate against cur, with prev (the previous
// BENCH entry for the profile, possibly nil) as the regression
// baseline. It returns the per-gate outcomes and whether all
// non-skipped gates passed.
func EvalGates(gates []Gate, cur, prev *Report) ([]GateOutcome, bool) {
	outcomes := make([]GateOutcome, 0, len(gates))
	pass := true
	for _, g := range gates {
		o := GateOutcome{Expr: g.Expr}
		v, ok := metricValue(cur, g.Metric)
		if !ok {
			o.Detail = fmt.Sprintf("FAIL: metric %s not present in report", g.Metric)
			pass = false
			outcomes = append(outcomes, o)
			continue
		}
		bound := g.bound
		if g.isPrev {
			if prev == nil {
				o.Pass, o.Skipped = true, true
				o.Detail = "SKIP: no previous baseline for profile"
				outcomes = append(outcomes, o)
				continue
			}
			pv, pok := metricValue(prev, g.Metric)
			if !pok {
				o.Pass, o.Skipped = true, true
				o.Detail = fmt.Sprintf("SKIP: metric %s absent from baseline", g.Metric)
				outcomes = append(outcomes, o)
				continue
			}
			bound = pv * g.prevFactor
		}
		if g.isOffered {
			if cur.Config.Rate <= 0 {
				o.Pass, o.Skipped = true, true
				o.Detail = "SKIP: report carries no offered rate"
				outcomes = append(outcomes, o)
				continue
			}
			bound = cur.Config.Rate * g.offeredFactor
		}
		o.Value, o.Bound = v, bound
		o.Pass = gateOps[g.Op](v, bound)
		verdict := "PASS"
		if !o.Pass {
			verdict = "FAIL"
			pass = false
		}
		o.Detail = fmt.Sprintf("%s: %s = %s %s %s", verdict, g.Metric,
			gateValue(g.Metric, v), g.Op, gateValue(g.Metric, bound))
		outcomes = append(outcomes, o)
	}
	return outcomes, pass
}
