package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// errShedByServer stands in for transport.ErrOverloaded: the sentinel a
// soak harness's IsRejected classifier matches with errors.Is.
var errShedByServer = errors.New("server shed the request")

// sheddingTarget rejects every insert with a wrapped overload sentinel
// and answers every search instantly.
type sheddingTarget struct {
	inserts, searches atomic.Uint64
}

func (t *sheddingTarget) Insert(context.Context, uint64, []byte) error {
	t.inserts.Add(1)
	return fmt.Errorf("insert refused: %w", errShedByServer)
}
func (t *sheddingTarget) Search(context.Context, []byte) ([]uint64, error) {
	t.searches.Add(1)
	return nil, nil
}
func (t *sheddingTarget) Delete(context.Context, uint64) error { return nil }
func (t *sheddingTarget) Get(context.Context, uint64) ([]byte, error) {
	return nil, ErrNotFound
}

// TestRunnerCountsRejectedSeparately: ops the server refused with an
// overload rejection are accounted as backpressure — outside Count,
// Errors, and the latency histograms — while everything else keeps its
// normal accounting.
func TestRunnerCountsRejectedSeparately(t *testing.T) {
	const ops = 200
	fc := NewFakeClock(time.Unix(0, 0))
	stream, err := NewStream(StreamConfig{Seed: 5, Ops: ops, Mix: Mix{50, 50, 0}})
	if err != nil {
		t.Fatal(err)
	}
	target := &sheddingTarget{}
	r, err := NewRunner(target, RunnerConfig{
		Rate: 1000, Seed: 7, Clock: fc,
		IsRejected: func(err error) bool { return errors.Is(err, errShedByServer) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runOnFakeClock(t, fc, r, stream)

	nIns, nSearch := target.inserts.Load(), target.searches.Load()
	if nIns == 0 || nSearch == 0 {
		t.Fatalf("degenerate mix: %d inserts, %d searches", nIns, nSearch)
	}
	ins := res.Ops["insert"]
	if ins.Rejected != nIns {
		t.Fatalf("insert.Rejected = %d, want %d", ins.Rejected, nIns)
	}
	if ins.Count != 0 || ins.Errors != 0 || ins.ErrorRate != 0 {
		t.Fatalf("rejected inserts leaked into count/errors: %+v", ins)
	}
	if ins.MaxNs != 0 {
		t.Fatalf("rejected inserts left latency samples: max %v", time.Duration(ins.MaxNs))
	}
	sea := res.Ops["search"]
	if sea.Count != nSearch || sea.Errors != 0 || sea.Rejected != 0 {
		t.Fatalf("search stats polluted by rejection accounting: %+v", sea)
	}
	var tlRejected, tlDone uint64
	for _, sec := range res.Timeline {
		tlRejected += sec.Rejected
		tlDone += sec.Done
	}
	if tlRejected != nIns {
		t.Fatalf("timeline rejected sum = %d, want %d", tlRejected, nIns)
	}
	if tlDone != nSearch {
		t.Fatalf("timeline done sum = %d, want %d (rejected ops must not be Done)", tlDone, nSearch)
	}

	// And none of it was invisible: arrivals = completions + rejections.
	if got := ins.Rejected + sea.Count; got != ops {
		t.Fatalf("rejected %d + completed %d != %d arrivals", ins.Rejected, sea.Count, ops)
	}
}

// TestRunnerWithoutClassifierKeepsErrors: with no IsRejected hook the
// same overload errors count as plain failures — the classifier is
// opt-in, not a change to default semantics.
func TestRunnerWithoutClassifierKeepsErrors(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	stream, err := NewStream(StreamConfig{Seed: 5, Ops: 100, Mix: Mix{100, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(&sheddingTarget{}, RunnerConfig{Rate: 1000, Seed: 7, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	res := runOnFakeClock(t, fc, r, stream)
	ins := res.Ops["insert"]
	if ins.Rejected != 0 {
		t.Fatalf("insert.Rejected = %d without a classifier", ins.Rejected)
	}
	if ins.Count != 100 || ins.Errors != 100 {
		t.Fatalf("unclassified overload errors not counted as errors: %+v", ins)
	}
}

// TestReportAndGatesSeeRejection: rejected counts flow into report
// totals and resolve as SLO gate metrics, goodput reflects only
// successful work, and attempts_per_op derives from the retry counters.
func TestReportAndGatesSeeRejection(t *testing.T) {
	const ops = 200
	fc := NewFakeClock(time.Unix(0, 0))
	stream, err := NewStream(StreamConfig{Seed: 5, Ops: ops, Mix: Mix{50, 50, 0}})
	if err != nil {
		t.Fatal(err)
	}
	target := &sheddingTarget{}
	r, err := NewRunner(target, RunnerConfig{
		Rate: 1000, Seed: 7, Clock: fc,
		IsRejected: func(err error) bool { return errors.Is(err, errShedByServer) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runOnFakeClock(t, fc, r, stream)

	rep := BuildReport("overload-test", RunConfig{Rate: 1000}, res)
	nIns, nSearch := target.inserts.Load(), target.searches.Load()
	if rep.Totals.Rejected != nIns {
		t.Fatalf("Totals.Rejected = %d, want %d", rep.Totals.Rejected, nIns)
	}
	if rep.Totals.Ops != nSearch || rep.Totals.Errors != 0 {
		t.Fatalf("Totals = %+v, want %d ops / 0 errors", rep.Totals, nSearch)
	}
	wantGoodput := float64(nSearch) / rep.Totals.ElapsedSec
	if rep.Totals.Goodput != wantGoodput {
		t.Fatalf("Goodput = %.3f, want %.3f", rep.Totals.Goodput, wantGoodput)
	}
	rep.Cluster.RetryAttempts = 100
	rep.Cluster.RetryRetries = 25

	gates, err := ParseGates([]string{
		fmt.Sprintf("rejected == %d", nIns),
		fmt.Sprintf("insert.rejected == %d", nIns),
		"goodput > 0",
		"attempts_per_op <= 1.25",
		"repairs == 0",
	})
	if err != nil {
		t.Fatal(err)
	}
	outcomes, pass := EvalGates(gates, rep, nil)
	if !pass {
		t.Fatalf("gates failed: %+v", outcomes)
	}
	for _, o := range outcomes {
		if o.Skipped {
			t.Fatalf("gate unexpectedly skipped: %+v", o)
		}
	}

	// attempts_per_op without retry counters is absent, and a gate on a
	// missing metric fails loudly rather than passing vacuously.
	rep.Cluster.RetryAttempts = 0
	gates, err = ParseGates([]string{"attempts_per_op <= 1.5"})
	if err != nil {
		t.Fatal(err)
	}
	if _, pass := EvalGates(gates, rep, nil); pass {
		t.Fatal("attempts_per_op gate passed with no retry counters in the report")
	}
}
