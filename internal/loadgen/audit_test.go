package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/sdds"
	"repro/internal/transport"
	"repro/internal/wal"
)

// mapTarget is an in-memory Target whose contents tests can tamper
// with behind the ledger's back.
type mapTarget struct {
	mu       sync.Mutex
	data     map[uint64][]byte
	searchFn func(q []byte) []uint64 // optional override
}

func newMapTarget() *mapTarget {
	return &mapTarget{data: make(map[uint64][]byte)}
}

func (t *mapTarget) Insert(_ context.Context, rid uint64, content []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.data[rid] = append([]byte(nil), content...)
	return nil
}

func (t *mapTarget) Get(_ context.Context, rid uint64) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.data[rid]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

func (t *mapTarget) Delete(_ context.Context, rid uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.data[rid]; !ok {
		return ErrNotFound
	}
	delete(t.data, rid)
	return nil
}

func (t *mapTarget) Search(_ context.Context, q []byte) ([]uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.searchFn != nil {
		return t.searchFn(q), nil
	}
	var hits []uint64
	for rid, content := range t.data {
		if bytes.Contains(content, q) {
			hits = append(hits, rid)
		}
	}
	return hits, nil
}

// seedTarget applies a stream's inserts/deletes to a target and the
// ledger, returning the stream for content regeneration.
func seedTarget(t *testing.T, target Target, ops int) (*Stream, *Ledger) {
	t.Helper()
	s, err := NewStream(StreamConfig{Seed: 21, Ops: ops, Mix: Mix{70, 10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	ledger := NewLedger()
	ctx := context.Background()
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpInsert:
			ledger.MarkPending(op.RID)
			if err := target.Insert(ctx, op.RID, op.Content); err != nil {
				t.Fatalf("insert %d: %v", op.RID, err)
			}
			ledger.MarkLive(op.RID)
		case OpDelete:
			if !ledger.BeginDelete(op.RID) {
				continue
			}
			if err := target.Delete(ctx, op.RID); err != nil {
				t.Fatalf("delete %d: %v", op.RID, err)
			}
			ledger.MarkDeleted(op.RID)
		}
	}
	return s, ledger
}

func TestAuditCleanRun(t *testing.T) {
	target := newMapTarget()
	s, ledger := seedTarget(t, target, 800)
	res, err := RunAudit(context.Background(), target, s, ledger, AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("clean cluster failed audit: %+v", res)
	}
	counts := ledger.Counts()
	if res.Checked != counts.Live || res.Checked == 0 {
		t.Fatalf("checked %d, want %d live records", res.Checked, counts.Live)
	}
	if res.GhostsChecked != counts.Deleted || res.GhostsChecked == 0 {
		t.Fatalf("ghost-checked %d, want %d deleted records", res.GhostsChecked, counts.Deleted)
	}
	if res.SearchChecks == 0 {
		t.Fatal("no search spot checks ran")
	}
}

func TestAuditDetectsDroppedRecord(t *testing.T) {
	target := newMapTarget()
	s, ledger := seedTarget(t, target, 400)
	victim := ledger.Live()[3]
	target.mu.Lock()
	delete(target.data, victim)
	target.mu.Unlock()

	res, err := RunAudit(context.Background(), target, s, ledger, AuditConfig{SearchChecks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missing != 1 || res.Loss() != 1 || res.Clean() {
		t.Fatalf("dropped record not detected: %+v", res)
	}
	if want := fmt.Sprintf("record %d", victim); !strings.Contains(res.FirstProblem, want) {
		t.Fatalf("FirstProblem %q does not name rid %d", res.FirstProblem, victim)
	}
}

func TestAuditDetectsCorruptRecord(t *testing.T) {
	target := newMapTarget()
	s, ledger := seedTarget(t, target, 400)
	victim := ledger.Live()[7]
	target.mu.Lock()
	target.data[victim][0] ^= 0xff
	target.mu.Unlock()

	res, err := RunAudit(context.Background(), target, s, ledger, AuditConfig{SearchChecks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 1 || res.Loss() != 1 {
		t.Fatalf("corrupt record not detected: %+v", res)
	}
}

func TestAuditDetectsGhost(t *testing.T) {
	target := newMapTarget()
	s, ledger := seedTarget(t, target, 400)
	ghost := ledger.Deleted()[0]
	target.mu.Lock()
	target.data[ghost] = []byte("back from the dead")
	target.mu.Unlock()

	res, err := RunAudit(context.Background(), target, s, ledger, AuditConfig{SearchChecks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ghosts != 1 || res.Clean() {
		t.Fatalf("ghost not detected: %+v", res)
	}
	if res.Loss() != 0 {
		t.Fatalf("a ghost is not loss: %+v", res)
	}
}

func TestAuditDetectsSearchFalseNegative(t *testing.T) {
	target := newMapTarget()
	s, ledger := seedTarget(t, target, 400)
	target.searchFn = func([]byte) []uint64 { return nil } // drop every hit

	res, err := RunAudit(context.Background(), target, s, ledger, AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SearchMisses == 0 || res.SearchMisses != res.SearchChecks {
		t.Fatalf("false negatives not detected: %+v", res)
	}
	if res.Loss() != 0 {
		t.Fatalf("search misses are not loss: %+v", res)
	}
}

// sddsTarget adapts a raw sdds cluster's record file to the Target
// surface (search disabled — the record file alone has no index).
type sddsTarget struct{ cl *sdds.Cluster }

func (t *sddsTarget) Insert(ctx context.Context, rid uint64, content []byte) error {
	return t.cl.Put(ctx, sdds.FileRecords, rid, content)
}

func (t *sddsTarget) Get(ctx context.Context, rid uint64) ([]byte, error) {
	v, ok, err := t.cl.Get(ctx, sdds.FileRecords, rid)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

func (t *sddsTarget) Delete(ctx context.Context, rid uint64) error {
	ok, err := t.cl.Delete(ctx, sdds.FileRecords, rid)
	if err != nil {
		return err
	}
	if !ok {
		return ErrNotFound
	}
	return nil
}

func (t *sddsTarget) Search(context.Context, []byte) ([]uint64, error) {
	return nil, nil
}

// TestAuditDetectsLossOnFaultedNode is the end-to-end loss story: a
// WAL-backed node acknowledges records, its journal takes a flipped bit
// (MemFS fault injection), the restarted node correctly refuses the
// corrupt state and comes up empty — and the post-soak audit, armed
// only with the client-side ledger and the deterministic corpus, must
// report every acknowledged record as lost.
func TestAuditDetectsLossOnFaultedNode(t *testing.T) {
	const records = 60
	ctx := context.Background()
	place, err := sdds.NewPlacement([]transport.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	fs := wal.NewMemFS()

	mem := transport.NewMemory()
	node := sdds.NewNode(0, mem, place)
	st, err := wal.Open(fs, "n0", wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := node.AttachStore(st); err != nil || out != wal.OutcomeFresh {
		t.Fatalf("AttachStore = %v, %v", out, err)
	}
	mem.Register(0, node.Handler())
	target := &sddsTarget{cl: sdds.NewCluster(mem, place)}

	stream, err := NewStream(StreamConfig{Seed: 77, Ops: 1})
	if err != nil {
		t.Fatal(err)
	}
	ledger := NewLedger()
	for rid := uint64(1); rid <= records; rid++ {
		ledger.MarkPending(rid)
		if err := target.Insert(ctx, rid, stream.ContentOf(rid)); err != nil {
			t.Fatalf("insert %d: %v", rid, err)
		}
		ledger.MarkLive(rid)
	}

	pre, err := RunAudit(ctx, target, stream, ledger, AuditConfig{SearchChecks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Clean() || pre.Checked != records {
		t.Fatalf("pre-fault audit not clean: %+v", pre)
	}

	// Crash the process and flip one durable bit in the journal.
	fs.Restart()
	name := "n0/wal.log"
	size, err := fs.Size(name)
	if err != nil || size == 0 {
		t.Fatalf("journal missing: %d, %v", size, err)
	}
	if err := fs.FlipBit(name, size/2, 3); err != nil {
		t.Fatal(err)
	}

	mem2 := transport.NewMemory()
	node2 := sdds.NewNode(0, mem2, place)
	st2, err := wal.Open(fs, "n0", wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, aerr := node2.AttachStore(st2)
	if out != wal.OutcomeCorrupt || aerr == nil {
		t.Fatalf("restart on flipped bit = %v, %v; want corrupt verdict", out, aerr)
	}
	mem2.Register(0, node2.Handler())
	target2 := &sddsTarget{cl: sdds.NewCluster(mem2, place)}

	post, err := RunAudit(ctx, target2, stream, ledger, AuditConfig{SearchChecks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if post.Missing != records || post.Loss() != records {
		t.Fatalf("audit found %d missing of %d acknowledged records: %+v", post.Missing, records, post)
	}
	if post.Clean() {
		t.Fatal("audit declared a faulted cluster clean")
	}
}
